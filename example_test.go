package acfc_test

import (
	"fmt"

	acfc "repro"
)

// Example demonstrates the paper's headline effect: a cyclic scan over a
// file larger than the cache thrashes under the kernel's LRU but mostly
// hits once the application selects MRU for it. The simulation is
// deterministic, so the counts are exact.
func Example() {
	run := func(smart bool) int64 {
		cfg := acfc.DefaultConfig() // 6.4 MB cache, the paper's machine
		if !smart {
			cfg.Alloc = acfc.GlobalLRU
		}
		sys := acfc.NewSystem(cfg)
		trace := sys.CreateFile("cc.trace", 0, 1024) // 8 MB
		p := sys.Spawn("scan", func(p *acfc.Proc) {
			if smart {
				p.EnableControl()
				p.SetPriority(trace, 0)
				p.SetPolicy(0, acfc.MRU)
			}
			for pass := 0; pass < 9; pass++ {
				p.ReadSeq(trace, 0, 1024)
			}
		})
		sys.Run()
		return p.Stats().BlockIOs()
	}
	fmt.Println("original kernel:", run(false), "block I/Os")
	fmt.Println("MRU policy:     ", run(true), "block I/Os")
	// Output:
	// original kernel: 9216 block I/Os
	// MRU policy:      2664 block I/Os
}

// ExampleProc_SetTempPri shows the done-with pattern: flushing a block the
// moment its data has been consumed, as the paper's modified sort does.
func ExampleProc_SetTempPri() {
	cfg := acfc.DefaultConfig()
	cfg.CacheBytes = 4 * acfc.BlockSize // a tiny cache makes it visible
	sys := acfc.NewSystem(cfg)
	f := sys.CreateFile("tmp", 0, 4)
	sys.Spawn("reader", func(p *acfc.Proc) {
		p.EnableControl()
		for b := int32(0); b < 4; b++ {
			p.Read(f, b)
			p.SetTempPri(f, b, b, -1) // done with this block
		}
		// The done-with blocks go first; re-reading block 0 now misses.
		before := p.Stats().Misses
		p.Read(f, 0)
		_ = before
	})
	sys.Run()
	fmt.Println("cached blocks left:", sys.Cache().Len())
	// Output:
	// cached blocks left: 4
}

// ExampleLaunch runs one of the paper's workloads through the public API.
func ExampleLaunch() {
	cfg := acfc.DefaultConfig()
	sys := acfc.NewSystem(cfg)
	p := acfc.Launch(sys, acfc.Dinero(), acfc.Smart)
	sys.Run()
	fmt.Println("din block I/Os:", p.Stats().BlockIOs())
	// Output:
	// din block I/Os: 2664
}
