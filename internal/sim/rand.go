package sim

// Rand is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Every stochastic component of the simulation owns its own
// seeded Rand so that adding or removing one component never perturbs the
// random streams seen by the others.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is replaced by
// a fixed non-zero constant (xorshift state must be non-zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform pseudo-random int64 in [0, n). It panics if
// n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform pseudo-random Time in [0, d). It panics if
// d <= 0.
func (r *Rand) Duration(d Time) Time {
	return Time(r.Int63n(int64(d)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
