package sim

import "testing"

// BenchmarkSleepFastPath measures the lookahead fast path: a lone
// process advancing virtual time inline (no heap push, no goroutine
// handoff).
func BenchmarkSleepFastPath(b *testing.B) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkSleepParked measures the slow path the fast path avoids: the
// same lone sleeper forced through a heap push plus a park/resume round
// trip through the scheduler (the engine's pre-lookahead fundamental
// cost, formerly BenchmarkHandoff).
func BenchmarkSleepParked(b *testing.B) {
	e := New(DisableFastPath)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkTwoProcInterleave measures alternating wake-ups of two
// processes — the common multi-application pattern. Each sleep lands
// exactly on the other process's pending wake-up, so the fast path never
// fires and every step is a real handoff.
func BenchmarkTwoProcInterleave(b *testing.B) {
	e := New()
	for pi := 0; pi < 2; pi++ {
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				p.Sleep(1)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceReserve measures the FCFS resource fast path.
func BenchmarkResourceReserve(b *testing.B) {
	e := New()
	r := e.NewResource("r")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reserve(1)
	}
}

// BenchmarkRand measures the PRNG.
func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
