package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := FromMillis(2.5); got != 2500*Microsecond {
		t.Errorf("FromMillis(2.5) = %v, want 2500us", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Errorf("Millis() = %v, want 3", got)
	}
	if got := Second.String(); got != "1.000000s" {
		t.Errorf("String() = %q", got)
	}
}

func TestSingleProcSleep(t *testing.T) {
	e := New()
	var wokeAt Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		wokeAt = p.Now()
	})
	e.Run()
	if wokeAt != 10*Millisecond {
		t.Errorf("woke at %v, want 10ms", wokeAt)
	}
	if e.Now() != 10*Millisecond {
		t.Errorf("engine ended at %v, want 10ms", e.Now())
	}
}

func TestSleepUntilPastClamps(t *testing.T) {
	e := New()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		p.SleepUntil(1 * Millisecond) // in the past; must not rewind
		if p.Now() != 5*Millisecond {
			t.Errorf("now = %v after past SleepUntil, want 5ms", p.Now())
		}
	})
	e.Run()
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := New()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(-3 * Second)
		if p.Now() != 0 {
			t.Errorf("now = %v, want 0", p.Now())
		}
	})
	e.Run()
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		var order []string
		e := New()
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				order = append(order, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				order = append(order, "b")
			}
		})
		e.Run()
		return order
	}
	first := run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order %v differs from first run %v", trial, got, first)
			}
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events scheduled for the same instant run in schedule order.
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.SleepUntil(100)
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSpawnAtDelayedStart(t *testing.T) {
	e := New()
	var began Time
	p := e.SpawnAt("late", 7*Second, func(p *Proc) {
		began = p.Now()
	})
	e.Run()
	if began != 7*Second {
		t.Errorf("began at %v, want 7s", began)
	}
	if p.StartTime() != 7*Second {
		t.Errorf("StartTime = %v, want 7s", p.StartTime())
	}
	if p.EndTime() != 7*Second {
		t.Errorf("EndTime = %v, want 7s", p.EndTime())
	}
}

func TestSpawnAtPastPanics(t *testing.T) {
	e := New()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(Second)
		defer func() {
			if recover() == nil {
				t.Error("SpawnAt in the past did not panic")
			}
		}()
		e.SpawnAt("bad", 0, func(*Proc) {})
	})
	e.Run()
}

func TestProcElapsed(t *testing.T) {
	e := New()
	p := e.SpawnAt("w", 2*Second, func(p *Proc) {
		p.Sleep(3 * Second)
	})
	e.Run()
	if p.Elapsed() != 3*Second {
		t.Errorf("Elapsed = %v, want 3s", p.Elapsed())
	}
	if p.State() != Done {
		t.Errorf("State = %v, want Done", p.State())
	}
}

func TestSpawnFromRunningProc(t *testing.T) {
	e := New()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Second)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(Second)
			childRan = true
		})
		p.Sleep(5 * Second)
	})
	e.Run()
	if !childRan {
		t.Error("child process never ran")
	}
	if e.Now() != 6*Second {
		t.Errorf("end time %v, want 6s", e.Now())
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	e := New()
	e.Spawn("boom", func(p *Proc) {
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r != "kaboom" {
			t.Errorf("recovered %v, want kaboom", r)
		}
	}()
	e.Run()
}

func TestRunTwicePanics(t *testing.T) {
	e := New()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	e.Run()
}

func TestCondSignalFIFO(t *testing.T) {
	e := New()
	c := e.NewCond()
	var order []string
	e.Spawn("w1", func(p *Proc) {
		c.Wait(p)
		order = append(order, "w1")
	})
	e.Spawn("w2", func(p *Proc) {
		c.Wait(p)
		order = append(order, "w2")
	})
	e.Spawn("signaller", func(p *Proc) {
		p.Sleep(Second)
		if c.Waiters() != 2 {
			t.Errorf("Waiters = %d, want 2", c.Waiters())
		}
		c.Signal()
		p.Sleep(Second)
		c.Broadcast()
	})
	e.Run()
	if len(order) != 2 || order[0] != "w1" || order[1] != "w2" {
		t.Errorf("wake order = %v, want [w1 w2]", order)
	}
}

func TestCondSignalEmpty(t *testing.T) {
	e := New()
	c := e.NewCond()
	if c.Signal() {
		t.Error("Signal on empty cond reported a wake")
	}
	c.Broadcast() // must not panic
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	c := e.NewCond()
	e.Spawn("stuck", func(p *Proc) {
		c.Wait(p) // nobody will ever signal
	})
	defer func() {
		if recover() == nil {
			t.Error("deadlocked Run did not panic")
		}
	}()
	e.Run()
}

func TestResourceFCFS(t *testing.T) {
	e := New()
	r := e.NewResource("disk")
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *Proc) {
			_, end := r.Use(p, 10*Millisecond)
			ends = append(ends, end)
			if end != p.Now() {
				t.Errorf("Use returned end %v but woke at %v", end, p.Now())
			}
		})
	}
	e.Run()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Errorf("request %d ended at %v, want %v", i, ends[i], want[i])
		}
	}
	st := r.Stats()
	if st.Requests != 3 {
		t.Errorf("Requests = %d, want 3", st.Requests)
	}
	if st.BusyTotal != 30*Millisecond {
		t.Errorf("BusyTotal = %v, want 30ms", st.BusyTotal)
	}
	if st.WaitTotal != 30*Millisecond { // 0 + 10 + 20
		t.Errorf("WaitTotal = %v, want 30ms", st.WaitTotal)
	}
	if u := st.Utilization(30 * Millisecond); u != 1.0 {
		t.Errorf("Utilization = %v, want 1.0", u)
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := New()
	r := e.NewResource("r")
	e.Spawn("a", func(p *Proc) {
		r.Use(p, 5*Millisecond)
		p.Sleep(100 * Millisecond) // leave the resource idle
		start, _ := r.Use(p, 5*Millisecond)
		if start != 105*Millisecond {
			t.Errorf("second use started at %v, want 105ms", start)
		}
	})
	e.Run()
}

func TestResourceReserveAt(t *testing.T) {
	e := New()
	r := e.NewResource("bus")
	e.Spawn("a", func(p *Proc) {
		// Reserve a slot that cannot begin before t=50ms.
		start, end := r.ReserveAt(50*Millisecond, 10*Millisecond)
		if start != 50*Millisecond || end != 60*Millisecond {
			t.Errorf("ReserveAt gave [%v, %v], want [50ms, 60ms]", start, end)
		}
		// Next reservation queues behind it.
		start2, _ := r.Reserve(10 * Millisecond)
		if start2 != 60*Millisecond {
			t.Errorf("queued reservation started at %v, want 60ms", start2)
		}
	})
	e.Run()
}

func TestResourceNegativeServicePanics(t *testing.T) {
	e := New()
	r := e.NewResource("r")
	e.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative service did not panic")
			}
		}()
		r.Use(p, -1)
	})
	e.Run()
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced all-zero stream")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n(1000) = %d out of range", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
		if v := r.Duration(Second); v < 0 || v >= Second {
			t.Fatalf("Duration(1s) = %v out of range", v)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRandUniformish(t *testing.T) {
	r := NewRand(99)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", b, c, n/buckets)
		}
	}
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := New()
	ticks := 0
	e.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	e.Spawn("work", func(p *Proc) {
		p.Sleep(3500 * Millisecond)
	})
	e.Run()
	if ticks != 3 {
		t.Errorf("daemon ticked %d times, want 3", ticks)
	}
	if e.Now() != 3500*Millisecond {
		t.Errorf("ended at %v, want 3.5s", e.Now())
	}
}

func TestDaemonDeferRunsAtShutdown(t *testing.T) {
	e := New()
	cleaned := false
	e.SpawnDaemon("d", func(p *Proc) {
		defer func() { cleaned = true }()
		for {
			p.Sleep(Second)
		}
	})
	e.Spawn("w", func(p *Proc) { p.Sleep(10 * Second) })
	e.Run()
	if !cleaned {
		t.Error("daemon deferred cleanup did not run at shutdown")
	}
}

func TestDaemonFinishingNormally(t *testing.T) {
	e := New()
	e.SpawnDaemon("short", func(p *Proc) { p.Sleep(Second) })
	e.Spawn("w", func(p *Proc) { p.Sleep(5 * Second) })
	e.Run()
	if e.Now() != 5*Second {
		t.Errorf("ended at %v, want 5s", e.Now())
	}
}

func TestOnlyDaemonsRunEndsImmediately(t *testing.T) {
	e := New()
	e.SpawnDaemon("d", func(p *Proc) {
		for {
			p.Sleep(Second)
		}
	})
	e.Run()
	if e.Now() != 0 {
		t.Errorf("engine with only daemons advanced to %v, want 0", e.Now())
	}
}

func TestExtendBusy(t *testing.T) {
	e := New()
	r := e.NewResource("r")
	e.Spawn("a", func(p *Proc) {
		r.Reserve(10 * Millisecond)
		r.ExtendBusy(25 * Millisecond)
		start, _ := r.Reserve(5 * Millisecond)
		if start != 25*Millisecond {
			t.Errorf("post-extend reservation started at %v, want 25ms", start)
		}
		r.ExtendBusy(10 * Millisecond) // earlier than horizon: no-op
		if r.BusyUntil() != 30*Millisecond {
			t.Errorf("BusyUntil = %v, want 30ms", r.BusyUntil())
		}
	})
	e.Run()
}

// Property: for any set of sleep durations, total elapsed equals the sum and
// the engine never reorders a single process's steps.
func TestQuickSleepAccumulates(t *testing.T) {
	f := func(durs []uint16) bool {
		e := New()
		var total Time
		e.Spawn("p", func(p *Proc) {
			for _, d := range durs {
				p.Sleep(Time(d))
				total += Time(d)
			}
		})
		e.Run()
		return e.Now() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProcAccessors(t *testing.T) {
	e := New()
	p := e.Spawn("worker", func(p *Proc) {
		if p.ID() != 0 {
			t.Errorf("ID = %d", p.ID())
		}
		if p.Name() != "worker" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine accessor wrong")
		}
		p.Yield()
	})
	e.Run()
	_ = p
}

func TestResourceName(t *testing.T) {
	e := New()
	r := e.NewResource("disk0")
	if r.Name() != "disk0" {
		t.Errorf("Name = %q", r.Name())
	}
	if (ResourceStats{}).Utilization(0) != 0 {
		t.Error("Utilization at t=0 not 0")
	}
}

func TestRandInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	NewRand(1).Int63n(0)
}

func TestRandShuffle(t *testing.T) {
	r := NewRand(5)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), vals...)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	same := true
	for i, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
		if v != orig[i] {
			same = false
		}
	}
	if same {
		t.Error("shuffle left the slice untouched (suspicious for 8 elements)")
	}
}

func TestKilledErrorMessage(t *testing.T) {
	var ke killedError
	if ke.Error() == "" {
		t.Error("empty killed error message")
	}
}
