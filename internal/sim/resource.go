package sim

import "fmt"

// Resource models a single server with a FIFO queue (for example a CPU, a
// SCSI bus, or a disk arm). A process uses the resource by calling Use with
// a service duration: the request begins when the server frees up and the
// process sleeps until its own service completes. Because requests are
// granted in call order, this is exactly an M/G/1-style FCFS queue over
// virtual time, without needing an explicit server process.
type Resource struct {
	eng       *Engine
	name      string
	busyUntil Time
	busyTotal Time // accumulated service time
	requests  int64
	waitTotal Time // accumulated queueing delay
}

// NewResource returns a named FCFS resource.
func (e *Engine) NewResource(name string) *Resource {
	return &Resource{eng: e, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Use enqueues a request of the given service duration on behalf of p and
// blocks p until the request completes. It returns the virtual times at
// which service started and ended.
func (r *Resource) Use(p *Proc, service Time) (start, end Time) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v on %s", service, r.name))
	}
	start, end = r.Reserve(service)
	p.SleepUntil(end)
	return start, end
}

// Reserve books service time on the resource without blocking: the request
// is appended to the queue and the completion time returned. Callers that
// need to overlap several reservations (for example a disk transfer that
// also holds the bus) reserve first and sleep on the latest completion.
func (r *Resource) Reserve(service Time) (start, end Time) {
	now := r.eng.now
	start = r.busyUntil
	if start < now {
		start = now
	}
	end = start + service
	r.busyUntil = end
	r.busyTotal += service
	r.waitTotal += start - now
	r.requests++
	return start, end
}

// ReserveAt books service that cannot start before time at (in addition to
// the queue constraint). Used when an upstream stage feeds this resource.
func (r *Resource) ReserveAt(at Time, service Time) (start, end Time) {
	now := r.eng.now
	if at < now {
		at = now
	}
	start = r.busyUntil
	if start < at {
		start = at
	}
	end = start + service
	r.busyUntil = end
	r.busyTotal += service
	r.waitTotal += start - at
	r.requests++
	return start, end
}

// BusyUntil returns the time at which the last queued request completes.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// ExtendBusy keeps the resource occupied through time t if t is later than
// its current completion horizon. Used when a downstream stage (for example
// a shared bus) delays the release of this resource.
func (r *Resource) ExtendBusy(t Time) {
	if t > r.busyUntil {
		r.busyUntil = t
	}
}

// Stats reports aggregate counters for the resource.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Name:      r.name,
		Requests:  r.requests,
		BusyTotal: r.busyTotal,
		WaitTotal: r.waitTotal,
	}
}

// ResourceStats is a snapshot of resource counters.
type ResourceStats struct {
	Name      string
	Requests  int64
	BusyTotal Time // total service time delivered
	WaitTotal Time // total time requests spent queued before service
}

// Utilization reports the fraction of the interval [0, now] the resource
// spent busy.
func (s ResourceStats) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(s.BusyTotal) / float64(now)
}
