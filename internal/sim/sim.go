// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock and runs simulated processes, each of
// which is an ordinary Go function executing on its own goroutine. At any
// instant exactly one process goroutine is runnable; a process runs until it
// blocks on the virtual clock (Sleep, SleepUntil) or on a condition
// (Cond.Wait), at which point control hands back to the engine. Events that
// fire at the same virtual time run in the order they were scheduled. Given
// the same inputs, a simulation therefore produces exactly the same
// interleaving and the same results on every run.
package sim

import (
	"fmt"
	"sort"
)

// Time is a point in virtual time, measured in microseconds from the start
// of the simulation.
type Time int64

// Convenient durations expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// FromSeconds converts floating-point seconds to Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMillis converts floating-point milliseconds to Time.
func FromMillis(ms float64) Time { return Time(ms*float64(Millisecond) + 0.5) }

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  uint64 // tie-break: schedule order
	proc *Proc
}

// before reports whether a fires strictly before b: earlier virtual time,
// schedule order breaking ties.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events ordered by event.before. It is
// typed end to end — unlike container/heap there is no interface boxing,
// so push/pop allocate nothing in steady state (pushes reuse the slice's
// capacity once it has grown to the simulation's high-water mark). The
// engine's event loop runs one push and one pop per process wake-up,
// which makes this the hottest data structure in the simulator.
type eventHeap []event

// push adds ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// pop removes and returns the earliest event. It panics on an empty heap.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the *Proc so the slice does not retain it
	s = s[:n]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].before(s[least]) {
			least = l
		}
		if rt < n && s[rt].before(s[least]) {
			least = rt
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	*h = s
	return top
}

// Engine is a discrete-event simulation. The zero value is not usable; call
// New.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	procs   []*Proc
	yield   chan yieldMsg
	started bool
	killing bool
	nLive   int // live non-daemon processes
}

type yieldMsg struct {
	proc *Proc
	done bool
	pani interface{} // non-nil if the proc body panicked
}

// New returns a fresh simulation engine with the clock at zero.
func New() *Engine {
	return &Engine{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ProcState describes the lifecycle of a simulated process.
type ProcState int

const (
	// Created means Spawn has been called but the body has not started.
	Created ProcState = iota
	// Running means the body has started and not yet returned.
	Running
	// Done means the body returned.
	Done
)

// Proc is a simulated process. Its body function runs on a dedicated
// goroutine; all blocking is via the methods on Proc, which cooperate with
// the engine.
type Proc struct {
	eng     *Engine
	id      int
	name    string
	body    func(*Proc)
	resume  chan struct{}
	state   ProcState
	daemon  bool
	start   Time // virtual time the body begins
	begun   Time // virtual time the body actually began
	end     Time // virtual time the body returned
	waiting bool // parked on an external condition, not the clock
}

// ID returns the process identifier, assigned in spawn order starting at 0.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// State returns the process lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Now returns the current virtual time. Only valid while p is running.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// StartTime returns the virtual time at which the body began executing.
func (p *Proc) StartTime() Time { return p.begun }

// EndTime returns the virtual time at which the body returned. It is only
// meaningful once State is Done.
func (p *Proc) EndTime() Time { return p.end }

// Elapsed returns the virtual time the process body took from its start to
// its completion. It is only meaningful once State is Done.
func (p *Proc) Elapsed() Time { return p.end - p.begun }

// Spawn registers a new process whose body starts at the current virtual
// time (or at engine start, if the engine is not running yet).
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	return e.SpawnAt(name, e.now, body)
}

// SpawnAt registers a new process whose body starts at virtual time at.
// Spawning in the past is an error and panics.
func (e *Engine) SpawnAt(name string, at Time, body func(*Proc)) *Proc {
	p := e.spawn(name, at, body, false)
	return p
}

// SpawnDaemon registers a background process that does not keep the
// simulation alive: Run returns once every non-daemon process has finished,
// abandoning daemons wherever they are parked. Daemons are for periodic
// housekeeping such as a sync/update daemon.
func (e *Engine) SpawnDaemon(name string, body func(*Proc)) *Proc {
	return e.spawn(name, e.now, body, true)
}

func (e *Engine) spawn(name string, at Time, body func(*Proc), daemon bool) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) in the past (now %v)", at, e.now))
	}
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		body:   body,
		resume: make(chan struct{}),
		start:  at,
		daemon: daemon,
	}
	e.procs = append(e.procs, p)
	if !daemon {
		e.nLive++
	}
	e.schedule(at, p)
	return p
}

func (e *Engine) schedule(at Time, p *Proc) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p})
}

// errKilled is the sentinel panic value used to unwind abandoned daemon
// goroutines when the simulation ends.
type killedError struct{}

func (killedError) Error() string { return "sim: daemon killed at shutdown" }

// Run executes the simulation until every non-daemon process has finished
// (or no scheduled events remain). It panics if a process body panicked,
// propagating the original panic value, or if the simulation deadlocks
// (live processes remain but none is scheduled — e.g. a process parked on a
// condition nobody will signal). Daemon processes still parked when Run
// finishes are unwound cleanly so their goroutines do not leak.
func (e *Engine) Run() {
	if e.started {
		panic("sim: Engine.Run called twice")
	}
	e.started = true
	for e.nLive > 0 && len(e.events) > 0 {
		ev := e.events.pop()
		p := ev.proc
		if p.state == Done {
			continue // stale wake-up
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.step(p)
	}
	if e.nLive > 0 {
		names := e.liveNames()
		panic(fmt.Sprintf("sim: deadlock — %d live process(es) but no pending events: %v", e.nLive, names))
	}
	e.shutdownDaemons()
}

// shutdownDaemons unwinds every still-running daemon by resuming it with
// the kill flag set; its park call panics with killedError, which the
// process wrapper reports back here.
func (e *Engine) shutdownDaemons() {
	e.killing = true
	for _, p := range e.procs {
		if !p.daemon || p.state != Running {
			continue
		}
		p.resume <- struct{}{}
		msg := <-e.yield
		if msg.pani != nil {
			if _, ok := msg.pani.(killedError); !ok {
				panic(msg.pani)
			}
		}
		p.state = Done
		p.end = e.now
	}
}

func (e *Engine) liveNames() []string {
	var names []string
	for _, p := range e.procs {
		if p.state != Done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// step resumes process p and waits for it to yield back.
func (e *Engine) step(p *Proc) {
	switch p.state {
	case Created:
		p.state = Running
		p.begun = e.now
		go func() {
			defer func() {
				if r := recover(); r != nil {
					e.yield <- yieldMsg{proc: p, done: true, pani: r}
					return
				}
			}()
			p.body(p)
			e.yield <- yieldMsg{proc: p, done: true}
		}()
	case Running:
		p.resume <- struct{}{}
	case Done:
		return
	}
	msg := <-e.yield
	if msg.pani != nil {
		panic(msg.pani)
	}
	if msg.done {
		mp := msg.proc
		mp.state = Done
		mp.end = e.now
		if !mp.daemon {
			e.nLive--
		}
	}
}

// park blocks the calling process goroutine until the engine resumes it.
// Must be called from within the process's own body.
func (p *Proc) park() {
	p.eng.yield <- yieldMsg{proc: p}
	<-p.resume
	if p.eng.killing {
		panic(killedError{})
	}
}

// SleepUntil blocks the process until virtual time t. Sleeping until a time
// in the past (or the present) returns immediately but still yields to the
// scheduler, preserving event ordering.
func (p *Proc) SleepUntil(t Time) {
	if t < p.eng.now {
		t = p.eng.now
	}
	p.eng.schedule(t, p)
	p.park()
}

// Sleep blocks the process for duration d of virtual time. Negative
// durations sleep zero time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.eng.now + d)
}

// Yield gives other processes scheduled for the current instant a chance to
// run, then continues.
func (p *Proc) Yield() { p.SleepUntil(p.eng.now) }

// Cond is a waitable condition inside the simulation: processes block on it
// with Wait and are released, in FIFO order, by Signal or Broadcast issued
// from another process.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition tied to the engine.
func (e *Engine) NewCond() *Cond { return &Cond{eng: e} }

// Wait parks the calling process until another process signals the
// condition.
func (c *Cond) Wait(p *Proc) {
	p.waiting = true
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, scheduling it at the current
// virtual time. It reports whether a process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.waiting = false
	c.eng.schedule(c.eng.now, w)
	return true
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for c.Signal() {
	}
}

// Waiters reports how many processes are parked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }
