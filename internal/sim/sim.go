// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock and runs simulated processes, each of
// which is an ordinary Go function executing on its own goroutine. At any
// instant exactly one process goroutine is runnable; a process runs until it
// blocks on the virtual clock (Sleep, SleepUntil) or on a condition
// (Cond.Wait), at which point control hands back to the engine. Events that
// fire at the same virtual time run in the order they were scheduled. Given
// the same inputs, a simulation therefore produces exactly the same
// interleaving and the same results on every run.
package sim

import (
	"fmt"
	"sort"
)

// Time is a point in virtual time, measured in microseconds from the start
// of the simulation.
type Time int64

// Convenient durations expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// FromSeconds converts floating-point seconds to Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMillis converts floating-point milliseconds to Time.
func FromMillis(ms float64) Time { return Time(ms*float64(Millisecond) + 0.5) }

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  uint64 // tie-break: schedule order
	proc *Proc
}

// before reports whether a fires strictly before b: earlier virtual time,
// schedule order breaking ties.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events ordered by event.before. It is
// typed end to end — unlike container/heap there is no interface boxing,
// so push/pop allocate nothing in steady state (pushes reuse the slice's
// capacity once it has grown to the simulation's high-water mark). The
// engine's event loop runs one push and one pop per process wake-up,
// which makes this the hottest data structure in the simulator.
type eventHeap []event

// push adds ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// pop removes and returns the earliest event. It panics on an empty heap.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the *Proc so the slice does not retain it
	s = s[:n]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].before(s[least]) {
			least = l
		}
		if rt < n && s[rt].before(s[least]) {
			least = rt
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	*h = s
	return top
}

// Engine is a discrete-event simulation. The zero value is not usable; call
// New.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	procs   []*Proc
	current *Proc // the process executing right now (nil between steps)
	started bool
	killing bool
	noFast  bool // DisableFastPath: every sleep goes through the scheduler
	nLive   int  // live non-daemon processes
	stats   Stats
}

type yieldMsg struct {
	done bool
	pani interface{} // non-nil if the proc body panicked
}

// Stats counts engine activity over a run. The interesting ratio is
// FastAdvances to Handoffs: every fast advance is a wake-up that moved
// virtual time inline instead of paying a heap push plus two goroutine
// context switches.
type Stats struct {
	// EventsScheduled is the number of heap pushes (spawns, parked
	// sleeps, condition signals).
	EventsScheduled int64 `json:"events_scheduled"`
	// Handoffs is the number of engine<->process goroutine round trips
	// (one resume plus one yield each).
	Handoffs int64 `json:"handoffs"`
	// FastAdvances is the number of SleepUntil/Sleep/Yield calls that
	// advanced the clock inline via the lookahead fast path.
	FastAdvances int64 `json:"fast_advances"`
	// HeapHighWater is the deepest the event heap ever got.
	HeapHighWater int `json:"heap_high_water"`
}

// Accumulate folds o into s: counters add, high-water marks take the max.
// Used to aggregate the engines of many independent runs.
func (s *Stats) Accumulate(o Stats) {
	s.EventsScheduled += o.EventsScheduled
	s.Handoffs += o.Handoffs
	s.FastAdvances += o.FastAdvances
	if o.HeapHighWater > s.HeapHighWater {
		s.HeapHighWater = o.HeapHighWater
	}
}

// Option configures an Engine at construction.
type Option func(*Engine)

// DisableFastPath forces every sleep through the event heap and the
// goroutine scheduler, disabling the lookahead fast path. The two modes
// are observationally equivalent (the fast path fires only when it is
// provably so); this option exists so differential tests can prove it.
var DisableFastPath Option = func(e *Engine) { e.noFast = true }

// New returns a fresh simulation engine with the clock at zero.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ProcState describes the lifecycle of a simulated process.
type ProcState int

const (
	// Created means Spawn has been called but the body has not started.
	Created ProcState = iota
	// Running means the body has started and not yet returned.
	Running
	// Done means the body returned.
	Done
)

// Proc is a simulated process. Its body function runs on a dedicated
// goroutine; all blocking is via the methods on Proc, which cooperate with
// the engine.
type Proc struct {
	eng  *Engine
	id   int
	name string
	body func(*Proc)
	// rendez is the single handoff channel between the engine and this
	// process's goroutine. Control strictly alternates (engine resumes,
	// process yields), so one unbuffered channel serves both directions:
	// the engine sends the resume token and then blocks receiving the
	// yield; the process sends the yield and then blocks receiving the
	// next resume.
	rendez  chan yieldMsg
	state   ProcState
	daemon  bool
	start   Time // virtual time the body begins
	begun   Time // virtual time the body actually began
	end     Time // virtual time the body returned
	waiting bool // parked on an external condition, not the clock
}

// ID returns the process identifier, assigned in spawn order starting at 0.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// State returns the process lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Now returns the current virtual time. Only valid while p is running.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// StartTime returns the virtual time at which the body began executing.
func (p *Proc) StartTime() Time { return p.begun }

// EndTime returns the virtual time at which the body returned. It is only
// meaningful once State is Done.
func (p *Proc) EndTime() Time { return p.end }

// Elapsed returns the virtual time the process body took from its start to
// its completion. It is only meaningful once State is Done.
func (p *Proc) Elapsed() Time { return p.end - p.begun }

// Spawn registers a new process whose body starts at the current virtual
// time (or at engine start, if the engine is not running yet).
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	return e.SpawnAt(name, e.now, body)
}

// SpawnAt registers a new process whose body starts at virtual time at.
// Spawning in the past is an error and panics.
func (e *Engine) SpawnAt(name string, at Time, body func(*Proc)) *Proc {
	p := e.spawn(name, at, body, false)
	return p
}

// SpawnDaemon registers a background process that does not keep the
// simulation alive: Run returns once every non-daemon process has finished,
// abandoning daemons wherever they are parked. Daemons are for periodic
// housekeeping such as a sync/update daemon.
func (e *Engine) SpawnDaemon(name string, body func(*Proc)) *Proc {
	return e.spawn(name, e.now, body, true)
}

func (e *Engine) spawn(name string, at Time, body func(*Proc), daemon bool) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) in the past (now %v)", at, e.now))
	}
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		body:   body,
		rendez: make(chan yieldMsg),
		start:  at,
		daemon: daemon,
	}
	e.procs = append(e.procs, p)
	if !daemon {
		e.nLive++
	}
	e.schedule(at, p)
	return p
}

func (e *Engine) schedule(at Time, p *Proc) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p})
	e.stats.EventsScheduled++
	if n := len(e.events); n > e.stats.HeapHighWater {
		e.stats.HeapHighWater = n
	}
}

// errKilled is the sentinel panic value used to unwind abandoned daemon
// goroutines when the simulation ends.
type killedError struct{}

func (killedError) Error() string { return "sim: daemon killed at shutdown" }

// Run executes the simulation until every non-daemon process has finished
// (or no scheduled events remain). It panics if a process body panicked,
// propagating the original panic value, or if the simulation deadlocks
// (live processes remain but none is scheduled — e.g. a process parked on a
// condition nobody will signal). Daemon processes still parked when Run
// finishes are unwound cleanly so their goroutines do not leak.
func (e *Engine) Run() {
	if e.started {
		panic("sim: Engine.Run called twice")
	}
	e.started = true
	for e.nLive > 0 && len(e.events) > 0 {
		ev := e.events.pop()
		p := ev.proc
		if p.state == Done {
			continue // stale wake-up
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.step(p)
	}
	if e.nLive > 0 {
		names := e.liveNames()
		panic(fmt.Sprintf("sim: deadlock — %d live process(es) but no pending events: %v", e.nLive, names))
	}
	e.shutdownDaemons()
}

// shutdownDaemons unwinds every still-running daemon by resuming it with
// the kill flag set; its park call panics with killedError, which the
// process wrapper reports back here.
func (e *Engine) shutdownDaemons() {
	e.killing = true
	for _, p := range e.procs {
		if !p.daemon || p.state != Running {
			continue
		}
		p.rendez <- yieldMsg{}
		msg := <-p.rendez
		if msg.pani != nil {
			if _, ok := msg.pani.(killedError); !ok {
				panic(msg.pani)
			}
		}
		p.state = Done
		p.end = e.now
	}
}

func (e *Engine) liveNames() []string {
	var names []string
	for _, p := range e.procs {
		if p.state != Done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// step resumes process p and waits for it to yield back. While p runs it
// is e.current, which is what entitles it to the SleepUntil fast path.
func (e *Engine) step(p *Proc) {
	e.current = p
	switch p.state {
	case Created:
		p.state = Running
		p.begun = e.now
		go func() {
			defer func() {
				if r := recover(); r != nil {
					p.rendez <- yieldMsg{done: true, pani: r}
					return
				}
			}()
			p.body(p)
			p.rendez <- yieldMsg{done: true}
		}()
	case Running:
		p.rendez <- yieldMsg{}
	case Done:
		e.current = nil
		return
	}
	e.stats.Handoffs++
	msg := <-p.rendez
	e.current = nil
	if msg.pani != nil {
		panic(msg.pani)
	}
	if msg.done {
		p.state = Done
		p.end = e.now
		if !p.daemon {
			e.nLive--
		}
	}
}

// park blocks the calling process goroutine until the engine resumes it.
// Must be called from within the process's own body.
func (p *Proc) park() {
	p.rendez <- yieldMsg{}
	<-p.rendez
	if p.eng.killing {
		panic(killedError{})
	}
}

// SleepUntil blocks the process until virtual time t. Sleeping until a time
// in the past (or the present) returns immediately but still yields to the
// scheduler, preserving event ordering.
//
// Lookahead fast path: when the caller is the currently-executing process
// and the event heap is empty or its earliest event fires strictly after
// t, no other process can possibly run before the caller's wake-up at t —
// the slow path would push an event, hand off to the engine, and have the
// engine pop that same event right back. In that provably-equivalent case
// the clock advances inline: no heap traffic, no channel operations, no
// goroutine context switches. A top event at exactly t must still park:
// it was scheduled earlier, so sequence numbers order it before the
// caller at that instant.
func (p *Proc) SleepUntil(t Time) {
	e := p.eng
	if t < e.now {
		t = e.now
	}
	if e.current == p && !e.noFast && !e.killing &&
		(len(e.events) == 0 || t < e.events[0].at) {
		e.now = t
		e.stats.FastAdvances++
		return
	}
	e.schedule(t, p)
	p.park()
}

// Sleep blocks the process for duration d of virtual time. Negative
// durations sleep zero time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.eng.now + d)
}

// Yield gives other processes scheduled for the current instant a chance to
// run, then continues. When no same-instant event exists the SleepUntil
// fast path makes this free: no heap traffic and no handoff.
func (p *Proc) Yield() { p.SleepUntil(p.eng.now) }

// Cond is a waitable condition inside the simulation: processes block on it
// with Wait and are released, in FIFO order, by Signal or Broadcast issued
// from another process.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition tied to the engine.
func (e *Engine) NewCond() *Cond { return &Cond{eng: e} }

// Wait parks the calling process until another process signals the
// condition.
func (c *Cond) Wait(p *Proc) {
	p.waiting = true
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, scheduling it at the current
// virtual time. It reports whether a process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.waiting = false
	c.eng.schedule(c.eng.now, w)
	return true
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for c.Signal() {
	}
}

// Waiters reports how many processes are parked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }
