package sim

import (
	"sort"
	"testing"
)

// heapEvents builds a deterministic scrambled batch of events.
func heapEvents(n int) []event {
	r := NewRand(42)
	evs := make([]event, n)
	for i := range evs {
		evs[i] = event{at: Time(r.Uint64() % 1000), seq: uint64(i)}
	}
	return evs
}

func TestEventHeapOrdering(t *testing.T) {
	evs := heapEvents(500)
	var h eventHeap
	for _, ev := range evs {
		h.push(ev)
	}
	want := append([]event(nil), evs...)
	sort.Slice(want, func(i, j int) bool { return want[i].before(want[j]) })
	for i, w := range want {
		got := h.pop()
		if got.at != w.at || got.seq != w.seq {
			t.Fatalf("pop %d = {at:%d seq:%d}, want {at:%d seq:%d}",
				i, got.at, got.seq, w.at, w.seq)
		}
	}
	if len(h) != 0 {
		t.Fatalf("%d events left after draining", len(h))
	}
}

// TestEventHeapZeroAllocs pins the point of the typed heap: once the
// slice has grown to its high-water mark, steady-state push/pop cycles
// must not allocate (container/heap boxed every event into an interface
// value on both Push and Pop).
func TestEventHeapZeroAllocs(t *testing.T) {
	var h eventHeap
	for i := 0; i < 64; i++ {
		h.push(event{at: Time(i * 37 % 64), seq: uint64(i)})
	}
	seq := uint64(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			seq++
			h.push(event{at: Time(seq * 31 % 128), seq: seq})
		}
		for i := 0; i < 8; i++ {
			h.pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkEventHeap measures one push+pop cycle against a heap
// pre-loaded to a typical simulation depth (tens of pending wake-ups:
// processes, disks, the update daemon).
func BenchmarkEventHeap(b *testing.B) {
	var h eventHeap
	for i := 0; i < 32; i++ {
		h.push(event{at: Time(i * 37 % 64), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.push(event{at: Time(i % 97), seq: uint64(i + 32)})
		h.pop()
	}
}
