package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestFastPathSingleSleeper pins the basic lookahead: a lone process
// advancing the clock pays no heap traffic and (nearly) no handoffs.
func TestFastPathSingleSleeper(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Millisecond)
		}
	})
	e.Run()
	st := e.Stats()
	if st.FastAdvances != 100 {
		t.Errorf("FastAdvances = %d, want 100", st.FastAdvances)
	}
	// One handoff to start the body; none per sleep.
	if st.Handoffs != 1 {
		t.Errorf("Handoffs = %d, want 1", st.Handoffs)
	}
	// Only the spawn event is ever scheduled.
	if st.EventsScheduled != 1 {
		t.Errorf("EventsScheduled = %d, want 1", st.EventsScheduled)
	}
	if e.Now() != 100*Millisecond {
		t.Errorf("ended at %v, want 100ms", e.Now())
	}
}

// TestFastPathDisabled proves DisableFastPath restores the all-parked
// engine: same results, zero fast advances, one event per sleep.
func TestFastPathDisabled(t *testing.T) {
	e := New(DisableFastPath)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Millisecond)
		}
	})
	e.Run()
	st := e.Stats()
	if st.FastAdvances != 0 {
		t.Errorf("FastAdvances = %d, want 0 with DisableFastPath", st.FastAdvances)
	}
	if st.EventsScheduled != 101 { // spawn + 100 sleeps
		t.Errorf("EventsScheduled = %d, want 101", st.EventsScheduled)
	}
	if st.Handoffs != 101 {
		t.Errorf("Handoffs = %d, want 101", st.Handoffs)
	}
	if e.Now() != 100*Millisecond {
		t.Errorf("ended at %v, want 100ms", e.Now())
	}
}

// TestFastPathTieParks pins the tie rule: a sleep landing exactly on the
// heap's top event must park, because that event was scheduled first and
// sequence numbers order same-instant wake-ups.
func TestFastPathTieParks(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.SleepUntil(100) // ties with b's start event: must run after b
		order = append(order, "a")
	})
	e.SpawnAt("b", 100, func(p *Proc) {
		order = append(order, "b")
	})
	e.Run()
	// a was spawned first, so a runs first at t=0 and calls
	// SleepUntil(100). b's start event already sits at t=100; a naive
	// fast path would advance inline and record "a" first.
	if want := []string{"b", "a"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v (tie must go through the scheduler)", order, want)
	}
	if e.Stats().FastAdvances != 0 {
		t.Errorf("FastAdvances = %d, want 0 (both wake-ups tie-constrained)", e.Stats().FastAdvances)
	}
}

// TestFastPathEarlierEventParks: sleeping past another process's earlier
// wake-up must park so that process runs first.
func TestFastPathEarlierEventParks(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("late", func(p *Proc) {
		p.SleepUntil(200)
		order = append(order, "late")
	})
	e.SpawnAt("early", 100, func(p *Proc) {
		order = append(order, "early")
	})
	e.Run()
	if want := []string{"early", "late"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

// TestFastPathYieldSkipsHeap: Yield with no same-instant event pending is
// free; with one pending it parks and lets the other process run.
func TestFastPathYieldSkipsHeap(t *testing.T) {
	e := New()
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Yield()
		}
	})
	e.Run()
	if st := e.Stats(); st.FastAdvances != 10 || st.EventsScheduled != 1 {
		t.Errorf("solo yield: FastAdvances=%d EventsScheduled=%d, want 10 and 1",
			st.FastAdvances, st.EventsScheduled)
	}

	// With a same-instant event pending, Yield must reach the scheduler.
	e2 := New()
	var order []string
	e2.Spawn("y", func(p *Proc) {
		p.Yield() // peer's start event is at the same instant
		order = append(order, "y")
	})
	e2.Spawn("peer", func(p *Proc) {
		order = append(order, "peer")
	})
	e2.Run()
	if want := []string{"peer", "y"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

// TestFastPathHeapHighWater sanity-checks the high-water counter.
func TestFastPathHeapHighWater(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.SpawnAt("p", Time(i), func(p *Proc) {})
	}
	e.Run()
	if hw := e.Stats().HeapHighWater; hw != 7 {
		t.Errorf("HeapHighWater = %d, want 7", hw)
	}
}

// TestStatsAccumulate checks the aggregation used by the experiment
// harness: counters add, the high-water mark takes the max.
func TestStatsAccumulate(t *testing.T) {
	a := Stats{EventsScheduled: 1, Handoffs: 2, FastAdvances: 3, HeapHighWater: 9}
	a.Accumulate(Stats{EventsScheduled: 10, Handoffs: 20, FastAdvances: 30, HeapHighWater: 4})
	want := Stats{EventsScheduled: 11, Handoffs: 22, FastAdvances: 33, HeapHighWater: 9}
	if a != want {
		t.Errorf("Accumulate = %+v, want %+v", a, want)
	}
}

// TestSleepFastPathZeroAllocs is the allocation gate for the tentpole:
// a fast-path sleep is an inline clock bump and must not allocate.
func TestSleepFastPathZeroAllocs(t *testing.T) {
	e := New()
	var allocs float64
	e.Spawn("p", func(p *Proc) {
		p.Sleep(1) // warm up
		allocs = testing.AllocsPerRun(200, func() {
			p.Sleep(1)
		})
	})
	e.Run()
	if allocs != 0 {
		t.Errorf("fast-path Sleep allocated %.1f times per call, want 0", allocs)
	}
}

// scenarioOp is one step of a random process in the equivalence test.
type scenarioOp struct {
	kind int // 0 sleep, 1 yield, 2 cond wait, 3 cond signal, 4 spawn child
	arg  Time
}

// buildScenario derives a deterministic random mix of sleepers, yielders,
// cond-waiters, signallers, mid-run spawns and a daemon from the seed.
func buildScenario(seed uint64) [][]scenarioOp {
	r := NewRand(seed)
	procs := make([][]scenarioOp, 2+r.Intn(4))
	for i := range procs {
		ops := make([]scenarioOp, 3+r.Intn(8))
		for j := range ops {
			ops[j] = scenarioOp{kind: r.Intn(5), arg: Time(r.Intn(40))}
		}
		procs[i] = ops
	}
	return procs
}

// runScenario executes the scenario and returns the full observable
// ordering: every step of every process tagged with its virtual time,
// plus each process's end time and the final clock.
func runScenario(procs [][]scenarioOp, opts ...Option) []string {
	var log []string
	e := New(opts...)
	c := e.NewCond()
	// A daemon signaller guarantees cond-waiters always wake, so no
	// random mix can deadlock; daemons also exercise shutdown unwinding.
	e.SpawnDaemon("sig", func(p *Proc) {
		for {
			p.Sleep(7)
			c.Broadcast()
		}
	})
	children := 0
	for i, ops := range procs {
		name := fmt.Sprintf("p%d", i)
		ops := ops
		e.Spawn(name, func(p *Proc) {
			for j, o := range ops {
				switch o.kind {
				case 0:
					p.Sleep(o.arg)
				case 1:
					p.Yield()
				case 2:
					c.Wait(p)
				case 3:
					c.Signal()
				case 4:
					children++
					cn := fmt.Sprintf("%s.c%d", name, children)
					e.SpawnAt(cn, p.Now()+o.arg, func(cp *Proc) {
						cp.Sleep(o.arg)
						log = append(log, fmt.Sprintf("%s@%d", cn, cp.Now()))
					})
				}
				log = append(log, fmt.Sprintf("%s.%d@%d", name, j, p.Now()))
			}
		})
	}
	e.Run()
	log = append(log, fmt.Sprintf("end@%d", e.Now()))
	return log
}

// TestQuickFastParkedEquivalence is the differential property test: for
// random mixes of sleepers, yielders, cond-waiters, signallers, mid-run
// spawns and daemons, the fast-path engine must produce exactly the same
// event ordering as the all-parked engine.
func TestQuickFastParkedEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		procs := buildScenario(seed)
		fast := runScenario(procs)
		parked := runScenario(procs, DisableFastPath)
		if !reflect.DeepEqual(fast, parked) {
			t.Fatalf("seed %d: orderings diverge\nfast:   %v\nparked: %v", seed, fast, parked)
		}
	}
}
