package vmclock

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// acceptAll is a manager that always takes the clock's suggestion —
// oblivious, but through the two-level path.
type acceptAll struct{ ins, outs int }

func (m *acceptAll) PageIn(*Page)                          { m.ins++ }
func (m *acceptAll) PageOut(*Page)                         { m.outs++ }
func (m *acceptAll) ChooseVictim(c *Page, _ []*Page) *Page { return c }
func (m *acceptAll) MistakeCaught(PageID, *Page)           {}

// mruOfFaults evicts its most-recently-faulted page. For a loop larger
// than memory that is the smart choice; for a ReadN-style pattern (repeat
// a group five times, then move to fresh pages) it is foolish: it keeps
// dead old-group pages forever while churning the live group.
type mruOfFaults struct{ recent []*Page }

func (m *mruOfFaults) PageIn(pg *Page) { m.recent = append(m.recent, pg) }
func (m *mruOfFaults) PageOut(pg *Page) {
	for i, p := range m.recent {
		if p == pg {
			m.recent = append(m.recent[:i], m.recent[i+1:]...)
			return
		}
	}
}
func (m *mruOfFaults) ChooseVictim(c *Page, _ []*Page) *Page {
	if len(m.recent) > 0 && m.recent[len(m.recent)-1] != c {
		return m.recent[len(m.recent)-1]
	}
	return c
}
func (m *mruOfFaults) MistakeCaught(PageID, *Page) {}

func id(proc int, v int32) PageID { return PageID{Proc: proc, VPage: v} }

func TestBasicFaultAndResidency(t *testing.T) {
	c := New(Config{Frames: 4})
	if !c.Access(id(1, 0)) {
		t.Error("first access did not fault")
	}
	if c.Access(id(1, 0)) {
		t.Error("second access faulted")
	}
	if !c.Resident(id(1, 0)) || c.Resident(id(1, 9)) {
		t.Error("residency wrong")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Faults != 1 {
		t.Errorf("stats = %+v", st)
	}
	c.CheckInvariants()
}

func TestClockEvictsUnreferenced(t *testing.T) {
	c := New(Config{Frames: 4, HandGap: 1})
	for v := int32(0); v < 4; v++ {
		c.Access(id(1, v))
	}
	// Keep touching pages 1-3; page 0's bit goes stale.
	for i := 0; i < 8; i++ {
		for v := int32(1); v < 4; v++ {
			c.Access(id(1, v))
		}
		// Hand movement only happens on faults; force sweeps with
		// new pages and re-touch the survivors.
		c.Access(id(1, 10+int32(i)))
	}
	if c.Resident(id(1, 0)) {
		t.Error("stale page 0 survived repeated eviction rounds")
	}
	c.CheckInvariants()
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero frames did not panic")
		}
	}()
	New(Config{})
}

func TestManagerLifecycle(t *testing.T) {
	c := New(Config{Frames: 3, Swapping: true, Placeholders: true})
	m := &acceptAll{}
	c.SetManager(1, m)
	for v := int32(0); v < 5; v++ {
		c.Access(id(1, v))
	}
	if m.ins != 5 || m.outs != 2 {
		t.Errorf("manager saw %d ins, %d outs; want 5, 2", m.ins, m.outs)
	}
	c.SetManager(1, nil)
	c.Access(id(1, 9))
	if m.ins != 5 {
		t.Error("removed manager still notified")
	}
	c.CheckInvariants()
}

func TestInvalidVictimPanics(t *testing.T) {
	c := New(Config{Frames: 2, Swapping: true})
	c.SetManager(1, managerFunc(func(cand *Page, _ []*Page) *Page {
		return &Page{ID: id(1, 99)} // not resident
	}))
	c.Access(id(1, 0))
	c.Access(id(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("invalid victim did not panic")
		}
	}()
	c.Access(id(1, 2))
}

// managerFunc adapts a function to the Manager interface.
type managerFunc func(*Page, []*Page) *Page

func (managerFunc) PageIn(*Page)                            {}
func (managerFunc) PageOut(*Page)                           {}
func (f managerFunc) ChooseVictim(c *Page, r []*Page) *Page { return f(c, r) }
func (managerFunc) MistakeCaught(PageID, *Page)             {}

// TestObliviousEqualsPlainClock is criterion 1 in the VM setting: a
// process whose manager always accepts the candidate faults exactly as
// often as under the plain clock, for any access pattern.
func TestObliviousEqualsPlainClock(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		refs := make([]PageID, 3000)
		for i := range refs {
			refs[i] = id(1+rng.Intn(2), int32(rng.Intn(25)))
		}
		run := func(managed bool) int64 {
			c := New(Config{Frames: 16, HandGap: 4, Swapping: true, Placeholders: true})
			if managed {
				c.SetManager(1, &acceptAll{})
				c.SetManager(2, &acceptAll{})
			}
			for _, r := range refs {
				c.Access(r)
			}
			c.CheckInvariants()
			return c.Stats().Faults
		}
		return run(false) == run(true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSmartManagerBeatsClockOnCycle: the paper's headline, in VM form. A
// cyclic scan larger than memory thrashes under the clock; a manager
// evicting its most-recently-faulted page keeps a stable resident set.
func TestSmartManagerBeatsClockOnCycle(t *testing.T) {
	const frames, loop, passes = 32, 48, 6
	run := func(smart bool) int64 {
		c := New(Config{Frames: frames, HandGap: 8, Swapping: true, Placeholders: true})
		if smart {
			c.SetManager(1, &mruOfFaults{})
		}
		for p := 0; p < passes; p++ {
			for v := int32(0); v < loop; v++ {
				c.Access(id(1, v))
			}
		}
		c.CheckInvariants()
		return c.Stats().Faults
	}
	clock, smart := run(false), run(true)
	if clock < loop*(passes-1) {
		t.Errorf("plain clock faults = %d; expected heavy thrash", clock)
	}
	if smart*2 >= clock {
		t.Errorf("smart faults = %d, not far below clock's %d", smart, clock)
	}
}

// TestSwappingNearNeutralInClock records a finding of this reproduction:
// in the two-handed clock, swapping — essential for the LRU list, where a
// stale overruled candidate otherwise stays at the LRU end and is re-
// picked on every miss — is close to neutral, because the hand's rotation
// already moves past an overruled candidate and will not reconsider it for
// a full revolution. The test pins the behaviour: a smart process under a
// streaming neighbour must fault within 15% of its no-swap count either
// way (measured: swapping costs a few extra faults, never helps much).
func TestSwappingNearNeutralInClock(t *testing.T) {
	run := func(swapping bool) int64 {
		c := New(Config{Frames: 32, HandGap: 8, Swapping: swapping, Placeholders: true})
		c.SetManager(1, &mruOfFaults{}) // smart for a loop
		var f1 int64
		stream := int32(0)
		for pass := 0; pass < 10; pass++ {
			for v := int32(0); v < 40; v++ {
				if c.Access(id(1, v)) {
					f1++
				}
				if v%3 == 0 {
					c.Access(id(2, stream))
					stream++
				}
			}
		}
		c.CheckInvariants()
		return f1
	}
	with, without := run(true), run(false)
	lo, hi := float64(without)*0.85, float64(without)*1.15
	if f := float64(with); f < lo || f > hi {
		t.Errorf("swapping changed smart faults beyond the pinned band: %d with vs %d without", with, without)
	}
}

// TestPlaceholdersProtectInVM: the ReadN experiment in VM form. A foolish
// process repeats a group of pages five times then moves to fresh ones,
// under a manager that always evicts its most recent page — keeping dead
// old-group pages while churning the live group. Without placeholders its
// refaults keep taking the innocent neighbour's pages; with them the
// refault redirects at the dead page the manager wrongly kept.
func TestPlaceholdersProtectInVM(t *testing.T) {
	const frames, w1, w2 = 24, 10, 10
	run := func(placeholders bool) (foolFaults, victimFaults int64) {
		c := New(Config{Frames: frames, HandGap: 6, Swapping: true, Placeholders: placeholders})
		c.SetManager(1, &mruOfFaults{})
		var f1, f2 int64
		for group := 0; group < 8; group++ {
			for rep := 0; rep < 5; rep++ {
				for v := 0; v < w1; v++ {
					if c.Access(id(1, int32(group*w1+v))) {
						f1++
					}
				}
				for v := 0; v < w2; v++ {
					if c.Access(id(2, int32(v))) {
						f2++
					}
				}
			}
		}
		c.CheckInvariants()
		return f1, f2
	}
	foolWithout, victimWithout := run(false)
	foolWith, victimWith := run(true)
	if victimWithout < 3*int64(w2) {
		t.Fatalf("scenario too gentle: unprotected victim faulted only %d times", victimWithout)
	}
	if victimWith*2 > victimWithout {
		t.Errorf("placeholders did not protect the neighbour: %d faults with vs %d without",
			victimWith, victimWithout)
	}
	// And the damage stays with the fool.
	if foolWith < foolWithout-foolWithout/10 {
		t.Errorf("fool faults dropped unexpectedly: %d with vs %d without", foolWith, foolWithout)
	}
}

// TestQuickClockInvariants pounds the clock with random managed traffic.
func TestQuickClockInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		c := New(Config{Frames: 12, HandGap: 3, Swapping: true, Placeholders: true})
		c.SetManager(1, &mruOfFaults{})
		c.SetManager(2, &acceptAll{})
		for i := 0; i < 4000; i++ {
			c.Access(id(1+rng.Intn(3), int32(rng.Intn(30))))
			if i%500 == 0 {
				c.CheckInvariants()
			}
		}
		c.CheckInvariants()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestResidentCount(t *testing.T) {
	c := New(Config{Frames: 6})
	for v := int32(0); v < 3; v++ {
		c.Access(id(1, v))
	}
	c.Access(id(2, 0))
	if c.ResidentCount(1) != 3 || c.ResidentCount(2) != 1 {
		t.Errorf("ResidentCount = %d, %d", c.ResidentCount(1), c.ResidentCount(2))
	}
	if got := id(2, 7).String(); got != "p2:7" {
		t.Errorf("String = %q", got)
	}
}

func TestPageAccessorsAndPlaceholders(t *testing.T) {
	c := New(Config{Frames: 3, Swapping: true, Placeholders: true})
	c.SetManager(1, &mruOfFaults{})
	c.Access(id(1, 0))
	c.Access(id(1, 1))
	c.Access(id(1, 2))
	// Force an overrule: fault a fourth page; the manager gives up its
	// most recent (page 2) and a placeholder appears.
	c.Access(id(1, 3))
	if c.Placeholders() != 1 {
		t.Errorf("Placeholders = %d, want 1", c.Placeholders())
	}
	// Reference bits are readable by managers.
	found := false
	for _, pg := range c.residentOf(1) {
		if pg.Referenced() {
			found = true
		}
	}
	if !found {
		t.Error("no referenced pages visible")
	}
	c.CheckInvariants()
}

func TestHandGapClamped(t *testing.T) {
	// HandGap larger than the circle is clamped.
	c := New(Config{Frames: 2, HandGap: 99})
	for v := int32(0); v < 6; v++ {
		c.Access(id(1, v))
	}
	if c.Stats().Faults != 6 {
		t.Errorf("faults = %d", c.Stats().Faults)
	}
	c.CheckInvariants()
}

func TestPlaceholderSuperseded(t *testing.T) {
	// Overruling the same page twice replaces its placeholder rather
	// than leaking one.
	c := New(Config{Frames: 3, Swapping: true, Placeholders: true})
	c.SetManager(1, &mruOfFaults{})
	for v := int32(0); v < 3; v++ {
		c.Access(id(1, v))
	}
	c.Access(id(1, 3)) // evicts 2, placeholder for 2
	c.Access(id(1, 2)) // placeholder consumed; evicts the pointee
	c.Access(id(1, 4))
	c.CheckInvariants()
	if c.Placeholders() > 2 {
		t.Errorf("placeholders leaked: %d", c.Placeholders())
	}
}

func TestAllReferencedFallback(t *testing.T) {
	// When every page's bit is set faster than the hands clear them, the
	// sweep's fallback still finds a victim instead of spinning forever.
	c := New(Config{Frames: 2, HandGap: 1})
	c.Access(id(1, 0))
	c.Access(id(1, 1))
	c.Access(id(1, 0)) // set bits
	c.Access(id(1, 1))
	c.Access(id(1, 2)) // must evict something despite all bits set
	if c.Stats().Faults != 3 {
		t.Errorf("faults = %d, want 3", c.Stats().Faults)
	}
	c.CheckInvariants()
}
