// Package vmclock carries the paper's two-level replacement idea into the
// virtual-memory setting, as Section 7 proposes: "one can swap positions
// of pages on the two-hand-clock list, and can build placeholders to
// catch foolish decisions."
//
// The base replacement algorithm is the classic BSD/Ultrix two-handed
// clock: physical frames form a circle; the front hand clears reference
// bits and the back hand, a fixed gap behind, examines them — a page
// whose bit is still clear when the back hand arrives has not been
// touched for one hand-gap and becomes the eviction candidate. On top of
// that sit the paper's two extensions:
//
//   - Swapping: when a process's manager overrules the clock's candidate
//     with another of its own pages, the two pages exchange positions in
//     the circle, so the manager is not penalized for protecting a page
//     the clock considered cold.
//   - Placeholders: the overruled eviction is recorded; a later fault on
//     that page redirects the candidate at the page the manager kept and
//     reports the mistake.
//
// Unlike the file cache, the VM system cannot capture the exact reference
// stream (the paper's own caveat): managers hear about faults and
// evictions, and may inspect reference bits, but never see individual
// accesses.
package vmclock

import "fmt"

// PageID names a virtual page of a process.
type PageID struct {
	Proc  int
	VPage int32
}

func (id PageID) String() string { return fmt.Sprintf("p%d:%d", id.Proc, id.VPage) }

// Page is one resident page.
type Page struct {
	ID  PageID
	ref bool // reference bit

	slot    int // position in the clock circle
	holders []*placeholder
}

// Referenced reports the page's reference bit (managers may inspect it).
func (p *Page) Referenced() bool { return p.ref }

// placeholder records an overruled eviction: forID was evicted while
// points was kept.
type placeholder struct {
	forID  PageID
	points *Page
}

// Manager is a process's pageout manager. ChooseVictim may return any
// resident page of the same process, or the candidate itself to accept
// the clock's choice.
type Manager interface {
	// PageIn reports that the process faulted id in.
	PageIn(pg *Page)
	// PageOut reports that pg was evicted.
	PageOut(pg *Page)
	// ChooseVictim picks which of the process's pages to give up;
	// resident lists every resident page of the process, candidate
	// included.
	ChooseVictim(candidate *Page, resident []*Page) *Page
	// MistakeCaught reports that an earlier overrule (evicting missing
	// while keeping pointed) was wrong.
	MistakeCaught(missing PageID, pointed *Page)
}

// Config configures a Clock.
type Config struct {
	// Frames is the number of physical frames.
	Frames int
	// HandGap is the distance between the clearing and examining hands;
	// 0 means Frames/4 (a common setting).
	HandGap int
	// Swapping and Placeholders enable the LRU-SP-style extensions.
	Swapping     bool
	Placeholders bool
}

// Stats counts clock events.
type Stats struct {
	Accesses        int64
	Faults          int64
	Evictions       int64
	Overrules       int64
	PlaceholderHits int64
	HandSteps       int64
}

// Clock is a two-handed-clock physical memory with optional two-level
// replacement.
type Clock struct {
	cfg      Config
	frames   []*Page
	back     int // examining hand; the clearing hand is back+gap
	table    map[PageID]*Page
	managers map[int]Manager
	ph       map[PageID]*placeholder
	used     int
	stats    Stats
}

// New builds a clock memory.
func New(cfg Config) *Clock {
	if cfg.Frames <= 0 {
		panic("vmclock: non-positive frame count")
	}
	if cfg.HandGap <= 0 {
		cfg.HandGap = cfg.Frames / 4
	}
	if cfg.HandGap >= cfg.Frames {
		cfg.HandGap = cfg.Frames - 1
	}
	if cfg.HandGap < 1 {
		cfg.HandGap = 1
	}
	return &Clock{
		cfg:      cfg,
		frames:   make([]*Page, cfg.Frames),
		table:    make(map[PageID]*Page, cfg.Frames),
		managers: make(map[int]Manager),
		ph:       make(map[PageID]*placeholder),
	}
}

// SetManager installs (or, with nil, removes) a process's pageout manager.
func (c *Clock) SetManager(proc int, m Manager) {
	if m == nil {
		delete(c.managers, proc)
		return
	}
	c.managers[proc] = m
}

// Stats returns a snapshot of the counters.
func (c *Clock) Stats() Stats { return c.stats }

// Resident reports whether the page is in memory.
func (c *Clock) Resident(id PageID) bool { return c.table[id] != nil }

// ResidentCount returns the number of resident pages for a process.
func (c *Clock) ResidentCount(proc int) int {
	n := 0
	for _, pg := range c.frames {
		if pg != nil && pg.ID.Proc == proc {
			n++
		}
	}
	return n
}

// Placeholders returns the number of live placeholders.
func (c *Clock) Placeholders() int { return len(c.ph) }

// Access touches a page, faulting it in if necessary, and reports whether
// a fault occurred. This is the MMU's view: a resident access just sets
// the reference bit.
func (c *Clock) Access(id PageID) bool {
	c.stats.Accesses++
	if pg := c.table[id]; pg != nil {
		pg.ref = true
		// Referencing a page a placeholder points at vindicates the
		// manager's decision, as in the file cache.
		for len(pg.holders) > 0 {
			c.dropPlaceholder(pg.holders[len(pg.holders)-1])
		}
		return false
	}
	c.stats.Faults++
	slot := c.freeSlot()
	if slot < 0 {
		slot = c.evictOne(id)
	}
	pg := &Page{ID: id, ref: true, slot: slot}
	c.frames[slot] = pg
	c.table[id] = pg
	c.used++
	if m := c.managers[id.Proc]; m != nil {
		m.PageIn(pg)
	}
	return true
}

// freeSlot returns an unused frame index, or -1 when memory is full.
func (c *Clock) freeSlot() int {
	if c.used >= len(c.frames) {
		return -1
	}
	for i, pg := range c.frames {
		if pg == nil {
			return i
		}
	}
	return -1
}

// evictOne chooses and evicts a page to make room for missing, returning
// the freed slot.
func (c *Clock) evictOne(missing PageID) int {
	candidate := c.pickCandidate(missing)
	chosen := candidate
	if m := c.managers[candidate.ID.Proc]; m != nil {
		if alt := m.ChooseVictim(candidate, c.residentOf(candidate.ID.Proc)); alt != nil && alt != candidate {
			if alt.ID.Proc != candidate.ID.Proc || c.table[alt.ID] != alt {
				panic(fmt.Sprintf("vmclock: manager %d offered invalid page %v", candidate.ID.Proc, alt.ID))
			}
			chosen = alt
			c.stats.Overrules++
			if c.cfg.Swapping {
				c.swapSlots(candidate, chosen)
			}
			if c.cfg.Placeholders {
				c.setPlaceholder(chosen.ID, candidate)
			}
		}
	}
	return c.evict(chosen)
}

// pickCandidate finds the eviction candidate: a placeholder for the
// missing page wins; otherwise the two hands sweep until the back hand
// finds a clear reference bit.
func (c *Clock) pickCandidate(missing PageID) *Page {
	if c.cfg.Placeholders {
		if ph := c.ph[missing]; ph != nil {
			pointed := ph.points
			c.dropPlaceholder(ph)
			c.stats.PlaceholderHits++
			if m := c.managers[pointed.ID.Proc]; m != nil {
				m.MistakeCaught(missing, pointed)
			}
			return pointed
		}
	}
	n := len(c.frames)
	for sweep := 0; sweep < 2*n+1; sweep++ {
		front := (c.back + c.cfg.HandGap) % n
		if pg := c.frames[front]; pg != nil {
			pg.ref = false // clearing hand
		}
		pg := c.frames[c.back]
		c.back = (c.back + 1) % n
		c.stats.HandSteps++
		if pg != nil && !pg.ref {
			return pg
		}
	}
	// Every page is being referenced faster than the hands sweep; fall
	// back to the page under the back hand.
	for {
		pg := c.frames[c.back]
		c.back = (c.back + 1) % n
		if pg != nil {
			return pg
		}
	}
}

// residentOf lists a process's resident pages.
func (c *Clock) residentOf(proc int) []*Page {
	var out []*Page
	for _, pg := range c.frames {
		if pg != nil && pg.ID.Proc == proc {
			out = append(out, pg)
		}
	}
	return out
}

// swapSlots exchanges two pages' positions in the circle, so the kept
// candidate inherits the evicted page's distance from the hands.
func (c *Clock) swapSlots(a, b *Page) {
	c.frames[a.slot], c.frames[b.slot] = b, a
	a.slot, b.slot = b.slot, a.slot
}

// evict removes pg and returns its slot.
func (c *Clock) evict(pg *Page) int {
	delete(c.table, pg.ID)
	c.frames[pg.slot] = nil
	c.used--
	c.stats.Evictions++
	for _, ph := range pg.holders {
		delete(c.ph, ph.forID)
	}
	pg.holders = nil
	if m := c.managers[pg.ID.Proc]; m != nil {
		m.PageOut(pg)
	}
	return pg.slot
}

// setPlaceholder records an overruled eviction.
func (c *Clock) setPlaceholder(forID PageID, points *Page) {
	if old := c.ph[forID]; old != nil {
		c.dropPlaceholder(old)
	}
	ph := &placeholder{forID: forID, points: points}
	c.ph[forID] = ph
	points.holders = append(points.holders, ph)
}

func (c *Clock) dropPlaceholder(ph *placeholder) {
	delete(c.ph, ph.forID)
	hs := ph.points.holders
	for i, h := range hs {
		if h == ph {
			hs[i] = hs[len(hs)-1]
			ph.points.holders = hs[:len(hs)-1]
			break
		}
	}
}

// CheckInvariants panics on structural inconsistency.
func (c *Clock) CheckInvariants() {
	n := 0
	for i, pg := range c.frames {
		if pg == nil {
			continue
		}
		n++
		if pg.slot != i {
			panic(fmt.Sprintf("vmclock: page %v thinks it is in slot %d, found in %d", pg.ID, pg.slot, i))
		}
		if c.table[pg.ID] != pg {
			panic(fmt.Sprintf("vmclock: page %v not in table", pg.ID))
		}
	}
	if n != c.used || n != len(c.table) {
		panic(fmt.Sprintf("vmclock: used %d, frames %d, table %d disagree", c.used, n, len(c.table)))
	}
	for id, ph := range c.ph {
		if id != ph.forID {
			panic("vmclock: placeholder key mismatch")
		}
		if c.table[id] != nil {
			panic(fmt.Sprintf("vmclock: placeholder for resident page %v", id))
		}
		if c.table[ph.points.ID] != ph.points {
			panic(fmt.Sprintf("vmclock: placeholder for %v points at evicted page", id))
		}
	}
}
