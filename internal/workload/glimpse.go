package workload

import (
	"fmt"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// glimpse models the gli workload: Manber and Wu's text retrieval system
// indexing a 40 MB snapshot of news articles with about 2 MB of index
// files. Every query reads the index files first, always in the same
// order, and then scans a query-dependent subset of the article
// partitions, also in creation order. Five keyword queries are run.
//
// Smart policy (Section 5.1): the index files get long-term priority 1 and
// the articles stay at priority 0; both levels use MRU since both are read
// in a fixed order:
//
//	set_priority(".glimpse_index", 1); ... set_policy(1, MRU); set_policy(0, MRU);
type glimpse struct {
	name       string
	queries    int
	partitions int
	partBlocks int32
	idxBlocks  []int32 // the four index files' sizes
	selectProb float64 // fraction of partitions each query scans
	compute    sim.Time

	idx   []*fs.File
	parts []*fs.File
}

// Glimpse returns the gli workload.
func Glimpse() App {
	return &glimpse{
		name:       "gli",
		queries:    5,
		partitions: 256, // glimpse's default partitioning of the 40 MB
		partBlocks: 20,  // ~160 KB per partition
		// .glimpse_index dominates; the three auxiliary files are
		// small. Total ~2 MB = 256 blocks.
		idxBlocks: []int32{216, 20, 12, 8},
		// ~36% of partitions match a keyword: each query touches
		// ~14.4 MB of articles, reproducing the appendix I/O level.
		selectProb: 0.36,
		// Calibration: solving elapsed = base + misses*c over the
		// appendix rows gives ~23 s of CPU over 10435 reads (~1.7 ms
		// of index/agrep work per block) and ~10 ms per miss.
		compute: sim.FromMillis(1.7),
	}
}

func (g *glimpse) Name() string     { return g.name }
func (g *glimpse) DefaultDisk() int { return 0 }

func (g *glimpse) Prepare(sys *core.System) {
	names := []string{".glimpse_index", ".glimpse_partitions", ".glimpse_filenames", ".glimpse_statistics"}
	for i, n := range g.idxBlocks {
		f := sys.CreateFile(g.name+"/"+names[i], g.DefaultDisk(), int(n))
		g.idx = append(g.idx, f)
	}
	for i := 0; i < g.partitions; i++ {
		f := sys.CreateFile(fmt.Sprintf("%s/part%03d", g.name, i), g.DefaultDisk(), int(g.partBlocks))
		g.parts = append(g.parts, f)
	}
}

func (g *glimpse) Run(p *core.Proc, mode Mode) {
	if mode == Smart {
		mustControl(p)
		for _, f := range g.idx {
			if err := p.SetPriority(f, 1); err != nil {
				panic(err)
			}
		}
		if err := p.SetPolicy(1, acm.MRU); err != nil {
			panic(err)
		}
		if err := p.SetPolicy(0, acm.MRU); err != nil {
			panic(err)
		}
	}
	rng := sim.NewRand(seedOf(g.name))
	for q := 0; q < g.queries; q++ {
		// Index files first, in the same order every query.
		for _, f := range g.idx {
			scanFile(p, f, g.compute)
		}
		// Then the matching partitions, in creation order.
		for _, part := range g.parts {
			if rng.Float64() < g.selectProb {
				scanFile(p, part, g.compute)
			}
		}
	}
}
