package workload

import (
	"fmt"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// cscope models Joe Steffen's interactive C-source examination tool, run
// against two kernel source packages (about 18 MB and about 10 MB) with
// two kinds of queries:
//
//   - Symbol queries read the database file "cscope.out" sequentially,
//     once per query (cs1: eight symbol queries on the 18 MB package,
//     whose database is about 9 MB).
//   - Text (egrep-style) queries read every source file, in the same
//     order, once per query (cs2: four patterns on the 18 MB package;
//     cs3: four patterns on the 10 MB package).
//
// Smart policies (Section 5.1): symbol queries put MRU on "cscope.out"
// (set_priority(db, 0); set_policy(0, MRU)); text queries put MRU on the
// default level that all the source files share (set_policy(0, MRU)).
type cscope struct {
	name    string
	kind    cscopeKind
	queries int
	compute sim.Time

	dbBlocks  int32 // cscope.out size
	srcBlocks int32 // total source text
	srcFiles  int   // number of source files (the "many small files" pool)

	db   *fs.File
	srcs []*fs.File
}

type cscopeKind int

const (
	symbolSearch cscopeKind = iota
	textSearch
)

// Cscope1 is cs1: eight symbol queries against the 18 MB package's ~9 MB
// database.
func Cscope1() App {
	return &cscope{
		name:    "cs1",
		kind:    symbolSearch,
		queries: 8,
		// Calibration: solving elapsed = base + misses*c over the
		// appendix rows gives ~23 s of CPU over 9128 reads (~2 ms of
		// record parsing per block) and ~4.5 ms per miss.
		compute:  sim.FromMillis(2.05),
		dbBlocks: 1141, // ~8.9 MB: matches the appendix compulsory count
	}
}

// Cscope2 is cs2: four text-pattern queries over the 18 MB package's
// source files.
func Cscope2() App {
	return &cscope{
		name:    "cs2",
		kind:    textSearch,
		queries: 4,
		// Calibration: solving elapsed = base + misses*c over the
		// appendix rows gives ~76 s of CPU over 11.4k reads (~6.7 ms
		// of pattern matching per 8 KB block) and ~9.3 ms per miss —
		// text-search misses barely overlapped on the real machine.
		compute:   sim.FromMillis(6.7),
		srcBlocks: 2850, // the package re-read per query (~22 MB touched)
		srcFiles:  240,
	}
}

// Cscope3 is cs3: four text-pattern queries over the 10 MB package.
func Cscope3() App {
	return &cscope{
		name:    "cs3",
		kind:    textSearch,
		queries: 4,
		// Same derivation as cs2 on the smaller package: ~30 s of CPU
		// over 5930 reads.
		compute:   sim.FromMillis(4.5),
		srcBlocks: 1400, // ~11 MB touched per query
		srcFiles:  150,
		dbBlocks:  330, // the smaller package's database, read at startup
	}
}

func (c *cscope) Name() string     { return c.name }
func (c *cscope) DefaultDisk() int { return 0 }

func (c *cscope) Prepare(sys *core.System) {
	if c.dbBlocks > 0 {
		c.db = sys.CreateFile(c.name+"/cscope.out", c.DefaultDisk(), int(c.dbBlocks))
	}
	if c.srcBlocks > 0 {
		// Spread the source text over many small files; replacement
		// control must work on the pool, not per file.
		per := int(c.srcBlocks) / c.srcFiles
		rem := int(c.srcBlocks) % c.srcFiles
		for i := 0; i < c.srcFiles; i++ {
			n := per
			if i < rem {
				n++
			}
			f := sys.CreateFile(fmt.Sprintf("%s/src%03d.c", c.name, i), c.DefaultDisk(), n)
			c.srcs = append(c.srcs, f)
		}
	}
}

func (c *cscope) Run(p *core.Proc, mode Mode) {
	if mode == Smart {
		mustControl(p)
		switch c.kind {
		case symbolSearch:
			if err := p.SetPriority(c.db, 0); err != nil {
				panic(err)
			}
		case textSearch:
			// All source files share default priority 0 already. The
			// database, read only at startup, is not needed again:
			// per Section 5.1, cscope can discard it by lowering its
			// priority.
			if c.db != nil {
				if err := p.SetPriority(c.db, -1); err != nil {
					panic(err)
				}
			}
		}
		if err := p.SetPolicy(0, acm.MRU); err != nil {
			panic(err)
		}
	}
	switch c.kind {
	case symbolSearch:
		for q := 0; q < c.queries; q++ {
			scanFile(p, c.db, c.compute)
		}
	case textSearch:
		// Startup: load the database once to learn the file list.
		if c.db != nil {
			scanFile(p, c.db, c.compute/4)
		}
		for q := 0; q < c.queries; q++ {
			for _, f := range c.srcs {
				scanFile(p, f, c.compute)
			}
		}
	}
}
