package workload

import (
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// postgresJoin models the pjn workload: Postgres 4.0.1 joining the
// scaled-up Wisconsin benchmark relations twentyk (20,000 tuples, 3.2 MB)
// and twohundredk (200,000 tuples, 32 MB) on unique1, using the
// non-clustered 5 MB index twohundredk_unique1. Postgres scans twentyk as
// the outer relation; every outer tuple probes the index (root, internal,
// leaf), and the ~20% of keys that fall inside twohundredk's 1..200,000
// key range fetch the matching tuple's data block, which is effectively a
// uniform-random block of the 32 MB relation. Index blocks are touched far
// more often than data blocks: the classic hot/cold pattern.
//
// Smart policy (Section 5.1): one call —
//
//	set_priority("twohundredk_unique1", 1);
//
// with LRU (the default) at both levels.
type postgresJoin struct {
	name        string
	outerBlocks int32
	dataBlocks  int32
	idxBlocks   int32
	leaves      int32
	internals   int32
	tuplesPerBl int
	keySpace    int64
	maxKey      int64
	compute     sim.Time

	outer, data, index *fs.File
}

// PostgresJoin returns the pjn workload.
func PostgresJoin() App {
	return &postgresJoin{
		name:        "pjn",
		outerBlocks: 400,  // twentyk: 3.2 MB
		dataBlocks:  4000, // twohundredk: 32 MB
		idxBlocks:   640,  // twohundredk_unique1: 5 MB
		leaves:      631,
		internals:   8,
		tuplesPerBl: 50,
		keySpace:    1_000_020,
		maxKey:      200_000,
		// Calibration: solving elapsed = base + misses*c over the
		// appendix rows gives ~82 s of executor CPU across 20k outer
		// tuples (~3.2 ms each) and ~20 ms per miss (random RZ26
		// accesses hide behind nothing).
		compute: sim.FromMillis(3.2),
	}
}

func (pg *postgresJoin) Name() string     { return pg.name }
func (pg *postgresJoin) DefaultDisk() int { return 1 } // RZ26

func (pg *postgresJoin) Prepare(sys *core.System) {
	d := pg.DefaultDisk()
	pg.data = sys.CreateFile(pg.name+"/twohundredk", d, int(pg.dataBlocks))
	pg.index = sys.CreateFile(pg.name+"/twohundredk_unique1", d, int(pg.idxBlocks))
	pg.outer = sys.CreateFile(pg.name+"/twentyk", d, int(pg.outerBlocks))
}

// leafOf maps a key to its B-tree leaf block within the index file. Keys
// beyond the indexed range descend to the rightmost leaf.
func (pg *postgresJoin) leafOf(key int64) int32 {
	if key > pg.maxKey {
		key = pg.maxKey
	}
	leaf := int32((key - 1) * int64(pg.leaves) / pg.maxKey)
	if leaf >= pg.leaves {
		leaf = pg.leaves - 1
	}
	return 1 + pg.internals + leaf // after root and internal blocks
}

// internalOf maps a leaf to its parent internal block.
func (pg *postgresJoin) internalOf(leaf int32) int32 {
	rel := leaf - 1 - pg.internals
	return 1 + rel*pg.internals/pg.leaves
}

// dataBlockOf scatters a key to a pseudo-random data block: unique1 is
// "uniquely random" within the relation, so matching tuples live at
// uncorrelated blocks.
func (pg *postgresJoin) dataBlockOf(key int64) int32 {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int32(h % uint64(pg.dataBlocks))
}

func (pg *postgresJoin) Run(p *core.Proc, mode Mode) {
	if mode == Smart {
		mustControl(p)
		if err := p.SetPriority(pg.index, 1); err != nil {
			panic(err)
		}
	}
	p.Open(pg.outer)
	p.Open(pg.index)
	p.Open(pg.data)
	rng := sim.NewRand(seedOf(pg.name))
	for ob := int32(0); ob < pg.outerBlocks; ob++ {
		p.Read(pg.outer, ob)
		for t := 0; t < pg.tuplesPerBl; t++ {
			key := 1 + rng.Int63n(pg.keySpace)
			// Probe the index: root, internal, leaf. Small accesses —
			// a couple of hundred bytes of B-tree node inspection.
			leaf := pg.leafOf(key)
			p.Access(pg.index, 0, 0, 256)
			p.Access(pg.index, pg.internalOf(leaf), 0, 256)
			p.Access(pg.index, leaf, 0, 256)
			if key <= pg.maxKey {
				// Matching tuple: fetch its data block.
				p.Access(pg.data, pg.dataBlockOf(key), 0, 512)
			}
			p.Compute(pg.compute)
		}
	}
}
