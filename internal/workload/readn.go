package workload

import (
	"fmt"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// readN models the synthetic program of Section 6.1: it reads the first N
// blocks of its file five times over, then the next N blocks five times,
// and so on to the end of the file. Under LRU its miss ratio is low
// exactly when it holds at least N cache blocks, making it a sensitive
// probe of how many blocks the kernel allocates to it. With an MRU policy
// it is a maximally foolish application, since MRU is terrible for this
// pattern.
//
// Modes: Oblivious (and Smart, which for ReadN is the same — LRU is its
// good policy) run without a manager; Foolish registers a manager and sets
// MRU on the file.
type readN struct {
	name       string
	n          int32
	fileBlocks int32
	repeats    int
	disk       int
	compute    sim.Time

	file *fs.File
}

// ReadN builds a ReadN instance reading groups of n blocks from a file of
// fileBlocks blocks placed on the given disk.
func ReadN(n int32, fileBlocks int32, disk int) App {
	return &readN{
		name:       fmt.Sprintf("read%d", n),
		n:          n,
		fileBlocks: fileBlocks,
		repeats:    5,
		disk:       disk,
		// ReadN does almost nothing with the data; Table 4 shows
		// ~1310 I/Os completing in ~17-20 s on an uncontended disk.
		// The small N-dependent term keeps two concurrent instances
		// from pacing in perfect lockstep, which no real pair of
		// processes does.
		compute: sim.FromMillis(1.5) + sim.Time(n)%97*23*sim.Microsecond,
	}
}

// Read300 is the paper's background process: N=300 over a 1310-block file.
func Read300(disk int) App { return ReadN(300, 1310, disk) }

// Probe returns the foreground ReadN used in Table 1 (N over a 1170-block
// file).
func Probe(n int32, disk int) App { return ReadN(n, 1170, disk) }

func (r *readN) Name() string     { return r.name }
func (r *readN) DefaultDisk() int { return r.disk }

func (r *readN) Prepare(sys *core.System) {
	r.file = sys.CreateFile(r.name+"/data", r.disk, int(r.fileBlocks))
}

func (r *readN) Run(p *core.Proc, mode Mode) {
	if mode == Foolish {
		mustControl(p)
		if err := p.SetPriority(r.file, 0); err != nil {
			panic(err)
		}
		if err := p.SetPolicy(0, acm.MRU); err != nil {
			panic(err)
		}
	}
	p.Open(r.file)
	for start := int32(0); start < r.fileBlocks; start += r.n {
		end := start + r.n
		if end > r.fileBlocks {
			end = r.fileBlocks
		}
		for rep := 0; rep < r.repeats; rep++ {
			for b := start; b < end; b++ {
				readBlock(p, r.file, b, r.compute)
			}
		}
	}
}
