package workload_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/workload"
)

// runHuge runs an app alone with a cache big enough for everything, so
// block I/Os equal the compulsory footprint (reads of distinct blocks
// plus write-backs).
func runHuge(t *testing.T, a workload.App, mode workload.Mode) core.ProcStats {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CacheBytes = core.MB(64)
	cfg.Alloc = cache.LRUSP
	if mode == workload.Oblivious {
		cfg.Alloc = cache.GlobalLRU
	}
	sys := core.NewSystem(cfg)
	p := workload.Launch(sys, a, mode)
	sys.Run()
	return p.Stats()
}

// TestCompulsoryFootprints pins each application's dataset size: at 64 MB
// every run does exactly compulsory reads plus its writes. A drift here
// means the workload model changed shape.
func TestCompulsoryFootprints(t *testing.T) {
	cases := map[string]struct {
		reads, writes int64 // demand+prefetch reads; write-backs
	}{
		"din": {1024, 0},
		"cs1": {1141, 0},
		"cs2": {2850, 0},
		"cs3": {1730, 0},
		"gli": {4936, 0},
		// ldk reads 2800 object blocks once and 1150 library blocks
		// twice, but at 64 MB the second library scan hits entirely.
		"ldk": {3950, 450},
		// pjn touches 3516 distinct blocks; read-ahead fetches one
		// never-probed index block (root/internal prefix looks
		// sequential), hence +1.
		"pjn": {3517, 0},
		// At 64 MB sort's temporaries stay cached: only the input is
		// read from disk, and only the output survives to be flushed
		// (temporaries are removed before the update daemon gets them).
		"sort": {2176, 2176},
	}
	for name, want := range cases {
		st := runHuge(t, appFactories[name](), workload.Oblivious)
		if got := st.DemandReads + st.Prefetches; got != want.reads {
			t.Errorf("%s: compulsory reads = %d, want %d", name, got, want.reads)
		}
		if st.WriteBacks != want.writes {
			t.Errorf("%s: write-backs = %d, want %d", name, st.WriteBacks, want.writes)
		}
	}
}

// TestSmartEqualsObliviousWhenEverythingFits: with no memory pressure the
// smart policies change nothing — block I/Os identical at 64 MB.
func TestSmartEqualsObliviousWhenEverythingFits(t *testing.T) {
	for name, mk := range appFactories {
		obl := runHuge(t, mk(), workload.Oblivious)
		smart := runHuge(t, mk(), workload.Smart)
		if obl.BlockIOs() != smart.BlockIOs() {
			t.Errorf("%s: smart %d I/Os vs oblivious %d at 64 MB",
				name, smart.BlockIOs(), obl.BlockIOs())
		}
	}
}

// TestGlimpseSameStreamBothModes: the query partition selection must not
// depend on the mode, or comparisons would be unfair.
func TestGlimpseSameStreamBothModes(t *testing.T) {
	capture := func(mode workload.Mode) []int64 {
		alloc := cache.GlobalLRU
		if mode == workload.Smart {
			alloc = cache.LRUSP
		}
		var refs []int64
		res := expt.Run(expt.RunSpec{
			Apps:    []expt.AppSpec{{Make: workload.Glimpse, Mode: mode}},
			CacheMB: 6.4,
			Alloc:   alloc,
			Trace: func(ev core.TraceEvent) {
				refs = append(refs, int64(ev.File)<<32|int64(ev.Block))
			},
		})
		_ = res
		return refs
	}
	a, b := capture(workload.Oblivious), capture(workload.Smart)
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at ref %d", i)
		}
	}
}

// TestSortWritesReadOnce: every temporary block sort writes is read back
// exactly once (runs and intermediates), and the output is never read.
func TestSortWritesReadOnce(t *testing.T) {
	writes := map[int64]int{}
	reads := map[int64]int{}
	var inputFile int64 = -1
	expt.Run(expt.RunSpec{
		Apps:    []expt.AppSpec{{Make: workload.Sort, Mode: workload.Oblivious}},
		CacheMB: 64,
		Alloc:   cache.GlobalLRU,
		Trace: func(ev core.TraceEvent) {
			key := int64(ev.File)<<32 | int64(ev.Block)
			if ev.Write {
				writes[key]++
			} else {
				reads[key]++
				if inputFile == -1 {
					inputFile = int64(ev.File) // first read is the input
				}
			}
		},
	})
	var readOnce, readNever, readMore int
	for key, n := range writes {
		if n != 1 {
			t.Fatalf("block written %d times", n)
		}
		switch reads[key] {
		case 0:
			readNever++
		case 1:
			readOnce++
		default:
			readMore++
		}
	}
	if readMore != 0 {
		t.Errorf("%d temp blocks read more than once", readMore)
	}
	// The final output (2176 blocks) is written but never read.
	if readNever != 2176 {
		t.Errorf("%d written-never-read blocks, want 2176 (the output)", readNever)
	}
	if readOnce != 4352 {
		t.Errorf("%d written-then-read blocks, want 4352 (runs + intermediates)", readOnce)
	}
}

// TestPostgresProbeStructure: every outer tuple probes root, internal and
// leaf; about a fifth of the keys match and fetch a data block.
func TestPostgresProbeStructure(t *testing.T) {
	perFile := map[int32]int64{}
	var files []int32
	expt.Run(expt.RunSpec{
		Apps:    []expt.AppSpec{{Make: workload.PostgresJoin, Mode: workload.Oblivious}},
		CacheMB: 64,
		Alloc:   cache.GlobalLRU,
		Trace: func(ev core.TraceEvent) {
			if _, ok := perFile[int32(ev.File)]; !ok {
				files = append(files, int32(ev.File))
			}
			perFile[int32(ev.File)]++
		},
	})
	if len(files) != 3 {
		t.Fatalf("pjn touched %d files, want 3", len(files))
	}
	// First-touch order: outer scan, then index probes, then data.
	outer, index, data := perFile[files[0]], perFile[files[1]], perFile[files[2]]
	if outer != 400 {
		t.Errorf("outer reads = %d, want 400", outer)
	}
	if index != 3*20000 {
		t.Errorf("index probes = %d, want 60000", index)
	}
	// Matching fraction = 200000/1000020 of 20000 tuples, ±5%.
	expect := 20000.0 * 200000.0 / 1000020.0
	if f := float64(data); f < expect*0.95 || f > expect*1.05 {
		t.Errorf("data fetches = %d, want about %.0f", data, expect)
	}
}

// TestLdkAccessOnceCalls: in smart mode the link editor issues one
// set_temppri per object/library block it finishes with.
func TestLdkAccessOnceCalls(t *testing.T) {
	st := runHuge(t, workload.LinkEditor(), workload.Smart)
	// 2800 object blocks plus 1150 library blocks in the extraction pass
	// (the symbol pass leaves library blocks cached for re-reading),
	// plus the EnableControl call.
	want := int64(2800 + 1150)
	if st.FbehaviorCalls < want || st.FbehaviorCalls > want+10 {
		t.Errorf("fbehavior calls = %d, want about %d", st.FbehaviorCalls, want)
	}
}

// TestOpensCounted: multi-file workloads open many files; single-file ones
// open few. Guards the metadata modelling.
func TestOpensCounted(t *testing.T) {
	st := runHuge(t, workload.Cscope2(), workload.Oblivious)
	if st.Opens != 240*4 {
		t.Errorf("cs2 opens = %d, want 960", st.Opens)
	}
	if st.MetadataReads != 240 {
		t.Errorf("cs2 metadata reads = %d, want 240 (each file's first open)", st.MetadataReads)
	}
	st = runHuge(t, workload.Dinero(), workload.Oblivious)
	if st.Opens != 9 || st.MetadataReads != 1 {
		t.Errorf("din opens = %d (meta %d), want 9 (1)", st.Opens, st.MetadataReads)
	}
}
