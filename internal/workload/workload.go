// Package workload models the applications of the paper's Section 5:
// cscope (three runs), dinero, glimpse, the link editor, a Postgres join,
// external sort, and the synthetic ReadN used in Section 6. Each workload
// reproduces the file sizes, pass structure and access order the paper
// describes, and — in Smart mode — issues exactly the fbehavior calls of
// Section 5.1. Per-access CPU costs are calibrated so that elapsed times
// land in the right regime relative to the appendix tables (the shapes,
// not the absolute seconds, are the reproduction target).
//
// Every workload is deterministic: any randomness (query partition
// selection, join keys) comes from a generator seeded by the workload
// name, so oblivious and smart runs see the same reference stream.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// Mode selects how an application treats the cache-control interface.
type Mode int

// Modes.
const (
	// Oblivious issues no fbehavior calls: pure kernel-controlled LRU.
	Oblivious Mode = iota
	// Smart applies the application's best policy from Section 5.1.
	Smart
	// Foolish applies a deliberately bad policy (only ReadN implements
	// this: MRU on a pattern where MRU is terrible — Section 6.1).
	Foolish
)

func (m Mode) String() string {
	switch m {
	case Oblivious:
		return "oblivious"
	case Smart:
		return "smart"
	case Foolish:
		return "foolish"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode is the inverse of Mode.String, for command-line flags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "oblivious":
		return Oblivious, nil
	case "smart":
		return Smart, nil
	case "foolish":
		return Foolish, nil
	}
	return 0, fmt.Errorf("workload: unknown mode %q (want oblivious, smart or foolish)", s)
}

// App is one benchmark application.
type App interface {
	// Name identifies the app ("cs1", "din", ...); it prefixes the
	// app's file names, so two instances in one system need distinct
	// names.
	Name() string
	// DefaultDisk is the drive the paper ran this application on
	// (0 = RZ56, 1 = RZ26).
	DefaultDisk() int
	// Prepare creates the application's input files.
	Prepare(sys *core.System)
	// Run executes the application body on process p.
	Run(p *core.Proc, mode Mode)
}

// Launch prepares the app and spawns a process running it in the given
// mode. The returned Proc carries the stats.
func Launch(sys *core.System, a App, mode Mode) *core.Proc {
	a.Prepare(sys)
	return sys.Spawn(a.Name(), func(p *core.Proc) { a.Run(p, mode) })
}

// seedOf derives a deterministic RNG seed from a workload name.
func seedOf(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// readBlock reads one block and charges per-block application compute.
func readBlock(p *core.Proc, f *fs.File, blk int32, compute sim.Time) {
	p.Read(f, blk)
	if compute > 0 {
		p.Compute(compute)
	}
}

// scanFile opens and reads a whole file sequentially with per-block
// compute.
func scanFile(p *core.Proc, f *fs.File, compute sim.Time) {
	p.Open(f)
	for b := int32(0); b < int32(f.Size()); b++ {
		readBlock(p, f, b, compute)
	}
}

// mustControl turns on cache control, panicking on failure (the
// experiments never run enough managers to hit the kernel limit).
func mustControl(p *core.Proc) {
	if err := p.EnableControl(); err != nil {
		panic(err)
	}
}
