package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// linkEditor models the ldk workload: the Ultrix link editor building the
// 4.3 kernel from about 25 MB of object files. Object file data is read
// once, in many small accesses; the libraries consulted for symbol
// resolution are scanned early (symbol pass) and again late (extraction
// pass); the kernel image is written out. Under global LRU the object
// stream flushes the library blocks long before the second scan, so the
// original kernel shows a flat I/O count at every cache size.
//
// Smart policy (Section 5.1): "access-once" — when the last byte of a
// block has been consumed, flush it:
//
//	set_temppri(file, blknum, blknum, -1);
//
// (The paper implemented this policy inside the kernel because the MIPS
// link-editor source was unavailable; we issue the equivalent calls from
// the workload, which produces the same request stream.) Freeing done-with
// object blocks is what lets the library blocks survive to the second
// scan, so the smart I/O count falls as the cache grows.
type linkEditor struct {
	name       string
	objFiles   int
	objBlocks  int32 // per object file
	libBlocks  []int32
	outBlocks  int32
	chunksPerB int // small accesses per block
	compute    sim.Time

	objs []*fs.File
	libs []*fs.File
	out  *fs.File
}

// LinkEditor returns the ldk workload.
func LinkEditor() App {
	return &linkEditor{
		name:       "ldk",
		objFiles:   70,
		objBlocks:  40,                // 70 x 40 x 8 KB = ~22 MB of objects
		libBlocks:  []int32{600, 550}, // ~9 MB of libraries, scanned twice
		outBlocks:  450,               // ~3.5 MB kernel image
		chunksPerB: 4,                 // 2 KB reads: "lots of small accesses"
		// Calibration: 66 s at ~5.4k I/Os: relocation work is cheap
		// per byte; ~2 ms per block of CPU keeps ldk I/O-bound enough
		// to match the flat elapsed profile.
		compute: sim.FromMillis(2.0),
	}
}

func (l *linkEditor) Name() string     { return l.name }
func (l *linkEditor) DefaultDisk() int { return 0 }

func (l *linkEditor) Prepare(sys *core.System) {
	for i := 0; i < l.objFiles; i++ {
		f := sys.CreateFile(fmt.Sprintf("%s/obj%03d.o", l.name, i), l.DefaultDisk(), int(l.objBlocks))
		l.objs = append(l.objs, f)
	}
	for i, n := range l.libBlocks {
		f := sys.CreateFile(fmt.Sprintf("%s/lib%d.a", l.name, i), l.DefaultDisk(), int(n))
		l.libs = append(l.libs, f)
	}
}

// readSmall reads block blk of f in chunksPerB small accesses and, in
// smart mode, flushes the block once its data has all been consumed.
func (l *linkEditor) readSmall(p *core.Proc, f *fs.File, blk int32, smart bool) {
	chunk := core.BlockSize / l.chunksPerB
	for i := 0; i < l.chunksPerB; i++ {
		p.Access(f, blk, i*chunk, chunk)
	}
	p.Compute(l.compute)
	if smart {
		if err := p.SetTempPri(f, blk, blk, -1); err != nil {
			panic(err)
		}
	}
}

func (l *linkEditor) Run(p *core.Proc, mode Mode) {
	smart := mode == Smart
	if smart {
		mustControl(p)
	}
	// Pass 1: scan the libraries for the symbol table. Library blocks
	// are not done-with — they will be read again — so access-once does
	// not flush them.
	for _, lib := range l.libs {
		scanFile(p, lib, l.compute/2)
	}
	// Main pass: read every object file once, in small accesses.
	for _, obj := range l.objs {
		p.Open(obj)
		for b := int32(0); b < int32(obj.Size()); b++ {
			l.readSmall(p, obj, b, smart)
		}
	}
	// Pass 2: extract needed members from the libraries.
	for _, lib := range l.libs {
		p.Open(lib)
		for b := int32(0); b < int32(lib.Size()); b++ {
			l.readSmall(p, lib, b, smart)
		}
	}
	// ld assembles the image in memory and writes it out at the end.
	l.out = p.CreateFile(l.name+"/vmunix", l.DefaultDisk(), 0)
	p.WriteSeq(l.out, 0, l.outBlocks)
}
