package workload

import (
	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// dinero models the din workload: Mark Hill's dineroIII cache simulator
// fed the 8 MB "cc" trace from the Hennessy & Patterson course material,
// run once per simulated cache configuration (line size 32/64/128 bytes ×
// associativity 1/2/4 = nine configurations). Each configuration reads the
// trace file sequentially from the beginning — the canonical cyclic access
// pattern — and burns substantial CPU per block simulating the cache.
//
// Smart policy (Section 5.1):
//
//	set_priority(trace, 0); set_policy(0, MRU);
type dinero struct {
	name    string
	blocks  int32
	configs int
	compute sim.Time
	trace   *fs.File
}

// Dinero returns the din workload.
func Dinero() App {
	return &dinero{
		name:    "din",
		blocks:  1024, // 8 MB trace
		configs: 9,    // 3 line sizes x 3 associativities
		// Calibration: solving elapsed = base + misses*c over the
		// appendix rows gives base ~97 s of pure CPU across 9216 block
		// reads (~10.2 ms of simulation work per block) and a residual
		// ~2.3 ms per miss — sequential misses largely overlap with
		// dinero's computation.
		compute: sim.FromMillis(10.2),
	}
}

func (d *dinero) Name() string     { return d.name }
func (d *dinero) DefaultDisk() int { return 0 }

func (d *dinero) Prepare(sys *core.System) {
	d.trace = sys.CreateFile(d.name+"/cc.trace", d.DefaultDisk(), int(d.blocks))
}

func (d *dinero) Run(p *core.Proc, mode Mode) {
	if mode == Smart {
		mustControl(p)
		if err := p.SetPriority(d.trace, 0); err != nil {
			panic(err)
		}
		if err := p.SetPolicy(0, acm.MRU); err != nil {
			panic(err)
		}
	}
	for c := 0; c < d.configs; c++ {
		scanFile(p, d.trace, d.compute)
	}
}
