package workload

import (
	"fmt"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// extSort models the sort workload: UNIX sort -n on a 200,000-line, 17 MB
// text file. Sort first partitions the input into sorted runs bounded by
// its internal buffer (512 KB here, giving 34 runs), then merges eight
// files at a time, always consuming temporary files in the order they were
// created: 34 runs -> 5 intermediates -> 1 output. Input blocks are read
// once; temporary blocks are written once and read once.
//
// Smart policy (Section 5.1): the input file gets priority -1 (read-once
// data should leave the cache first), MRU is set on levels -1 and 0
// (earlier-created temporaries are merged first), and a modified readline
// flushes each block when the file pointer passes its end:
//
//	set_policy(-1, MRU); set_policy(0, MRU);
//	set_priority(input, -1);
//	... set_temppri(file, blknum, blknum, -1) as blocks are consumed.
type extSort struct {
	name        string
	inputBlocks int32
	runBlocks   int32
	fanIn       int
	readComp    sim.Time // parse + run formation CPU per block
	mergeComp   sim.Time // comparison + copy CPU per merged block
	writeComp   sim.Time

	input *fs.File
}

// Sort returns the sort workload.
func Sort() App {
	return &extSort{
		name:        "sort",
		inputBlocks: 2176, // 17 MB
		runBlocks:   64,   // 512 KB internal sort buffer -> 34 runs
		fanIn:       8,
		// Calibration: solving elapsed = base + IOs*c over the
		// appendix rows gives ~82 s of CPU (parsing and merging ~90
		// lines per block) and ~17.5 ms per I/O — the merge's
		// alternation across eight files defeats sequential hiding.
		readComp:  sim.FromMillis(12),
		mergeComp: sim.FromMillis(9),
		writeComp: sim.FromMillis(1.5),
	}
}

func (s *extSort) Name() string     { return s.name }
func (s *extSort) DefaultDisk() int { return 1 } // RZ26

func (s *extSort) Prepare(sys *core.System) {
	s.input = sys.CreateFile(s.name+"/input", s.DefaultDisk(), int(s.inputBlocks))
}

// consume reads block blk of f and, in smart mode, flushes it readline-
// style once fully read.
func (s *extSort) consume(p *core.Proc, f *fs.File, blk int32, comp sim.Time, smart bool) {
	p.Read(f, blk)
	if comp > 0 {
		p.Compute(comp)
	}
	if smart {
		if err := p.SetTempPri(f, blk, blk, -1); err != nil {
			panic(err)
		}
	}
}

// mergeFiles eight-way merges srcs into a new file, interleaving reads
// across the sources as a real merge does, and removes the consumed
// sources.
func (s *extSort) mergeFiles(p *core.Proc, srcs []*fs.File, dstName string, smart bool) *fs.File {
	dst := p.CreateFile(dstName, s.DefaultDisk(), 0)
	for _, src := range srcs {
		p.Open(src)
	}
	// Cursor per source; consume round-robin (the merge drains sorted
	// runs of similar length at a similar rate).
	cursors := make([]int32, len(srcs))
	outBlk := int32(0)
	for {
		advanced := false
		for i, src := range srcs {
			if int(cursors[i]) >= src.Size() {
				continue
			}
			s.consume(p, src, cursors[i], s.mergeComp, smart)
			cursors[i]++
			p.Write(dst, outBlk)
			p.Compute(s.writeComp)
			outBlk++
			advanced = true
		}
		if !advanced {
			break
		}
	}
	for _, src := range srcs {
		p.RemoveFile(src)
	}
	return dst
}

func (s *extSort) Run(p *core.Proc, mode Mode) {
	smart := mode == Smart
	if smart {
		mustControl(p)
		if err := p.SetPolicy(-1, acm.MRU); err != nil {
			panic(err)
		}
		if err := p.SetPolicy(0, acm.MRU); err != nil {
			panic(err)
		}
		if err := p.SetPriority(s.input, -1); err != nil {
			panic(err)
		}
	}

	// Phase 1: run formation.
	p.Open(s.input)
	var runs []*fs.File
	for start := int32(0); start < s.inputBlocks; start += s.runBlocks {
		end := start + s.runBlocks
		if end > s.inputBlocks {
			end = s.inputBlocks
		}
		run := p.CreateFile(fmt.Sprintf("%s/run%03d", s.name, len(runs)), s.DefaultDisk(), 0)
		for b := start; b < end; b++ {
			s.consume(p, s.input, b, s.readComp, smart)
			p.Write(run, b-start)
			p.Compute(s.writeComp)
		}
		runs = append(runs, run)
	}

	// Phase 2: repeated 8-way merges, earliest-created files first.
	level := 0
	for len(runs) > 1 {
		var next []*fs.File
		for i := 0; i < len(runs); i += s.fanIn {
			j := i + s.fanIn
			if j > len(runs) {
				j = len(runs)
			}
			name := fmt.Sprintf("%s/merge%d-%03d", s.name, level, len(next))
			next = append(next, s.mergeFiles(p, runs[i:j], name, smart))
		}
		runs = next
		level++
	}
}
