package workload_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runSingle executes one app alone on a machine with the given cache size
// and kernel policy.
func runSingle(a workload.App, cacheMB float64, alloc cache.Alloc, mode workload.Mode) (sim.Time, core.ProcStats) {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = core.MB(cacheMB)
	cfg.Alloc = alloc
	sys := core.NewSystem(cfg)
	p := workload.Launch(sys, a, mode)
	sys.Run()
	return p.Elapsed(), p.Stats()
}

// appFactories builds fresh instances (apps hold file handles, so each run
// needs its own).
var appFactories = map[string]func() workload.App{
	"cs1":  workload.Cscope1,
	"cs2":  workload.Cscope2,
	"cs3":  workload.Cscope3,
	"din":  workload.Dinero,
	"gli":  workload.Glimpse,
	"ldk":  workload.LinkEditor,
	"pjn":  workload.PostgresJoin,
	"sort": workload.Sort,
}

func TestModeString(t *testing.T) {
	if workload.Oblivious.String() != "oblivious" ||
		workload.Smart.String() != "smart" ||
		workload.Foolish.String() != "foolish" {
		t.Error("Mode.String wrong")
	}
}

// TestAppsRunToCompletion exercises every app in both modes under both
// kernels at the smallest cache size.
func TestAppsRunToCompletion(t *testing.T) {
	for name, mk := range appFactories {
		for _, mode := range []workload.Mode{workload.Oblivious, workload.Smart} {
			alloc := cache.GlobalLRU
			if mode == workload.Smart {
				alloc = cache.LRUSP
			}
			elapsed, st := runSingle(mk(), 6.4, alloc, mode)
			if elapsed <= 0 {
				t.Errorf("%s/%v: non-positive elapsed", name, mode)
			}
			if st.BlockIOs() == 0 {
				t.Errorf("%s/%v: no I/O performed", name, mode)
			}
			if st.Misses == 0 {
				t.Errorf("%s/%v: no misses on a cold cache", name, mode)
			}
		}
	}
}

// TestSmartNeverWorse is the paper's third allocation criterion applied to
// real workloads: the smart policy must not increase block I/Os at any of
// the paper's cache sizes.
func TestSmartNeverWorse(t *testing.T) {
	for name, mk := range appFactories {
		for _, mb := range []float64{6.4, 8, 12, 16} {
			_, obl := runSingle(mk(), mb, cache.GlobalLRU, workload.Oblivious)
			_, smart := runSingle(mk(), mb, cache.LRUSP, workload.Smart)
			if smart.BlockIOs() > obl.BlockIOs()+obl.BlockIOs()/50 {
				t.Errorf("%s @%.1fMB: smart I/Os %d > oblivious %d",
					name, mb, smart.BlockIOs(), obl.BlockIOs())
			}
		}
	}
}

// TestDeterministicWorkloads: identical runs produce identical stats.
func TestDeterministicWorkloads(t *testing.T) {
	for name, mk := range appFactories {
		e1, s1 := runSingle(mk(), 6.4, cache.LRUSP, workload.Smart)
		e2, s2 := runSingle(mk(), 6.4, cache.LRUSP, workload.Smart)
		if e1 != e2 || s1 != s2 {
			t.Errorf("%s: nondeterministic: %v/%+v vs %v/%+v", name, e1, s1, e2, s2)
		}
	}
}

// TestReadNFoolishHurtsItself: with LRU-SP, a foolish (MRU) ReadN does
// more I/O than an oblivious one when its groups fit in the cache.
func TestReadNFoolishHurtsItself(t *testing.T) {
	_, obl := runSingle(workload.Read300(0), 6.4, cache.LRUSP, workload.Oblivious)
	_, foolish := runSingle(workload.Read300(0), 6.4, cache.LRUSP, workload.Foolish)
	if obl.BlockIOs() != 1310 {
		t.Errorf("oblivious Read300 I/Os = %d, want 1310 (compulsory only)", obl.BlockIOs())
	}
	if foolish.BlockIOs() <= obl.BlockIOs() {
		t.Errorf("foolish Read300 I/Os = %d, not worse than oblivious %d",
			foolish.BlockIOs(), obl.BlockIOs())
	}
}

// TestCalibration compares single-app block I/O counts to the paper's
// appendix (Table 6). Block I/Os are a nearly pure function of the
// reference stream and cache policy, so they should land close; the
// tolerances below are the reproduction contract.
func TestCalibration(t *testing.T) {
	type row struct {
		app   string
		mb    float64
		orig  int64 // paper, original kernel
		lrusp int64 // paper, LRU-SP
	}
	rows := []row{
		{"din", 6.4, 8888, 2573},
		{"din", 8, 998, 1003},
		{"din", 16, 998, 997},
		{"cs1", 6.4, 8634, 3066},
		{"cs1", 8, 8630, 1628},
		{"cs1", 12, 1141, 1141},
		{"cs2", 6.4, 11785, 9680},
		{"cs2", 16, 11647, 5597},
		{"cs3", 6.4, 6575, 4394},
		{"cs3", 16, 1728, 1733},
		{"gli", 6.4, 10435, 8870},
		{"gli", 16, 7508, 6275},
		{"ldk", 6.4, 5395, 5011},
		{"ldk", 16, 5390, 3898},
		{"pjn", 6.4, 7166, 5800},
		{"pjn", 16, 5257, 4993},
		{"sort", 6.4, 14670, 12462},
		{"sort", 16, 14520, 9460},
	}
	const tolerance = 0.30 // 30% on absolute counts; shape asserted below
	for _, r := range rows {
		_, obl := runSingle(appFactories[r.app](), r.mb, cache.GlobalLRU, workload.Oblivious)
		_, smart := runSingle(appFactories[r.app](), r.mb, cache.LRUSP, workload.Smart)
		checks := []struct {
			label string
			got   int64
			want  int64
		}{
			{"original", obl.BlockIOs(), r.orig},
			{"lru-sp", smart.BlockIOs(), r.lrusp},
		}
		for _, c := range checks {
			lo := float64(c.want) * (1 - tolerance)
			hi := float64(c.want) * (1 + tolerance)
			if f := float64(c.got); f < lo || f > hi {
				t.Errorf("%s @%.1fMB %s: I/Os %d, paper %d (outside ±%.0f%%)",
					r.app, r.mb, c.label, c.got, c.want, tolerance*100)
			}
		}
		// Shape: the measured improvement ratio must be on the same
		// side and within 0.15 of the paper's ratio.
		paperRatio := float64(r.lrusp) / float64(r.orig)
		gotRatio := float64(smart.BlockIOs()) / float64(obl.BlockIOs())
		if diff := gotRatio - paperRatio; diff > 0.15 || diff < -0.15 {
			t.Errorf("%s @%.1fMB: I/O ratio %.2f, paper %.2f", r.app, r.mb, gotRatio, paperRatio)
		}
	}
}

func TestReadNConstructors(t *testing.T) {
	bg := workload.Read300(1)
	if bg.Name() != "read300" || bg.DefaultDisk() != 1 {
		t.Errorf("Read300 = %s on disk %d", bg.Name(), bg.DefaultDisk())
	}
	pr := workload.Probe(490, 0)
	if pr.Name() != "read490" || pr.DefaultDisk() != 0 {
		t.Errorf("Probe = %s on disk %d", pr.Name(), pr.DefaultDisk())
	}
	// A probe's file is 1170 blocks: compulsory misses alone.
	_, st := runSingle(pr, 64, cache.GlobalLRU, workload.Oblivious)
	if st.BlockIOs() != 1170 {
		t.Errorf("probe compulsory I/Os = %d, want 1170", st.BlockIOs())
	}
}

func TestLaunchIsolation(t *testing.T) {
	// Two different apps on one system keep separate namespaces and
	// stats.
	cfg := core.DefaultConfig()
	sys := core.NewSystem(cfg)
	p1 := workload.Launch(sys, workload.Dinero(), workload.Smart)
	p2 := workload.Launch(sys, workload.Cscope1(), workload.Smart)
	sys.Run()
	if p1.Name() != "din" || p2.Name() != "cs1" {
		t.Errorf("names = %s, %s", p1.Name(), p2.Name())
	}
	if p1.Stats().BlockIOs() == 0 || p2.Stats().BlockIOs() == 0 {
		t.Error("a workload did no I/O")
	}
}

func TestFoolishModeOnlyAffectsReadN(t *testing.T) {
	// Foolish mode on ReadN installs an MRU manager; its behaviour was
	// verified elsewhere; here: it must actually enable control.
	cfg := core.DefaultConfig()
	cfg.CacheBytes = core.MB(6.4)
	sys := core.NewSystem(cfg)
	p := workload.Launch(sys, workload.Read300(0), workload.Foolish)
	sys.Run()
	if !p.Controlled() {
		t.Error("foolish ReadN did not enable control")
	}
}
