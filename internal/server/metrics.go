package server

import (
	"fmt"
	"net/http"
	"sort"
)

// MetricsHandler returns an http.Handler exposing the server's counters
// as Prometheus-style plaintext. The kernel block (aggregated over the
// shards) is rendered by stats.Snapshot.WriteMetrics, so the counter
// names are exactly the acbench -json names with an acfcd prefix;
// server-level gauges, per-shard sections (the same schema, labeled
// {shard="k"}), and per-session gauges follow.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m, ok := s.Metrics()
		if !ok {
			http.Error(w, "server shut down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.Kernel.WriteMetrics(w, "acfcd")
		fmt.Fprintf(w, "acfcd_sessions_active %d\n", m.SessionsActive)
		fmt.Fprintf(w, "acfcd_sessions_total %d\n", m.SessionsTotal)
		fmt.Fprintf(w, "acfcd_requests_total %d\n", m.Requests)
		fmt.Fprintf(w, "acfcd_refused_total %d\n", m.Refused)
		fmt.Fprintf(w, "acfcd_fills_inflight %d\n", m.FillsInflight)
		fmt.Fprintf(w, "acfcd_writebacks_inflight %d\n", m.WritebacksInflight)
		fmt.Fprintf(w, "acfcd_cached_blocks %d\n", m.CachedBlocks)
		for i, sm := range m.Shards {
			l := fmt.Sprintf(`{shard="%d"}`, i)
			sm.Kernel.WriteMetricsLabeled(w, "acfcd_shard", l)
			fmt.Fprintf(w, "acfcd_shard_requests_total%s %d\n", l, sm.Requests)
			fmt.Fprintf(w, "acfcd_shard_refused_total%s %d\n", l, sm.Refused)
			fmt.Fprintf(w, "acfcd_shard_fills_inflight%s %d\n", l, sm.FillsInflight)
			fmt.Fprintf(w, "acfcd_shard_writebacks_inflight%s %d\n", l, sm.WritebacksInflight)
			fmt.Fprintf(w, "acfcd_shard_cached_blocks%s %d\n", l, sm.CachedBlocks)
			fmt.Fprintf(w, "acfcd_shard_alloc_policy{shard=\"%d\",policy=%q} 1\n", i, sm.AllocPolicy)
			fmt.Fprintf(w, "acfcd_shard_alloc_hit_window_bp%s %d\n", l, sm.AllocHitRatioBP)
		}
		sort.Slice(m.Sessions, func(i, j int) bool { return m.Sessions[i].Owner < m.Sessions[j].Owner })
		for _, se := range m.Sessions {
			l := fmt.Sprintf(`{owner="%d",addr=%q}`, se.Owner, se.Name)
			fmt.Fprintf(w, "acfcd_session_reads%s %d\n", l, se.Stats.ReadCalls)
			fmt.Fprintf(w, "acfcd_session_writes%s %d\n", l, se.Stats.WriteCalls)
			fmt.Fprintf(w, "acfcd_session_hits%s %d\n", l, se.Stats.Hits)
			fmt.Fprintf(w, "acfcd_session_misses%s %d\n", l, se.Stats.Misses)
			fmt.Fprintf(w, "acfcd_session_block_ios%s %d\n", l, se.Stats.BlockIOs())
		}
	})
}
