package client

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeConn is a stub connection for Redialer tests: it records closes.
type fakeConn struct {
	id     int
	closed bool
}

func (f *fakeConn) Close() error {
	f.closed = true
	return nil
}

// fakeDialer scripts a dial sequence: fail the first `failures` dials,
// then succeed with fresh numbered connections.
type fakeDialer struct {
	dials    int
	failures int
	conns    []*fakeConn
}

func (d *fakeDialer) dial() (*fakeConn, error) {
	d.dials++
	if d.dials <= d.failures {
		return nil, errors.New("dial scripted to fail")
	}
	c := &fakeConn{id: d.dials}
	d.conns = append(d.conns, c)
	return c, nil
}

func TestRedialerGetReusesConnection(t *testing.T) {
	d := &fakeDialer{}
	r := &Redialer[*fakeConn]{Dial: d.dial}
	c1, err := r.Get()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("second Get dialed a new connection")
	}
	if d.dials != 1 {
		t.Errorf("dials = %d, want 1", d.dials)
	}
}

func TestRedialerRetriesWithBackoff(t *testing.T) {
	d := &fakeDialer{failures: 2}
	r := &Redialer[*fakeConn]{Dial: d.dial, Backoff: time.Millisecond}
	start := time.Now()
	c, err := r.Get()
	if err != nil {
		t.Fatalf("Get after 2 scripted failures: %v", err)
	}
	if c.id != 3 {
		t.Errorf("got conn %d, want the third dial", c.id)
	}
	// Two retries at 1ms then 2ms backoff: at least 3ms must have passed.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("Get returned after %v; backoff skipped", elapsed)
	}
}

func TestRedialerExhaustsAttempts(t *testing.T) {
	d := &fakeDialer{failures: 100}
	r := &Redialer[*fakeConn]{Dial: d.dial, Attempts: 2, Backoff: time.Microsecond}
	if _, err := r.Get(); err == nil {
		t.Fatal("Get succeeded with every dial scripted to fail")
	}
	if d.dials != 2 {
		t.Errorf("dials = %d, want exactly Attempts=2", d.dials)
	}
}

func TestRedialerOnConnect(t *testing.T) {
	d := &fakeDialer{}
	var restored []int
	fail := true
	r := &Redialer[*fakeConn]{
		Dial:    d.dial,
		Backoff: time.Microsecond,
		OnConnect: func(c *fakeConn) error {
			if fail {
				fail = false
				return errors.New("restore scripted to fail once")
			}
			restored = append(restored, c.id)
			return nil
		},
	}
	c, err := r.Get()
	if err != nil {
		t.Fatal(err)
	}
	// The first connection's failed restore must close it and retry.
	if len(d.conns) != 2 || !d.conns[0].closed {
		t.Errorf("failed-OnConnect conn not closed (conns %d)", len(d.conns))
	}
	if c.id != 2 || len(restored) != 1 || restored[0] != 2 {
		t.Errorf("OnConnect ran on %v, want [2]", restored)
	}
}

func TestRedialerInvalidate(t *testing.T) {
	d := &fakeDialer{}
	r := &Redialer[*fakeConn]{Dial: d.dial}
	c1, _ := r.Get()
	r.Invalidate(c1)
	if !c1.closed {
		t.Errorf("Invalidate left the dead connection open")
	}
	c2, err := r.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Errorf("Get returned the invalidated connection")
	}
	// A stale invalidate (the old handle, after redial) must not touch
	// the current connection.
	r.Invalidate(c1)
	if c2.closed {
		t.Errorf("stale Invalidate closed the live connection")
	}
	if c3, _ := r.Get(); c3 != c2 {
		t.Errorf("stale Invalidate forced a redial")
	}
}

func TestRedialerDialTimeout(t *testing.T) {
	release := make(chan struct{})
	late := &fakeConn{id: 99}
	r := &Redialer[*fakeConn]{
		Dial: func() (*fakeConn, error) {
			<-release
			return late, nil
		},
		DialTimeout: 5 * time.Millisecond,
		Attempts:    1,
	}
	_, err := r.Get()
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Get = %v, want dial timeout", err)
	}
	// The dial that eventually completes must be closed, not leaked.
	close(release)
	deadline := time.Now().Add(time.Second)
	for !late.closed {
		if time.Now().After(deadline) {
			t.Fatal("late connection never closed after timeout")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRedialerClose(t *testing.T) {
	d := &fakeDialer{}
	r := &Redialer[*fakeConn]{Dial: d.dial}
	c1, _ := r.Get()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !c1.closed {
		t.Errorf("Close left the connection open")
	}
	// The redialer stays usable after Close.
	c2, err := r.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Errorf("Get after Close returned the closed connection")
	}
}
