// Package client is the typed Go client for the acfcd wire protocol:
// one method per operation of the paper's user/kernel interface. A Conn
// issues one request at a time (round-trip under a mutex); concurrency
// comes from opening several Conns, one per simulated application, which
// is exactly the server's session-per-owner model.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/acm"
	"repro/internal/fs"
	"repro/internal/server"
)

// StatusError is a non-OK response.
type StatusError struct {
	Status uint8
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("acfcd: %s: %s", server.StatusName(e.Status), e.Msg)
}

// IsRefused reports whether err is the server refusing work because it
// is draining for shutdown. Load generators count these apart from real
// errors.
func IsRefused(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == server.StatusRefused
}

// File describes an open file.
type File struct {
	ID   fs.FileID
	Size int // blocks, at open/create time
}

// Conn is one client session = one cache owner on the server.
type Conn struct {
	mu     sync.Mutex
	c      net.Conn
	nextID uint32
}

// Dial connects to an acfcd server ("unix", "/path" or "tcp", "addr").
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}

// Close ends the session; the server releases this owner's blocks.
func (c *Conn) Close() error { return c.c.Close() }

// roundTrip issues one request and waits for its response.
func (c *Conn) roundTrip(op uint8, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	if err := server.WriteFrame(c.c, id, op, body); err != nil {
		return nil, err
	}
	gotID, status, resp, err := server.ReadFrame(c.c)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("acfcd: response id %d for request %d", gotID, id)
	}
	if status != server.StatusOK {
		return nil, &StatusError{Status: status, Msg: string(resp)}
	}
	return resp, nil
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(server.OpPing, nil)
	return err
}

// Open resolves a file by name.
func (c *Conn) Open(name string) (File, error) {
	resp, err := c.roundTrip(server.OpOpen, []byte(name))
	if err != nil {
		return File{}, err
	}
	if len(resp) != 8 {
		return File{}, fmt.Errorf("acfcd: open: %d-byte response", len(resp))
	}
	return File{ID: fs.FileID(be32(resp[0:])), Size: int(be32(resp[4:]))}, nil
}

// Create creates a file of sizeBlocks blocks on disk d.
func (c *Conn) Create(name string, d, sizeBlocks int) (File, error) {
	body := make([]byte, 5+len(name))
	body[0] = uint8(d)
	put32(body[1:], uint32(sizeBlocks))
	copy(body[5:], name)
	resp, err := c.roundTrip(server.OpCreate, body)
	if err != nil {
		return File{}, err
	}
	if len(resp) != 8 {
		return File{}, fmt.Errorf("acfcd: create: %d-byte response", len(resp))
	}
	return File{ID: fs.FileID(be32(resp[0:])), Size: int(be32(resp[4:]))}, nil
}

// Remove unlinks a file by name.
func (c *Conn) Remove(name string) error {
	_, err := c.roundTrip(server.OpRemove, []byte(name))
	return err
}

// CloseFile closes an open file (advisory; blocks stay cached).
func (c *Conn) CloseFile(f fs.FileID) error {
	body := make([]byte, 4)
	put32(body, uint32(f))
	_, err := c.roundTrip(server.OpClose, body)
	return err
}

func readBody(f fs.FileID, blk int32, off, size int, flags uint8) []byte {
	body := make([]byte, 13)
	put32(body[0:], uint32(f))
	put32(body[4:], uint32(blk))
	put16(body[8:], uint16(off))
	put16(body[10:], uint16(size))
	body[12] = flags
	return body
}

// Read reads size bytes at off within block blk. It returns the bytes
// and whether the access hit the cache.
func (c *Conn) Read(f fs.FileID, blk int32, off, size int) (data []byte, hit bool, err error) {
	resp, err := c.roundTrip(server.OpRead, readBody(f, blk, off, size, 0))
	if err != nil {
		return nil, false, err
	}
	if len(resp) != 1+size {
		return nil, false, fmt.Errorf("acfcd: read: %d-byte response, want %d", len(resp), 1+size)
	}
	return resp[1:], resp[0]&server.FlagHit != 0, nil
}

// ReadNoData performs the access without transferring the bytes back:
// the load generator's probe.
func (c *Conn) ReadNoData(f fs.FileID, blk int32, off, size int) (hit bool, err error) {
	resp, err := c.roundTrip(server.OpRead, readBody(f, blk, off, size, server.ReadNoData))
	if err != nil {
		return false, err
	}
	if len(resp) != 1 {
		return false, fmt.Errorf("acfcd: read: %d-byte response, want 1", len(resp))
	}
	return resp[0]&server.FlagHit != 0, nil
}

// Write writes payload at off within block blk, growing the file as
// needed.
func (c *Conn) Write(f fs.FileID, blk int32, off int, payload []byte) (hit bool, err error) {
	body := make([]byte, 12+len(payload))
	put32(body[0:], uint32(f))
	put32(body[4:], uint32(blk))
	put16(body[8:], uint16(off))
	put16(body[10:], uint16(len(payload)))
	copy(body[12:], payload)
	resp, err := c.roundTrip(server.OpWrite, body)
	if err != nil {
		return false, err
	}
	if len(resp) != 1 {
		return false, fmt.Errorf("acfcd: write: %d-byte response", len(resp))
	}
	return resp[0]&server.FlagHit != 0, nil
}

// Control enables (true) or disables (false) cache control — the
// manager session of the fbehavior interface.
func (c *Conn) Control(enable bool) error {
	body := []byte{0}
	if enable {
		body[0] = 1
	}
	_, err := c.roundTrip(server.OpControl, body)
	return err
}

// SetPriority sets the long-term cache priority of a file.
func (c *Conn) SetPriority(f fs.FileID, prio int) error {
	body := make([]byte, 8)
	put32(body[0:], uint32(f))
	put32(body[4:], uint32(int32(prio)))
	_, err := c.roundTrip(server.OpSetPriority, body)
	return err
}

// GetPriority reads the long-term cache priority of a file.
func (c *Conn) GetPriority(f fs.FileID) (int, error) {
	body := make([]byte, 4)
	put32(body, uint32(f))
	resp, err := c.roundTrip(server.OpGetPriority, body)
	if err != nil {
		return 0, err
	}
	if len(resp) != 4 {
		return 0, fmt.Errorf("acfcd: get_priority: %d-byte response", len(resp))
	}
	return int(int32(be32(resp))), nil
}

// SetPolicy sets the replacement policy of a priority level.
func (c *Conn) SetPolicy(prio int, pol acm.Policy) error {
	body := make([]byte, 5)
	put32(body[0:], uint32(int32(prio)))
	body[4] = uint8(pol)
	_, err := c.roundTrip(server.OpSetPolicy, body)
	return err
}

// GetPolicy reads the replacement policy of a priority level.
func (c *Conn) GetPolicy(prio int) (acm.Policy, error) {
	body := make([]byte, 4)
	put32(body, uint32(int32(prio)))
	resp, err := c.roundTrip(server.OpGetPolicy, body)
	if err != nil {
		return 0, err
	}
	if len(resp) != 1 {
		return 0, fmt.Errorf("acfcd: get_policy: %d-byte response", len(resp))
	}
	return acm.Policy(resp[0]), nil
}

// SetTempPri assigns a temporary priority to cached blocks of f in
// [startBlk, endBlk].
func (c *Conn) SetTempPri(f fs.FileID, startBlk, endBlk int32, prio int) error {
	body := make([]byte, 16)
	put32(body[0:], uint32(f))
	put32(body[4:], uint32(startBlk))
	put32(body[8:], uint32(endBlk))
	put32(body[12:], uint32(int32(prio)))
	_, err := c.roundTrip(server.OpSetTempPri, body)
	return err
}

// Stats fetches this session's counters and the kernel snapshot.
func (c *Conn) Stats() (server.StatsReply, error) {
	resp, err := c.roundTrip(server.OpStats, nil)
	if err != nil {
		return server.StatsReply{}, err
	}
	var sr server.StatsReply
	if err := json.Unmarshal(resp, &sr); err != nil {
		return server.StatsReply{}, err
	}
	return sr, nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func put16(b []byte, v uint16) {
	b[0], b[1] = byte(v>>8), byte(v)
}
