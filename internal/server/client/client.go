// Package client is the typed Go client for the acfcd wire protocol:
// one method per operation of the paper's user/kernel interface, plus a
// multiplexed Fbehavior entry point mirroring the paper's syscall. A Conn
// issues one request at a time (round-trip under a mutex); concurrency
// comes from opening several Conns, one per simulated application, which
// is exactly the server's session-per-owner model.
//
// Failures surface as typed sentinel errors where the caller's reaction
// differs — errors.Is(err, ErrRefused) for drain refusals a load
// generator retries elsewhere, ErrRevoked for a dead session, ErrBadFrame
// for protocol-level damage — with the full status available via
// errors.As on *StatusError.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/acm"
	"repro/internal/fs"
	"repro/internal/server"
)

// Sentinel errors for the statuses callers branch on. They match via
// errors.Is against any error this package returns.
var (
	// ErrRefused: the server is draining for shutdown and refused the
	// request. Load generators count these apart from real errors and may
	// retry on a reconnect.
	ErrRefused = errors.New("acfcd: request refused: server draining")
	// ErrRevoked: the session's owner is unknown or already released —
	// the session is dead and must reconnect.
	ErrRevoked = errors.New("acfcd: session revoked")
	// ErrBadFrame: the peer rejected the frame as malformed, or this
	// client received a response it cannot parse.
	ErrBadFrame = errors.New("acfcd: bad frame")
	// ErrUnknownPolicy: set_alloc named an allocation policy the
	// server's registry does not know.
	ErrUnknownPolicy = errors.New("acfcd: unknown allocation policy")
)

// StatusError is a non-OK response. It satisfies errors.Is for the
// sentinel matching its status.
type StatusError struct {
	Status uint8
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("acfcd: %s: %s", server.StatusName(e.Status), e.Msg)
}

// Is maps statuses onto the package sentinels, so
// errors.Is(err, ErrRefused) works on any returned error.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrRefused:
		return e.Status == server.StatusRefused
	case ErrRevoked:
		return e.Status == server.StatusRevoked
	case ErrBadFrame:
		return e.Status == server.StatusBadRequest
	case ErrUnknownPolicy:
		return e.Status == server.StatusUnknownPolicy
	}
	return false
}

// File describes an open file.
type File struct {
	ID   fs.FileID
	Size int // blocks, at open/create time
}

// Conn is one client session = one cache owner on the server.
type Conn struct {
	mu     sync.Mutex
	c      net.Conn
	bw     *bufio.Writer
	br     *bufio.Reader
	nextID uint32
	// scratch encodes a read request (9-byte frame header + 13-byte
	// body) in one piece, so ReadInto writes no per-call buffers.
	scratch [22]byte
}

// Dial connects to an acfcd server ("unix", "/path" or "tcp", "addr").
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Conn{
		c:  c,
		bw: bufio.NewWriterSize(c, server.MaxFrame),
		br: bufio.NewReaderSize(c, server.MaxFrame),
	}, nil
}

// Close ends the session; the server releases this owner's blocks.
func (c *Conn) Close() error { return c.c.Close() }

// roundTrip issues one request and waits for its response.
func (c *Conn) roundTrip(op uint8, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	if err := server.WriteFrame(c.bw, id, op, body); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	gotID, status, resp, err := server.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("%w: response id %d for request %d", ErrBadFrame, gotID, id)
	}
	if status != server.StatusOK {
		return nil, &StatusError{Status: status, Msg: string(resp)}
	}
	return resp, nil
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(server.OpPing, nil)
	return err
}

// Open resolves a file by name.
func (c *Conn) Open(name string) (File, error) {
	resp, err := c.roundTrip(server.OpOpen, []byte(name))
	if err != nil {
		return File{}, err
	}
	if len(resp) != 8 {
		return File{}, fmt.Errorf("%w: open: %d-byte response", ErrBadFrame, len(resp))
	}
	return File{ID: fs.FileID(be32(resp[0:])), Size: int(be32(resp[4:]))}, nil
}

// Create creates a file of sizeBlocks blocks on disk d.
func (c *Conn) Create(name string, d, sizeBlocks int) (File, error) {
	body := make([]byte, 5+len(name))
	body[0] = uint8(d)
	put32(body[1:], uint32(sizeBlocks))
	copy(body[5:], name)
	resp, err := c.roundTrip(server.OpCreate, body)
	if err != nil {
		return File{}, err
	}
	if len(resp) != 8 {
		return File{}, fmt.Errorf("%w: create: %d-byte response", ErrBadFrame, len(resp))
	}
	return File{ID: fs.FileID(be32(resp[0:])), Size: int(be32(resp[4:]))}, nil
}

// Remove unlinks a file by name.
func (c *Conn) Remove(name string) error {
	_, err := c.roundTrip(server.OpRemove, []byte(name))
	return err
}

// CloseFile closes an open file (advisory; blocks stay cached).
func (c *Conn) CloseFile(f fs.FileID) error {
	body := make([]byte, 4)
	put32(body, uint32(f))
	_, err := c.roundTrip(server.OpClose, body)
	return err
}

func readBody(f fs.FileID, blk int32, off, size int, flags uint8) []byte {
	body := make([]byte, 13)
	put32(body[0:], uint32(f))
	put32(body[4:], uint32(blk))
	put16(body[8:], uint16(off))
	put16(body[10:], uint16(size))
	body[12] = flags
	return body
}

// Read reads size bytes at off within block blk. It returns the bytes
// and whether the access hit the cache.
func (c *Conn) Read(f fs.FileID, blk int32, off, size int) (data []byte, hit bool, err error) {
	resp, err := c.roundTrip(server.OpRead, readBody(f, blk, off, size, 0))
	if err != nil {
		return nil, false, err
	}
	if len(resp) != 1+size {
		return nil, false, fmt.Errorf("%w: read: %d-byte response, want %d", ErrBadFrame, len(resp), 1+size)
	}
	return resp[1:], resp[0]&server.FlagHit != 0, nil
}

// ReadInto reads size bytes at off within block blk into dst[:size],
// which the caller owns and reuses across calls: the steady-state
// read path allocates nothing on either side of the wire (the server
// serves hits scatter/gather from its cache arena, this client lands
// them in the caller's buffer). Requires len(dst) >= size.
func (c *Conn) ReadInto(f fs.FileID, blk int32, off, size int, dst []byte) (hit bool, err error) {
	if len(dst) < size {
		return false, fmt.Errorf("%w: read: %d-byte buffer for %d-byte read", ErrBadFrame, len(dst), size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	b := c.scratch[:]
	put32(b[0:], uint32(server.FrameOverhead+13))
	put32(b[4:], id)
	b[8] = server.OpRead
	put32(b[9:], uint32(f))
	put32(b[13:], uint32(blk))
	put16(b[17:], uint16(off))
	put16(b[19:], uint16(size))
	b[21] = 0
	if _, err := c.bw.Write(b); err != nil {
		return false, err
	}
	if err := c.bw.Flush(); err != nil {
		return false, err
	}
	gotID, status, n, err := server.ReadFrameHeader(c.br)
	if err != nil {
		return false, err
	}
	if gotID != id {
		return false, fmt.Errorf("%w: response id %d for request %d", ErrBadFrame, gotID, id)
	}
	if status != server.StatusOK {
		msg := make([]byte, n)
		if _, err := io.ReadFull(c.br, msg); err != nil {
			return false, err
		}
		return false, &StatusError{Status: status, Msg: string(msg)}
	}
	if n != 1+size {
		c.br.Discard(n)
		return false, fmt.Errorf("%w: read: %d-byte response, want %d", ErrBadFrame, n, 1+size)
	}
	flags, err := c.br.ReadByte()
	if err != nil {
		return false, err
	}
	if _, err := io.ReadFull(c.br, dst[:size]); err != nil {
		return false, err
	}
	return flags&server.FlagHit != 0, nil
}

// ReadNoData performs the access without transferring the bytes back:
// the load generator's probe.
func (c *Conn) ReadNoData(f fs.FileID, blk int32, off, size int) (hit bool, err error) {
	resp, err := c.roundTrip(server.OpRead, readBody(f, blk, off, size, server.ReadNoData))
	if err != nil {
		return false, err
	}
	if len(resp) != 1 {
		return false, fmt.Errorf("%w: read: %d-byte response, want 1", ErrBadFrame, len(resp))
	}
	return resp[0]&server.FlagHit != 0, nil
}

// Write writes payload at off within block blk, growing the file as
// needed.
func (c *Conn) Write(f fs.FileID, blk int32, off int, payload []byte) (hit bool, err error) {
	body := make([]byte, 12+len(payload))
	put32(body[0:], uint32(f))
	put32(body[4:], uint32(blk))
	put16(body[8:], uint16(off))
	put16(body[10:], uint16(len(payload)))
	copy(body[12:], payload)
	resp, err := c.roundTrip(server.OpWrite, body)
	if err != nil {
		return false, err
	}
	if len(resp) != 1 {
		return false, fmt.Errorf("%w: write: %d-byte response", ErrBadFrame, len(resp))
	}
	return resp[0]&server.FlagHit != 0, nil
}

// Control enables (true) or disables (false) cache control — the
// manager session of the fbehavior interface.
func (c *Conn) Control(enable bool) error {
	body := []byte{0}
	if enable {
		body[0] = 1
	}
	_, err := c.roundTrip(server.OpControl, body)
	return err
}

// FbOp selects the operation of a multiplexed Fbehavior call — the five
// cache-control calls of the paper's fbehavior syscall.
type FbOp uint8

const (
	FbSetPriority FbOp = iota
	FbGetPriority
	FbSetPolicy
	FbGetPolicy
	FbSetTempPri
	FbSetAlloc
	FbGetAlloc
)

// FbArgs are the arguments of a multiplexed Fbehavior call; each op
// reads the fields it needs (File for the per-file calls, Prio for all
// priority-scoped calls, Policy for FbSetPolicy, Start/End for
// FbSetTempPri, Alloc for FbSetAlloc).
type FbArgs struct {
	File   fs.FileID
	Prio   int
	Policy acm.Policy
	Start  int32
	End    int32
	Alloc  string
}

// FbResult is the result of a multiplexed Fbehavior call: Prio for
// FbGetPriority, Policy for FbGetPolicy, Alloc (the canonical policy
// name) for FbSetAlloc/FbGetAlloc, zero otherwise.
type FbResult struct {
	Prio   int
	Policy acm.Policy
	Alloc  string
}

// Fbehavior is the multiplexed form of the paper's fbehavior syscall:
// one entry point, the op selecting the call. The typed wrappers
// (SetPriority, GetPriority, SetPolicy, GetPolicy, SetTempPri) all route
// through it.
func (c *Conn) Fbehavior(op FbOp, a FbArgs) (FbResult, error) {
	switch op {
	case FbSetPriority:
		body := make([]byte, 8)
		put32(body[0:], uint32(a.File))
		put32(body[4:], uint32(int32(a.Prio)))
		_, err := c.roundTrip(server.OpSetPriority, body)
		return FbResult{}, err
	case FbGetPriority:
		body := make([]byte, 4)
		put32(body, uint32(a.File))
		resp, err := c.roundTrip(server.OpGetPriority, body)
		if err != nil {
			return FbResult{}, err
		}
		if len(resp) != 4 {
			return FbResult{}, fmt.Errorf("%w: get_priority: %d-byte response", ErrBadFrame, len(resp))
		}
		return FbResult{Prio: int(int32(be32(resp)))}, nil
	case FbSetPolicy:
		body := make([]byte, 5)
		put32(body[0:], uint32(int32(a.Prio)))
		body[4] = uint8(a.Policy)
		_, err := c.roundTrip(server.OpSetPolicy, body)
		return FbResult{}, err
	case FbGetPolicy:
		body := make([]byte, 4)
		put32(body, uint32(int32(a.Prio)))
		resp, err := c.roundTrip(server.OpGetPolicy, body)
		if err != nil {
			return FbResult{}, err
		}
		if len(resp) != 1 {
			return FbResult{}, fmt.Errorf("%w: get_policy: %d-byte response", ErrBadFrame, len(resp))
		}
		return FbResult{Policy: acm.Policy(resp[0])}, nil
	case FbSetTempPri:
		body := make([]byte, 16)
		put32(body[0:], uint32(a.File))
		put32(body[4:], uint32(a.Start))
		put32(body[8:], uint32(a.End))
		put32(body[12:], uint32(int32(a.Prio)))
		_, err := c.roundTrip(server.OpSetTempPri, body)
		return FbResult{}, err
	case FbSetAlloc:
		resp, err := c.roundTrip(server.OpSetAlloc, []byte(a.Alloc))
		if err != nil {
			return FbResult{}, err
		}
		return FbResult{Alloc: string(resp)}, nil
	case FbGetAlloc:
		resp, err := c.roundTrip(server.OpGetAlloc, nil)
		if err != nil {
			return FbResult{}, err
		}
		if len(resp) == 0 {
			return FbResult{}, fmt.Errorf("%w: get_alloc: empty response", ErrBadFrame)
		}
		return FbResult{Alloc: string(resp)}, nil
	}
	return FbResult{}, fmt.Errorf("%w: unknown fbehavior op %d", ErrBadFrame, op)
}

// SetPriority sets the long-term cache priority of a file.
func (c *Conn) SetPriority(f fs.FileID, prio int) error {
	_, err := c.Fbehavior(FbSetPriority, FbArgs{File: f, Prio: prio})
	return err
}

// GetPriority reads the long-term cache priority of a file.
func (c *Conn) GetPriority(f fs.FileID) (int, error) {
	res, err := c.Fbehavior(FbGetPriority, FbArgs{File: f})
	return res.Prio, err
}

// SetPolicy sets the replacement policy of a priority level.
func (c *Conn) SetPolicy(prio int, pol acm.Policy) error {
	_, err := c.Fbehavior(FbSetPolicy, FbArgs{Prio: prio, Policy: pol})
	return err
}

// GetPolicy reads the replacement policy of a priority level.
func (c *Conn) GetPolicy(prio int) (acm.Policy, error) {
	res, err := c.Fbehavior(FbGetPolicy, FbArgs{Prio: prio})
	return res.Policy, err
}

// SetTempPri assigns a temporary priority to cached blocks of f in
// [startBlk, endBlk].
func (c *Conn) SetTempPri(f fs.FileID, startBlk, endBlk int32, prio int) error {
	_, err := c.Fbehavior(FbSetTempPri, FbArgs{File: f, Start: startBlk, End: endBlk, Prio: prio})
	return err
}

// SetAlloc installs the named kernel allocation policy in every shard
// (cache.ParseAlloc names: "global-lru", "lru-sp", "arc", ...). A name
// the server's registry does not know fails with an error matching
// errors.Is(err, ErrUnknownPolicy), and no shard is touched.
func (c *Conn) SetAlloc(name string) error {
	_, err := c.Fbehavior(FbSetAlloc, FbArgs{Alloc: name})
	return err
}

// GetAlloc reports the canonical name of the active allocation policy
// (shard 0's — shards only diverge under the adaptive policy switcher).
func (c *Conn) GetAlloc() (string, error) {
	res, err := c.Fbehavior(FbGetAlloc, FbArgs{})
	return res.Alloc, err
}

// Stats fetches this session's counters and the kernel snapshot.
func (c *Conn) Stats() (server.StatsReply, error) {
	resp, err := c.roundTrip(server.OpStats, nil)
	if err != nil {
		return server.StatsReply{}, err
	}
	var sr server.StatsReply
	if err := json.Unmarshal(resp, &sr); err != nil {
		return server.StatsReply{}, err
	}
	return sr, nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func put16(b []byte, v uint16) {
	b[0], b[1] = byte(v>>8), byte(v)
}
