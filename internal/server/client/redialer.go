// redialer.go — shared reconnect machinery for long-lived acfcd
// sessions: the load generator's replayers and the cluster tier's
// peer-fill connections both hold one logical session that must survive
// server restarts, drains and transient dial failures. The policy —
// dial timeout, capped exponential backoff between attempts, and an
// OnConnect hook that rebuilds session state (re-enable control,
// re-open files) before the connection is handed out — lives here once
// instead of being reimplemented per caller.

package client

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Redialer maintains one logical connection of type C (any closable
// conn: *Conn, or a caller's stub in tests), redialing on demand. C
// must be comparable (a pointer or interface value), because Invalidate
// matches the caller's dead connection against the current one.
//
// Get returns the current connection, dialing (with backoff) when there
// is none; Invalidate discards a connection the caller found dead, so
// the next Get dials fresh. All methods are safe for concurrent use;
// concurrent Gets share one dial.
type Redialer[C io.Closer] struct {
	// Dial establishes one raw connection.
	Dial func() (C, error)
	// OnConnect, if set, rebuilds session state on a fresh connection
	// (re-enable control, re-open files) before Get returns it. An
	// OnConnect error closes the connection and counts as a failed
	// attempt.
	OnConnect func(C) error
	// DialTimeout bounds one Dial call (0: no bound). A connection that
	// arrives after the timeout is closed, not leaked.
	DialTimeout time.Duration
	// Attempts is the number of dial attempts per Get (default 3).
	Attempts int
	// Backoff is the delay before the second attempt, doubling per
	// attempt up to MaxBackoff (defaults 10ms, 1s).
	Backoff    time.Duration
	MaxBackoff time.Duration

	mu   sync.Mutex
	c    C
	live bool
}

func (r *Redialer[C]) attempts() int {
	if r.Attempts > 0 {
		return r.Attempts
	}
	return 3
}

func (r *Redialer[C]) backoff() (first, cap time.Duration) {
	first, cap = r.Backoff, r.MaxBackoff
	if first <= 0 {
		first = 10 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	return first, cap
}

// dialOnce runs one Dial under the timeout. On timeout the in-flight
// dial keeps running in a goroutine whose only job is to close whatever
// it eventually produced.
func (r *Redialer[C]) dialOnce() (C, error) {
	var zero C
	if r.DialTimeout <= 0 {
		return r.Dial()
	}
	type result struct {
		c   C
		err error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := r.Dial()
		ch <- result{c, err}
	}()
	t := time.NewTimer(r.DialTimeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res.c, res.err
	case <-t.C:
		go func() {
			if res := <-ch; res.err == nil {
				res.c.Close()
			}
		}()
		return zero, fmt.Errorf("redial: dial timed out after %v", r.DialTimeout)
	}
}

// Get returns the current connection, dialing if needed: up to Attempts
// tries, exponential backoff between them, OnConnect run on every fresh
// connection before it is published. The last attempt's error is
// returned when all fail.
func (r *Redialer[C]) Get() (C, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero C
	if r.live {
		return r.c, nil
	}
	delay, maxDelay := r.backoff()
	var lastErr error
	for i := 0; i < r.attempts(); i++ {
		if i > 0 {
			time.Sleep(delay)
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
		}
		c, err := r.dialOnce()
		if err != nil {
			lastErr = err
			continue
		}
		if r.OnConnect != nil {
			if err := r.OnConnect(c); err != nil {
				c.Close()
				lastErr = err
				continue
			}
		}
		r.c, r.live = c, true
		return c, nil
	}
	return zero, lastErr
}

// Invalidate closes and discards c if it is still the current
// connection; a stale handle (another goroutine already redialed) is
// left alone. The next Get dials fresh.
func (r *Redialer[C]) Invalidate(c C) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live && any(r.c) == any(c) {
		r.c.Close()
		r.live = false
	}
}

// Close discards the current connection, if any. The Redialer stays
// usable: a later Get dials again.
func (r *Redialer[C]) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.live {
		return nil
	}
	r.live = false
	return r.c.Close()
}
