// wire.go — the zero-copy response writer.
//
// A read hit's bytes live in an arena-backed cache slot (cache/slot.go).
// Instead of copying them into a response buffer and again into a bufio
// writer, the kernel loop enqueues a frame descriptor that references the
// slot (pinned), and the session writer assembles header + flags byte +
// block slice as scatter/gather vectors: a pipelined burst of hits
// becomes one vectored write (net.Buffers → writev) that the kernel
// copies straight from the cache arena onto the socket. The pin is
// released after the vectored write returns — the only cross-goroutine
// hand-off, ordered by the slot's atomic refcount — at which point the
// kernel is free to mutate or recycle the slot again.
//
// Frame headers are encoded into a fixed-capacity scratch arena. The
// arena must never reallocate while vectors point into it, so the writer
// flushes whenever the next header might not fit (frameWriter.full).

package server

import (
	"net"
	"time"

	"repro/internal/cache"
)

// zcHdrLen is a zero-copy read response's fixed prefix: the 9-byte frame
// header plus the flags byte, contiguous in the scratch arena so the
// response costs two vectors (prefix, payload).
const zcHdrLen = 10

// maxBatchFrames bounds the frames encoded per flush; it sizes the
// header scratch (the binding limit) and keeps the vector count well
// under the kernel's iovec ceiling.
const maxBatchFrames = 64

// frameWriter batches response frames into vectored writes. Owned by one
// session's writer goroutine.
type frameWriter struct {
	conn  net.Conn
	wt    time.Duration
	vecs  net.Buffers
	hdrs  []byte        // header scratch; fixed capacity, vecs slice into it
	slots []*cache.Slot // pinned slots, unpinned by the next reset
}

func newFrameWriter(conn net.Conn, wt time.Duration) *frameWriter {
	return &frameWriter{
		conn:  conn,
		wt:    wt,
		vecs:  make(net.Buffers, 0, 2*maxBatchFrames),
		hdrs:  make([]byte, 0, maxBatchFrames*zcHdrLen),
		slots: make([]*cache.Slot, 0, maxBatchFrames),
	}
}

// full reports whether the next add could outgrow the header scratch,
// which must never reallocate under the batched vectors.
func (w *frameWriter) full() bool {
	return len(w.hdrs)+zcHdrLen > cap(w.hdrs)
}

// add encodes f's header into the scratch arena and appends its vectors.
// The caller has checked full().
func (w *frameWriter) add(f *outFrame) {
	n := len(w.hdrs)
	if f.slot != nil {
		w.hdrs = append(w.hdrs, 0, 0, 0, 0, 0, 0, 0, 0, 0, f.flags)
		h := w.hdrs[n : n+zcHdrLen]
		put32(h[0:], uint32(FrameOverhead+1+len(f.payload)))
		put32(h[4:], f.id)
		h[8] = f.tag
		w.vecs = append(w.vecs, h, f.payload)
		w.slots = append(w.slots, f.slot)
		return
	}
	w.hdrs = append(w.hdrs, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	h := w.hdrs[n : n+9]
	put32(h[0:], uint32(FrameOverhead+len(f.body)))
	put32(h[4:], f.id)
	h[8] = f.tag
	w.vecs = append(w.vecs, h)
	if len(f.body) > 0 {
		w.vecs = append(w.vecs, f.body)
	}
}

// flush pushes every batched vector in one vectored write, then unpins
// and resets. It resets on error too — a failed write still surrenders
// the pins, the connection is about to die anyway.
func (w *frameWriter) flush() error {
	if len(w.vecs) == 0 {
		return nil
	}
	w.conn.SetWriteDeadline(time.Now().Add(w.wt))
	v := w.vecs
	_, err := v.WriteTo(w.conn) // consumes v, a copy; entries are reset below
	w.reset()
	return err
}

func (w *frameWriter) reset() {
	for i := range w.vecs {
		w.vecs[i] = nil
	}
	w.vecs = w.vecs[:0]
	w.hdrs = w.hdrs[:0]
	for i, s := range w.slots {
		s.Unpin()
		w.slots[i] = nil
	}
	w.slots = w.slots[:0]
}

// releaseFrame drops a frame without sending it (dead connection),
// returning its pin.
func releaseFrame(f *outFrame) {
	if f.slot != nil {
		f.slot.Unpin()
	}
}
