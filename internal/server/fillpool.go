// fillpool.go — the bounded fill worker pool and the batching
// write-behind flusher: the store-side mechanism under the shard
// kernels.
//
// The kernel decides *what* to fill and write back (policy); this file
// decides the call shape (mechanism). Misses and read-ahead runs queue
// on a per-shard fillQueue, a small worker pool drains it, groups
// same-file adjacent blocks, and retires each run with one vectored
// store read; the flusher drains wbch opportunistically and retires
// adjacent victims with one vectored write. MSHR join/detach, orphan
// rules and Conflict ordering all live above this layer and see the
// same per-fill/per-write-back completions they always did.

package server

import (
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
)

const (
	// defaultFillWorkers is the per-shard pool size when Config leaves
	// FillWorkers zero: enough concurrency to overlap a few independent
	// misses without unbounded goroutine spawn.
	defaultFillWorkers = 4
	// maxFillBatch bounds how many queued fills one worker drains at a
	// time; maxWritebackBatch bounds one flusher drain of wbch.
	maxFillBatch      = 128
	maxWritebackBatch = 64
)

// fillQueue is the per-shard miss queue between the kernel loop and the
// fill workers. Push happens on the kernel goroutine and never blocks;
// pop blocks a worker until work or close.
type fillQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	fills  []*core.Fill
	closed bool
}

func newFillQueue() *fillQueue {
	q := &fillQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues fills and reports the resulting queue depth (the
// kernel's high-water counter wants it).
func (q *fillQueue) push(fls ...*core.Fill) int {
	q.mu.Lock()
	q.fills = append(q.fills, fls...)
	depth := len(q.fills)
	q.mu.Unlock()
	q.cond.Signal()
	return depth
}

// pop removes up to max queued fills, blocking while the queue is empty
// and open. It returns nil when the queue is closed and drained — the
// workers' exit signal.
func (q *fillQueue) pop(max int) []*core.Fill {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.fills) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.fills) == 0 {
		return nil
	}
	n := len(q.fills)
	if n > max {
		n = max
	}
	batch := make([]*core.Fill, n)
	copy(batch, q.fills)
	rest := copy(q.fills, q.fills[n:])
	for i := rest; i < len(q.fills); i++ {
		q.fills[i] = nil
	}
	q.fills = q.fills[:rest]
	return batch
}

// close wakes every worker to exit once the queue drains. Called at
// shard retire, when no fill can ever be pushed again.
func (q *fillQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// fillWorker is one pool goroutine: drain a batch, retire it run by
// run, repeat until the queue closes.
func (sh *shard) fillWorker(store disk.Store, batchCapable bool) {
	for {
		batch := sh.fq.pop(maxFillBatch)
		if batch == nil {
			return
		}
		sh.runFills(store, batchCapable, batch)
	}
}

// runFills sorts a drained batch by (file, block), splits it into
// same-file adjacent runs, and issues one store read per run — the run
// coalescing rule: only blocks that can plausibly share a vectored call
// are grouped; everything else stays a single-block read. Each run
// re-enters the kernel loop as one completion message, preserving
// per-fill CompleteFill semantics exactly.
//
// A block can appear twice (an orphaned mid-fill-eviction read and its
// successor fill); equal block numbers never extend a run, so both
// issue separately and each reads the same authoritative store bytes.
func (sh *shard) runFills(store disk.Store, batchCapable bool, batch []*core.Fill) {
	sort.Slice(batch, func(a, b int) bool {
		if batch[a].ID.File != batch[b].ID.File {
			return batch[a].ID.File < batch[b].ID.File
		}
		return batch[a].ID.Num < batch[b].ID.Num
	})
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && batch[j].ID.File == batch[i].ID.File && batch[j].ID.Num == batch[j-1].ID.Num+1 {
			j++
		}
		run := batch[i:j]
		i = j
		if len(run) == 1 {
			fl := run[0]
			fl.Err = store.ReadBlock(int32(fl.ID.File), fl.ID.Num, fl.Data)
		} else {
			specs := make([]disk.BlockSpan, len(run))
			dsts := make([][]byte, len(run))
			for k, fl := range run {
				specs[k] = disk.BlockSpan{File: int32(fl.ID.File), Blk: fl.ID.Num}
				dsts[k] = fl.Data
			}
			for k, err := range disk.ReadBatch(store, specs, dsts) {
				run[k].Err = err
			}
		}
		sh.kch <- kmsg{fills: run, batched: len(run) > 1 && batchCapable}
	}
}

// flusher is the shard's write-behind goroutine: receive one victim,
// opportunistically drain whatever else is already queued, and retire
// the batch. Queue order is preserved within and across batches, which
// is what keeps every same-block Conflict constraint honored; a batch
// never holds the same block twice — on a duplicate the gathered batch
// flushes first, so the older bytes are on the store before the newer
// write is even issued.
func (sh *shard) flusher(store disk.Store, batchCapable bool) {
	var batch []*core.WriteBack
	seen := make(map[cache.BlockID]bool)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		sh.flushWBs(store, batchCapable, batch)
		batch = nil // the slice rode the completion message; start fresh
		clear(seen)
	}
	for wb := range sh.wbch {
		batch = append(batch, wb)
		seen[wb.ID] = true
	gather:
		for len(batch) < maxWritebackBatch {
			select {
			case wb2, ok := <-sh.wbch:
				if !ok {
					break gather // closed; outer range will exit after the flush
				}
				if seen[wb2.ID] {
					flush()
				}
				batch = append(batch, wb2)
				seen[wb2.ID] = true
			default:
				break gather
			}
		}
		flush()
	}
}

// flushWBs retires one gathered batch: a lone victim keeps the plain
// WriteBlock path, a group goes through WriteBatch so adjacent-slot
// victims collapse into pwritev runs.
func (sh *shard) flushWBs(store disk.Store, batchCapable bool, batch []*core.WriteBack) {
	if len(batch) == 1 {
		wb := batch[0]
		wb.Err = store.WriteBlock(int32(wb.ID.File), wb.ID.Num, wb.Data)
		sh.kch <- kmsg{wb: wb}
		return
	}
	specs := make([]disk.BlockSpan, len(batch))
	srcs := make([][]byte, len(batch))
	for i, wb := range batch {
		specs[i] = disk.BlockSpan{File: int32(wb.ID.File), Blk: wb.ID.Num}
		srcs[i] = wb.Data
	}
	for i, err := range disk.WriteBatch(store, specs, srcs) {
		batch[i].Err = err
	}
	sh.kch <- kmsg{wbs: batch, batched: batchCapable}
}
