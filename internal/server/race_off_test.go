//go:build !race

package server_test

const raceEnabled = false
