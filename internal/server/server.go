package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/stats"
)

// Config configures a Server.
type Config struct {
	// Kernel configures the Live kernels. Config overwrites
	// Kernel.StartFill, Kernel.StartWriteBack and Kernel.Store (each
	// shard gets a keyspace slice of the shared store): the server owns
	// fill and write-back execution.
	Kernel core.LiveConfig
	// WritebackDepth bounds the asynchronous write-behind queue per
	// shard. 0 (the default) disables write-behind: dirty victims write
	// back synchronously inside the kernel loop, reproducing the
	// pre-write-behind request/IO ordering exactly — the mode the oracle
	// test pins. With depth N, up to N dirty victims per shard ride a
	// flusher goroutine; when the queue is full, a victim with no
	// same-block ordering constraint degrades to a synchronous inline
	// write (backpressure) rather than blocking the loop.
	WritebackDepth int
	// FillWorkers sizes the bounded per-shard fill worker pool (default
	// 4). Misses and read-ahead runs queue on the shard's fill queue;
	// the workers drain it, group same-file adjacent blocks, and retire
	// each run with one vectored store read. A negative value restores
	// the legacy one-goroutine-per-fill executor (one single-block store
	// read per miss) — the unbatched baseline the cold-fill benchmark
	// compares against.
	FillWorkers int
	// Shards is the number of independent kernel shards (default 1).
	// Each shard owns its own Live — its own cache arena, ACM, and fill
	// accounting — and its own message loop; files hash to a shard at
	// open time, so every block of a file lives in exactly one
	// replacement domain. Shards=1 is the unsharded server, bit for bit.
	Shards int
	// MaxInflight bounds pipelined requests per session (default 32).
	// The bound is what lets the kernel loops respond without ever
	// blocking on a slow client: a session holds one token per
	// unanswered request, so the response channel never fills.
	MaxInflight int
	// IdleTimeout disconnects a session with no traffic for this long
	// (default 2 minutes); disconnect releases the session's owners.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 30s).
	WriteTimeout time.Duration
	// CheckInvariants runs each shard kernel's cross-structure invariant
	// checks after every session close (tests; too slow for production).
	CheckInvariants bool
	// FileAnnounce, if set, is called on every successful open and
	// create with the file's wire id and name — the mapping a
	// name-addressed base store (the cluster tier's NodeStore) needs to
	// resolve the wire ids it is handed on fills and write-backs. Runs
	// on a shard goroutine; must be cheap and must not call back into
	// the server.
	FileAnnounce func(wire int32, name string)
	// ExtraFill, if set, contributes additional fill counters (the
	// cluster tier's peer-fill accounting, which lives below the shard
	// kernels in the base store) to the aggregated kernel snapshot on
	// every stats surface: the wire stats reply, Metrics, and /metrics.
	// Per-shard sections are unchanged — the counters are not per-shard.
	ExtraFill func() stats.FillStats

	// AdaptAlloc, when non-empty, turns on the per-shard online
	// allocation-policy adapter over the named candidate policies (see
	// cache.ParseAlloc). Each shard samples every candidate for one epoch
	// (AdaptEvery completed hit windows), scores it by EWMA windowed hit
	// ratio, then settles on the best — switching later only when a
	// fresh probe beats the incumbent by more than AdaptHysteresisBP
	// basis points. Adapter swaps run on the shard goroutine through the
	// same SetAllocPolicy migration as the set_alloc wire op, and count
	// in the alloc_swaps stat. New panics at construction on an unknown
	// candidate name.
	AdaptAlloc []string
	// AdaptEvery is the adapter epoch length in completed hit windows
	// (default 4; the window itself is Kernel.HitWindow accesses).
	AdaptEvery int64
	// AdaptHysteresisBP is the switching threshold in basis points of
	// windowed hit ratio (default 200 = two percentage points).
	AdaptHysteresisBP int64
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.FillWorkers == 0 {
		c.FillWorkers = defaultFillWorkers
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 4
	}
	if c.AdaptHysteresisBP <= 0 {
		c.AdaptHysteresisBP = 200
	}
}

// StatsReply is the JSON body of an OpStats response. With more than one
// shard, Session and Kernel aggregate over the shards and PerShard
// carries the breakdown; a 1-shard server omits PerShard so its wire
// responses are identical to the unsharded server's. Alloc always has
// one entry per shard: policy names are strings, so they ride beside
// the numeric snapshots rather than inside them.
type StatsReply struct {
	Session  core.ProcStats   `json:"session"`
	Kernel   stats.Snapshot   `json:"kernel"`
	PerShard []stats.Snapshot `json:"per_shard,omitempty"`
	Alloc    []AllocStatus    `json:"alloc,omitempty"`
}

// AllocStatus is one shard's allocation-policy line in a StatsReply:
// the active policy plus the windowed hit-ratio gauge behind the
// adapter (basis points over the last completed HitWindow accesses).
type AllocStatus struct {
	Policy      string `json:"policy"`
	HitWindowBP int64  `json:"hit_window_bp"`
	WindowsDone int64  `json:"windows_done"`
}

// SessionInfo describes one live session in a Metrics snapshot. Owner is
// the session's owner id in shard 0 (owner ids are per-shard); Stats
// aggregates the session's counters across all shards.
type SessionInfo struct {
	Owner int
	Name  string
	Stats core.ProcStats
}

// ShardMetrics is one shard's slice of a Metrics snapshot.
type ShardMetrics struct {
	Kernel             stats.Snapshot
	Requests           int64
	Refused            int64
	FillsInflight      int
	WritebacksInflight int
	CachedBlocks       int
	// AllocPolicy is the shard's active allocation policy and
	// AllocHitRatioBP the windowed hit-ratio gauge (basis points over
	// the last completed window) that the online adapter steers by.
	AllocPolicy     string
	AllocHitRatioBP int64
}

// Metrics is a point-in-time server snapshot. The top-level fields
// aggregate over the shards; Shards carries the per-shard breakdown.
type Metrics struct {
	Kernel             stats.Snapshot
	SessionsActive     int
	SessionsTotal      int64
	Requests           int64
	Refused            int64
	FillsInflight      int
	WritebacksInflight int
	CachedBlocks       int
	Shards             []ShardMetrics
	Sessions           []SessionInfo
}

// request is one decoded frame from a session. Requests are pooled:
// body is backed by fb (a size-classed pooled buffer) and both recycle
// through releaseRequest once the handler is done with the bytes.
type request struct {
	id   uint32
	op   uint8
	body []byte
	fb   *frameBuf // pooled storage behind body; nil for empty bodies
}

var requestPool = sync.Pool{New: func() any { return new(request) }}

// releaseRequest returns a request and its body buffer to their pools.
// Called exactly once per request: by the shard loop after a handler
// that did not retain it, by the retaining handler's completion
// callback (handleWrite, whose payload aliases body until the kernel
// consumes it), by the dispatcher for reader-orchestrated ops, or by
// the reader itself when the request dies before dispatch.
func releaseRequest(r *request) {
	if r.fb != nil {
		putFrameBuf(r.fb)
		r.fb = nil
	}
	r.body = nil
	requestPool.Put(r)
}

// outFrame is one response queued to a session's writer. Two shapes:
// an owned frame (body is the writer's to read, slot nil) or a
// zero-copy read response (slot non-nil: payload aliases the pinned
// cache slot's bytes and flags is the response flags byte, both encoded
// by the writer at flush; body stays nil).
type outFrame struct {
	id      uint32
	tag     uint8
	flags   uint8
	body    []byte
	payload []byte
	slot    *cache.Slot
}

// flagBodies are the two flag-only response bodies (miss, hit), shared
// and immutable so read-nodata and write responses allocate nothing.
var flagBodies = [2][]byte{{0}, {FlagHit}}

func flagBody(hit bool) []byte {
	if hit {
		return flagBodies[1]
	}
	return flagBodies[0]
}

// session is one client connection = one cache owner (one owner id per
// shard). The reader and writer goroutines own conn's two directions;
// owners[i] belongs to shard i's loop alone.
type session struct {
	srv  *Server
	conn net.Conn
	name string

	// tokens implements per-session backpressure: the reader takes a
	// token per request and the writer returns it after dequeuing the
	// response, so at most MaxInflight responses can ever be queued —
	// which is why the kernel loops' sends to out can never block, and a
	// dead client can never wedge a kernel.
	tokens chan struct{}
	out    chan outFrame
	die    chan struct{}
	once   sync.Once

	// owners[i] is this session's owner id in shard i, written by shard
	// i's loop when it processes the open message and read only by that
	// shard afterwards.
	owners []int

	// closeLeft counts shards that have not yet processed this session's
	// close message; the last one closes out. outMu orders late sends
	// (a fill completing after some shard closed the session) against
	// that close.
	closeLeft atomic.Int32
	outMu     sync.RWMutex
	outClosed bool
}

// kill tears the connection down; safe from any goroutine, idempotent.
func (s *session) kill() {
	s.once.Do(func() {
		close(s.die)
		s.conn.Close()
	})
}

// send queues a response. Never blocks (see session.tokens); drops the
// frame once every shard has closed the session. Unlike the unsharded
// server, sends arrive from several shard loops, so the closed check and
// the channel close are ordered by outMu instead of loop ownership.
func (s *session) send(id uint32, tag uint8, body []byte) {
	s.outMu.RLock()
	if !s.outClosed {
		s.out <- outFrame{id: id, tag: tag, body: body}
	}
	s.outMu.RUnlock()
}

// sendZC queues a zero-copy read response: the payload slice aliases
// sl's bytes, pinned here (on the kernel goroutine, so the pin is
// ordered before any later mutation of the block) and unpinned by the
// writer after the vectored write — or right here when every shard has
// already closed the session and the frame is dropped.
func (s *session) sendZC(id uint32, flags uint8, sl *cache.Slot, payload []byte) {
	sl.Pin()
	s.outMu.RLock()
	if !s.outClosed {
		s.out <- outFrame{id: id, tag: StatusOK, flags: flags, payload: payload, slot: sl}
		s.outMu.RUnlock()
		return
	}
	s.outMu.RUnlock()
	sl.Unpin()
}

func (s *session) sendErr(id uint32, err error) {
	s.send(id, statusOf(err), []byte(err.Error()))
}

// shardClosed records that one shard has finished closing this session;
// the last shard closes the response channel, ending the writer.
func (s *session) shardClosed() {
	if s.closeLeft.Add(-1) == 0 {
		s.outMu.Lock()
		s.outClosed = true
		close(s.out)
		s.outMu.Unlock()
	}
}

// kmsg is one message into a shard loop. Exactly one field group is set:
// a session event (sess + req/open/close), a completed fill, a closure to
// run on the shard goroutine, or a shutdown phase.
type kmsg struct {
	sess    *session
	req     *request // with sess: one request frame
	open    bool     // with sess: session arrived
	close   bool     // with sess: session is gone
	fill    *core.Fill
	fills   []*core.Fill      // a completed fill run (one store call, batched path)
	wb      *core.WriteBack   // a completed asynchronous write-back
	wbs     []*core.WriteBack // a completed write-back batch (batched flusher)
	batched bool              // with fills/wbs: the store retired it as one vectored call
	call    func(*shard)      // run on the shard goroutine (metrics, broadcasts)
	drain   bool              // begin refusing requests
	force   bool              // kill every remaining session
}

// shard is one kernel shard: a Live of its own plus the one goroutine
// that owns it. All fields below kch are that goroutine's alone.
type shard struct {
	idx  int
	srv  *Server
	kern *core.Live
	kch  chan kmsg
	// done closes when the shard has drained (shutdown); the loop keeps
	// consuming kch afterwards — refusing requests, settling session
	// closes — so sends to kch never block, but it no longer touches the
	// kernel, which makes Server.Close safe.
	done chan struct{}

	sessions      map[*session]bool
	draining      bool
	retired       bool // drained: done closed, kernel off-limits
	fillsInflight int
	requests      int64
	refused       int64

	// wbch feeds the shard's flusher goroutine (nil when write-behind is
	// off). wbOverflow holds write-backs that must execute in FIFO order
	// behind an older same-block write but found wbch full; the loop
	// drains it into wbch as completions free slots. wbInflight counts
	// write-backs handed to the asynchronous path and not yet completed —
	// the drain barrier waits for it, so the flusher never races
	// Server.Close's store writes.
	wbch       chan *core.WriteBack
	wbOverflow []*core.WriteBack
	wbInflight int

	// fq is the shard's fill queue (nil in legacy goroutine-per-fill
	// mode); the worker pool drains it. Closed at retire.
	fq *fillQueue

	// adapter is the shard's online allocation-policy adapter (nil
	// unless Config.AdaptAlloc is set); ticked between requests.
	adapter *allocAdapter
}

// remapStore gives each shard a disjoint keyspace in the shared block
// store by translating shard-local file ids to their wire encoding
// (local*shards + shard) — the same bijection the protocol uses, so a
// block's bytes live under the id the client knows. Close is a no-op:
// the server closes the shared base store exactly once.
type remapStore struct {
	base     disk.Store
	shard, n int32
}

func (r remapStore) ReadBlock(file, blk int32, dst []byte) error {
	return r.base.ReadBlock(file*r.n+r.shard, blk, dst)
}
func (r remapStore) WriteBlock(file, blk int32, src []byte) error {
	return r.base.WriteBlock(file*r.n+r.shard, blk, src)
}
func (r remapStore) Close() error { return nil }

// remapSpans translates a batch's shard-local file ids to their wire
// encoding. The remap is affine in the file id only, so adjacency in
// (file, block) — what the run grouping keys on — is preserved.
func (r remapStore) remapSpans(specs []disk.BlockSpan) []disk.BlockSpan {
	out := make([]disk.BlockSpan, len(specs))
	for i, sp := range specs {
		out[i] = disk.BlockSpan{File: sp.File*r.n + r.shard, Blk: sp.Blk}
	}
	return out
}

// ReadBlocks/WriteBlocks forward batches to the base store, which may
// or may not vector them — ReadBatch/WriteBatch fall back to per-block
// calls on a plain Store, so a remap over a counting test wrapper keeps
// per-block counting intact.
func (r remapStore) ReadBlocks(specs []disk.BlockSpan, dsts [][]byte) []error {
	return disk.ReadBatch(r.base, r.remapSpans(specs), dsts)
}
func (r remapStore) WriteBlocks(specs []disk.BlockSpan, srcs [][]byte) []error {
	return disk.WriteBatch(r.base, r.remapSpans(specs), srcs)
}

// Server is the acfcd daemon: N kernel shards, each a Live owned by one
// loop goroutine, and any number of client sessions feeding them
// requests over per-shard channels.
type Server struct {
	cfg    Config
	shards []*shard
	store  disk.Store // the shared base store behind the shard remaps
	// kdone closes when every shard has drained (shutdown complete).
	kdone chan struct{}

	mu        sync.Mutex
	listeners []net.Listener
	down      bool

	sessionsTotal atomic.Int64
	// Broadcast and aggregated ops (control, set_policy, stats) are
	// orchestrated by session readers, not any one shard loop, so their
	// request accounting lives here.
	xRequests atomic.Int64
	xRefused  atomic.Int64
}

// New builds a Server and starts its shard loops.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	base := cfg.Kernel.Store
	if base == nil {
		base = disk.NewMemStore()
	}
	srv := &Server{cfg: cfg, store: base, kdone: make(chan struct{})}
	n := cfg.Shards
	kerns := make([]*core.Live, 0, n)
	for i := 0; i < n; i++ {
		sh := &shard{
			idx:      i,
			srv:      srv,
			kch:      make(chan kmsg, 256),
			done:     make(chan struct{}),
			sessions: make(map[*session]bool),
		}
		kcfg := cfg.Kernel.ShardConfig(i, n)
		store := remapStore{base: base, shard: int32(i), n: int32(n)}
		kcfg.Store = store
		// batchCapable: whether the base store can actually vector a
		// run. The batch counters only tick when it can, so BatchedFills
		// on a plain (or counting test) store honestly reads zero.
		_, batchCapable := base.(disk.BatchStore)
		if cfg.FillWorkers > 0 {
			// Batched mode: fills queue on the shard's fill queue (the
			// hooks run on the kernel goroutine, which also tracks the
			// queue's high-water mark); a bounded worker pool drains it,
			// groups same-file adjacent blocks, and re-enters the loop
			// one run at a time. The loop counts fills in flight so
			// shutdown can wait for the last.
			sh.fq = newFillQueue()
			kcfg.StartFill = func(fl *core.Fill) {
				sh.fillsInflight++
				sh.kern.NoteFillQueueDepth(sh.fq.push(fl))
			}
			kcfg.StartFillBatch = func(fls []*core.Fill) {
				sh.fillsInflight += len(fls)
				sh.kern.NoteFillQueueDepth(sh.fq.push(fls...))
			}
			for w := 0; w < cfg.FillWorkers; w++ {
				go sh.fillWorker(store, batchCapable)
			}
		} else {
			// Legacy mode (FillWorkers < 0): one goroutine and one
			// single-block store read per fill — the unbatched baseline.
			kcfg.StartFill = func(fl *core.Fill) {
				sh.fillsInflight++
				go func() {
					fl.Err = store.ReadBlock(int32(fl.ID.File), fl.ID.Num, fl.Data)
					sh.kch <- kmsg{fill: fl}
				}()
			}
		}
		if cfg.WritebackDepth > 0 {
			sh.wbch = make(chan *core.WriteBack, cfg.WritebackDepth)
			kcfg.StartWriteBack = sh.startWriteBack
			// The flusher: one goroutine per shard draining the queue in
			// FIFO order (which is what makes queue-order execution honor
			// every same-block Conflict constraint) and re-entering the
			// kernel loop with the result — batching adjacent victims
			// along the way (fillpool.go). It exits when retire closes
			// wbch.
			go sh.flusher(store, batchCapable)
		}
		sh.kern = core.NewLive(kcfg)
		if len(cfg.AdaptAlloc) > 0 {
			sh.adapter = newAllocAdapter(cfg.AdaptAlloc, cfg.AdaptEvery, cfg.AdaptHysteresisBP, sh.kern)
		}
		kerns = append(kerns, sh.kern)
		srv.shards = append(srv.shards, sh)
	}
	core.CheckShardInvariants(kerns, cfg.Kernel)
	for _, sh := range srv.shards {
		go sh.loop()
	}
	go func() {
		for _, sh := range srv.shards {
			<-sh.done
		}
		close(srv.kdone)
	}()
	return srv
}

// Kernel exposes shard 0's Live kernel for tests and single-shard
// embeddings. Kernels are owned by their shard loops; callers must not
// touch them while the server is running.
func (s *Server) Kernel() *core.Live { return s.shards[0].kern }

// Shards reports the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Close flushes every shard kernel's dirty blocks and closes the shared
// block store. Call only after Shutdown has returned: the shard loops
// stop touching their kernels once drained, and the drain barrier has
// already waited out every asynchronous write-back — so these flush
// writes can never be overtaken by a stale flusher write.
func (s *Server) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if _, err := sh.kern.FlushDirty(core.MaxTime); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.store.Close(); firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// FlushDirty writes every shard kernel's dirty blocks to the store
// without closing it — the planned-leave handoff's first step, so no
// dirty byte depends on the streaming that follows. Call only after
// Shutdown has returned (same contract as Close): the retired shard
// loops no longer touch their kernels and the drain barrier has waited
// out every asynchronous write-back.
func (s *Server) FlushDirty() error {
	var firstErr error
	for _, sh := range s.shards {
		if _, err := sh.kern.FlushDirty(core.MaxTime); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CachedBlock is one cached block in a CachedContents enumeration,
// addressed by file name (the coordinate that survives re-creation on
// another node) with the file's shape alongside so the receiver can
// re-create it.
type CachedBlock struct {
	Name string
	Disk int
	Size int // file size in blocks
	Blk  int32
	Data []byte // a copy; the caller owns it
}

// CachedContents enumerates every data-carrying cached block across the
// shards, hottest first (each shard's MRU end leads) — what the cluster
// tier's warm handoff streams to the new hash owners before the node
// retires. Call only after Shutdown has returned: the kernels are
// quiescent, so the slots cannot change under the copy. Returns nil on
// a live server.
func (s *Server) CachedContents() []CachedBlock {
	select {
	case <-s.kdone:
	default:
		return nil
	}
	var out []CachedBlock
	for _, sh := range s.shards {
		order := sh.kern.Cache().GlobalOrder() // LRU to MRU
		for i := len(order) - 1; i >= 0; i-- {
			b := sh.kern.Cache().Peek(order[i])
			if b == nil || b.Slot == nil {
				continue
			}
			f, ok := sh.kern.FS().ByID(b.ID.File)
			if !ok || f.Removed() {
				continue
			}
			data := make([]byte, len(b.Slot.Data()))
			copy(data, b.Slot.Data())
			out = append(out, CachedBlock{
				Name: f.Name(),
				Disk: f.Disk(),
				Size: f.Size(),
				Blk:  b.ID.Num,
				Data: data,
			})
		}
	}
	return out
}

// Serve accepts connections on ln until the listener is closed. One
// Server may serve several listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || strings.Contains(err.Error(), "use of closed")
}

// startSession registers conn as a new owner session in every shard and
// starts its reader and writer. The registration messages are enqueued
// before the reader exists, so each shard sees the open before any of
// that session's requests.
func (s *Server) startSession(conn net.Conn) {
	se := &session{
		srv:    s,
		conn:   conn,
		name:   conn.RemoteAddr().String(),
		tokens: make(chan struct{}, s.cfg.MaxInflight),
		out:    make(chan outFrame, s.cfg.MaxInflight),
		die:    make(chan struct{}),
		owners: make([]int, len(s.shards)),
	}
	se.closeLeft.Store(int32(len(s.shards)))
	for i := 0; i < s.cfg.MaxInflight; i++ {
		se.tokens <- struct{}{}
	}
	s.sessionsTotal.Add(1)
	for _, sh := range s.shards {
		sh.kch <- kmsg{sess: se, open: true}
	}
	go se.readLoop()
	go se.writeLoop()
}

func (se *session) readLoop() {
	br := bufio.NewReaderSize(se.conn, MaxFrame)
	for {
		se.conn.SetReadDeadline(time.Now().Add(se.srv.cfg.IdleTimeout))
		id, op, n, err := ReadFrameHeader(br)
		if err != nil {
			break
		}
		r := requestPool.Get().(*request)
		r.id, r.op = id, op
		if n > 0 {
			r.fb = getFrameBuf(n)
			r.body = r.fb.b[:n]
			if _, err := io.ReadFull(br, r.body); err != nil {
				releaseRequest(r)
				break
			}
		}
		select {
		case <-se.tokens:
		case <-se.die:
		}
		select {
		case <-se.die:
			// Don't enqueue after kill: the close messages must be the
			// session's last in every shard.
			releaseRequest(r)
		default:
			se.srv.dispatch(se, r)
			continue
		}
		break
	}
	se.kill()
	for _, sh := range se.srv.shards {
		sh.kch <- kmsg{sess: se, close: true}
	}
}

// dispatch routes one frame. Shard-local ops go to their file's (or
// name's) shard; broadcast ops (control, set_policy) and the stats
// aggregation are orchestrated here, on the reader goroutine, which
// keeps each shard's FIFO ordered: a broadcast completes in every shard
// before the reader can enqueue the session's next frame.
func (s *Server) dispatch(se *session, r *request) {
	switch r.op {
	case OpControl, OpSetPolicy, OpSetAlloc:
		// All complete (every shard round-trip included) before
		// returning, so the request recycles here.
		s.broadcastCtl(se, r)
		releaseRequest(r)
	case OpStats:
		s.aggregateStats(se, r)
		releaseRequest(r)
	default:
		s.shardFor(r.op, r.body).kch <- kmsg{sess: se, req: r}
	}
}

// shardFor picks the shard a frame belongs to: file-scoped ops route by
// the wire file id (wire%N is the shard, by construction), name-scoped
// ops by a stable hash of the name — the same hash open used, so a
// file's blocks always land in the shard that owns the file. Anything
// unroutable (ping, get_policy, malformed bodies) anchors at shard 0.
func (s *Server) shardFor(op uint8, body []byte) *shard {
	n := uint32(len(s.shards))
	if n == 1 {
		return s.shards[0]
	}
	switch op {
	case OpRead, OpWrite, OpClose, OpSetPriority, OpGetPriority, OpSetTempPri:
		if len(body) >= 4 {
			return s.shards[be32(body)%n]
		}
	case OpOpen, OpRemove:
		return s.shards[hashName(body)%n]
	case OpCreate:
		if len(body) > 5 {
			return s.shards[hashName(body[5:])%n]
		}
	}
	return s.shards[0]
}

// hashName is FNV-1a over the file name: stable across runs (replay and
// restart see the same placement), cheap, and well-mixed on short paths.
func hashName(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// errDraining is the in-band refusal a draining shard returns to a
// broadcast closure.
var errDraining = errors.New("server draining")

// broadcastCtl runs a control-plane op (control, set_policy) in every
// shard, in shard order, and replies once: these ops target the
// session's manager state, which exists per shard. First error wins; a
// refusal from any shard refuses the whole op. Runs on the session's
// reader goroutine; each shard's closure is complete before the next is
// posted, and a live registered session keeps its shard loops
// consuming, so the round-trips cannot deadlock.
func (s *Server) broadcastCtl(se *session, r *request) {
	s.xRequests.Add(1)
	var alloc cache.Alloc
	switch r.op {
	case OpControl:
		if len(r.body) != 1 {
			se.send(r.id, StatusBadRequest, []byte("control: want 1-byte body"))
			return
		}
	case OpSetPolicy:
		if len(r.body) != 5 {
			se.send(r.id, StatusBadRequest, []byte("set_policy: want 5-byte body"))
			return
		}
	case OpSetAlloc:
		// Validate before touching any shard so an unknown name can
		// never leave the shards split across policies.
		a, err := cache.ParseAlloc(string(r.body))
		if err != nil {
			se.send(r.id, StatusUnknownPolicy, []byte(err.Error()))
			return
		}
		alloc = a
	}
	var firstErr error
	refused := false
	for _, sh := range s.shards {
		reply := make(chan error, 1)
		sh.kch <- kmsg{call: func(sh *shard) {
			if sh.draining {
				reply <- errDraining
				return
			}
			ow := se.owners[sh.idx]
			var err error
			switch r.op {
			case OpControl:
				if r.body[0] != 0 {
					err = sh.kern.EnableControl(ow)
				} else {
					err = sh.kern.DisableControl(ow)
				}
			case OpSetPolicy:
				err = sh.kern.SetPolicy(ow, int(int32(be32(r.body[0:]))), acm.Policy(r.body[4]))
			case OpSetAlloc:
				err = sh.kern.SetAllocPolicy(alloc)
			}
			reply <- err
		}}
		if err := <-reply; err == errDraining {
			refused = true
		} else if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	switch {
	case refused:
		s.xRefused.Add(1)
		se.send(r.id, StatusRefused, []byte("server shutting down"))
	case firstErr != nil:
		se.sendErr(r.id, firstErr)
	case r.op == OpSetPolicy:
		se.send(r.id, StatusOK, []byte{r.body[4]})
	case r.op == OpSetAlloc:
		se.send(r.id, StatusOK, []byte(alloc.String()))
	default:
		se.send(r.id, StatusOK, nil)
	}
}

// aggregateStats serves OpStats: per-shard owner counters and kernel
// snapshots, folded into one reply. Reader-orchestrated like
// broadcastCtl.
func (s *Server) aggregateStats(se *session, r *request) {
	s.xRequests.Add(1)
	type rep struct {
		st    core.ProcStats
		snap  stats.Snapshot
		alloc AllocStatus
		err   error
	}
	var agg core.ProcStats
	var snaps []stats.Snapshot
	var allocs []AllocStatus
	var firstErr error
	refused := false
	for _, sh := range s.shards {
		reply := make(chan rep, 1)
		sh.kch <- kmsg{call: func(sh *shard) {
			if sh.draining {
				reply <- rep{err: errDraining}
				return
			}
			st, err := sh.kern.OwnerStats(se.owners[sh.idx])
			reply <- rep{st: st, snap: sh.kern.Snapshot(), err: err, alloc: AllocStatus{
				Policy:      sh.kern.AllocPolicy().String(),
				HitWindowBP: sh.kern.HitRatioWindowBP(),
				WindowsDone: sh.kern.HitWindowsDone(),
			}}
		}}
		rp := <-reply
		switch {
		case rp.err == errDraining:
			refused = true
		case rp.err != nil:
			if firstErr == nil {
				firstErr = rp.err
			}
		default:
			agg.Add(rp.st)
			snaps = append(snaps, rp.snap)
			allocs = append(allocs, rp.alloc)
		}
	}
	if refused {
		s.xRefused.Add(1)
		se.send(r.id, StatusRefused, []byte("server shutting down"))
		return
	}
	if firstErr != nil {
		se.sendErr(r.id, firstErr)
		return
	}
	sr := StatsReply{Session: agg, Kernel: stats.Aggregate(snaps), Alloc: allocs}
	if s.cfg.ExtraFill != nil {
		sr.Kernel.Fill.Accumulate(s.cfg.ExtraFill())
	}
	if len(snaps) > 1 {
		sr.PerShard = snaps
	}
	body, err := json.Marshal(sr)
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	se.send(r.id, StatusOK, body)
}

func (se *session) writeLoop() {
	// Keep draining out even after a write error: the shards' sends and
	// the reader's tokens both depend on this loop consuming (a dead
	// connection just surrenders each frame's slot pin). Frames batch in
	// the frameWriter while more responses are already queued and flush
	// when the queue goes idle — a pipelined burst of reads becomes one
	// vectored write straight from the cache arena, a lone round-trip
	// still flushes immediately.
	w := newFrameWriter(se.conn, se.srv.cfg.WriteTimeout)
	dead := false
	for f := range se.out {
		for more := true; more; {
			if !dead && w.full() {
				if err := w.flush(); err != nil {
					dead = true
					se.kill()
				}
			}
			if dead {
				releaseFrame(&f)
			} else {
				w.add(&f)
			}
			select {
			case se.tokens <- struct{}{}:
			default:
			}
			select {
			case next, ok := <-se.out:
				if !ok {
					more = false
					break
				}
				f = next
			default:
				more = false
			}
		}
		if !dead {
			if err := w.flush(); err != nil {
				dead = true
				se.kill()
			}
		}
	}
}

// Shutdown drains the server: listeners close, every queued and
// in-flight request completes or is refused (StatusRefused), and each
// shard drains once its last session disconnects and its last fill
// lands; kdone closes when all shards have. If ctx expires first,
// remaining sessions are disconnected forcibly; Shutdown still waits
// for the drain (fills are local I/O and always complete).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.down
	s.down = true
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	if already {
		<-s.kdone
		return nil
	}
	for _, ln := range lns {
		ln.Close()
	}
	for _, sh := range s.shards {
		sh.kch <- kmsg{drain: true}
	}
	select {
	case <-s.kdone:
		return nil
	case <-ctx.Done():
		for _, sh := range s.shards {
			sh.kch <- kmsg{force: true}
		}
		<-s.kdone
		return ctx.Err()
	}
}

// Metrics snapshots the server counters; ok is false after shutdown has
// drained any shard.
func (s *Server) Metrics() (Metrics, bool) {
	type shardSess struct {
		se    *session
		owner int
		stats core.ProcStats
	}
	type shardRep struct {
		ok       bool
		m        ShardMetrics
		sessions []shardSess
	}
	m := Metrics{
		SessionsTotal: s.sessionsTotal.Load(),
		Requests:      s.xRequests.Load(),
		Refused:       s.xRefused.Load(),
	}
	var kernels []stats.Snapshot
	merged := make(map[*session]*SessionInfo)
	var order []*session
	for _, sh := range s.shards {
		reply := make(chan shardRep, 1)
		sh.kch <- kmsg{call: func(sh *shard) {
			if sh.retired {
				reply <- shardRep{}
				return
			}
			rp := shardRep{ok: true, m: ShardMetrics{
				Kernel:             sh.kern.Snapshot(),
				Requests:           sh.requests,
				Refused:            sh.refused,
				FillsInflight:      sh.fillsInflight,
				WritebacksInflight: sh.wbInflight,
				CachedBlocks:       sh.kern.Cache().Len(),
				AllocPolicy:        sh.kern.AllocPolicy().String(),
				AllocHitRatioBP:    sh.kern.HitRatioWindowBP(),
			}}
			for se := range sh.sessions {
				st, _ := sh.kern.OwnerStats(se.owners[sh.idx])
				rp.sessions = append(rp.sessions, shardSess{se: se, owner: se.owners[sh.idx], stats: st})
			}
			reply <- rp
		}}
		rp := <-reply
		if !rp.ok {
			return Metrics{}, false
		}
		m.Shards = append(m.Shards, rp.m)
		m.Requests += rp.m.Requests
		m.Refused += rp.m.Refused
		m.FillsInflight += rp.m.FillsInflight
		m.WritebacksInflight += rp.m.WritebacksInflight
		m.CachedBlocks += rp.m.CachedBlocks
		kernels = append(kernels, rp.m.Kernel)
		for _, ss := range rp.sessions {
			mi := merged[ss.se]
			if mi == nil {
				mi = &SessionInfo{Owner: ss.owner, Name: ss.se.name}
				merged[ss.se] = mi
				order = append(order, ss.se)
			}
			mi.Stats.Add(ss.stats)
		}
	}
	m.Kernel = stats.Aggregate(kernels)
	if s.cfg.ExtraFill != nil {
		m.Kernel.Fill.Accumulate(s.cfg.ExtraFill())
	}
	m.SessionsActive = len(order)
	for _, se := range order {
		m.Sessions = append(m.Sessions, *merged[se])
	}
	return m, true
}

// --- the shard loops ---

// loop is the one goroutine that owns this shard's Live kernel. Every
// cache operation in the shard happens here, in arrival order — the
// serialization rule that lets the DES-era cache and ACM structures run
// a concurrent server unchanged, now applied per replacement domain.
//
// The loop never returns: once drained (retired) it keeps consuming the
// channel — refusing requests, killing late opens, settling close
// counts — without touching the kernel again. That standing consumer is
// what lets every other goroutine send to kch unconditionally.
func (sh *shard) loop() {
	for m := range sh.kch {
		switch {
		case m.fill != nil:
			sh.fillsInflight--
			sh.kern.CompleteFill(m.fill)
			sh.maybeRetire()
		case m.fills != nil:
			sh.fillsInflight -= len(m.fills)
			if m.batched {
				sh.kern.CountFillBatch(len(m.fills))
			}
			for _, fl := range m.fills {
				sh.kern.CompleteFill(fl)
			}
			sh.maybeRetire()
		case m.wbs != nil:
			sh.wbInflight -= len(m.wbs)
			if m.batched {
				sh.kern.CountWritebackBatches(1)
			}
			for _, wb := range m.wbs {
				sh.kern.CompleteWriteBack(wb)
			}
			sh.drainOverflow()
			sh.maybeRetire()
		case m.wb != nil:
			sh.wbInflight--
			sh.kern.CompleteWriteBack(m.wb)
			sh.drainOverflow()
			sh.maybeRetire()
		case m.call != nil:
			m.call(sh)
		case m.drain:
			sh.draining = true
			sh.maybeRetire()
		case m.force:
			for se := range sh.sessions {
				se.kill()
			}
		case m.sess != nil && m.open:
			sh.openSession(m.sess)
		case m.sess != nil && m.close:
			sh.closeSession(m.sess)
			sh.maybeRetire()
		case m.sess != nil && m.req != nil:
			if !sh.handle(m.sess, m.req) {
				releaseRequest(m.req)
			}
		}
	}
}

// maybeRetire marks the shard drained when no session can enqueue more
// work, no fill is in flight, and the write-behind queue is empty — the
// drain barrier that makes Server.Close's direct store access safe.
// Retiring closes wbch, ending the flusher goroutine.
func (sh *shard) maybeRetire() {
	if sh.draining && !sh.retired && len(sh.sessions) == 0 && sh.fillsInflight == 0 && sh.wbInflight == 0 {
		sh.retired = true
		if sh.wbch != nil {
			close(sh.wbch)
		}
		if sh.fq != nil {
			sh.fq.close()
		}
		close(sh.done)
	}
}

// startWriteBack is the shard's LiveConfig.StartWriteBack hook; it runs
// on the shard loop goroutine and never blocks it. A write-back goes to
// the flusher queue when there is room (behind any overflow, preserving
// FIFO); a Conflict write-back — one that must not overtake an older
// pending write of the same block — waits in the overflow list when the
// queue is full; anything else degrades to a synchronous inline write,
// which is the backpressure rule: a full queue slows the evicting
// request down to today's synchronous cost instead of growing the queue
// without bound or stalling the whole shard behind one block.
func (sh *shard) startWriteBack(wb *core.WriteBack) {
	sh.drainOverflow()
	if len(sh.wbOverflow) == 0 {
		select {
		case sh.wbch <- wb:
			sh.wbInflight++
			return
		default:
		}
	}
	if wb.Conflict {
		sh.wbOverflow = append(sh.wbOverflow, wb)
		sh.wbInflight++
		return
	}
	// Inline is safe exactly because !Conflict: no older write of this
	// block is queued anywhere, so writing now cannot reorder anything.
	wb.Stalled = true
	wb.Err = sh.kern.Store().WriteBlock(int32(wb.ID.File), wb.ID.Num, wb.Data)
	sh.kern.CompleteWriteBack(wb)
}

// drainOverflow moves queued-behind-the-queue write-backs into wbch in
// FIFO order, as far as capacity allows.
func (sh *shard) drainOverflow() {
	for len(sh.wbOverflow) > 0 {
		select {
		case sh.wbch <- sh.wbOverflow[0]:
			sh.wbOverflow[0] = nil
			sh.wbOverflow = sh.wbOverflow[1:]
		default:
			return
		}
	}
	if len(sh.wbOverflow) == 0 {
		sh.wbOverflow = nil // let the backing array go
	}
}

func (sh *shard) openSession(se *session) {
	if sh.retired {
		// Too late to register (the kernel may be closing); the session
		// dies, and its close message settles the closeLeft count.
		se.kill()
		return
	}
	se.owners[sh.idx] = sh.kern.AddOwner(se.name)
	sh.sessions[se] = true
	if sh.draining {
		se.kill()
	}
}

// closeSession releases a disconnected session's owner in this shard:
// its manager is destroyed and its blocks transferred or evicted — the
// cache's revoked owner path, run on every client disconnect, once per
// shard.
func (sh *shard) closeSession(se *session) {
	if sh.sessions[se] {
		delete(sh.sessions, se)
		sh.kern.ReleaseOwner(se.owners[sh.idx])
		if sh.srv.cfg.CheckInvariants {
			sh.kern.CheckInvariants()
		}
	}
	se.shardClosed()
}

// --- request dispatch (shard goroutines) ---

func statusOf(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, core.ErrOutOfRange):
		return StatusRange
	case errors.Is(err, core.ErrUnknownOwner):
		return StatusRevoked
	case errors.Is(err, core.ErrNoControl), errors.Is(err, core.ErrControlled):
		return StatusNoControl
	case errors.Is(err, cache.ErrUnknownAlloc):
		return StatusUnknownPolicy
	case err != nil && strings.Contains(err.Error(), "exists"):
		return StatusExists
	case err != nil && (strings.Contains(err.Error(), "limit") || strings.Contains(err.Error(), "space")):
		return StatusLimit
	}
	return StatusIO
}

// wire translates a shard-local file id to its wire encoding and local
// inverts it: wire = local*N + shard. With one shard both are the
// identity, keeping the unsharded server's ids bit-for-bit.
func (sh *shard) wire(local fs.FileID) fs.FileID {
	return local*fs.FileID(len(sh.srv.shards)) + fs.FileID(sh.idx)
}

func (sh *shard) local(wire fs.FileID) fs.FileID {
	return wire / fs.FileID(len(sh.srv.shards))
}

// handle runs one request on the shard goroutine. It reports whether
// the handler retained r past its return (handleWrite, whose payload
// aliases r.body until the kernel's completion callback); when false,
// the shard loop recycles r immediately — so handlers that complete
// asynchronously (handleRead) must copy what they need out of r first.
func (sh *shard) handle(se *session, r *request) (retained bool) {
	sh.requests++
	if sh.adapter != nil {
		sh.adapter.tick()
	}
	if sh.draining {
		sh.refused++
		se.send(r.id, StatusRefused, []byte("server shutting down"))
		return false
	}
	switch r.op {
	case OpPing:
		se.send(r.id, StatusOK, nil)
	case OpOpen:
		sh.handleOpen(se, r)
	case OpCreate:
		sh.handleCreate(se, r)
	case OpRead:
		sh.handleRead(se, r)
	case OpWrite:
		return sh.handleWrite(se, r)
	case OpClose:
		if len(r.body) != 4 {
			se.send(r.id, StatusBadRequest, []byte("close: want 4-byte body"))
			return false
		}
		// Close is advisory in this kernel (blocks stay cached, as in
		// the paper, until evicted or the owner disconnects).
		se.send(r.id, StatusOK, nil)
	case OpRemove:
		if err := sh.kern.Remove(se.owners[sh.idx], string(r.body)); err != nil {
			se.sendErr(r.id, err)
			return false
		}
		se.send(r.id, StatusOK, nil)
	case OpGetAlloc:
		se.send(r.id, StatusOK, []byte(sh.kern.AllocPolicy().String()))
	case OpSetPriority, OpGetPriority, OpGetPolicy, OpSetTempPri:
		sh.handleFbehavior(se, r)
	default:
		se.send(r.id, StatusBadRequest, []byte(fmt.Sprintf("unknown op %d", r.op)))
	}
	return false
}

func (sh *shard) handleOpen(se *session, r *request) {
	f, err := sh.kern.Open(se.owners[sh.idx], string(r.body))
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	if fa := sh.srv.cfg.FileAnnounce; fa != nil {
		fa(int32(sh.wire(f.ID())), f.Name())
	}
	resp := make([]byte, 8)
	put32(resp[0:], uint32(sh.wire(f.ID())))
	put32(resp[4:], uint32(f.Size()))
	se.send(r.id, StatusOK, resp)
}

func (sh *shard) handleCreate(se *session, r *request) {
	if len(r.body) < 6 {
		se.send(r.id, StatusBadRequest, []byte("create: short body"))
		return
	}
	d := int(r.body[0])
	size := int(be32(r.body[1:]))
	name := string(r.body[5:])
	if name == "" {
		se.send(r.id, StatusBadRequest, []byte("create: empty name"))
		return
	}
	f, err := sh.kern.Create(se.owners[sh.idx], name, d, size)
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	if fa := sh.srv.cfg.FileAnnounce; fa != nil {
		fa(int32(sh.wire(f.ID())), f.Name())
	}
	resp := make([]byte, 8)
	put32(resp[0:], uint32(sh.wire(f.ID())))
	put32(resp[4:], uint32(f.Size()))
	se.send(r.id, StatusOK, resp)
}

// readCtx is one in-flight read's reply state, pooled so the hot path
// allocates nothing. It copies every field it needs out of the request
// (which recycles when the handler returns) and implements
// core.ReadReply; the kernel invokes ReadDone on the shard goroutine,
// either inline (hit) or when the fill completes.
type readCtx struct {
	sh    *shard
	se    *session
	id    uint32
	off   int
	size  int
	flags uint8
	bid   cache.BlockID
}

var readCtxPool = sync.Pool{New: func() any { return new(readCtx) }}

func (rc *readCtx) ReadDone(data []byte, hit bool, err error) {
	sh, se, id := rc.sh, rc.se, rc.id
	off, size, flags, bid := rc.off, rc.size, rc.flags, rc.bid
	readCtxPool.Put(rc)
	if err != nil {
		se.sendErr(id, err)
		return
	}
	if flags&ReadNoData != 0 {
		se.send(id, StatusOK, flagBody(hit))
		return
	}
	var fl uint8
	if hit {
		fl = FlagHit
	}
	// Zero-copy when the bytes still live in the cached buffer's slot:
	// running on the kernel goroutine, nothing can evict or mutate the
	// block between this check and the pin inside sendZC. A fill whose
	// buffer was stolen mid-flight hands us a detached copy instead
	// (data no longer backs the cached slot) — serve that by value.
	if b := sh.kern.Cache().Peek(bid); b != nil && b.Slot != nil && b.Slot.Backs(data) {
		se.sendZC(id, fl, b.Slot, data[off:off+size])
		return
	}
	sh.kern.CountWireFallback()
	resp := make([]byte, 1+size)
	resp[0] = fl
	copy(resp[1:], data[off:off+size])
	se.send(id, StatusOK, resp)
}

func (sh *shard) handleRead(se *session, r *request) {
	if len(r.body) != 13 {
		se.send(r.id, StatusBadRequest, []byte("read: want 13-byte body"))
		return
	}
	fid := sh.local(fs.FileID(be32(r.body[0:])))
	blk := int32(be32(r.body[4:]))
	rc := readCtxPool.Get().(*readCtx)
	*rc = readCtx{
		sh:    sh,
		se:    se,
		id:    r.id,
		off:   int(be16(r.body[8:])),
		size:  int(be16(r.body[10:])),
		flags: r.body[12],
		bid:   cache.BlockID{File: fid, Num: blk},
	}
	sh.kern.ReadTo(se.owners[sh.idx], fid, blk, rc.off, rc.size, rc)
}

func (sh *shard) handleWrite(se *session, r *request) bool {
	if len(r.body) < 12 {
		se.send(r.id, StatusBadRequest, []byte("write: short body"))
		return false
	}
	fid := sh.local(fs.FileID(be32(r.body[0:])))
	blk := int32(be32(r.body[4:]))
	off := int(be16(r.body[8:]))
	dlen := int(be16(r.body[10:]))
	if len(r.body) != 12+dlen {
		se.send(r.id, StatusBadRequest, []byte("write: length mismatch"))
		return false
	}
	payload := r.body[12:]
	id := r.id
	// The request is retained until the kernel has consumed payload
	// (which aliases r.body): on every completion path — hit, filled
	// miss, error — the copy into the cache happens before this
	// callback runs, so releasing here is safe.
	sh.kern.Write(se.owners[sh.idx], fid, blk, off, payload, func(hit bool, err error) {
		releaseRequest(r)
		if err != nil {
			se.sendErr(id, err)
			return
		}
		se.send(id, StatusOK, flagBody(hit))
	})
	return true
}

func (sh *shard) handleFbehavior(se *session, r *request) {
	owner := se.owners[sh.idx]
	switch r.op {
	case OpSetPriority:
		if len(r.body) != 8 {
			se.send(r.id, StatusBadRequest, []byte("set_priority: want 8-byte body"))
			return
		}
		err := sh.kern.SetPriority(owner, sh.local(fs.FileID(be32(r.body[0:]))), int(int32(be32(r.body[4:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, nil)
	case OpGetPriority:
		if len(r.body) != 4 {
			se.send(r.id, StatusBadRequest, []byte("get_priority: want 4-byte body"))
			return
		}
		prio, err := sh.kern.GetPriority(owner, sh.local(fs.FileID(be32(r.body[0:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		resp := make([]byte, 4)
		put32(resp, uint32(int32(prio)))
		se.send(r.id, StatusOK, resp)
	case OpGetPolicy:
		if len(r.body) != 4 {
			se.send(r.id, StatusBadRequest, []byte("get_policy: want 4-byte body"))
			return
		}
		pol, err := sh.kern.GetPolicy(owner, int(int32(be32(r.body[0:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, []byte{uint8(pol)})
	case OpSetTempPri:
		if len(r.body) != 16 {
			se.send(r.id, StatusBadRequest, []byte("set_temppri: want 16-byte body"))
			return
		}
		err := sh.kern.SetTempPri(owner, sh.local(fs.FileID(be32(r.body[0:]))),
			int32(be32(r.body[4:])), int32(be32(r.body[8:])), int(int32(be32(r.body[12:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, nil)
	}
}
