package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/stats"
)

// Config configures a Server.
type Config struct {
	// Kernel configures the Live kernel. Config overwrites
	// Kernel.StartFill: the server owns fill execution.
	Kernel core.LiveConfig
	// MaxInflight bounds pipelined requests per session (default 32).
	// The bound is what lets the kernel loop respond without ever
	// blocking on a slow client: a session holds one token per
	// unanswered request, so the response channel never fills.
	MaxInflight int
	// IdleTimeout disconnects a session with no traffic for this long
	// (default 2 minutes); disconnect releases the session's owner.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 30s).
	WriteTimeout time.Duration
	// CheckInvariants runs the kernel's cross-structure invariant
	// checks after every session close (tests; too slow for production).
	CheckInvariants bool
}

func (c *Config) fillDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// StatsReply is the JSON body of an OpStats response.
type StatsReply struct {
	Session core.ProcStats `json:"session"`
	Kernel  stats.Snapshot `json:"kernel"`
}

// SessionInfo describes one live session in a Metrics snapshot.
type SessionInfo struct {
	Owner int
	Name  string
	Stats core.ProcStats
}

// Metrics is a point-in-time server snapshot.
type Metrics struct {
	Kernel         stats.Snapshot
	SessionsActive int
	SessionsTotal  int64
	Requests       int64
	Refused        int64
	FillsInflight  int
	CachedBlocks   int
	Sessions       []SessionInfo
}

// request is one decoded frame from a session.
type request struct {
	id   uint32
	op   uint8
	body []byte
}

// outFrame is one response queued to a session's writer.
type outFrame struct {
	id   uint32
	tag  uint8
	body []byte
}

// session is one client connection = one cache owner. The reader and
// writer goroutines own conn's two directions; owner/closed belong to
// the kernel loop alone.
type session struct {
	srv  *Server
	conn net.Conn
	name string

	// tokens implements per-session backpressure: the reader takes a
	// token per request and the writer returns it after the response
	// hits the wire, so at most MaxInflight responses can ever be
	// queued — which is why the kernel loop's sends to out can never
	// block, and a dead client can never wedge the kernel.
	tokens chan struct{}
	out    chan outFrame
	die    chan struct{}
	once   sync.Once

	// Kernel-goroutine state.
	owner  int
	closed bool
}

// kill tears the connection down; safe from any goroutine, idempotent.
func (s *session) kill() {
	s.once.Do(func() {
		close(s.die)
		s.conn.Close()
	})
}

// send queues a response. Kernel goroutine only; never blocks (see
// session.tokens); drops the frame once the session has closed.
func (s *session) send(id uint32, tag uint8, body []byte) {
	if s.closed {
		return
	}
	s.out <- outFrame{id: id, tag: tag, body: body}
}

func (s *session) sendErr(id uint32, err error) {
	s.send(id, statusOf(err), []byte(err.Error()))
}

// kmsg is one message into the kernel loop. Exactly one field group is
// set: a session event (sess + req/open/close), a completed fill, a
// metrics request, or a shutdown phase.
type kmsg struct {
	sess    *session
	req     *request // with sess: one request frame
	open    bool     // with sess: session arrived
	close   bool     // with sess: session is gone
	fill    *core.Fill
	metrics chan<- Metrics
	drain   bool // begin refusing requests
	force   bool // kill every remaining session
}

// Server is the acfcd daemon: one Live kernel, one kernel-loop
// goroutine that owns it, and any number of client sessions feeding it
// requests over a channel.
type Server struct {
	cfg  Config
	kern *core.Live
	kch  chan kmsg
	// kdone closes when the kernel loop exits (shutdown drained).
	kdone chan struct{}

	mu        sync.Mutex
	listeners []net.Listener
	down      bool

	// Kernel-goroutine state.
	sessions      map[*session]bool
	draining      bool
	fillsInflight int
	requests      int64
	refused       int64
	sessionsTotal int64
}

// New builds a Server and starts its kernel loop.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	srv := &Server{
		cfg:      cfg,
		kch:      make(chan kmsg, 256),
		kdone:    make(chan struct{}),
		sessions: make(map[*session]bool),
	}
	// Fills run on one goroutine each and re-enter through the kernel
	// channel; the loop counts them so shutdown can wait for the last.
	cfg.Kernel.StartFill = func(fl *core.Fill) {
		srv.fillsInflight++
		store := srv.kern.Store()
		go func() {
			fl.Err = store.ReadBlock(int32(fl.ID.File), fl.ID.Num, fl.Data)
			srv.kch <- kmsg{fill: fl}
		}()
	}
	srv.kern = core.NewLive(cfg.Kernel)
	go srv.kernelLoop()
	return srv
}

// Kernel exposes the Live kernel for tests. The kernel is owned by the
// kernel loop; callers must not touch it while the server is running.
func (s *Server) Kernel() *core.Live { return s.kern }

// Serve accepts connections on ln until the listener is closed. One
// Server may serve several listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || strings.Contains(err.Error(), "use of closed")
}

// startSession registers conn as a new owner session and starts its
// reader and writer. The registration message is enqueued before the
// reader exists, so the kernel always sees open before the first
// request.
func (s *Server) startSession(conn net.Conn) {
	se := &session{
		srv:    s,
		conn:   conn,
		name:   conn.RemoteAddr().String(),
		tokens: make(chan struct{}, s.cfg.MaxInflight),
		out:    make(chan outFrame, s.cfg.MaxInflight),
		die:    make(chan struct{}),
	}
	for i := 0; i < s.cfg.MaxInflight; i++ {
		se.tokens <- struct{}{}
	}
	s.kch <- kmsg{sess: se, open: true}
	go se.readLoop()
	go se.writeLoop()
}

func (se *session) readLoop() {
	for {
		se.conn.SetReadDeadline(time.Now().Add(se.srv.cfg.IdleTimeout))
		id, op, body, err := ReadFrame(se.conn)
		if err != nil {
			break
		}
		select {
		case <-se.tokens:
		case <-se.die:
		}
		select {
		case <-se.die:
			// Don't enqueue after kill: the close message must be the
			// session's last.
		default:
			se.srv.kch <- kmsg{sess: se, req: &request{id: id, op: op, body: body}}
			continue
		}
		break
	}
	se.kill()
	se.srv.kch <- kmsg{sess: se, close: true}
}

func (se *session) writeLoop() {
	// Keep draining out even after a write error: the kernel's sends
	// and the reader's tokens both depend on this loop consuming.
	dead := false
	for f := range se.out {
		if !dead {
			se.conn.SetWriteDeadline(time.Now().Add(se.srv.cfg.WriteTimeout))
			if err := WriteFrame(se.conn, f.id, f.tag, f.body); err != nil {
				dead = true
				se.kill()
			}
		}
		select {
		case se.tokens <- struct{}{}:
		default:
		}
	}
}

// Shutdown drains the server: listeners close, every queued and
// in-flight request completes or is refused (StatusRefused), and the
// kernel loop exits once the last session disconnects and the last fill
// lands. If ctx expires first, remaining sessions are disconnected
// forcibly; Shutdown still waits for the loop to drain (fills are
// local I/O and always complete).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.down
	s.down = true
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	if already {
		<-s.kdone
		return nil
	}
	for _, ln := range lns {
		ln.Close()
	}
	s.kch <- kmsg{drain: true}
	select {
	case <-s.kdone:
		return nil
	case <-ctx.Done():
		// The loop may have already drained and exited; never block on
		// a channel it no longer reads.
		select {
		case s.kch <- kmsg{force: true}:
		case <-s.kdone:
		}
		<-s.kdone
		return ctx.Err()
	}
}

// Metrics snapshots the server counters; ok is false after shutdown.
func (s *Server) Metrics() (m Metrics, ok bool) {
	ch := make(chan Metrics, 1)
	select {
	case s.kch <- kmsg{metrics: ch}:
	case <-s.kdone:
		return Metrics{}, false
	}
	select {
	case m = <-ch:
		return m, true
	case <-s.kdone:
		return Metrics{}, false
	}
}

// --- the kernel loop ---

// kernelLoop is the one goroutine that owns the Live kernel. Every
// cache operation in the process happens here, in arrival order — the
// serialization rule that lets the DES-era cache and ACM structures run
// a concurrent server unchanged.
func (s *Server) kernelLoop() {
	for m := range s.kch {
		switch {
		case m.fill != nil:
			s.fillsInflight--
			s.kern.CompleteFill(m.fill)
		case m.metrics != nil:
			m.metrics <- s.snapshotMetrics()
		case m.drain:
			s.draining = true
			if s.doneDraining() {
				close(s.kdone)
				return
			}
		case m.force:
			for se := range s.sessions {
				se.kill()
			}
		case m.sess != nil && m.open:
			m.sess.owner = s.kern.AddOwner(m.sess.name)
			s.sessions[m.sess] = true
			s.sessionsTotal++
			if s.draining {
				m.sess.kill()
			}
		case m.sess != nil && m.close:
			s.closeSession(m.sess)
			if s.draining && s.doneDraining() {
				close(s.kdone)
				return
			}
		case m.sess != nil && m.req != nil:
			s.handle(m.sess, m.req)
		}
	}
}

// doneDraining reports whether the drained kernel loop may exit: no
// session can enqueue another message and no fill is in flight.
func (s *Server) doneDraining() bool {
	return len(s.sessions) == 0 && s.fillsInflight == 0
}

// closeSession releases a disconnected session's owner: its manager is
// destroyed and its blocks transferred or evicted — the cache's revoked
// owner path, run on every client disconnect.
func (s *Server) closeSession(se *session) {
	if !s.sessions[se] {
		return
	}
	delete(s.sessions, se)
	se.closed = true
	close(se.out)
	s.kern.ReleaseOwner(se.owner)
	if s.cfg.CheckInvariants {
		s.kern.CheckInvariants()
	}
}

func (s *Server) snapshotMetrics() Metrics {
	m := Metrics{
		Kernel:         s.kern.Snapshot(),
		SessionsActive: len(s.sessions),
		SessionsTotal:  s.sessionsTotal,
		Requests:       s.requests,
		Refused:        s.refused,
		FillsInflight:  s.fillsInflight,
		CachedBlocks:   s.kern.Cache().Len(),
	}
	for se := range s.sessions {
		st, _ := s.kern.OwnerStats(se.owner)
		m.Sessions = append(m.Sessions, SessionInfo{Owner: se.owner, Name: se.name, Stats: st})
	}
	return m
}

// --- request dispatch (kernel goroutine) ---

func statusOf(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, core.ErrOutOfRange):
		return StatusRange
	case errors.Is(err, core.ErrNoControl), errors.Is(err, core.ErrControlled),
		errors.Is(err, core.ErrUnknownOwner):
		return StatusNoControl
	case err != nil && strings.Contains(err.Error(), "exists"):
		return StatusExists
	case err != nil && (strings.Contains(err.Error(), "limit") || strings.Contains(err.Error(), "space")):
		return StatusLimit
	}
	return StatusIO
}

func (s *Server) handle(se *session, r *request) {
	s.requests++
	if s.draining {
		s.refused++
		se.send(r.id, StatusRefused, []byte("server shutting down"))
		return
	}
	switch r.op {
	case OpPing:
		se.send(r.id, StatusOK, nil)
	case OpOpen:
		s.handleOpen(se, r)
	case OpCreate:
		s.handleCreate(se, r)
	case OpRead:
		s.handleRead(se, r)
	case OpWrite:
		s.handleWrite(se, r)
	case OpClose:
		if len(r.body) != 4 {
			se.send(r.id, StatusBadRequest, []byte("close: want 4-byte body"))
			return
		}
		// Close is advisory in this kernel (blocks stay cached, as in
		// the paper, until evicted or the owner disconnects).
		se.send(r.id, StatusOK, nil)
	case OpRemove:
		if err := s.kern.Remove(se.owner, string(r.body)); err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, nil)
	case OpControl:
		s.handleControl(se, r)
	case OpSetPriority, OpGetPriority, OpSetPolicy, OpGetPolicy, OpSetTempPri:
		s.handleFbehavior(se, r)
	case OpStats:
		s.handleStats(se, r)
	default:
		se.send(r.id, StatusBadRequest, []byte(fmt.Sprintf("unknown op %d", r.op)))
	}
}

func (s *Server) handleOpen(se *session, r *request) {
	f, err := s.kern.Open(se.owner, string(r.body))
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	resp := make([]byte, 8)
	put32(resp[0:], uint32(f.ID()))
	put32(resp[4:], uint32(f.Size()))
	se.send(r.id, StatusOK, resp)
}

func (s *Server) handleCreate(se *session, r *request) {
	if len(r.body) < 6 {
		se.send(r.id, StatusBadRequest, []byte("create: short body"))
		return
	}
	d := int(r.body[0])
	size := int(be32(r.body[1:]))
	name := string(r.body[5:])
	if name == "" {
		se.send(r.id, StatusBadRequest, []byte("create: empty name"))
		return
	}
	f, err := s.kern.Create(se.owner, name, d, size)
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	resp := make([]byte, 8)
	put32(resp[0:], uint32(f.ID()))
	put32(resp[4:], uint32(f.Size()))
	se.send(r.id, StatusOK, resp)
}

func (s *Server) handleRead(se *session, r *request) {
	if len(r.body) != 13 {
		se.send(r.id, StatusBadRequest, []byte("read: want 13-byte body"))
		return
	}
	fid := fs.FileID(be32(r.body[0:]))
	blk := int32(be32(r.body[4:]))
	off := int(be16(r.body[8:]))
	size := int(be16(r.body[10:]))
	flags := r.body[12]
	s.kern.Read(se.owner, fid, blk, off, size, func(data []byte, hit bool, err error) {
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		var resp []byte
		if flags&ReadNoData != 0 {
			resp = make([]byte, 1)
		} else {
			// Copy now: data aliases the cached block, which later
			// writes mutate, and the writer goroutine serializes resp
			// after this callback returns.
			resp = make([]byte, 1+size)
			copy(resp[1:], data[off:off+size])
		}
		if hit {
			resp[0] = FlagHit
		}
		se.send(r.id, StatusOK, resp)
	})
}

func (s *Server) handleWrite(se *session, r *request) {
	if len(r.body) < 12 {
		se.send(r.id, StatusBadRequest, []byte("write: short body"))
		return
	}
	fid := fs.FileID(be32(r.body[0:]))
	blk := int32(be32(r.body[4:]))
	off := int(be16(r.body[8:]))
	dlen := int(be16(r.body[10:]))
	if len(r.body) != 12+dlen {
		se.send(r.id, StatusBadRequest, []byte("write: length mismatch"))
		return
	}
	payload := r.body[12:]
	s.kern.Write(se.owner, fid, blk, off, payload, func(hit bool, err error) {
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		resp := make([]byte, 1)
		if hit {
			resp[0] = FlagHit
		}
		se.send(r.id, StatusOK, resp)
	})
}

func (s *Server) handleControl(se *session, r *request) {
	if len(r.body) != 1 {
		se.send(r.id, StatusBadRequest, []byte("control: want 1-byte body"))
		return
	}
	var err error
	if r.body[0] != 0 {
		err = s.kern.EnableControl(se.owner)
	} else {
		err = s.kern.DisableControl(se.owner)
	}
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	se.send(r.id, StatusOK, nil)
}

func (s *Server) handleFbehavior(se *session, r *request) {
	switch r.op {
	case OpSetPriority:
		if len(r.body) != 8 {
			se.send(r.id, StatusBadRequest, []byte("set_priority: want 8-byte body"))
			return
		}
		err := s.kern.SetPriority(se.owner, fs.FileID(be32(r.body[0:])), int(int32(be32(r.body[4:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, nil)
	case OpGetPriority:
		if len(r.body) != 4 {
			se.send(r.id, StatusBadRequest, []byte("get_priority: want 4-byte body"))
			return
		}
		prio, err := s.kern.GetPriority(se.owner, fs.FileID(be32(r.body[0:])))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		resp := make([]byte, 4)
		put32(resp, uint32(int32(prio)))
		se.send(r.id, StatusOK, resp)
	case OpSetPolicy:
		if len(r.body) != 5 {
			se.send(r.id, StatusBadRequest, []byte("set_policy: want 5-byte body"))
			return
		}
		err := s.kern.SetPolicy(se.owner, int(int32(be32(r.body[0:]))), acm.Policy(r.body[4]))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, []byte{r.body[4]})
	case OpGetPolicy:
		if len(r.body) != 4 {
			se.send(r.id, StatusBadRequest, []byte("get_policy: want 4-byte body"))
			return
		}
		pol, err := s.kern.GetPolicy(se.owner, int(int32(be32(r.body[0:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, []byte{uint8(pol)})
	case OpSetTempPri:
		if len(r.body) != 16 {
			se.send(r.id, StatusBadRequest, []byte("set_temppri: want 16-byte body"))
			return
		}
		err := s.kern.SetTempPri(se.owner, fs.FileID(be32(r.body[0:])),
			int32(be32(r.body[4:])), int32(be32(r.body[8:])), int(int32(be32(r.body[12:]))))
		if err != nil {
			se.sendErr(r.id, err)
			return
		}
		se.send(r.id, StatusOK, nil)
	}
}

func (s *Server) handleStats(se *session, r *request) {
	st, err := s.kern.OwnerStats(se.owner)
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	body, err := json.Marshal(StatsReply{Session: st, Kernel: s.kern.Snapshot()})
	if err != nil {
		se.sendErr(r.id, err)
		return
	}
	se.send(r.id, StatusOK, body)
}
