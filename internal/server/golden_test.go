package server_test

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/server"
)

// TestGlobalLRUWireGolden pins the wire behavior of a 1-shard
// `-alloc global-lru` server to a recorded pre-policy-redesign golden: a
// fixed scripted request sequence, run serially on one connection with
// the logical tick clock, must produce byte-identical response frames
// (ids, statuses, hit flags, payloads). The script exercises create,
// write, read (with evictions: the working set is 3x the cache),
// re-reads, control, the fbehavior ops, close and remove. stats is
// excluded — its JSON body legitimately grows new fields.
//
// If this test fails after an intentional protocol or accounting change,
// re-record with -run TestGlobalLRUWireGolden -v and update the hash;
// any other failure is a behavior regression in the default policy.
func TestGlobalLRUWireGolden(t *testing.T) {
	const golden = "fafb649c1598be31bbda380c67f0baa9b699289fb105872df142128a332e52ec"

	_, addr, _ := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			CacheBytes: 32 * core.BlockSize, // 32-block cache; script touches 96 blocks
			Alloc:      cache.GlobalLRU,
		},
		Shards: 1,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	h := sha256.New()
	var reqID uint32
	// call sends one request frame and folds the entire response frame
	// (id, status, body) into the running hash. Serial: no pipelining, so
	// response order is deterministic.
	call := func(op uint8, body []byte) (uint8, []byte) {
		t.Helper()
		reqID++
		if err := server.WriteFrame(conn, reqID, op, body); err != nil {
			t.Fatalf("req %d op %d: write: %v", reqID, op, err)
		}
		id, st, rb, err := server.ReadFrame(br)
		if err != nil {
			t.Fatalf("req %d op %d: read: %v", reqID, op, err)
		}
		if id != reqID {
			t.Fatalf("req %d: response id %d", reqID, id)
		}
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], id)
		hdr[4] = st
		h.Write(hdr[:])
		h.Write(rb)
		return st, rb
	}
	u32 := func(v uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		return b[:]
	}

	call(server.OpPing, nil)

	// Three files, 32 blocks each.
	var files []uint32
	for i := 0; i < 3; i++ {
		body := append([]byte{0}, u32(32)...)
		body = append(body, []byte(fmt.Sprintf("golden-%d", i))...)
		st, rb := call(server.OpCreate, body)
		if st != server.StatusOK {
			t.Fatalf("create %d: status %d", i, st)
		}
		files = append(files, binary.BigEndian.Uint32(rb[:4]))
	}

	// Deterministic payload per (file, block).
	payload := func(f, blk uint32) []byte {
		p := make([]byte, 128)
		for i := range p {
			p[i] = byte(f*31 + blk*7 + uint32(i))
		}
		return p
	}
	writeReq := func(f, blk uint32, data []byte) []byte {
		body := make([]byte, 12, 12+len(data))
		binary.BigEndian.PutUint32(body[0:], f)
		binary.BigEndian.PutUint32(body[4:], blk)
		binary.BigEndian.PutUint16(body[8:], 0)
		binary.BigEndian.PutUint16(body[10:], uint16(len(data)))
		return append(body, data...)
	}
	readReq := func(f, blk uint32, size int) []byte {
		body := make([]byte, 13)
		binary.BigEndian.PutUint32(body[0:], f)
		binary.BigEndian.PutUint32(body[4:], blk)
		binary.BigEndian.PutUint16(body[8:], 0)
		binary.BigEndian.PutUint16(body[10:], uint16(size))
		return append(body[:12], 0)
	}

	// Fill all three files: 96 blocks through a 32-block cache, forcing
	// global-LRU evictions and write-backs of dirty blocks.
	for _, f := range files {
		for blk := uint32(0); blk < 32; blk++ {
			if st, _ := call(server.OpWrite, writeReq(f, blk, payload(f, blk))); st != server.StatusOK {
				t.Fatalf("write f%d blk%d: status %d", f, blk, st)
			}
		}
	}
	// Read everything back (mostly misses), then re-read the last file
	// (hits), then a strided pass.
	for _, f := range files {
		for blk := uint32(0); blk < 32; blk++ {
			if st, _ := call(server.OpRead, readReq(f, blk, 128)); st != server.StatusOK {
				t.Fatalf("read f%d blk%d: status %d", f, blk, st)
			}
		}
	}
	for blk := uint32(0); blk < 32; blk++ {
		call(server.OpRead, readReq(files[2], blk, 128))
	}
	for blk := uint32(0); blk < 32; blk += 3 {
		call(server.OpRead, readReq(files[0], blk, 64))
	}

	// Control + fbehavior surface (global-lru: some calls are still
	// accepted, recency behavior unchanged).
	call(server.OpControl, []byte{1})
	spBody := append(u32(files[0]), u32(5)...)
	call(server.OpSetPriority, spBody)
	call(server.OpGetPriority, u32(files[0]))
	call(server.OpSetPolicy, append(u32(5), 1))
	call(server.OpGetPolicy, u32(5))
	tpBody := append(u32(files[0]), u32(0)...)
	tpBody = append(tpBody, u32(7)...)
	tpBody = append(tpBody, u32(2)...)
	call(server.OpSetTempPri, tpBody)
	call(server.OpControl, []byte{0})

	// Error paths: read past EOF, unknown file, remove + reopen miss.
	call(server.OpRead, readReq(files[0], 99, 64))
	call(server.OpRead, readReq(0xdead, 0, 64))
	call(server.OpClose, u32(files[1]))
	call(server.OpRemove, []byte("golden-1"))
	call(server.OpOpen, []byte("golden-1"))
	call(server.OpOpen, []byte("golden-0"))

	got := hex.EncodeToString(h.Sum(nil))
	if golden == "GOLDEN_UNSET" {
		t.Logf("recorded golden: %s", got)
		return
	}
	if got != golden {
		t.Errorf("global-lru wire golden drifted:\n got  %s\n want %s", got, golden)
	}
}
