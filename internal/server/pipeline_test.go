package server_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/server/client"
)

func dialRaw(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

func put32be(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// shutdownAndClose drains and closes the server mid-test (the t.Cleanup
// Shutdown from startServer is idempotent and becomes a no-op).
func shutdownAndClose(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// countingStore counts and delays store operations, so tests can pin
// exactly how many reads the MSHR let through and keep fills in flight
// long enough for concurrent misses to pile up.
type countingStore struct {
	disk.Store
	readDelay  time.Duration
	writeDelay time.Duration
	reads      atomic.Int64
	writes     atomic.Int64
}

func (s *countingStore) ReadBlock(file, blk int32, dst []byte) error {
	s.reads.Add(1)
	time.Sleep(s.readDelay)
	return s.Store.ReadBlock(file, blk, dst)
}

func (s *countingStore) WriteBlock(file, blk int32, src []byte) error {
	s.writes.Add(1)
	time.Sleep(s.writeDelay)
	return s.Store.WriteBlock(file, blk, src)
}

// flakyStore fails writes while fail is set.
type flakyStore struct {
	disk.Store
	fail atomic.Bool
}

func (s *flakyStore) WriteBlock(file, blk int32, src []byte) error {
	if s.fail.Load() {
		return errors.New("flaky store: write failed")
	}
	return s.Store.WriteBlock(file, blk, src)
}

// waitSessionsGone polls until the server has processed every session
// close, so a test can observe post-release state without racing the
// shard loops.
func waitSessionsGone(t *testing.T, srv *server.Server) server.Metrics {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, ok := srv.Metrics()
		if !ok {
			t.Fatal("server drained while waiting for session close")
		}
		if m.SessionsActive == 0 {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never released: %d still active", m.SessionsActive)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerMissCoalescing is the tentpole regression: K concurrent
// sessions missing on the same cold block must trigger exactly one store
// read, and every session must get the correct bytes. The store sleeps
// long enough that all K requests are in the shard loop's hands before
// the fill lands.
func TestServerMissCoalescing(t *testing.T) {
	const K = 8
	store := &countingStore{Store: disk.NewMemStore(), readDelay: 20 * time.Millisecond}
	srv, _, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			Store:          store,
			EvictOnRelease: true, // setup's dirty block reaches the store on disconnect
		},
	})

	// Seed: one session writes the block and disconnects, so the bytes
	// are on the store and out of the cache — a genuinely cold hot block.
	want := bytes.Repeat([]byte{0xc4}, core.BlockSize)
	setup := dial()
	f, err := setup.Create("hot", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Write(f.ID, 0, 0, want); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	waitSessionsGone(t, srv)
	store.reads.Store(0)

	conns := make([]*client.Conn, K)
	for i := range conns {
		conns[i] = dial()
		defer conns[i].Close()
	}
	start := make(chan struct{})
	type out struct {
		data []byte
		err  error
	}
	outs := make([]out, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			data, _, err := conns[i].Read(f.ID, 0, 0, core.BlockSize)
			outs[i] = out{data, err}
		}(i)
	}
	close(start)
	wg.Wait()

	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("client %d: %v", i, o.err)
		}
		if !bytes.Equal(o.data, want) {
			t.Fatalf("client %d got wrong bytes", i)
		}
	}
	if n := store.reads.Load(); n != 1 {
		t.Errorf("store saw %d reads for %d concurrent misses, want exactly 1", n, K)
	}
	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics not ok")
	}
	if m.Kernel.Fill.StoreReads != 1 {
		t.Errorf("Fill.StoreReads = %d, want 1", m.Kernel.Fill.StoreReads)
	}
	if m.Kernel.Fill.CoalescedMisses == 0 {
		t.Error("Fill.CoalescedMisses = 0; concurrent misses did not coalesce")
	}
}

// TestServerMidFillDisconnect: sessions that hang up while their fill is
// in flight must not corrupt the fill for the sessions still waiting on
// it. The saboteurs issue the miss and slam the connection; the
// survivors coalesce onto the same fill and must get correct data.
// CheckInvariants (forced by startServer) audits every release.
func TestServerMidFillDisconnect(t *testing.T) {
	store := &countingStore{Store: disk.NewMemStore(), readDelay: 30 * time.Millisecond}
	srv, addr, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{Store: store},
	})

	want := bytes.Repeat([]byte{0x77}, core.BlockSize)
	setup := dial()
	f, err := setup.Create("mid", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Write(f.ID, 0, 0, want); err != nil {
		t.Fatal(err)
	}
	// Disown on release (default): the dirty block stays cached, so push
	// it to the store explicitly by flushing through a fresh server op —
	// simplest is to keep setup open and evict nothing; instead, make the
	// block cold by restarting the cache state: write it straight to the
	// store and never cache it under a live owner.
	setup.Close()
	waitSessionsGone(t, srv)
	// The block may still be cached (disowned). Overwrite the store copy
	// to match and drop nothing: survivors must see `want` either way.
	_ = store.Store.WriteBlock(int32(f.ID), 0, want)

	const saboteurs, survivors = 2, 2
	var wg sync.WaitGroup
	// Saboteurs: raw pipelined read of block 1 (cold), then immediate close.
	for i := 0; i < saboteurs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, err := dialRaw(addr)
			if err != nil {
				return
			}
			rd := make([]byte, 13)
			put32be(rd[0:], uint32(f.ID))
			put32be(rd[4:], 1)
			rd[11] = 1 // size
			rd[12] = server.ReadNoData
			server.WriteFrame(raw, 1, server.OpRead, rd)
			raw.Close()
		}()
	}
	type out struct {
		data []byte
		err  error
	}
	outs := make([]out, survivors)
	for i := 0; i < survivors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dial()
			defer c.Close()
			// Touch the contested cold block too, then the seeded one.
			if _, err := c.ReadNoData(f.ID, 1, 0, 1); err != nil {
				outs[i].err = err
				return
			}
			data, _, err := c.Read(f.ID, 0, 0, core.BlockSize)
			outs[i] = out{data, err}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("survivor %d: %v", i, o.err)
		}
		if !bytes.Equal(o.data, want) {
			t.Fatalf("survivor %d got wrong bytes after saboteur disconnects", i)
		}
	}
	waitSessionsGone(t, srv)
}

// TestWriteBehindDrainOnShutdown is the drain-barrier gate: dirty blocks
// queued to the write-behind flusher at disconnect must all be on the
// store after Shutdown+Close, even though the store writes slowly and
// the queue is far shallower than the burst.
func TestWriteBehindDrainOnShutdown(t *testing.T) {
	const blocks = 8
	ms := disk.NewMemStore()
	store := &countingStore{Store: ms, writeDelay: 20 * time.Millisecond}
	srv, _, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			Store:          store,
			EvictOnRelease: true,
		},
		WritebackDepth: 2,
	})

	c := dial()
	f, err := c.Create("drain", 0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < blocks; b++ {
		if _, err := c.Write(f.ID, b, 0, bytes.Repeat([]byte{byte(0xd0 + b)}, core.BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close() // evict-on-release: 8 dirty victims hit the write-behind path at once
	m := waitSessionsGone(t, srv)
	if m.Kernel.Fill.WritebacksQueued != blocks {
		t.Errorf("WritebacksQueued = %d, want %d", m.Kernel.Fill.WritebacksQueued, blocks)
	}
	if m.Kernel.Fill.WritebackStalls == 0 {
		t.Error("WritebackStalls = 0; a depth-2 queue absorbed an 8-block burst without backpressure")
	}

	shutdownAndClose(t, srv)

	dst := make([]byte, core.BlockSize)
	for b := int32(0); b < blocks; b++ {
		if err := ms.ReadBlock(int32(f.ID), b, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != byte(0xd0+b) || dst[core.BlockSize-1] != byte(0xd0+b) {
			t.Fatalf("block %d not on the store after shutdown: got %#x", b, dst[0])
		}
	}
}

// TestWriteBackErrorStatus pins the satellite: a failing store write
// during a demand eviction reaches the session that forced it as an IO
// status — not a daemon panic — and the failure is counted.
func TestWriteBackErrorStatus(t *testing.T) {
	fs := &flakyStore{Store: disk.NewMemStore()}
	srv, _, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			CacheBytes: 4 * core.BlockSize,
			Store:      fs,
		},
	})
	c := dial()
	defer c.Close()
	f, err := c.Create("flaky", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{1}, core.BlockSize)
	for b := int32(0); b < 4; b++ {
		if _, err := c.Write(f.ID, b, 0, block); err != nil {
			t.Fatal(err)
		}
	}
	fs.fail.Store(true)
	_, err = c.Write(f.ID, 4, 0, block) // evicts a dirty victim into the failing store
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusIO {
		t.Fatalf("write over failing store: err = %v, want StatusIO", err)
	}
	fs.fail.Store(false)

	// The daemon survives and keeps serving.
	if _, _, err := c.Read(f.ID, 4, 0, 8); err != nil {
		t.Fatalf("server not serviceable after write-back error: %v", err)
	}
	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics not ok")
	}
	if m.Kernel.Fill.WritebackErrors == 0 {
		t.Error("WritebackErrors = 0 after a failed write-back")
	}
}

// TestServerReadAhead wires the flag end to end: a sequential scan over
// a slow store issues prefetches and later demand reads land on them.
func TestServerReadAhead(t *testing.T) {
	store := &countingStore{Store: disk.NewMemStore(), readDelay: 2 * time.Millisecond}
	srv, _, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			Store:          store,
			ReadAhead:      true,
			ReadAheadDepth: 2,
		},
	})
	c := dial()
	defer c.Close()
	f, err := c.Create("seq", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < 16; b++ {
		if _, err := c.ReadNoData(f.ID, b, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics not ok")
	}
	if m.Kernel.Fill.PrefetchIssued == 0 {
		t.Error("sequential scan issued no prefetches")
	}
	if m.Kernel.Fill.PrefetchHits == 0 {
		t.Error("no demand read landed on a prefetched block")
	}
}
