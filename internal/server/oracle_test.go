package server_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// TestOracleWireReplayMatchesSimulation is the correctness oracle of the
// server subsystem: record a deterministic workload in the DES (every
// block access and every control call, in issue order), replay the
// transcript through acfcd over a real socket, and require the hit/miss
// and I/O accounting to come out byte-identical.
//
// The parity argument: with read-ahead off, a single app, a serial
// replay, and the server's deterministic tick clock, replacement is a
// pure function of the request sequence — the wire adds latency but the
// kernel loop sees the exact same order of operations the simulated
// kernel saw. Counters the comparison must exclude, and why:
//
//   - WriteBacks: the DES flushes dirty blocks on the 30-second update
//     daemon; the live kernel flushes synchronously at eviction. Same
//     blocks, different moments.
//   - Opens / MetadataReads: Open calls are not traced (replay resolves
//     files through Create events instead).
//   - FbehaviorCalls: Get* calls are untraced (they change nothing), so
//     the replayed call count differs from the workload's.
func TestOracleWireReplayMatchesSimulation(t *testing.T) {
	cases := []struct {
		app     string
		mode    workload.Mode
		cacheMB float64
		alloc   cache.Alloc
	}{
		{"cs1", workload.Smart, 2, cache.LRUSP}, // read-only scans, fbehavior-heavy
		{"cs1", workload.Oblivious, 2, cache.GlobalLRU},
		{"sort", workload.Smart, 2, cache.LRUSP}, // writes, grows and removes files
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app+"/"+tc.mode.String(), func(t *testing.T) {
			if testing.Short() && tc.app == "sort" {
				t.Skip("sort transcript is large; skipped in -short")
			}
			rec := expt.Record(expt.RunSpec{
				Apps:    []expt.AppSpec{{Name: tc.app, Make: expt.Registry[tc.app], Mode: tc.mode}},
				CacheMB: tc.cacheMB,
				Alloc:   tc.alloc,
				Opts:    expt.Options{ReadAheadOff: true},
			})
			if len(rec.Events) == 0 {
				t.Fatal("recording captured no events")
			}

			// WallClock off: the server's logical tick clock makes the
			// replay's recency order deterministic.
			// Shards pinned to 1: the oracle's parity argument needs the
			// whole cache to be one replacement domain, exactly the
			// simulated kernel. (This is also the gate that a 1-shard
			// server is the old server, bit for bit.)
			_, _, dial := startServer(t, server.Config{
				Kernel: core.LiveConfig{
					CacheBytes: core.MB(tc.cacheMB),
					Alloc:      tc.alloc,
				},
				Shards: 1,
			})
			c := dial()
			defer c.Close()

			replayTranscript(t, c, rec.Events)

			sr, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			want := rec.Result.PerApp[0].Stats
			got := sr.Session
			type subset struct {
				ReadCalls, WriteCalls, Hits, Misses, DemandReads, Prefetches int64
			}
			wantSub := subset{want.ReadCalls, want.WriteCalls, want.Hits, want.Misses, want.DemandReads, want.Prefetches}
			gotSub := subset{got.ReadCalls, got.WriteCalls, got.Hits, got.Misses, got.DemandReads, got.Prefetches}
			if gotSub != wantSub {
				t.Errorf("session stats diverge from simulation:\n got %+v\nwant %+v", gotSub, wantSub)
			}
			if sr.Kernel.Cache != rec.Result.CacheStats {
				t.Errorf("cache stats diverge from simulation:\n got %+v\nwant %+v", sr.Kernel.Cache, rec.Result.CacheStats)
			}
		})
	}
}

// replayTranscript pushes a recorded transcript through one session,
// serially, failing the test on any wire or status error. Recorded file
// ids map to server ids at each Create event, exactly as acload does.
func replayTranscript(t *testing.T, c *client.Conn, events []expt.ReplayEvent) {
	t.Helper()
	files := make(map[fs.FileID]fs.FileID)
	payload := make([]byte, core.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i, ev := range events {
		var err error
		if ev.IsCtl {
			ct := ev.Ctl
			switch ct.Op {
			case core.CtlCreateFile:
				var f client.File
				f, err = c.Create(ct.FileName, ct.Disk, ct.Size)
				if err == nil {
					files[ct.File] = f.ID
				}
			case core.CtlRemoveFile:
				err = c.Remove(ct.FileName)
				delete(files, ct.File)
			case core.CtlControl:
				err = c.Control(ct.Enable)
			case core.CtlSetPriority:
				err = c.SetPriority(files[ct.File], ct.Prio)
			case core.CtlSetPolicy:
				err = c.SetPolicy(ct.Prio, ct.Policy)
			case core.CtlSetTempPri:
				err = c.SetTempPri(files[ct.File], ct.Start, ct.End, ct.Prio)
			}
			if err != nil {
				t.Fatalf("event %d (ctl %d): %v", i, ct.Op, err)
			}
			continue
		}
		a := ev.Access
		fid, ok := files[a.File]
		if !ok {
			t.Fatalf("event %d: access to file %d before its create event", i, a.File)
		}
		if a.Write {
			_, err = c.Write(fid, a.Block, a.Off, payload[:a.Size])
		} else {
			_, err = c.ReadNoData(fid, a.Block, a.Off, a.Size)
		}
		if err != nil {
			t.Fatalf("event %d (file %d blk %d): %v", i, a.File, a.Block, err)
		}
	}
}
