package server_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/server/client"
)

// sleepStore delays every block read so fills stay genuinely in flight
// while sessions churn — the revoke-on-disconnect path must cope with
// owners that vanish between StartFill and CompleteFill — and every
// write, so the write-behind flusher's queue genuinely backs up.
type sleepStore struct {
	disk.Store
	readDelay  time.Duration
	writeDelay time.Duration
}

func (s *sleepStore) ReadBlock(file, blk int32, dst []byte) error {
	time.Sleep(s.readDelay)
	return s.Store.ReadBlock(file, blk, dst)
}

func (s *sleepStore) WriteBlock(file, blk int32, src []byte) error {
	time.Sleep(s.writeDelay)
	return s.Store.WriteBlock(file, blk, src)
}

// TestSoakConcurrentSessions is the subsystem's race stress: a deliberately
// tiny cache, slow fills, and 16+ concurrent sessions mixing reads, writes
// and fbehavior calls on private and shared files while other connections
// pipeline requests and disconnect abruptly mid-I/O. Invariant checks run
// after every session close (startServer forces CheckInvariants), so each
// revoke is audited while the rest of the fleet keeps hammering the cache.
// Run under -race via `make check`. The sweep covers both release modes
// at 1 shard and at 4, so every revoke/transfer path is audited per
// replacement domain: with CheckInvariants forced by startServer, each
// session close re-verifies the closing shard's kernel while the other
// shards keep serving. Half the variants run the fill pipeline
// (write-behind on a slow-write store plus read-ahead), so every mode
// pairing appears with the pipeline both on and off: mid-fill
// disconnects then race queued write-backs, prefetch fills, and the
// drain/retire barrier too.
func TestSoakConcurrentSessions(t *testing.T) {
	for _, v := range []struct {
		evict     bool
		shards    int
		pipelined bool
	}{
		{false, 1, false},
		{true, 1, true},
		{false, 4, true},
		{true, 4, false},
	} {
		v := v
		name := "disown"
		if v.evict {
			name = "evict"
		}
		suffix := "sync"
		if v.pipelined {
			suffix = "pipelined"
		}
		t.Run(fmt.Sprintf("%s/shards=%d/%s", name, v.shards, suffix), func(t *testing.T) {
			soak(t, v.evict, v.shards, v.pipelined)
		})
	}
}

func soak(t *testing.T, evictOnRelease bool, shards int, pipelined bool) {
	const (
		sessions   = 16
		saboteurs  = 4 // extra raw connections that hang up mid-pipeline
		fileBlocks = 24
	)
	rounds := 60
	if testing.Short() {
		rounds = 12
	}

	cfg := server.Config{
		Kernel: core.LiveConfig{
			CacheBytes:     64 * core.BlockSize, // tiny: constant eviction pressure
			Store:          &sleepStore{Store: disk.NewMemStore(), readDelay: 100 * time.Microsecond},
			EvictOnRelease: evictOnRelease,
		},
		Shards:      shards,
		MaxInflight: 8,
	}
	if pipelined {
		// A deliberately shallow queue over a slow-write store: write-backs
		// stall (the backpressure path), conflicts overflow, and fills
		// forward from pending write-backs, all under the same churn.
		cfg.WritebackDepth = 2
		cfg.Kernel.ReadAhead = true
		cfg.Kernel.ReadAheadDepth = 2
		cfg.Kernel.Store = &sleepStore{
			Store:      disk.NewMemStore(),
			readDelay:  100 * time.Microsecond,
			writeDelay: 200 * time.Microsecond,
		}
	}
	_, addr, dial := startServer(t, cfg)

	// A shared file every session reads, so disconnects exercise the
	// transfer-or-evict path on blocks other owners still want.
	setup := dial()
	shared, err := setup.Create("shared", 0, fileBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < fileBlocks; b++ {
		if _, err := setup.Write(shared.ID, b, 0, []byte{byte(b)}); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	var wg sync.WaitGroup
	errc := make(chan error, sessions+saboteurs)

	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := soakSession(addr, i, rounds, fileBlocks); err != nil {
				errc <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	for i := 0; i < saboteurs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds/4; r++ {
				if err := sabotage(addr, i, r); err != nil {
					errc <- fmt.Errorf("saboteur %d: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The shared data must have survived every revoke, in cache or on
	// disk, whichever mode moved it there.
	final := dial()
	defer final.Close()
	for b := int32(0); b < fileBlocks; b++ {
		data, _, err := final.Read(shared.ID, b, 0, 1)
		if err != nil {
			t.Fatalf("shared block %d after soak: %v", b, err)
		}
		if data[0] != byte(b) {
			t.Fatalf("shared block %d corrupted: got %d", b, data[0])
		}
	}
}

// soakSession runs one full-lifecycle client: create a private file,
// interleave reads and writes on it and the shared file, drive the
// fbehavior surface, and reconnect periodically so owner release runs
// many times per test under full concurrency.
func soakSession(addr string, id, rounds, fileBlocks int) error {
	var c *client.Conn
	var priv, shared client.File
	connect := func() error {
		var err error
		if c, err = client.Dial("tcp", addr); err != nil {
			return err
		}
		if shared, err = c.Open("shared"); err != nil {
			return err
		}
		name := fmt.Sprintf("priv%d", id)
		if priv, err = c.Open(name); err != nil {
			if priv, err = c.Create(name, id%2, fileBlocks); err != nil {
				return err
			}
		}
		if err := c.Control(true); err != nil {
			return err
		}
		if err := c.SetPriority(priv.ID, 1+id%3); err != nil {
			return err
		}
		return c.SetPolicy(1+id%3, acm.MRU)
	}
	if err := connect(); err != nil {
		return err
	}
	defer func() { c.Close() }()

	for r := 0; r < rounds; r++ {
		b := int32((r + id) % fileBlocks)
		if _, err := c.Write(priv.ID, b, 0, []byte{byte(id), byte(r)}); err != nil {
			return fmt.Errorf("round %d write: %w", r, err)
		}
		data, _, err := c.Read(priv.ID, b, 0, 2)
		if err != nil {
			return fmt.Errorf("round %d read: %w", r, err)
		}
		if data[0] != byte(id) || data[1] != byte(r) {
			return fmt.Errorf("round %d: private data corrupted: %v", r, data)
		}
		if _, err := c.ReadNoData(shared.ID, b, 0, 1); err != nil {
			return fmt.Errorf("round %d shared read: %w", r, err)
		}
		if r%5 == 4 {
			// Rewrite the shared block with its own value: harmless to the
			// final content check, but when another session's zero-copy
			// response frame still pins the block's slot this forces the
			// copy-on-write path under full concurrency.
			if _, err := c.Write(shared.ID, b, 0, []byte{byte(b)}); err != nil {
				return fmt.Errorf("round %d shared write: %w", r, err)
			}
		}
		if err := c.SetTempPri(shared.ID, b, b+4, 0); err != nil {
			return fmt.Errorf("round %d settemppri: %w", r, err)
		}
		if r%10 == 9 {
			// Cycle the session: release this owner (with blocks cached
			// and possibly dirty) and come back as a fresh one.
			c.Close()
			if err := connect(); err != nil {
				return fmt.Errorf("round %d reconnect: %w", r, err)
			}
		}
	}
	return nil
}

// sabotage opens a raw connection, pipelines a burst of slow reads, and
// slams the connection shut without reading a single response — the
// worst-behaved client the revoke path must absorb while fills for its
// session are still in flight. Even rounds pipeline cold misses on a
// private file (mid-fill disconnect); odd rounds pipeline full-data
// reads of the shared file and hang up with zero-copy response frames
// pinning slots that concurrent writers and the tiny cache's evictions
// are fighting over (eviction-during-send: the dropped frames must
// surrender their pins, the pinned slots must zombie and recycle).
func sabotage(addr string, id, round int) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer raw.Close()

	if round%2 == 1 {
		return sabotageSharedReads(raw)
	}

	name := fmt.Sprintf("sab%d-%d", id, round)
	body := make([]byte, 5+len(name))
	body[0] = byte(id % 2)
	body[1], body[2], body[3], body[4] = 0, 0, 0, 16 // 16 blocks
	copy(body[5:], name)
	if err := server.WriteFrame(raw, 1, server.OpCreate, body); err != nil {
		return err
	}
	_, status, resp, err := server.ReadFrame(raw)
	if err != nil {
		return err
	}
	if status != server.StatusOK {
		return fmt.Errorf("create %s: %s", name, server.StatusName(status))
	}
	fid := uint32(resp[0])<<24 | uint32(resp[1])<<16 | uint32(resp[2])<<8 | uint32(resp[3])

	// Pipeline misses (every block is cold) and hang up mid-fill.
	rd := make([]byte, 13)
	rd[0], rd[1], rd[2], rd[3] = byte(fid>>24), byte(fid>>16), byte(fid>>8), byte(fid)
	rd[12] = server.ReadNoData
	for b := 0; b < 16; b++ {
		rd[7] = byte(b)
		rd[11] = 1 // size
		if err := server.WriteFrame(raw, uint32(2+b), server.OpRead, rd); err != nil {
			return nil // server may have raced the close; that's the point
		}
	}
	return nil
}

// sabotageSharedReads pipelines whole-block reads of the shared file and
// abandons the connection without consuming the responses.
func sabotageSharedReads(raw net.Conn) error {
	if err := server.WriteFrame(raw, 1, server.OpOpen, []byte("shared")); err != nil {
		return err
	}
	_, status, resp, err := server.ReadFrame(raw)
	if err != nil {
		return err
	}
	if status != server.StatusOK {
		return fmt.Errorf("open shared: %s", server.StatusName(status))
	}
	fid := uint32(resp[0])<<24 | uint32(resp[1])<<16 | uint32(resp[2])<<8 | uint32(resp[3])

	rd := make([]byte, 13)
	rd[0], rd[1], rd[2], rd[3] = byte(fid>>24), byte(fid>>16), byte(fid>>8), byte(fid)
	rd[10] = byte(core.BlockSize >> 8) // size: the whole block, real payloads
	for b := 0; b < 16; b++ {
		rd[7] = byte(b % 24)
		if err := server.WriteFrame(raw, uint32(2+b), server.OpRead, rd); err != nil {
			return nil
		}
	}
	return nil
}
