package server_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
)

// startServer brings up a server on a loopback TCP listener and returns
// a dialer plus a shutdown func.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string, func() *client.Conn) {
	t.Helper()
	if cfg.Kernel.CacheBytes == 0 {
		cfg.Kernel.CacheBytes = core.MB(1)
	}
	if cfg.Kernel.Alloc == "" {
		cfg.Kernel.Alloc = cache.LRUSP
	}
	cfg.CheckInvariants = true
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, addr, func() *client.Conn {
		c, err := client.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
}

func TestRoundTripAndDataIntegrity(t *testing.T) {
	_, _, dial := startServer(t, server.Config{})
	c := dial()
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("data", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size != 4 {
		t.Fatalf("created size %d, want 4", f.Size)
	}
	// Unwritten blocks read as zeros, and the first access is a miss.
	data, hit, err := c.Read(f.ID, 0, 0, core.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first read hit")
	}
	if !bytes.Equal(data, make([]byte, core.BlockSize)) {
		t.Error("unwritten block not zero")
	}
	// Whole-block write, then read back.
	block := bytes.Repeat([]byte{0xAB}, core.BlockSize)
	if _, err := c.Write(f.ID, 1, 0, block); err != nil {
		t.Fatal(err)
	}
	data, hit, err = c.Read(f.ID, 1, 0, core.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("read after write missed")
	}
	if !bytes.Equal(data, block) {
		t.Error("read back wrong bytes")
	}
	// Partial read window.
	data, _, err = c.Read(f.ID, 1, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 16 || data[0] != 0xAB {
		t.Errorf("partial read: % x", data)
	}
	// Second open sees the file.
	g, err := c.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != f.ID {
		t.Errorf("open id %d, want %d", g.ID, f.ID)
	}
	if _, err := c.Open("nope"); err == nil {
		t.Error("open of missing file succeeded")
	}
}

// TestReadModifyWrite drives the partial-write path: the block must come
// in from the store before the partial bytes land, and both survive.
func TestReadModifyWrite(t *testing.T) {
	srv, _, dial := startServer(t, server.Config{})
	c := dial()
	defer c.Close()

	f, err := c.Create("rmw", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Populate block 0 on the store by writing whole, then evict it by
	// flushing... simpler: write whole, read back through cache.
	base := bytes.Repeat([]byte{0x11}, core.BlockSize)
	if _, err := c.Write(f.ID, 0, 0, base); err != nil {
		t.Fatal(err)
	}
	// Partial overwrite in the middle.
	if _, err := c.Write(f.ID, 0, 4000, []byte{0xFF, 0xFE}); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Read(f.ID, 0, 0, core.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if data[3999] != 0x11 || data[4000] != 0xFF || data[4001] != 0xFE || data[4002] != 0x11 {
		t.Errorf("rmw bytes wrong: % x", data[3998:4004])
	}
	// A partial write to a grown (new) block must not read the store.
	if _, err := c.Write(f.ID, 5, 8, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	data, _, err = c.Read(f.ID, 5, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if data[8] != 0x22 || data[0] != 0 {
		t.Errorf("grown block bytes wrong: % x", data[:16])
	}
	_ = srv
}

func TestFbehaviorSurface(t *testing.T) {
	_, _, dial := startServer(t, server.Config{})
	c := dial()
	defer c.Close()

	f, err := c.Create("ctl", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// fbehavior before EnableControl is an error, not a panic.
	if err := c.SetPriority(f.ID, 1); err == nil {
		t.Fatal("set_priority without control succeeded")
	}
	if err := c.Control(true); err != nil {
		t.Fatal(err)
	}
	if err := c.Control(true); err == nil {
		t.Error("double enable succeeded")
	}
	if err := c.SetPriority(f.ID, 2); err != nil {
		t.Fatal(err)
	}
	prio, err := c.GetPriority(f.ID)
	if err != nil || prio != 2 {
		t.Fatalf("get_priority = %d, %v; want 2", prio, err)
	}
	if err := c.SetPolicy(2, acm.MRU); err != nil {
		t.Fatal(err)
	}
	pol, err := c.GetPolicy(2)
	if err != nil || pol != acm.MRU {
		t.Fatalf("get_policy = %v, %v; want MRU", pol, err)
	}
	if err := c.SetTempPri(f.ID, 0, 3, -1); err != nil {
		t.Fatal(err)
	}
	if err := c.Control(false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPriority(f.ID); err == nil {
		t.Error("get_priority after disable succeeded")
	}
}

func TestStatsAndMetrics(t *testing.T) {
	srv, _, dial := startServer(t, server.Config{})
	c := dial()
	defer c.Close()

	f, err := c.Create("st", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for b := int32(0); b < 4; b++ {
			if _, _, err := c.Read(f.ID, b, 0, core.BlockSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	sr, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Session.ReadCalls != 8 || sr.Session.Misses != 4 || sr.Session.Hits != 4 {
		t.Errorf("session stats: %+v", sr.Session)
	}
	if sr.Kernel.Cache.Misses != 4 {
		t.Errorf("kernel misses %d, want 4", sr.Kernel.Cache.Misses)
	}

	rr := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"acfcd_cache_hits 4\n",
		"acfcd_cache_misses 4\n",
		"acfcd_sessions_active 1\n",
		"acfcd_fills_inflight 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestPipelinedRequests drives the wire directly: many requests written
// before any response is read, responses possibly out of order.
func TestPipelinedRequests(t *testing.T) {
	_, addr, dial := startServer(t, server.Config{})
	c := dial()
	f, err := c.Create("pipe", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Open the file on this session, then pipeline 16 reads.
	if err := server.WriteFrame(raw, 1, server.OpOpen, []byte("pipe")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := server.ReadFrame(raw); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 13)
	for i := 0; i < 16; i++ {
		putU32(body[0:], uint32(f.ID))
		putU32(body[4:], uint32(i))
		body[8], body[9] = 0, 0
		body[10], body[11] = 0x20, 0x00 // size 8192
		body[12] = server.ReadNoData
		if err := server.WriteFrame(raw, uint32(100+i), server.OpRead, body); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint32]bool)
	for i := 0; i < 16; i++ {
		id, st, _, err := server.ReadFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		if st != server.StatusOK {
			t.Fatalf("response %d: status %d", id, st)
		}
		if id < 100 || id >= 116 || seen[id] {
			t.Fatalf("bad or duplicate response id %d", id)
		}
		seen[id] = true
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// TestShutdownRefusesNewWork exercises the drain path: requests issued
// after Shutdown begins get StatusRefused (not a hang, not a cut
// connection), and Shutdown completes once the client disconnects.
func TestShutdownRefusesNewWork(t *testing.T) {
	cfg := server.Config{}
	cfg.Kernel.CacheBytes = core.MB(1)
	cfg.Kernel.Alloc = cache.LRUSP
	cfg.CheckInvariants = true
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := client.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// Wait for the drain to take effect, then expect refusals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Ping()
		if errors.Is(err, client.ErrRefused) {
			break
		}
		if err != nil {
			t.Fatalf("want refused, got %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("shutdown returned with a session still open: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// New connections are not accepted after shutdown.
	if _, err := client.Dial("tcp", ln.Addr().String()); err == nil {
		t.Error("dial succeeded after shutdown")
	}
}

// TestSessionReleaseTransfersBlocks checks the owner-release path: after
// a session disconnects its blocks survive (disowned), and a new session
// hits them.
func TestSessionReleaseTransfersBlocks(t *testing.T) {
	_, _, dial := startServer(t, server.Config{})
	a := dial()
	f, err := a.Create("shared", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < 8; b++ {
		if _, _, err := a.Read(f.ID, b, 0, core.BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	// Give the server a moment to process the disconnect (the close
	// releases the owner; blocks become NoOwner but stay cached).
	time.Sleep(50 * time.Millisecond)

	b := dial()
	defer b.Close()
	g, err := b.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for blk := int32(0); blk < 8; blk++ {
		_, hit, err := b.Read(g.ID, blk, 0, core.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	if hits != 8 {
		t.Errorf("second session hit %d/8 blocks of the disowned file", hits)
	}
	sr, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Kernel.Cache.Revocations == 0 && sr.Kernel.Cache.Transfers == 0 {
		// Disowning transfers blocks to NoOwner; LookupBy then moves
		// them under the new accessor. Either counter may express it,
		// but the release must have been visible somewhere.
		t.Logf("kernel cache stats: %+v", sr.Kernel.Cache)
	}
}

// TestEvictOnRelease checks the other release mode: the session's dirty
// blocks are written back and leave the cache with the owner.
func TestEvictOnRelease(t *testing.T) {
	cfg := server.Config{}
	cfg.Kernel.EvictOnRelease = true
	_, _, dial := startServer(t, cfg)

	a := dial()
	f, err := a.Create("mine", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{0x7C}, core.BlockSize)
	for b := int32(0); b < 4; b++ {
		if _, err := a.Write(f.ID, b, 0, block); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	time.Sleep(50 * time.Millisecond)

	b := dial()
	defer b.Close()
	g, err := b.Open("mine")
	if err != nil {
		t.Fatal(err)
	}
	// The blocks were evicted with the owner — so this is a miss — but
	// the dirty data must have been written back, not lost.
	data, hit, err := b.Read(g.ID, 2, 0, core.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("read hit after evict-on-release")
	}
	if !bytes.Equal(data, block) {
		t.Error("dirty block lost on evict-on-release")
	}
}
