// adapter.go — the online allocation-policy adapter.
//
// One adapter per shard, owned (like the kernel) by the shard loop
// goroutine: tick runs between requests, reads the kernel's windowed
// hit-ratio gauge, and flips the shard's allocation policy through the
// same cache.SetAlloc migration the set_alloc wire op uses. Shards adapt
// independently — each is its own replacement domain, and a skewed file
// hash can genuinely want ARC in one shard and plain LRU in another.
//
// The schedule is sample-then-settle with periodic probes. Epochs are
// counted in completed hit windows (Config.AdaptEvery windows per
// epoch), so the clock is request traffic itself; an idle shard never
// swaps. The first pass runs every candidate for one epoch to seed its
// score (an EWMA of the last-window hit ratio, in basis points); after
// that the best candidate is the incumbent, and every adapterProbeEvery
// steady epochs one non-incumbent candidate gets a single probe epoch.
// The probe (or a freshly sampled rival) takes over only when its score
// beats the incumbent's by more than Config.AdaptHysteresisBP — the
// hysteresis that keeps measurement noise from thrashing the policy,
// since every flip pays a full-cache migration and drops the ARC ghost
// history the next policy would have to rebuild.
package server

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// adapterProbeEvery is the number of steady epochs between probes of a
// non-incumbent candidate.
const adapterProbeEvery = 8

type allocAdapter struct {
	kern         *core.Live
	every        int64 // hit windows per epoch
	hysteresisBP float64

	candidates []cache.Alloc
	score      []float64 // EWMA of windowed hit ratio (bp); -1 = unsampled

	cur       int  // active candidate (== what the kernel runs)
	incumbent int  // settled best, valid once sampling is false
	sampling  bool // initial one-epoch-per-candidate pass
	probing   bool // mid-probe of a non-incumbent
	steady    int64
	probeAt   int // round-robin cursor for picking probes

	lastWindows int64
}

// newAllocAdapter parses the candidate list and points the kernel at the
// first candidate to start the sampling pass. Panics on an unknown or
// duplicate name — adapter config is operator input, checked at startup.
func newAllocAdapter(names []string, every, hysteresisBP int64, kern *core.Live) *allocAdapter {
	ad := &allocAdapter{
		kern:         kern,
		every:        every,
		hysteresisBP: float64(hysteresisBP),
		sampling:     true,
	}
	seen := make(map[cache.Alloc]bool)
	for _, name := range names {
		a, err := cache.ParseAlloc(name)
		if err != nil {
			panic(fmt.Sprintf("server: adapt-alloc: %v", err))
		}
		if seen[a] {
			panic(fmt.Sprintf("server: adapt-alloc: duplicate candidate %q", a))
		}
		seen[a] = true
		ad.candidates = append(ad.candidates, a)
		ad.score = append(ad.score, -1)
	}
	if err := kern.SetAllocPolicy(ad.candidates[0]); err != nil {
		panic(fmt.Sprintf("server: adapt-alloc: %v", err))
	}
	return ad
}

// tick advances the adapter; called from the shard loop between
// requests. A no-op until the current epoch's windows have completed.
func (ad *allocAdapter) tick() {
	wd := ad.kern.HitWindowsDone()
	if wd-ad.lastWindows < ad.every {
		return
	}
	ad.lastWindows = wd

	// Fold the epoch's observation into the active candidate's score.
	obs := float64(ad.kern.HitRatioWindowBP())
	if ad.score[ad.cur] < 0 {
		ad.score[ad.cur] = obs
	} else {
		ad.score[ad.cur] = (ad.score[ad.cur] + obs) / 2
	}

	switch {
	case ad.sampling:
		if ad.cur+1 < len(ad.candidates) {
			ad.switchTo(ad.cur + 1)
			return
		}
		// Every candidate has one epoch of evidence; settle on the best.
		best := 0
		for i, s := range ad.score {
			if s > ad.score[best] {
				best = i
			}
		}
		ad.sampling = false
		ad.incumbent = best
		ad.switchTo(best)
	case ad.probing:
		ad.probing = false
		if ad.score[ad.cur] > ad.score[ad.incumbent]+ad.hysteresisBP {
			ad.incumbent = ad.cur // the probe wins the shard
		} else {
			ad.switchTo(ad.incumbent)
		}
	default:
		ad.steady++
		if ad.steady >= adapterProbeEvery && len(ad.candidates) > 1 {
			ad.steady = 0
			ad.probing = true
			ad.switchTo(ad.nextProbe())
		}
	}
}

// nextProbe round-robins over the non-incumbent candidates.
func (ad *allocAdapter) nextProbe() int {
	for {
		ad.probeAt = (ad.probeAt + 1) % len(ad.candidates)
		if ad.probeAt != ad.incumbent {
			return ad.probeAt
		}
	}
}

// switchTo installs candidates[i] in the kernel. A migration failure
// cannot happen for registry-vetted names on a Replacer-backed kernel;
// if it somehow does, the adapter stays where it is rather than lying
// about cur.
func (ad *allocAdapter) switchTo(i int) {
	if i == ad.cur {
		return
	}
	if err := ad.kern.SetAllocPolicy(ad.candidates[i]); err != nil {
		return
	}
	ad.cur = i
}
