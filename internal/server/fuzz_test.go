package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// frame builds a syntactically valid frame for seeding.
func frame(id uint32, tag uint8, body []byte) []byte {
	var buf bytes.Buffer
	WriteFrame(&buf, id, tag, body)
	return buf.Bytes()
}

// FuzzReadFrame feeds arbitrary bytes to both frame decoders. Neither
// may panic, and on any input they must agree: same (id, tag, body) on
// success, both failing otherwise — the pooled-body path the server
// reads with (ReadFrameHeader + ReadFull) can never drift from the
// allocating ReadFrame that clients, tests and the soak harness use.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(1, OpPing, nil))
	f.Add(frame(7, OpRead, make([]byte, 13)))
	f.Add(frame(0xffffffff, OpWrite, make([]byte, MaxFrame-FrameOverhead))) // max legal
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})                               // length 0 < FrameOverhead
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 1, 2})                               // length 4 < FrameOverhead
	f.Add([]byte{0, 0, 64, 1, 0, 0, 0, 1, 2})                              // length MaxFrame+1
	f.Add(frame(3, OpOpen, []byte("a/name"))[:10])                         // truncated body
	f.Add(frame(3, OpOpen, []byte("a/name"))[:4])                          // truncated header
	f.Fuzz(func(t *testing.T, data []byte) {
		id1, tag1, body1, err1 := ReadFrame(bytes.NewReader(data))

		br := bufio.NewReader(bytes.NewReader(data))
		id2, tag2, n, err2 := ReadFrameHeader(br)
		var body2 []byte
		if err2 == nil && n > 0 {
			body2 = make([]byte, n)
			if _, err := io.ReadFull(br, body2); err != nil {
				err2 = err
				body2 = nil
			}
		}

		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("decoders disagree: ReadFrame err=%v, ReadFrameHeader err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if id1 != id2 || tag1 != tag2 || !bytes.Equal(body1, body2) {
			t.Fatalf("decoders disagree: (%d,%d,%x) vs (%d,%d,%x)", id1, tag1, body1, id2, tag2, body2)
		}
		if len(body1) > MaxFrame-FrameOverhead {
			t.Fatalf("accepted %d-byte body above MaxFrame", len(body1))
		}
		// A declared length must match what the prefix said.
		if want := binary.BigEndian.Uint32(data[0:]); int(want)-FrameOverhead != len(body1) {
			t.Fatalf("length prefix %d but %d-byte body", want, len(body1))
		}
	})
}

// FuzzFrameRoundTrip encodes arbitrary (id, tag, body) through
// WriteFrame and requires both decoders to return it bit for bit.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(0), []byte{})
	f.Add(uint32(1), OpPing, []byte{})
	f.Add(uint32(42), OpRead, []byte{0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 8, 0})
	f.Add(uint32(0xffffffff), uint8(0xff), bytes.Repeat([]byte{0xa5}, 1024))
	f.Fuzz(func(t *testing.T, id uint32, tag uint8, body []byte) {
		if len(body) > MaxFrame-FrameOverhead {
			body = body[:MaxFrame-FrameOverhead]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, id, tag, body); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		wire := buf.Bytes()

		gid, gtag, gbody, err := ReadFrame(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if gid != id || gtag != tag || !bytes.Equal(gbody, body) {
			t.Fatalf("ReadFrame round-trip: got (%d,%d,%x), want (%d,%d,%x)", gid, gtag, gbody, id, tag, body)
		}

		br := bufio.NewReader(bytes.NewReader(wire))
		hid, htag, n, err := ReadFrameHeader(br)
		if err != nil {
			t.Fatalf("ReadFrameHeader: %v", err)
		}
		if hid != id || htag != tag || n != len(body) {
			t.Fatalf("ReadFrameHeader: got (%d,%d,%d), want (%d,%d,%d)", hid, htag, n, id, tag, len(body))
		}
		rest := make([]byte, n)
		if _, err := io.ReadFull(br, rest); err != nil {
			t.Fatalf("body after header: %v", err)
		}
		if !bytes.Equal(rest, body) {
			t.Fatalf("body mismatch after ReadFrameHeader")
		}
	})
}
