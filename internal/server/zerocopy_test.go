package server_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// TestZeroCopyReadHitAllocs is the tentpole's regression gate: on the
// steady-state pipelined read-hit path the server must allocate nothing
// and copy the payload zero times (no wire-copy fallbacks) — a hit's
// bytes go cache arena -> socket via the pinned-slot scatter/gather
// writer. The client side of this test is itself allocation-free (raw
// frames, persistent buffers), so the process-wide Mallocs delta is the
// serve path's.
func TestZeroCopyReadHitAllocs(t *testing.T) {
	const blocks = 4
	srv, addr, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{CacheBytes: 64 * core.BlockSize},
	})

	setup := dial()
	f, err := setup.Create("zc/file", 0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, core.BlockSize)
	for b := int32(0); b < blocks; b++ {
		for i := range payload {
			payload[i] = byte(int(b) + i)
		}
		if _, err := setup.Write(f.ID, b, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	bw := bufio.NewWriterSize(raw, server.MaxFrame)
	br := bufio.NewReaderSize(raw, server.MaxFrame)

	// Pre-encoded read frames (one per block) and a persistent response
	// buffer: the measured loop reuses everything.
	reqs := make([][]byte, blocks)
	for b := range reqs {
		var buf bytes.Buffer
		body := make([]byte, 13)
		put32t(body[0:], uint32(f.ID))
		put32t(body[4:], uint32(b))
		body[10] = byte(core.BlockSize >> 8)
		if err := server.WriteFrame(&buf, uint32(b+1), server.OpRead, body); err != nil {
			t.Fatal(err)
		}
		reqs[b] = buf.Bytes()
	}
	resp := make([]byte, 1+core.BlockSize)

	batch := func() error {
		for _, rq := range reqs {
			if _, err := bw.Write(rq); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		for i := 0; i < blocks; i++ {
			id, status, n, err := server.ReadFrameHeader(br)
			if err != nil {
				return err
			}
			if status != server.StatusOK {
				return fmt.Errorf("req %d: status %s", id, server.StatusName(status))
			}
			if n != 1+core.BlockSize {
				return fmt.Errorf("req %d: %d-byte body", id, n)
			}
			if _, err := io.ReadFull(br, resp[:n]); err != nil {
				return err
			}
			if resp[0]&server.FlagHit == 0 {
				return fmt.Errorf("req %d: miss on the hot path", id)
			}
			b := int(id) - 1
			if resp[1] != byte(b) || resp[core.BlockSize] != byte(b+core.BlockSize-1) {
				return fmt.Errorf("req %d: payload corrupted", id)
			}
		}
		return nil
	}

	// Warm: blocks into cache (already there from the writes), pools and
	// iovec scratch into steady state.
	for i := 0; i < 8; i++ {
		if err := batch(); err != nil {
			t.Fatal(err)
		}
	}

	const measured = 50
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < measured; i++ {
		if err := batch(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&m1)

	ops := float64(measured * blocks)
	allocsPerOp := float64(m1.Mallocs-m0.Mallocs) / ops
	t.Logf("allocs/op = %.3f over %d read hits", allocsPerOp, int(ops))
	if allocsPerOp > 0.5 && !raceEnabled {
		t.Errorf("read-hit path allocates: %.3f allocs/op, want ~0", allocsPerOp)
	}

	// And it never fell back to copying: every hit above was served
	// straight from its pinned arena slot.
	st := dial()
	defer st.Close()
	sr, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.Kernel.Fill.WireCopyFallbacks; got != 0 {
		t.Errorf("wire_copy_fallbacks = %d, want 0 on a read-only steady state", got)
	}
	_ = srv
}

func put32t(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
