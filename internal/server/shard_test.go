package server_test

import (
	"bufio"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/stats"
)

// TestShardedRoundTrip drives a 3-shard server (deliberately not a
// divisor of the cache size, so the shard slices are uneven) through the
// whole file lifecycle and checks that file affinity holds: every block
// of a file lands in the shard its wire id encodes, re-reads hit, and
// data written before a session close is intact for the next session.
func TestShardedRoundTrip(t *testing.T) {
	const shards = 3
	srv, _, dial := startServer(t, server.Config{Shards: shards})
	if got := srv.Shards(); got != shards {
		t.Fatalf("Shards() = %d, want %d", got, shards)
	}

	c := dial()
	defer c.Close()

	// Enough files that the name hash cannot collapse them all into one
	// shard.
	const nfiles = 12
	used := map[int]bool{}
	var ids []client.File
	for i := 0; i < nfiles; i++ {
		f, err := c.Create(fmt.Sprintf("file%d", i), i%2, 6)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f)
		used[int(f.ID)%shards] = true
		for b := int32(0); b < 6; b++ {
			if _, err := c.Write(f.ID, b, 0, []byte{byte(i), byte(b)}); err != nil {
				t.Fatalf("file %d block %d: %v", i, b, err)
			}
		}
	}
	if len(used) < 2 {
		t.Errorf("all %d files hashed to one shard; want spread, got %v", nfiles, used)
	}

	// Open must return the same wire id (same shard) as Create did.
	for i, f := range ids {
		g, err := c.Open(fmt.Sprintf("file%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if g.ID != f.ID {
			t.Fatalf("file%d: open id %d != create id %d", i, g.ID, f.ID)
		}
	}

	// Re-reads hit (the cache is large enough for all blocks), and the
	// data survived the shard-local write path.
	for i, f := range ids {
		for b := int32(0); b < 6; b++ {
			data, hit, err := c.Read(f.ID, b, 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Errorf("file%d block %d: miss on re-read", i, b)
			}
			if data[0] != byte(i) || data[1] != byte(b) {
				t.Errorf("file%d block %d: got %v", i, b, data[:2])
			}
		}
	}

	// Stats aggregates over shards and carries the per-shard breakdown.
	sr, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PerShard) != shards {
		t.Fatalf("PerShard has %d entries, want %d", len(sr.PerShard), shards)
	}
	if got, want := sr.Kernel, stats.Aggregate(sr.PerShard); got != want {
		t.Errorf("Kernel != Aggregate(PerShard):\n got %+v\nwant %+v", got, want)
	}
	if sr.Session.ReadCalls != nfiles*6 || sr.Session.WriteCalls != nfiles*6 {
		t.Errorf("session totals: %d reads / %d writes, want %d each",
			sr.Session.ReadCalls, sr.Session.WriteCalls, nfiles*6)
	}
	if sr.Kernel.Cache.Hits == 0 || sr.Kernel.Cache.Misses == 0 {
		t.Errorf("aggregated kernel saw no traffic: %+v", sr.Kernel.Cache)
	}
}

// TestSingleShardOmitsPerShard pins the wire-compatibility guarantee: a
// 1-shard server's stats response must not grow a per_shard section, so
// it is byte-identical to the unsharded server's.
func TestSingleShardOmitsPerShard(t *testing.T) {
	_, _, dial := startServer(t, server.Config{Shards: 1})
	c := dial()
	defer c.Close()
	if _, err := c.Create("f", 0, 2); err != nil {
		t.Fatal(err)
	}
	sr, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sr.PerShard != nil {
		t.Errorf("1-shard server emitted per_shard: %+v", sr.PerShard)
	}
}

// TestClientFbehaviorMultiplexer exercises the multiplexed Fbehavior
// entry point — all five cache-control calls through the one syscall-like
// surface — against a 2-shard server, so set_policy takes the broadcast
// path while the per-file calls stay shard-local.
func TestClientFbehaviorMultiplexer(t *testing.T) {
	_, _, dial := startServer(t, server.Config{Shards: 2})
	c := dial()
	defer c.Close()

	f, err := c.Create("fb", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Control(true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fbehavior(client.FbSetPriority, client.FbArgs{File: f.ID, Prio: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Fbehavior(client.FbGetPriority, client.FbArgs{File: f.ID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prio != 2 {
		t.Errorf("get_priority = %d, want 2", res.Prio)
	}
	if _, err := c.Fbehavior(client.FbSetPolicy, client.FbArgs{Prio: 2, Policy: acm.MRU}); err != nil {
		t.Fatal(err)
	}
	res, err = c.Fbehavior(client.FbGetPolicy, client.FbArgs{Prio: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != acm.MRU {
		t.Errorf("get_policy = %v, want MRU", res.Policy)
	}
	if _, err := c.Fbehavior(client.FbSetTempPri, client.FbArgs{File: f.ID, Start: 0, End: 3, Prio: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fbehavior(client.FbOp(99), client.FbArgs{}); !errors.Is(err, client.ErrBadFrame) {
		t.Errorf("unknown fbehavior op: err = %v, want ErrBadFrame", err)
	}
}

// TestClientTypedErrors checks the sentinel mapping: statuses the caller
// branches on match via errors.Is, everything else stays a plain
// *StatusError reachable through errors.As.
func TestClientTypedErrors(t *testing.T) {
	_, _, dial := startServer(t, server.Config{Shards: 2})
	c := dial()
	defer c.Close()

	_, err := c.Open("no-such-file")
	if err == nil {
		t.Fatal("open of missing file succeeded")
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusNotFound {
		t.Errorf("open: err = %v, want StatusNotFound", err)
	}
	if errors.Is(err, client.ErrRefused) || errors.Is(err, client.ErrRevoked) || errors.Is(err, client.ErrBadFrame) {
		t.Errorf("not_found matched a sentinel it should not: %v", err)
	}

	// fbehavior without EnableControl: no_control, again not a sentinel.
	f, err := c.Create("tf", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = c.SetPriority(f.ID, 1)
	if !errors.As(err, &se) || se.Status != server.StatusNoControl {
		t.Errorf("set_priority without control: err = %v, want StatusNoControl", err)
	}
	if errors.Is(err, client.ErrRefused) {
		t.Errorf("no_control matched ErrRefused: %v", err)
	}
}

// TestMetricsDrift is the three-surface consistency gate: the /metrics
// plaintext, the Metrics struct, and the stats wire reply (the same
// schema acbench -json emits as its "kernel" block) must all derive from
// the one stats.Snapshot, field for field, per-shard sections included.
// The expected metric names are rebuilt here by independent reflection
// over the json tags, so a renamed field or a hand-maintained exposition
// line cannot drift silently.
func TestMetricsDrift(t *testing.T) {
	const shards = 2
	srv, _, dial := startServer(t, server.Config{Shards: shards})
	c := dial()
	defer c.Close()

	// Traffic: misses, hits, and enough files to touch both shards.
	for i := 0; i < 8; i++ {
		f, err := c.Create(fmt.Sprintf("m%d", i), 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		for b := int32(0); b < 4; b++ {
			if _, _, err := c.Read(f.ID, b, 0, 8); err != nil {
				t.Fatal(err)
			}
			if _, _, err := c.Read(f.ID, b, 0, 8); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Quiesce: all three snapshots taken back to back with no traffic in
	// between must agree exactly.
	sr, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics() not ok on a live server")
	}
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	// Surface 1 vs 2: wire stats reply == in-process Metrics.
	if sr.Kernel != m.Kernel {
		t.Errorf("stats reply kernel != Metrics kernel:\n got %+v\nwant %+v", sr.Kernel, m.Kernel)
	}
	if len(sr.PerShard) != shards || len(m.Shards) != shards {
		t.Fatalf("per-shard sections: wire %d, metrics %d, want %d", len(sr.PerShard), len(m.Shards), shards)
	}
	for i := range m.Shards {
		if sr.PerShard[i] != m.Shards[i].Kernel {
			t.Errorf("shard %d: wire snapshot != metrics snapshot", i)
		}
	}
	if agg := stats.Aggregate(sr.PerShard); agg != m.Kernel {
		t.Errorf("aggregate of shards != kernel total:\n got %+v\nwant %+v", agg, m.Kernel)
	}

	// Surface 3: every field of the schema appears in the plaintext with
	// the value the struct holds — totals and each shard's section.
	lines := parseMetrics(t, body)
	checkSnapshotLines(t, lines, "acfcd", "", m.Kernel)
	for i, sm := range m.Shards {
		checkSnapshotLines(t, lines, "acfcd_shard", fmt.Sprintf(`{shard="%d"}`, i), sm.Kernel)
	}
	for i, sm := range m.Shards {
		l := fmt.Sprintf(`{shard="%d"}`, i)
		if got := lines["acfcd_shard_requests_total"+l]; got != sm.Requests {
			t.Errorf("shard %d requests: plaintext %d, struct %d", i, got, sm.Requests)
		}
		if got := lines["acfcd_shard_cached_blocks"+l]; got != int64(sm.CachedBlocks) {
			t.Errorf("shard %d cached_blocks: plaintext %d, struct %d", i, got, sm.CachedBlocks)
		}
		if got := lines["acfcd_shard_writebacks_inflight"+l]; got != int64(sm.WritebacksInflight) {
			t.Errorf("shard %d writebacks_inflight: plaintext %d, struct %d", i, got, sm.WritebacksInflight)
		}
	}
	if got := lines["acfcd_writebacks_inflight"]; got != int64(m.WritebacksInflight) {
		t.Errorf("writebacks_inflight: plaintext %d, struct %d", got, m.WritebacksInflight)
	}

	// Allocation-policy surfaces: the wire reply's alloc section, the
	// Metrics struct, and the plaintext must agree per shard.
	if len(sr.Alloc) != shards {
		t.Fatalf("wire alloc sections: %d, want %d", len(sr.Alloc), shards)
	}
	for i, sm := range m.Shards {
		if sr.Alloc[i].Policy != sm.AllocPolicy {
			t.Errorf("shard %d policy: wire %q, metrics %q", i, sr.Alloc[i].Policy, sm.AllocPolicy)
		}
		if sm.AllocPolicy != cache.LRUSP.String() {
			t.Errorf("shard %d policy = %q, want %q", i, sm.AllocPolicy, cache.LRUSP)
		}
		if sr.Alloc[i].HitWindowBP != sm.AllocHitRatioBP {
			t.Errorf("shard %d hit window: wire %d, metrics %d", i, sr.Alloc[i].HitWindowBP, sm.AllocHitRatioBP)
		}
		pl := fmt.Sprintf(`{shard="%d",policy=%q}`, i, sm.AllocPolicy)
		if got := lines["acfcd_shard_alloc_policy"+pl]; got != 1 {
			t.Errorf("shard %d: plaintext policy line %s = %d, want 1", i, pl, got)
		}
		l := fmt.Sprintf(`{shard="%d"}`, i)
		if got := lines["acfcd_shard_alloc_hit_window_bp"+l]; got != sm.AllocHitRatioBP {
			t.Errorf("shard %d hit window: plaintext %d, struct %d", i, got, sm.AllocHitRatioBP)
		}
	}
}

// checkSnapshotLines asserts one rendered snapshot section against the
// struct, deriving the expected metric names from the json tags — the
// same single source WriteMetricsLabeled uses, reimplemented
// independently so the two cannot share a bug silently.
func checkSnapshotLines(t *testing.T, lines map[string]int64, prefix, label string, snap stats.Snapshot) {
	t.Helper()
	groups := []struct {
		sub string
		v   reflect.Value
	}{
		{"cache", reflect.ValueOf(snap.Cache)},
		{"sim", reflect.ValueOf(snap.Sim)},
		{"fill", reflect.ValueOf(snap.Fill)},
	}
	for _, g := range groups {
		tp := g.v.Type()
		for i := 0; i < tp.NumField(); i++ {
			tag, _, _ := strings.Cut(tp.Field(i).Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				tag = strings.ToLower(tp.Field(i).Name)
			}
			name := prefix + "_" + g.sub + "_" + tag + label
			got, present := lines[name]
			if !present {
				t.Errorf("metric %s missing from /metrics", name)
				continue
			}
			if want := g.v.Field(i).Int(); got != want {
				t.Errorf("metric %s = %d, struct field %s = %d", name, got, tp.Field(i).Name, want)
			}
		}
	}
}

// parseMetrics splits Prometheus plaintext into name{labels} -> value.
func parseMetrics(t *testing.T, body string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		var v int64
		if _, err := fmt.Sscanf(val, "%d", &v); err != nil {
			t.Fatalf("bad value in metrics line %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}
