package server_test

import (
	"bytes"
	"hash/fnv"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/stats"
)

// diffOutcome is everything the differential test compares between the
// batched and single-block fill paths.
type diffOutcome struct {
	readHash   uint64           // FNV over every byte every read returned, in order
	proc       core.ProcStats   // the session's counters
	fill       stats.FillStats  // the kernel's fill pipeline counters
	storeState map[int32][]byte // final store contents after Shutdown+Close
}

// runDiffWorkload drives one deterministic single-client workload —
// sequential whole-block writes, a sequential scan under read-ahead,
// strided re-reads, partial read-modify-writes — against a fresh server
// and returns everything observable: the bytes every read produced, the
// session and fill counters, and the final store contents.
func runDiffWorkload(t *testing.T, fillWorkers, wbDepth int) diffOutcome {
	t.Helper()
	const blocks = 64
	ms := disk.NewMemStore()
	srv, _, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			CacheBytes:     16 * core.BlockSize,
			Store:          ms,
			ReadAhead:      true,
			ReadAheadDepth: 4,
		},
		FillWorkers:    fillWorkers,
		WritebackDepth: wbDepth,
	})
	c := dial()
	defer c.Close()

	f, err := c.Create("diff", 0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	block := make([]byte, core.BlockSize)

	// Phase 1: dirty every block; the 16-block cache forces a steady
	// stream of dirty victims through the write-back path.
	for b := int32(0); b < blocks; b++ {
		for i := range block {
			block[i] = byte(int32(i) + b*13)
		}
		if _, err := c.Write(f.ID, b, 0, block); err != nil {
			t.Fatalf("write %d: %v", b, err)
		}
	}
	// Phase 2: sequential scan; read-ahead issues runs, and early fills
	// race the still-draining write-backs (the forwarding path).
	for b := int32(0); b < blocks; b++ {
		data, _, err := c.Read(f.ID, b, 0, core.BlockSize)
		if err != nil {
			t.Fatalf("read %d: %v", b, err)
		}
		h.Write(data)
	}
	// Phase 3: strided re-reads (breaks the sequential detector) and
	// partial rewrites of cold blocks (read-modify-write fills).
	for b := int32(0); b < blocks; b += 3 {
		data, _, err := c.Read(f.ID, b, 5, 100)
		if err != nil {
			t.Fatalf("strided read %d: %v", b, err)
		}
		h.Write(data)
	}
	for b := int32(1); b < blocks; b += 7 {
		if _, err := c.Write(f.ID, b, 9, []byte{byte(b), 0xee, byte(b)}); err != nil {
			t.Fatalf("partial write %d: %v", b, err)
		}
	}
	// One more pass so the rewrites are observed through the cache too.
	for b := int32(0); b < blocks; b++ {
		data, _, err := c.Read(f.ID, b, 0, core.BlockSize)
		if err != nil {
			t.Fatalf("final read %d: %v", b, err)
		}
		h.Write(data)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	out := diffOutcome{readHash: h.Sum64(), proc: st.Session, fill: st.Kernel.Fill}

	c.Close()
	shutdownAndClose(t, srv)
	out.storeState = make(map[int32][]byte)
	dst := make([]byte, core.BlockSize)
	for b := int32(0); b < blocks; b++ {
		if err := ms.ReadBlock(int32(f.ID), b, dst); err != nil {
			t.Fatal(err)
		}
		out.storeState[b] = append([]byte(nil), dst...)
	}
	return out
}

// TestBatchedFillsDifferential pins the batched fill/write-back path
// byte-identical to the single-block path: the same workload through
// the legacy goroutine-per-fill executor with synchronous write-backs
// (the pre-batching server, bit for bit) and through the worker pool
// with the batching flusher must return the same bytes on every read,
// leave the same bytes on the store, and agree on every deterministic
// counter. The only licensed difference is *who* performs the store
// reads: write-behind forwarding replaces store reads one-for-one, so
// StoreReads(sync) = StoreReads(batched) + WritebackHits(batched).
func TestBatchedFillsDifferential(t *testing.T) {
	sync := runDiffWorkload(t, -1, 0) // legacy executor, synchronous write-backs
	batched := runDiffWorkload(t, 4, 16)

	if sync.readHash != batched.readHash {
		t.Error("read streams differ between single-block and batched fill paths")
	}
	for b, want := range sync.storeState {
		if !bytes.Equal(batched.storeState[b], want) {
			t.Errorf("final store contents differ at block %d", b)
		}
	}
	if sync.proc != batched.proc {
		t.Errorf("session counters differ:\n sync    %+v\n batched %+v", sync.proc, batched.proc)
	}
	if got, want := batched.fill.StoreReads+batched.fill.WritebackHits, sync.fill.StoreReads; got != want {
		t.Errorf("StoreReads+WritebackHits = %d (batched), want %d (sync StoreReads)", got, want)
	}
	for _, c := range []struct {
		name       string
		sync, batc int64
	}{
		{"CoalescedMisses", sync.fill.CoalescedMisses, batched.fill.CoalescedMisses},
		{"PrefetchIssued", sync.fill.PrefetchIssued, batched.fill.PrefetchIssued},
		{"PrefetchHits", sync.fill.PrefetchHits, batched.fill.PrefetchHits},
	} {
		if c.sync != c.batc {
			t.Errorf("%s differs: sync %d, batched %d", c.name, c.sync, c.batc)
		}
	}

	// The batched run must actually have batched: multi-block runs hit
	// the store, and the queue was ever nonempty.
	if batched.fill.BatchedFills == 0 {
		t.Error("batched run issued no multi-block fill batches")
	}
	if batched.fill.FillBatchBlocks < 2*batched.fill.BatchedFills {
		t.Errorf("FillBatchBlocks = %d with %d batches; every batch must carry >= 2 blocks",
			batched.fill.FillBatchBlocks, batched.fill.BatchedFills)
	}
	if batched.fill.FillQueueHighWater == 0 {
		t.Error("FillQueueHighWater = 0; fills never queued")
	}
	if sync.fill.BatchedFills != 0 || sync.fill.WritebackBatches != 0 {
		t.Error("legacy run reported batch activity")
	}
}

// TestFillBatchSyscalls is the syscall-count regression gate from the
// issue: a sequential scan under depth-K read-ahead against a FileStore
// must cost ~2 store calls per K blocks — the windowed scheduler
// refills half the window at a time and each refill must reach the
// store as one vectored read. An unbatched fill path costs one call per
// block and fails this bound by 4x.
func TestFillBatchSyscalls(t *testing.T) {
	const (
		blocks = 256
		depth  = 8
	)
	fs, err := disk.NewFileStore(filepath.Join(t.TempDir(), "store.dat"))
	if err != nil {
		t.Fatal(err)
	}
	srv, _, dial := startServer(t, server.Config{
		Kernel: core.LiveConfig{
			Store:          fs,
			ReadAhead:      true,
			ReadAheadDepth: depth,
		},
	})
	c := dial()
	defer c.Close()
	f, err := c.Create("seq", 0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the store out of band with one batched write: run-aware
	// slot allocation lands the 256 sequential blocks in sequential
	// slots, the layout the scan's preadv runs need. (Shards=1, so the
	// wire file id is the store's file id.)
	specs := make([]disk.BlockSpan, blocks)
	srcs := make([][]byte, blocks)
	for b := range specs {
		specs[b] = disk.BlockSpan{File: int32(f.ID), Blk: int32(b)}
		srcs[b] = bytes.Repeat([]byte{byte(b)}, core.BlockSize)
	}
	for i, err := range fs.WriteBlocks(specs, srcs) {
		if err != nil {
			t.Fatalf("populate[%d]: %v", i, err)
		}
	}
	r0, v0, _, _ := fs.IOCounts()

	for b := int32(0); b < blocks; b++ {
		data, _, err := c.Read(f.ID, b, 0, core.BlockSize)
		if err != nil {
			t.Fatalf("read %d: %v", b, err)
		}
		if data[0] != byte(b) || data[core.BlockSize-1] != byte(b) {
			t.Fatalf("block %d: wrong bytes", b)
		}
	}

	sr, vr, _, _ := fs.IOCounts()
	total := (sr - r0) + (vr - v0)
	// Expected shape: 2 scalar demand reads (blocks 0 and 1, before the
	// detector fires), one depth-sized opening run, then a half-window
	// refill every depth/2 blocks — about blocks/(depth/2) calls. The
	// bound allows 2 calls per K-block window plus slack for clamped
	// tail refills; the unbatched path's ~256 calls fails it by 4x.
	bound := int64(2*(blocks/depth) + 8)
	if total > bound {
		t.Errorf("sequential %d-block scan at depth %d cost %d store read calls (%d scalar + %d vectored), want <= %d",
			blocks, depth, total, sr-r0, vr-v0, bound)
	}
	if vr-v0 == 0 {
		t.Error("no vectored reads issued; read-ahead runs are not reaching preadv")
	}
	m, ok := srv.Metrics()
	if !ok {
		t.Fatal("Metrics not ok")
	}
	if m.Kernel.Fill.BatchedFills == 0 {
		t.Error("BatchedFills = 0 after a read-ahead scan")
	}
}
