// Package server implements acfcd, a concurrent application-controlled
// cache server: the paper's user/kernel interface — open, read, write,
// close, plus the five fbehavior cache-control calls — exposed to real
// client processes over a socket, with N Live kernel shards, each behind
// its own serialized loop, and files hashed to shards at open time.
//
// Shard routing. Most ops are shard-local: open, create and remove route
// by a stable hash of the file name; read, write, close, set_priority,
// get_priority and set_temppri route by the file id (the wire id encodes
// its shard: wire = local*shards + shard). ping and get_policy anchor at
// shard 0. Two ops broadcast — control and set_policy target per-manager
// state that exists in every shard, so the session's reader runs them in
// each shard before the next frame — and stats aggregates: the reply
// folds every shard's counters (plus a per-shard breakdown when
// shards > 1). Shutdown drain and the /metrics snapshot are likewise
// all-shard operations, orchestrated outside any one loop.
//
// Wire protocol. Every message is a length-prefixed binary frame,
// big-endian throughout:
//
//	u32 length   (covers id + tag + body = 5 + len(body))
//	u32 id       (request id; the response echoes it)
//	u8  tag      (request: opcode; response: status)
//	...body
//
// Requests on one connection may be pipelined; responses carry the
// request id and may complete out of order (a cache hit overtakes an
// earlier miss waiting on disk). Per-op bodies:
//
//	op            request body                          OK response body
//	ping          -                                     -
//	open          name                                  file u32 | size u32
//	create        disk u8 | size u32 | name             file u32 | size u32
//	read          file u32 | blk u32 | off u16 |        flags u8 (bit0 hit) | data
//	              size u16 | flags u8 (bit0 nodata)
//	write         file u32 | blk u32 | off u16 |        flags u8 (bit0 hit)
//	              len u16 | data
//	close         file u32                              -
//	remove        name                                  -
//	control       enable u8                             -
//	set_priority  file u32 | prio i32                   -
//	get_priority  file u32                              prio i32
//	set_policy    prio i32 | policy u8                  policy u8
//	get_policy    prio i32                              policy u8
//	set_temppri   file u32 | start u32 | end u32 |      -
//	              prio i32
//	stats         -                                     JSON (StatsReply)
//	set_alloc     name                                  name (canonical)
//	get_alloc     -                                     name
//
// set_alloc broadcasts like control/set_policy: the named allocation
// policy (see cache.ParseAlloc) is installed in every shard before the
// next frame runs; an unrecognized name is rejected with
// unknown_policy. get_alloc anchors at shard 0.
//
// Non-OK responses carry the error message as the body.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Opcodes (request tag).
const (
	OpPing uint8 = 1 + iota
	OpOpen
	OpCreate
	OpRead
	OpWrite
	OpClose
	OpRemove
	OpControl
	OpSetPriority
	OpGetPriority
	OpSetPolicy
	OpGetPolicy
	OpSetTempPri
	OpStats
	OpSetAlloc
	OpGetAlloc
)

// Statuses (response tag).
const (
	StatusOK uint8 = iota
	StatusBadRequest
	StatusNotFound
	StatusExists
	StatusLimit     // a kernel resource limit (managers, levels, file records, disk space)
	StatusNoControl // fbehavior call without EnableControl, or no such owner
	StatusRefused   // server is draining for shutdown
	StatusIO
	StatusRange
	StatusRevoked       // the session's owner is unknown or already released
	StatusUnknownPolicy // set_alloc named a policy the registry does not know
)

// StatusName names a status for reports.
func StatusName(st uint8) string {
	switch st {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad_request"
	case StatusNotFound:
		return "not_found"
	case StatusExists:
		return "exists"
	case StatusLimit:
		return "limit"
	case StatusNoControl:
		return "no_control"
	case StatusRefused:
		return "refused"
	case StatusIO:
		return "io"
	case StatusRange:
		return "range"
	case StatusRevoked:
		return "revoked"
	case StatusUnknownPolicy:
		return "unknown_policy"
	}
	return fmt.Sprintf("status%d", st)
}

// Read request flag bits.
const (
	// ReadNoData suppresses the block bytes in the response: the access
	// (and its accounting, fills, replacement) happens normally, but the
	// reply carries only the hit flag. Load generation uses it to
	// measure cache behavior without paying response bandwidth.
	ReadNoData uint8 = 1 << 0
)

// Response flag bits (read and write).
const (
	// FlagHit reports that the access hit the cache.
	FlagHit uint8 = 1 << 0
)

// MaxFrame bounds a frame: the largest legal message is a whole-block
// write (header + 13 bytes of fields + one 8 KB block).
const MaxFrame = 16 * 1024

// FrameOverhead is the id+tag part covered by the length prefix.
const FrameOverhead = 5

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, id uint32, tag uint8, body []byte) error {
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(FrameOverhead+len(body)))
	binary.BigEndian.PutUint32(hdr[4:], id)
	hdr[8] = tag
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, allocating a fresh body slice.
func ReadFrame(r io.Reader) (id uint32, tag uint8, body []byte, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n < FrameOverhead || n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("server: bad frame length %d", n)
	}
	id = binary.BigEndian.Uint32(hdr[4:])
	tag = hdr[8]
	if n > FrameOverhead {
		body = make([]byte, n-FrameOverhead)
		if _, err = io.ReadFull(r, body); err != nil {
			return 0, 0, nil, err
		}
	}
	return id, tag, body, nil
}

// ReadFrameHeader reads and validates one frame's 9-byte header from br,
// leaving the body (bodyLen bytes) unconsumed on the stream. Unlike
// ReadFrame it allocates nothing — Peek/Discard keep the header inside
// the bufio buffer — so the caller can read the body into recycled
// storage (the server's frame-buffer pool, a client's caller-owned
// slice).
func ReadFrameHeader(br *bufio.Reader) (id uint32, tag uint8, bodyLen int, err error) {
	hdr, err := br.Peek(9)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n < FrameOverhead || n > MaxFrame {
		return 0, 0, 0, fmt.Errorf("server: bad frame length %d", n)
	}
	id = binary.BigEndian.Uint32(hdr[4:])
	tag = hdr[8]
	br.Discard(9)
	return id, tag, int(n) - FrameOverhead, nil
}

// frameBuf is one pooled request-body buffer. Pooling is by size class
// so a stream of 13-byte reads never rents 16 KB buffers, and the
// pointer (not the slice) round-trips through the pool so a put does not
// allocate a fresh header.
type frameBuf struct{ b []byte }

// bodyClasses are the pooled body capacities: small control ops, names,
// a block-read body plus change, and the whole-block write ceiling.
var bodyClasses = [...]int{64, 1024, 8704, MaxFrame - FrameOverhead}

var bodyPools [len(bodyClasses)]sync.Pool

func init() {
	for i, size := range bodyClasses {
		size := size
		bodyPools[i].New = func() any { return &frameBuf{b: make([]byte, size)} }
	}
}

// getFrameBuf rents a buffer with capacity for n body bytes.
func getFrameBuf(n int) *frameBuf {
	for i, size := range bodyClasses {
		if n <= size {
			return bodyPools[i].Get().(*frameBuf)
		}
	}
	// Unreachable while MaxFrame-FrameOverhead is the top class; kept so
	// a larger future frame degrades to an allocation, not a panic.
	return &frameBuf{b: make([]byte, n)}
}

// putFrameBuf returns a rented buffer to its size-class pool.
func putFrameBuf(fb *frameBuf) {
	fb.b = fb.b[:cap(fb.b)]
	for i, size := range bodyClasses {
		if cap(fb.b) == size {
			bodyPools[i].Put(fb)
			return
		}
	}
}

// be32 / be16 are tiny read helpers for request parsing; the caller has
// already bounds-checked the body.
func be32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }
func be16(b []byte) uint16 { return binary.BigEndian.Uint16(b) }

func put32(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }
func put16(b []byte, v uint16) { binary.BigEndian.PutUint16(b, v) }
