package server_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/server/client"
)

// TestSetAllocWire pins the set_alloc/get_alloc wire contract: canonical
// name echo, broadcast to every shard, the distinct unknown_policy
// status (errors.Is-able as client.ErrUnknownPolicy), and the
// alloc_swaps counter on the stats surface.
func TestSetAllocWire(t *testing.T) {
	const shards = 2
	_, _, dial := startServer(t, server.Config{Shards: shards})
	c := dial()
	defer c.Close()

	if name, err := c.GetAlloc(); err != nil || name != "lru-sp" {
		t.Fatalf("GetAlloc = %q, %v; want lru-sp (startServer default)", name, err)
	}
	if err := c.SetAlloc("arc"); err != nil {
		t.Fatalf("SetAlloc(arc): %v", err)
	}
	if name, _ := c.GetAlloc(); name != "arc" {
		t.Fatalf("GetAlloc after swap = %q, want arc", name)
	}

	// The canonical name comes back from the Fbehavior surface too.
	res, err := c.Fbehavior(client.FbSetAlloc, client.FbArgs{Alloc: "lru-s"})
	if err != nil || res.Alloc != "lru-s" {
		t.Fatalf("FbSetAlloc = %+v, %v", res, err)
	}

	// Unknown names are refused with the distinct status, shards intact.
	err = c.SetAlloc("no-such-policy")
	if !errors.Is(err, client.ErrUnknownPolicy) {
		t.Fatalf("SetAlloc(unknown) = %v, want ErrUnknownPolicy", err)
	}
	if name, _ := c.GetAlloc(); name != "lru-s" {
		t.Fatalf("failed swap moved the policy to %q", name)
	}

	sr, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Two successful broadcasts, each swapping every shard once.
	if got := sr.Kernel.Cache.AllocSwaps; got != 2*shards {
		t.Errorf("alloc_swaps = %d, want %d", got, 2*shards)
	}
	if len(sr.Alloc) != shards {
		t.Fatalf("alloc sections = %d, want %d", len(sr.Alloc), shards)
	}
	for i, as := range sr.Alloc {
		if as.Policy != "lru-s" {
			t.Errorf("shard %d policy = %q, want lru-s", i, as.Policy)
		}
	}

	// A same-name swap is a no-op in every shard.
	if err := c.SetAlloc("lru-s"); err != nil {
		t.Fatal(err)
	}
	sr, _ = c.Stats()
	if got := sr.Kernel.Cache.AllocSwaps; got != 2*shards {
		t.Errorf("alloc_swaps after no-op = %d, want %d", got, 2*shards)
	}
}

// TestAllocFlipSoak is the live-swap race stress: concurrent sessions
// hammer a deliberately tiny cache with verified reads and writes while
// a flipper cycles the allocation policy through every registered
// entry, mid-run, across all shards. The flipper reconnects around
// every flip, so the per-session invariant audit (startServer forces
// CheckInvariants) re-verifies every shard's kernel after each
// migration while traffic continues; the shared file's bytes must
// survive the whole run — a policy swap may drop ghosts and
// placeholders but never data. Run under -race via `make check`.
func TestAllocFlipSoak(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			allocFlipSoak(t, shards)
		})
	}
}

func allocFlipSoak(t *testing.T, shards int) {
	const (
		sessions   = 8
		fileBlocks = 24
	)
	rounds := 60
	if testing.Short() {
		rounds = 12
	}

	cfg := server.Config{
		Kernel: core.LiveConfig{
			CacheBytes: 64 * core.BlockSize, // tiny: every flip migrates a full cache under eviction pressure
			Store:      &sleepStore{Store: disk.NewMemStore(), readDelay: 100 * time.Microsecond},
		},
		Shards:      shards,
		MaxInflight: 8,
	}
	_, addr, dial := startServer(t, cfg)

	setup := dial()
	shared, err := setup.Create("shared", 0, fileBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < fileBlocks; b++ {
		if _, err := setup.Write(shared.ID, b, 0, []byte{byte(b)}); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	errc := make(chan error, sessions+1)
	stop := make(chan struct{})

	var workers sync.WaitGroup
	for i := 0; i < sessions; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			if err := soakSession(addr, i, rounds, fileBlocks); err != nil {
				errc <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}

	// The flipper: cycle every registered policy for as long as the
	// workers run. Each hop uses a fresh connection, so every shard runs
	// its invariant audit (session close) right after the migration.
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		names := cache.AllocNames()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c, err := client.Dial("tcp", addr)
			if err != nil {
				errc <- fmt.Errorf("flipper dial: %w", err)
				return
			}
			want := names[i%len(names)].String()
			if err := c.SetAlloc(want); err != nil {
				c.Close()
				errc <- fmt.Errorf("flip %d to %s: %w", i, want, err)
				return
			}
			if got, err := c.GetAlloc(); err != nil || got != want {
				c.Close()
				errc <- fmt.Errorf("flip %d: GetAlloc = %q, %v; want %q", i, got, err, want)
				return
			}
			c.Close()
		}
	}()

	workers.Wait()
	close(stop)
	flipper.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Zero data loss: every shared byte survived every migration.
	final := dial()
	defer final.Close()
	for b := int32(0); b < fileBlocks; b++ {
		data, _, err := final.Read(shared.ID, b, 0, 1)
		if err != nil {
			t.Fatalf("shared block %d after flip soak: %v", b, err)
		}
		if data[0] != byte(b) {
			t.Fatalf("shared block %d corrupted across policy flips: got %d", b, data[0])
		}
	}
	sr, err := final.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Kernel.Cache.AllocSwaps == 0 {
		t.Error("flip soak recorded zero alloc swaps; the flipper never ran")
	}
}

// TestAdaptAllocSettles drives the online adapter end to end: with two
// candidates and a short hit window, steady traffic makes the adapter
// sample both policies (visible as alloc swaps) and settle on one of
// them; the stats surfaces report whichever policy each shard runs.
func TestAdaptAllocSettles(t *testing.T) {
	cfg := server.Config{
		Kernel: core.LiveConfig{
			CacheBytes: 32 * core.BlockSize,
			HitWindow:  64,
		},
		Shards:     1,
		AdaptAlloc: []string{"global-lru", "arc"},
		AdaptEvery: 1,
	}
	srv, _, dial := startServer(t, cfg)
	_ = srv
	c := dial()
	defer c.Close()

	f, err := c.Create("adapt", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A hot set that fits beside a recurring scan: the kind of mix the
	// window gauge can tell policies apart on. Content correctness is
	// asserted throughout — adapter swaps must never lose a byte.
	for round := 0; round < 40; round++ {
		for b := int32(0); b < 8; b++ {
			if _, err := c.Write(f.ID, b, 0, []byte{byte(b), byte(round)}); err != nil {
				t.Fatal(err)
			}
		}
		for b := int32(0); b < 48; b++ {
			if _, err := c.ReadNoData(f.ID, b, 0, 8); err != nil {
				t.Fatal(err)
			}
		}
		for b := int32(0); b < 8; b++ {
			data, _, err := c.Read(f.ID, b, 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != byte(b) || data[1] != byte(round) {
				t.Fatalf("round %d block %d: data lost across adapter swap: %v", round, b, data)
			}
		}
	}

	sr, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The sampling pass alone flips lru-sp -> global-lru -> arc.
	if got := sr.Kernel.Cache.AllocSwaps; got < 2 {
		t.Errorf("alloc_swaps = %d, want >= 2 (sampling pass)", got)
	}
	name, err := c.GetAlloc()
	if err != nil {
		t.Fatal(err)
	}
	if name != "global-lru" && name != "arc" {
		t.Errorf("adapter left policy %q, want a candidate", name)
	}
	if len(sr.Alloc) != 1 || sr.Alloc[0].Policy != name {
		t.Errorf("stats alloc section %+v disagrees with GetAlloc %q", sr.Alloc, name)
	}
	if sr.Alloc[0].WindowsDone == 0 {
		t.Error("no hit windows completed; the gauge never latched")
	}
}
