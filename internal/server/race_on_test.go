//go:build race

package server_test

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates on paths that are
// alloc-free in a normal build, so allocation gates don't apply.
const raceEnabled = true
