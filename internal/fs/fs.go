// Package fs implements the simulated file system the cache sits under.
// It provides a flat namespace of files, each placed on one disk as a list
// of extents allocated from a per-disk cursor with first-fit reuse of freed
// space. Placement is what matters here: it determines which accesses the
// disk model sees as sequential, and files created or grown concurrently
// interleave their extents just as they would under a real FFS-style
// allocator (this drives the merge-phase seek behaviour of the sort
// workload).
package fs

import (
	"fmt"
	"sort"
)

// FileID identifies a file for the lifetime of the file system. IDs are
// never reused, so a stale ID can be detected.
type FileID int32

// NoFile is the zero FileID; no real file ever has it.
const NoFile FileID = 0

// DefaultExtentBlocks is the default allocation granularity: 16 blocks
// (128 KB), similar to FFS cylinder-group clustering.
const DefaultExtentBlocks = 16

// extent is a contiguous run of blocks on a disk.
type extent struct {
	start, n int
}

// File is a simulated file. All sizes are in file-system blocks.
type File struct {
	id      FileID
	name    string
	disk    int
	size    int
	extents []extent
	removed bool
}

// ID returns the file's identifier.
func (f *File) ID() FileID { return f.id }

// Name returns the file's path name.
func (f *File) Name() string { return f.name }

// Disk returns the index of the disk holding the file.
func (f *File) Disk() int { return f.disk }

// Size returns the file length in blocks.
func (f *File) Size() int { return f.size }

// Removed reports whether the file has been deleted.
func (f *File) Removed() bool { return f.removed }

// BlockAddr maps file block number blk to its disk block address. It
// panics if blk is out of range — callers must bound their accesses.
func (f *File) BlockAddr(blk int) int {
	if blk < 0 || blk >= f.size {
		panic(fmt.Sprintf("fs: block %d out of range for %q (size %d)", blk, f.name, f.size))
	}
	for _, e := range f.extents {
		if blk < e.n {
			return e.start + blk
		}
		blk -= e.n
	}
	panic("fs: extent list shorter than size") // unreachable if invariants hold
}

// diskState tracks allocation on one disk.
type diskState struct {
	capacity int
	cursor   int
	free     []extent // sorted by start
	used     int
}

// FileSystem is the namespace plus per-disk allocators.
type FileSystem struct {
	disks        []*diskState
	byName       map[string]*File
	byID         map[FileID]*File
	nextID       FileID
	extentBlocks int
	fileGap      int
}

// Config controls file-system construction.
type Config struct {
	// DiskBlocks is the capacity of each disk, in blocks.
	DiskBlocks []int
	// ExtentBlocks is the allocation granularity; 0 means
	// DefaultExtentBlocks.
	ExtentBlocks int
	// FileGapBlocks is skipped before each new file's first allocation,
	// standing in for the inode, indirect blocks and fragmentation that
	// separate files on a real FFS disk. The gap makes the transition
	// from one file to the next a non-sequential disk access, which is
	// what the drives see in practice. Default 0.
	FileGapBlocks int
}

// New builds a file system over the given disks.
func New(cfg Config) *FileSystem {
	if len(cfg.DiskBlocks) == 0 {
		panic("fs: no disks")
	}
	eb := cfg.ExtentBlocks
	if eb <= 0 {
		eb = DefaultExtentBlocks
	}
	f := &FileSystem{
		byName:       make(map[string]*File),
		byID:         make(map[FileID]*File),
		nextID:       1,
		extentBlocks: eb,
		fileGap:      cfg.FileGapBlocks,
	}
	for _, c := range cfg.DiskBlocks {
		if c <= 0 {
			panic("fs: disk with non-positive capacity")
		}
		f.disks = append(f.disks, &diskState{capacity: c})
	}
	return f
}

// Disks returns the number of disks.
func (fsys *FileSystem) Disks() int { return len(fsys.disks) }

// Used returns the number of allocated blocks on disk d.
func (fsys *FileSystem) Used(d int) int { return fsys.disks[d].used }

// Create makes a new file of the given size (in blocks) on disk d. Size 0
// creates an empty file that can Grow later.
func (fsys *FileSystem) Create(name string, d int, sizeBlocks int) (*File, error) {
	if d < 0 || d >= len(fsys.disks) {
		return nil, fmt.Errorf("fs: create %q: no disk %d", name, d)
	}
	if _, ok := fsys.byName[name]; ok {
		return nil, fmt.Errorf("fs: create %q: file exists", name)
	}
	if sizeBlocks < 0 {
		return nil, fmt.Errorf("fs: create %q: negative size", name)
	}
	f := &File{id: fsys.nextID, name: name, disk: d}
	fsys.nextID++
	// Leave the inter-file gap (inode and friends) ahead of the file.
	ds := fsys.disks[d]
	if fsys.fileGap > 0 && ds.cursor+fsys.fileGap <= ds.capacity {
		ds.cursor += fsys.fileGap
	}
	if err := fsys.grow(f, sizeBlocks); err != nil {
		return nil, err
	}
	fsys.byName[name] = f
	fsys.byID[f.id] = f
	return f, nil
}

// Lookup finds a file by name.
func (fsys *FileSystem) Lookup(name string) (*File, bool) {
	f, ok := fsys.byName[name]
	return f, ok
}

// ByID finds a live file by ID.
func (fsys *FileSystem) ByID(id FileID) (*File, bool) {
	f, ok := fsys.byID[id]
	return f, ok
}

// Grow extends the file to newSize blocks. Shrinking is not supported;
// growing to the current size or less is a no-op.
func (fsys *FileSystem) Grow(f *File, newSize int) error {
	if f.removed {
		return fmt.Errorf("fs: grow %q: file removed", f.name)
	}
	if newSize <= f.size {
		return nil
	}
	return fsys.grow(f, newSize)
}

func (fsys *FileSystem) grow(f *File, newSize int) error {
	ds := fsys.disks[f.disk]
	need := newSize - f.size
	oldSize, oldExtents := f.size, len(f.extents)
	oldLastN := 0
	if oldExtents > 0 {
		oldLastN = f.extents[oldExtents-1].n
	}
	rollback := func() {
		// Return every block acquired by this call and restore the
		// extent list, so a failed grow leaks nothing.
		for _, e := range f.extents[oldExtents:] {
			ds.freeExtent(e)
			ds.used -= e.n
		}
		f.extents = f.extents[:oldExtents]
		if oldExtents > 0 && f.extents[oldExtents-1].n > oldLastN {
			last := &f.extents[oldExtents-1]
			grownBy := last.n - oldLastN
			ds.freeExtent(extent{start: last.start + oldLastN, n: grownBy})
			ds.used -= grownBy
			last.n = oldLastN
		}
		f.size = oldSize
	}
	for need > 0 {
		chunk := need
		if chunk > fsys.extentBlocks {
			chunk = fsys.extentBlocks
		}
		e, ok := ds.alloc(chunk)
		if !ok {
			rollback()
			return fmt.Errorf("fs: disk %d full growing %q", f.disk, f.name)
		}
		// Merge with the previous extent when contiguous.
		if n := len(f.extents); n > 0 && f.extents[n-1].start+f.extents[n-1].n == e.start {
			f.extents[n-1].n += e.n
		} else {
			f.extents = append(f.extents, e)
		}
		f.size += e.n
		need -= e.n
	}
	return nil
}

// alloc takes one extent of exactly n blocks, first-fit from the free list,
// falling back to the cursor.
func (ds *diskState) alloc(n int) (extent, bool) {
	for i, fe := range ds.free {
		if fe.n >= n {
			e := extent{start: fe.start, n: n}
			if fe.n == n {
				ds.free = append(ds.free[:i], ds.free[i+1:]...)
			} else {
				ds.free[i] = extent{start: fe.start + n, n: fe.n - n}
			}
			ds.used += n
			return e, true
		}
	}
	if ds.cursor+n > ds.capacity {
		return extent{}, false
	}
	e := extent{start: ds.cursor, n: n}
	ds.cursor += n
	ds.used += n
	return e, true
}

// Remove deletes the file, returning its blocks to the free list. The
// *File remains valid as a tombstone (Removed reports true) so that caches
// holding its blocks can notice.
func (fsys *FileSystem) Remove(name string) error {
	f, ok := fsys.byName[name]
	if !ok {
		return fmt.Errorf("fs: remove %q: no such file", name)
	}
	ds := fsys.disks[f.disk]
	for _, e := range f.extents {
		ds.freeExtent(e)
	}
	ds.used -= f.size
	f.removed = true
	delete(fsys.byName, name)
	delete(fsys.byID, f.id)
	return nil
}

// freeExtent inserts e into the sorted free list, coalescing neighbours.
func (ds *diskState) freeExtent(e extent) {
	i := sort.Search(len(ds.free), func(i int) bool { return ds.free[i].start >= e.start })
	ds.free = append(ds.free, extent{})
	copy(ds.free[i+1:], ds.free[i:])
	ds.free[i] = e
	// Coalesce with successor, then predecessor.
	if i+1 < len(ds.free) && ds.free[i].start+ds.free[i].n == ds.free[i+1].start {
		ds.free[i].n += ds.free[i+1].n
		ds.free = append(ds.free[:i+1], ds.free[i+2:]...)
	}
	if i > 0 && ds.free[i-1].start+ds.free[i-1].n == ds.free[i].start {
		ds.free[i-1].n += ds.free[i].n
		ds.free = append(ds.free[:i], ds.free[i+1:]...)
	}
}

// FreeExtents returns the number of fragments in disk d's free list
// (useful for tests and fragmentation diagnostics).
func (fsys *FileSystem) FreeExtents(d int) int { return len(fsys.disks[d].free) }
