package fs

import (
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, caps ...int) *FileSystem {
	t.Helper()
	if len(caps) == 0 {
		caps = []int{10000}
	}
	return New(Config{DiskBlocks: caps})
}

func TestCreateAndLookup(t *testing.T) {
	f := newFS(t)
	a, err := f.Create("a", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "a" || a.Size() != 100 || a.Disk() != 0 || a.ID() == NoFile {
		t.Errorf("bad file: %+v", a)
	}
	got, ok := f.Lookup("a")
	if !ok || got != a {
		t.Error("Lookup failed")
	}
	byID, ok := f.ByID(a.ID())
	if !ok || byID != a {
		t.Error("ByID failed")
	}
	if _, ok := f.Lookup("missing"); ok {
		t.Error("Lookup found a missing file")
	}
}

func TestCreateErrors(t *testing.T) {
	f := newFS(t)
	if _, err := f.Create("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create("a", 0, 10); err == nil {
		t.Error("duplicate create succeeded")
	}
	if _, err := f.Create("b", 5, 10); err == nil {
		t.Error("create on missing disk succeeded")
	}
	if _, err := f.Create("c", 0, -1); err == nil {
		t.Error("negative size create succeeded")
	}
	if _, err := f.Create("huge", 0, 1<<30); err == nil {
		t.Error("over-capacity create succeeded")
	}
}

func TestSequentialPlacement(t *testing.T) {
	// A file created alone should be fully contiguous: block addresses
	// increase by one.
	f := newFS(t)
	a, _ := f.Create("a", 0, 200)
	for i := 1; i < 200; i++ {
		if a.BlockAddr(i) != a.BlockAddr(i-1)+1 {
			t.Fatalf("file not contiguous at block %d", i)
		}
	}
}

func TestBlockAddrOutOfRangePanics(t *testing.T) {
	f := newFS(t)
	a, _ := f.Create("a", 0, 10)
	for _, blk := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BlockAddr(%d) did not panic", blk)
				}
			}()
			a.BlockAddr(blk)
		}()
	}
}

func TestInterleavedGrowth(t *testing.T) {
	// Two files grown alternately interleave their extents, as real
	// allocators do for concurrently written files.
	f := New(Config{DiskBlocks: []int{100000}, ExtentBlocks: 8})
	a, _ := f.Create("a", 0, 0)
	b, _ := f.Create("b", 0, 0)
	for i := 1; i <= 5; i++ {
		if err := f.Grow(a, i*8); err != nil {
			t.Fatal(err)
		}
		if err := f.Grow(b, i*8); err != nil {
			t.Fatal(err)
		}
	}
	if a.Size() != 40 || b.Size() != 40 {
		t.Fatalf("sizes %d, %d; want 40, 40", a.Size(), b.Size())
	}
	// a's second extent must land after b's first: interleaving.
	if a.BlockAddr(8) < b.BlockAddr(0) {
		t.Error("growth did not interleave")
	}
	// Within each file addresses must be strictly increasing per extent
	// and unique across both files.
	seen := map[int]bool{}
	for _, file := range []*File{a, b} {
		for i := 0; i < file.Size(); i++ {
			addr := file.BlockAddr(i)
			if seen[addr] {
				t.Fatalf("address %d allocated twice", addr)
			}
			seen[addr] = true
		}
	}
}

func TestGrowNoShrink(t *testing.T) {
	f := newFS(t)
	a, _ := f.Create("a", 0, 50)
	if err := f.Grow(a, 20); err != nil {
		t.Errorf("no-op grow errored: %v", err)
	}
	if a.Size() != 50 {
		t.Errorf("grow shrank file to %d", a.Size())
	}
}

func TestRemoveAndReuse(t *testing.T) {
	f := New(Config{DiskBlocks: []int{100}, ExtentBlocks: 10})
	a, _ := f.Create("a", 0, 60)
	if _, err := f.Create("big", 0, 60); err == nil {
		t.Fatal("expected disk-full error")
	}
	if err := f.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if !a.Removed() {
		t.Error("Removed() false after remove")
	}
	if _, ok := f.Lookup("a"); ok {
		t.Error("removed file still visible")
	}
	if _, ok := f.ByID(a.ID()); ok {
		t.Error("removed file still visible by ID")
	}
	// The freed space is reusable.
	if _, err := f.Create("b", 0, 90); err != nil {
		t.Errorf("space not reclaimed: %v", err)
	}
	if err := f.Remove("a"); err == nil {
		t.Error("double remove succeeded")
	}
	if err := f.Grow(a, 100); err == nil {
		t.Error("grow of removed file succeeded")
	}
}

func TestFreeListCoalesces(t *testing.T) {
	f := New(Config{DiskBlocks: []int{1000}, ExtentBlocks: 10})
	var files []*File
	for i := 0; i < 5; i++ {
		fl, _ := f.Create(string(rune('a'+i)), 0, 10)
		files = append(files, fl)
	}
	_ = files
	for _, n := range []string{"b", "d", "c"} { // c joins b and d
		if err := f.Remove(n); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.FreeExtents(0); got != 1 {
		t.Errorf("free list has %d extents after coalescing, want 1", got)
	}
	// The coalesced 30-block hole is usable as a single file region.
	g, err := f.Create("g", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockAddr(0) != 10 {
		t.Errorf("reused hole starts at %d, want 10", g.BlockAddr(0))
	}
}

func TestUsedAccounting(t *testing.T) {
	f := newFS(t, 500, 500)
	f.Create("a", 0, 100)
	f.Create("b", 1, 200)
	if f.Used(0) != 100 || f.Used(1) != 200 {
		t.Errorf("Used = %d, %d; want 100, 200", f.Used(0), f.Used(1))
	}
	f.Remove("a")
	if f.Used(0) != 0 {
		t.Errorf("Used(0) = %d after remove, want 0", f.Used(0))
	}
	if f.Disks() != 2 {
		t.Errorf("Disks = %d, want 2", f.Disks())
	}
}

func TestIDsNeverReused(t *testing.T) {
	f := newFS(t)
	a, _ := f.Create("a", 0, 10)
	id := a.ID()
	f.Remove("a")
	b, _ := f.Create("a", 0, 10)
	if b.ID() == id {
		t.Error("FileID reused after remove")
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{}, {DiskBlocks: []int{0}}, {DiskBlocks: []int{-5}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: however files are created, grown and removed, no two live files
// ever map different blocks to the same disk address, and every address is
// within capacity.
func TestQuickNoOverlap(t *testing.T) {
	type op struct {
		Kind byte
		Arg  uint8
	}
	check := func(ops []op) bool {
		f := New(Config{DiskBlocks: []int{5000}, ExtentBlocks: 4})
		var live []*File
		n := 0
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // create
				name := string(rune('A' + n%64))
				n++
				if fl, err := f.Create(name, 0, int(o.Arg)%64); err == nil {
					live = append(live, fl)
				}
			case 1: // grow
				if len(live) > 0 {
					fl := live[int(o.Arg)%len(live)]
					_ = f.Grow(fl, fl.Size()+int(o.Kind)%32)
				}
			case 2: // remove
				if len(live) > 0 {
					i := int(o.Arg) % len(live)
					_ = f.Remove(live[i].Name())
					live = append(live[:i], live[i+1:]...)
				}
			}
		}
		seen := map[int]bool{}
		for _, fl := range live {
			for i := 0; i < fl.Size(); i++ {
				a := fl.BlockAddr(i)
				if a < 0 || a >= 5000 || seen[a] {
					return false
				}
				seen[a] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
