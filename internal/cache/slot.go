// slot.go — refcounted data slots: the arena that makes zero-copy serving
// safe.
//
// The simulation never stores block *contents*, so the DES runs a Cache
// with SlotBytes == 0 and none of this exists. The live server does store
// contents, and wants to hand them to the socket writer without copying:
// a response frame references the slot's bytes directly and a vectored
// write pushes them to the kernel. That reference outlives the kernel
// operation that created it, so the cache needs an answer to "what if the
// block is evicted, or written, while the writer still reads the bytes?"
//
// The answer is a pin count plus copy-on-write:
//
//   - The kernel goroutine pins a slot (refcount) when it enqueues a
//     response descriptor; the session writer unpins after the vectored
//     write returns. Pin/Unpin are the only cross-goroutine edges and are
//     atomic, so the unpin that drops the count to zero happens-before
//     any later mutation the kernel performs after observing zero.
//   - Mutation goes through ExclusiveData: if the slot is pinned, the
//     block's bytes move to a fresh slot and the pinned one is left
//     frozen for the in-flight frames — responses always carry the bytes
//     as they were when the read was served, which is what keeps the wire
//     server byte-identical to the discrete-event oracle.
//   - Freeing a pinned slot (eviction, file invalidation, session
//     teardown) parks it on a zombie list; the next allocation sweeps
//     zombies whose pins have drained back onto the free list.
//
// Slots are carved from one slab at construction (Capacity of them —
// every cached block owns exactly one). Pins can transiently push demand
// above Capacity (frames in flight while their blocks are rewritten or
// evicted), in which case allocSlot falls back to the heap; the extra
// slots recycle through the same free list, bounded by how many frames
// the sessions can have in flight.

package cache

import "sync/atomic"

// Slot is one block's worth of cached bytes, refcounted so response
// frames can reference it after the kernel operation that served them
// returns. The kernel goroutine owns the data; writers only Pin, read,
// and Unpin.
type Slot struct {
	refs atomic.Int32
	data []byte
}

// Data returns the slot's bytes. The caller must hold a pin (or be the
// kernel goroutine) for the bytes to be stable.
func (s *Slot) Data() []byte { return s.data }

// Pin takes a reference: the bytes will not be mutated or recycled until
// the matching Unpin. Called by the kernel goroutine before handing the
// slot to a session writer.
func (s *Slot) Pin() { s.refs.Add(1) }

// Unpin drops a reference. Safe from any goroutine; the final Unpin
// publishes (via the atomic) that readers are done, so a kernel-side
// refs==0 check licenses mutation.
func (s *Slot) Unpin() {
	if s.refs.Add(-1) < 0 {
		panic("cache: slot unpinned below zero")
	}
}

// Pinned reports whether any reader still holds the slot (racy by
// nature; exact only on the kernel goroutine).
func (s *Slot) Pinned() bool { return s.refs.Load() != 0 }

// Backs reports whether data is this slot's storage — the serve path's
// check that a callback's bytes are still the cached block's current
// slot (a detached fill or a copied-on-write block fails it).
func (s *Slot) Backs(data []byte) bool {
	return len(data) > 0 && len(s.data) > 0 && &s.data[0] == &data[0]
}

// initSlots carves Capacity slots out of one slab.
func (c *Cache) initSlots() {
	if c.slotSize <= 0 {
		return
	}
	slab := make([]byte, c.cfg.Capacity*c.slotSize)
	slots := make([]Slot, c.cfg.Capacity)
	c.freeSlots = make([]*Slot, 0, c.cfg.Capacity)
	for i := range slots {
		slots[i].data = slab[i*c.slotSize : (i+1)*c.slotSize]
		c.freeSlots = append(c.freeSlots, &slots[i])
	}
}

// allocSlot returns a free slot, sweeping drained zombies first and
// falling back to the heap when pins hold the whole arena hostage.
func (c *Cache) allocSlot() *Slot {
	if s := c.popFreeSlot(); s != nil {
		return s
	}
	c.sweepZombies()
	if s := c.popFreeSlot(); s != nil {
		return s
	}
	return &Slot{data: make([]byte, c.slotSize)}
}

func (c *Cache) popFreeSlot() *Slot {
	n := len(c.freeSlots)
	if n == 0 {
		return nil
	}
	s := c.freeSlots[n-1]
	c.freeSlots[n-1] = nil
	c.freeSlots = c.freeSlots[:n-1]
	return s
}

// sweepZombies moves freed-while-pinned slots whose pins have drained
// back onto the free list.
func (c *Cache) sweepZombies() {
	kept := c.zombies[:0]
	for _, s := range c.zombies {
		if s.refs.Load() == 0 {
			c.freeSlots = append(c.freeSlots, s)
		} else {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(c.zombies); i++ {
		c.zombies[i] = nil
	}
	c.zombies = kept
}

// ReleaseSlot returns a slot to the pool once its holder is done with it:
// the write-back path releases a detached victim slot after the store
// write, and freeBuf releases a removed block's slot. A still-pinned slot
// parks on the zombie list until its readers drain.
func (c *Cache) ReleaseSlot(s *Slot) {
	if s.refs.Load() != 0 {
		c.zombies = append(c.zombies, s)
		return
	}
	c.freeSlots = append(c.freeSlots, s)
}

// ExclusiveData returns b's bytes writable by the kernel goroutine. If
// the current slot is pinned by in-flight response frames, the block
// moves to a fresh copy (copy-on-write) and the pinned slot stays frozen
// for its readers; cowed reports that the copy happened so the caller
// can count it. Returns nil when the cache has no slots (SlotBytes == 0).
func (c *Cache) ExclusiveData(b *Buf) (data []byte, cowed bool) {
	s := b.Slot
	if s == nil {
		return nil, false
	}
	if s.refs.Load() == 0 {
		return s.data, false
	}
	ns := c.allocSlot()
	copy(ns.data, s.data)
	b.Slot = ns
	c.zombies = append(c.zombies, s)
	return ns.data, true
}
