package cache

import (
	"fmt"

	"repro/internal/sim"
)

// arcPolicy is ARC (Megiddo & Modha) as an allocation policy: resident
// blocks split into T1 (seen once since last eviction) and T2 (seen at
// least twice), shadowed by the ghost lists B1 and B2 remembering
// recently evicted block ids from each side. A miss whose id is found in
// a ghost list adapts the target size p of T1 — a B1 hit says "recency
// was being evicted too eagerly" and grows p, a B2 hit shrinks it — and
// the victim is taken from whichever resident list exceeds its target.
//
// Fit with two-level replacement: ARC here is the *allocation* policy
// only — it picks the candidate owner/block; the candidate's manager may
// still overrule through replace_block, in which case Overruled swaps
// the two buffers' ARC list slots (the chosen block inherits the
// candidate's position, mirroring what LRU-SP does to the global list)
// and the ghost is recorded for the block actually evicted.
//
// Memory discipline: resident linkage is intrusive (Buf.pol.prev/next),
// ghosts live in a fixed arena of Capacity records recycled through a
// free list, and the ghost index is a pre-sized oaTable — steady state
// allocates nothing. The directory invariants |T1|+|B1| <= c and
// |T1|+|T2|+|B1|+|B2| <= 2c bound the ghost population by c, so the
// arena never runs dry while the invariants hold (and pruning the
// longer ghost list covers the transients where they briefly don't,
// e.g. after InvalidateFile shrinks the resident side).
type arcPolicy struct {
	c *Cache

	t1, t2 arcList // resident lists (LRU at head side)
	b1, b2 int     // ghost list lengths
	p      int     // adaptive target size of T1

	ghostHead1, ghostTail1 arcGhost // B1 sentinels
	ghostHead2, ghostTail2 arcGhost // B2 sentinels
	ghosts                 oaTable[arcGhost]
	ghostArena             []arcGhost
	freeGhosts             *arcGhost

	// pending carries context from Victim to the Removed and Inserted
	// upcalls of the same miss: which buffer the policy chose (so its
	// removal, and only its removal, makes a ghost) and whether the
	// missing block was a ghost hit (so its insert lands in T2).
	pendingVictim *Buf
	pendingT2     key
	hasPendingT2  bool
}

// Buf.pol.list values.
const (
	arcInT1 uint8 = 1
	arcInT2 uint8 = 2
)

// arcGhost is one ghost-list entry: a block id remembered after
// eviction. Intrusive doubly-linked (MRU at next of head... see arcList
// comment), recycled through free.
type arcGhost struct {
	k          key
	prev, next *arcGhost
	list       uint8 // arcInT1 => B1, arcInT2 => B2
	free       *arcGhost
}

// arcList is an intrusive list over Buf.pol with sentinel Bufs:
// head.pol.next is the LRU end, tail.pol.prev the MRU end.
type arcList struct {
	head, tail Buf
	n          int
}

func (l *arcList) init() {
	l.head.pol.next = &l.tail
	l.tail.pol.prev = &l.head
	l.n = 0
}

func (l *arcList) pushMRU(b *Buf) {
	b.pol.prev = l.tail.pol.prev
	b.pol.next = &l.tail
	b.pol.prev.pol.next = b
	l.tail.pol.prev = b
	l.n++
}

func (l *arcList) unlink(b *Buf) {
	b.pol.prev.pol.next = b.pol.next
	b.pol.next.pol.prev = b.pol.prev
	b.pol.prev, b.pol.next = nil, nil
	l.n--
}

// lru returns the least-recently-used entry, or nil when empty.
func (l *arcList) lru() *Buf {
	if l.n == 0 {
		return nil
	}
	return l.head.pol.next
}

func newARCPolicy(c *Cache) AllocPolicy {
	p := &arcPolicy{c: c}
	p.t1.init()
	p.t2.init()
	p.ghostHead1.next = &p.ghostTail1
	p.ghostTail1.prev = &p.ghostHead1
	p.ghostHead2.next = &p.ghostTail2
	p.ghostTail2.prev = &p.ghostHead2
	p.ghosts.reserve(c.cfg.Capacity)
	p.ghostArena = make([]arcGhost, c.cfg.Capacity)
	for i := range p.ghostArena {
		p.ghostArena[i].free = p.freeGhosts
		p.freeGhosts = &p.ghostArena[i]
	}
	return p
}

func (p *arcPolicy) Name() Alloc        { return ARC }
func (p *arcPolicy) TwoLevel() bool     { return true }
func (p *arcPolicy) Placeholders() bool { return false }

// --- ghost bookkeeping ---

func (p *arcPolicy) ghostSentinels(list uint8) (*arcGhost, *arcGhost) {
	if list == arcInT1 {
		return &p.ghostHead1, &p.ghostTail1
	}
	return &p.ghostHead2, &p.ghostTail2
}

func (p *arcPolicy) addGhost(k key, list uint8) {
	g := p.freeGhosts
	if g == nil {
		// Arena dry (directory invariant transiently exceeded): recycle
		// the LRU ghost of the longer list.
		victimList := arcInT1
		if p.b2 > p.b1 {
			victimList = arcInT2
		}
		head, _ := p.ghostSentinels(victimList)
		p.dropGhost(head.next)
		g = p.freeGhosts
	}
	p.freeGhosts = g.free
	g.free = nil
	g.k = k
	g.list = list
	_, tail := p.ghostSentinels(list)
	g.prev = tail.prev
	g.next = tail
	g.prev.next = g
	tail.prev = g
	if list == arcInT1 {
		p.b1++
	} else {
		p.b2++
	}
	p.ghosts.put(k, g)
}

func (p *arcPolicy) dropGhost(g *arcGhost) {
	p.ghosts.del(g.k)
	g.prev.next = g.next
	g.next.prev = g.prev
	if g.list == arcInT1 {
		p.b1--
	} else {
		p.b2--
	}
	*g = arcGhost{free: p.freeGhosts}
	p.freeGhosts = g
}

// dropGhostLRU prunes the LRU end of B1 or B2 if non-empty.
func (p *arcPolicy) dropGhostLRU(list uint8) {
	head, tail := p.ghostSentinels(list)
	if head.next != tail {
		p.dropGhost(head.next)
	}
}

// --- upcalls ---

// Inserted places the new block: a ghost hit (detected by Victim on the
// full path, or looked up here on the not-full path) lands in T2; a
// genuinely new block lands in T1.
func (p *arcPolicy) Inserted(b *Buf) {
	k := b.ID.pack()
	if p.hasPendingT2 && k == p.pendingT2 {
		p.hasPendingT2 = false
		b.pol.list = arcInT2
		p.t2.pushMRU(b)
		return
	}
	// Not-full path: Victim was not consulted, so the ghost lookup and
	// adaptation happen here. (Full path misses already consumed their
	// ghost in Victim.)
	if g := p.ghosts.get(k); g != nil {
		p.adapt(g.list)
		p.dropGhost(g)
		b.pol.list = arcInT2
		p.t2.pushMRU(b)
		return
	}
	b.pol.list = arcInT1
	p.t1.pushMRU(b)
}

// Touched promotes a hit block to the MRU end of T2.
func (p *arcPolicy) Touched(b *Buf) {
	if b.pol.list == arcInT1 {
		p.t1.unlink(b)
	} else {
		p.t2.unlink(b)
	}
	b.pol.list = arcInT2
	p.t2.pushMRU(b)
}

// Removed unlinks b from its resident list; if b is the victim this
// policy chose for the in-flight miss, its id becomes a ghost on the
// side it was resident on.
func (p *arcPolicy) Removed(b *Buf) {
	list := b.pol.list
	if list == arcInT1 {
		p.t1.unlink(b)
	} else if list == arcInT2 {
		p.t2.unlink(b)
	}
	b.pol.list = 0
	if b == p.pendingVictim {
		p.pendingVictim = nil
		if list != 0 {
			p.addGhost(b.ID.pack(), list)
		}
	}
}

// adapt moves the T1 target p toward the side whose ghost was hit.
func (p *arcPolicy) adapt(ghostList uint8) {
	if ghostList == arcInT1 { // B1 hit: grow T1's share
		d := 1
		if p.b1 > 0 && p.b2/p.b1 > 1 {
			d = p.b2 / p.b1
		}
		p.p += d
		if p.p > p.c.cfg.Capacity {
			p.p = p.c.cfg.Capacity
		}
	} else { // B2 hit: grow T2's share
		d := 1
		if p.b2 > 0 && p.b1/p.b2 > 1 {
			d = p.b1 / p.b2
		}
		p.p -= d
		if p.p < 0 {
			p.p = 0
		}
	}
}

// scanLRU finds the least-recently-used non-busy entry of l, or nil.
func scanLRU(l *arcList, now sim.Time) *Buf {
	for b := l.head.pol.next; b != &l.tail; b = b.pol.next {
		if !b.Busy(now) {
			return b
		}
	}
	return nil
}

// Victim implements ARC's REPLACE plus the directory maintenance of a
// full miss. Busy buffers are skipped within the preferred list, then
// the other list is tried, then the plain LRU fallback (which may return
// a busy buffer — the cache's final fallback semantics).
func (p *arcPolicy) Victim(missing BlockID, now sim.Time) *Buf {
	k := missing.pack()
	ghostSide := uint8(0)
	if g := p.ghosts.get(k); g != nil {
		ghostSide = g.list
		p.adapt(ghostSide)
		p.dropGhost(g)
		p.pendingT2 = k
		p.hasPendingT2 = true
	} else {
		p.hasPendingT2 = false
		// Directory maintenance for a full miss outside the directory
		// (ARC's case IV): cap |T1|+|B1| at c, the whole directory at 2c.
		c := p.c.cfg.Capacity
		if p.t1.n+p.b1 >= c {
			p.dropGhostLRU(arcInT1)
		} else if p.t1.n+p.t2.n+p.b1+p.b2 >= 2*c {
			p.dropGhostLRU(arcInT2)
		}
	}

	// REPLACE(missing, p): evict from T1 when it exceeds its target (or
	// meets it exactly on a B2 ghost hit), else from T2.
	fromT1 := p.t1.n > 0 && (p.t1.n > p.p || (ghostSide == arcInT2 && p.t1.n == p.p))
	var b *Buf
	if fromT1 {
		b = scanLRU(&p.t1, now)
		if b == nil {
			b = scanLRU(&p.t2, now)
		}
	} else {
		b = scanLRU(&p.t2, now)
		if b == nil {
			b = scanLRU(&p.t1, now)
		}
	}
	if b == nil {
		// Everything is busy (or, impossibly, both lists are empty):
		// defer to the global-list fallback, which yields the plain LRU
		// buffer even mid-I/O.
		b = p.c.lruScan(now)
	}
	p.pendingVictim = b
	return b
}

// Overruled transfers the eviction from candidate to chosen: chosen
// inherits candidate's ARC list slot (and vice versa), and the pending
// ghost will be recorded for chosen, the block actually leaving.
func (p *arcPolicy) Overruled(candidate, chosen *Buf) {
	p.arcSwap(candidate, chosen)
	if p.pendingVictim == candidate {
		p.pendingVictim = chosen
	}
}

// checkInvariants audits the policy's structures; Cache.CheckInvariants
// calls it through the optional interface. Panics on the first
// violation.
func (p *arcPolicy) checkInvariants() {
	walk := func(l *arcList, tag uint8, name string) int {
		n := 0
		for b := l.head.pol.next; b != &l.tail; b = b.pol.next {
			n++
			if b.pol.list != tag {
				panic(fmt.Sprintf("cache/arc: %s member %v tagged %d", name, b.ID, b.pol.list))
			}
			if p.c.table.get(b.ID.pack()) != b {
				panic(fmt.Sprintf("cache/arc: %s member %v not cached", name, b.ID))
			}
			if b.pol.next.pol.prev != b {
				panic(fmt.Sprintf("cache/arc: %s linkage broken at %v", name, b.ID))
			}
		}
		if n != l.n {
			panic(fmt.Sprintf("cache/arc: %s length %d, walked %d", name, l.n, n))
		}
		return n
	}
	if r := walk(&p.t1, arcInT1, "T1") + walk(&p.t2, arcInT2, "T2"); r != p.c.count {
		panic(fmt.Sprintf("cache/arc: %d residents in T1+T2, cache holds %d", r, p.c.count))
	}
	ghostWalk := func(head, tail *arcGhost, tag uint8, want int, name string) {
		n := 0
		for g := head.next; g != tail; g = g.next {
			n++
			if g.list != tag {
				panic(fmt.Sprintf("cache/arc: %s ghost tagged %d", name, g.list))
			}
			if p.ghosts.get(g.k) != g {
				panic(fmt.Sprintf("cache/arc: %s ghost %v not indexed", name, g.k.unpack()))
			}
			if p.c.table.get(g.k) != nil {
				panic(fmt.Sprintf("cache/arc: ghost %v for resident block", g.k.unpack()))
			}
		}
		if n != want {
			panic(fmt.Sprintf("cache/arc: %s length %d, walked %d", name, want, n))
		}
	}
	ghostWalk(&p.ghostHead1, &p.ghostTail1, arcInT1, p.b1, "B1")
	ghostWalk(&p.ghostHead2, &p.ghostTail2, arcInT2, p.b2, "B2")
	if p.ghosts.len() != p.b1+p.b2 {
		panic(fmt.Sprintf("cache/arc: ghost index %d, lists %d+%d", p.ghosts.len(), p.b1, p.b2))
	}
	if p.p < 0 || p.p > p.c.cfg.Capacity {
		panic(fmt.Sprintf("cache/arc: target p=%d outside [0,%d]", p.p, p.c.cfg.Capacity))
	}
}

// arcSwap exchanges the list positions (and list identities) of a and b
// across T1/T2.
func (p *arcPolicy) arcSwap(a, b *Buf) {
	if a == b {
		return
	}
	ap, bn := a.pol.prev, b.pol.next
	if a.pol.next == b { // adjacent: a before b
		a.pol.prev.pol.next = b
		b.pol.prev = a.pol.prev
		a.pol.next = b.pol.next
		b.pol.next.pol.prev = a
		b.pol.next = a
		a.pol.prev = b
	} else if b.pol.next == a { // adjacent: b before a
		p.arcSwap(b, a)
		return
	} else {
		an, bp := a.pol.next, b.pol.prev
		ap.pol.next, an.pol.prev = b, b
		b.pol.prev, b.pol.next = ap, an
		bp.pol.next, bn.pol.prev = a, a
		a.pol.prev, a.pol.next = bp, bn
	}
	a.pol.list, b.pol.list = b.pol.list, a.pol.list
	// List lengths: if they were in different lists, each list's length
	// is unchanged (one member swapped for another); same list likewise.
}
