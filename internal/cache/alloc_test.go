package cache_test

import (
	"testing"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/sim"
)

// TestLookupHitZeroAllocs pins the tentpole property of the packed
// index and the intrusive ACM node: a steady-state cache hit — hash
// probe, global-list move-to-front, block_accessed upcall into a real
// manager — allocates nothing. (Before, Buf.Aux interface{} boxing and
// the map-backed indexes put allocations and assertions on this path.)
func TestLookupHitZeroAllocs(t *testing.T) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{})
	c := cache.New(cache.Config{Capacity: 256, Alloc: cache.LRUSP}, a)
	if _, err := a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		c.Insert(cache.BlockID{File: 1, Num: int32(i)}, 1, 0)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			if c.LookupBy(cache.BlockID{File: 1, Num: int32(i)}, 1, 0, 8192) == nil {
				t.Fatal("warm block missed")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("hit path allocated %.1f times per run, want 0", allocs)
	}
}

// TestMissReplaceSteadyStateZeroAllocs drives the full two-level miss
// protocol — LRU candidate, replace_block consultation, eviction,
// arena-recycled insertion — in steady state and requires it not to
// allocate either: buffers come off the free list and the indexes never
// rehash.
func TestMissReplaceSteadyStateZeroAllocs(t *testing.T) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{})
	c := cache.New(cache.Config{Capacity: 128, Alloc: cache.LRUSP}, a)
	if _, err := a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	n := int32(0)
	miss := func() {
		id := cache.BlockID{File: 1, Num: n}
		n++
		if c.Lookup(id, 0, 8192) == nil {
			c.Insert(id, 1, 0)
		}
	}
	for i := 0; i < 4*128; i++ {
		miss() // reach the eviction regime and settle all capacities
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			miss()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state miss path allocated %.1f times per run, want 0", allocs)
	}
}
