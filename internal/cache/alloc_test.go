package cache_test

import (
	"testing"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/sim"
)

// TestLookupHitZeroAllocs pins the tentpole property of the packed
// index and the intrusive ACM node: a steady-state cache hit — hash
// probe, global-list move-to-front, block_accessed upcall into a real
// manager — allocates nothing. (Before, Buf.Aux interface{} boxing and
// the map-backed indexes put allocations and assertions on this path.)
func TestLookupHitZeroAllocs(t *testing.T) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{})
	c := cache.New(cache.Config{Capacity: 256, Alloc: cache.LRUSP}, a)
	if _, err := a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		c.Insert(cache.BlockID{File: 1, Num: int32(i)}, 1, 0)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			if c.LookupBy(cache.BlockID{File: 1, Num: int32(i)}, 1, 0, 8192) == nil {
				t.Fatal("warm block missed")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("hit path allocated %.1f times per run, want 0", allocs)
	}
}

// TestMissReplaceSteadyStateZeroAllocs drives the full two-level miss
// protocol — policy victim selection, replace_block consultation,
// eviction, arena-recycled insertion — in steady state and requires it
// not to allocate, for every registered policy: buffers come off the
// free list, the indexes never rehash, and the new victim-selection path
// (ARC's ghost bookkeeping, AWRP's weight scan) stays on the arena
// discipline too.
func TestMissReplaceSteadyStateZeroAllocs(t *testing.T) {
	for _, alloc := range cache.AllocNames() {
		alloc := alloc
		t.Run(alloc.String(), func(t *testing.T) {
			a := acm.New(func() sim.Time { return 0 }, acm.Limits{})
			c := cache.New(cache.Config{Capacity: 128, Alloc: alloc}, a)
			if _, err := a.CreateManager(1); err != nil {
				t.Fatal(err)
			}
			n := int32(0)
			miss := func() {
				id := cache.BlockID{File: 1, Num: n}
				n++
				if c.Lookup(id, 0, 8192) == nil {
					c.Insert(id, 1, 0)
				}
			}
			for i := 0; i < 4*128; i++ {
				miss() // reach the eviction regime and settle all capacities
			}
			allocs := testing.AllocsPerRun(200, func() {
				for i := 0; i < 32; i++ {
					miss()
				}
			})
			if allocs != 0 {
				t.Errorf("%s steady-state miss path allocated %.1f times per run, want 0", alloc, allocs)
			}
			c.CheckInvariants()
		})
	}
}

// TestGhostHitSteadyStateZeroAllocs drives ARC through its richest
// transition — misses that hit the ghost directory, adapt p, and insert
// into T2 — plus warm hits that promote T1→T2, still allocation-free.
func TestGhostHitSteadyStateZeroAllocs(t *testing.T) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{})
	c := cache.New(cache.Config{Capacity: 64, Alloc: cache.ARC}, a)
	if _, err := a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	access := func(num int32) {
		id := cache.BlockID{File: 1, Num: num}
		if c.Lookup(id, 0, 8192) == nil {
			c.Insert(id, 1, 0)
		}
	}
	// A cycle over 96 blocks through a 64-block cache: every miss on the
	// second and later laps finds its id in a ghost list.
	for lap := 0; lap < 8; lap++ {
		for n := int32(0); n < 96; n++ {
			access(n)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for n := int32(0); n < 96; n++ {
			access(n)
		}
	})
	if allocs != 0 {
		t.Errorf("ARC ghost-hit path allocated %.1f times per run, want 0", allocs)
	}
	c.CheckInvariants()
}
