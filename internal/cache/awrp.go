package cache

import "repro/internal/sim"

// awrpSample bounds the victim scan: the policy examines at most this
// many buffers from the cold (LRU) end of the global list. A bounded
// sample keeps Victim O(1) at any cache size — the same approximation
// production LFU-family evictors make — while the global list ordering
// guarantees the sample is the recency-coldest region, where AWRP's
// low-weight blocks live.
const awrpSample = 32

// awrpPolicy is AWRP, the Adaptive Weight Ranking Policy: every block
// carries a weight combining its access frequency and its recency, and
// the victim is the resident block of least weight — frequently and
// recently used blocks survive, blocks that were popular long ago decay
// away. Implemented as weight = frequency / age, with age measured on a
// policy-local logical clock that ticks once per cache access: halving
// weight per doubling of idle time, so one long-idle burst block loses
// to a steadily re-referenced one regardless of raw counts.
//
// Victim ranks a bounded sample (awrpSample) taken from the LRU end of
// the global recency list rather than the full population; see the
// constant's comment. Managers are consulted on the chosen candidate as
// under any two-level policy; no swapping, no placeholders.
type awrpPolicy struct {
	c     *Cache
	clock int64
}

func newAWRPPolicy(c *Cache) AllocPolicy { return &awrpPolicy{c: c} }

func (p *awrpPolicy) Name() Alloc        { return AWRP }
func (p *awrpPolicy) TwoLevel() bool     { return true }
func (p *awrpPolicy) Placeholders() bool { return false }

func (p *awrpPolicy) Inserted(b *Buf) {
	p.clock++
	b.pol.freq = 1
	b.pol.lastUse = p.clock
}

func (p *awrpPolicy) Touched(b *Buf) {
	p.clock++
	b.pol.freq++
	b.pol.lastUse = p.clock
}

func (p *awrpPolicy) Removed(b *Buf)             {}
func (p *awrpPolicy) Overruled(candidate, chosen *Buf) {}

func (p *awrpPolicy) Victim(missing BlockID, now sim.Time) *Buf {
	var best *Buf
	var bestW float64
	examined := 0
	for b := p.c.head.gnext; b != p.c.tail && examined < awrpSample; b = b.gnext {
		examined++
		if b.Busy(now) {
			continue
		}
		age := p.clock - b.pol.lastUse + 1
		w := float64(b.pol.freq) / float64(age)
		if best == nil || w < bestW {
			best, bestW = b, w
		}
	}
	if best == nil {
		// Whole sample busy: the global fallback (plain LRU, busy or not).
		return p.c.lruScan(now)
	}
	return best
}
