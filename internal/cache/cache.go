// Package cache implements the BUF module of the paper: the buffer cache
// proper, and the kernel's global *allocation* policy for two-level
// replacement.
//
// In two-level replacement the kernel decides which process gives up a
// block (allocation) while the process's manager decides which of its own
// blocks to give up (replacement). On a miss the cache picks a candidate
// victim according to its allocation policy and, when the candidate belongs
// to a managed process, consults the application control module through the
// Replacer interface — the replace_block upcall of the paper. The manager
// may overrule the candidate with another block it owns; the LRU-SP policy
// then swaps the two blocks' positions in the global list and builds a
// placeholder recording the decision, so a later miss on the overruled
// block both selects the kept block as the next candidate and reports the
// manager's mistake (placeholder_used).
//
// Allocation policies are pluggable (policy.go): a name-keyed registry
// of AllocPolicy implementations selected by Config.Alloc and
// hot-swappable at runtime through SetAlloc. Six ship built in — the
// four matching the paper's Section 6 comparisons, plus two adaptive
// extensions:
//
//	GlobalLRU — the original kernel: plain global LRU, no application
//	            control at all (managers are never consulted).
//	LRUSP     — LRU with Swapping and Placeholders (the paper's policy).
//	LRUS      — swapping but no placeholders ("unprotected" in Table 1).
//	AllocLRU  — two-level replacement over a plain LRU list: managers are
//	            consulted but no swapping, no placeholders (Figure 6).
//	ARC       — adaptive replacement (T1/T2 + ghost lists; arc.go).
//	AWRP      — adaptive weight ranking on frequency x recency (awrp.go).
//
// The simulation's unit of work is the block access, so this package is
// engineered to be allocation-free in steady state: buffers live in one
// arena allocated at construction and recycle through a free list, the
// block index and the placeholder index are open-addressing tables keyed
// by a packed 64-bit BlockID (index.go), the ACM's per-block state is
// embedded in the buffer header (acmnode.go), and evicted-victim records
// are returned through a per-cache scratch slot.
package cache

import (
	"fmt"
	"math"

	"repro/internal/fs"
	"repro/internal/sim"
)

// BlockID names one file-system block: a file and a block number within it.
// Both fields must remain 32-bit: the cache indexes blocks by the packed
// 64-bit form (see index.go), which is collision-free only as long as a
// BlockID fits one word exactly.
type BlockID struct {
	File fs.FileID
	Num  int32
}

func (id BlockID) String() string {
	return fmt.Sprintf("f%d:%d", id.File, id.Num)
}

// NoOwner marks a buffer not owned by any process (or owned by a process
// without a manager).
const NoOwner = -1

// IOPending, stored in Buf.ValidAt, marks a buffer whose fill I/O has been
// issued but not completed: the disk completion callback will overwrite
// ValidAt with the real completion time. Until then the buffer is busy
// forever as far as Busy is concerned, and the cache will not recycle it
// even if it is evicted (the callback still holds the pointer).
const IOPending = sim.Time(math.MaxInt64)

// Buf is one cache buffer. The BUF module owns the global-list linkage and
// placeholder back-pointers; the embedded ACMNode belongs to the
// application control module for its per-block state.
type Buf struct {
	ID    BlockID
	Owner int // manager id, or NoOwner

	Dirty   bool
	DirtyAt sim.Time // when the buffer became dirty (update-daemon aging)
	ValidAt sim.Time // read I/O completes at this time; 0 if long valid

	// Referenced distinguishes blocks a process has actually touched
	// from read-ahead blocks still waiting for their first use. Demand
	// loads set it immediately; prefetched blocks gain it on first
	// Lookup. Replacement policies that key on use recency (MRU) treat
	// unreferenced blocks as last-resort victims.
	Referenced bool

	// Slot holds the block's bytes when the cache carries data
	// (Config.SlotBytes > 0; the live server). Attached at Insert,
	// detached into the Victim on dirty eviction, recycled with the
	// buffer otherwise. nil in the data-free simulation. See slot.go.
	Slot *Slot

	// acm is the Replacer's per-block state, embedded so that the five
	// BUF→ACM upcalls never box, assert, or allocate (see acmnode.go).
	acm ACMNode

	// pol is the allocation policy's per-block state (see policy.go),
	// embedded for the same reason: policies must never allocate per
	// block. Reset when the buffer recycles and on policy hot-swap.
	pol polNode

	gprev, gnext *Buf // global allocation list; nil when not linked
	holders      []*placeholder
}

// ACM returns the Replacer's embedded per-block state.
func (b *Buf) ACM() *ACMNode { return &b.acm }

// Busy reports whether the buffer's fill I/O is still in flight at time
// now.
func (b *Buf) Busy(now sim.Time) bool { return b.ValidAt > now }

// placeholder records an overruled replacement: the manager replaced block
// forID while the kernel had suggested the buffer points. A later miss on
// forID makes points the candidate and signals the mistake.
type placeholder struct {
	forID  BlockID
	points *Buf
	free   *placeholder // free-list link; nil while live
}

// Replacer is the application control module as seen from BUF — the five
// procedure calls of Section 4.
type Replacer interface {
	// NewBlock informs the ACM that b was loaded into the cache.
	NewBlock(b *Buf)
	// BlockGone informs the ACM that b was removed from the cache.
	BlockGone(b *Buf)
	// BlockAccessed informs the ACM that b was accessed at the given
	// byte range within the block.
	BlockAccessed(b *Buf, off, size int)
	// ReplaceBlock asks the ACM which block to replace on behalf of the
	// candidate's manager. The returned buffer must belong to the same
	// owner; returning nil or the candidate accepts the kernel's choice.
	ReplaceBlock(candidate *Buf, missing BlockID) *Buf
	// PlaceholderUsed informs the ACM that an earlier decision to
	// replace block missing (keeping pointed) was erroneous.
	PlaceholderUsed(missing BlockID, pointed *Buf)
	// Managed reports whether the owner currently has a manager.
	Managed(owner int) bool
}

// Victim describes an evicted buffer so the caller can write back dirty
// data. When the cache carries data and the victim was dirty, Slot is the
// detached data slot: the caller owns it and must hand it back through
// ReleaseSlot once the write-back (or its abandonment) is done.
type Victim struct {
	ID    BlockID
	Owner int
	Dirty bool
	Slot  *Slot
}

// Stats aggregates cache-wide counters. The json tags are the one
// canonical naming for these counters everywhere they escape the process
// (acbench -json, the acfcd metrics endpoint) — see internal/stats.
type Stats struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Evictions       int64 `json:"evictions"`
	UnrefEvictions  int64 `json:"unref_evictions"` // evictions of never-referenced (prefetched) blocks
	Consults        int64 `json:"consults"`        // replace_block consultations of managers
	Overrules       int64 `json:"overrules"`       // manager picked a block other than the candidate
	PlaceholderHits int64 `json:"placeholder_hits"` // misses resolved through a placeholder
	Vindicated      int64 `json:"vindicated"`       // placeholders dropped because the kept block was used
	Transfers       int64 `json:"transfers"`        // shared-block ownership transfers
	Revocations     int64 `json:"revocations"`
	AllocSwaps      int64 `json:"alloc_swaps"` // live allocation-policy hot-swaps (SetAlloc)
}

// Accumulate folds o into s. Used to aggregate the caches of many
// independent runs (the experiment Runner's kernel-counter snapshot).
func (s *Stats) Accumulate(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.UnrefEvictions += o.UnrefEvictions
	s.Consults += o.Consults
	s.Overrules += o.Overrules
	s.PlaceholderHits += o.PlaceholderHits
	s.Vindicated += o.Vindicated
	s.Transfers += o.Transfers
	s.Revocations += o.Revocations
	s.AllocSwaps += o.AllocSwaps
}

// OwnerStats tracks one manager's decision quality for the revocation
// extension (the paper's footnote 7).
type OwnerStats struct {
	Decisions int64 // overruling decisions made
	Mistakes  int64 // of those, how many a placeholder later caught
	Revoked   bool
}

// RevokeConfig controls the optional revocation of cache-control
// privileges from consistently foolish managers.
type RevokeConfig struct {
	Enabled bool
	// MinDecisions is the minimum number of overrules before the ratio
	// is examined.
	MinDecisions int64
	// MistakeRatio revokes a manager whose mistakes/decisions exceeds
	// this fraction.
	MistakeRatio float64
}

// Config configures a Cache.
type Config struct {
	// Capacity is the number of buffers.
	Capacity int
	// Alloc is the global allocation policy.
	Alloc Alloc
	// Revoke optionally enables foolish-manager revocation.
	Revoke RevokeConfig
	// SharedTransfer makes ownership of a block follow its use: when a
	// process other than the current owner hits a block, the block moves
	// under the accessor's manager. This is the paper's Section 8 future
	// work on concurrently shared files — whichever process is actively
	// using a shared block gets to apply its policy to it. Off, a block
	// stays with the process that faulted it in.
	SharedTransfer bool
	// SlotBytes, when positive, makes the cache carry block contents:
	// every cached buffer owns a refcounted data slot of this many bytes
	// (see slot.go). Zero — the simulation — stores no data at all.
	SlotBytes int
}

// Cache is the buffer cache. It is not safe for concurrent use; in the
// simulation exactly one process runs at a time.
type Cache struct {
	cfg   Config
	table oaTable[Buf] // packed BlockID -> *Buf; sized once, never rehashes
	// Global allocation list: head.gnext is the LRU end, tail.gprev the
	// MRU end. head and tail are sentinels.
	head, tail *Buf
	count      int
	ph         oaTable[placeholder] // packed BlockID -> live placeholder
	repl       Replacer
	pol        AllocPolicy // the allocation policy in force; swapped by SetAlloc
	stats      Stats
	owners     []*OwnerStats // indexed by owner id; nil = no record yet
	noOwner    OwnerStats    // shared record for all negative owner ids

	// arena backs every buffer; freeBufs chains recyclable ones through
	// gnext. Buffers evicted mid-fill (ValidAt == IOPending) are the one
	// exception: the completion callback still holds them, so they leak
	// to the GC instead of recycling, and a fresh Buf is allocated when
	// the free list runs dry.
	arena    []Buf
	freeBufs *Buf
	freePh   *placeholder
	victim   Victim // scratch for Insert's victim result; valid until the next Insert

	// Data slots (SlotBytes > 0 only): one per buffer, carved from a
	// slab; zombies are freed slots still pinned by in-flight response
	// frames, swept back to the free list as their pins drain.
	slotSize  int
	freeSlots []*Slot
	zombies   []*Slot
}

// New builds a cache. The Replacer may be nil only for policies that
// never consult managers (GlobalLRU). The policy name must be in the
// registry — an unknown name is a construction-time bug and panics,
// exactly as an out-of-range enum value once would have.
func New(cfg Config, repl Replacer) *Cache {
	if cfg.Capacity <= 0 {
		panic("cache: non-positive capacity")
	}
	cfg.Alloc = cfg.Alloc.norm()
	c := &Cache{
		cfg:  cfg,
		head: &Buf{},
		tail: &Buf{},
		repl: repl,
	}
	c.pol = c.newAllocPolicy(cfg.Alloc)
	if repl == nil && c.pol.TwoLevel() {
		panic("cache: two-level policy requires a Replacer")
	}
	c.head.gnext = c.tail
	c.tail.gprev = c.head
	c.table.reserve(cfg.Capacity)
	if c.pol.Placeholders() {
		// Pre-size the placeholder index too: its population tracks the
		// cached blocks placeholders point at, so reserving capacity
		// keeps steady-state placeholder churn rehash- and alloc-free.
		c.ph.reserve(cfg.Capacity)
	}
	c.arena = make([]Buf, cfg.Capacity)
	for i := range c.arena {
		c.arena[i].gnext = c.freeBufs
		c.freeBufs = &c.arena[i]
	}
	c.slotSize = cfg.SlotBytes
	c.initSlots()
	return c
}

// allocBuf takes a buffer off the free list (or, rarely, from the heap
// when busy evictions have drained the arena) and stamps its identity.
func (c *Cache) allocBuf(id BlockID, owner int) *Buf {
	b := c.freeBufs
	if b == nil {
		b = &Buf{}
	} else {
		c.freeBufs = b.gnext
		b.gnext = nil
	}
	b.ID = id
	b.Owner = owner
	if c.slotSize > 0 {
		b.Slot = c.allocSlot()
	}
	return b
}

// freeBuf recycles b unless a fill I/O still holds it.
func (c *Cache) freeBuf(b *Buf) {
	if b.ValidAt == IOPending {
		return
	}
	// Safety net: the embedded ACM node must leave its level list before
	// the buffer is zeroed and recycled, or the list neighbors would keep
	// pointing into a reused buffer. remove() sends block_gone first, so
	// this fires only if some path missed the upcall.
	if b.acm.Level != nil {
		b.acm.Level.Unlink(&b.acm)
	}
	if b.Slot != nil {
		c.ReleaseSlot(b.Slot)
		b.Slot = nil
	}
	holders := b.holders[:0] // keep the slice's capacity across reuse
	*b = Buf{}
	b.holders = holders
	b.gnext = c.freeBufs
	c.freeBufs = b
}

// allocPlaceholder takes a placeholder off the free list.
func (c *Cache) allocPlaceholder(forID BlockID, points *Buf) *placeholder {
	ph := c.freePh
	if ph == nil {
		ph = &placeholder{}
	} else {
		c.freePh = ph.free
		ph.free = nil
	}
	ph.forID = forID
	ph.points = points
	return ph
}

// freePlaceholder recycles ph.
func (c *Cache) freePlaceholder(ph *placeholder) {
	ph.points = nil
	ph.free = c.freePh
	c.freePh = ph
}

// Capacity returns the configured buffer count.
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.count }

// Alloc returns the name of the allocation policy in force.
func (c *Cache) Alloc() Alloc { return c.pol.Name() }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Consults returns the replace_block consultation count without copying
// the whole Stats struct (the upcall-cost accounting reads it per miss).
func (c *Cache) Consults() int64 { return c.stats.Consults }

// Owner returns the decision-quality record for a manager id, creating it
// on first use. All negative ids share one scratch record: the kernel
// keeps no per-process book on NoOwner, but counters recorded against it
// still accumulate (and the call stays allocation-free).
func (c *Cache) Owner(id int) *OwnerStats {
	if id < 0 {
		return &c.noOwner
	}
	for len(c.owners) <= id {
		c.owners = append(c.owners, nil)
	}
	if c.owners[id] == nil {
		c.owners[id] = &OwnerStats{}
	}
	return c.owners[id]
}

// ownerRecord returns the existing record for owner, or nil.
func (c *Cache) ownerRecord(owner int) *OwnerStats {
	if owner < 0 || owner >= len(c.owners) {
		return nil
	}
	return c.owners[owner]
}

// Revoked reports whether owner's control privileges have been revoked.
func (c *Cache) Revoked(owner int) bool {
	if os := c.ownerRecord(owner); os != nil {
		return os.Revoked
	}
	return false
}

// --- global list primitives ---

func (c *Cache) unlink(b *Buf) {
	b.gprev.gnext = b.gnext
	b.gnext.gprev = b.gprev
	b.gprev, b.gnext = nil, nil
}

// linkMRU inserts b at the most-recently-used end.
func (c *Cache) linkMRU(b *Buf) {
	b.gprev = c.tail.gprev
	b.gnext = c.tail
	b.gprev.gnext = b
	c.tail.gprev = b
}

// swapPositions exchanges the list positions of a and b.
func (c *Cache) swapPositions(a, b *Buf) {
	if a == b {
		return
	}
	ap, bn := a.gprev, b.gnext
	if a.gnext == b { // adjacent: a before b
		c.unlink(a)
		a.gprev = b
		a.gnext = bn
		b.gnext = a
		bn.gprev = a
		return
	}
	if b.gnext == a { // adjacent: b before a
		c.swapPositions(b, a)
		return
	}
	an, bp := a.gnext, b.gprev
	c.unlink(a)
	c.unlink(b)
	b.gprev, b.gnext = ap, an
	ap.gnext, an.gprev = b, b
	a.gprev, a.gnext = bp, bn
	bp.gnext, bn.gprev = a, a
}

// lruScan returns the least-recently-used buffer that is not busy at time
// now, or the plain LRU buffer if everything is busy.
func (c *Cache) lruScan(now sim.Time) *Buf {
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if !b.Busy(now) {
			return b
		}
	}
	return c.head.gnext
}

// GlobalOrder returns the block IDs in the global list from LRU to MRU.
// It allocates the result; tests and diagnostics only, never the
// simulation path.
func (c *Cache) GlobalOrder() []BlockID {
	ids := make([]BlockID, 0, c.count)
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		ids = append(ids, b.ID)
	}
	return ids
}

// Placeholders returns the number of live placeholders.
func (c *Cache) Placeholders() int { return c.ph.len() }

// --- main operations ---

// Lookup finds a cached block on behalf of the current owner. On a hit
// the block moves to the MRU end of the global list and the manager is
// told of the access; nil means a miss. Use LookupBy to identify the
// accessing process for shared-file ownership transfer.
func (c *Cache) Lookup(id BlockID, off, size int) *Buf {
	return c.LookupBy(id, NoOwner, off, size)
}

// LookupBy is Lookup with the accessing process identified: under
// SharedTransfer, a hit by a process other than the block's owner moves
// the block under the accessor's manager.
func (c *Cache) LookupBy(id BlockID, accessor int, off, size int) *Buf {
	b := c.table.get(id.pack())
	if b == nil {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	if c.cfg.SharedTransfer && accessor != NoOwner && accessor != b.Owner {
		c.transferOwner(b, accessor)
	}
	b.Referenced = true
	c.unlink(b)
	c.linkMRU(b)
	c.pol.Touched(b)
	// A reference to a block some placeholder points at vindicates the
	// manager's decision to keep it: the kept block proved useful before
	// the replaced one was needed again, which is what LRU itself would
	// have preferred. The placeholder is dropped and no mistake charged.
	for len(b.holders) > 0 {
		c.dropPlaceholder(b.holders[len(b.holders)-1])
		c.stats.Vindicated++
	}
	if c.managed(b.Owner) {
		c.repl.BlockAccessed(b, off, size)
	}
	return b
}

// transferOwner hands b from its current manager to the accessor's.
func (c *Cache) transferOwner(b *Buf, accessor int) {
	// block_gone must fire even when managed(b.Owner) is false: a
	// *revoked* owner's blocks stay linked in its ACM levels (revocation
	// stops consultations, it does not unlink state), and re-owning a
	// still-linked node would let new_block splice two level lists
	// together. BlockGone no-ops on an unlinked node.
	if c.repl != nil {
		c.repl.BlockGone(b)
	}
	b.Owner = accessor
	c.stats.Transfers++
	if c.managed(accessor) {
		c.repl.NewBlock(b)
	}
}

// Peek finds a cached block without touching recency state or notifying
// the manager.
func (c *Cache) Peek(id BlockID) *Buf { return c.table.get(id.pack()) }

// managed reports whether owner has an active, non-revoked manager under a
// two-level policy.
func (c *Cache) managed(owner int) bool {
	if owner < 0 || !c.pol.TwoLevel() {
		return false
	}
	if os := c.ownerRecord(owner); os != nil && os.Revoked {
		return false
	}
	return c.repl.Managed(owner)
}

// Insert brings block id into the cache on behalf of owner, evicting if
// full. It returns the new buffer and, if an eviction occurred, the victim
// (so the caller can write back dirty data). The victim record is a
// per-cache scratch slot, valid only until the next Insert. Insert panics
// if the block is already cached — callers must Lookup first.
func (c *Cache) Insert(id BlockID, owner int, now sim.Time) (*Buf, *Victim) {
	k := id.pack()
	if c.table.get(k) != nil {
		panic(fmt.Sprintf("cache: Insert of cached block %v", id))
	}
	var victim *Victim
	if c.count >= c.cfg.Capacity {
		victim = c.evictFor(id, now)
	} else if ph := c.ph.get(k); ph != nil {
		// The overruled block came back while free buffers existed: the
		// placeholder still proves the earlier decision wrong, but no
		// candidate redirection is needed.
		pointed := ph.points
		c.dropPlaceholder(ph)
		c.recordMistake(pointed.Owner)
		if c.managed(pointed.Owner) {
			c.repl.PlaceholderUsed(id, pointed)
		}
	}
	b := c.allocBuf(id, owner)
	c.table.put(k, b)
	c.linkMRU(b)
	c.count++
	c.pol.Inserted(b)
	if c.managed(owner) {
		c.repl.NewBlock(b)
	}
	return b, victim
}

// evictFor chooses and evicts a victim to make room for missing block id,
// running the full two-level protocol.
func (c *Cache) evictFor(missing BlockID, now sim.Time) *Victim {
	// Step 1: pick the candidate. A placeholder for the missing block
	// overrides the LRU choice and reports the manager's earlier
	// mistake.
	var candidate *Buf
	if c.pol.Placeholders() {
		if ph := c.ph.get(missing.pack()); ph != nil {
			candidate = ph.points
			c.dropPlaceholder(ph)
			c.stats.PlaceholderHits++
			c.recordMistake(candidate.Owner)
			if c.managed(candidate.Owner) {
				c.repl.PlaceholderUsed(missing, candidate)
			}
			if candidate.Busy(now) {
				candidate = nil // cannot take a buffer mid-I/O
			}
		}
	}
	if candidate == nil {
		candidate = c.pol.Victim(missing, now)
	}

	// Step 2: consult the candidate's manager.
	chosen := candidate
	if c.managed(candidate.Owner) {
		c.stats.Consults++
		if alt := c.repl.ReplaceBlock(candidate, missing); alt != nil && alt != candidate {
			c.validateAlternative(candidate, alt, now)
			chosen = alt
			c.stats.Overrules++
			c.recordDecision(candidate.Owner)
			// Step 3: the policy mirrors the overrule in its structures
			// (LRU-SP/LRU-S swap list positions), then the placeholder
			// records the decision.
			c.pol.Overruled(candidate, chosen)
			if c.pol.Placeholders() {
				c.setPlaceholder(chosen.ID, candidate)
			}
		}
	}

	return c.evict(chosen)
}

// validateAlternative enforces the kernel-side checks on a manager's
// answer; a bad answer is a bug in the manager, so it panics.
func (c *Cache) validateAlternative(candidate, alt *Buf, now sim.Time) {
	if alt.Owner != candidate.Owner {
		panic(fmt.Sprintf("cache: manager %d offered block %v owned by %d",
			candidate.Owner, alt.ID, alt.Owner))
	}
	if c.table.get(alt.ID.pack()) != alt {
		panic(fmt.Sprintf("cache: manager offered uncached block %v", alt.ID))
	}
	if alt.Busy(now) {
		panic(fmt.Sprintf("cache: manager offered busy block %v", alt.ID))
	}
}

// evict removes b from the cache and returns the victim record (the
// per-cache scratch slot; the caller consumes it before the next Insert).
func (c *Cache) evict(b *Buf) *Victim {
	c.victim = Victim{ID: b.ID, Owner: b.Owner, Dirty: b.Dirty}
	// A dirty victim's bytes must survive the buffer for the write-back:
	// detach the slot into the victim record (the caller releases it).
	// Mid-fill buffers keep theirs — the fill completion still writes
	// into it, and the leaked buffer carries the slot out of circulation.
	if b.Dirty && b.Slot != nil && b.ValidAt != IOPending {
		c.victim.Slot = b.Slot
		b.Slot = nil
	}
	if !b.Referenced {
		c.stats.UnrefEvictions++
	}
	c.remove(b)
	c.stats.Evictions++
	return &c.victim
}

// remove takes b out of all cache structures, notifies the manager, and
// recycles the buffer.
func (c *Cache) remove(b *Buf) {
	c.table.del(b.ID.pack())
	c.unlink(b)
	c.count--
	// Placeholders pointing at b die with it.
	for _, ph := range b.holders {
		c.ph.del(ph.forID.pack())
		c.freePlaceholder(ph)
	}
	b.holders = b.holders[:0]
	// The policy unlinks its per-block state on every removal path —
	// eviction, invalidation, owner sweeps — before the buffer recycles.
	c.pol.Removed(b)
	// Unconditionally, not gated on managed(): a revoked owner's blocks
	// are still linked in its ACM levels, and recycling a linked node
	// would corrupt the intrusive lists. BlockGone no-ops when unlinked.
	if c.repl != nil {
		c.repl.BlockGone(b)
	}
	c.freeBuf(b)
}

// setPlaceholder records "forID was replaced while points was kept". Any
// previous placeholder for the same block is superseded.
func (c *Cache) setPlaceholder(forID BlockID, points *Buf) {
	k := forID.pack()
	if old := c.ph.get(k); old != nil {
		c.dropPlaceholder(old)
	}
	ph := c.allocPlaceholder(forID, points)
	c.ph.put(k, ph)
	points.holders = append(points.holders, ph)
}

// dropPlaceholder removes ph from the index and from its pointee's holder
// list, then recycles it.
func (c *Cache) dropPlaceholder(ph *placeholder) {
	c.ph.del(ph.forID.pack())
	hs := ph.points.holders
	for i, h := range hs {
		if h == ph {
			hs[i] = hs[len(hs)-1]
			hs[len(hs)-1] = nil
			ph.points.holders = hs[:len(hs)-1]
			break
		}
	}
	c.freePlaceholder(ph)
}

// recordDecision counts an overrule by owner.
func (c *Cache) recordDecision(owner int) {
	if owner == NoOwner {
		return
	}
	c.Owner(owner).Decisions++
}

// recordMistake counts a placeholder-caught mistake and applies the
// revocation policy.
func (c *Cache) recordMistake(owner int) {
	if owner == NoOwner {
		return
	}
	os := c.Owner(owner)
	os.Mistakes++
	r := c.cfg.Revoke
	if r.Enabled && !os.Revoked && os.Decisions >= r.MinDecisions &&
		float64(os.Mistakes) > r.MistakeRatio*float64(os.Decisions) {
		os.Revoked = true
		c.stats.Revocations++
	}
}

// MarkDirty flags b as modified at time now (first write wins for aging).
func (c *Cache) MarkDirty(b *Buf, now sim.Time) {
	if !b.Dirty {
		b.Dirty = true
		b.DirtyAt = now
	}
}

// Clean clears the dirty flag after a write-back.
func (c *Cache) Clean(b *Buf) {
	b.Dirty = false
	b.DirtyAt = 0
}

// DirtyOlderThan returns the dirty buffers whose first write happened at or
// before cutoff, in global LRU order (oldest recency first).
func (c *Cache) DirtyOlderThan(cutoff sim.Time) []*Buf {
	var out []*Buf
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if b.Dirty && b.DirtyAt <= cutoff {
			out = append(out, b)
		}
	}
	return out
}

// InvalidateFile drops every cached block of the file, discarding dirty
// data (the file is gone, as when a temporary file is unlinked). It returns
// the number of blocks dropped.
func (c *Cache) InvalidateFile(id fs.FileID) int {
	var doomed []*Buf
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if b.ID.File == id {
			doomed = append(doomed, b)
		}
	}
	for _, b := range doomed {
		c.remove(b)
	}
	// Placeholders keyed by the dead file's blocks are stale too.
	var stale []*placeholder
	c.ph.forEach(func(k key, ph *placeholder) {
		if k.file() == id {
			stale = append(stale, ph)
		}
	})
	for _, ph := range stale {
		c.dropPlaceholder(ph)
	}
	return len(doomed)
}

// EvictOwner evicts every block owned by owner, reporting each victim to
// fn (which may be nil) so the caller can write back dirty data. It
// returns the number of blocks evicted. This is the eviction half of
// revoking an owner/manager session: the manager, if any, must already
// have been destroyed (BlockGone fires unconditionally either way, so a
// still-linked revoked owner's ACM nodes unlink cleanly). The Victim
// passed to fn is a copy, valid beyond the call.
func (c *Cache) EvictOwner(owner int, fn func(Victim)) int {
	var doomed []*Buf
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if b.Owner == owner {
			doomed = append(doomed, b)
		}
	}
	for _, b := range doomed {
		v := c.evict(b)
		if fn != nil {
			fn(*v)
		}
	}
	return len(doomed)
}

// DisownOwner transfers every block owned by owner to NoOwner, leaving
// the blocks cached under the kernel's global policy alone. This is the
// transfer half of revoking an owner/manager session: a departed client's
// warm blocks stay useful to whoever reads them next.
func (c *Cache) DisownOwner(owner int) int {
	n := 0
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if b.Owner == owner {
			c.transferOwner(b, NoOwner)
			n++
		}
	}
	return n
}

// Drop removes b from the cache without producing a victim record: the
// caller has decided the contents are not worth writing back (a fill that
// failed with an I/O error). The manager is notified as for any removal.
func (c *Cache) Drop(b *Buf) {
	c.remove(b)
	c.stats.Evictions++
}

// CheckInvariants verifies internal consistency; tests call it after
// mutation storms. It panics with a description on the first violation.
func (c *Cache) CheckInvariants() {
	n := 0
	slots := make(map[*Slot]BlockID)
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		n++
		if c.table.get(b.ID.pack()) != b {
			panic(fmt.Sprintf("cache: listed block %v not in table", b.ID))
		}
		if c.slotSize > 0 {
			if b.Slot == nil {
				panic(fmt.Sprintf("cache: cached block %v has no data slot", b.ID))
			}
			if prev, dup := slots[b.Slot]; dup {
				panic(fmt.Sprintf("cache: blocks %v and %v share a slot", prev, b.ID))
			}
			slots[b.Slot] = b.ID
		}
		for _, ph := range b.holders {
			if c.ph.get(ph.forID.pack()) != ph {
				panic(fmt.Sprintf("cache: holder of %v not registered", b.ID))
			}
			if ph.points != b {
				panic(fmt.Sprintf("cache: holder of %v points elsewhere", b.ID))
			}
		}
	}
	if n != c.count || n != c.table.len() {
		panic(fmt.Sprintf("cache: count %d, list %d, table %d disagree", c.count, n, c.table.len()))
	}
	if n > c.cfg.Capacity {
		panic(fmt.Sprintf("cache: %d blocks exceed capacity %d", n, c.cfg.Capacity))
	}
	c.ph.forEach(func(k key, ph *placeholder) {
		if k != ph.forID.pack() {
			panic("cache: placeholder key mismatch")
		}
		if c.table.get(k) != nil {
			panic(fmt.Sprintf("cache: placeholder exists for cached block %v", ph.forID))
		}
		if c.table.get(ph.points.ID.pack()) != ph.points {
			panic(fmt.Sprintf("cache: placeholder for %v points to evicted block", ph.forID))
		}
	})
	for _, s := range c.freeSlots {
		if s.Pinned() {
			panic("cache: pinned slot on the free list")
		}
	}
	// Policies with internal structure audit themselves too (ARC walks
	// its T1/T2 lists and the ghost directory).
	if ci, ok := c.pol.(interface{ checkInvariants() }); ok {
		ci.checkInvariants()
	}
}
