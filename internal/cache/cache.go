// Package cache implements the BUF module of the paper: the buffer cache
// proper, and the kernel's global *allocation* policy for two-level
// replacement.
//
// In two-level replacement the kernel decides which process gives up a
// block (allocation) while the process's manager decides which of its own
// blocks to give up (replacement). On a miss the cache picks a candidate
// victim according to its allocation policy and, when the candidate belongs
// to a managed process, consults the application control module through the
// Replacer interface — the replace_block upcall of the paper. The manager
// may overrule the candidate with another block it owns; the LRU-SP policy
// then swaps the two blocks' positions in the global list and builds a
// placeholder recording the decision, so a later miss on the overruled
// block both selects the kept block as the next candidate and reports the
// manager's mistake (placeholder_used).
//
// Four allocation policies are provided, matching the paper's Section 6
// comparisons:
//
//	GlobalLRU — the original kernel: plain global LRU, no application
//	            control at all (managers are never consulted).
//	LRUSP     — LRU with Swapping and Placeholders (the paper's policy).
//	LRUS      — swapping but no placeholders ("unprotected" in Table 1).
//	AllocLRU  — two-level replacement over a plain LRU list: managers are
//	            consulted but no swapping, no placeholders (Figure 6).
package cache

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/sim"
)

// BlockID names one file-system block: a file and a block number within it.
type BlockID struct {
	File fs.FileID
	Num  int32
}

func (id BlockID) String() string {
	return fmt.Sprintf("f%d:%d", id.File, id.Num)
}

// NoOwner marks a buffer not owned by any process (or owned by a process
// without a manager).
const NoOwner = -1

// Alloc selects the kernel's global allocation policy.
type Alloc int

// Allocation policies.
const (
	GlobalLRU Alloc = iota
	LRUSP
	LRUS
	AllocLRU
)

func (a Alloc) String() string {
	switch a {
	case GlobalLRU:
		return "global-lru"
	case LRUSP:
		return "lru-sp"
	case LRUS:
		return "lru-s"
	case AllocLRU:
		return "alloc-lru"
	}
	return fmt.Sprintf("alloc(%d)", int(a))
}

// swapping reports whether the policy swaps candidate/alternative list
// positions when a manager overrules the kernel.
func (a Alloc) swapping() bool { return a == LRUSP || a == LRUS }

// placeholders reports whether the policy builds placeholders for
// overruled decisions.
func (a Alloc) placeholders() bool { return a == LRUSP }

// twoLevel reports whether managers are consulted at all.
func (a Alloc) twoLevel() bool { return a != GlobalLRU }

// Buf is one cache buffer. The BUF module owns the global-list linkage and
// placeholder back-pointers; the Aux field belongs to the application
// control module for its per-block state.
type Buf struct {
	ID    BlockID
	Owner int // manager id, or NoOwner

	Dirty   bool
	DirtyAt sim.Time // when the buffer became dirty (update-daemon aging)
	ValidAt sim.Time // read I/O completes at this time; 0 if long valid

	// Referenced distinguishes blocks a process has actually touched
	// from read-ahead blocks still waiting for their first use. Demand
	// loads set it immediately; prefetched blocks gain it on first
	// Lookup. Replacement policies that key on use recency (MRU) treat
	// unreferenced blocks as last-resort victims.
	Referenced bool

	// Aux is reserved for the Replacer (ACM per-block state).
	Aux interface{}

	gprev, gnext *Buf // global allocation list; nil when not linked
	holders      []*placeholder
}

// Busy reports whether the buffer's fill I/O is still in flight at time
// now.
func (b *Buf) Busy(now sim.Time) bool { return b.ValidAt > now }

// placeholder records an overruled replacement: the manager replaced block
// forID while the kernel had suggested the buffer points. A later miss on
// forID makes points the candidate and signals the mistake.
type placeholder struct {
	forID  BlockID
	points *Buf
}

// Replacer is the application control module as seen from BUF — the five
// procedure calls of Section 4.
type Replacer interface {
	// NewBlock informs the ACM that b was loaded into the cache.
	NewBlock(b *Buf)
	// BlockGone informs the ACM that b was removed from the cache.
	BlockGone(b *Buf)
	// BlockAccessed informs the ACM that b was accessed at the given
	// byte range within the block.
	BlockAccessed(b *Buf, off, size int)
	// ReplaceBlock asks the ACM which block to replace on behalf of the
	// candidate's manager. The returned buffer must belong to the same
	// owner; returning nil or the candidate accepts the kernel's choice.
	ReplaceBlock(candidate *Buf, missing BlockID) *Buf
	// PlaceholderUsed informs the ACM that an earlier decision to
	// replace block missing (keeping pointed) was erroneous.
	PlaceholderUsed(missing BlockID, pointed *Buf)
	// Managed reports whether the owner currently has a manager.
	Managed(owner int) bool
}

// Victim describes an evicted buffer so the caller can write back dirty
// data.
type Victim struct {
	ID    BlockID
	Owner int
	Dirty bool
}

// Stats aggregates cache-wide counters.
type Stats struct {
	Hits            int64
	Misses          int64
	Evictions       int64
	UnrefEvictions  int64 // evictions of never-referenced (prefetched) blocks
	Consults        int64 // replace_block consultations of managers
	Overrules       int64 // manager picked a block other than the candidate
	PlaceholderHits int64 // misses resolved through a placeholder
	Vindicated      int64 // placeholders dropped because the kept block was used
	Transfers       int64 // shared-block ownership transfers
	Revocations     int64
}

// OwnerStats tracks one manager's decision quality for the revocation
// extension (the paper's footnote 7).
type OwnerStats struct {
	Decisions int64 // overruling decisions made
	Mistakes  int64 // of those, how many a placeholder later caught
	Revoked   bool
}

// RevokeConfig controls the optional revocation of cache-control
// privileges from consistently foolish managers.
type RevokeConfig struct {
	Enabled bool
	// MinDecisions is the minimum number of overrules before the ratio
	// is examined.
	MinDecisions int64
	// MistakeRatio revokes a manager whose mistakes/decisions exceeds
	// this fraction.
	MistakeRatio float64
}

// Config configures a Cache.
type Config struct {
	// Capacity is the number of buffers.
	Capacity int
	// Alloc is the global allocation policy.
	Alloc Alloc
	// Revoke optionally enables foolish-manager revocation.
	Revoke RevokeConfig
	// SharedTransfer makes ownership of a block follow its use: when a
	// process other than the current owner hits a block, the block moves
	// under the accessor's manager. This is the paper's Section 8 future
	// work on concurrently shared files — whichever process is actively
	// using a shared block gets to apply its policy to it. Off, a block
	// stays with the process that faulted it in.
	SharedTransfer bool
}

// Cache is the buffer cache. It is not safe for concurrent use; in the
// simulation exactly one process runs at a time.
type Cache struct {
	cfg   Config
	table map[BlockID]*Buf
	// Global allocation list: head.gnext is the LRU end, tail.gprev the
	// MRU end. head and tail are sentinels.
	head, tail *Buf
	count      int
	ph         map[BlockID]*placeholder
	repl       Replacer
	stats      Stats
	owners     map[int]*OwnerStats
}

// New builds a cache. The Replacer may be nil only for GlobalLRU.
func New(cfg Config, repl Replacer) *Cache {
	if cfg.Capacity <= 0 {
		panic("cache: non-positive capacity")
	}
	if repl == nil && cfg.Alloc.twoLevel() {
		panic("cache: two-level policy requires a Replacer")
	}
	c := &Cache{
		cfg:    cfg,
		table:  make(map[BlockID]*Buf, cfg.Capacity),
		head:   &Buf{},
		tail:   &Buf{},
		ph:     make(map[BlockID]*placeholder),
		repl:   repl,
		owners: make(map[int]*OwnerStats),
	}
	c.head.gnext = c.tail
	c.tail.gprev = c.head
	return c
}

// Capacity returns the configured buffer count.
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.count }

// Alloc returns the allocation policy in force.
func (c *Cache) Alloc() Alloc { return c.cfg.Alloc }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Owner returns the decision-quality record for a manager id, creating it
// on first use.
func (c *Cache) Owner(id int) *OwnerStats {
	os := c.owners[id]
	if os == nil {
		os = &OwnerStats{}
		c.owners[id] = os
	}
	return os
}

// Revoked reports whether owner's control privileges have been revoked.
func (c *Cache) Revoked(owner int) bool {
	if os := c.owners[owner]; os != nil {
		return os.Revoked
	}
	return false
}

// --- global list primitives ---

func (c *Cache) unlink(b *Buf) {
	b.gprev.gnext = b.gnext
	b.gnext.gprev = b.gprev
	b.gprev, b.gnext = nil, nil
}

// linkMRU inserts b at the most-recently-used end.
func (c *Cache) linkMRU(b *Buf) {
	b.gprev = c.tail.gprev
	b.gnext = c.tail
	b.gprev.gnext = b
	c.tail.gprev = b
}

// swapPositions exchanges the list positions of a and b.
func (c *Cache) swapPositions(a, b *Buf) {
	if a == b {
		return
	}
	ap, bn := a.gprev, b.gnext
	if a.gnext == b { // adjacent: a before b
		c.unlink(a)
		a.gprev = b
		a.gnext = bn
		b.gnext = a
		bn.gprev = a
		return
	}
	if b.gnext == a { // adjacent: b before a
		c.swapPositions(b, a)
		return
	}
	an, bp := a.gnext, b.gprev
	c.unlink(a)
	c.unlink(b)
	b.gprev, b.gnext = ap, an
	ap.gnext, an.gprev = b, b
	a.gprev, a.gnext = bp, bn
	bp.gnext, bn.gprev = a, a
}

// lruScan returns the least-recently-used buffer that is not busy at time
// now, or the plain LRU buffer if everything is busy.
func (c *Cache) lruScan(now sim.Time) *Buf {
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if !b.Busy(now) {
			return b
		}
	}
	return c.head.gnext
}

// GlobalOrder returns the block IDs in the global list from LRU to MRU.
// Intended for tests and diagnostics.
func (c *Cache) GlobalOrder() []BlockID {
	ids := make([]BlockID, 0, c.count)
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		ids = append(ids, b.ID)
	}
	return ids
}

// Placeholders returns the number of live placeholders.
func (c *Cache) Placeholders() int { return len(c.ph) }

// --- main operations ---

// Lookup finds a cached block on behalf of the current owner. On a hit
// the block moves to the MRU end of the global list and the manager is
// told of the access; nil means a miss. Use LookupBy to identify the
// accessing process for shared-file ownership transfer.
func (c *Cache) Lookup(id BlockID, off, size int) *Buf {
	return c.LookupBy(id, NoOwner, off, size)
}

// LookupBy is Lookup with the accessing process identified: under
// SharedTransfer, a hit by a process other than the block's owner moves
// the block under the accessor's manager.
func (c *Cache) LookupBy(id BlockID, accessor int, off, size int) *Buf {
	b := c.table[id]
	if b == nil {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	if c.cfg.SharedTransfer && accessor != NoOwner && accessor != b.Owner {
		c.transferOwner(b, accessor)
	}
	b.Referenced = true
	c.unlink(b)
	c.linkMRU(b)
	// A reference to a block some placeholder points at vindicates the
	// manager's decision to keep it: the kept block proved useful before
	// the replaced one was needed again, which is what LRU itself would
	// have preferred. The placeholder is dropped and no mistake charged.
	for len(b.holders) > 0 {
		c.dropPlaceholder(b.holders[len(b.holders)-1])
		c.stats.Vindicated++
	}
	if c.managed(b.Owner) {
		c.repl.BlockAccessed(b, off, size)
	}
	return b
}

// transferOwner hands b from its current manager to the accessor's.
func (c *Cache) transferOwner(b *Buf, accessor int) {
	if c.managed(b.Owner) {
		c.repl.BlockGone(b)
	}
	b.Owner = accessor
	c.stats.Transfers++
	if c.managed(accessor) {
		c.repl.NewBlock(b)
	}
}

// Peek finds a cached block without touching recency state or notifying
// the manager.
func (c *Cache) Peek(id BlockID) *Buf { return c.table[id] }

// managed reports whether owner has an active, non-revoked manager under a
// two-level policy.
func (c *Cache) managed(owner int) bool {
	if owner == NoOwner || !c.cfg.Alloc.twoLevel() {
		return false
	}
	if os := c.owners[owner]; os != nil && os.Revoked {
		return false
	}
	return c.repl.Managed(owner)
}

// Insert brings block id into the cache on behalf of owner, evicting if
// full. It returns the new buffer and, if an eviction occurred, the victim
// (so the caller can write back dirty data). Insert panics if the block is
// already cached — callers must Lookup first.
func (c *Cache) Insert(id BlockID, owner int, now sim.Time) (*Buf, *Victim) {
	if c.table[id] != nil {
		panic(fmt.Sprintf("cache: Insert of cached block %v", id))
	}
	var victim *Victim
	if c.count >= c.cfg.Capacity {
		victim = c.evictFor(id, now)
	} else if ph := c.ph[id]; ph != nil {
		// The overruled block came back while free buffers existed: the
		// placeholder still proves the earlier decision wrong, but no
		// candidate redirection is needed.
		pointed := ph.points
		c.dropPlaceholder(ph)
		c.recordMistake(pointed.Owner)
		if c.managed(pointed.Owner) {
			c.repl.PlaceholderUsed(id, pointed)
		}
	}
	b := &Buf{ID: id, Owner: owner}
	c.table[id] = b
	c.linkMRU(b)
	c.count++
	if c.managed(owner) {
		c.repl.NewBlock(b)
	}
	return b, victim
}

// evictFor chooses and evicts a victim to make room for missing block id,
// running the full two-level protocol.
func (c *Cache) evictFor(missing BlockID, now sim.Time) *Victim {
	// Step 1: pick the candidate. A placeholder for the missing block
	// overrides the LRU choice and reports the manager's earlier
	// mistake.
	var candidate *Buf
	if c.cfg.Alloc.placeholders() {
		if ph := c.ph[missing]; ph != nil {
			candidate = ph.points
			c.dropPlaceholder(ph)
			c.stats.PlaceholderHits++
			c.recordMistake(candidate.Owner)
			if c.managed(candidate.Owner) {
				c.repl.PlaceholderUsed(missing, candidate)
			}
			if candidate.Busy(now) {
				candidate = nil // cannot take a buffer mid-I/O
			}
		}
	}
	if candidate == nil {
		candidate = c.lruScan(now)
	}

	// Step 2: consult the candidate's manager.
	chosen := candidate
	if c.managed(candidate.Owner) {
		c.stats.Consults++
		if alt := c.repl.ReplaceBlock(candidate, missing); alt != nil && alt != candidate {
			c.validateAlternative(candidate, alt, now)
			chosen = alt
			c.stats.Overrules++
			c.recordDecision(candidate.Owner)
			// Step 3: swapping and placeholder construction.
			if c.cfg.Alloc.swapping() {
				c.swapPositions(candidate, chosen)
			}
			if c.cfg.Alloc.placeholders() {
				c.setPlaceholder(chosen.ID, candidate)
			}
		}
	}

	return c.evict(chosen)
}

// validateAlternative enforces the kernel-side checks on a manager's
// answer; a bad answer is a bug in the manager, so it panics.
func (c *Cache) validateAlternative(candidate, alt *Buf, now sim.Time) {
	if alt.Owner != candidate.Owner {
		panic(fmt.Sprintf("cache: manager %d offered block %v owned by %d",
			candidate.Owner, alt.ID, alt.Owner))
	}
	if c.table[alt.ID] != alt {
		panic(fmt.Sprintf("cache: manager offered uncached block %v", alt.ID))
	}
	if alt.Busy(now) {
		panic(fmt.Sprintf("cache: manager offered busy block %v", alt.ID))
	}
}

// evict removes b from the cache and returns the victim record.
func (c *Cache) evict(b *Buf) *Victim {
	v := &Victim{ID: b.ID, Owner: b.Owner, Dirty: b.Dirty}
	if !b.Referenced {
		c.stats.UnrefEvictions++
	}
	c.remove(b)
	c.stats.Evictions++
	return v
}

// remove takes b out of all cache structures and notifies the manager.
func (c *Cache) remove(b *Buf) {
	delete(c.table, b.ID)
	c.unlink(b)
	c.count--
	// Placeholders pointing at b die with it.
	for _, ph := range b.holders {
		delete(c.ph, ph.forID)
	}
	b.holders = nil
	if c.managed(b.Owner) {
		c.repl.BlockGone(b)
	}
}

// setPlaceholder records "forID was replaced while points was kept". Any
// previous placeholder for the same block is superseded.
func (c *Cache) setPlaceholder(forID BlockID, points *Buf) {
	if old := c.ph[forID]; old != nil {
		c.dropPlaceholder(old)
	}
	ph := &placeholder{forID: forID, points: points}
	c.ph[forID] = ph
	points.holders = append(points.holders, ph)
}

// dropPlaceholder removes ph from the map and from its pointee's holder
// list.
func (c *Cache) dropPlaceholder(ph *placeholder) {
	delete(c.ph, ph.forID)
	hs := ph.points.holders
	for i, h := range hs {
		if h == ph {
			hs[i] = hs[len(hs)-1]
			ph.points.holders = hs[:len(hs)-1]
			break
		}
	}
}

// recordDecision counts an overrule by owner.
func (c *Cache) recordDecision(owner int) {
	if owner == NoOwner {
		return
	}
	c.Owner(owner).Decisions++
}

// recordMistake counts a placeholder-caught mistake and applies the
// revocation policy.
func (c *Cache) recordMistake(owner int) {
	if owner == NoOwner {
		return
	}
	os := c.Owner(owner)
	os.Mistakes++
	r := c.cfg.Revoke
	if r.Enabled && !os.Revoked && os.Decisions >= r.MinDecisions &&
		float64(os.Mistakes) > r.MistakeRatio*float64(os.Decisions) {
		os.Revoked = true
		c.stats.Revocations++
	}
}

// MarkDirty flags b as modified at time now (first write wins for aging).
func (c *Cache) MarkDirty(b *Buf, now sim.Time) {
	if !b.Dirty {
		b.Dirty = true
		b.DirtyAt = now
	}
}

// Clean clears the dirty flag after a write-back.
func (c *Cache) Clean(b *Buf) {
	b.Dirty = false
	b.DirtyAt = 0
}

// DirtyOlderThan returns the dirty buffers whose first write happened at or
// before cutoff, in global LRU order (oldest recency first).
func (c *Cache) DirtyOlderThan(cutoff sim.Time) []*Buf {
	var out []*Buf
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if b.Dirty && b.DirtyAt <= cutoff {
			out = append(out, b)
		}
	}
	return out
}

// InvalidateFile drops every cached block of the file, discarding dirty
// data (the file is gone, as when a temporary file is unlinked). It returns
// the number of blocks dropped.
func (c *Cache) InvalidateFile(id fs.FileID) int {
	var doomed []*Buf
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		if b.ID.File == id {
			doomed = append(doomed, b)
		}
	}
	for _, b := range doomed {
		c.remove(b)
	}
	// Placeholders keyed by the dead file's blocks are stale too.
	for k, ph := range c.ph {
		if k.File == id {
			c.dropPlaceholder(ph)
		}
	}
	return len(doomed)
}

// CheckInvariants verifies internal consistency; tests call it after
// mutation storms. It panics with a description on the first violation.
func (c *Cache) CheckInvariants() {
	n := 0
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		n++
		if c.table[b.ID] != b {
			panic(fmt.Sprintf("cache: listed block %v not in table", b.ID))
		}
		for _, ph := range b.holders {
			if c.ph[ph.forID] != ph {
				panic(fmt.Sprintf("cache: holder of %v not registered", b.ID))
			}
			if ph.points != b {
				panic(fmt.Sprintf("cache: holder of %v points elsewhere", b.ID))
			}
		}
	}
	if n != c.count || n != len(c.table) {
		panic(fmt.Sprintf("cache: count %d, list %d, table %d disagree", c.count, n, len(c.table)))
	}
	if n > c.cfg.Capacity {
		panic(fmt.Sprintf("cache: %d blocks exceed capacity %d", n, c.cfg.Capacity))
	}
	for id, ph := range c.ph {
		if id != ph.forID {
			panic("cache: placeholder key mismatch")
		}
		if c.table[id] != nil {
			panic(fmt.Sprintf("cache: placeholder exists for cached block %v", id))
		}
		if c.table[ph.points.ID] != ph.points {
			panic(fmt.Sprintf("cache: placeholder for %v points to evicted block", id))
		}
	}
}
