package cache

// This file hosts the *storage* for the application control module's
// per-block state. The paper's kernel does the same thing: the BUF
// buffer header carries the ACM's fields inline so that crossing the
// BUF→ACM interface on every access touches no additional allocation
// or indirection. The semantics of these fields — what the policies
// mean, which end of a pool gets victimized — belong entirely to the
// Replacer implementation (package acm); BUF only zeroes the linkage
// when it recycles a buffer.
//
// Before this layout the ACM kept its node in Buf.Aux interface{},
// which boxed a pointer and forced a type assertion on every
// block_accessed upcall, plus one heap allocation per new_block.

// ACMNode is the Replacer's per-block state, embedded in every Buf
// (see Buf.ACM). Level == nil means the block is not under any
// manager's control; the other fields are meaningless then.
type ACMNode struct {
	// Buf points back to the buffer embedding this node, so pool walks
	// can reach buffer state (Busy, Referenced, ID). The Replacer sets
	// it when it links the node.
	Buf        *Buf
	Prev, Next *ACMNode
	Level      *ACMLevel
	// Temp marks a block parked at a temporary priority.
	Temp bool
}

// ACMLevel is one priority pool: an intrusive doubly-linked list of
// ACMNodes in LRU order (Head.Next least recently used, Tail.Prev most
// recently used) plus the pool's identity. Policy is an opaque code
// owned by the Replacer (package acm reads it as an acm.Policy).
type ACMLevel struct {
	Prio   int
	Policy int
	N      int
	// Head and Tail are list sentinels; their Buf pointers stay nil.
	Head, Tail ACMNode
}

// NewACMLevel returns an initialized empty pool.
func NewACMLevel(prio, policy int) *ACMLevel {
	l := &ACMLevel{Prio: prio, Policy: policy}
	l.Head.Next = &l.Tail
	l.Tail.Prev = &l.Head
	return l
}

// Unlink removes nd from the pool and marks it unmanaged.
func (l *ACMLevel) Unlink(nd *ACMNode) {
	nd.Prev.Next = nd.Next
	nd.Next.Prev = nd.Prev
	nd.Prev, nd.Next = nil, nil
	nd.Level = nil
	l.N--
}

// LinkMRU appends nd at the most-recently-used end.
func (l *ACMLevel) LinkMRU(nd *ACMNode) {
	nd.Prev = l.Tail.Prev
	nd.Next = &l.Tail
	nd.Prev.Next = nd
	l.Tail.Prev = nd
	nd.Level = l
	l.N++
}

// LinkLRU prepends nd at the least-recently-used end.
func (l *ACMLevel) LinkLRU(nd *ACMNode) {
	nd.Next = l.Head.Next
	nd.Prev = &l.Head
	nd.Next.Prev = nd
	l.Head.Next = nd
	nd.Level = l
	l.N++
}
