package cache_test

import (
	"testing"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/fs"
	"repro/internal/sim"
)

// BenchmarkLookupHit measures the hit path: hash probe plus global-list
// move-to-front.
func BenchmarkLookupHit(b *testing.B) {
	c := cache.New(cache.Config{Capacity: 1024, Alloc: cache.GlobalLRU}, nil)
	for i := 0; i < 1024; i++ {
		c.Insert(cache.BlockID{File: 1, Num: int32(i)}, cache.NoOwner, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(cache.BlockID{File: 1, Num: int32(i % 1024)}, 0, 8192)
	}
}

// BenchmarkMissEvict measures the full replacement protocol under
// GlobalLRU: candidate scan, eviction, insertion.
func BenchmarkMissEvict(b *testing.B) {
	c := cache.New(cache.Config{Capacity: 819, Alloc: cache.GlobalLRU}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cache.BlockID{File: fs.FileID(1 + i%3), Num: int32(i)}
		c.Insert(id, cache.NoOwner, 0)
	}
}

// acceptRepl is a minimal manager for benchmarking the two-level path.
type acceptRepl struct{}

func (acceptRepl) NewBlock(*cache.Buf)                       {}
func (acceptRepl) BlockGone(*cache.Buf)                      {}
func (acceptRepl) BlockAccessed(*cache.Buf, int, int)        {}
func (acceptRepl) PlaceholderUsed(cache.BlockID, *cache.Buf) {}
func (acceptRepl) Managed(int) bool                          { return true }
func (acceptRepl) ReplaceBlock(c *cache.Buf, _ cache.BlockID) *cache.Buf {
	return c
}

// BenchmarkMissEvictTwoLevel adds the replace_block consultation to every
// eviction.
func BenchmarkMissEvictTwoLevel(b *testing.B) {
	c := cache.New(cache.Config{Capacity: 819, Alloc: cache.LRUSP}, acceptRepl{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cache.BlockID{File: 1, Num: int32(i)}
		c.Insert(id, 1, 0)
	}
}

// BenchmarkMissReplace measures the full LRU-SP evict/placeholder cycle
// against a real ACM manager that has misjudged its workload: a hot file
// parked at priority -1 under a cold streaming file, so the manager keeps
// overruling the kernel with blocks that are needed again almost
// immediately. Every iteration runs consult, overrule, swap, placeholder
// construction — and, when the hot block comes back, the placeholder
// redirection plus the placeholder_used upcall.
func BenchmarkMissReplace(b *testing.B) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{})
	c := cache.New(cache.Config{Capacity: 819, Alloc: cache.LRUSP}, a)
	m, err := a.CreateManager(1)
	if err != nil {
		b.Fatal(err)
	}
	hot, cold := fs.FileID(1), fs.FileID(2)
	if err := m.SetPriority(hot, -1); err != nil { // foolishly marked junk
		b.Fatal(err)
	}
	access := func(i int) {
		h := cache.BlockID{File: hot, Num: int32(i % 100)}
		if c.Lookup(h, 0, 8192) == nil {
			c.Insert(h, 1, 0)
		}
		cl := cache.BlockID{File: cold, Num: int32(i % 4096)}
		if c.Lookup(cl, 0, 8192) == nil {
			c.Insert(cl, 1, 0)
		}
	}
	for i := 0; i < 4*4096; i++ {
		access(i) // settle free lists, holder slices, and table sizes
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		access(i)
	}
	b.StopTimer()
	st := c.Stats()
	if st.Overrules == 0 || st.PlaceholderHits == 0 {
		b.Fatalf("benchmark lost its point: %d overrules, %d placeholder hits",
			st.Overrules, st.PlaceholderHits)
	}
}
