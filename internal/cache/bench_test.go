package cache_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/fs"
)

// BenchmarkLookupHit measures the hit path: hash probe plus global-list
// move-to-front.
func BenchmarkLookupHit(b *testing.B) {
	c := cache.New(cache.Config{Capacity: 1024, Alloc: cache.GlobalLRU}, nil)
	for i := 0; i < 1024; i++ {
		c.Insert(cache.BlockID{File: 1, Num: int32(i)}, cache.NoOwner, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(cache.BlockID{File: 1, Num: int32(i % 1024)}, 0, 8192)
	}
}

// BenchmarkMissEvict measures the full replacement protocol under
// GlobalLRU: candidate scan, eviction, insertion.
func BenchmarkMissEvict(b *testing.B) {
	c := cache.New(cache.Config{Capacity: 819, Alloc: cache.GlobalLRU}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cache.BlockID{File: fs.FileID(1 + i%3), Num: int32(i)}
		c.Insert(id, cache.NoOwner, 0)
	}
}

// acceptRepl is a minimal manager for benchmarking the two-level path.
type acceptRepl struct{}

func (acceptRepl) NewBlock(*cache.Buf)                       {}
func (acceptRepl) BlockGone(*cache.Buf)                      {}
func (acceptRepl) BlockAccessed(*cache.Buf, int, int)        {}
func (acceptRepl) PlaceholderUsed(cache.BlockID, *cache.Buf) {}
func (acceptRepl) Managed(int) bool                          { return true }
func (acceptRepl) ReplaceBlock(c *cache.Buf, _ cache.BlockID) *cache.Buf {
	return c
}

// BenchmarkMissEvictTwoLevel adds the replace_block consultation to every
// eviction.
func BenchmarkMissEvictTwoLevel(b *testing.B) {
	c := cache.New(cache.Config{Capacity: 819, Alloc: cache.LRUSP}, acceptRepl{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cache.BlockID{File: 1, Num: int32(i)}
		c.Insert(id, 1, 0)
	}
}
