package cache_test

import (
	"bytes"
	"testing"

	"repro/internal/cache"
)

func slotCache(capacity int) *cache.Cache {
	return cache.New(cache.Config{Capacity: capacity, Alloc: cache.GlobalLRU, SlotBytes: 64}, nil)
}

// TestSlotExclusiveDataUnpinned: with no pins the kernel writes a block's
// slot in place — no copy, same storage.
func TestSlotExclusiveDataUnpinned(t *testing.T) {
	c := slotCache(2)
	b, _ := c.Insert(id(0), cache.NoOwner, 0)
	if b.Slot == nil {
		t.Fatal("SlotBytes > 0 but inserted buffer has no slot")
	}
	s := b.Slot
	data, cowed := c.ExclusiveData(b)
	if cowed {
		t.Fatal("unpinned slot copied on write")
	}
	if !s.Backs(data) {
		t.Fatal("ExclusiveData returned storage other than the slot's")
	}
	c.CheckInvariants()
}

// TestSlotCopyOnWrite: writing a pinned block moves it to a fresh slot
// and freezes the pinned bytes for the in-flight reader — the rule that
// keeps zero-copy responses byte-identical to read time.
func TestSlotCopyOnWrite(t *testing.T) {
	c := slotCache(2)
	b, _ := c.Insert(id(0), cache.NoOwner, 0)
	old := b.Slot
	copy(old.Data(), bytes.Repeat([]byte{0xaa}, 64))

	old.Pin() // a response frame in flight
	data, cowed := c.ExclusiveData(b)
	if !cowed {
		t.Fatal("pinned slot mutated in place")
	}
	if old.Backs(data) {
		t.Fatal("copy-on-write returned the pinned storage")
	}
	if !b.Slot.Backs(data) || b.Slot == old {
		t.Fatal("block not repointed at the fresh slot")
	}
	if !bytes.Equal(data, old.Data()) {
		t.Fatal("fresh slot did not inherit the block's bytes")
	}
	data[0] = 0x55
	if old.Data()[0] != 0xaa {
		t.Fatal("write leaked into the frozen pinned slot")
	}
	old.Unpin()
	c.CheckInvariants()
}

// TestSlotZombieRecycle: a slot freed while pinned (clean eviction under
// an in-flight response) parks as a zombie and returns to service once
// its pin drains — the arena does not leak to the heap.
func TestSlotZombieRecycle(t *testing.T) {
	c := slotCache(1)
	b, _ := c.Insert(id(0), cache.NoOwner, 0)
	s := b.Slot
	s.Pin()
	if _, v := c.Insert(id(1), cache.NoOwner, 0); v != nil && v.Slot != nil {
		t.Fatal("clean victim must not detach its slot")
	}
	// The evicted block's slot was pinned, so the new block's slot had to
	// come from somewhere else (the heap fallback).
	if b2 := c.Peek(id(1)); b2.Slot == s {
		t.Fatal("pinned slot reissued while pinned")
	}
	s.Unpin()
	// With the pin drained, the zombie must be swept back into service.
	// Dirty the current block so its eviction detaches its slot into the
	// victim — the next allocation then finds the free list empty and
	// must recover s from the zombie list.
	c.MarkDirty(c.Peek(id(1)), 0)
	b3, v := c.Insert(id(2), cache.NoOwner, 0)
	if v == nil || v.Slot == nil {
		t.Fatal("dirty victim did not detach its slot")
	}
	if b3.Slot != s {
		t.Fatal("drained zombie not swept back into service")
	}
	c.ReleaseSlot(v.Slot)
	c.CheckInvariants()
}

// TestSlotDirtyVictimDetaches: evicting a dirty block hands its slot to
// the caller via Victim.Slot (the write-back path owns it until
// ReleaseSlot), and the bytes ride along.
func TestSlotDirtyVictimDetaches(t *testing.T) {
	c := slotCache(1)
	b, _ := c.Insert(id(0), cache.NoOwner, 0)
	copy(b.Slot.Data(), []byte("dirty-bytes"))
	c.MarkDirty(b, 0)
	_, v := c.Insert(id(1), cache.NoOwner, 0)
	if v == nil || !v.Dirty {
		t.Fatal("expected a dirty victim")
	}
	if v.Slot == nil {
		t.Fatal("dirty victim did not detach its slot")
	}
	if !bytes.HasPrefix(v.Slot.Data(), []byte("dirty-bytes")) {
		t.Fatal("victim slot lost the dirty bytes")
	}
	c.ReleaseSlot(v.Slot)
	c.CheckInvariants()
}
