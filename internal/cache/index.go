package cache

import (
	"math/bits"

	"repro/internal/fs"
)

// key is a BlockID packed into one machine word: the file id in the
// high 32 bits, the block number in the low 32. The packing is a
// bijection for any (int32, int32) pair, so it is collision-free as
// long as fs.FileID and BlockID.Num remain 32-bit types. That is a
// load-bearing invariant: widening either type silently truncates here
// and aliases distinct blocks. TestPackBijective pins it.
type key uint64

// pack converts a BlockID to its table key.
func (id BlockID) pack() key {
	return key(uint64(uint32(id.File))<<32 | uint64(uint32(id.Num)))
}

// file recovers the file id from a packed key.
func (k key) file() fs.FileID { return fs.FileID(int32(uint32(k >> 32))) }

// num recovers the block number from a packed key.
func (k key) num() int32 { return int32(uint32(k)) }

// unpack inverts pack.
func (k key) unpack() BlockID { return BlockID{File: k.file(), Num: k.num()} }

// fib64 is 2^64 / phi, the Fibonacci-hashing multiplier: multiplying a
// key by it diffuses low-entropy block numbers into the high bits,
// which home() then uses to pick a slot.
const fib64 = 0x9E3779B97F4A7C15

// oaTable is an open-addressing hash table from packed block keys to
// pointers, specialized for the cache hot path where Go's built-in map
// (hash of a 2-field struct key, bucket chasing, write barriers on
// delete) dominated the lookup profile. Power-of-two capacity, linear
// probing, and tombstone-free deletion by backward shift keep probes
// short forever — there is no accumulated deletion debris to rehash
// away. The zero value is an empty table; reserve pre-sizes it so a
// table with a bounded population (the buffer index is capped by the
// cache capacity) never rehashes — and never allocates — after
// construction.
type oaTable[V any] struct {
	keys  []key
	vals  []*V
	n     int
	shift uint // 64 - log2(len(keys)); home slots come from the hash's high bits
}

// home returns k's preferred slot.
func (t *oaTable[V]) home(k key) uint64 { return (uint64(k) * fib64) >> t.shift }

// len returns the number of entries.
func (t *oaTable[V]) len() int { return t.n }

// reserve grows the table so it can hold n entries within the 3/4 load
// factor without further rehashing.
func (t *oaTable[V]) reserve(n int) {
	want := 16
	for want*3 < n*4 {
		want <<= 1
	}
	if want > len(t.keys) {
		t.rehash(want)
	}
}

// rehash resizes to size slots (a power of two) and reinserts.
func (t *oaTable[V]) rehash(size int) {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]key, size)
	t.vals = make([]*V, size)
	t.shift = uint(64 - bits.TrailingZeros(uint(size)))
	t.n = 0
	for i, v := range oldVals {
		if v != nil {
			t.insert(oldKeys[i], v)
		}
	}
}

// get returns the value for k, or nil.
func (t *oaTable[V]) get(k key) *V {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.keys) - 1)
	for i := t.home(k); ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil {
			return nil
		}
		if t.keys[i] == k {
			return v
		}
	}
}

// put inserts or replaces the entry for k. v must not be nil (nil
// values encode empty slots). The existing-key probe runs before the
// growth check so that replacing a value never rehashes, even at the
// load-factor threshold.
func (t *oaTable[V]) put(k key, v *V) {
	if len(t.keys) != 0 {
		mask := uint64(len(t.keys) - 1)
		i := t.home(k)
		for ; t.vals[i] != nil; i = (i + 1) & mask {
			if t.keys[i] == k {
				t.vals[i] = v
				return
			}
		}
		// i is the empty slot the probe stopped at; fill it directly if
		// the insert fits the 3/4 load factor.
		if (t.n+1)*4 <= len(t.keys)*3 {
			t.keys[i], t.vals[i] = k, v
			t.n++
			return
		}
	}
	size := len(t.keys) * 2
	if size < 16 {
		size = 16
	}
	t.rehash(size)
	t.insert(k, v)
}

// insert is put without the growth check (rehash reuses it).
func (t *oaTable[V]) insert(k key, v *V) {
	mask := uint64(len(t.keys) - 1)
	for i := t.home(k); ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

// del removes the entry for k if present. Instead of leaving a
// tombstone it shifts the tail of the probe chain back over the hole:
// any later entry whose home slot lies at or before the hole (in
// cyclic probe order) moves into it, repeating until a truly empty
// slot ends the chain.
func (t *oaTable[V]) del(k key) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.keys) - 1)
	i := t.home(k)
	for {
		if t.vals[i] == nil {
			return // absent
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	t.n--
	hole := i
	j := i
	for {
		j = (j + 1) & mask
		if t.vals[j] == nil {
			break
		}
		// The entry at j may fill the hole unless its home slot lies
		// cyclically within (hole, j] — moving such an entry would put
		// it before its home and make it unreachable.
		if h := t.home(t.keys[j]); cyclicBetween(hole, h, j) {
			continue
		}
		t.keys[hole], t.vals[hole] = t.keys[j], t.vals[j]
		hole = j
	}
	t.keys[hole], t.vals[hole] = 0, nil
}

// cyclicBetween reports whether h lies in the cyclic half-open
// interval (i, j].
func cyclicBetween(i, h, j uint64) bool {
	if i <= j {
		return i < h && h <= j
	}
	return h > i || h <= j
}

// forEach visits every entry. The table must not be mutated during the
// walk; callers that delete collect first.
func (t *oaTable[V]) forEach(f func(k key, v *V)) {
	for i, v := range t.vals {
		if v != nil {
			f(t.keys[i], v)
		}
	}
}
