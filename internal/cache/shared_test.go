package cache_test

import (
	"testing"

	"repro/internal/cache"
)

func TestSharedTransferMovesOwnership(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true, 2: true}}
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.LRUSP, SharedTransfer: true}, m)
	c.Insert(id(0), 1, 0)
	b := c.Peek(id(0))
	if b.Owner != 1 {
		t.Fatalf("owner = %d", b.Owner)
	}
	// Process 2 hits the block: ownership follows use.
	got := c.LookupBy(id(0), 2, 0, 8192)
	if got == nil || got.Owner != 2 {
		t.Fatalf("after shared hit owner = %v", got.Owner)
	}
	if st := c.Stats(); st.Transfers != 1 {
		t.Errorf("Transfers = %d, want 1", st.Transfers)
	}
	// The managers saw the hand-off: gone for 1, new for 2.
	var gone, fresh int
	for _, e := range m.events {
		switch e {
		case "gone:f1:0":
			gone++
		case "new:f1:0":
			fresh++
		}
	}
	if gone != 1 || fresh != 2 { // initial insert + transfer re-link
		t.Errorf("events = %v (gone %d, new %d)", m.events, gone, fresh)
	}
	c.CheckInvariants()
}

func TestSharedTransferOffKeepsOwner(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true, 2: true}}
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.LRUSP}, m)
	c.Insert(id(0), 1, 0)
	got := c.LookupBy(id(0), 2, 0, 8192)
	if got.Owner != 1 {
		t.Errorf("owner transferred with SharedTransfer off")
	}
	if c.Stats().Transfers != 0 {
		t.Error("transfer counted with SharedTransfer off")
	}
}

func TestSharedTransferSameOwnerNoop(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.LRUSP, SharedTransfer: true}, m)
	c.Insert(id(0), 1, 0)
	c.LookupBy(id(0), 1, 0, 8192)
	if c.Stats().Transfers != 0 {
		t.Error("self-hit counted as a transfer")
	}
}

func TestSharedTransferAnonymousAccessor(t *testing.T) {
	// Lookup without an accessor (NoOwner) must never steal the block.
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.LRUSP, SharedTransfer: true}, m)
	c.Insert(id(0), 1, 0)
	c.Lookup(id(0), 0, 8192)
	if got := c.Peek(id(0)); got.Owner != 1 {
		t.Errorf("anonymous lookup transferred ownership to %d", got.Owner)
	}
}

func TestSharedTransferToUnmanaged(t *testing.T) {
	// Transfer to a process without a manager leaves the block
	// unmanaged: the kernel replaces it directly afterwards.
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.LRUSP, SharedTransfer: true}, m)
	c.Insert(id(0), 1, 0)
	c.LookupBy(id(0), 7, 0, 8192) // unmanaged process 7
	b := c.Peek(id(0))
	if b.Owner != 7 {
		t.Fatalf("owner = %d, want 7", b.Owner)
	}
	if b.ACM().Level != nil {
		t.Error("ACM state survived transfer to unmanaged owner")
	}
	// Replacement of this block must not consult anyone.
	before := len(m.events)
	c.Insert(id(1), 7, 0)
	c.Insert(id(2), 7, 0) // evicts block 0 or 1 without ReplaceBlock
	for _, e := range m.events[before:] {
		if len(e) >= 4 && e[:4] == "repl" {
			t.Errorf("unmanaged block consulted manager: %v", m.events[before:])
		}
	}
	c.CheckInvariants()
}
