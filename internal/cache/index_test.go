package cache

import (
	"testing"

	"repro/internal/fs"
)

// TestPackBijective pins the collision-freedom invariant of the packed
// key: pack must round-trip every (int32, int32) corner exactly, since
// the whole block index rides on it.
func TestPackBijective(t *testing.T) {
	corners := []int32{0, 1, -1, 2, 819, 1 << 20, -(1 << 20), 1<<31 - 1, -1 << 31}
	seen := make(map[key]BlockID)
	for _, f := range corners {
		for _, n := range corners {
			id := BlockID{File: fs.FileID(f), Num: n}
			k := id.pack()
			if got := k.unpack(); got != id {
				t.Fatalf("pack/unpack %v = %v", id, got)
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("key collision: %v and %v both pack to %#x", prev, id, uint64(k))
			}
			seen[k] = id
		}
	}
}

// lcg is a tiny deterministic generator for the table stress test.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 16
}

// TestOATableAgainstMap drives the open-addressing table with a random
// mix of puts, deletes and lookups and checks every observable against
// a reference map. The small key range forces long probe chains and
// exercises the backward-shift deletion's wrap-around cases.
func TestOATableAgainstMap(t *testing.T) {
	var tab oaTable[int]
	ref := make(map[key]*int)
	r := lcg(1)
	for step := 0; step < 200000; step++ {
		k := key(r.next() % 97) // dense: constant collisions
		switch r.next() % 3 {
		case 0:
			v := new(int)
			*v = step
			tab.put(k, v)
			ref[k] = v
		case 1:
			tab.del(k)
			delete(ref, k)
		case 2:
			if got, want := tab.get(k), ref[k]; got != want {
				t.Fatalf("step %d: get(%d) = %v, want %v", step, k, got, want)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("step %d: len %d, want %d", step, tab.len(), len(ref))
		}
	}
	n := 0
	tab.forEach(func(k key, v *int) {
		n++
		if ref[k] != v {
			t.Fatalf("forEach visited stale entry %d", k)
		}
	})
	if n != len(ref) {
		t.Fatalf("forEach visited %d entries, want %d", n, len(ref))
	}
}

// TestOATablePutUpdateAtThresholdNoRehash: replacing the value of an
// existing key is not an insert and must never grow the table, even
// when the population sits exactly at the 3/4 load threshold (the old
// order of checks rehashed first and asked questions later).
func TestOATablePutUpdateAtThresholdNoRehash(t *testing.T) {
	var tab oaTable[int]
	v := new(int)
	for i := 0; i < 12; i++ { // 12 = the most a 16-slot table holds at 3/4
		tab.put(key(i), v)
	}
	if len(tab.keys) != 16 || tab.len() != 12 {
		t.Fatalf("size %d len %d, want 16/12", len(tab.keys), tab.len())
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 12; i++ {
			tab.put(key(i), v)
		}
	})
	if allocs != 0 {
		t.Errorf("value updates at the load threshold allocated %.1f/run, want 0", allocs)
	}
	if len(tab.keys) != 16 {
		t.Errorf("updates grew the table to %d slots, want 16", len(tab.keys))
	}
}

// TestOATableReserveNoRehash verifies that a reserved table never
// allocates again while its population stays within the reservation —
// the property the buffer index relies on for the zero-alloc hot path.
func TestOATableReserveNoRehash(t *testing.T) {
	var tab oaTable[int]
	tab.reserve(819)
	vals := make([]*int, 819)
	for i := range vals {
		vals[i] = new(int)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 819; i++ {
			tab.put(key(i)<<32|key(i), vals[i])
		}
		for i := 0; i < 819; i++ {
			tab.del(key(i)<<32 | key(i))
		}
	})
	if allocs != 0 {
		t.Errorf("reserved table allocated %.1f times per fill/drain cycle, want 0", allocs)
	}
}
