package cache_test

import (
	"errors"
	"testing"

	"repro/internal/cache"
)

// TestARCScanResistance is ARC's reason to exist: a frequently re-used
// working set survives a one-shot scan that would flush a plain LRU.
func TestARCScanResistance(t *testing.T) {
	m := &mockRepl{}
	runScan := func(alloc cache.Alloc) (survived int) {
		c := cache.New(cache.Config{Capacity: 8, Alloc: alloc}, m)
		// Establish a hot set of 6 blocks, touched repeatedly (ARC: T2).
		for round := 0; round < 3; round++ {
			for i := 0; i < 6; i++ {
				get(c, id(i), cache.NoOwner)
			}
		}
		// One sequential scan of 100 cold blocks.
		for i := 100; i < 200; i++ {
			get(c, id(i), cache.NoOwner)
		}
		c.CheckInvariants()
		for i := 0; i < 6; i++ {
			if c.Peek(id(i)) != nil {
				survived++
			}
		}
		return survived
	}
	if got := runScan(cache.GlobalLRU); got != 0 {
		t.Errorf("global-lru kept %d hot blocks through the scan, want 0 (sanity)", got)
	}
	if got := runScan(cache.ARC); got < 5 {
		t.Errorf("arc kept only %d/6 hot blocks through the scan, want >= 5", got)
	}
}

// TestARCGhostHitReadmitsToT2 checks the ghost protocol end to end: a
// block evicted once and missed again is recognized (its re-insert goes
// to the frequent side) and survives a subsequent one-touch flood that
// evicts the recency side first.
func TestARCGhostHitReadmitsToT2(t *testing.T) {
	m := &mockRepl{}
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.ARC}, m)
	// Fill, evict block 0 with one-touch traffic, then miss on 0 again:
	// the ghost hit readmits it to T2.
	for i := 0; i < 5; i++ {
		get(c, id(i), cache.NoOwner) // 0 is the first T1 victim
	}
	if c.Peek(id(0)) != nil {
		t.Fatal("block 0 should have been evicted")
	}
	get(c, id(0), cache.NoOwner) // ghost hit: back in, frequent side
	// A flood of fresh one-touch blocks must not displace the T2
	// resident while T1 victims exist.
	for i := 10; i < 16; i++ {
		get(c, id(i), cache.NoOwner)
	}
	c.CheckInvariants()
	if c.Peek(id(0)) == nil {
		t.Error("ghost-readmitted block evicted by one-touch flood; T2 not protecting it")
	}
}

// TestAWRPFrequencyBeatsRecency: under AWRP a block with a deep access
// history outlives a once-touched newer block even when the frequent one
// is older in pure recency terms.
func TestAWRPFrequencyBeatsRecency(t *testing.T) {
	m := &mockRepl{}
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.AWRP}, m)
	// Block 0: touched many times. Blocks 1-3: once each, later.
	get(c, id(0), cache.NoOwner)
	for i := 0; i < 10; i++ {
		get(c, id(0), cache.NoOwner)
	}
	for i := 1; i < 4; i++ {
		get(c, id(i), cache.NoOwner)
	}
	// Next miss must evict one of the once-touched blocks, not block 0 —
	// even though block 0 is now the recency-coldest resident.
	get(c, id(9), cache.NoOwner)
	c.CheckInvariants()
	if c.Peek(id(0)) == nil {
		t.Error("awrp evicted the high-frequency block; weight ranking not applied")
	}
}

// TestSetAllocMigratesInPlace drives the live policy swap through every
// registered policy in sequence on a warm, dirty, placeholder-carrying
// cache, checking invariants and content preservation after each hop.
func TestSetAllocMigratesInPlace(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 8, Alloc: cache.LRUSP}, m)
	for i := 0; i < 8; i++ {
		get(c, id(i), 1)
	}
	// Manufacture an overrule so a placeholder exists pre-swap.
	m.pick = func(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
		if b := c.Peek(id(7)); b != nil && b != candidate {
			return b
		}
		return candidate
	}
	get(c, id(8), 1)
	m.pick = nil
	if c.Placeholders() == 0 {
		t.Fatal("setup: no placeholder built")
	}
	c.MarkDirty(c.Peek(id(3)), 0)

	resident := c.GlobalOrder()
	hops := append(cache.AllocNames(), cache.LRUSP, cache.ARC, cache.LRUSP)
	for _, alloc := range hops {
		if err := c.SetAlloc(alloc); err != nil {
			t.Fatalf("SetAlloc(%s): %v", alloc, err)
		}
		if c.Alloc() != alloc {
			t.Fatalf("after SetAlloc(%s): Alloc() = %s", alloc, c.Alloc())
		}
		c.CheckInvariants()
		for _, blk := range resident {
			if c.Peek(blk) == nil {
				t.Fatalf("block %v lost migrating to %s", blk, alloc)
			}
		}
		// The cache keeps operating under the new policy.
		get(c, id(100), 1)
		get(c, id(3), 1)
		resident = c.GlobalOrder()
		c.CheckInvariants()
	}
	if !c.Peek(id(3)).Dirty {
		t.Error("dirty flag lost across migrations")
	}
	if got := c.Stats().AllocSwaps; got < int64(len(hops)-1) {
		t.Errorf("AllocSwaps = %d after %d hops", got, len(hops))
	}
}

// TestSetAllocDropsPlaceholders: placeholders encode the old policy's
// overrule history and must not survive a swap.
func TestSetAllocDropsPlaceholders(t *testing.T) {
	c, _ := setupOverruleWithPlaceholder(t)
	if c.Placeholders() == 0 {
		t.Fatal("setup: no placeholder")
	}
	if err := c.SetAlloc(cache.ARC); err != nil {
		t.Fatal(err)
	}
	if c.Placeholders() != 0 {
		t.Errorf("%d placeholders survived the swap", c.Placeholders())
	}
	c.CheckInvariants()
	// And swapping back re-arms the placeholder machinery.
	if err := c.SetAlloc(cache.LRUSP); err != nil {
		t.Fatal(err)
	}
	get(c, id(50), 1)
	c.CheckInvariants()
}

// setupOverruleWithPlaceholder builds a full LRU-SP cache holding one
// placeholder from a manager overrule.
func setupOverruleWithPlaceholder(t *testing.T) (*cache.Cache, *mockRepl) {
	t.Helper()
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 3, Alloc: cache.LRUSP}, m)
	for i := 0; i < 3; i++ {
		get(c, id(i), 1)
	}
	m.pick = func(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
		if b := c.Peek(id(2)); b != nil && b != candidate {
			return b
		}
		return candidate
	}
	get(c, id(3), 1)
	m.pick = nil
	return c, m
}

// TestSetAllocErrors pins the error contract: unknown names are
// ErrUnknownAlloc (errors.Is-able), two-level policies need a Replacer,
// and a same-name swap is a free no-op.
func TestSetAllocErrors(t *testing.T) {
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	if err := c.SetAlloc("no-such"); !errors.Is(err, cache.ErrUnknownAlloc) {
		t.Errorf("SetAlloc(unknown) = %v, want ErrUnknownAlloc", err)
	}
	if err := c.SetAlloc(cache.ARC); err == nil {
		t.Error("SetAlloc(arc) on a Replacer-less cache did not fail")
	}
	if c.Alloc() != cache.GlobalLRU {
		t.Errorf("failed swaps changed the policy to %s", c.Alloc())
	}
	if err := c.SetAlloc(cache.GlobalLRU); err != nil {
		t.Errorf("same-name swap: %v", err)
	}
	if got := c.Stats().AllocSwaps; got != 0 {
		t.Errorf("AllocSwaps = %d after only failed/no-op swaps, want 0", got)
	}
}

// TestARCOverruleInterplay: a manager overrule under ARC transfers the
// eviction and the ghost to the chosen block, and the structures stay
// consistent.
func TestARCOverruleInterplay(t *testing.T) {
	c, m := setupOverrule(t, cache.ARC)
	hit, _ := get(c, id(3), 1) // miss: candidate overruled with block 2
	if hit {
		t.Fatal("expected miss")
	}
	c.CheckInvariants()
	if c.Peek(id(2)) != nil {
		t.Error("overrule target still cached")
	}
	found := false
	for _, e := range m.events {
		if e == "gone:f1:2" {
			found = true
		}
	}
	if !found {
		t.Error("no block_gone for the overruled choice")
	}
	// The evicted block's ghost is live: missing it again readmits it
	// without disturbing invariants.
	get(c, id(2), 1)
	c.CheckInvariants()
}
