package cache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Alloc names a registered allocation policy. It is a string type so the
// one parser/printer pair (ParseAlloc / String) serves every surface that
// names a policy — flags, the set_alloc wire op, experiment specs, stats
// labels — and so the zero value can keep meaning "the default"
// (GlobalLRU, as it did when Alloc was an integer enum).
type Alloc string

// The built-in allocation policies. The first four match the paper's
// Section 6 comparisons; ARC and AWRP are the adaptive extensions.
const (
	GlobalLRU Alloc = "global-lru" // plain global LRU, managers never consulted
	LRUSP     Alloc = "lru-sp"     // LRU with swapping and placeholders (the paper's policy)
	LRUS      Alloc = "lru-s"      // swapping but no placeholders ("unprotected")
	AllocLRU  Alloc = "alloc-lru"  // two-level over plain LRU: no swap, no placeholder
	ARC       Alloc = "arc"        // adaptive replacement: T1/T2 + ghost lists
	AWRP      Alloc = "awrp"       // adaptive weight ranking: frequency/recency score
)

// norm maps the zero value to the default policy. The integer enum's zero
// value was GlobalLRU; a Config or RunSpec built without an Alloc must
// keep meaning exactly that.
func (a Alloc) norm() Alloc {
	if a == "" {
		return GlobalLRU
	}
	return a
}

func (a Alloc) String() string { return string(a.norm()) }

// ErrUnknownAlloc reports a policy name absent from the registry. The
// server maps it to its own distinct wire status; errors.Is works through
// wrapping.
var ErrUnknownAlloc = errors.New("cache: unknown allocation policy")

// AllocPolicy is the allocation seam of two-level replacement: the
// pluggable strategy that picks which buffer the kernel takes on a miss,
// fed by upcalls at every insert, hit and removal so it can maintain its
// own structures.
//
// Contract:
//
//   - The Cache owns the global recency list unconditionally (linkMRU on
//     every insert and hit); utility walks (dirty scans, owner sweeps,
//     invariant checks) depend on it. A policy maintains only its own
//     extra state, threaded through Buf.pol — never heap-allocated per
//     block, preserving the arena discipline.
//   - Inserted(b) runs after b is linked and counted; Touched(b) after a
//     hit moved b to the global MRU end; Removed(b) just before b leaves
//     the cache (eviction, invalidation, owner sweep alike — the policy
//     must unlink any intrusive state unconditionally).
//   - Victim picks the candidate for missing. It must return a cached,
//     preferably non-busy buffer, and must never return nil while the
//     cache is non-empty (fall back to Cache.lruScan). It is only called
//     when the cache is full and no placeholder redirected the choice.
//   - Overruled(candidate, chosen) runs when a manager overruled the
//     candidate; the policy mirrors whatever position exchange its
//     structures need (LRU-SP swaps global list slots; ARC swaps T1/T2
//     slots and re-aims its pending ghost).
//   - TwoLevel gates manager consultation; Placeholders gates the
//     placeholder protocol (construction and candidate redirection).
type AllocPolicy interface {
	Name() Alloc
	Inserted(b *Buf)
	Touched(b *Buf)
	Removed(b *Buf)
	Victim(missing BlockID, now sim.Time) *Buf
	Overruled(candidate, chosen *Buf)
	TwoLevel() bool
	Placeholders() bool
}

// polNode is the allocation policy's per-buffer state, embedded in Buf so
// policies never allocate per block: intrusive T1/T2 linkage for ARC,
// frequency and recency for AWRP. Reset wholesale when a buffer recycles
// and when the cache migrates to a different policy.
type polNode struct {
	prev, next *Buf  // ARC: resident-list linkage (nil when unlinked)
	list       uint8 // ARC: which resident list (arcInT1 / arcInT2)
	freq       int32 // AWRP: access count
	lastUse    int64 // AWRP: policy-local logical clock at last access
}

// allocFactories is the policy registry. Populated at init time;
// read-only afterwards, so concurrent ParseAlloc/New/SetAlloc need no
// lock.
var allocFactories = map[Alloc]func(*Cache) AllocPolicy{}

// RegisterAlloc adds a policy to the registry under its name. Built-ins
// register at init; external packages may add their own before building
// caches. Re-registering a name panics — a silent override would
// desynchronize every surface that already parsed it.
func RegisterAlloc(name Alloc, factory func(*Cache) AllocPolicy) {
	name = name.norm()
	if _, dup := allocFactories[name]; dup {
		panic(fmt.Sprintf("cache: allocation policy %q registered twice", name))
	}
	allocFactories[name] = factory
}

// ParseAlloc resolves a policy name to its registered Alloc. This is the
// one parser behind every name-accepting surface; unknown names (and the
// empty string — wire callers must be explicit) return ErrUnknownAlloc.
func ParseAlloc(s string) (Alloc, error) {
	if _, ok := allocFactories[Alloc(s)]; !ok {
		return "", fmt.Errorf("%w %q (have %v)", ErrUnknownAlloc, s, AllocNames())
	}
	return Alloc(s), nil
}

// AllocNames lists the registered policies, sorted for stable help text
// and error messages.
func AllocNames() []Alloc {
	names := make([]Alloc, 0, len(allocFactories))
	for n := range allocFactories {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

func init() {
	for _, e := range []struct {
		name         Alloc
		swap, ph, tl bool
	}{
		{GlobalLRU, false, false, false},
		{LRUSP, true, true, true},
		{LRUS, true, false, true},
		{AllocLRU, false, false, true},
	} {
		e := e
		RegisterAlloc(e.name, func(c *Cache) AllocPolicy {
			return &lruPolicy{c: c, name: e.name, swap: e.swap, ph: e.ph, twoLevel: e.tl}
		})
	}
	RegisterAlloc(ARC, func(c *Cache) AllocPolicy { return newARCPolicy(c) })
	RegisterAlloc(AWRP, func(c *Cache) AllocPolicy { return newAWRPPolicy(c) })
}

// lruPolicy is the whole classic family — GlobalLRU, LRU-SP, LRU-S and
// ALLOC-LRU — over the Cache's own global recency list. The list is
// maintained by the Cache for every policy, so this policy stores nothing
// per block; the four variants differ only in the flags that gate
// manager consultation, position swapping and placeholders, exactly as
// the retired enum methods did.
type lruPolicy struct {
	c        *Cache
	name     Alloc
	swap     bool
	ph       bool
	twoLevel bool
}

func (p *lruPolicy) Name() Alloc        { return p.name }
func (p *lruPolicy) Inserted(b *Buf)    {}
func (p *lruPolicy) Touched(b *Buf)     {}
func (p *lruPolicy) Removed(b *Buf)     {}
func (p *lruPolicy) TwoLevel() bool     { return p.twoLevel }
func (p *lruPolicy) Placeholders() bool { return p.ph }

func (p *lruPolicy) Victim(missing BlockID, now sim.Time) *Buf {
	return p.c.lruScan(now)
}

func (p *lruPolicy) Overruled(candidate, chosen *Buf) {
	if p.swap {
		p.c.swapPositions(candidate, chosen)
	}
}

// newAllocPolicy builds the policy for cfg.Alloc; construction-time
// resolution panics on an unknown name (matching the old enum, where an
// out-of-range value could not name behavior at all).
func (c *Cache) newAllocPolicy(name Alloc) AllocPolicy {
	f := allocFactories[name.norm()]
	if f == nil {
		panic(fmt.Sprintf("cache: unknown allocation policy %q", name))
	}
	return f(c)
}

// SetAlloc hot-swaps the allocation policy on a live cache: a
// migrate-in-place transition that relinks every resident block into the
// new policy's structures and drops state only the old policy could
// interpret.
//
// Transition rule: placeholders record *policy decisions* (LRU-SP
// overrules), so they are all dropped — the new policy starts with a
// clean decision record. Resident blocks, their dirty state, their data
// slots and their ACM level linkage are untouched. The global list is
// walked LRU to MRU and each block re-announced through Inserted, so a
// recency-based policy inherits the existing order (ARC starts with
// everything in T1, its cold-start state; AWRP starts with frequency 1
// and recency in list order).
func (c *Cache) SetAlloc(name Alloc) error {
	name = name.norm()
	f := allocFactories[name]
	if f == nil {
		return fmt.Errorf("%w %q (have %v)", ErrUnknownAlloc, string(name), AllocNames())
	}
	if name == c.pol.Name() {
		return nil
	}
	np := f(c)
	if c.repl == nil && np.TwoLevel() {
		return fmt.Errorf("cache: policy %q requires a Replacer (cache built without one)", name)
	}
	// Drop every placeholder: they encode the old policy's overrule
	// history. Collect-then-delete — forEach must not see mutation.
	var stale []*placeholder
	c.ph.forEach(func(k key, ph *placeholder) { stale = append(stale, ph) })
	for _, ph := range stale {
		c.dropPlaceholder(ph)
	}
	if np.Placeholders() {
		// Swapping into a placeholder policy on a cache built without
		// one: pre-size the (now empty) index so steady-state placeholder
		// churn stays rehash-free, as New would have. reserve no-ops when
		// the table is already big enough.
		c.ph.reserve(c.cfg.Capacity)
	}
	// Relink residents LRU→MRU so order-sensitive policies inherit the
	// global recency order.
	for b := c.head.gnext; b != c.tail; b = b.gnext {
		b.pol = polNode{}
		np.Inserted(b)
	}
	c.pol = np
	c.cfg.Alloc = name
	c.stats.AllocSwaps++
	return nil
}
