package cache_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/fs"
)

// FuzzCacheOps drives the cache with an opcode stream: each byte pair is
// (op, arg). Invariants must hold at every step regardless of input.
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{3, 5, 0, 9, 1, 9, 3, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &mockRepl{managed: map[int]bool{1: true}}
		// The manager overrules with its most recent block when arg is
		// odd, exercising swap/placeholder paths.
		c := cache.New(cache.Config{Capacity: 8, Alloc: cache.LRUSP}, m)
		var lastManaged *cache.Buf
		m.pick = func(cand *cache.Buf, missing cache.BlockID) *cache.Buf {
			if missing.Num%2 == 1 && lastManaged != nil && lastManaged != cand &&
				c.Peek(lastManaged.ID) == lastManaged && !lastManaged.Busy(0) {
				return lastManaged
			}
			return cand
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, int32(data[i+1]%24)
			blk := cache.BlockID{File: fs.FileID(1 + arg%3), Num: arg}
			switch op {
			case 0: // read
				if b := c.Lookup(blk, 0, 8192); b == nil {
					b, _ := c.Insert(blk, 1, 0)
					b.Referenced = true
					lastManaged = b
				}
			case 1: // dirty
				if b := c.Peek(blk); b != nil {
					c.MarkDirty(b, 0)
				}
			case 2: // invalidate a file
				c.InvalidateFile(fs.FileID(1 + arg%3))
				if lastManaged != nil && c.Peek(lastManaged.ID) != lastManaged {
					lastManaged = nil
				}
			case 3: // clean sweep
				for _, b := range c.DirtyOlderThan(1 << 40) {
					c.Clean(b)
				}
			}
			if lastManaged != nil && c.Peek(lastManaged.ID) != lastManaged {
				lastManaged = nil
			}
		}
		c.CheckInvariants()
		if c.Len() > c.Capacity() {
			t.Fatal("capacity exceeded")
		}
	})
}
