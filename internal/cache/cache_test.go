package cache_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/fs"
	"repro/internal/sim"
)

// mockRepl is a scriptable ACM for driving the two-level protocol.
type mockRepl struct {
	managed map[int]bool
	// pick chooses the replacement; nil accepts the candidate.
	pick   func(candidate *cache.Buf, missing cache.BlockID) *cache.Buf
	events []string
}

func (m *mockRepl) NewBlock(b *cache.Buf)  { m.events = append(m.events, "new:"+b.ID.String()) }
func (m *mockRepl) BlockGone(b *cache.Buf) { m.events = append(m.events, "gone:"+b.ID.String()) }
func (m *mockRepl) BlockAccessed(b *cache.Buf, off, size int) {
	m.events = append(m.events, "acc:"+b.ID.String())
}
func (m *mockRepl) ReplaceBlock(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
	m.events = append(m.events, "repl:"+candidate.ID.String())
	if m.pick == nil {
		return candidate
	}
	return m.pick(candidate, missing)
}
func (m *mockRepl) PlaceholderUsed(missing cache.BlockID, pointed *cache.Buf) {
	m.events = append(m.events, fmt.Sprintf("phused:%v->%v", missing, pointed.ID))
}
func (m *mockRepl) Managed(owner int) bool { return m.managed[owner] }

func id(n int) cache.BlockID { return cache.BlockID{File: 1, Num: int32(n)} }

// get emulates the core's read path: lookup, then insert on miss.
func get(c *cache.Cache, blk cache.BlockID, owner int) (hit bool, victim *cache.Victim) {
	if b := c.Lookup(blk, 0, 8192); b != nil {
		return true, nil
	}
	_, v := c.Insert(blk, owner, 0)
	return false, v
}

func TestGlobalLRUBasics(t *testing.T) {
	c := cache.New(cache.Config{Capacity: 3, Alloc: cache.GlobalLRU}, nil)
	for i := 0; i < 3; i++ {
		if hit, _ := get(c, id(i), cache.NoOwner); hit {
			t.Fatalf("unexpected hit on first touch of %d", i)
		}
	}
	// Touch 0 so it becomes MRU; inserting 3 must evict 1.
	if hit, _ := get(c, id(0), cache.NoOwner); !hit {
		t.Fatal("expected hit on block 0")
	}
	_, v := get(c, id(3), cache.NoOwner)
	if v == nil || v.ID != id(1) {
		t.Fatalf("victim = %+v, want block 1", v)
	}
	order := c.GlobalOrder()
	want := []cache.BlockID{id(2), id(0), id(3)}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	c.CheckInvariants()
}

func TestInsertCachedPanics(t *testing.T) {
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	c.Insert(id(1), cache.NoOwner, 0)
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	c.Insert(id(1), cache.NoOwner, 0)
}

func TestNewRequiresReplacerForTwoLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LRUSP without replacer did not panic")
		}
	}()
	cache.New(cache.Config{Capacity: 2, Alloc: cache.LRUSP}, nil)
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	cache.New(cache.Config{Capacity: 0, Alloc: cache.GlobalLRU}, nil)
}

func TestAllocStrings(t *testing.T) {
	// Every registered policy round-trips through the one shared
	// parser/printer pair; the canonical spellings are pinned so wire
	// protocols and flags stay stable.
	want := map[cache.Alloc]string{
		cache.GlobalLRU: "global-lru",
		cache.LRUSP:     "lru-sp",
		cache.LRUS:      "lru-s",
		cache.AllocLRU:  "alloc-lru",
		cache.ARC:       "arc",
		cache.AWRP:      "awrp",
	}
	names := cache.AllocNames()
	if len(names) != len(want) {
		t.Errorf("registry has %d policies %v, want %d", len(names), names, len(want))
	}
	for _, a := range names {
		got, err := cache.ParseAlloc(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlloc(%q.String()) = %v, %v; want round-trip", a, got, err)
		}
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%v.String() = %q, want %q", a, a.String(), s)
		}
	}
	if _, err := cache.ParseAlloc("no-such-policy"); !errors.Is(err, cache.ErrUnknownAlloc) {
		t.Errorf("ParseAlloc(unknown) = %v, want ErrUnknownAlloc", err)
	}
	if _, err := cache.ParseAlloc(""); !errors.Is(err, cache.ErrUnknownAlloc) {
		t.Errorf("ParseAlloc(\"\") = %v, want ErrUnknownAlloc (wire callers must be explicit)", err)
	}
}

func TestManagerConsultedOnlyWhenManaged(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{7: true}}
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.LRUSP}, m)
	get(c, id(0), 3) // unmanaged owner
	get(c, id(1), 7) // managed owner
	if len(m.events) != 1 || m.events[0] != "new:f1:1" {
		t.Fatalf("events = %v, want only new for managed block", m.events)
	}
	// Miss: candidate is block 0 (unmanaged) — no consultation.
	get(c, id(2), 7)
	for _, e := range m.events {
		if e == "repl:f1:0" {
			t.Error("unmanaged candidate was consulted")
		}
	}
}

// setupOverrule builds a 3-block cache owned by manager 1 where the manager
// always overrules the candidate with block 2 (its most recent block).
func setupOverrule(t *testing.T, alloc cache.Alloc) (*cache.Cache, *mockRepl) {
	t.Helper()
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 3, Alloc: alloc}, m)
	for i := 0; i < 3; i++ {
		get(c, id(i), 1)
	}
	m.pick = func(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
		if b := c.Peek(id(2)); b != nil && b != candidate {
			return b
		}
		return candidate
	}
	return c, m
}

func TestOverruleSwapsUnderLRUSP(t *testing.T) {
	c, _ := setupOverrule(t, cache.LRUSP)
	// Miss on 3: candidate 0, manager gives up 2 instead. Swapping puts
	// 0 where 2 was (MRU-ish); placeholder for 2 points at 0.
	_, v := get(c, id(3), 1)
	if v.ID != id(2) {
		t.Fatalf("victim %v, want block 2", v.ID)
	}
	order := c.GlobalOrder()
	// Before: [0 1 2]. Swap 0 and 2: [2 1 0] then evict 2 -> [1 0], then
	// insert 3 at MRU -> [1 0 3].
	want := []cache.BlockID{id(1), id(0), id(3)}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (swap missing?)", order, want)
		}
	}
	if c.Placeholders() != 1 {
		t.Errorf("placeholders = %d, want 1", c.Placeholders())
	}
	if st := c.Stats(); st.Overrules != 1 {
		t.Errorf("overrules = %d, want 1", st.Overrules)
	}
	c.CheckInvariants()
}

func TestOverruleNoSwapUnderAllocLRU(t *testing.T) {
	c, _ := setupOverrule(t, cache.AllocLRU)
	_, v := get(c, id(3), 1)
	if v.ID != id(2) {
		t.Fatalf("victim %v, want block 2", v.ID)
	}
	// No swap: 0 stays at the LRU end. [0 1] + 3 -> [0 1 3].
	order := c.GlobalOrder()
	want := []cache.BlockID{id(0), id(1), id(3)}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (unexpected swap)", order, want)
		}
	}
	if c.Placeholders() != 0 {
		t.Errorf("ALLOC-LRU built %d placeholders", c.Placeholders())
	}
}

func TestLRUSSwapsButNoPlaceholder(t *testing.T) {
	c, _ := setupOverrule(t, cache.LRUS)
	get(c, id(3), 1)
	order := c.GlobalOrder()
	want := []cache.BlockID{id(1), id(0), id(3)}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Placeholders() != 0 {
		t.Errorf("LRU-S built %d placeholders", c.Placeholders())
	}
}

func TestPlaceholderRedirectsCandidate(t *testing.T) {
	c, m := setupOverrule(t, cache.LRUSP)
	get(c, id(3), 1) // overrule: 2 evicted, placeholder 2 -> block 0
	m.pick = nil     // manager now accepts candidates
	// Miss on 2 again: placeholder makes block 0 the candidate even
	// though the LRU end is block 1.
	_, v := get(c, id(2), 1)
	if v.ID != id(0) {
		t.Fatalf("victim %v, want block 0 via placeholder", v.ID)
	}
	found := false
	for _, e := range m.events {
		if e == "phused:f1:2->f1:0" {
			found = true
		}
	}
	if !found {
		t.Errorf("PlaceholderUsed not signalled; events %v", m.events)
	}
	if st := c.Stats(); st.PlaceholderHits != 1 {
		t.Errorf("PlaceholderHits = %d, want 1", st.PlaceholderHits)
	}
	if os := c.Owner(1); os.Mistakes != 1 || os.Decisions != 1 {
		t.Errorf("owner stats = %+v, want 1 decision 1 mistake", os)
	}
	if c.Placeholders() != 0 {
		t.Errorf("placeholder not consumed")
	}
	c.CheckInvariants()
}

func TestPlaceholderDiesWithPointee(t *testing.T) {
	c, m := setupOverrule(t, cache.LRUSP)
	get(c, id(3), 1) // placeholder 2 -> block 0
	m.pick = nil
	// Evict block 0 by normal pressure: after the swap the order is
	// [1 0 3]; miss on 4 evicts 1, miss on 5 evicts 0.
	get(c, id(4), 1)
	get(c, id(5), 1)
	if b := c.Peek(id(0)); b != nil {
		t.Fatal("block 0 still cached; test setup wrong")
	}
	if c.Placeholders() != 0 {
		t.Errorf("placeholder survived its pointee")
	}
	// A miss on 2 now takes the plain LRU path without PlaceholderUsed.
	before := len(m.events)
	get(c, id(2), 1)
	for _, e := range m.events[before:] {
		if e == "phused:f1:2->f1:0" {
			t.Error("stale placeholder used")
		}
	}
	c.CheckInvariants()
}

func TestPlaceholderConsumedWhenCacheNotFull(t *testing.T) {
	c, m := setupOverrule(t, cache.LRUSP)
	get(c, id(3), 1) // placeholder 2 -> 0
	m.pick = nil
	// Free a slot, then re-read 2: no eviction, but the placeholder must
	// still be consumed and the mistake charged.
	c.InvalidateFile(99) // no-op, different file
	n := c.InvalidateFile(1)
	if n != 3 {
		t.Fatalf("invalidated %d, want 3", n)
	}
	// All placeholders died with their pointees.
	if c.Placeholders() != 0 {
		t.Fatal("placeholders survived invalidation")
	}
	// Rebuild a placeholder scenario with spare room.
	get(c, id(10), 1)
	get(c, id(11), 1)
	get(c, id(12), 1)
	m.pick = func(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
		if b := c.Peek(id(12)); b != nil && b != candidate {
			return b
		}
		return candidate
	}
	get(c, id(13), 1) // evict 12, placeholder 12 -> candidate
	m.pick = nil
	c.InvalidateFile(1) // make room... and kill placeholders again
	if c.Placeholders() != 0 {
		t.Fatal("placeholder should have died")
	}
	c.CheckInvariants()
}

func TestMistakeChargedWithoutEviction(t *testing.T) {
	// Build a placeholder, then open free slots (deleting a third,
	// unrelated file) so the pointee and the placeholder survive, and
	// re-read the overruled block: the mistake must be charged with no
	// eviction.
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 3, Alloc: cache.LRUSP}, m)
	pointeeBlk := cache.BlockID{File: 2, Num: 0}
	fill0 := cache.BlockID{File: 3, Num: 0}
	overruled := id(1) // file 1
	get(c, pointeeBlk, 1)
	get(c, fill0, 1)
	get(c, overruled, 1)
	m.pick = func(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
		if b := c.Peek(overruled); b != nil && b != candidate {
			return b
		}
		return candidate
	}
	fill1 := cache.BlockID{File: 3, Num: 1}
	get(c, fill1, 1) // candidate pointeeBlk; manager gives up overruled
	if c.Placeholders() != 1 {
		t.Fatalf("placeholders = %d, want 1", c.Placeholders())
	}
	m.pick = nil
	c.InvalidateFile(3) // frees fill blocks; pointee (file 2) survives
	if c.Placeholders() != 1 {
		t.Fatalf("placeholder should survive, pointee still cached")
	}
	evBefore := c.Stats().Evictions
	get(c, overruled, 1) // free slot available: no eviction, placeholder consumed
	if c.Stats().Evictions != evBefore {
		t.Error("unexpected eviction with free slots")
	}
	if c.Placeholders() != 0 {
		t.Error("placeholder not consumed on insert into free slot")
	}
	if os := c.Owner(1); os.Mistakes != 1 {
		t.Errorf("mistakes = %d, want 1", os.Mistakes)
	}
	c.CheckInvariants()
}

func TestInvalidateFileDropsItsPlaceholders(t *testing.T) {
	// Deleting a file also deletes placeholders *for* that file's
	// blocks, even when the pointee belongs to another file.
	c, _ := setupOverrule(t, cache.LRUSP)
	get(c, id(3), 1) // placeholder for f1:2 -> block f1:0
	if c.Placeholders() != 1 {
		t.Fatal("setup: expected one placeholder")
	}
	c.InvalidateFile(1)
	if c.Placeholders() != 0 {
		t.Error("placeholder for removed file survived")
	}
	c.CheckInvariants()
}

func TestBusyBlocksSkipped(t *testing.T) {
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	b0, _ := c.Insert(id(0), cache.NoOwner, 0)
	b0.ValidAt = 100 * sim.Millisecond // I/O in flight
	c.Insert(id(1), cache.NoOwner, 0)
	// At t=0, block 0 is busy: the victim must be block 1 even though 0
	// is at the LRU end.
	_, v := c.Insert(id(2), cache.NoOwner, 0)
	if v.ID != id(1) {
		t.Errorf("victim %v, want busy block skipped (block 1)", v.ID)
	}
	// After the I/O completes block 0 is fair game.
	_, v = c.Insert(id(3), cache.NoOwner, 200*sim.Millisecond)
	if v.ID != id(0) {
		t.Errorf("victim %v, want block 0 once idle", v.ID)
	}
}

func TestValidateAlternativePanics(t *testing.T) {
	cases := []struct {
		name string
		pick func(c *cache.Cache) func(*cache.Buf, cache.BlockID) *cache.Buf
	}{
		{"wrong owner", func(c *cache.Cache) func(*cache.Buf, cache.BlockID) *cache.Buf {
			return func(cand *cache.Buf, _ cache.BlockID) *cache.Buf {
				return c.Peek(id(9)) // owned by 2
			}
		}},
		{"uncached", func(c *cache.Cache) func(*cache.Buf, cache.BlockID) *cache.Buf {
			return func(cand *cache.Buf, _ cache.BlockID) *cache.Buf {
				return &cache.Buf{ID: id(42), Owner: cand.Owner}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &mockRepl{managed: map[int]bool{1: true, 2: true}}
			c := cache.New(cache.Config{Capacity: 3, Alloc: cache.LRUSP}, m)
			get(c, id(0), 1)
			get(c, id(1), 1)
			get(c, id(9), 2)
			m.pick = tc.pick(c)
			defer func() {
				if recover() == nil {
					t.Error("bad alternative did not panic")
				}
			}()
			get(c, id(5), 1)
		})
	}
}

func TestRevocation(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{
		Capacity: 3,
		Alloc:    cache.LRUSP,
		Revoke:   cache.RevokeConfig{Enabled: true, MinDecisions: 2, MistakeRatio: 0.5},
	}, m)
	// A maximally foolish manager: whenever consulted it gives up the
	// hot block that is about to be re-read, while the kernel's
	// candidate (a cold streaming block never touched again) was the
	// right choice. Every overrule is caught by a placeholder before
	// the kept block is referenced again.
	hot := id(1000)
	m.pick = func(cand *cache.Buf, missing cache.BlockID) *cache.Buf {
		if b := c.Peek(hot); b != nil && b != cand && !b.Busy(0) {
			return b
		}
		return cand
	}
	for i := 0; i < 30 && !c.Revoked(1); i++ {
		get(c, id(i), 1) // cold stream
		get(c, hot, 1)   // hot block, re-read constantly
	}
	if !c.Revoked(1) {
		os := c.Owner(1)
		t.Fatalf("foolish manager not revoked (decisions %d, mistakes %d)", os.Decisions, os.Mistakes)
	}
	if c.Stats().Revocations != 1 {
		t.Errorf("Revocations = %d, want 1", c.Stats().Revocations)
	}
	// After revocation the manager is no longer consulted.
	before := len(m.events)
	for i := 0; i < 6; i++ {
		get(c, id(i), 1)
	}
	for _, e := range m.events[before:] {
		if len(e) >= 4 && e[:4] == "repl" {
			t.Error("revoked manager still consulted")
		}
	}
	c.CheckInvariants()
}

func TestDirtyTracking(t *testing.T) {
	c := cache.New(cache.Config{Capacity: 4, Alloc: cache.GlobalLRU}, nil)
	b0, _ := c.Insert(id(0), cache.NoOwner, 0)
	b1, _ := c.Insert(id(1), cache.NoOwner, 0)
	c.MarkDirty(b0, 10*sim.Second)
	c.MarkDirty(b0, 20*sim.Second) // second write must not bump DirtyAt
	c.MarkDirty(b1, 40*sim.Second)
	old := c.DirtyOlderThan(30 * sim.Second)
	if len(old) != 1 || old[0].ID != id(0) {
		t.Errorf("DirtyOlderThan found %d blocks, want just block 0", len(old))
	}
	c.Clean(b0)
	if len(c.DirtyOlderThan(100*sim.Second)) != 1 {
		t.Error("Clean did not clear dirty state")
	}
	// Evicting a dirty block reports it in the victim.
	c.Insert(id(2), cache.NoOwner, 0)
	c.Insert(id(3), cache.NoOwner, 0)
	_, v := c.Insert(id(4), cache.NoOwner, 0) // evicts 0 (clean)
	if v.Dirty {
		t.Error("clean victim reported dirty")
	}
	_, v = c.Insert(id(5), cache.NoOwner, 0) // evicts 1 (dirty)
	if !v.Dirty || v.ID != id(1) {
		t.Errorf("victim %+v, want dirty block 1", v)
	}
}

func TestInvalidateFile(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 6, Alloc: cache.LRUSP}, m)
	for i := 0; i < 3; i++ {
		get(c, cache.BlockID{File: 5, Num: int32(i)}, 1)
		get(c, cache.BlockID{File: 6, Num: int32(i)}, 1)
	}
	n := c.InvalidateFile(5)
	if n != 3 || c.Len() != 3 {
		t.Errorf("invalidated %d (len %d), want 3 (3)", n, c.Len())
	}
	gone := 0
	for _, e := range m.events {
		if len(e) >= 5 && e[:5] == "gone:" {
			gone++
		}
	}
	if gone != 3 {
		t.Errorf("BlockGone called %d times, want 3", gone)
	}
	c.CheckInvariants()
}

// TestObliviousEqualsGlobalLRU verifies the paper's first allocation
// criterion by construction: a process that never overrules sees exactly
// the global LRU policy — identical miss counts and identical eviction
// order on any trace.
func TestObliviousEqualsGlobalLRU(t *testing.T) {
	trace := func(seed uint64, n int) []cache.BlockID {
		rng := sim.NewRand(seed)
		ids := make([]cache.BlockID, n)
		for i := range ids {
			ids[i] = cache.BlockID{File: fs.FileID(1 + rng.Intn(3)), Num: int32(rng.Intn(40))}
		}
		return ids
	}
	run := func(alloc cache.Alloc, ids []cache.BlockID) (int64, []cache.BlockID) {
		var repl cache.Replacer
		if alloc.String() != cache.GlobalLRU.String() {
			// Managed but always accepting the kernel's choice.
			repl = &mockRepl{managed: map[int]bool{1: true}}
		}
		c := cache.New(cache.Config{Capacity: 20, Alloc: alloc}, repl)
		var evictions []cache.BlockID
		for _, blk := range ids {
			if b := c.Lookup(blk, 0, 8192); b != nil {
				continue
			}
			_, v := c.Insert(blk, 1, 0)
			if v != nil {
				evictions = append(evictions, v.ID)
			}
		}
		c.CheckInvariants()
		return c.Stats().Misses, evictions
	}
	f := func(seed uint64) bool {
		ids := trace(seed, 2000)
		for _, alloc := range []cache.Alloc{cache.LRUSP, cache.LRUS, cache.AllocLRU} {
			mBase, evBase := run(cache.GlobalLRU, ids)
			mAlt, evAlt := run(alloc, ids)
			if mBase != mAlt || len(evBase) != len(evAlt) {
				return false
			}
			for i := range evBase {
				if evBase[i] != evAlt[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickInvariants pounds the cache with random managed operations,
// including overruling managers, and checks structural invariants
// throughout.
func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		m := &mockRepl{managed: map[int]bool{1: true, 2: true}}
		c := cache.New(cache.Config{Capacity: 15, Alloc: cache.LRUSP}, m)
		// Manager 1 overrules randomly with one of its own blocks.
		m.pick = func(cand *cache.Buf, missing cache.BlockID) *cache.Buf {
			if cand.Owner != 1 || rng.Intn(2) == 0 {
				return cand
			}
			// Scan for any same-owner block.
			for _, bid := range c.GlobalOrder() {
				b := c.Peek(bid)
				if b.Owner == cand.Owner && !b.Busy(0) && rng.Intn(3) == 0 {
					return b
				}
			}
			return cand
		}
		for i := 0; i < 3000; i++ {
			owner := 1 + rng.Intn(2)
			blk := cache.BlockID{File: fs.FileID(owner), Num: int32(rng.Intn(30))}
			if b := c.Lookup(blk, 0, 8192); b == nil {
				c.Insert(blk, owner, 0)
			}
			if i%500 == 499 {
				c.CheckInvariants()
			}
			if rng.Intn(200) == 0 {
				c.InvalidateFile(fs.FileID(1 + rng.Intn(2)))
				c.CheckInvariants()
			}
		}
		c.CheckInvariants()
		return c.Len() <= c.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBlockIDString(t *testing.T) {
	if got := id(7).String(); got != "f1:7" {
		t.Errorf("String = %q", got)
	}
}

func TestAllocAccessorAndZeroValue(t *testing.T) {
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	if c.Alloc() != cache.GlobalLRU {
		t.Error("Alloc accessor wrong")
	}
	// The zero value means the default policy, as it did when Alloc was
	// an integer enum with GlobalLRU = 0.
	z := cache.New(cache.Config{Capacity: 2}, nil)
	if z.Alloc() != cache.GlobalLRU {
		t.Errorf("zero-value Alloc built %q, want global-lru", z.Alloc())
	}
	if got := cache.Alloc("").String(); got != "global-lru" {
		t.Errorf("zero Alloc String = %q, want global-lru", got)
	}
}

func TestLruScanAllBusyFallback(t *testing.T) {
	// Every buffer mid-I/O: the scan must still yield a victim rather
	// than failing.
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	b0, _ := c.Insert(id(0), cache.NoOwner, 0)
	b1, _ := c.Insert(id(1), cache.NoOwner, 0)
	b0.ValidAt, b1.ValidAt = 1<<40, 1<<40
	_, v := c.Insert(id(2), cache.NoOwner, 0)
	if v == nil {
		t.Fatal("no victim with an all-busy cache")
	}
	c.CheckInvariants()
}

func TestRecordDecisionSkipsNoOwner(t *testing.T) {
	// Structural: decisions and mistakes attributed to NoOwner are
	// dropped rather than creating a phantom owner record.
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	if c.Revoked(cache.NoOwner) {
		t.Error("NoOwner revoked")
	}
	if c.Owner(5).Decisions != 0 {
		t.Error("fresh owner has decisions")
	}
}

func TestOwnerNegativeIDsShareScratchRecord(t *testing.T) {
	// Negative ids all resolve to one persistent scratch record, so
	// counters recorded against NoOwner accumulate instead of vanishing
	// into a throwaway allocation.
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.GlobalLRU}, nil)
	c.Owner(cache.NoOwner).Mistakes++
	if got := c.Owner(-7).Mistakes; got != 1 {
		t.Errorf("scratch Mistakes = %d, want 1", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Owner(cache.NoOwner).Decisions++
	})
	if allocs != 0 {
		t.Errorf("Owner(NoOwner) allocated %.2f/op, want 0", allocs)
	}
}

func TestVindicationCounted(t *testing.T) {
	c, m := setupOverrule(t, cache.LRUSP)
	get(c, id(3), 1) // overrule: placeholder for 2 -> block 0
	m.pick = nil
	// Touch the kept block (0): the manager's decision is vindicated.
	if hit, _ := get(c, id(0), 1); !hit {
		t.Fatal("expected hit on kept block")
	}
	st := c.Stats()
	if st.Vindicated != 1 {
		t.Errorf("Vindicated = %d, want 1", st.Vindicated)
	}
	if c.Placeholders() != 0 {
		t.Error("placeholder survived vindication")
	}
	// The overruled block's return is now an ordinary miss: no mistake.
	get(c, id(2), 1)
	if os := c.Owner(1); os.Mistakes != 0 {
		t.Errorf("Mistakes = %d after vindication, want 0", os.Mistakes)
	}
	c.CheckInvariants()
}

func TestManagerReturningNilAcceptsCandidate(t *testing.T) {
	m := &mockRepl{managed: map[int]bool{1: true}}
	c := cache.New(cache.Config{Capacity: 2, Alloc: cache.LRUSP}, m)
	get(c, id(0), 1)
	get(c, id(1), 1)
	m.pick = func(*cache.Buf, cache.BlockID) *cache.Buf { return nil }
	_, v := get(c, id(2), 1)
	if v == nil || v.ID != id(0) {
		t.Errorf("nil answer did not fall back to the candidate: %+v", v)
	}
	if c.Stats().Overrules != 0 {
		t.Error("nil answer counted as an overrule")
	}
}

// mirrorRepl tracks residency purely from NewBlock/BlockGone, as the paper
// says upcall-based user-level handlers could ("user-level handlers could
// know which blocks are in cache by keeping track of new_block and
// block_gone calls").
type mirrorRepl struct {
	resident map[cache.BlockID]bool
}

func (m *mirrorRepl) NewBlock(b *cache.Buf)                     { m.resident[b.ID] = true }
func (m *mirrorRepl) BlockGone(b *cache.Buf)                    { delete(m.resident, b.ID) }
func (m *mirrorRepl) BlockAccessed(*cache.Buf, int, int)        {}
func (m *mirrorRepl) PlaceholderUsed(cache.BlockID, *cache.Buf) {}
func (m *mirrorRepl) Managed(owner int) bool                    { return owner == 1 }
func (m *mirrorRepl) ReplaceBlock(c *cache.Buf, _ cache.BlockID) *cache.Buf {
	return c
}

// TestInterfaceSufficientForResidencyTracking verifies the Section 4
// claim: the five-call interface tells a manager exactly which of its
// blocks are cached at all times.
func TestInterfaceSufficientForResidencyTracking(t *testing.T) {
	m := &mirrorRepl{resident: make(map[cache.BlockID]bool)}
	c := cache.New(cache.Config{Capacity: 12, Alloc: cache.LRUSP}, m)
	rng := sim.NewRand(77)
	for i := 0; i < 5000; i++ {
		blk := cache.BlockID{File: fs.FileID(1 + rng.Intn(2)), Num: int32(rng.Intn(30))}
		get(c, blk, 1)
		if rng.Intn(100) == 0 {
			c.InvalidateFile(fs.FileID(1 + rng.Intn(2)))
		}
	}
	// The mirror must match the cache's actual contents exactly.
	actual := make(map[cache.BlockID]bool)
	for _, id := range c.GlobalOrder() {
		if c.Peek(id).Owner == 1 {
			actual[id] = true
		}
	}
	if len(actual) != len(m.resident) {
		t.Fatalf("mirror has %d blocks, cache has %d", len(m.resident), len(actual))
	}
	for id := range actual {
		if !m.resident[id] {
			t.Errorf("cache holds %v but mirror does not", id)
		}
	}
}
