package disk

import (
	"testing"

	"repro/internal/sim"
)

func newTestDisk(t *testing.T, g Geometry) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.New()
	bus := NewBus(eng)
	return eng, New(eng, g, bus, 1)
}

func TestGeometryBlocks(t *testing.T) {
	if got := RZ56.Blocks(); got != 665*128 {
		t.Errorf("RZ56.Blocks() = %d, want %d", got, 665*128)
	}
	if got := RZ26.Blocks(); got != 1050*128 {
		t.Errorf("RZ26.Blocks() = %d, want %d", got, 1050*128)
	}
}

func TestTransferTime(t *testing.T) {
	// 8 KB at 1.875 MB/s is about 4.37 ms.
	tt := RZ56.transferTime()
	if tt < sim.FromMillis(4.2) || tt > sim.FromMillis(4.5) {
		t.Errorf("RZ56 transfer time %v, want about 4.37ms", tt)
	}
	// 8 KB at 3.3 MB/s is about 2.48 ms.
	tt = RZ26.transferTime()
	if tt < sim.FromMillis(2.3) || tt > sim.FromMillis(2.6) {
		t.Errorf("RZ26 transfer time %v, want about 2.48ms", tt)
	}
}

func TestSeqEfficiencyDefault(t *testing.T) {
	if e := (Geometry{}).seqEff(); e != 0.55 {
		t.Errorf("default seqEff = %v, want 0.55", e)
	}
	if e := (Geometry{SeqEfficiency: 0.8}).seqEff(); e != 0.8 {
		t.Errorf("explicit seqEff = %v, want 0.8", e)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op.String wrong")
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	eng, d := newTestDisk(t, RZ56)
	var seqTime, randTime sim.Time
	eng.Spawn("seq", func(p *sim.Proc) {
		// Warm the head position.
		d.Access(p, Read, 0)
		start := p.Now()
		for i := 1; i <= 100; i++ {
			d.Access(p, Read, i)
		}
		seqTime = p.Now() - start

		start = p.Now()
		rng := sim.NewRand(7)
		for i := 0; i < 100; i++ {
			d.Access(p, Read, rng.Intn(d.Geometry().Blocks()))
		}
		randTime = p.Now() - start
	})
	eng.Run()
	if seqTime*2 > randTime {
		t.Errorf("sequential (%v) not much faster than random (%v)", seqTime, randTime)
	}
	st := d.Stats()
	if st.Sequential < 100 {
		t.Errorf("Sequential count %d, want >= 100", st.Sequential)
	}
	if st.Reads != 201 {
		t.Errorf("Reads = %d, want 201", st.Reads)
	}
}

func TestRandomAccessCostNearDataSheet(t *testing.T) {
	// Average random access should be near avg seek + avg rot + transfer.
	eng, d := newTestDisk(t, RZ56)
	const n = 2000
	var total sim.Time
	eng.Spawn("rand", func(p *sim.Proc) {
		rng := sim.NewRand(99)
		prev := p.Now()
		for i := 0; i < n; i++ {
			d.Access(p, Read, rng.Intn(d.Geometry().Blocks()))
			total += p.Now() - prev
			prev = p.Now()
		}
	})
	eng.Run()
	avg := total / n
	// Data-sheet expectation: ~16 + 8.3 + 4.4 = ~28.7 ms. The sqrt seek
	// model plus uniform addresses should land within 25%.
	lo, hi := sim.FromMillis(21), sim.FromMillis(36)
	if avg < lo || avg > hi {
		t.Errorf("average random access %v, want within [%v, %v]", avg, lo, hi)
	}
}

func TestQueueContention(t *testing.T) {
	// Two processes hammering one disk should finish strictly later than
	// one process doing half the work.
	solo := func() sim.Time {
		eng, d := newTestDisk(t, RZ56)
		eng.Spawn("a", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				d.Access(p, Read, i*100)
			}
		})
		eng.Run()
		return eng.Now()
	}()
	duo := func() sim.Time {
		eng, d := newTestDisk(t, RZ56)
		for pi := 0; pi < 2; pi++ {
			base := pi * 40000
			eng.Spawn("p", func(p *sim.Proc) {
				for i := 0; i < 50; i++ {
					d.Access(p, Read, base+i*100)
				}
			})
		}
		eng.Run()
		return eng.Now()
	}()
	if duo <= solo {
		t.Errorf("two contending processes (%v) not slower than one (%v)", duo, solo)
	}
}

func TestBusContentionAcrossDisks(t *testing.T) {
	// Two disks on one bus: transfers serialize, so two disks streaming
	// concurrently take longer than either alone, but far less than 2x
	// (positioning overlaps).
	run := func(two bool) sim.Time {
		eng := sim.New()
		bus := NewBus(eng)
		d1 := New(eng, RZ56, bus, 1)
		d2 := New(eng, RZ26, bus, 2)
		eng.Spawn("a", func(p *sim.Proc) {
			for i := 0; i < 500; i++ {
				d1.Access(p, Read, i)
			}
		})
		if two {
			eng.Spawn("b", func(p *sim.Proc) {
				for i := 0; i < 500; i++ {
					d2.Access(p, Read, i)
				}
			})
		}
		eng.Run()
		return eng.Now()
	}
	one, both := run(false), run(true)
	if both <= one {
		t.Errorf("bus-sharing run (%v) not slower than solo run (%v)", both, one)
	}
	if both > one*2 {
		t.Errorf("bus-sharing run (%v) worse than fully serial (%v)", both, one*2)
	}
}

func TestTwoDisksOverlapPositioning(t *testing.T) {
	// Random workloads on two disks should overlap nearly perfectly since
	// positioning dominates and only transfers share the bus.
	run := func(two bool) sim.Time {
		eng := sim.New()
		bus := NewBus(eng)
		d1 := New(eng, RZ56, bus, 1)
		d2 := New(eng, RZ26, bus, 2)
		rng := sim.NewRand(5)
		addrs := make([]int, 200)
		for i := range addrs {
			addrs[i] = rng.Intn(80000)
		}
		eng.Spawn("a", func(p *sim.Proc) {
			for _, a := range addrs {
				d1.Access(p, Read, a)
			}
		})
		if two {
			eng.Spawn("b", func(p *sim.Proc) {
				for _, a := range addrs {
					d2.Access(p, Read, a)
				}
			})
		}
		eng.Run()
		return eng.Now()
	}
	one, both := run(false), run(true)
	if float64(both) > float64(one)*1.3 {
		t.Errorf("two-disk random run (%v) should be within 30%% of solo (%v)", both, one)
	}
}

func TestWriteCounts(t *testing.T) {
	eng, d := newTestDisk(t, RZ26)
	eng.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d.Access(p, Write, i)
		}
		d.Access(p, Read, 500)
	})
	eng.Run()
	st := d.Stats()
	if st.Writes != 10 || st.Reads != 1 {
		t.Errorf("stats = %+v, want 10 writes 1 read", st)
	}
	if st.IOs() != 11 {
		t.Errorf("IOs = %d, want 11", st.IOs())
	}
}

func TestStartIsAsync(t *testing.T) {
	eng, d := newTestDisk(t, RZ56)
	var doneAt sim.Time
	eng.Spawn("a", func(p *sim.Proc) {
		d.Start(Write, 1000, func(t sim.Time) { doneAt = t })
		if p.Now() != 0 {
			t.Error("Start blocked the caller")
		}
		p.Sleep(sim.Second)
		if doneAt == 0 || doneAt > p.Now() {
			t.Errorf("async write completed at %v, want before now", doneAt)
		}
	})
	eng.Run()
	if w := d.Stats().Writes; w != 1 {
		t.Errorf("Writes = %d, want 1", w)
	}
}

func TestElevatorSortsWrites(t *testing.T) {
	// Queue many scattered writes while idle; the server must service
	// them in ascending order (C-LOOK), which a completion trace shows.
	eng, d := newTestDisk(t, RZ56)
	var order []int
	addrs := []int{50000, 10000, 30000, 20000, 40000}
	eng.Spawn("a", func(p *sim.Proc) {
		for _, a := range addrs {
			a := a
			d.Start(Write, a, func(sim.Time) { order = append(order, a) })
		}
		p.Sleep(10 * sim.Second)
	})
	eng.Run()
	if len(order) != 5 {
		t.Fatalf("completed %d writes, want 5", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("service order %v not sorted (elevator broken)", order)
		}
	}
}

func TestElevatorWrapsAround(t *testing.T) {
	// With the head beyond all queued addresses, C-LOOK wraps to the
	// lowest one.
	eng, d := newTestDisk(t, RZ56)
	var order []int
	eng.Spawn("a", func(p *sim.Proc) {
		d.Access(p, Read, 60000) // park the head high
		for _, a := range []int{3000, 1000, 2000} {
			a := a
			d.Start(Write, a, func(sim.Time) { order = append(order, a) })
		}
		p.Sleep(5 * sim.Second)
	})
	eng.Run()
	want := []int{1000, 2000, 3000}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestWritesBatchBehindReadStream(t *testing.T) {
	// A sequential read stream that keeps the queue primed (as cluster
	// read-ahead does) with interleaved scattered async writes: the
	// elevator should let the reads stream and defer the writes, so the
	// stream finishes much sooner than if each write interrupted it.
	eng, d := newTestDisk(t, RZ56)
	var streamDone sim.Time
	var writeDones []sim.Time
	eng.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			i := i
			d.Start(Read, i, func(tm sim.Time) {
				if i == 199 {
					streamDone = tm
				}
			})
			if i%10 == 5 {
				d.Start(Write, 70000+i*10, func(tm sim.Time) {
					writeDones = append(writeDones, tm)
				})
			}
		}
		p.Sleep(30 * sim.Second) // let everything drain
	})
	eng.Run()
	// 200 queued sequential reads at ~8 ms each must stream without
	// being interrupted by the 20 scattered writes; if every write
	// forced a round trip the stream would take 20 x ~35 ms longer.
	if streamDone > 2500*sim.Millisecond {
		t.Errorf("read stream finished at %v; writes not deferred by elevator", streamDone)
	}
	if len(writeDones) != 20 {
		t.Fatalf("completed %d writes, want 20", len(writeDones))
	}
	for _, w := range writeDones {
		if w < streamDone {
			t.Errorf("write completed at %v, before the read stream finished (%v)", w, streamDone)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	eng, d := newTestDisk(t, RZ56)
	eng.Spawn("a", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range access did not panic")
			}
		}()
		d.Access(p, Read, d.Geometry().Blocks())
	})
	eng.Run()
}

func TestDeterministicService(t *testing.T) {
	trace := func() []sim.Time {
		eng, d := newTestDisk(t, RZ56)
		var times []sim.Time
		eng.Spawn("a", func(p *sim.Proc) {
			rng := sim.NewRand(3)
			for i := 0; i < 200; i++ {
				d.Access(p, Read, rng.Intn(50000))
				times = append(times, p.Now())
			}
		})
		eng.Run()
		return times
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at access %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRZ26FasterThanRZ56(t *testing.T) {
	runOn := func(g Geometry) sim.Time {
		eng, d := newTestDisk(t, g)
		eng.Spawn("a", func(p *sim.Proc) {
			rng := sim.NewRand(11)
			for i := 0; i < 300; i++ {
				d.Access(p, Read, rng.Intn(80000))
			}
		})
		eng.Run()
		return eng.Now()
	}
	if t56, t26 := runOn(RZ56), runOn(RZ26); t26 >= t56 {
		t.Errorf("RZ26 (%v) not faster than RZ56 (%v)", t26, t56)
	}
}

func TestQueueLenAndMaxQueue(t *testing.T) {
	eng, d := newTestDisk(t, RZ56)
	eng.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			d.Start(Write, i*1000, nil)
		}
		if d.QueueLen() == 0 {
			t.Error("QueueLen = 0 right after queueing")
		}
		p.Sleep(10 * sim.Second)
		if d.QueueLen() != 0 {
			t.Errorf("QueueLen = %d after drain, want 0", d.QueueLen())
		}
	})
	eng.Run()
	if d.Stats().MaxQueue < 7 {
		t.Errorf("MaxQueue = %d, want >= 7", d.Stats().MaxQueue)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero TrackBlocks did not panic")
		}
	}()
	eng := sim.New()
	New(eng, Geometry{Name: "bad"}, NewBus(eng), 1)
}

func TestFIFOServesInArrivalOrder(t *testing.T) {
	eng, d := newTestDisk(t, RZ56)
	d.SetScheduler(FIFO)
	if d.Scheduler() != FIFO || FIFO.String() != "fifo" || CLOOK.String() != "c-look" {
		t.Error("scheduler accessors wrong")
	}
	var order []int
	addrs := []int{50000, 10000, 30000}
	eng.Spawn("a", func(p *sim.Proc) {
		for _, a := range addrs {
			a := a
			d.Start(Write, a, func(sim.Time) { order = append(order, a) })
		}
		p.Sleep(5 * sim.Second)
	})
	eng.Run()
	for i := range addrs {
		if order[i] != addrs[i] {
			t.Fatalf("FIFO served %v, want %v", order, addrs)
		}
	}
}

func TestFIFOSlowerThanElevatorUnderScatter(t *testing.T) {
	run := func(s Sched) sim.Time {
		eng, d := newTestDisk(t, RZ56)
		d.SetScheduler(s)
		rng := sim.NewRand(9)
		eng.Spawn("a", func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				d.Start(Write, rng.Intn(80000), nil)
			}
			p.Sleep(30 * sim.Second)
		})
		eng.Run()
		return sim.FromMillis(d.Stats().BusyTotal.Millis())
	}
	fifo, clook := run(FIFO), run(CLOOK)
	if clook >= fifo {
		t.Errorf("elevator busy time %v not below FIFO's %v on scattered writes", clook, fifo)
	}
}
