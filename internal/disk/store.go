// store.go — the live (real-I/O) block backend behind the acfcd daemon.
//
// The simulated Disk in this package models *time*; a long-running cache
// server needs a backend that actually holds bytes. A Store addresses
// blocks by (file, block-number) pairs — the same coordinates as
// cache.BlockID — and is safe for concurrent use, because the daemon
// issues cache-fill reads from concurrent I/O goroutines while the kernel
// loop performs write-backs.

package disk

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a live block backend: it durably (or at least authoritatively)
// holds the contents of every block ever written back, and serves fills
// for blocks entering the cache. Blocks never written read as zeros, like
// a freshly allocated file. Implementations must be safe for concurrent
// use.
type Store interface {
	// ReadBlock fills dst (len BlockSize) with the block's contents.
	// dst is typically an arena-backed cache slot (the fill path reads
	// straight into the buffer the cache will serve from); implementations
	// must not retain it past the call.
	ReadBlock(file int32, blk int32, dst []byte) error
	// WriteBlock persists src (len BlockSize) as the block's contents.
	WriteBlock(file int32, blk int32, src []byte) error
	// Close releases the backend.
	Close() error
}

// storeKey packs a (file, block) pair into one map key.
func storeKey(file, blk int32) uint64 {
	return uint64(uint32(file))<<32 | uint64(uint32(blk))
}

// MemStore is an in-memory Store: the zero-dependency backend for tests
// and benchmarks, and the default for an acfcd daemon started without a
// backing file. SetLatency makes it model a slow backing store, so
// benchmarks can measure what miss coalescing, write-behind and
// read-ahead actually buy against a store where I/O costs something.
type MemStore struct {
	mu     sync.RWMutex
	blocks map[uint64][]byte

	latency atomic.Int64 // per-op sleep, ns (0 = none)
	jitter  atomic.Int64 // max extra sleep, ns
	rng     atomic.Uint64
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blocks: make(map[uint64][]byte)}
}

// SetLatency makes every ReadBlock and WriteBlock sleep for lat plus a
// uniform random extra in [0, jitter), modelling a slow backing store.
// The jitter stream is a cheap deterministic xorshift, seeded once, so
// runs are reproducible modulo goroutine interleaving. Zero disables.
func (m *MemStore) SetLatency(lat, jitter time.Duration) {
	m.latency.Store(int64(lat))
	m.jitter.Store(int64(jitter))
	if m.rng.Load() == 0 {
		m.rng.Store(0x9e3779b97f4a7c15)
	}
}

func (m *MemStore) sleep() {
	lat := m.latency.Load()
	if j := m.jitter.Load(); j > 0 {
		// xorshift64, racing CAS-free on purpose: overlapping updates just
		// perturb the stream, and the stream only feeds a sleep duration.
		x := m.rng.Load()
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.rng.Store(x)
		lat += int64(x % uint64(j))
	}
	if lat > 0 {
		time.Sleep(time.Duration(lat))
	}
}

// ReadBlock implements Store.
func (m *MemStore) ReadBlock(file, blk int32, dst []byte) error {
	if len(dst) != BlockSize {
		return fmt.Errorf("disk: read buffer is %d bytes, want %d", len(dst), BlockSize)
	}
	m.sleep()
	m.mu.RLock()
	src := m.blocks[storeKey(file, blk)]
	if src == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		copy(dst, src)
	}
	m.mu.RUnlock()
	return nil
}

// WriteBlock implements Store.
func (m *MemStore) WriteBlock(file, blk int32, src []byte) error {
	if len(src) != BlockSize {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(src), BlockSize)
	}
	m.sleep()
	owned := make([]byte, BlockSize)
	copy(owned, src)
	m.mu.Lock()
	m.blocks[storeKey(file, blk)] = owned
	m.mu.Unlock()
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// Blocks reports the number of distinct blocks ever written (tests).
func (m *MemStore) Blocks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blocks)
}

// FileStore is a Store backed by one flat file: blocks are appended to
// slots as they are first written, and a slot map translates (file,
// block) to the slot offset. Reads of unwritten blocks return zeros
// without touching the file. Concurrent reads use pread on disjoint
// offsets; writes serialize on the slot map's mutex (the kernel loop is
// the only writer, so this costs nothing in practice).
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	slots map[uint64]int64
	next  int64
}

// NewFileStore opens (creating or truncating) a file-backed store at
// path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileStore{f: f, slots: make(map[uint64]int64)}, nil
}

// ReadBlock implements Store.
func (s *FileStore) ReadBlock(file, blk int32, dst []byte) error {
	if len(dst) != BlockSize {
		return fmt.Errorf("disk: read buffer is %d bytes, want %d", len(dst), BlockSize)
	}
	s.mu.Lock()
	off, ok := s.slots[storeKey(file, blk)]
	s.mu.Unlock()
	if !ok {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	_, err := s.f.ReadAt(dst, off)
	return err
}

// WriteBlock implements Store. The mutex covers only the slot map;
// once a block's slot offset is assigned it never changes, so the
// pwrite itself runs unlocked — concurrent write-behind flushes and
// fill preads overlap instead of serializing on the map lock.
func (s *FileStore) WriteBlock(file, blk int32, src []byte) error {
	if len(src) != BlockSize {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(src), BlockSize)
	}
	s.mu.Lock()
	k := storeKey(file, blk)
	off, ok := s.slots[k]
	if !ok {
		off = s.next
		s.next += BlockSize
		s.slots[k] = off
	}
	s.mu.Unlock()
	_, err := s.f.WriteAt(src, off)
	return err
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }
