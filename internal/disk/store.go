// store.go — the live (real-I/O) block backend behind the acfcd daemon.
//
// The simulated Disk in this package models *time*; a long-running cache
// server needs a backend that actually holds bytes. A Store addresses
// blocks by (file, block-number) pairs — the same coordinates as
// cache.BlockID — and is safe for concurrent use, because the daemon
// issues cache-fill reads from concurrent I/O goroutines while the kernel
// loop performs write-backs.

package disk

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a live block backend: it durably (or at least authoritatively)
// holds the contents of every block ever written back, and serves fills
// for blocks entering the cache. Blocks never written read as zeros, like
// a freshly allocated file. Implementations must be safe for concurrent
// use.
type Store interface {
	// ReadBlock fills dst (len BlockSize) with the block's contents.
	// dst is typically an arena-backed cache slot (the fill path reads
	// straight into the buffer the cache will serve from); implementations
	// must not retain it past the call.
	ReadBlock(file int32, blk int32, dst []byte) error
	// WriteBlock persists src (len BlockSize) as the block's contents.
	WriteBlock(file int32, blk int32, src []byte) error
	// Close releases the backend.
	Close() error
}

// storeKey packs a (file, block) pair into one map key.
func storeKey(file, blk int32) uint64 {
	return uint64(uint32(file))<<32 | uint64(uint32(blk))
}

// MemStore is an in-memory Store: the zero-dependency backend for tests
// and benchmarks, and the default for an acfcd daemon started without a
// backing file. SetLatency makes it model a slow backing store, so
// benchmarks can measure what miss coalescing, write-behind and
// read-ahead actually buy against a store where I/O costs something.
type MemStore struct {
	mu     sync.RWMutex
	blocks map[uint64][]byte

	latency atomic.Int64 // per-op sleep, ns (0 = none)
	jitter  atomic.Int64 // max extra sleep, ns
	rng     atomic.Uint64
	arm     sync.Mutex // serializes latency waits: one disk arm
}

// memTransferDiv scales the marginal cost of a batched op: each block
// after the first adds lat/memTransferDiv, so an n-block batch costs
// lat + (n-1)*lat/10 — the seek dominates, transfer is cheap, and
// coalescing is visible under -store-latency without being free.
const memTransferDiv = 10

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blocks: make(map[uint64][]byte)}
}

// SetLatency makes every ReadBlock and WriteBlock sleep for lat plus a
// uniform random extra in [0, jitter), modelling a slow backing store.
// The jitter stream is a cheap deterministic xorshift, seeded once, so
// runs are reproducible modulo goroutine interleaving. Zero disables.
func (m *MemStore) SetLatency(lat, jitter time.Duration) {
	m.latency.Store(int64(lat))
	m.jitter.Store(int64(jitter))
	if m.rng.Load() == 0 {
		m.rng.Store(0x9e3779b97f4a7c15)
	}
}

// sleepBatch charges the latency model for one store operation moving
// n blocks: the full lat (the "seek") once, jitter once, plus a small
// per-extra-block transfer cost. Waits serialize on the arm mutex so
// concurrent callers queue behind one another like requests at a single
// disk arm — without that, parallel sleeps would model an infinitely
// parallel disk and batching would buy nothing measurable.
func (m *MemStore) sleepBatch(n int) {
	lat := m.latency.Load()
	j := m.jitter.Load()
	if lat == 0 && j == 0 {
		return
	}
	d := lat
	if j > 0 {
		// xorshift64, racing CAS-free on purpose: overlapping updates just
		// perturb the stream, and the stream only feeds a sleep duration.
		x := m.rng.Load()
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.rng.Store(x)
		d += int64(x % uint64(j))
	}
	if n > 1 {
		d += int64(n-1) * lat / memTransferDiv
	}
	if d <= 0 {
		return
	}
	m.arm.Lock()
	time.Sleep(time.Duration(d))
	m.arm.Unlock()
}

// ReadBlock implements Store.
func (m *MemStore) ReadBlock(file, blk int32, dst []byte) error {
	if len(dst) != BlockSize {
		return fmt.Errorf("disk: read buffer is %d bytes, want %d", len(dst), BlockSize)
	}
	m.sleepBatch(1)
	m.mu.RLock()
	m.readLocked(file, blk, dst)
	m.mu.RUnlock()
	return nil
}

func (m *MemStore) readLocked(file, blk int32, dst []byte) {
	if src := m.blocks[storeKey(file, blk)]; src == nil {
		clear(dst)
	} else {
		copy(dst, src)
	}
}

// WriteBlock implements Store. A block written before is updated in
// place under the lock — no reader holds a reference to the stored
// buffer (ReadBlock copies out under the same lock), so reuse is safe
// and the steady-state write-back path stops allocating.
func (m *MemStore) WriteBlock(file, blk int32, src []byte) error {
	if len(src) != BlockSize {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(src), BlockSize)
	}
	m.sleepBatch(1)
	m.mu.Lock()
	m.writeLocked(file, blk, src)
	m.mu.Unlock()
	return nil
}

func (m *MemStore) writeLocked(file, blk int32, src []byte) {
	k := storeKey(file, blk)
	if dst := m.blocks[k]; dst != nil {
		copy(dst, src)
		return
	}
	owned := make([]byte, BlockSize)
	copy(owned, src)
	m.blocks[k] = owned
}

// ReadBlocks implements BatchStore: one latency charge for the whole
// batch, one lock acquisition for all the copies.
func (m *MemStore) ReadBlocks(specs []BlockSpan, dsts [][]byte) []error {
	errs := make([]error, len(specs))
	m.sleepBatch(len(specs))
	m.mu.RLock()
	for i, sp := range specs {
		if len(dsts[i]) != BlockSize {
			errs[i] = fmt.Errorf("disk: read buffer is %d bytes, want %d", len(dsts[i]), BlockSize)
			continue
		}
		m.readLocked(sp.File, sp.Blk, dsts[i])
	}
	m.mu.RUnlock()
	return errs
}

// WriteBlocks implements BatchStore.
func (m *MemStore) WriteBlocks(specs []BlockSpan, srcs [][]byte) []error {
	errs := make([]error, len(specs))
	m.sleepBatch(len(specs))
	m.mu.Lock()
	for i, sp := range specs {
		if len(srcs[i]) != BlockSize {
			errs[i] = fmt.Errorf("disk: write buffer is %d bytes, want %d", len(srcs[i]), BlockSize)
			continue
		}
		m.writeLocked(sp.File, sp.Blk, srcs[i])
	}
	m.mu.Unlock()
	return errs
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// Blocks reports the number of distinct blocks ever written (tests).
func (m *MemStore) Blocks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blocks)
}

// FileStore is a Store backed by one flat file: blocks are appended to
// slots as they are first written, and a slot map translates (file,
// block) to the slot offset. Reads of unwritten blocks return zeros
// without touching the file. Concurrent reads use pread on disjoint
// offsets; writes serialize on the slot map's mutex (the kernel loop is
// the only writer, so this costs nothing in practice).
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	slots map[uint64]int64
	next  int64

	// vectored gates the preadv/pwritev run path; false on platforms
	// without the syscalls, and flipped off by tests to exercise the
	// portable fallback.
	vectored atomic.Bool

	// I/O call counters, by shape. A "scalar" call is one ReadAt/WriteAt
	// moving one block; a "vector" call is one preadv/pwritev moving a
	// run. The syscall-count regression gate and the profiling workflow
	// in DESIGN.md read these through IOCounts.
	scalarReads  atomic.Int64
	vectorReads  atomic.Int64
	scalarWrites atomic.Int64
	vectorWrites atomic.Int64
}

// NewFileStore opens (creating or truncating) a file-backed store at
// path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{f: f, slots: make(map[uint64]int64)}
	s.vectored.Store(vectoredIO)
	return s, nil
}

// SetVectored forces the run path on or off (tests: the portable
// fallback must behave identically to preadv/pwritev).
func (s *FileStore) SetVectored(on bool) { s.vectored.Store(on && vectoredIO) }

// IOCounts reports cumulative store calls by shape: single-block
// ReadAt/WriteAt versus vectored preadv/pwritev runs.
func (s *FileStore) IOCounts() (scalarReads, vectorReads, scalarWrites, vectorWrites int64) {
	return s.scalarReads.Load(), s.vectorReads.Load(), s.scalarWrites.Load(), s.vectorWrites.Load()
}

// ReadBlock implements Store.
func (s *FileStore) ReadBlock(file, blk int32, dst []byte) error {
	if len(dst) != BlockSize {
		return fmt.Errorf("disk: read buffer is %d bytes, want %d", len(dst), BlockSize)
	}
	s.mu.Lock()
	off, ok := s.slots[storeKey(file, blk)]
	s.mu.Unlock()
	if !ok {
		clear(dst)
		return nil
	}
	s.scalarReads.Add(1)
	_, err := s.f.ReadAt(dst, off)
	return err
}

// WriteBlock implements Store. The mutex covers only the slot map;
// once a block's slot offset is assigned it never changes, so the
// pwrite itself runs unlocked — concurrent write-behind flushes and
// fill preads overlap instead of serializing on the map lock.
func (s *FileStore) WriteBlock(file, blk int32, src []byte) error {
	if len(src) != BlockSize {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(src), BlockSize)
	}
	s.mu.Lock()
	k := storeKey(file, blk)
	off, ok := s.slots[k]
	if !ok {
		off = s.next
		s.next += BlockSize
		s.slots[k] = off
	}
	s.mu.Unlock()
	s.scalarWrites.Add(1)
	_, err := s.f.WriteAt(src, off)
	return err
}

// runEnt pins one batch entry to its resolved slot offset.
type runEnt struct {
	off int64
	i   int // index into the caller's specs/bufs
}

// groupRuns walks offset-sorted entries and calls emit once per
// contiguous-slot run. Equal offsets (the same block named twice in one
// batch) break the run, so duplicate writes stay separate calls in
// batch order.
func groupRuns(ents []runEnt, emit func(run []runEnt)) {
	for i := 0; i < len(ents); {
		j := i + 1
		for j < len(ents) && ents[j].off == ents[j-1].off+BlockSize {
			j++
		}
		emit(ents[i:j])
		i = j
	}
}

// ReadBlocks implements BatchStore: resolve every span's slot under one
// lock hold, sort by slot offset, and issue one preadv per contiguous
// run (ReadAt per block when vectoring is off or the run is a single
// block). Unwritten spans zero-fill without touching the file. A run
// that fails mid-call marks every span in the run with the error —
// the caller can't tell which block the kernel choked on, and fill
// errors are per-block terminal anyway.
func (s *FileStore) ReadBlocks(specs []BlockSpan, dsts [][]byte) []error {
	errs := make([]error, len(specs))
	ents := make([]runEnt, 0, len(specs))
	s.mu.Lock()
	for i, sp := range specs {
		if len(dsts[i]) != BlockSize {
			errs[i] = fmt.Errorf("disk: read buffer is %d bytes, want %d", len(dsts[i]), BlockSize)
			continue
		}
		if off, ok := s.slots[storeKey(sp.File, sp.Blk)]; ok {
			ents = append(ents, runEnt{off, i})
		} else {
			clear(dsts[i])
		}
	}
	s.mu.Unlock()
	sort.Slice(ents, func(a, b int) bool { return ents[a].off < ents[b].off })
	groupRuns(ents, func(run []runEnt) {
		bufs := make([][]byte, len(run))
		for k, e := range run {
			bufs[k] = dsts[e.i]
		}
		if err := s.readRun(bufs, run[0].off); err != nil {
			for _, e := range run {
				errs[e.i] = err
			}
		}
	})
	return errs
}

func (s *FileStore) readRun(bufs [][]byte, off int64) error {
	if len(bufs) > 1 && s.vectored.Load() {
		calls, err := preadvFull(s.f, bufs, off)
		s.vectorReads.Add(int64(calls))
		return err
	}
	for _, b := range bufs {
		s.scalarReads.Add(1)
		if _, err := s.f.ReadAt(b, off); err != nil {
			return err
		}
		off += BlockSize
	}
	return nil
}

// WriteBlocks implements BatchStore. Slot allocation is run-aware: the
// valid spans are ordered by (file, block) before slots are assigned
// under one lock hold, so a batch of sequential file blocks hitting an
// empty store lands in sequential slots — which is exactly what lets
// the next cold read of that range collapse into one preadv. The sort
// is stable so a block named twice keeps batch order (last write wins).
func (s *FileStore) WriteBlocks(specs []BlockSpan, srcs [][]byte) []error {
	errs := make([]error, len(specs))
	idx := make([]int, 0, len(specs))
	for i := range specs {
		if len(srcs[i]) != BlockSize {
			errs[i] = fmt.Errorf("disk: write buffer is %d bytes, want %d", len(srcs[i]), BlockSize)
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := specs[idx[a]], specs[idx[b]]
		if sa.File != sb.File {
			return sa.File < sb.File
		}
		return sa.Blk < sb.Blk
	})
	ents := make([]runEnt, 0, len(idx))
	s.mu.Lock()
	for _, i := range idx {
		k := storeKey(specs[i].File, specs[i].Blk)
		off, ok := s.slots[k]
		if !ok {
			off = s.next
			s.next += BlockSize
			s.slots[k] = off
		}
		ents = append(ents, runEnt{off, i})
	}
	s.mu.Unlock()
	sort.SliceStable(ents, func(a, b int) bool { return ents[a].off < ents[b].off })
	groupRuns(ents, func(run []runEnt) {
		bufs := make([][]byte, len(run))
		for k, e := range run {
			bufs[k] = srcs[e.i]
		}
		if err := s.writeRun(bufs, run[0].off); err != nil {
			for _, e := range run {
				errs[e.i] = err
			}
		}
	})
	return errs
}

func (s *FileStore) writeRun(bufs [][]byte, off int64) error {
	if len(bufs) > 1 && s.vectored.Load() {
		calls, err := pwritevFull(s.f, bufs, off)
		s.vectorWrites.Add(int64(calls))
		return err
	}
	for _, b := range bufs {
		s.scalarWrites.Add(1)
		if _, err := s.f.WriteAt(b, off); err != nil {
			return err
		}
		off += BlockSize
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }
