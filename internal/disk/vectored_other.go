//go:build !linux

// vectored_other.go — stubs for platforms without preadv/pwritev. The
// FileStore constructor sees vectoredIO == false and keeps the run path
// on the portable ReadAt/WriteAt loop, so these are never reached; they
// exist only to keep the package compiling everywhere.

package disk

import (
	"errors"
	"os"
)

const vectoredIO = false

var errNoVectoredIO = errors.New("disk: vectored I/O unsupported on this platform")

func preadvFull(f *os.File, bufs [][]byte, off int64) (calls int, err error) {
	return 0, errNoVectoredIO
}

func pwritevFull(f *os.File, bufs [][]byte, off int64) (calls int, err error) {
	return 0, errNoVectoredIO
}
