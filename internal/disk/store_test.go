package disk

import (
	"bytes"
	"testing"
	"time"
)

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMemStore()
	src := bytes.Repeat([]byte{0xab}, BlockSize)
	if err := m.WriteBlock(3, 7, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := m.ReadBlock(3, 7, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("read bytes differ from written")
	}
	// Unwritten blocks read as zeros, even into a dirty buffer.
	if err := m.ReadBlock(3, 8, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[BlockSize-1] != 0 {
		t.Error("unwritten block did not read as zeros")
	}
	if m.Blocks() != 1 {
		t.Errorf("Blocks() = %d, want 1", m.Blocks())
	}
}

// TestMemStoreLatency pins the injection knob: with latency set, every
// operation takes at least the base delay; with jitter, no more than
// base+jitter (plus scheduling slop, so only the lower bound is firm).
func TestMemStoreLatency(t *testing.T) {
	m := NewMemStore()
	buf := make([]byte, BlockSize)

	t0 := time.Now()
	if err := m.ReadBlock(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if fast := time.Since(t0); fast > 50*time.Millisecond {
		t.Fatalf("zero-latency read took %v", fast)
	}

	const base = 5 * time.Millisecond
	m.SetLatency(base, 2*time.Millisecond)
	for i, op := range []func() error{
		func() error { return m.ReadBlock(0, 0, buf) },
		func() error { return m.WriteBlock(0, 0, buf) },
	} {
		t0 = time.Now()
		if err := op(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < base {
			t.Errorf("op %d took %v, want >= %v", i, d, base)
		}
	}

	m.SetLatency(0, 0)
	t0 = time.Now()
	if err := m.ReadBlock(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d >= base {
		t.Errorf("latency did not reset: read took %v", d)
	}
}
