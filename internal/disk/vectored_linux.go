//go:build linux

// vectored_linux.go — preadv/pwritev wrappers for the FileStore run
// path. The stdlib exposes the syscall numbers and Iovec but not the
// calls themselves, and the no-new-dependencies rule keeps x/sys out,
// so the two thin wrappers live here: build the iovec array, split the
// offset into the raw ABI's (pos_l, pos_h) pair, retry on EINTR, and
// advance through short transfers until the run is done.

package disk

import (
	"io"
	"math/bits"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// vectoredIO reports whether this platform has preadv/pwritev; the
// FileStore constructor uses it to pick the run path.
const vectoredIO = true

// maxIovecs bounds one vectored call (Linux IOV_MAX is 1024); longer
// runs issue multiple calls.
const maxIovecs = 1024

// offLoHi splits a file offset for the raw preadv ABI, which takes the
// position as two long-sized words. On 64-bit the low word carries the
// whole offset and the double shift zeroes the high word; on 32-bit it
// lands the upper half without tripping the >= word-size shift rule.
func offLoHi(off int64) (lo, hi uintptr) {
	return uintptr(off), uintptr(uint64(off) >> (bits.UintSize - 1) >> 1)
}

// vecCall issues one preadv/pwritev over bufs at off, retrying EINTR.
// It returns the bytes transferred and the number of syscalls issued
// (EINTR retries count: they hit the disk scheduler even when they
// move no data).
func vecCall(trap uintptr, fd uintptr, bufs [][]byte, off int64) (n int, calls int, err error) {
	iovs := make([]syscall.Iovec, len(bufs))
	for i, b := range bufs {
		iovs[i].Base = &b[0]
		iovs[i].SetLen(len(b))
	}
	lo, hi := offLoHi(off)
	for {
		calls++
		r, _, e := syscall.Syscall6(trap, fd, uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)), lo, hi, 0)
		runtime.KeepAlive(bufs)
		if e == syscall.EINTR {
			continue
		}
		if e != 0 {
			return 0, calls, e
		}
		return int(r), calls, nil
	}
}

// vecFull drives vecCall until every byte of bufs has transferred,
// chunking at maxIovecs and resuming after short transfers. bufs is
// consumed: the slice and its entries are re-sliced as data moves, so
// callers pass a scratch header slice (the underlying block buffers
// are never modified beyond the transfer itself).
func vecFull(trap uintptr, f *os.File, bufs [][]byte, off int64) (calls int, err error) {
	sc, err := f.SyscallConn()
	if err != nil {
		return 0, err
	}
	var inner error
	cerr := sc.Control(func(fd uintptr) {
		for len(bufs) > 0 {
			chunk := bufs
			if len(chunk) > maxIovecs {
				chunk = chunk[:maxIovecs]
			}
			n, c, err := vecCall(trap, fd, chunk, off)
			calls += c
			if err != nil {
				inner = err
				return
			}
			if n == 0 {
				if trap == syscall.SYS_PWRITEV {
					inner = io.ErrShortWrite
				} else {
					inner = io.ErrUnexpectedEOF
				}
				return
			}
			off += int64(n)
			for n > 0 {
				if n >= len(bufs[0]) {
					n -= len(bufs[0])
					bufs = bufs[1:]
				} else {
					bufs[0] = bufs[0][n:]
					n = 0
				}
			}
		}
	})
	if cerr != nil {
		return calls, cerr
	}
	return calls, inner
}

// preadvFull reads len(bufs) buffers from contiguous file offsets
// starting at off in as few preadv calls as short reads allow.
func preadvFull(f *os.File, bufs [][]byte, off int64) (calls int, err error) {
	return vecFull(syscall.SYS_PREADV, f, bufs, off)
}

// pwritevFull writes len(bufs) buffers to contiguous file offsets
// starting at off.
func pwritevFull(f *os.File, bufs [][]byte, off int64) (calls int, err error) {
	return vecFull(syscall.SYS_PWRITEV, f, bufs, off)
}
