package disk

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fillPattern stamps a recognizable per-block pattern.
func fillPattern(buf []byte, file, blk int32) {
	for i := range buf {
		buf[i] = byte(int32(i) + file*31 + blk*7)
	}
}

func newTestFileStore(t *testing.T) *FileStore {
	t.Helper()
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "store.dat"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

// TestFileStoreBatchRoundTrip drives WriteBlocks/ReadBlocks through
// both the vectored path and the portable ReadAt/WriteAt fallback and
// requires identical bytes from each — the preadv fallback test of the
// issue. The batch mixes two files, out-of-order blocks, and an
// unwritten span that must read back as zeros.
func TestFileStoreBatchRoundTrip(t *testing.T) {
	for _, vectored := range []bool{true, false} {
		t.Run(fmt.Sprintf("vectored=%v", vectored), func(t *testing.T) {
			fs := newTestFileStore(t)
			fs.SetVectored(vectored)

			specs := []BlockSpan{{1, 2}, {1, 0}, {1, 1}, {2, 5}, {1, 3}}
			srcs := make([][]byte, len(specs))
			for i, sp := range specs {
				srcs[i] = make([]byte, BlockSize)
				fillPattern(srcs[i], sp.File, sp.Blk)
			}
			for i, err := range fs.WriteBlocks(specs, srcs) {
				if err != nil {
					t.Fatalf("WriteBlocks[%d]: %v", i, err)
				}
			}

			rspecs := append([]BlockSpan{{3, 9}}, specs...) // {3,9} never written
			dsts := make([][]byte, len(rspecs))
			for i := range dsts {
				dsts[i] = bytes.Repeat([]byte{0xff}, BlockSize)
			}
			for i, err := range fs.ReadBlocks(rspecs, dsts) {
				if err != nil {
					t.Fatalf("ReadBlocks[%d]: %v", i, err)
				}
			}
			if dsts[0][0] != 0 || dsts[0][BlockSize-1] != 0 {
				t.Error("unwritten span did not read as zeros")
			}
			want := make([]byte, BlockSize)
			for i, sp := range rspecs[1:] {
				fillPattern(want, sp.File, sp.Blk)
				if !bytes.Equal(dsts[i+1], want) {
					t.Errorf("span %v read wrong bytes", sp)
				}
			}

			// The scalar path must see the same bytes the batch wrote.
			one := make([]byte, BlockSize)
			if err := fs.ReadBlock(2, 5, one); err != nil {
				t.Fatal(err)
			}
			fillPattern(want, 2, 5)
			if !bytes.Equal(one, want) {
				t.Error("ReadBlock disagrees with WriteBlocks")
			}
		})
	}
}

// TestFileStoreRunAwareSlots pins the slot-layout policy: a batched
// write of sequential file blocks against a fresh store must land them
// in sequential slots, so the cold read of the same range needs exactly
// one vectored call each way.
func TestFileStoreRunAwareSlots(t *testing.T) {
	if !vectoredIO {
		t.Skip("no vectored I/O on this platform")
	}
	fs := newTestFileStore(t)

	const n = 16
	specs := make([]BlockSpan, n)
	srcs := make([][]byte, n)
	// Present the run out of order: run-aware allocation must sort
	// before assigning slots.
	for i := 0; i < n; i++ {
		specs[i] = BlockSpan{File: 7, Blk: int32((i*5 + 3) % n)}
		srcs[i] = make([]byte, BlockSize)
		fillPattern(srcs[i], 7, specs[i].Blk)
	}
	for i, err := range fs.WriteBlocks(specs, srcs) {
		if err != nil {
			t.Fatalf("WriteBlocks[%d]: %v", i, err)
		}
	}
	if sr, _, sw, vw := fs.IOCounts(); sr != 0 || sw != 0 || vw != 1 {
		t.Errorf("16-block write batch: scalar reads %d, scalar writes %d, pwritev calls %d; want 0 0 1", sr, sw, vw)
	}

	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, BlockSize)
	}
	for i, err := range fs.ReadBlocks(specs, dsts) {
		if err != nil {
			t.Fatalf("ReadBlocks[%d]: %v", i, err)
		}
	}
	if _, vr, _, _ := fs.IOCounts(); vr != 1 {
		t.Errorf("sequential 16-block read batch took %d preadv calls, want 1", vr)
	}
	want := make([]byte, BlockSize)
	for i, sp := range specs {
		fillPattern(want, sp.File, sp.Blk)
		if !bytes.Equal(dsts[i], want) {
			t.Errorf("span %v read wrong bytes", sp)
		}
	}
}

// TestWriteBlocksDuplicateLastWins pins the documented duplicate rule:
// naming the same block twice in one batch behaves like two sequential
// WriteBlock calls — the later span wins.
func TestWriteBlocksDuplicateLastWins(t *testing.T) {
	for _, store := range []struct {
		name string
		s    Store
	}{
		{"file", newTestFileStore(t)},
		{"mem", NewMemStore()},
	} {
		t.Run(store.name, func(t *testing.T) {
			first := bytes.Repeat([]byte{0x11}, BlockSize)
			second := bytes.Repeat([]byte{0x22}, BlockSize)
			specs := []BlockSpan{{1, 0}, {1, 1}, {1, 0}}
			srcs := [][]byte{first, bytes.Repeat([]byte{0x33}, BlockSize), second}
			for i, err := range WriteBatch(store.s, specs, srcs) {
				if err != nil {
					t.Fatalf("WriteBatch[%d]: %v", i, err)
				}
			}
			got := make([]byte, BlockSize)
			if err := store.s.ReadBlock(1, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, second) {
				t.Error("duplicate span: first write won, want last")
			}
		})
	}
}

// plainStore hides a Store's batch face, forcing the helper fallback.
type plainStore struct{ s Store }

func (p plainStore) ReadBlock(file, blk int32, dst []byte) error {
	return p.s.ReadBlock(file, blk, dst)
}
func (p plainStore) WriteBlock(file, blk int32, src []byte) error {
	return p.s.WriteBlock(file, blk, src)
}
func (p plainStore) Close() error { return p.s.Close() }

// TestBatchHelperFallback drives ReadBatch/WriteBatch over a Store that
// does not implement BatchStore and checks per-block semantics hold.
func TestBatchHelperFallback(t *testing.T) {
	s := plainStore{NewMemStore()}
	specs := []BlockSpan{{4, 0}, {4, 1}}
	srcs := [][]byte{
		bytes.Repeat([]byte{0x0a}, BlockSize),
		bytes.Repeat([]byte{0x0b}, BlockSize),
	}
	for i, err := range WriteBatch(s, specs, srcs) {
		if err != nil {
			t.Fatalf("WriteBatch[%d]: %v", i, err)
		}
	}
	dsts := [][]byte{make([]byte, BlockSize), make([]byte, BlockSize)}
	for i, err := range ReadBatch(s, specs, dsts) {
		if err != nil {
			t.Fatalf("ReadBatch[%d]: %v", i, err)
		}
	}
	if !bytes.Equal(dsts[0], srcs[0]) || !bytes.Equal(dsts[1], srcs[1]) {
		t.Error("fallback round trip corrupted bytes")
	}

	// A bad buffer surfaces per-span without failing the others.
	dsts[1] = dsts[1][:16]
	errs := ReadBatch(s, specs, dsts)
	if errs[0] != nil || errs[1] == nil {
		t.Errorf("short-buffer errors = %v, want [nil, non-nil]", errs)
	}
}

// TestMemStoreBatchLatency pins the batch-aware latency model: an
// n-block batch pays the base latency once plus the per-extra-block
// transfer cost, not n full seeks, so a batch is firmly cheaper than n
// scalar ops but not free.
func TestMemStoreBatchLatency(t *testing.T) {
	m := NewMemStore()
	const base = 10 * time.Millisecond
	m.SetLatency(base, 0)

	const n = 8
	specs := make([]BlockSpan, n)
	dsts := make([][]byte, n)
	for i := range specs {
		specs[i] = BlockSpan{File: 1, Blk: int32(i)}
		dsts[i] = make([]byte, BlockSize)
	}
	t0 := time.Now()
	for i, err := range m.ReadBlocks(specs, dsts) {
		if err != nil {
			t.Fatalf("ReadBlocks[%d]: %v", i, err)
		}
	}
	d := time.Since(t0)
	want := base + (n-1)*base/memTransferDiv
	if d < want {
		t.Errorf("8-block batch took %v, want >= %v (seek + transfer)", d, want)
	}
	if lim := time.Duration(n) * base; d >= lim {
		t.Errorf("8-block batch took %v, want < %v (n full seeks means batching bought nothing)", d, lim)
	}
}

// TestMemStoreWriteReuse pins the satellite: steady-state rewrites of
// an existing block must reuse the stored buffer, not allocate a fresh
// 8 KB copy per write.
func TestMemStoreWriteReuse(t *testing.T) {
	m := NewMemStore()
	src := bytes.Repeat([]byte{0x5a}, BlockSize)
	if err := m.WriteBlock(1, 1, src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.WriteBlock(1, 1, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("rewriting an existing block allocates %.1f times per op, want 0", allocs)
	}
}

// TestBatchConcurrentRace hammers batched and scalar reads and writes
// from concurrent goroutines over both backends; it asserts nothing
// beyond error-freedom — its job is to give the race detector traffic
// over the slot map, the IO counters and the block map.
func TestBatchConcurrentRace(t *testing.T) {
	stores := []struct {
		name string
		s    Store
	}{
		{"file", newTestFileStore(t)},
		{"mem", NewMemStore()},
	}
	for _, store := range stores {
		t.Run(store.name, func(t *testing.T) {
			const workers, rounds, span = 8, 20, 12
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					specs := make([]BlockSpan, span)
					bufs := make([][]byte, span)
					for i := range specs {
						specs[i] = BlockSpan{File: int32(w % 3), Blk: int32(i)}
						bufs[i] = make([]byte, BlockSize)
					}
					one := make([]byte, BlockSize)
					for r := 0; r < rounds; r++ {
						switch w % 4 {
						case 0:
							for i, err := range WriteBatch(store.s, specs, bufs) {
								if err != nil {
									t.Errorf("WriteBatch[%d]: %v", i, err)
								}
							}
						case 1:
							for i, err := range ReadBatch(store.s, specs, bufs) {
								if err != nil {
									t.Errorf("ReadBatch[%d]: %v", i, err)
								}
							}
						case 2:
							if err := store.s.WriteBlock(int32(w%3), int32(r%span), one); err != nil {
								t.Errorf("WriteBlock: %v", err)
							}
						default:
							if err := store.s.ReadBlock(int32(w%3), int32(r%span), one); err != nil {
								t.Errorf("ReadBlock: %v", err)
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestFileStoreScalarCounters sanity-checks IOCounts on the scalar
// path so the profiling tell in DESIGN.md stays honest.
func TestFileStoreScalarCounters(t *testing.T) {
	fs := newTestFileStore(t)
	buf := make([]byte, BlockSize)
	if err := fs.WriteBlock(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadBlock(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadBlock(1, 99, buf); err != nil { // unwritten: no I/O
		t.Fatal(err)
	}
	sr, vr, sw, vw := fs.IOCounts()
	if sr != 1 || vr != 0 || sw != 1 || vw != 0 {
		t.Errorf("IOCounts = %d %d %d %d, want 1 0 1 0", sr, vr, sw, vw)
	}
}
