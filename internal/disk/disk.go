// Package disk models SCSI disks of the kind used in the paper's testbed
// (DEC RZ56 and RZ26 drives sharing one SCSI bus). The model captures the
// first-order costs that shaped the paper's elapsed-time results: seek time
// proportional to arm travel, rotational latency, media transfer rate,
// C-LOOK request scheduling at each drive (the BSD/Ultrix disksort()
// elevator), bus contention between drives, and the large discount for
// sequential access (track-buffer streaming).
//
// Each disk runs a server process that drains a request queue in elevator
// order, so asynchronous writes naturally batch into sorted sweeps during
// gaps in the read stream, exactly as the real driver behaved.
//
// All timing is in virtual time; the actual block contents are never
// stored — the simulation traffics in block addresses only.
package disk

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// BlockSize is the file-system block size in bytes, as in Ultrix UFS on the
// paper's machines.
const BlockSize = 8192

// Geometry describes a disk model. Times are average figures from the
// drive's data sheet; the paper quotes them in Section 5.2.
type Geometry struct {
	Name        string
	CapacityMB  int     // formatted capacity
	Cylinders   int     // seek distance domain
	MinSeekMS   float64 // single-cylinder (track-to-track) seek
	AvgSeekMS   float64 // average seek, as quoted by the paper
	AvgRotMS    float64 // average rotational latency = half a revolution
	TransferMBs float64 // peak media transfer rate, MB/s
	TrackBlocks int     // file-system blocks per track (sequential-run cost)
	// SeqEfficiency is the fraction of the peak rate a sequential file
	// read actually achieves through the file system (block interleave,
	// fragment layout, per-block kernel latency between requests). UFS
	// on drives of this era delivered roughly half of the data sheet's
	// peak. 0 means 0.55.
	SeqEfficiency float64
}

// seqEff returns the effective sequential efficiency.
func (g Geometry) seqEff() float64 {
	if g.SeqEfficiency > 0 {
		return g.SeqEfficiency
	}
	return 0.55
}

// RZ56 is the 665 MB drive used for cs1-3, din, gli and ldk: average seek
// 16 ms, average rotational latency 8.3 ms, peak transfer 1.875 MB/s.
var RZ56 = Geometry{
	Name:        "RZ56",
	CapacityMB:  665,
	Cylinders:   1632,
	MinSeekMS:   3.0,
	AvgSeekMS:   16.0,
	AvgRotMS:    8.3,
	TransferMBs: 1.875,
	TrackBlocks: 4,
}

// RZ26 is the 1.05 GB drive used for pjn and sort: average seek 10.5 ms,
// average rotational latency 5.54 ms, peak transfer 3.3 MB/s.
var RZ26 = Geometry{
	Name:        "RZ26",
	CapacityMB:  1050,
	Cylinders:   2570,
	MinSeekMS:   2.5,
	AvgSeekMS:   10.5,
	AvgRotMS:    5.54,
	TransferMBs: 3.3,
	TrackBlocks: 4,
}

// Blocks returns the number of file-system blocks the disk holds.
func (g Geometry) Blocks() int {
	return g.CapacityMB * (1 << 20) / BlockSize
}

// transferTime returns the media transfer time for one block.
func (g Geometry) transferTime() sim.Time {
	return sim.FromSeconds(float64(BlockSize) / (g.TransferMBs * 1e6))
}

// maxSeekMS derives the full-stroke seek from the average under the
// square-root seek model: for uniformly random cylinder distances,
// E[sqrt(d/D)] = 2/3, so max = min + (avg-min)*3/2.
func (g Geometry) maxSeekMS() float64 {
	return g.MinSeekMS + (g.AvgSeekMS-g.MinSeekMS)*1.5
}

// Op distinguishes reads from writes on the disk.
type Op int

// Disk operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Sched selects the driver's request scheduling discipline.
type Sched int

// Scheduling disciplines.
const (
	// CLOOK is the BSD disksort elevator: requests serve in ascending
	// address order with wrap-around. The default.
	CLOOK Sched = iota
	// FIFO serves requests strictly in arrival order, as primitive
	// drivers did; it exists for ablations of scheduling effects.
	FIFO
)

func (s Sched) String() string {
	if s == FIFO {
		return "fifo"
	}
	return "c-look"
}

// Bus is the shared SCSI bus connecting disks to the host. Transfers from
// all disks serialize over it.
type Bus struct {
	res *sim.Resource
}

// NewBus returns a SCSI bus for the engine.
func NewBus(eng *sim.Engine) *Bus {
	return &Bus{res: eng.NewResource("scsi-bus")}
}

// Stats returns bus counters.
func (b *Bus) Stats() sim.ResourceStats { return b.res.Stats() }

// request is one queued block operation.
type request struct {
	op     Op
	addr   int
	seq    uint64
	onDone func(sim.Time)
}

// Disk is one simulated drive: a request queue drained by a server process
// in C-LOOK order.
type Disk struct {
	eng      *sim.Engine
	geom     Geometry
	bus      *Bus
	rng      *sim.Rand
	transfer sim.Time
	minSeek  sim.Time
	maxSeek  sim.Time
	fullRev  sim.Time

	queue  []*request
	seq    uint64
	sched  Sched
	idle   *sim.Cond // server parks here when the queue is empty
	server *sim.Proc

	lastAddr int // address of the last block accessed, -1 initially
	headCyl  int

	stats Stats
}

// Stats aggregates per-disk counters.
type Stats struct {
	Reads      int64
	Writes     int64
	Sequential int64 // accesses that streamed without a seek
	RandomAcc  int64 // accesses that paid seek + rotation
	BusyTotal  sim.Time
	WaitTotal  sim.Time // request queueing delay
	MaxQueue   int
}

// IOs returns total block operations.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// New returns a disk with the given geometry attached to the bus. The seed
// feeds the rotational-latency generator; equal seeds give identical runs.
func New(eng *sim.Engine, geom Geometry, bus *Bus, seed uint64) *Disk {
	if geom.TrackBlocks <= 0 {
		panic(fmt.Sprintf("disk: geometry %s has no track size", geom.Name))
	}
	d := &Disk{
		eng:      eng,
		geom:     geom,
		bus:      bus,
		rng:      sim.NewRand(seed),
		transfer: geom.transferTime(),
		minSeek:  sim.FromMillis(geom.MinSeekMS),
		maxSeek:  sim.FromMillis(geom.maxSeekMS()),
		fullRev:  sim.FromMillis(2 * geom.AvgRotMS),
		idle:     eng.NewCond(),
		lastAddr: -1,
	}
	d.server = eng.SpawnDaemon(geom.Name+"-server", d.serve)
	return d
}

// Geometry returns the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

// SetScheduler selects the request scheduling discipline (default CLOOK).
// Call before the simulation starts.
func (d *Disk) SetScheduler(s Sched) { d.sched = s }

// Scheduler returns the discipline in force.
func (d *Disk) Scheduler() Sched { return d.sched }

// Stats returns a snapshot of the disk counters.
func (d *Disk) Stats() Stats { return d.stats }

// QueueLen reports the number of requests waiting (not including the one
// in service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// cylOf maps a block address to its cylinder.
func (d *Disk) cylOf(addr int) int {
	blocksPerCyl := d.geom.Blocks() / d.geom.Cylinders
	if blocksPerCyl == 0 {
		blocksPerCyl = 1
	}
	c := addr / blocksPerCyl
	if c >= d.geom.Cylinders {
		c = d.geom.Cylinders - 1
	}
	return c
}

// seekTime models arm travel with the standard square-root profile.
func (d *Disk) seekTime(fromCyl, toCyl int) sim.Time {
	dist := fromCyl - toCyl
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / float64(d.geom.Cylinders-1))
	return d.minSeek + sim.Time(frac*float64(d.maxSeek-d.minSeek))
}

// serviceTime computes positioning plus transfer cost for one block at
// addr, updating head state. A request for the block immediately after the
// previous one streams from the track buffer: no seek, no rotational
// latency, just the effective transfer (plus a track-switch hiccup at
// track boundaries).
func (d *Disk) serviceTime(addr int) sim.Time {
	sequential := addr == d.lastAddr+1
	cyl := d.cylOf(addr)
	var t sim.Time
	if sequential {
		d.stats.Sequential++
		t = sim.Time(float64(d.transfer) / d.geom.seqEff())
		if addr%d.geom.TrackBlocks == 0 {
			// Head/track switch: brief settle plus rotational slip.
			t += d.minSeek / 2
		}
	} else {
		d.stats.RandomAcc++
		t = d.seekTime(d.headCyl, cyl) + d.rng.Duration(d.fullRev) + d.transfer
	}
	d.lastAddr = addr
	d.headCyl = cyl
	return t
}

// enqueue validates and queues a request, waking the server.
func (d *Disk) enqueue(op Op, addr int, onDone func(sim.Time)) {
	if addr < 0 || addr >= d.geom.Blocks() {
		panic(fmt.Sprintf("disk %s: %v of block %d out of range [0,%d)", d.geom.Name, op, addr, d.geom.Blocks()))
	}
	d.seq++
	d.queue = append(d.queue, &request{op: op, addr: addr, seq: d.seq, onDone: onDone})
	if len(d.queue) > d.stats.MaxQueue {
		d.stats.MaxQueue = len(d.queue)
	}
	d.idle.Signal()
}

// Start queues an asynchronous operation; onDone (optional) runs at
// completion with the completion time.
func (d *Disk) Start(op Op, addr int, onDone func(sim.Time)) {
	d.enqueue(op, addr, onDone)
}

// Access performs a synchronous operation: the calling process sleeps
// until the block operation completes, and the completion time is
// returned.
func (d *Disk) Access(p *sim.Proc, op Op, addr int) sim.Time {
	done := p.Engine().NewCond()
	var when sim.Time
	finished := false
	d.enqueue(op, addr, func(t sim.Time) {
		when = t
		finished = true
		done.Broadcast()
	})
	if !finished {
		done.Wait(p)
	}
	return when
}

// pickNext chooses the next request per the scheduling discipline: FIFO
// takes the oldest; C-LOOK (the BSD disksort elevator) serves the request
// with the smallest address at or beyond the head, wrapping to the lowest
// address when none is ahead. Ties break by arrival order.
func (d *Disk) pickNext() int {
	if d.sched == FIFO {
		oldest := 0
		for i, r := range d.queue {
			if r.seq < d.queue[oldest].seq {
				oldest = i
			}
		}
		return oldest
	}
	head := d.lastAddr + 1
	best, bestWrap := -1, -1
	for i, r := range d.queue {
		if r.addr >= head {
			if best == -1 || less(r, d.queue[best]) {
				best = i
			}
		} else if bestWrap == -1 || less(r, d.queue[bestWrap]) {
			bestWrap = i
		}
	}
	if best != -1 {
		return best
	}
	return bestWrap
}

// less orders requests by (addr, arrival).
func less(a, b *request) bool {
	if a.addr != b.addr {
		return a.addr < b.addr
	}
	return a.seq < b.seq
}

// serve is the drive's server loop: pick by elevator, position the arm,
// transfer over the shared bus, complete.
func (d *Disk) serve(p *sim.Proc) {
	for {
		for len(d.queue) == 0 {
			d.idle.Wait(p)
		}
		i := d.pickNext()
		req := d.queue[i]
		d.queue = append(d.queue[:i], d.queue[i+1:]...)

		start := p.Now()
		svc := d.serviceTime(req.addr)
		position := svc - d.transfer
		if position > 0 {
			p.Sleep(position)
		}
		// The final block transfer serializes over the shared bus.
		_, busEnd := d.bus.res.Reserve(d.transfer)
		p.SleepUntil(busEnd)

		if req.op == Read {
			d.stats.Reads++
		} else {
			d.stats.Writes++
		}
		d.stats.BusyTotal += p.Now() - start
		if req.onDone != nil {
			req.onDone(p.Now())
		}
	}
}
