// batch.go — the optional vectored face of a Store.
//
// The fill workers and the write-behind flusher coalesce adjacent blocks
// into runs; a backend that can retire a run in one operation exposes
// BatchStore and gets handed the whole run. Backends that can't (or test
// wrappers that deliberately don't) are driven block-at-a-time by the
// ReadBatch/WriteBatch helpers, so callers never branch on the concrete
// store type.

package disk

// BlockSpan names one block of a batched store request. A batch is a
// flat list of spans plus a parallel list of BlockSize buffers; the
// store decides which spans actually land adjacent on media.
type BlockSpan struct {
	File int32
	Blk  int32
}

// BatchStore is the optional vectored interface a Store may implement.
// Both methods take parallel slices (len(specs) == len(bufs)) and
// return a per-span error slice of the same length, nil entries meaning
// success. A batch is not atomic: some spans may succeed while others
// fail, and callers must consult every entry.
type BatchStore interface {
	// ReadBlocks fills dsts[i] (len BlockSize) with the contents of
	// specs[i]. Unwritten blocks read as zeros, like ReadBlock.
	ReadBlocks(specs []BlockSpan, dsts [][]byte) []error
	// WriteBlocks persists srcs[i] (len BlockSize) as specs[i]'s
	// contents. When one batch names the same block twice, the later
	// span wins, matching sequential WriteBlock calls.
	WriteBlocks(specs []BlockSpan, srcs [][]byte) []error
}

// ReadBatch reads a batch through s, using the vectored path when s
// implements BatchStore and a per-block ReadBlock loop otherwise. The
// fallback keeps plain Store implementations (and counting test
// wrappers) semantically identical to the batched path.
func ReadBatch(s Store, specs []BlockSpan, dsts [][]byte) []error {
	if bs, ok := s.(BatchStore); ok {
		return bs.ReadBlocks(specs, dsts)
	}
	errs := make([]error, len(specs))
	for i, sp := range specs {
		errs[i] = s.ReadBlock(sp.File, sp.Blk, dsts[i])
	}
	return errs
}

// WriteBatch writes a batch through s, vectored when possible, looped
// otherwise.
func WriteBatch(s Store, specs []BlockSpan, srcs [][]byte) []error {
	if bs, ok := s.(BatchStore); ok {
		return bs.WriteBlocks(specs, srcs)
	}
	errs := make([]error, len(specs))
	for i, sp := range specs {
		errs[i] = s.WriteBlock(sp.File, sp.Blk, srcs[i])
	}
	return errs
}
