package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/fs"
	"repro/internal/sim"
)

func seq(n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{File: 1, Block: int32(i)}
	}
	return refs
}

func cyclic(blocks, passes int) []Ref {
	var refs []Ref
	for p := 0; p < passes; p++ {
		refs = append(refs, seq(blocks)...)
	}
	return refs
}

func TestTraceAppendAndUnique(t *testing.T) {
	var tr Trace
	tr.Append(1, 0)
	tr.Append(1, 1)
	tr.Append(1, 0)
	tr.Append(2, 0)
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Unique() != 3 {
		t.Errorf("Unique = %d, want 3", tr.Unique())
	}
	if got := (Ref{File: 2, Block: 7}).String(); got != "f2:7" {
		t.Errorf("String = %q", got)
	}
}

func TestLRUCyclicThrash(t *testing.T) {
	// The canonical pathology: a cycle one block larger than the cache
	// misses on every reference under LRU.
	refs := cyclic(11, 5)
	r := SimLRU(refs, 10)
	if r.Hits != 0 {
		t.Errorf("LRU hits = %d on an over-size cycle, want 0", r.Hits)
	}
	if r.HitRatio() != 0 {
		t.Errorf("HitRatio = %v", r.HitRatio())
	}
}

func TestMRUCyclicKeepsPrefix(t *testing.T) {
	refs := cyclic(20, 5)
	r := SimMRU(refs, 10)
	// MRU keeps blocks 0..8 resident; each pass misses about 11 of 20.
	// Compulsory 20 + 4 passes x ~11.
	if r.Misses > 70 || r.Misses < 20 {
		t.Errorf("MRU misses = %d, want about 64", r.Misses)
	}
	lru := SimLRU(refs, 10)
	if r.Misses >= lru.Misses {
		t.Errorf("MRU (%d) not better than LRU (%d) on a cycle", r.Misses, lru.Misses)
	}
}

func TestFittingWorkingSetAllPoliciesEqual(t *testing.T) {
	refs := cyclic(10, 5)
	for _, r := range Compare(refs, 10) {
		if r.Misses != 10 {
			t.Errorf("%s: misses = %d, want compulsory 10", r.Policy, r.Misses)
		}
	}
}

func TestOPTOnCycleEqualsMRUIdeal(t *testing.T) {
	// On a pure cycle OPT keeps capacity blocks resident and misses
	// exactly blocks-capacity times per subsequent pass.
	const blocks, passes, capacity = 20, 5, 10
	refs := cyclic(blocks, passes)
	r := SimOPT(refs, capacity)
	want := int64(blocks + (passes-1)*(blocks-capacity))
	if r.Misses != want {
		t.Errorf("OPT misses = %d, want %d", r.Misses, want)
	}
}

func TestOPTHotCold(t *testing.T) {
	// A hot block touched every other reference with a cold stream: OPT
	// must keep the hot block (2 misses only: hot + per cold block).
	var refs []Ref
	hot := Ref{File: 9, Block: 0}
	for i := 0; i < 100; i++ {
		refs = append(refs, Ref{File: 1, Block: int32(i)}, hot)
	}
	r := SimOPT(refs, 4)
	if r.Misses != 101 {
		t.Errorf("OPT misses = %d, want 101 (hot block never evicted)", r.Misses)
	}
}

func TestCapacityOnePanicsZero(t *testing.T) {
	for _, f := range []func([]Ref, int) Result{SimLRU, SimMRU, SimOPT} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero capacity did not panic")
				}
			}()
			f(seq(3), 0)
		}()
	}
}

func TestCapacityOne(t *testing.T) {
	refs := []Ref{{1, 0}, {1, 0}, {1, 1}, {1, 0}}
	for _, r := range Compare(refs, 1) {
		if r.Hits != 1 {
			t.Errorf("%s: hits = %d, want 1", r.Policy, r.Hits)
		}
	}
}

// TestQuickOPTIsOptimal: OPT must never miss more than LRU or MRU on any
// stream — the defining property of Belady's algorithm.
func TestQuickOPTIsOptimal(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := 1 + int(capRaw)%16
		rng := sim.NewRand(seed)
		refs := make([]Ref, 1500)
		for i := range refs {
			refs[i] = Ref{File: fs.FileID(1 + rng.Intn(2)), Block: int32(rng.Intn(40))}
		}
		opt := SimOPT(refs, capacity)
		if opt.Misses > SimLRU(refs, capacity).Misses {
			return false
		}
		return opt.Misses <= SimMRU(refs, capacity).Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickConservation: for all policies, hits + misses = references and
// misses >= unique blocks (compulsory).
func TestQuickConservation(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := 1 + int(capRaw)%20
		rng := sim.NewRand(seed)
		var tr Trace
		for i := 0; i < 800; i++ {
			tr.Append(fs.FileID(1+rng.Intn(3)), int32(rng.Intn(30)))
		}
		for _, r := range Compare(tr.Refs, capacity) {
			if r.Hits+r.Misses != int64(tr.Len()) {
				return false
			}
			if r.Misses < int64(tr.Unique()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLRUStackProperty: LRU has the inclusion property — a bigger
// cache never misses more.
func TestQuickLRUStackProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		refs := make([]Ref, 1000)
		for i := range refs {
			refs[i] = Ref{File: 1, Block: int32(rng.Intn(50))}
		}
		prev := int64(1 << 60)
		for _, capacity := range []int{2, 4, 8, 16, 32} {
			m := SimLRU(refs, capacity).Misses
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickOPTStackProperty: OPT also has the inclusion property.
func TestQuickOPTStackProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		refs := make([]Ref, 1000)
		for i := range refs {
			refs[i] = Ref{File: 1, Block: int32(rng.Intn(50))}
		}
		prev := int64(1 << 60)
		for _, capacity := range []int{2, 4, 8, 16, 32} {
			m := SimOPT(refs, capacity).Misses
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLRU2ScanResistance(t *testing.T) {
	// Hot set re-referenced between one-shot scan blocks: LRU-2 keeps
	// the hot set (scan blocks have infinite 2-distance) while LRU lets
	// the scan flush it.
	var refs []Ref
	scan := int32(0)
	for i := 0; i < 400; i++ {
		refs = append(refs, Ref{File: 9, Block: int32(i % 4)}) // hot 4
		for j := 0; j < 3; j++ {                               // heavy scan
			refs = append(refs, Ref{File: 1, Block: scan})
			scan++
		}
	}
	// Hot reuse distance (15 distinct blocks) exceeds the cache, so LRU
	// thrashes the hot set; LRU-2 evicts the once-referenced scan blocks
	// first and keeps it.
	lru := SimLRU(refs, 8)
	lru2 := SimLRU2(refs, 8)
	if lru2.Misses >= lru.Misses {
		t.Errorf("LRU-2 (%d misses) not scan-resistant vs LRU (%d)", lru2.Misses, lru.Misses)
	}
	// Misses under LRU-2: the 1200 scan blocks plus a handful of hot
	// compulsories.
	if lru2.Misses > 1210 {
		t.Errorf("LRU-2 misses = %d, want close to 1204", lru2.Misses)
	}
}

func TestLRU2CapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	SimLRU2(seq(3), 0)
}

func TestLRU2NeverBelowOPT(t *testing.T) {
	rng := sim.NewRand(31)
	refs := make([]Ref, 2000)
	for i := range refs {
		refs[i] = Ref{File: 1, Block: int32(rng.Intn(60))}
	}
	if SimLRU2(refs, 16).Misses < SimOPT(refs, 16).Misses {
		t.Error("LRU-2 beat OPT, which is impossible")
	}
}
