// Package trace captures block reference streams from simulation runs and
// replays them through standalone single-process replacement policies —
// LRU, MRU, and Belady's optimal (OPT). The paper's companion work
// (USENIX '94) argues application policies should be derived from the
// optimal replacement principle; replaying a workload's own stream
// through OPT gives the unreachable lower bound on misses that a smart
// policy is trying to approach.
package trace

import (
	"container/heap"
	"fmt"

	"repro/internal/fs"
)

// Ref is one block reference.
type Ref struct {
	File  fs.FileID
	Block int32
}

func (r Ref) String() string { return fmt.Sprintf("f%d:%d", r.File, r.Block) }

// Trace is an append-only reference stream.
type Trace struct {
	Refs []Ref
}

// Append records one reference.
func (t *Trace) Append(file fs.FileID, block int32) {
	t.Refs = append(t.Refs, Ref{File: file, Block: block})
}

// Len returns the stream length.
func (t *Trace) Len() int { return len(t.Refs) }

// Unique returns the number of distinct blocks referenced (the compulsory
// miss count).
func (t *Trace) Unique() int {
	seen := make(map[Ref]struct{}, len(t.Refs))
	for _, r := range t.Refs {
		seen[r] = struct{}{}
	}
	return len(seen)
}

// Result summarizes one policy replay.
type Result struct {
	Policy   string
	Capacity int
	Hits     int64
	Misses   int64
}

// HitRatio reports hits / references.
func (r Result) HitRatio() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// SimLRU replays the stream through a single least-recently-used cache of
// the given capacity.
func SimLRU(refs []Ref, capacity int) Result {
	return simEndList(refs, capacity, "LRU", false)
}

// SimMRU replays the stream through a most-recently-used cache: on
// pressure, the block touched most recently is replaced.
func SimMRU(refs []Ref, capacity int) Result {
	return simEndList(refs, capacity, "MRU", true)
}

// lruNode is a doubly linked recency-list node.
type lruNode struct {
	ref        Ref
	prev, next *lruNode
}

// simEndList runs a recency list evicting from the LRU end (lru=false ->
// victim head) or the MRU end (mru: victim tail).
func simEndList(refs []Ref, capacity int, name string, mru bool) Result {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	res := Result{Policy: name, Capacity: capacity}
	head, tail := &lruNode{}, &lruNode{} // sentinels; head side = LRU
	head.next, tail.prev = tail, head
	nodes := make(map[Ref]*lruNode, capacity)
	unlink := func(n *lruNode) {
		n.prev.next = n.next
		n.next.prev = n.prev
	}
	pushMRU := func(n *lruNode) {
		n.prev = tail.prev
		n.next = tail
		n.prev.next = n
		tail.prev = n
	}
	for _, r := range refs {
		if n, ok := nodes[r]; ok {
			res.Hits++
			unlink(n)
			pushMRU(n)
			continue
		}
		res.Misses++
		if len(nodes) >= capacity {
			var victim *lruNode
			if mru {
				victim = tail.prev
			} else {
				victim = head.next
			}
			unlink(victim)
			delete(nodes, victim.ref)
		}
		n := &lruNode{ref: r}
		nodes[r] = n
		pushMRU(n)
	}
	return res
}

// optEntry is a heap element for SimOPT: the block and the stream index of
// its next use at the time the entry was pushed.
type optEntry struct {
	ref     Ref
	nextUse int
}

type optHeap []optEntry

func (h optHeap) Len() int            { return len(h) }
func (h optHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse } // max-heap
func (h optHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x interface{}) { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// infinity is a next-use index beyond any stream position.
const infinity = int(^uint(0) >> 1)

// SimOPT replays the stream through Belady's optimal policy: on pressure,
// replace the cached block whose next use is farthest in the future. This
// requires the whole stream up front, which is exactly why it is a bound
// rather than a policy.
func SimOPT(refs []Ref, capacity int) Result {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	res := Result{Policy: "OPT", Capacity: capacity}
	// next[i] = stream index of the next reference to refs[i] after i.
	next := make([]int, len(refs))
	last := make(map[Ref]int, capacity)
	for i := len(refs) - 1; i >= 0; i-- {
		if j, ok := last[refs[i]]; ok {
			next[i] = j
		} else {
			next[i] = infinity
		}
		last[refs[i]] = i
	}
	cached := make(map[Ref]int, capacity) // block -> current next use
	h := &optHeap{}
	for i, r := range refs {
		if _, ok := cached[r]; ok {
			res.Hits++
			cached[r] = next[i]
			heap.Push(h, optEntry{ref: r, nextUse: next[i]})
			continue
		}
		res.Misses++
		if len(cached) >= capacity {
			// Pop lazily until a live entry surfaces: an entry is live
			// if it matches the block's current next-use.
			for {
				e := heap.Pop(h).(optEntry)
				if cur, ok := cached[e.ref]; ok && cur == e.nextUse {
					delete(cached, e.ref)
					break
				}
			}
		}
		cached[r] = next[i]
		heap.Push(h, optEntry{ref: r, nextUse: next[i]})
	}
	return res
}

// Compare replays the stream through LRU, MRU, LRU-2 and OPT at one
// capacity.
func Compare(refs []Ref, capacity int) []Result {
	return []Result{
		SimLRU(refs, capacity),
		SimMRU(refs, capacity),
		SimLRU2(refs, capacity),
		SimOPT(refs, capacity),
	}
}

// lru2Node tracks a block's last two reference times for SimLRU2.
type lru2Node struct {
	ref        Ref
	last, prev int // stream indices; prev = -1 until the second access
}

// SimLRU2 replays the stream through the LRU-2 policy of O'Neil, O'Neil
// and Weikum (cited by the paper for database buffering): the victim is
// the block with the oldest second-most-recent reference; blocks
// referenced only once have an infinite backward 2-distance and go first,
// oldest last-reference first. Reference history is retained past
// eviction (the algorithm's Retained Information Period, unbounded here
// since this is an offline analysis tool), which is what makes LRU-2
// scan-resistant: one-shot scans cannot displace blocks with established
// reuse.
func SimLRU2(refs []Ref, capacity int) Result {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	res := Result{Policy: "LRU-2", Capacity: capacity}
	cached := make(map[Ref]*lru2Node, capacity)
	history := make(map[Ref]int) // last reference of evicted blocks
	for i, r := range refs {
		if n, ok := cached[r]; ok {
			res.Hits++
			n.prev = n.last
			n.last = i
			continue
		}
		res.Misses++
		if len(cached) >= capacity {
			var victim *lru2Node
			for _, n := range cached {
				if victim == nil {
					victim = n
					continue
				}
				vOnce, nOnce := victim.prev < 0, n.prev < 0
				switch {
				case nOnce && !vOnce:
					victim = n
				case nOnce == vOnce:
					// Same class: compare 2-distance (or plain
					// recency for the once-referenced class).
					vKey, nKey := victim.prev, n.prev
					if vOnce {
						vKey, nKey = victim.last, n.last
					}
					if nKey < vKey {
						victim = n
					}
				}
			}
			history[victim.ref] = victim.last
			delete(cached, victim.ref)
		}
		prev := -1
		if h, ok := history[r]; ok {
			prev = h
			delete(history, r)
		}
		cached[r] = &lru2Node{ref: r, last: i, prev: prev}
	}
	return res
}
