// store.go — NodeStore: one cluster node's base block store, the layer
// that makes a peer "just another fill source". It sits where MemStore
// or FileStore would (under the server's per-shard remap, driven by the
// same fill workers and write-behind flusher), translates the wire file
// ids it is handed back to names, and serves each access from one of
// two places:
//
//   - a warm peer: when this node owns the file in the current ring,
//     the node that would own it if this node were absent — i.e. the
//     previous owner after a join, the handoff source — probably still
//     has the blocks cached, so the fill round-trips the typed client
//     to that peer and lands the bytes straight in the arena slot;
//   - the origin: the shared name-addressed backing store, for
//     everything else and for every write-back.
//
// The owner-only guard on the peer path is the cascade breaker: a node
// asked for a file it does *not* own (it is being used as someone
// else's fill source, or a failed-over client landed here) fills from
// the origin, never from another peer, so a pull chain is at most one
// hop and two nodes can never feed each other the same miss forever.
//
// Peer and origin failures are never folded into a generic fill error:
// each one increments PeerFillErrors, and the error is returned up the
// fill path, where the kernel surfaces it to the requesting session as
// an io status (the same treatment PR 6 gave ErrWriteBack).

package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/stats"
)

// ErrPeerFill wraps every failure of the cluster fill path, so callers
// can distinguish "the cluster tier could not produce the block" from
// kernel-level errors. It maps to the io status on the wire.
var ErrPeerFill = errors.New("cluster: peer fill failed")

// peer is one remote node as a fill source: a redialed typed
// connection plus the name→file handle cache scoped to the current
// connection (wire ids are per-session-visible but survive reconnects
// only as long as the remote process lives, so the cache resets on
// every fresh dial).
type peer struct {
	addr string
	rd   *client.Redialer[*client.Conn]

	mu    sync.Mutex
	files map[string]fs.FileID
	down  bool // sticky: a dead peer stops being consulted (origin serves)
}

func (p *peer) markDown() {
	p.mu.Lock()
	p.down = true
	p.mu.Unlock()
}

func (p *peer) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// open resolves name on the peer, caching the handle per connection.
func (p *peer) open(c *client.Conn, name string) (fs.FileID, error) {
	p.mu.Lock()
	if id, ok := p.files[name]; ok {
		p.mu.Unlock()
		return id, nil
	}
	p.mu.Unlock()
	f, err := c.Open(name)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.files[name] = f.ID
	p.mu.Unlock()
	return f.ID, nil
}

// NodeStore implements disk.Store and disk.BatchStore over the cluster:
// reads pull through a warm peer or the origin, writes (the kernel's
// write-backs and flushes) go to the origin. It learns the id→name
// mapping from the server's FileAnnounce hook, which fires on every
// open and create — always before any fill can reference the id.
type NodeStore struct {
	self   string
	origin Origin
	ring   atomic.Pointer[Ring]

	mu       sync.RWMutex
	names    map[int32]string // wire id -> name (FileAnnounce)
	noPeer   map[string]bool  // names the warm peer lacks (negative cache)
	peers    map[string]*peer
	peerWarm bool // consult warm peers at all (off for a 1-node tier)

	peerFills      atomic.Int64
	peerFillMisses atomic.Int64
	peerFillErrors atomic.Int64
}

// NewNodeStore builds the store for node self over the given origin and
// initial membership ring.
func NewNodeStore(self string, ring *Ring, origin Origin) *NodeStore {
	ns := &NodeStore{
		self:   self,
		origin: origin,
		names:  make(map[int32]string),
		noPeer: make(map[string]bool),
		peers:  make(map[string]*peer),
	}
	ns.ring.Store(ring)
	ns.peerWarm = ring.Len() > 1
	return ns
}

// Announce records a wire id → name binding; the server's FileAnnounce
// hook. Re-announcing (every open) is idempotent.
func (ns *NodeStore) Announce(wire int32, name string) {
	ns.mu.Lock()
	if ns.names[wire] != name {
		ns.names[wire] = name
	}
	ns.mu.Unlock()
}

// Ring returns the current membership ring.
func (ns *NodeStore) Ring() *Ring { return ns.ring.Load() }

// FillStats snapshots the peer-fill counters; the server's ExtraFill
// hook, folding them into the aggregated kernel snapshot on all three
// stats surfaces.
func (ns *NodeStore) FillStats() stats.FillStats {
	return stats.FillStats{
		PeerFills:      ns.peerFills.Load(),
		PeerFillMisses: ns.peerFillMisses.Load(),
		PeerFillErrors: ns.peerFillErrors.Load(),
	}
}

func (ns *NodeStore) name(wire int32) (string, error) {
	ns.mu.RLock()
	name, ok := ns.names[wire]
	ns.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: no name announced for wire file %d", ErrPeerFill, wire)
	}
	return name, nil
}

// Peer returns (dialing if needed) the typed connection to addr — also
// the transport the warm handoff streams over.
func (ns *NodeStore) Peer(addr string) (*client.Conn, *peer, error) {
	ns.mu.Lock()
	p, ok := ns.peers[addr]
	if !ok {
		network, hostOrPath, err := SplitAddr(addr)
		if err != nil {
			ns.mu.Unlock()
			return nil, nil, err
		}
		p = &peer{addr: addr}
		p.rd = &client.Redialer[*client.Conn]{
			Dial:        func() (*client.Conn, error) { return client.Dial(network, hostOrPath) },
			DialTimeout: peerDialTimeout,
			Attempts:    2,
			OnConnect: func(*client.Conn) error {
				p.mu.Lock()
				p.files = make(map[string]fs.FileID)
				p.mu.Unlock()
				return nil
			},
		}
		ns.peers[addr] = p
	}
	ns.mu.Unlock()
	c, err := p.rd.Get()
	if err != nil {
		return nil, p, err
	}
	return c, p, nil
}

// warmPeer picks the peer to consult for name, or "" when the origin
// should serve directly: the peer path is only for files this node
// owns (the cascade breaker), and the source is the node that owned
// the file before this node was in the ring.
func (ns *NodeStore) warmPeer(name string) string {
	ns.mu.RLock()
	warm, skip := ns.peerWarm, ns.noPeer[name]
	ns.mu.RUnlock()
	if !warm || skip {
		return ""
	}
	ring := ns.ring.Load()
	if ring.Len() < 2 || ring.Owner(name) != ns.self {
		return ""
	}
	prev := ring.Without(ns.self).Owner(name)
	if prev == "" || prev == ns.self {
		return ""
	}
	if _, p, _ := ns.peerNoDial(prev); p != nil && p.isDown() {
		return ""
	}
	return prev
}

// peerNoDial looks the peer record up without dialing.
func (ns *NodeStore) peerNoDial(addr string) (*client.Conn, *peer, error) {
	ns.mu.RLock()
	p := ns.peers[addr]
	ns.mu.RUnlock()
	return nil, p, nil
}

// readFromPeer pulls one block of name from the warm peer into dst.
// Returns (served, err): err non-nil only for real failures (counted by
// the caller); a clean miss (the peer has no such file) negative-caches
// the name and reports served=false with no error.
func (ns *NodeStore) readFromPeer(addr, name string, blk int32, dst []byte) (bool, error) {
	c, p, err := ns.Peer(addr)
	if err != nil {
		if p != nil {
			p.markDown()
		}
		return false, err
	}
	fid, err := p.open(c, name)
	if err != nil {
		if se := (*client.StatusError)(nil); errors.As(err, &se) && se.Status == server.StatusNotFound {
			ns.mu.Lock()
			ns.noPeer[name] = true
			ns.mu.Unlock()
			ns.peerFillMisses.Add(1)
			return false, nil
		}
		p.rd.Invalidate(c)
		return false, err
	}
	if _, err := c.ReadInto(fid, blk, 0, disk.BlockSize, dst); err != nil {
		if se := (*client.StatusError)(nil); errors.As(err, &se) {
			// An in-protocol failure (the peer is up but cannot produce
			// the block): don't tear the connection down, just fall to
			// the origin.
			return false, err
		}
		p.rd.Invalidate(c)
		return false, err
	}
	ns.peerFills.Add(1)
	return true, nil
}

// ReadBlock implements disk.Store: warm peer first when the guard
// allows, the origin otherwise — every failure counted and surfaced.
func (ns *NodeStore) ReadBlock(file, blk int32, dst []byte) error {
	name, err := ns.name(file)
	if err != nil {
		ns.peerFillErrors.Add(1)
		return err
	}
	if addr := ns.warmPeer(name); addr != "" {
		served, perr := ns.readFromPeer(addr, name, blk, dst)
		if served {
			return nil
		}
		if perr != nil {
			ns.peerFillErrors.Add(1)
		}
	}
	if err := ns.origin.ReadBlock(name, blk, dst); err != nil {
		ns.peerFillErrors.Add(1)
		return fmt.Errorf("%w: origin read %s/%d: %v", ErrPeerFill, name, blk, err)
	}
	return nil
}

// WriteBlock implements disk.Store: write-backs and flushes persist to
// the origin under the file's name.
func (ns *NodeStore) WriteBlock(file, blk int32, src []byte) error {
	name, err := ns.name(file)
	if err != nil {
		ns.peerFillErrors.Add(1)
		return err
	}
	if err := ns.origin.WriteBlock(name, blk, src); err != nil {
		ns.peerFillErrors.Add(1)
		return fmt.Errorf("%w: origin write %s/%d: %v", ErrPeerFill, name, blk, err)
	}
	return nil
}

// ReadBlocks implements disk.BatchStore: same-file adjacent runs (the
// shape the fill workers coalesce into) retire as one origin run read;
// a run on the warm-peer path degrades to per-block peer round-trips,
// because the wire protocol reads one block per frame.
func (ns *NodeStore) ReadBlocks(specs []disk.BlockSpan, dsts [][]byte) []error {
	errs := make([]error, len(specs))
	eachRun(specs, func(lo, hi int) {
		name, err := ns.name(specs[lo].File)
		if err != nil {
			ns.peerFillErrors.Add(1)
			for i := lo; i < hi; i++ {
				errs[i] = err
			}
			return
		}
		if addr := ns.warmPeer(name); addr != "" {
			allServed := true
			for i := lo; i < hi; i++ {
				served, perr := ns.readFromPeer(addr, name, specs[i].Blk, dsts[i])
				if perr != nil {
					ns.peerFillErrors.Add(1)
				}
				if !served {
					allServed = false
					break // peer miss or failure: the origin serves the whole run
				}
			}
			if allServed {
				return
			}
		}
		if err := ns.origin.ReadRun(name, specs[lo].Blk, dsts[lo:hi]); err != nil {
			ns.peerFillErrors.Add(1)
			werr := fmt.Errorf("%w: origin read run %s/%d+%d: %v", ErrPeerFill, name, specs[lo].Blk, hi-lo, err)
			for i := lo; i < hi; i++ {
				errs[i] = werr
			}
		}
	})
	return errs
}

// WriteBlocks implements disk.BatchStore: runs go to the origin as one
// vectored write each.
func (ns *NodeStore) WriteBlocks(specs []disk.BlockSpan, srcs [][]byte) []error {
	errs := make([]error, len(specs))
	eachRun(specs, func(lo, hi int) {
		name, err := ns.name(specs[lo].File)
		if err != nil {
			ns.peerFillErrors.Add(1)
			for i := lo; i < hi; i++ {
				errs[i] = err
			}
			return
		}
		if err := ns.origin.WriteRun(name, specs[lo].Blk, srcs[lo:hi]); err != nil {
			ns.peerFillErrors.Add(1)
			werr := fmt.Errorf("%w: origin write run %s/%d+%d: %v", ErrPeerFill, name, specs[lo].Blk, hi-lo, err)
			for i := lo; i < hi; i++ {
				errs[i] = werr
			}
		}
	})
	return errs
}

// eachRun splits specs into same-file consecutive-block runs and calls
// f with each [lo, hi) range. The callers above hand down batches the
// fill workers and flusher already sorted and grouped, but arbitrary
// spans still split correctly — just into more runs.
func eachRun(specs []disk.BlockSpan, f func(lo, hi int)) {
	for i := 0; i < len(specs); {
		j := i + 1
		for j < len(specs) && specs[j].File == specs[i].File && specs[j].Blk == specs[j-1].Blk+1 {
			j++
		}
		f(i, j)
		i = j
	}
}

// Close closes every peer connection. The origin is shared by the whole
// cluster and is closed by whoever created it (both built-in origins
// have no-op Closes).
func (ns *NodeStore) Close() error {
	ns.mu.Lock()
	peers := ns.peers
	ns.peers = make(map[string]*peer)
	ns.mu.Unlock()
	for _, p := range peers {
		p.rd.Close()
	}
	return nil
}
