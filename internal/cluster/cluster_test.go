package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/server/client"
)

// testCluster is n in-process nodes over one shared origin, each
// listening on its own loopback TCP port. The member specs are the
// real listen addresses, so ring routing and dialing agree.
type testCluster struct {
	t       *testing.T
	origin  *MemOrigin
	members []string
	nodes   map[string]*Node
	closed  map[string]bool
}

func startTestCluster(t *testing.T, n int, origin *MemOrigin) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:      t,
		origin: origin,
		nodes:  make(map[string]*Node),
		closed: make(map[string]bool),
	}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tc.members = append(tc.members, "tcp:"+ln.Addr().String())
	}
	for i, m := range tc.members {
		tc.addNode(m, lns[i])
	}
	t.Cleanup(tc.shutdownAll)
	return tc
}

func (tc *testCluster) addNode(self string, ln net.Listener) *Node {
	tc.t.Helper()
	node, err := NewNode(NodeConfig{
		Self:    self,
		Members: tc.members,
		Origin:  tc.origin,
		Server: server.Config{
			Kernel:          core.LiveConfig{CacheBytes: core.MB(1), Alloc: cache.LRUSP},
			Shards:          2,
			WritebackDepth:  4,
			CheckInvariants: true,
		},
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.nodes[self] = node
	go node.Srv.Serve(ln)
	return node
}

// join starts one more node whose member list is the whole cluster plus
// itself — the static-membership join: existing nodes keep their rings.
func (tc *testCluster) join() *Node {
	tc.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tc.t.Fatal(err)
	}
	self := "tcp:" + ln.Addr().String()
	tc.members = append(tc.members, self)
	return tc.addNode(self, ln)
}

func (tc *testCluster) shutdownAll() {
	for m, node := range tc.nodes {
		if tc.closed[m] {
			continue
		}
		tc.closed[m] = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		node.Srv.Shutdown(ctx)
		cancel()
		node.Srv.Close()
	}
}

// leave runs the planned-leave protocol on member m.
func (tc *testCluster) leave(m string, transfer bool) error {
	tc.t.Helper()
	tc.closed[m] = true
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return tc.nodes[m].Leave(ctx, transfer)
}

// kill simulates an abrupt death: sessions severed, shard loops force-
// drained, nothing flushed, nothing streamed.
func (tc *testCluster) kill(m string) {
	tc.t.Helper()
	tc.closed[m] = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Shutdown goes straight to force mode
	tc.nodes[m].Srv.Shutdown(ctx)
}

func blockPattern(name string, blk int32) []byte {
	b := make([]byte, disk.BlockSize)
	pat := []byte(name + "#" + strconv.Itoa(int(blk)) + "|")
	for i := range b {
		b[i] = pat[i%len(pat)]
	}
	return b
}

// writeFiles creates nfiles files of blocks blocks each through cl and
// fills every block with its pattern.
func writeFiles(t *testing.T, cl *Client, nfiles, blocks int) []string {
	t.Helper()
	names := make([]string, nfiles)
	for i := range names {
		names[i] = fmt.Sprintf("app%d/file%d.dat", i%3, i)
		f, err := cl.Create(names[i], i%2, blocks)
		if err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		for b := int32(0); b < int32(blocks); b++ {
			if _, err := cl.Write(f.ID, b, 0, blockPattern(names[i], b)); err != nil {
				t.Fatalf("write %s/%d: %v", names[i], b, err)
			}
		}
	}
	return names
}

// TestClusterExclusiveOwnership: every file is served by exactly the
// node the shared ring names, verified two ways — per-node request
// counts on the /metrics plaintext endpoint, and each file existing in
// exactly one node's namespace.
func TestClusterExclusiveOwnership(t *testing.T) {
	tc := startTestCluster(t, 3, NewMemOrigin())
	cl := NewClient(tc.members, 0)
	defer cl.Close()

	const nfiles = 24
	names := writeFiles(t, cl, nfiles, 2)

	// Read everything back through the router; all data must match.
	for _, name := range names {
		f, err := cl.Open(name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		dst := make([]byte, disk.BlockSize)
		for b := int32(0); b < 2; b++ {
			if _, err := cl.ReadInto(f.ID, b, 0, disk.BlockSize, dst); err != nil {
				t.Fatalf("read %s/%d: %v", name, b, err)
			}
			if !bytes.Equal(dst, blockPattern(name, b)) {
				t.Fatalf("read %s/%d: wrong bytes", name, b)
			}
		}
	}

	// Exactly one node knows each name.
	ring := NewRing(tc.members, 0)
	for _, name := range names {
		holders := []string{}
		for _, m := range tc.members {
			c := dialMember(t, m)
			_, err := c.Open(name)
			c.Close()
			if err == nil {
				holders = append(holders, m)
			} else if se := (*client.StatusError)(nil); !errors.As(err, &se) || se.Status != server.StatusNotFound {
				t.Fatalf("probe %s on %s: %v", name, m, err)
			}
		}
		if len(holders) != 1 || holders[0] != ring.Owner(name) {
			t.Errorf("%s held by %v, ring owner %s", name, holders, ring.Owner(name))
		}
	}

	// Every node took real traffic, reported on its /metrics endpoint.
	for _, m := range tc.members {
		requests := scrapeMetric(t, tc.nodes[m].Srv, "acfcd_requests_total")
		if requests <= 0 {
			t.Errorf("node %s: acfcd_requests_total = %d, want > 0", m, requests)
		}
	}
}

func dialMember(t *testing.T, m string) *client.Conn {
	t.Helper()
	network, addr, err := SplitAddr(m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// scrapeMetric reads one un-labeled counter off the node's /metrics
// plaintext endpoint.
func scrapeMetric(t *testing.T, srv *server.Server, name string) int64 {
	t.Helper()
	rec := httptest.NewServer(srv.MetricsHandler())
	defer rec.Close()
	resp, err := rec.Client().Get(rec.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestClusterPeerFillThreeSurfaces: a node that joins after the working
// set was written serves its newly-owned files by pulling blocks
// through from the previous hash owners (the warm peers), and the
// peer-fill counters agree across the wire stats reply, the in-process
// Metrics snapshot, and the /metrics plaintext.
func TestClusterPeerFillThreeSurfaces(t *testing.T) {
	tc := startTestCluster(t, 2, NewMemOrigin())

	const nfiles, blocks = 30, 2
	cl := NewClient(tc.members, 0)
	names := writeFiles(t, cl, nfiles, blocks)
	cl.Close()

	joiner := tc.join()
	oldRing := NewRing(tc.members[:2], 0)
	newRing := NewRing(tc.members, 0)
	movedToJoiner := 0
	for _, name := range names {
		if newRing.Owner(name) == joiner.Self {
			movedToJoiner++
			if oldRing.Owner(name) == joiner.Self {
				t.Fatalf("%s owned by joiner before the join", name)
			}
		}
	}
	if movedToJoiner == 0 {
		t.Fatal("no file remapped to the joiner; enlarge nfiles")
	}

	cl2 := NewClient(tc.members, 0)
	defer cl2.Close()
	dst := make([]byte, disk.BlockSize)
	for _, name := range names {
		f, err := cl2.Open(name)
		if err != nil {
			t.Fatalf("open %s after join: %v", name, err)
		}
		for b := int32(0); b < blocks; b++ {
			if _, err := cl2.ReadInto(f.ID, b, 0, disk.BlockSize, dst); err != nil {
				t.Fatalf("read %s/%d after join: %v", name, b, err)
			}
			if !bytes.Equal(dst, blockPattern(name, b)) {
				t.Fatalf("read %s/%d after join: wrong bytes (peer fill corrupted data?)", name, b)
			}
		}
	}

	// Surface 1: the store's own counters.
	fills := joiner.Store().FillStats().PeerFills
	if fills <= 0 {
		t.Fatalf("joiner PeerFills = %d, want > 0", fills)
	}
	// Surface 2: the wire stats reply.
	c := dialMember(t, joiner.Self)
	reply, err := c.Stats()
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kernel.Fill.PeerFills != fills {
		t.Errorf("wire stats PeerFills = %d, store says %d", reply.Kernel.Fill.PeerFills, fills)
	}
	// Surface 3: Metrics and the /metrics plaintext.
	m, ok := joiner.Srv.Metrics()
	if !ok {
		t.Fatal("Metrics: server down")
	}
	if m.Kernel.Fill.PeerFills != fills {
		t.Errorf("Metrics PeerFills = %d, store says %d", m.Kernel.Fill.PeerFills, fills)
	}
	if got := scrapeMetric(t, joiner.Srv, "acfcd_fill_peer_fills"); got != fills {
		t.Errorf("/metrics acfcd_fill_peer_fills = %d, store says %d", got, fills)
	}
	// The old nodes initiated no peer fills (they own what they serve).
	for _, m := range tc.members[:2] {
		if v := tc.nodes[m].Store().FillStats().PeerFills; v != 0 {
			t.Errorf("old node %s PeerFills = %d, want 0", m, v)
		}
	}
}

// failingOrigin errors every read — the backing tier is down.
type failingOrigin struct {
	*MemOrigin
}

// The message deliberately avoids the substrings statusOf keys on
// ("such file", "dirty"...): an origin outage must surface as io.
var errOriginDown = errors.New("origin backend unreachable")

func (f failingOrigin) ReadBlock(name string, blk int32, dst []byte) error { return errOriginDown }
func (f failingOrigin) ReadRun(name string, start int32, dsts [][]byte) error {
	return errOriginDown
}

// TestClusterFillErrorSurfacesAsIO: a fill the cluster tier cannot
// satisfy comes back to the session as an io status — never a hang,
// never a silent zero block — and increments PeerFillErrors.
func TestClusterFillErrorSurfacesAsIO(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "tcp:" + ln.Addr().String()
	node, err := NewNode(NodeConfig{
		Self:   self,
		Origin: failingOrigin{NewMemOrigin()},
		Server: server.Config{
			Kernel: core.LiveConfig{CacheBytes: core.MB(1), Alloc: cache.LRUSP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go node.Srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		node.Srv.Shutdown(ctx)
		node.Srv.Close()
	})

	c := dialMember(t, self)
	defer c.Close()
	f, err := c.Create("doomed", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Read(f.ID, 0, 0, disk.BlockSize)
	if err == nil {
		t.Fatal("read through a dead origin succeeded")
	}
	se := (*client.StatusError)(nil)
	if !errors.As(err, &se) || se.Status != server.StatusIO {
		t.Fatalf("read error = %v, want status io", err)
	}
	if n := node.Store().FillStats().PeerFillErrors; n <= 0 {
		t.Errorf("PeerFillErrors = %d, want > 0", n)
	}
	// The session survives the failed fill: a fresh create+write works.
	g, err := c.Create("alive", 0, 1)
	if err != nil {
		t.Fatalf("session dead after fill error: %v", err)
	}
	if _, err := c.Write(g.ID, 0, 0, blockPattern("alive", 0)); err != nil {
		t.Fatalf("write after fill error: %v", err)
	}
}

// TestClusterLeaveDifferential: the acceptance bar for warm handoff —
// a 3-node cluster that suffers one planned leave ends with an origin
// byte-for-byte identical to a single-node run of the same writes.
func TestClusterLeaveDifferential(t *testing.T) {
	const nfiles, blocks = 20, 3

	// Reference: one node, same traffic, clean shutdown.
	single := NewMemOrigin()
	tcs := startTestCluster(t, 1, single)
	cls := NewClient(tcs.members, 0)
	writeFiles(t, cls, nfiles, blocks)
	cls.Close()
	tcs.shutdownAll()

	// Cluster: three nodes, same traffic, then one planned leave with
	// transfer, then a clean shutdown of the survivors.
	clustered := NewMemOrigin()
	tc := startTestCluster(t, 3, clustered)
	cl := NewClient(tc.members, 0)
	writeFiles(t, cl, nfiles, blocks)

	leaver := tc.members[1]
	if err := tc.leave(leaver, true); err != nil {
		t.Fatalf("planned leave: %v", err)
	}
	cl.Close()
	tc.shutdownAll()

	want, got := single.Dump(), clustered.Dump()
	if len(got) != len(want) {
		t.Errorf("origin block count: single %d, clustered %d", len(want), len(got))
		t.Logf("single keys: %v", single.Keys())
		t.Logf("clustered keys: %v", clustered.Keys())
	}
	for k, wb := range want {
		gb, ok := got[k]
		if !ok {
			t.Errorf("clustered origin missing %q — dirty data lost in the leave", k)
			continue
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("clustered origin differs at %q", k)
		}
	}
}

// TestClusterFreshClientFailover: a client that has never connected
// must still fail over when a file's hash owner is already dead at
// first dial — the refused dial marks the owner dead and the open
// resolves on the survivor ring, where the leave handoff put the file.
// (Regression: Open/Create used to surface the dial error instead of
// failing over; only the established-connection path re-routed.)
func TestClusterFreshClientFailover(t *testing.T) {
	tc := startTestCluster(t, 3, NewMemOrigin())
	cl := NewClient(tc.members, 0)
	names := writeFiles(t, cl, 12, 2)
	cl.Close()

	victim := tc.members[0]
	ring := NewRing(tc.members, 0)
	var name string
	for _, n := range names {
		if ring.Owner(n) == victim {
			name = n
			break
		}
	}
	if name == "" {
		t.Fatalf("no file hashed to %s out of %d", victim, len(names))
	}
	if err := tc.leave(victim, true); err != nil {
		t.Fatalf("planned leave: %v", err)
	}

	fresh := NewClient(tc.members, 0)
	defer fresh.Close()
	f, err := fresh.Open(name)
	if err != nil {
		t.Fatalf("open %s with dead owner: %v", name, err)
	}
	dst := make([]byte, disk.BlockSize)
	for b := int32(0); b < 2; b++ {
		if _, err := fresh.ReadInto(f.ID, b, 0, disk.BlockSize, dst); err != nil {
			t.Fatalf("read %s/%d after failover: %v", name, b, err)
		}
		if !bytes.Equal(dst, blockPattern(name, b)) {
			t.Fatalf("wrong bytes for %s/%d after failover", name, b)
		}
	}
}

// TestClusterSoak: concurrent clients drive a 3-node cluster while one
// node leaves planned mid-run and another dies abruptly; the survivors
// and the failover path must keep every client live to the end, and a
// final sweep against the last node must succeed for every file that
// still resolves. Run under -race by make race-hot.
func TestClusterSoak(t *testing.T) {
	tc := startTestCluster(t, 3, NewMemOrigin())

	const clients, nfiles, blocks = 4, 12, 2
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := NewClient(tc.members, 0)
			defer cl.Close()
			names := make([]string, nfiles)
			ids := make(map[string]client.File)
			for i := range names {
				names[i] = fmt.Sprintf("soak%d/f%d", w, i)
				f, err := cl.Create(names[i], 0, blocks)
				if err != nil {
					errc <- fmt.Errorf("worker %d create: %w", w, err)
					return
				}
				ids[names[i]] = f
			}
			dst := make([]byte, disk.BlockSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[i%nfiles]
				f := ids[name]
				blk := int32(i % blocks)
				if i%3 == 0 {
					if _, err := cl.Write(f.ID, blk, 0, blockPattern(name, blk)); err != nil {
						errc <- fmt.Errorf("worker %d write %s: %w", w, name, err)
						return
					}
				} else {
					if _, err := cl.ReadInto(f.ID, blk, 0, disk.BlockSize, dst); err != nil {
						errc <- fmt.Errorf("worker %d read %s: %w", w, name, err)
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	if err := tc.leave(tc.members[0], true); err != nil {
		t.Errorf("mid-run planned leave: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	tc.kill(tc.members[1])
	time.Sleep(100 * time.Millisecond)

	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("client died mid-soak: %v", err)
	}

	// The last node answers a full sweep.
	cl := NewClient(tc.members[2:], 0)
	defer cl.Close()
	dst := make([]byte, disk.BlockSize)
	for w := 0; w < clients; w++ {
		for i := 0; i < nfiles; i++ {
			name := fmt.Sprintf("soak%d/f%d", w, i)
			f, err := cl.Open(name)
			if err != nil {
				if se := (*client.StatusError)(nil); errors.As(err, &se) && se.Status == server.StatusNotFound {
					continue // never migrated to the survivor: fine
				}
				t.Fatalf("final open %s: %v", name, err)
			}
			if _, err := cl.ReadInto(f.ID, 0, 0, disk.BlockSize, dst); err != nil {
				t.Fatalf("final read %s: %v", name, err)
			}
		}
	}
}
