// node.go — Node ties one acfcd server to the cluster: it builds the
// NodeStore, wires it under the server through the three hooks the
// server grew for exactly this (base store, FileAnnounce, ExtraFill),
// and owns the leave protocol. Leave generalizes the paper's
// transfer-or-evict revocation from block to node granularity: the
// transfer arm drains sessions, flushes every dirty block to the origin
// (so correctness never depends on what follows), then streams the
// cache contents — hottest blocks first — to their new hash owners over
// the same typed client the peer fills use; the evict arm flushes and
// stops. Unplanned death needs no protocol at all: clients redial the
// next ring owner, which pulls the working set back through cold from
// the origin the dead node had already written behind to.

package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// Self is this node's member spec ("unix:/path" or "tcp:host:port")
	// — its name on the ring and the address peers dial.
	Self string
	// Members is the static membership list. Self is added if absent.
	Members []string
	// Origin is the shared backing store. Required.
	Origin Origin
	// Replicas is the virtual-node count per member (<= 0:
	// DefaultReplicas).
	Replicas int
	// Server configures the embedded server. Kernel.Store, FileAnnounce
	// and ExtraFill are overwritten — the cluster tier owns them.
	Server server.Config
}

// Node is one member of the cluster: an acfcd server whose base store
// is the cluster's NodeStore.
type Node struct {
	Self  string
	Srv   *server.Server
	store *NodeStore
}

// NewNode builds the node and starts its server's shard loops.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: NodeConfig.Self required")
	}
	if cfg.Origin == nil {
		return nil, errors.New("cluster: NodeConfig.Origin required")
	}
	members := cfg.Members
	found := false
	for _, m := range members {
		if m == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		members = append(append([]string(nil), members...), cfg.Self)
	}
	ring := NewRing(members, cfg.Replicas)
	ns := NewNodeStore(cfg.Self, ring, cfg.Origin)
	scfg := cfg.Server
	scfg.Kernel.Store = ns
	scfg.FileAnnounce = ns.Announce
	scfg.ExtraFill = ns.FillStats
	return &Node{Self: cfg.Self, Srv: server.New(scfg), store: ns}, nil
}

// Store exposes the node's NodeStore (peer-fill counters, ring).
func (n *Node) Store() *NodeStore { return n.store }

// Ring returns the node's view of the membership ring.
func (n *Node) Ring() *Ring { return n.store.Ring() }

// Owns reports whether this node is name's hash owner.
func (n *Node) Owns(name string) bool { return n.Ring().Owner(name) == n.Self }

// Leave retires the node. Ordering, each step a barrier for the next:
//
//  1. Shutdown drains sessions and shard loops past the drain barrier,
//     so no asynchronous fill or write-back is in flight (ctx bounds
//     the wait; on expiry remaining sessions are severed and the drain
//     completes force-mode).
//  2. FlushDirty persists every dirty block to the origin. After this
//     returns, zero data loss is already guaranteed — the rest is
//     warmth, not correctness.
//  3. With transfer set, the cache contents stream hottest-first to
//     each file's new hash owner (the ring without this node) as
//     ordinary create/write traffic over the peer connections. A
//     streaming failure downgrades the handoff to the evict arm for
//     the blocks it hadn't reached — their next reader pulls them
//     through from the origin instead.
//  4. Close releases the kernels' stores and every peer connection.
//
// Leave returns the first error, but always runs every step. A grace
// expiry on the drain is not an error: sessions that outstay the grace
// — idle clients that never disconnect, peers holding fill connections
// — are severed by design, and the drain barrier has still waited out
// every asynchronous fill and write-back before the flush runs.
func (n *Node) Leave(ctx context.Context, transfer bool) error {
	var firstErr error
	if err := n.Srv.Shutdown(ctx); err != nil &&
		!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		firstErr = err
	}
	if err := n.Srv.FlushDirty(); err != nil && firstErr == nil {
		firstErr = err
	}
	if transfer {
		if err := n.handoff(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := n.Srv.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// handoff streams the retired server's cached blocks to their new hash
// owners, hottest first, so an interrupted handoff still moved the
// blocks most worth moving.
func (n *Node) handoff() error {
	rest := n.Ring().Without(n.Self)
	if rest.Len() == 0 {
		return nil
	}
	var firstErr error
	type remote struct {
		c   *client.Conn
		p   *peer
		ids map[string]remoteFile
	}
	remotes := make(map[string]*remote)
	for _, cb := range n.Srv.CachedContents() {
		owner := rest.Owner(cb.Name)
		r, ok := remotes[owner]
		if !ok {
			c, p, err := n.store.Peer(owner)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("handoff dial %s: %w", owner, err)
				}
				remotes[owner] = &remote{} // dead owner: skip its blocks
				continue
			}
			r = &remote{c: c, p: p, ids: make(map[string]remoteFile)}
			remotes[owner] = r
		}
		if r.c == nil {
			continue
		}
		rf, ok := r.ids[cb.Name]
		if !ok {
			var err error
			rf, err = openOrCreate(r.c, cb.Name, cb.Disk, cb.Size)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("handoff open %s on %s: %w", cb.Name, owner, err)
				}
				rf = remoteFile{skip: true}
			}
			r.ids[cb.Name] = rf
		}
		if rf.skip {
			continue
		}
		if _, err := r.c.Write(rf.id, cb.Blk, 0, cb.Data); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("handoff write %s/%d to %s: %w", cb.Name, cb.Blk, owner, err)
		}
	}
	return firstErr
}

type remoteFile struct {
	id   fs.FileID
	skip bool
}

// openOrCreate resolves name on the receiving node, creating it with
// the retiring node's shape when the receiver has never seen it.
func openOrCreate(c *client.Conn, name string, disk, size int) (remoteFile, error) {
	f, err := c.Open(name)
	if err == nil {
		return remoteFile{id: f.ID}, nil
	}
	if se := (*client.StatusError)(nil); errors.As(err, &se) && se.Status == server.StatusNotFound {
		f, err = c.Create(name, disk, size)
		if err == nil {
			return remoteFile{id: f.ID}, nil
		}
	}
	return remoteFile{}, err
}
