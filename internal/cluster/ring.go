// Package cluster is the multi-node tier over acfcd: N independent
// daemons, each the sharded server of PRs 5-8, joined by a static
// membership list and consistent-hash file→node routing — the same
// FNV-1a affinity idea the server uses for file→shard placement, one
// level up (file → owning node → owning shard). On a local miss the
// owning node pulls the block through from a warm peer or the backing
// origin (the lancache pattern: fetch once, serve locally after), so a
// peer is just another fill source behind the disk.Store interface the
// fill pipeline already drives.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member when a Ring is
// built with replicas <= 0: enough vnodes that the max/min file-count
// skew across nodes stays within ~2x without making Owner's binary
// search noticeable.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over a membership list.
// Each member contributes `replicas` virtual points, hashed FNV-1a 64;
// a name's owner is the member whose first point is clockwise of the
// name's hash. Immutability is what makes membership changes cheap to
// reason about: With/Without build a new ring, and the minimal-movement
// property — only the keys whose owning arc touched the changed node
// remap, ~1/N of the keyspace — follows from every other member's
// points staying exactly where they were.
type Ring struct {
	members  []string
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	owner int // index into members
}

// NewRing builds a ring over members (order is irrelevant; the hash
// decides placement) with the given virtual-node count per member
// (<= 0: DefaultReplicas).
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		members:  append([]string(nil), members...),
		replicas: replicas,
	}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*replicas)
	for i, m := range r.members {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(m + "#" + strconv.Itoa(v)),
				owner: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hash64 is FNV-1a over the string — the 64-bit sibling of the server's
// file→shard name hash — with a final avalanche mix (murmur3's fmix64).
// Raw FNV is fine for bucketing by modulo but not for ring placement:
// its last-byte mixing is weak, and vnode keys differ only in their
// numeric tails, which without the finalizer clusters one member's
// points badly enough to hand it a 2x+ share of the keyspace.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Members returns the membership list, sorted.
func (r *Ring) Members() []string { return r.members }

// Len is the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning name, or "" on an empty ring.
func (r *Ring) Owner(name string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise of the top of the space
	}
	return r.members[r.points[i].owner]
}

// Without returns a ring with member removed (a planned leave or a
// death); removing an absent member returns an equivalent ring.
func (r *Ring) Without(member string) *Ring {
	out := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			out = append(out, m)
		}
	}
	return NewRing(out, r.replicas)
}

// With returns a ring with member added (a join); adding a present
// member returns an equivalent ring.
func (r *Ring) With(member string) *Ring {
	for _, m := range r.members {
		if m == member {
			return NewRing(r.members, r.replicas)
		}
	}
	return NewRing(append(append([]string(nil), r.members...), member), r.replicas)
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	for _, m := range r.members {
		if m == member {
			return true
		}
	}
	return false
}
