// client.go — the cluster-aware client: the same one-method-per-op
// surface as client.Conn, with file→node routing in front. Every file
// name hashes to its owning node on the shared ring; the client keeps
// one redialed session per node and hands callers synthetic file ids,
// because wire ids are a per-node encoding (two nodes give the same
// name different ids) and only the name — and therefore the synthetic
// id bound to it — is cluster-global.
//
// Failure handling is the unplanned-death half of the membership story:
// when a node stops answering (transport error, or the drain refusal a
// retiring server sends), the client marks it dead, re-routes the file
// to the ring over the survivors, re-resolves it there (re-create with
// the remembered shape when the survivor has never seen it), and
// retries once. The survivor then pulls the blocks through cold from
// the origin — no coordination, no recovery protocol, exactly the
// redial-next-owner behavior the cluster design promises.

package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/acm"
	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// Client is a routing client over a static member list. Safe for one
// goroutine (like client.Conn, concurrency comes from many Clients).
type Client struct {
	ring *Ring

	mu     sync.Mutex // guards nodes/dead across the failover path
	nodes  map[string]*clusterSess
	dead   map[string]bool
	files  map[fs.FileID]*centry
	byName map[string]fs.FileID
	nextID fs.FileID

	controlled bool
	policies   []policySet // replayed onto reconnecting nodes
}

type clusterSess struct {
	rd *client.Redialer[*client.Conn]
}

// centry is one synthetic file id's binding: the name (the routing
// key), the shape to re-create it with after a failover, and where it
// currently lives.
type centry struct {
	name    string
	disk    int
	size    int
	created bool // shape is known, re-create on failover is allowed
	addr    string
	remote  fs.FileID
}

type policySet struct {
	prio int
	pol  acm.Policy
}

// NewClient builds a client over members. Replicas must match the
// nodes' ring configuration or routing will disagree with placement.
func NewClient(members []string, replicas int) *Client {
	return &Client{
		ring:   NewRing(members, replicas),
		nodes:  make(map[string]*clusterSess),
		dead:   make(map[string]bool),
		files:  make(map[fs.FileID]*centry),
		byName: make(map[string]fs.FileID),
		nextID: 1,
	}
}

// alive returns the ring over the members not yet marked dead.
func (cl *Client) alive() *Ring {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r := cl.ring
	for m := range cl.dead {
		r = r.Without(m)
	}
	return r
}

func (cl *Client) markDead(addr string) {
	cl.mu.Lock()
	cl.dead[addr] = true
	cl.mu.Unlock()
}

// conn returns (dialing if needed) the session to addr. A fresh
// connection replays the client's session state: manager mode and any
// policy table edits.
func (cl *Client) conn(addr string) (*client.Conn, *clusterSess, error) {
	cl.mu.Lock()
	s, ok := cl.nodes[addr]
	if !ok {
		network, hostOrPath, err := SplitAddr(addr)
		if err != nil {
			cl.mu.Unlock()
			return nil, nil, err
		}
		s = &clusterSess{}
		s.rd = &client.Redialer[*client.Conn]{
			Dial:        func() (*client.Conn, error) { return client.Dial(network, hostOrPath) },
			DialTimeout: peerDialTimeout,
			Attempts:    2,
			OnConnect:   func(c *client.Conn) error { return cl.restore(c) },
		}
		cl.nodes[addr] = s
	}
	cl.mu.Unlock()
	c, err := s.rd.Get()
	return c, s, err
}

func (cl *Client) restore(c *client.Conn) error {
	if cl.controlled {
		if err := c.Control(true); err != nil {
			return err
		}
	}
	for _, ps := range cl.policies {
		if err := c.SetPolicy(ps.prio, ps.pol); err != nil {
			return err
		}
	}
	return nil
}

// retriable reports whether err means "this node is gone", not "this
// request is wrong": transport failures and drain refusals fail over;
// semantic statuses (not found, io, bad request) surface to the caller.
func retriable(err error) bool {
	if errors.Is(err, client.ErrRefused) || errors.Is(err, client.ErrRevoked) {
		return true
	}
	se := (*client.StatusError)(nil)
	return !errors.As(err, &se) // non-status error: the transport broke
}

// resolve opens (or, when the shape is known, creates) e.name on addr
// and rebinds the entry there.
func (cl *Client) resolve(e *centry, addr string) error {
	c, _, err := cl.conn(addr)
	if err != nil {
		return err
	}
	rf, err := openOrCreateShaped(c, e)
	if err != nil {
		return err
	}
	e.addr, e.remote = addr, rf
	return nil
}

func openOrCreateShaped(c *client.Conn, e *centry) (fs.FileID, error) {
	f, err := c.Open(e.name)
	if err == nil {
		return f.ID, nil
	}
	if e.created {
		if se := (*client.StatusError)(nil); errors.As(err, &se) && se.Status == server.StatusNotFound {
			f, err = c.Create(e.name, e.disk, e.size)
			if err == nil {
				return f.ID, nil
			}
		}
	}
	return 0, err
}

// do runs op against e's node, failing over to the next live ring owner
// once when the node is gone.
func (cl *Client) do(e *centry, op func(c *client.Conn, remote fs.FileID) error) error {
	c, s, err := cl.conn(e.addr)
	if err == nil {
		err = op(c, e.remote)
		if err == nil || !retriable(err) {
			return err
		}
		s.rd.Invalidate(c)
	}
	cl.markDead(e.addr)
	next := cl.alive()
	if next.Len() == 0 {
		return fmt.Errorf("cluster: no live nodes: %w", err)
	}
	owner := next.Owner(e.name)
	if rerr := cl.resolve(e, owner); rerr != nil {
		return fmt.Errorf("cluster: failover of %s to %s: %w", e.name, owner, rerr)
	}
	c, _, err = cl.conn(e.addr)
	if err != nil {
		return err
	}
	return op(c, e.remote)
}

// entry looks a synthetic id up.
func (cl *Client) entry(f fs.FileID) (*centry, error) {
	cl.mu.Lock()
	e := cl.files[f]
	cl.mu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("cluster: unknown file id %d", f)
	}
	return e, nil
}

// bind assigns (or reuses) the synthetic id for name.
func (cl *Client) bind(name string) (*centry, fs.FileID) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if id, ok := cl.byName[name]; ok {
		return cl.files[id], id
	}
	id := cl.nextID
	cl.nextID++
	e := &centry{name: name}
	cl.files[id] = e
	cl.byName[name] = id
	return e, id
}

// Open resolves name on its owning node.
func (cl *Client) Open(name string) (client.File, error) {
	owner := cl.alive().Owner(name)
	if owner == "" {
		return client.File{}, errors.New("cluster: no live nodes")
	}
	c, s, err := cl.conn(owner)
	if err != nil {
		// The owner won't even dial: mark it dead and route to the
		// survivors, same as a mid-op transport failure.
		cl.markDead(owner)
		if next := cl.alive(); next.Len() > 0 {
			return cl.Open(name)
		}
		return client.File{}, err
	}
	f, err := c.Open(name)
	if err != nil {
		if retriable(err) {
			s.rd.Invalidate(c)
			cl.markDead(owner)
			if next := cl.alive(); next.Len() > 0 {
				return cl.Open(name)
			}
		} else if se := (*client.StatusError)(nil); errors.As(err, &se) && se.Status == server.StatusNotFound {
			// The owner has never seen the name — it may have been
			// created before a join moved the name's hash owner here.
			// Probe the rest of the cluster and migrate routing.
			if file, ok := cl.openThrough(name, owner); ok {
				return file, nil
			}
		}
		return client.File{}, err
	}
	e, id := cl.bind(name)
	e.addr, e.remote, e.size = owner, f.ID, f.Size
	return client.File{ID: id, Size: f.Size}, nil
}

// openThrough handles the join case: name hashes to owner, but it was
// created while owner was not yet in the ring, so owner's local fs has
// never seen it. Probe the other live members; when one knows the file,
// re-create it (same block count) on the owner and bind routing there —
// the owner's first reads then pull the blocks through from its warm
// peer or the origin, which is exactly the join warm-up path.
func (cl *Client) openThrough(name, owner string) (client.File, bool) {
	for _, m := range cl.alive().Members() {
		if m == owner {
			continue
		}
		c, _, err := cl.conn(m)
		if err != nil {
			continue
		}
		f, err := c.Open(name)
		if err != nil {
			continue
		}
		oc, _, err := cl.conn(owner)
		if err != nil {
			break
		}
		nf, err := oc.Create(name, 0, f.Size)
		if err != nil {
			// Raced another client's migration: the owner knows the
			// name now.
			if nf, err = oc.Open(name); err != nil {
				break
			}
		}
		e, id := cl.bind(name)
		e.addr, e.remote, e.created = owner, nf.ID, true
		e.disk, e.size = 0, nf.Size
		return client.File{ID: id, Size: nf.Size}, true
	}
	return client.File{}, false
}

// Create creates name on its owning node and remembers the shape, so a
// failover can re-create it on a survivor.
func (cl *Client) Create(name string, d, sizeBlocks int) (client.File, error) {
	owner := cl.alive().Owner(name)
	if owner == "" {
		return client.File{}, errors.New("cluster: no live nodes")
	}
	c, s, err := cl.conn(owner)
	if err != nil {
		cl.markDead(owner)
		if next := cl.alive(); next.Len() > 0 {
			return cl.Create(name, d, sizeBlocks)
		}
		return client.File{}, err
	}
	f, err := c.Create(name, d, sizeBlocks)
	if err != nil {
		if retriable(err) {
			s.rd.Invalidate(c)
			cl.markDead(owner)
			if next := cl.alive(); next.Len() > 0 {
				return cl.Create(name, d, sizeBlocks)
			}
		}
		return client.File{}, err
	}
	e, id := cl.bind(name)
	e.addr, e.remote = owner, f.ID
	e.disk, e.size, e.created = d, f.Size, true
	return client.File{ID: id, Size: f.Size}, nil
}

// Remove removes name on its owning node.
func (cl *Client) Remove(name string) error {
	e, _ := cl.bind(name)
	if e.addr == "" {
		if owner := cl.alive().Owner(name); owner != "" {
			e.addr = owner
		} else {
			return errors.New("cluster: no live nodes")
		}
	}
	return cl.do(e, func(c *client.Conn, _ fs.FileID) error {
		return c.Remove(e.name)
	})
}

// Control toggles manager mode on every live node (sessions span all of
// them), and remembers the flag for reconnects.
func (cl *Client) Control(enable bool) error {
	cl.controlled = enable
	return cl.broadcast(func(c *client.Conn) error { return c.Control(enable) })
}

func (cl *Client) broadcast(op func(c *client.Conn) error) error {
	var firstErr error
	for _, m := range cl.alive().Members() {
		c, s, err := cl.conn(m)
		if err == nil {
			err = op(c)
			if err != nil && retriable(err) {
				s.rd.Invalidate(c)
			}
		}
		if err != nil {
			cl.markDead(m)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil && cl.alive().Len() > 0 {
		// Some node took it; the dead ones will be failed over anyway.
		return nil
	}
	return firstErr
}

// Fbehavior routes per-file ops to the file's node and policy-table
// ops to every node (set) or any node (get).
func (cl *Client) Fbehavior(op client.FbOp, a client.FbArgs) (client.FbResult, error) {
	switch op {
	case client.FbSetPolicy:
		cl.policies = append(cl.policies, policySet{prio: a.Prio, pol: a.Policy})
		err := cl.broadcast(func(c *client.Conn) error {
			_, e := c.Fbehavior(op, a)
			return e
		})
		return client.FbResult{}, err
	case client.FbGetPolicy:
		members := cl.alive().Members()
		if len(members) == 0 {
			return client.FbResult{}, errors.New("cluster: no live nodes")
		}
		c, _, err := cl.conn(members[0])
		if err != nil {
			return client.FbResult{}, err
		}
		return c.Fbehavior(op, a)
	}
	e, err := cl.entry(a.File)
	if err != nil {
		return client.FbResult{}, err
	}
	var res client.FbResult
	err = cl.do(e, func(c *client.Conn, remote fs.FileID) error {
		ra := a
		ra.File = remote
		var e2 error
		res, e2 = c.Fbehavior(op, ra)
		return e2
	})
	return res, err
}

// ReadInto reads one block range from the file's node.
func (cl *Client) ReadInto(f fs.FileID, blk int32, off, size int, dst []byte) (bool, error) {
	e, err := cl.entry(f)
	if err != nil {
		return false, err
	}
	var hit bool
	err = cl.do(e, func(c *client.Conn, remote fs.FileID) error {
		var e2 error
		hit, e2 = c.ReadInto(remote, blk, off, size, dst)
		return e2
	})
	return hit, err
}

// ReadNoData is ReadInto without the payload (load-generator mode).
func (cl *Client) ReadNoData(f fs.FileID, blk int32, off, size int) (bool, error) {
	e, err := cl.entry(f)
	if err != nil {
		return false, err
	}
	var hit bool
	err = cl.do(e, func(c *client.Conn, remote fs.FileID) error {
		var e2 error
		hit, e2 = c.ReadNoData(remote, blk, off, size)
		return e2
	})
	return hit, err
}

// Write writes one block range to the file's node.
func (cl *Client) Write(f fs.FileID, blk int32, off int, payload []byte) (bool, error) {
	e, err := cl.entry(f)
	if err != nil {
		return false, err
	}
	var hit bool
	err = cl.do(e, func(c *client.Conn, remote fs.FileID) error {
		var e2 error
		hit, e2 = c.Write(remote, blk, off, payload)
		return e2
	})
	return hit, err
}

// Close closes every node session. The Client is dead afterwards.
func (cl *Client) Close() error {
	cl.mu.Lock()
	nodes := cl.nodes
	cl.nodes = make(map[string]*clusterSess)
	cl.mu.Unlock()
	for _, s := range nodes {
		s.rd.Close()
	}
	return nil
}
