package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("app%d/file%d.dat", i%7, i)
	}
	return keys
}

func members(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("tcp:127.0.0.1:%d", 4500+i)
	}
	return ms
}

// TestRingBalance: with DefaultReplicas vnodes, the per-node share of a
// 10k-key population stays within a 2x band of the fair share for every
// cluster size the bench sweep uses (and then some).
func TestRingBalance(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{2, 3, 5, 8} {
		ms := members(n)
		r := NewRing(ms, 0)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := len(keys) / n
		for _, m := range ms {
			c := counts[m]
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d: member %s owns %d keys, fair share %d (want within [%d, %d])",
					n, m, c, fair, fair/2, fair*2)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members own keys", n, len(counts))
		}
	}
}

// TestRingMinimalMovementLeave: removing one of N members remaps
// exactly the removed member's keys — every other key keeps its owner —
// and the remapped fraction is about 1/N.
func TestRingMinimalMovementLeave(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{2, 3, 5, 8} {
		ms := members(n)
		r := NewRing(ms, 0)
		gone := ms[n/2]
		after := r.Without(gone)
		moved := 0
		for _, k := range keys {
			before, now := r.Owner(k), after.Owner(k)
			if before != gone {
				if now != before {
					t.Fatalf("n=%d: key %q moved %s -> %s though %s left", n, k, before, now, gone)
				}
				continue
			}
			if now == gone {
				t.Fatalf("n=%d: key %q still owned by departed %s", n, k, gone)
			}
			moved++
		}
		frac := float64(moved) / float64(len(keys))
		want := 1.0 / float64(n)
		if frac < want/2 || frac > want*2 {
			t.Errorf("n=%d: leave remapped %.3f of keys, want ~%.3f", n, frac, want)
		}
	}
}

// TestRingMinimalMovementJoin: adding a member steals ~1/(N+1) of the
// keyspace and every stolen key lands on the new member.
func TestRingMinimalMovementJoin(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{2, 3, 5, 8} {
		ms := members(n)
		r := NewRing(ms, 0)
		joiner := "tcp:127.0.0.1:9999"
		after := r.With(joiner)
		moved := 0
		for _, k := range keys {
			before, now := r.Owner(k), after.Owner(k)
			if now == before {
				continue
			}
			if now != joiner {
				t.Fatalf("n=%d: key %q moved %s -> %s, not to joiner", n, k, before, now)
			}
			moved++
		}
		frac := float64(moved) / float64(len(keys))
		want := 1.0 / float64(n+1)
		if frac < want/2 || frac > want*2 {
			t.Errorf("n=%d: join remapped %.3f of keys, want ~%.3f", n, frac, want)
		}
	}
}

// TestRingDeterminism: rings built from the same members in any order
// route identically — nodes and clients must agree without talking.
func TestRingDeterminism(t *testing.T) {
	ms := members(5)
	r1 := NewRing(ms, 0)
	r2 := NewRing([]string{ms[3], ms[0], ms[4], ms[2], ms[1]}, 0)
	for _, k := range ringKeys(1000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("member order changed routing for %q: %s vs %s", k, r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestRingEdgeCases: empty and single-member rings.
func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil, 0).Owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	one := NewRing([]string{"tcp:a"}, 0)
	for _, k := range ringKeys(100) {
		if one.Owner(k) != "tcp:a" {
			t.Fatalf("single-member ring routed %q to %q", k, one.Owner(k))
		}
	}
	if !one.Has("tcp:a") || one.Has("tcp:b") {
		t.Error("Has misreports membership")
	}
	if one.Without("tcp:a").Len() != 0 {
		t.Error("Without did not empty the ring")
	}
	if one.With("tcp:a").Len() != 1 {
		t.Error("With duplicated an existing member")
	}
}
