// addr.go — node address specs. A member is identified by the same
// "unix:/path" / "tcp:host:port" spec acfcd's -listen flag takes; the
// spec string doubles as the member's name on the hash ring, so routing
// and dialing agree by construction.

package cluster

import (
	"fmt"
	"strings"
	"time"
)

// peerDialTimeout bounds how long a fill worker can stall dialing a
// peer before the origin serves instead. Peer fills are a fast path;
// a slow peer is worse than no peer.
const peerDialTimeout = 2 * time.Second

// SplitAddr parses a member spec into (network, address) for net.Dial /
// net.Listen.
func SplitAddr(spec string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", strings.TrimPrefix(spec, "unix:"), nil
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", strings.TrimPrefix(spec, "tcp:"), nil
	}
	return "", "", fmt.Errorf("bad node address %q (want unix:/path or tcp:host:port)", spec)
}
