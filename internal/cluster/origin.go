// origin.go — the cluster's shared backing store, addressed by file
// *name* instead of wire id. Wire file ids are a per-node encoding
// (local*shards+shard, assigned in open order), so two nodes give the
// same file different ids; the name is the only coordinate every node
// agrees on. The per-node NodeStore translates id→name at the fill
// boundary and reads or writes the origin here.

package cluster

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/disk"
)

// Origin is the cluster's authoritative block backend: it holds every
// block ever written back by any node, keyed by file name. Blocks never
// written read as zeros, matching disk.Store semantics. Implementations
// must be safe for concurrent use — every node's write-behind flusher
// and fill workers reach it at once.
type Origin interface {
	// ReadBlock fills dst (len BlockSize) with the named file's block.
	ReadBlock(name string, blk int32, dst []byte) error
	// WriteBlock persists src as the named file's block.
	WriteBlock(name string, blk int32, src []byte) error
	// ReadRun / WriteRun move a run of consecutive blocks starting at
	// start in one call — the batch shape the fill workers and the
	// write-behind flusher hand down (PR 8's run coalescing, kept alive
	// through the cluster tier).
	ReadRun(name string, start int32, dsts [][]byte) error
	WriteRun(name string, start int32, srcs [][]byte) error
	Close() error
}

// MemOrigin is an in-memory Origin: the backend for tests, benchmarks,
// and single-machine clusters of in-process nodes (which share one
// instance — that sharing is what makes it a common backing store).
type MemOrigin struct {
	mu     sync.Mutex
	blocks map[string][]byte // "name\x00blk" -> BlockSize bytes
}

func NewMemOrigin() *MemOrigin {
	return &MemOrigin{blocks: make(map[string][]byte)}
}

func originKey(name string, blk int32) string {
	return name + "\x00" + fmt.Sprint(blk)
}

func (m *MemOrigin) ReadBlock(name string, blk int32, dst []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.blocks[originKey(name, blk)]; ok {
		copy(dst, b)
		return nil
	}
	clear(dst)
	return nil
}

func (m *MemOrigin) WriteBlock(name string, blk int32, src []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := make([]byte, len(src))
	copy(b, src)
	m.blocks[originKey(name, blk)] = b
	return nil
}

func (m *MemOrigin) ReadRun(name string, start int32, dsts [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, dst := range dsts {
		if b, ok := m.blocks[originKey(name, start+int32(i))]; ok {
			copy(dst, b)
		} else {
			clear(dst)
		}
	}
	return nil
}

func (m *MemOrigin) WriteRun(name string, start int32, srcs [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, src := range srcs {
		b := make([]byte, len(src))
		copy(b, src)
		m.blocks[originKey(name, start+int32(i))] = b
	}
	return nil
}

// Close is a no-op: a MemOrigin is shared by every node of an
// in-process cluster, so no one node owns its lifetime.
func (m *MemOrigin) Close() error { return nil }

// Blocks reports how many blocks have been written.
func (m *MemOrigin) Blocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// Dump snapshots the origin's full contents as key -> block copy, keys
// sorted on iteration order being irrelevant — the differential test's
// byte-level comparison surface.
func (m *MemOrigin) Dump() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.blocks))
	for k, v := range m.blocks {
		b := make([]byte, len(v))
		copy(b, v)
		out[k] = b
	}
	return out
}

// Keys returns the written block keys, sorted (diagnostics for a failed
// differential comparison).
func (m *MemOrigin) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.blocks))
	for k := range m.blocks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DirOrigin is a directory-backed Origin for multi-process clusters on
// a shared filesystem: one flat file per cached file (name
// percent-escaped into a filename), blocks at offset blk*BlockSize.
// Files are opened per call — the origin is the slow tier by
// construction, and handle caching would buy little under the cluster's
// cache-first access pattern.
type DirOrigin struct {
	dir string
}

// NewDirOrigin creates (if needed) and uses dir as the backing
// directory.
func NewDirOrigin(dir string) (*DirOrigin, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("origin dir: %w", err)
	}
	return &DirOrigin{dir: dir}, nil
}

func (d *DirOrigin) path(name string) string {
	return filepath.Join(d.dir, url.PathEscape(name))
}

func (d *DirOrigin) ReadBlock(name string, blk int32, dst []byte) error {
	return d.ReadRun(name, blk, [][]byte{dst})
}

func (d *DirOrigin) WriteBlock(name string, blk int32, src []byte) error {
	return d.WriteRun(name, blk, [][]byte{src})
}

func (d *DirOrigin) ReadRun(name string, start int32, dsts [][]byte) error {
	f, err := os.Open(d.path(name))
	if os.IsNotExist(err) {
		for _, dst := range dsts {
			clear(dst)
		}
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	off := int64(start) * disk.BlockSize
	for _, dst := range dsts {
		n, err := f.ReadAt(dst, off)
		if err == io.EOF {
			clear(dst[n:]) // short file: the tail reads as zeros
		} else if err != nil {
			return err
		}
		off += int64(len(dst))
	}
	return nil
}

func (d *DirOrigin) WriteRun(name string, start int32, srcs [][]byte) error {
	f, err := os.OpenFile(d.path(name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	off := int64(start) * disk.BlockSize
	for _, src := range srcs {
		if _, err := f.WriteAt(src, off); err != nil {
			return err
		}
		off += int64(len(src))
	}
	return nil
}

func (d *DirOrigin) Close() error { return nil }
