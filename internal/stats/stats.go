// Package stats defines the one shared snapshot schema for the kernel's
// observable counters: the buffer-cache counters (cache.Stats) and the
// DES engine counters (sim.Stats). Both acbench -json (the offline
// experiment pipeline) and the acfcd daemon's /metrics endpoint consume
// the same Snapshot type, and the plaintext metrics exposition is derived
// mechanically from the structs' json tags — so the two outputs name the
// same counter the same way and cannot drift apart.
package stats

import (
	"fmt"
	"io"
	"reflect"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Snapshot is one observation of the kernel counters. For a DES run the
// Sim block carries the engine's event/handoff statistics; for the live
// (real-clock) kernel behind acfcd there is no DES engine and Sim stays
// zero.
type Snapshot struct {
	Cache cache.Stats `json:"cache"`
	Sim   sim.Stats   `json:"sim"`
}

// Accumulate folds o into s: counters add, high-water marks take the max.
func (s *Snapshot) Accumulate(o Snapshot) {
	s.Cache.Accumulate(o.Cache)
	s.Sim.Accumulate(o.Sim)
}

// Aggregate folds a set of per-shard snapshots into one total, with the
// same add/max semantics as Accumulate. The sharded acfcd kernel reports
// both views: the aggregate for dashboards that want one number, the
// per-shard breakdown for spotting imbalance.
func Aggregate(shards []Snapshot) Snapshot {
	var total Snapshot
	for _, s := range shards {
		total.Accumulate(s)
	}
	return total
}

// WriteMetrics renders the snapshot as Prometheus-style plaintext lines,
//
//	<prefix>_cache_hits 123
//	<prefix>_sim_handoffs 456
//
// one per counter, named by the structs' json tags. Reflection keeps this
// exposition and the JSON schema a single source of truth.
func (s Snapshot) WriteMetrics(w io.Writer, prefix string) {
	s.WriteMetricsLabeled(w, prefix, "")
}

// WriteMetricsLabeled is WriteMetrics with a constant label set appended
// to every metric name (e.g. `{shard="3"}`), for per-shard sections that
// must stay mechanically derived from the same schema as the totals.
func (s Snapshot) WriteMetricsLabeled(w io.Writer, prefix, labels string) {
	writeGroup(w, prefix+"_cache_", labels, reflect.ValueOf(s.Cache))
	writeGroup(w, prefix+"_sim_", labels, reflect.ValueOf(s.Sim))
}

// writeGroup emits one line per field of a flat all-integer struct.
func writeGroup(w io.Writer, prefix, labels string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if name == "" || name == "-" {
			name = strings.ToLower(t.Field(i).Name)
		}
		fmt.Fprintf(w, "%s%s%s %d\n", prefix, name, labels, v.Field(i).Int())
	}
}
