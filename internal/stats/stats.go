// Package stats defines the one shared snapshot schema for the kernel's
// observable counters: the buffer-cache counters (cache.Stats) and the
// DES engine counters (sim.Stats). Both acbench -json (the offline
// experiment pipeline) and the acfcd daemon's /metrics endpoint consume
// the same Snapshot type, and the plaintext metrics exposition is derived
// mechanically from the structs' json tags — so the two outputs name the
// same counter the same way and cannot drift apart.
package stats

import (
	"fmt"
	"io"
	"reflect"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Snapshot is one observation of the kernel counters. For a DES run the
// Sim block carries the engine's event/handoff statistics; for the live
// (real-clock) kernel behind acfcd there is no DES engine and Sim stays
// zero. Fill is the live kernel's miss/write-back pipeline (MSHR
// coalescing, write-behind, server-side read-ahead); the DES models
// those costs in virtual time instead, so for a simulation run Fill
// stays zero.
type Snapshot struct {
	Cache cache.Stats `json:"cache"`
	Sim   sim.Stats   `json:"sim"`
	Fill  FillStats   `json:"fill"`
}

// FillStats counts the live kernel's fill/write-back pipeline: how misses
// execute, not which block was evicted. The json tags are the canonical
// counter names everywhere they escape the process (acbench -json, the
// acfcd /metrics endpoint) — see WriteMetricsLabeled.
type FillStats struct {
	// StoreReads is the number of block reads actually issued to the
	// store. Coalescing, read-ahead joins and write-behind forwarding
	// all push it below the cache's miss count.
	StoreReads int64 `json:"store_reads"`
	// CoalescedMisses counts requests that joined an already in-flight
	// fill for the same block (the MSHR waiter path) instead of issuing
	// their own store read.
	CoalescedMisses int64 `json:"coalesced_misses"`
	// WritebackHits counts fills served straight from a pending
	// write-behind buffer: the block's freshest bytes were still queued
	// for the store, so the fill copied them and skipped the read.
	WritebackHits int64 `json:"writeback_hits"`
	// PrefetchIssued / PrefetchHits count server-side read-ahead: fills
	// issued ahead of a sequential run, and demand accesses that landed
	// on a prefetched block (in flight or completed but untouched).
	PrefetchIssued int64 `json:"prefetch_issued"`
	PrefetchHits   int64 `json:"prefetch_hits"`
	// WritebacksQueued counts dirty victims handed to the asynchronous
	// write-behind queue; WritebackQueueHighWater is the most ever
	// outstanding at once; WritebackStalls counts enqueues that found
	// the queue full and degraded to a synchronous inline write (the
	// backpressure rule); WritebackErrors counts store write failures
	// (surfaced, never fatal).
	WritebacksQueued        int64 `json:"writebacks_queued"`
	WritebackQueueHighWater int64 `json:"writeback_queue_high_water"`
	WritebackStalls         int64 `json:"writeback_stalls"`
	WritebackErrors         int64 `json:"writeback_errors"`
	// WireCopyFallbacks counts the times the zero-copy serve path had to
	// copy after all: a write landed on a block whose slot was pinned by
	// in-flight response frames (copy-on-write), or a response outlived
	// its buffer (mid-fill eviction) and was served from a detached copy.
	WireCopyFallbacks int64 `json:"wire_copy_fallbacks"`
	// BatchedFills counts multi-block store reads issued by the fill
	// workers (a run of same-file adjacent fills retired as one vectored
	// call); FillBatchBlocks is the total blocks those batches moved, so
	// FillBatchBlocks/BatchedFills is the mean run length.
	BatchedFills    int64 `json:"batched_fills"`
	FillBatchBlocks int64 `json:"fill_batch_blocks"`
	// WritebackBatches counts multi-block batches the write-behind
	// flusher handed to the store as one vectored write.
	WritebackBatches int64 `json:"writeback_batches"`
	// FillQueueHighWater is the deepest the shard's fill queue has ever
	// been: how far the bounded worker pool fell behind the miss stream.
	FillQueueHighWater int64 `json:"fill_queue_high_water"`
	// PeerFills counts blocks a cluster node filled from a peer node's
	// cache instead of the backing origin (the pull-through path);
	// PeerFillMisses counts fills where the warm peer did not have the
	// file and the read fell through to the origin; PeerFillErrors
	// counts peer or origin failures on the cluster fill path — each one
	// also surfaced to the requesting session as an io status, never
	// swallowed. All zero outside cluster mode.
	PeerFills      int64 `json:"peer_fills"`
	PeerFillMisses int64 `json:"peer_fill_misses"`
	PeerFillErrors int64 `json:"peer_fill_errors"`
}

// Accumulate folds o into s: counters add, high-water marks take the max.
func (s *FillStats) Accumulate(o FillStats) {
	s.StoreReads += o.StoreReads
	s.CoalescedMisses += o.CoalescedMisses
	s.WritebackHits += o.WritebackHits
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchHits += o.PrefetchHits
	s.WritebacksQueued += o.WritebacksQueued
	if o.WritebackQueueHighWater > s.WritebackQueueHighWater {
		s.WritebackQueueHighWater = o.WritebackQueueHighWater
	}
	s.WritebackStalls += o.WritebackStalls
	s.WritebackErrors += o.WritebackErrors
	s.WireCopyFallbacks += o.WireCopyFallbacks
	s.BatchedFills += o.BatchedFills
	s.FillBatchBlocks += o.FillBatchBlocks
	s.WritebackBatches += o.WritebackBatches
	if o.FillQueueHighWater > s.FillQueueHighWater {
		s.FillQueueHighWater = o.FillQueueHighWater
	}
	s.PeerFills += o.PeerFills
	s.PeerFillMisses += o.PeerFillMisses
	s.PeerFillErrors += o.PeerFillErrors
}

// Accumulate folds o into s: counters add, high-water marks take the max.
func (s *Snapshot) Accumulate(o Snapshot) {
	s.Cache.Accumulate(o.Cache)
	s.Sim.Accumulate(o.Sim)
	s.Fill.Accumulate(o.Fill)
}

// Aggregate folds a set of per-shard snapshots into one total, with the
// same add/max semantics as Accumulate. The sharded acfcd kernel reports
// both views: the aggregate for dashboards that want one number, the
// per-shard breakdown for spotting imbalance.
func Aggregate(shards []Snapshot) Snapshot {
	var total Snapshot
	for _, s := range shards {
		total.Accumulate(s)
	}
	return total
}

// WriteMetrics renders the snapshot as Prometheus-style plaintext lines,
//
//	<prefix>_cache_hits 123
//	<prefix>_sim_handoffs 456
//
// one per counter, named by the structs' json tags. Reflection keeps this
// exposition and the JSON schema a single source of truth.
func (s Snapshot) WriteMetrics(w io.Writer, prefix string) {
	s.WriteMetricsLabeled(w, prefix, "")
}

// WriteMetricsLabeled is WriteMetrics with a constant label set appended
// to every metric name (e.g. `{shard="3"}`), for per-shard sections that
// must stay mechanically derived from the same schema as the totals.
func (s Snapshot) WriteMetricsLabeled(w io.Writer, prefix, labels string) {
	writeGroup(w, prefix+"_cache_", labels, reflect.ValueOf(s.Cache))
	writeGroup(w, prefix+"_sim_", labels, reflect.ValueOf(s.Sim))
	writeGroup(w, prefix+"_fill_", labels, reflect.ValueOf(s.Fill))
}

// writeGroup emits one line per field of a flat all-integer struct.
func writeGroup(w io.Writer, prefix, labels string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if name == "" || name == "-" {
			name = strings.ToLower(t.Field(i).Name)
		}
		fmt.Fprintf(w, "%s%s%s %d\n", prefix, name, labels, v.Field(i).Int())
	}
}
