package expt

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Chart renders one figure-style series as horizontal ASCII bars: each row
// is a labelled normalized value with a reference line at 1.0, which is
// how the paper's Figures 4-6 present their results.
type Chart struct {
	ID    string
	Title string
	Rows  []ChartRow
}

// ChartRow is one bar.
type ChartRow struct {
	Label string
	Value float64
}

// chartWidth is the bar width in characters for value 1.0.
const chartWidth = 40

// Render writes the chart.
func (c *Chart) Render(w io.Writer) {
	fmt.Fprintf(w, "-- %s: %s --\n", c.ID, c.Title)
	labelW := 0
	maxV := 1.0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		if r.Value > maxV {
			maxV = r.Value
		}
	}
	scale := float64(chartWidth)
	if maxV > 1.0 {
		scale = float64(chartWidth) / maxV
	}
	oneAt := int(1.0*scale + 0.5)
	for _, r := range c.Rows {
		n := int(r.Value*scale + 0.5)
		if n < 0 {
			n = 0
		}
		var b strings.Builder
		for i := 0; i < chartWidth+1; i++ {
			switch {
			case i == oneAt:
				b.WriteByte('|') // the 1.0 baseline
			case i < n:
				b.WriteByte('#')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(w, "%-*s %s %.2f\n", labelW, r.Label, b.String(), r.Value)
	}
	fmt.Fprintln(w)
}

// ChartFromTable builds a chart from a rendered table: labels join the
// given columns, values parse from valueCol.
func ChartFromTable(t Table, id, title string, labelCols []int, valueCol int) Chart {
	c := Chart{ID: id, Title: title}
	for _, row := range t.Rows {
		var parts []string
		for _, lc := range labelCols {
			parts = append(parts, row[lc])
		}
		v, err := strconv.ParseFloat(row[valueCol], 64)
		if err != nil {
			continue
		}
		c.Rows = append(c.Rows, ChartRow{Label: strings.Join(parts, " @"), Value: v})
	}
	return c
}

// Charts regenerates the paper's three figures as ASCII bar charts from
// the corresponding experiment tables, submitting runs through r (the
// Figure 5 LRU-SP runs memoize into Figure 6's normalization columns).
func Charts(r *Runner, sizes []float64) []Chart {
	fig4 := Fig4(r, sizes)
	fig5 := Fig5(r, sizes)
	fig6 := Fig6(r, sizes)
	return []Chart{
		ChartFromTable(fig4[0], "fig4-elapsed",
			"Normalized elapsed time, LRU-SP vs original kernel (bars; | marks 1.0)",
			[]int{0, 1}, 4),
		ChartFromTable(fig4[1], "fig4-ios",
			"Normalized block I/Os, LRU-SP vs original kernel",
			[]int{0, 1}, 4),
		ChartFromTable(fig5[0], "fig5-elapsed",
			"Multi-application normalized total elapsed time",
			[]int{0, 1}, 4),
		ChartFromTable(fig5[0], "fig5-ios",
			"Multi-application normalized total block I/Os",
			[]int{0, 1}, 7),
		ChartFromTable(fig6[0], "fig6-ios",
			"ALLOC-LRU block I/Os normalized to LRU-SP (above 1.0 = swapping needed)",
			[]int{0, 1}, 7),
	}
}
