// Package expt drives the paper's experiments: it assembles machines,
// launches workload mixes, and renders the measurements next to the
// paper's published numbers so every table and figure can be regenerated
// and compared at a glance.
package expt

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AppSpec is one application in a mix. Name identifies what Make builds
// for the Runner's memo cache; it must be unique per distinct workload
// (constructor plus parameters). An empty Name is allowed but makes any
// spec containing it uncacheable.
type AppSpec struct {
	Name string
	Make func() workload.App
	Mode workload.Mode
}

// Options are execution knobs — settings that change how a simulation
// executes rather than what machine it models. They live apart from the
// machine-shaping RunSpec fields so a whole suite can carry one Options
// value on its Runner (acbench -nofastpath) while individual specs still
// override per run (the read-ahead ablation). A Runner merges its base
// Options into every submitted spec: booleans OR, a spec's nonzero
// ReadAheadDepth wins. The merged value participates in the memo
// fingerprint, so two option sets never conflate.
type Options struct {
	// ReadAheadOff disables sequential read-ahead (for ablations and
	// replay capture, whose transcripts must not depend on untraced I/O);
	// ReadAheadDepth overrides the depth when read-ahead is on (0 keeps
	// the default).
	ReadAheadOff   bool
	ReadAheadDepth int
	// NoFastPath disables the DES engine's lookahead fast path, forcing
	// every sleep through the scheduler (for differential tests).
	NoFastPath bool
}

// merge folds a Runner's base options into a spec's own: booleans OR,
// the spec's explicit depth wins.
func (o Options) merge(base Options) Options {
	o.ReadAheadOff = o.ReadAheadOff || base.ReadAheadOff
	if o.ReadAheadDepth == 0 {
		o.ReadAheadDepth = base.ReadAheadDepth
	}
	o.NoFastPath = o.NoFastPath || base.NoFastPath
	return o
}

// RunSpec describes one simulated machine execution.
type RunSpec struct {
	Apps    []AppSpec
	CacheMB float64
	Alloc   cache.Alloc
	Seed    uint64
	// Revoke optionally enables the revocation extension.
	Revoke cache.RevokeConfig
	// Opts are this run's execution knobs; a Runner merges its own base
	// Options in at submission.
	Opts Options
	// SpreadSync smooths the update daemon (Mogul's better update
	// policy) instead of Ultrix's 30-second bursts.
	SpreadSync bool
	// UpcallCPU charges this much CPU per manager consultation,
	// simulating an upcall/RPC control implementation.
	UpcallCPU sim.Time
	// FIFODisk replaces the C-LOOK elevator with arrival-order service.
	FIFODisk bool
	// Trace, when non-nil, receives every block access.
	Trace func(core.TraceEvent)
	// TraceCtl, when non-nil, receives every successful control-plane
	// operation (fbehavior calls, file creation/removal), interleaved in
	// call order with Trace. Record uses the pair to capture replayable
	// workload transcripts for the acfcd server.
	TraceCtl func(core.CtlEvent)
}

// AppResult is one application's outcome.
type AppResult struct {
	Name     string
	Elapsed  sim.Time
	BlockIOs int64
	Stats    core.ProcStats
}

// RunResult is one machine execution's outcome.
type RunResult struct {
	PerApp       []AppResult
	TotalElapsed sim.Time // all applications finished
	TotalIOs     int64
	CacheStats   cache.Stats
	MaxQueue     int       // deepest disk queue seen on any drive
	Sim          sim.Stats // DES engine counters for this machine
}

// RunStats summarizes repeated runs of one spec with varying seeds, the
// paper's averages-of-N-cold-start-runs methodology. Block I/O counts are
// seed-independent (the reference streams are fixed); elapsed times vary
// only through rotational-latency draws, so variances stay small — the
// paper reports the same (under 2% with few exceptions).
type RunStats struct {
	Repeats      int
	MeanElapsed  sim.Time
	VarianceFrac float64 // max |run - mean| / mean over the repeats
	TotalIOs     int64
}

// RunRepeated executes the spec n times with seeds 1..n and aggregates
// elapsed-time statistics. The seed repeats are independent simulations,
// so they are submitted to the Runner together and collected in seed
// order (r may be nil for the inline serial path). It panics if the I/O
// counts differ across seeds, which would mean the seed leaked into a
// reference stream.
func RunRepeated(r *Runner, spec RunSpec, n int) RunStats {
	if n <= 0 {
		n = 1
	}
	futs := make([]*Future, 0, n)
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = uint64(i + 1)
		futs = append(futs, r.Submit(s))
	}
	var total sim.Time
	times := make([]sim.Time, 0, n)
	var ios int64 = -1
	for _, f := range futs {
		res := f.Wait()
		times = append(times, res.TotalElapsed)
		total += res.TotalElapsed
		if ios >= 0 && res.TotalIOs != ios {
			panic(fmt.Sprintf("expt: I/O count changed with seed: %d vs %d", res.TotalIOs, ios))
		}
		ios = res.TotalIOs
	}
	mean := total / sim.Time(n)
	var worst float64
	for _, t := range times {
		if mean == 0 {
			// Degenerate zero-length runs: every repeat elapsed 0, so
			// deviation is 0, not NaN.
			break
		}
		d := float64(t-mean) / float64(mean)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return RunStats{Repeats: n, MeanElapsed: mean, VarianceFrac: worst, TotalIOs: ios}
}

// Run executes one machine to completion.
func Run(spec RunSpec) RunResult {
	cfg := core.DefaultConfig()
	if spec.CacheMB > 0 {
		cfg.CacheBytes = core.MB(spec.CacheMB)
	}
	cfg.Alloc = spec.Alloc
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	cfg.Revoke = spec.Revoke
	if spec.Opts.ReadAheadOff {
		cfg.ReadAhead = false
	}
	if spec.Opts.ReadAheadDepth > 0 {
		cfg.ReadAheadDepth = spec.Opts.ReadAheadDepth
	}
	cfg.SpreadSync = spec.SpreadSync
	cfg.UpcallCPU = spec.UpcallCPU
	if spec.FIFODisk {
		cfg.DiskSched = disk.FIFO
	}
	cfg.Trace = spec.Trace
	cfg.TraceCtl = spec.TraceCtl
	cfg.NoSimFastPath = spec.Opts.NoFastPath
	sys := core.NewSystem(cfg)
	procs := make([]*core.Proc, 0, len(spec.Apps))
	apps := make([]workload.App, 0, len(spec.Apps))
	for _, as := range spec.Apps {
		a := as.Make()
		apps = append(apps, a)
		procs = append(procs, workload.Launch(sys, a, as.Mode))
	}
	sys.Run()
	res := RunResult{
		CacheStats: sys.Cache().Stats(),
		Sim:        sys.SimStats(),
		PerApp:     make([]AppResult, 0, len(procs)),
	}
	for i := 0; i < 2; i++ {
		if q := sys.Disk(i).Stats().MaxQueue; q > res.MaxQueue {
			res.MaxQueue = q
		}
	}
	for i, p := range procs {
		ar := AppResult{
			Name:     apps[i].Name(),
			Elapsed:  p.Elapsed(),
			BlockIOs: p.Stats().BlockIOs(),
			Stats:    p.Stats(),
		}
		res.PerApp = append(res.PerApp, ar)
		res.TotalIOs += ar.BlockIOs
		if end := p.Elapsed(); end > res.TotalElapsed {
			res.TotalElapsed = end
		}
	}
	return res
}

// Sizes are the paper's buffer cache configurations in MB.
var Sizes = []float64{6.4, 8, 12, 16}

// singleApps is the Figure 4 roster in the paper's presentation order.
var singleApps = []string{"din", "cs1", "cs3", "cs2", "gli", "ldk", "pjn", "sort"}

// Registry maps workload names to constructors.
var Registry = map[string]func() workload.App{
	"cs1":  workload.Cscope1,
	"cs2":  workload.Cscope2,
	"cs3":  workload.Cscope3,
	"din":  workload.Dinero,
	"gli":  workload.Glimpse,
	"ldk":  workload.LinkEditor,
	"pjn":  workload.PostgresJoin,
	"sort": workload.Sort,
}

// mixSpec builds the AppSpecs for a named mix like "cs2+gli", every app in
// the given mode. Registry names double as cache-fingerprint names.
func mixSpec(names []string, mode workload.Mode) []AppSpec {
	out := make([]AppSpec, 0, len(names))
	for _, n := range names {
		mk, ok := Registry[n]
		if !ok {
			panic(fmt.Sprintf("expt: unknown workload %q", n))
		}
		out = append(out, AppSpec{Name: n, Make: mk, Mode: mode})
	}
	return out
}

// namedApp builds an AppSpec for an ad-hoc workload constructor; name
// must uniquely encode the constructor and its parameters (e.g.
// "read300@d1", "probe490@d0") so the Runner's memo cache never
// conflates two different workloads.
func namedApp(name string, mk func() workload.App, mode workload.Mode) AppSpec {
	return AppSpec{Name: name, Make: mk, Mode: mode}
}
