// tournament.go — the allocation-policy tournament: every registered
// kernel policy over the scan-heavy concurrent mixes, head to head.
//
// The paper's experiments hold the kernel policy mostly fixed (LRU-SP,
// with GlobalLRU and ALLOC-LRU as comparison points) and vary manager
// smartness. The tournament inverts that: every application runs
// Oblivious — no manager ever overrules — so the kernel allocation
// policy is the only thing that differs between columns, and the table
// isolates its pure effect. Mixes are the Figure 5 combinations that
// contain sort or glimpse, the workloads whose long sequential scans
// flush an LRU working set; those are where scan-resistant policies
// (ARC's two-list structure, AWRP's frequency weighting) can beat
// GlobalLRU, and where the online adapter has something to find.
package expt

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/workload"
)

// TournamentMixes are the scan-heavy Figure 5 combinations: every mix
// that includes sort (pure sequential scans) or gli (index scans).
var TournamentMixes = [][]string{
	{"cs2", "gli"},
	{"gli", "sort"},
	{"din", "sort"},
	{"sort", "ldk"},
	{"cs1", "gli", "ldk"},
	{"din", "cs3", "gli", "ldk"},
}

// TournamentResult is one (policy, mix) cell, kept structured so tests
// and the acbench JSON section can assert on it without re-parsing the
// rendered table.
type TournamentResult struct {
	Policy     cache.Alloc `json:"policy"`
	Mix        string      `json:"mix"`
	HitRatio   float64     `json:"hit_ratio"`
	ElapsedSec float64     `json:"elapsed_sec"`
	BlockIOs   int64       `json:"block_ios"`
}

// RunTournament executes the full policy × mix matrix at the given
// cache size (MB; 0 means the paper's default 6.4) and returns the
// cells in policy-major order. All runs are submitted before any is
// collected, so a parallel Runner executes the whole matrix at once.
func RunTournament(r *Runner, cacheMB float64) []TournamentResult {
	if cacheMB == 0 {
		cacheMB = 6.4
	}
	policies := cache.AllocNames()
	type cell struct {
		policy cache.Alloc
		mix    string
		fut    *Future
	}
	cells := make([]cell, 0, len(policies)*len(TournamentMixes))
	for _, pol := range policies {
		for _, mix := range TournamentMixes {
			cells = append(cells, cell{
				policy: pol,
				mix:    mixName(mix),
				fut: r.Submit(RunSpec{
					Apps:    mixSpec(mix, workload.Oblivious),
					CacheMB: cacheMB,
					Alloc:   pol,
				}),
			})
		}
	}
	out := make([]TournamentResult, 0, len(cells))
	for _, c := range cells {
		res := c.fut.Wait()
		out = append(out, TournamentResult{
			Policy:     c.policy,
			Mix:        c.mix,
			HitRatio:   hitRatio(res.CacheStats),
			ElapsedSec: res.TotalElapsed.Seconds(),
			BlockIOs:   res.TotalIOs,
		})
	}
	return out
}

func mixName(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

func hitRatio(s cache.Stats) float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Tournament renders the matrix as one table per metric: hit ratio and
// elapsed time, mixes down, policies across.
func Tournament(r *Runner) []Table {
	results := RunTournament(r, 6.4)
	policies := cache.AllocNames()
	byKey := make(map[string]TournamentResult, len(results))
	for _, res := range results {
		byKey[res.Mix+"|"+res.Policy.String()] = res
	}
	header := []string{"mix"}
	for _, p := range policies {
		header = append(header, p.String())
	}
	hit := Table{
		ID:    "tournament-hit",
		Title: "Allocation-policy tournament: global hit ratio (6.4 MB, oblivious apps)",
		Note: "Every registered kernel policy over the scan-heavy Figure 5 " +
			"mixes with no manager steering, so the allocation policy is the " +
			"only variable. Scan-resistant policies separate from the LRU " +
			"family on the sort- and glimpse-heavy rows.",
		Header: header,
	}
	el := Table{
		ID:     "tournament-elapsed",
		Title:  "Allocation-policy tournament: total elapsed seconds",
		Header: header,
	}
	for _, mix := range TournamentMixes {
		name := mixName(mix)
		hrow, erow := []string{name}, []string{name}
		for _, p := range policies {
			res := byKey[name+"|"+p.String()]
			hrow = append(hrow, fmt.Sprintf("%.3f", res.HitRatio))
			erow = append(erow, fmtSecs(res.ElapsedSec))
		}
		hit.Rows = append(hit.Rows, hrow)
		el.Rows = append(el.Rows, erow)
	}
	return []Table{hit, el}
}
