package expt

import (
	"testing"

	"repro/internal/cache"
)

// TestTournamentARCBeatsGlobalLRU is the tournament's reason to exist:
// with no manager steering, the scan-resistant ARC policy must win the
// global hit ratio against GlobalLRU on at least one scan-heavy mix.
// (Not on all — some mixes fit in cache or are genuinely LRU-friendly.)
func TestTournamentARCBeatsGlobalLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("full DES matrix")
	}
	r := NewRunner(0)
	results := RunTournament(r, 6.4)
	hit := make(map[string]map[cache.Alloc]float64)
	for _, res := range results {
		if hit[res.Mix] == nil {
			hit[res.Mix] = make(map[cache.Alloc]float64)
		}
		hit[res.Mix][res.Policy] = res.HitRatio
	}
	wins := 0
	for mix, byPol := range hit {
		arc, lru := byPol[cache.ARC], byPol[cache.GlobalLRU]
		t.Logf("%-20s arc %.4f  global-lru %.4f", mix, arc, lru)
		if arc > lru {
			wins++
		}
	}
	if wins == 0 {
		t.Error("ARC never beat GlobalLRU on any scan-heavy mix")
	}
}
