package expt

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The experiment drivers all follow the same two-phase shape: submit
// every RunSpec to the Runner up front (so a parallel Runner can keep all
// its workers busy), then collect results in the fixed presentation order
// while assembling rows. Each simulation is deterministic, so the
// rendered tables are byte-identical regardless of parallelism.

// sizeIdx maps a cache size to its index in Sizes (for paper lookups).
func sizeIdx(mb float64) int {
	for i, s := range Sizes {
		if s == mb {
			return i
		}
	}
	return -1
}

// Fig4 reproduces Figure 4 and the appendix Tables 5 and 6: every single
// application under the original kernel and under LRU-SP with its smart
// policy, across the four cache sizes. It returns the elapsed-time table
// and the block-I/O table.
func Fig4(r *Runner, sizes []float64) []Table {
	if sizes == nil {
		sizes = Sizes
	}
	elapsed := Table{
		ID:    "table5",
		Title: "Single-application elapsed time (seconds), original kernel vs LRU-SP (Figure 4 top / Table 5)",
		Note: "sim = this reproduction; paper = appendix Table 5. Absolute " +
			"seconds depend on the CPU/disk model; the ratio column is the result.",
		Header: []string{"app", "MB", "sim orig", "sim sp", "sim ratio", "paper orig", "paper sp", "paper ratio"},
	}
	ios := Table{
		ID:    "table6",
		Title: "Single-application block I/Os, original kernel vs LRU-SP (Figure 4 bottom / Table 6)",
		Note: "Block I/O counts are a nearly pure function of the reference " +
			"stream and replacement policy, so sim and paper should be close.",
		Header: []string{"app", "MB", "sim orig", "sim sp", "sim ratio", "paper orig", "paper sp", "paper ratio"},
	}
	type cell struct{ orig, sp *Future }
	cells := make([]cell, 0, len(singleApps)*len(sizes))
	for _, app := range singleApps {
		for _, mb := range sizes {
			cells = append(cells, cell{
				orig: r.Submit(RunSpec{
					Apps:    mixSpec([]string{app}, workload.Oblivious),
					CacheMB: mb, Alloc: cache.GlobalLRU,
				}),
				sp: r.Submit(RunSpec{
					Apps:    mixSpec([]string{app}, workload.Smart),
					CacheMB: mb, Alloc: cache.LRUSP,
				}),
			})
		}
	}
	ci := 0
	for _, app := range singleApps {
		for _, mb := range sizes {
			orig, sp := cells[ci].orig.Wait(), cells[ci].sp.Wait()
			ci++
			oe, se := orig.TotalElapsed.Seconds(), sp.TotalElapsed.Seconds()
			oi, si := orig.TotalIOs, sp.TotalIOs
			pRow, havePaper := PaperSingles[app], sizeIdx(mb) >= 0
			var pe, pse string
			var pio, psio string
			var per, pir string
			if havePaper {
				i := sizeIdx(mb)
				pe = fmtSecs(pRow.ElapsedOrig[i])
				pse = fmtSecs(pRow.ElapsedSP[i])
				per = fmtRatio(pRow.ElapsedSP[i] / pRow.ElapsedOrig[i])
				pio = fmt.Sprint(pRow.IOsOrig[i])
				psio = fmt.Sprint(pRow.IOsSP[i])
				pir = fmtRatio(float64(pRow.IOsSP[i]) / float64(pRow.IOsOrig[i]))
			}
			elapsed.Rows = append(elapsed.Rows, []string{
				app, fmt.Sprint(mb), fmtSecs(oe), fmtSecs(se), fmtRatio(se / oe), pe, pse, per,
			})
			ios.Rows = append(ios.Rows, []string{
				app, fmt.Sprint(mb), fmt.Sprint(oi), fmt.Sprint(si), fmtRatio(float64(si) / float64(oi)), pio, psio, pir,
			})
		}
	}
	return []Table{elapsed, ios}
}

// Fig5 reproduces Figure 5: the nine concurrent-application mixes under
// the original kernel (all oblivious) and LRU-SP (all smart), reporting
// totals normalized to the original kernel.
func Fig5(r *Runner, sizes []float64) []Table {
	if sizes == nil {
		sizes = Sizes
	}
	t := Table{
		ID:    "fig5",
		Title: "Multiple concurrent applications, LRU-SP vs original kernel (Figure 5)",
		Note: "Total elapsed time (last application to finish) and total " +
			"block I/Os, normalized to the original kernel (= 1.0). The paper's " +
			"figure shows ratios improving as the cache grows, down to about " +
			"0.7 for elapsed time and below 0.6 for I/Os at 16 MB.",
		Header: []string{"mix", "MB", "orig s", "sp s", "elapsed ratio", "orig IOs", "sp IOs", "IO ratio"},
	}
	type cell struct{ orig, sp *Future }
	var cells []cell
	for _, mix := range Fig5Mixes {
		for _, mb := range sizes {
			cells = append(cells, cell{
				orig: r.Submit(RunSpec{Apps: mixSpec(mix, workload.Oblivious), CacheMB: mb, Alloc: cache.GlobalLRU}),
				sp:   r.Submit(RunSpec{Apps: mixSpec(mix, workload.Smart), CacheMB: mb, Alloc: cache.LRUSP}),
			})
		}
	}
	ci := 0
	for _, mix := range Fig5Mixes {
		name := strings.Join(mix, "+")
		for _, mb := range sizes {
			orig, sp := cells[ci].orig.Wait(), cells[ci].sp.Wait()
			ci++
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprint(mb),
				fmtSecs(orig.TotalElapsed.Seconds()), fmtSecs(sp.TotalElapsed.Seconds()),
				fmtRatio(sp.TotalElapsed.Seconds() / orig.TotalElapsed.Seconds()),
				fmt.Sprint(orig.TotalIOs), fmt.Sprint(sp.TotalIOs),
				fmtRatio(float64(sp.TotalIOs) / float64(orig.TotalIOs)),
			})
		}
	}
	return []Table{t}
}

// Fig6 reproduces Figure 6: the five mixes re-run with ALLOC-LRU (two-
// level replacement without swapping or placeholders), normalized to
// LRU-SP. The LRU-SP runs are spec-identical to Figure 5's, so under a
// caching Runner they are memo hits, not re-executions.
func Fig6(r *Runner, sizes []float64) []Table {
	if sizes == nil {
		sizes = Sizes
	}
	t := Table{
		ID:    "fig6",
		Title: "ALLOC-LRU vs LRU-SP for concurrent applications (Figure 6)",
		Note: "Values are ALLOC-LRU normalized to LRU-SP (= 1.0); above 1.0 " +
			"means the basic allocator without swapping penalizes smart " +
			"processes, the paper's argument that swapping is necessary.",
		Header: []string{"mix", "MB", "sp s", "alloc-lru s", "elapsed ratio", "sp IOs", "alloc-lru IOs", "IO ratio"},
	}
	type cell struct{ sp, al *Future }
	var cells []cell
	for _, mix := range Fig6Mixes {
		for _, mb := range sizes {
			cells = append(cells, cell{
				sp: r.Submit(RunSpec{Apps: mixSpec(mix, workload.Smart), CacheMB: mb, Alloc: cache.LRUSP}),
				al: r.Submit(RunSpec{Apps: mixSpec(mix, workload.Smart), CacheMB: mb, Alloc: cache.AllocLRU}),
			})
		}
	}
	ci := 0
	for _, mix := range Fig6Mixes {
		name := strings.Join(mix, "+")
		for _, mb := range sizes {
			sp, al := cells[ci].sp.Wait(), cells[ci].al.Wait()
			ci++
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprint(mb),
				fmtSecs(sp.TotalElapsed.Seconds()), fmtSecs(al.TotalElapsed.Seconds()),
				fmtRatio(al.TotalElapsed.Seconds() / sp.TotalElapsed.Seconds()),
				fmt.Sprint(sp.TotalIOs), fmt.Sprint(al.TotalIOs),
				fmtRatio(float64(al.TotalIOs) / float64(sp.TotalIOs)),
			})
		}
	}
	return []Table{t}
}

// table1Spec builds one Table 1 run: a background Read300 and a foreground
// probe ReadN, both on disk 0, at the paper's 6.4 MB cache.
func table1Spec(n int32, setting string) RunSpec {
	bgMode := workload.Oblivious
	alloc := cache.LRUSP
	switch setting {
	case "Unprotected":
		bgMode = workload.Foolish
		alloc = cache.LRUS
	case "Protected":
		bgMode = workload.Foolish
	}
	return RunSpec{
		Apps: []AppSpec{
			namedApp("read300@d0", func() workload.App { return workload.Read300(0) }, bgMode),
			namedApp(fmt.Sprintf("probe%d@d0", n), func() workload.App { return workload.Probe(n, 0) }, workload.Oblivious),
		},
		CacheMB: 6.4,
		Alloc:   alloc,
	}
}

// Table1 reproduces the placeholder-effectiveness experiment: an oblivious
// probe ReadN next to a background Read300 that is either oblivious (LRU)
// or foolish (MRU), with and without placeholders.
func Table1(r *Runner) []Table {
	t := Table{
		ID:    "table1",
		Title: "Are placeholders necessary? Probe ReadN next to Read300 (Table 1)",
		Note: "Oblivious: Read300 uses LRU. Unprotected: Read300 uses a " +
			"foolish MRU policy and the kernel runs LRU-S (no placeholders). " +
			"Protected: foolish Read300 under full LRU-SP. Placeholders should " +
			"pull the probe's I/Os back down to the oblivious level.",
		Header: []string{"setting", "N", "sim s", "paper s", "sim IOs", "paper IOs"},
	}
	var futs []*Future
	for _, setting := range PaperTable1.Settings {
		for _, n := range PaperTable1.Ns {
			futs = append(futs, r.Submit(table1Spec(n, setting)))
		}
	}
	fi := 0
	for _, setting := range PaperTable1.Settings {
		for i, n := range PaperTable1.Ns {
			res := futs[fi].Wait()
			fi++
			probe := res.PerApp[1]
			t.Rows = append(t.Rows, []string{
				setting, fmt.Sprint(n),
				fmtSecs(probe.Elapsed.Seconds()), fmtSecs(PaperTable1.Elapsed[setting][i]),
				fmt.Sprint(probe.BlockIOs), fmt.Sprint(PaperTable1.BlockIOs[setting][i]),
			})
		}
	}
	return []Table{t}
}

// Table2 reproduces the foolish-process experiment: each smart application
// concurrently with a Read300 that is oblivious or foolish, one disk.
func Table2(r *Runner) []Table {
	t := Table{
		ID:    "table2",
		Title: "Effect of a foolish process on smart applications (Table 2)",
		Note: "Each application runs its smart policy under LRU-SP next to a " +
			"Read300 on the same disk. A foolish Read300 still slows the smart " +
			"application (longer disk queues, longer occupancy), though " +
			"placeholders bound the damage.",
		Header: []string{"app", "Read300", "sim s", "paper s", "sim IOs", "paper IOs"},
	}
	var futs []*Future
	for _, policy := range []string{"Oblivious", "Foolish"} {
		for _, partner := range PaperTable2.Partners {
			bgMode := workload.Oblivious
			if policy == "Foolish" {
				bgMode = workload.Foolish
			}
			futs = append(futs, r.Submit(RunSpec{
				Apps: []AppSpec{
					{Name: partner, Make: Registry[partner], Mode: workload.Smart},
					namedApp("read300@d0", func() workload.App { return workload.Read300(0) }, bgMode),
				},
				CacheMB: 6.4,
				Alloc:   cache.LRUSP,
			}))
		}
	}
	fi := 0
	for _, policy := range []string{"Oblivious", "Foolish"} {
		for i, partner := range PaperTable2.Partners {
			res := futs[fi].Wait()
			fi++
			app := res.PerApp[0]
			t.Rows = append(t.Rows, []string{
				partner, strings.ToLower(policy),
				fmtSecs(app.Elapsed.Seconds()), fmtSecs(PaperTable2.Elapsed[policy][i]),
				fmt.Sprint(app.BlockIOs), fmt.Sprint(PaperTable2.BlockIOs[policy][i]),
			})
		}
	}
	return []Table{t}
}

// table34 runs the smart-vs-oblivious-partner experiment with Read300 on
// the given disk (0 reproduces Table 3, 1 reproduces Table 4). The
// partner-smart runs on disk 0 are spec-identical to Table 2's oblivious
// rows, another memo-cache overlap.
func table34(r *Runner, id, title string, readDisk int, paper map[string][4]float64, partners []string) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"partner", "sim obl s", "paper obl s", "sim smart s", "paper smart s"},
		Note: "Elapsed time of the oblivious Read300 when its partner runs " +
			"oblivious vs smart. Smart partners must not hurt oblivious " +
			"processes; on one disk they generally help by reducing disk load.",
	}
	var futs [][2]*Future
	for _, partner := range partners {
		var pair [2]*Future
		for j, partnerMode := range []workload.Mode{workload.Oblivious, workload.Smart} {
			pair[j] = r.Submit(RunSpec{
				Apps: []AppSpec{
					{Name: partner, Make: Registry[partner], Mode: partnerMode},
					namedApp(fmt.Sprintf("read300@d%d", readDisk),
						func() workload.App { return workload.Read300(readDisk) }, workload.Oblivious),
				},
				CacheMB: 6.4,
				Alloc:   cache.LRUSP,
			})
		}
		futs = append(futs, pair)
	}
	for i, partner := range partners {
		var secs [2]float64
		for j := range secs {
			secs[j] = futs[i][j].Wait().PerApp[1].Elapsed.Seconds()
		}
		t.Rows = append(t.Rows, []string{
			partner,
			fmtSecs(secs[0]), fmtSecs(paper["Oblivious"][i]),
			fmtSecs(secs[1]), fmtSecs(paper["Smart"][i]),
		})
	}
	return t
}

// Table3 reproduces the do-smart-processes-hurt-oblivious-ones experiment
// on one disk.
func Table3(r *Runner) []Table {
	return []Table{table34(r, "table3",
		"Elapsed time of oblivious Read300 with oblivious vs smart partners, one disk (Table 3)",
		0, PaperTable3.Elapsed, PaperTable3.Partners)}
}

// Table4 reproduces the same experiment with Read300 on its own disk,
// where the paper's disk-contention anomaly disappears.
func Table4(r *Runner) []Table {
	return []Table{table34(r, "table4",
		"Elapsed time of oblivious Read300 with oblivious vs smart partners, two disks (Table 4)",
		1, PaperTable4.Elapsed, PaperTable4.Partners)}
}

// Ablation exercises the design extensions: revocation of foolish
// managers (the paper's footnote 7) and the contribution of read-ahead.
func Ablation(r *Runner) []Table {
	rev := Table{
		ID:    "ablation-revoke",
		Title: "Revocation of foolish managers (paper footnote 7, implemented)",
		Note: "A foolish Read300 (MRU) next to an oblivious Read400 probe at " +
			"6.4 MB. With revocation enabled the kernel withdraws the foolish " +
			"manager's control after its placeholder mistakes cross 30% of its " +
			"decisions, restoring both processes toward the oblivious baseline.",
		Header: []string{"kernel", "probe IOs", "probe s", "read300 IOs", "revocations"},
	}
	type variant struct {
		name   string
		alloc  cache.Alloc
		revoke cache.RevokeConfig
		bgMode workload.Mode
	}
	variants := []variant{
		{"lru-sp, oblivious bg", cache.LRUSP, cache.RevokeConfig{}, workload.Oblivious},
		{"alloc-lru, foolish bg", cache.AllocLRU, cache.RevokeConfig{}, workload.Foolish},
		{"lru-s, foolish bg", cache.LRUS, cache.RevokeConfig{}, workload.Foolish},
		{"lru-sp, foolish bg", cache.LRUSP, cache.RevokeConfig{}, workload.Foolish},
		{"lru-sp+revoke, foolish bg", cache.LRUSP,
			cache.RevokeConfig{Enabled: true, MinDecisions: 200, MistakeRatio: 0.3}, workload.Foolish},
	}
	var revFuts []*Future
	for _, v := range variants {
		revFuts = append(revFuts, r.Submit(RunSpec{
			Apps: []AppSpec{
				namedApp("read300@d0", func() workload.App { return workload.Read300(0) }, v.bgMode),
				namedApp("probe400@d0", func() workload.App { return workload.Probe(400, 0) }, workload.Oblivious),
			},
			CacheMB: 6.4,
			Alloc:   v.alloc,
			Revoke:  v.revoke,
		}))
	}
	for i, v := range variants {
		res := revFuts[i].Wait()
		rev.Rows = append(rev.Rows, []string{
			v.name,
			fmt.Sprint(res.PerApp[1].BlockIOs), fmtSecs(res.PerApp[1].Elapsed.Seconds()),
			fmt.Sprint(res.PerApp[0].BlockIOs),
			fmt.Sprint(res.CacheStats.Revocations),
		})
	}

	ra := Table{
		ID:    "ablation-readahead",
		Title: "Read-ahead depth ablation (model ablation)",
		Note: "din and sort at 6.4 MB under both kernels across read-ahead " +
			"depths. Depth 1 is Ultrix breada and the reproduction default; " +
			"deeper read-ahead (a clustered kernel) would have shortened " +
			"elapsed times further without changing block I/O counts for " +
			"these sequential workloads.",
		Header: []string{"app", "kernel", "depth", "IOs", "elapsed s"},
	}
	var raFuts []*Future
	for _, app := range []string{"din", "sort"} {
		for _, smart := range []bool{false, true} {
			for _, depth := range []int{0, 1, 2, 4} {
				mode, alloc := workload.Oblivious, cache.GlobalLRU
				if smart {
					mode, alloc = workload.Smart, cache.LRUSP
				}
				raFuts = append(raFuts, r.Submit(RunSpec{
					Apps:    mixSpec([]string{app}, mode),
					CacheMB: 6.4,
					Alloc:   alloc,
					Opts:    Options{ReadAheadOff: depth == 0, ReadAheadDepth: depth},
				}))
			}
		}
	}
	fi := 0
	for _, app := range []string{"din", "sort"} {
		for _, smart := range []bool{false, true} {
			for _, depth := range []int{0, 1, 2, 4} {
				kernel := "original"
				if smart {
					kernel = "lru-sp"
				}
				res := raFuts[fi].Wait()
				fi++
				ra.Rows = append(ra.Rows, []string{
					app, kernel, fmt.Sprint(depth),
					fmt.Sprint(res.TotalIOs), fmtSecs(res.TotalElapsed.Seconds()),
				})
			}
		}
	}

	vr := Table{
		ID:    "ablation-variance",
		Title: "Run-to-run variance over five seeds (the paper's methodology check)",
		Note: "The paper averages five cold-start runs and reports variances " +
			"under 2% (a few under 5%). Here seeds perturb only rotational " +
			"latencies, so block I/Os are identical across runs and elapsed " +
			"variance stays within the paper's bound.",
		Header: []string{"app", "kernel", "mean s", "max dev", "IOs"},
	}
	for _, app := range []string{"cs1", "pjn", "sort"} {
		for _, smart := range []bool{false, true} {
			mode, alloc, kernel := workload.Oblivious, cache.GlobalLRU, "original"
			if smart {
				mode, alloc, kernel = workload.Smart, cache.LRUSP, "lru-sp"
			}
			st := RunRepeated(r, RunSpec{
				Apps:    mixSpec([]string{app}, mode),
				CacheMB: 6.4,
				Alloc:   alloc,
			}, 5)
			vr.Rows = append(vr.Rows, []string{
				app, kernel,
				fmtSecs(st.MeanElapsed.Seconds()),
				fmt.Sprintf("%.2f%%", 100*st.VarianceFrac),
				fmt.Sprint(st.TotalIOs),
			})
		}
	}
	up := Table{
		ID:    "ablation-update",
		Title: "Update policy x disk scheduling (Mogul '94 [21]; the paper's closing future-work question)",
		Note: "sort (write-heavy, RZ26) next to a latency-sensitive Read300 " +
			"on the same disk, crossing Ultrix's 30 s sync bursts vs spread " +
			"write-back with FIFO vs C-LOOK request scheduling. Measured: " +
			"the elevator is worth ~13% to both processes; under FIFO, " +
			"spreading the bursts buys the probe a further few seconds " +
			"(Mogul's observation), while behind the elevator the update " +
			"policy barely matters — the sweeps absorb the bursts. Caching, " +
			"write-back and disk scheduling interact, exactly the question " +
			"the paper's final section leaves open.",
		Header: []string{"scheduler", "update policy", "read300 s", "sort s", "max queue"},
	}
	var upFuts []*Future
	for _, fifo := range []bool{true, false} {
		for _, spread := range []bool{false, true} {
			upFuts = append(upFuts, r.Submit(RunSpec{
				Apps: []AppSpec{
					{Name: "sort", Make: Registry["sort"], Mode: workload.Smart},
					namedApp("read300@d1", func() workload.App { return workload.Read300(1) }, workload.Oblivious),
				},
				CacheMB:    6.4,
				Alloc:      cache.LRUSP,
				SpreadSync: spread,
				FIFODisk:   fifo,
			}))
		}
	}
	fi = 0
	for _, fifo := range []bool{true, false} {
		for _, spread := range []bool{false, true} {
			sname := "c-look"
			if fifo {
				sname = "fifo"
			}
			name := "30s bursts"
			if spread {
				name = "spread"
			}
			res := upFuts[fi].Wait()
			fi++
			up.Rows = append(up.Rows, []string{
				sname, name,
				fmtSecs(res.PerApp[1].Elapsed.Seconds()), fmtSecs(res.PerApp[0].Elapsed.Seconds()),
				fmt.Sprint(res.MaxQueue),
			})
		}
	}
	uc := Table{
		ID:    "ablation-upcall",
		Title: "Primitive interface vs upcall-based control (Section 7 related-work claim)",
		Note: "The paper's interface costs a procedure call per " +
			"replace_block consultation; the upcall/RPC systems it cites paid " +
			"up to 10% of total execution time. Charging 1 ms per " +
			"consultation (two 1994 context switches) reproduces that " +
			"overhead band on the consultation-heavy workloads.",
		Header: []string{"app", "control", "consults", "elapsed s", "overhead"},
	}
	var ucFuts []*Future
	for _, app := range []string{"din", "cs2", "sort"} {
		for _, upcall := range []bool{false, true} {
			spec := RunSpec{
				Apps:    mixSpec([]string{app}, workload.Smart),
				CacheMB: 6.4,
				Alloc:   cache.LRUSP,
			}
			if upcall {
				spec.UpcallCPU = sim.Millisecond
			}
			ucFuts = append(ucFuts, r.Submit(spec))
		}
	}
	fi = 0
	for _, app := range []string{"din", "cs2", "sort"} {
		var base float64
		for _, upcall := range []bool{false, true} {
			name := "primitives"
			if upcall {
				name = "upcalls"
			}
			res := ucFuts[fi].Wait()
			fi++
			secs := res.TotalElapsed.Seconds()
			overhead := ""
			if upcall {
				overhead = fmt.Sprintf("+%.1f%%", 100*(secs/base-1))
			} else {
				base = secs
			}
			uc.Rows = append(uc.Rows, []string{
				app, name, fmt.Sprint(res.CacheStats.Consults),
				fmtSecs(secs), overhead,
			})
		}
	}
	return []Table{rev, ra, vr, up, uc}
}

// Experiments maps experiment ids to their drivers (full sizes). Every
// driver takes the Runner its specs are submitted through; nil runs
// serially without memoization.
var Experiments = map[string]func(*Runner) []Table{
	"fig4":     func(r *Runner) []Table { return Fig4(r, nil) },
	"fig5":     func(r *Runner) []Table { return Fig5(r, nil) },
	"fig6":     func(r *Runner) []Table { return Fig6(r, nil) },
	"table1":   Table1,
	"table2":   Table2,
	"table3":   Table3,
	"table4":   Table4,
	"ablation": Ablation,
	"policies": func(r *Runner) []Table { return Policies(r, nil) },
	"vm":       VM,
	// Not in Order: the tournament compares post-paper policies, so it
	// runs on request (acbench -tournament, make bench-policy-tournament)
	// rather than inside "all".
	"tournament": Tournament,
}

// Order is the presentation order for "all".
var Order = []string{"fig4", "fig5", "fig6", "table1", "table2", "table3", "table4", "ablation", "policies", "vm"}
