package expt

import (
	"fmt"

	"repro/internal/vmclock"
)

// vmMRUManager evicts its most-recently-faulted page: smart for a loop
// larger than memory, foolish for a repeat-then-advance (ReadN) pattern.
type vmMRUManager struct{ recent []*vmclock.Page }

func (m *vmMRUManager) PageIn(pg *vmclock.Page) { m.recent = append(m.recent, pg) }
func (m *vmMRUManager) PageOut(pg *vmclock.Page) {
	for i, p := range m.recent {
		if p == pg {
			m.recent = append(m.recent[:i], m.recent[i+1:]...)
			return
		}
	}
}
func (m *vmMRUManager) ChooseVictim(c *vmclock.Page, _ []*vmclock.Page) *vmclock.Page {
	if len(m.recent) > 0 && m.recent[len(m.recent)-1] != c {
		return m.recent[len(m.recent)-1]
	}
	return c
}
func (m *vmMRUManager) MistakeCaught(vmclock.PageID, *vmclock.Page) {}

// VM explores the paper's Section 7 conjecture that two-level replacement
// transfers to virtual-memory page replacement: the same smart-process,
// swapping, and placeholder questions are asked of a two-handed clock.
// The clock experiments run no simulated machines, so the Runner is
// unused; the parameter keeps VM in the common driver signature.
func VM(*Runner) []Table {
	t := Table{
		ID:    "vm",
		Title: "Two-level replacement on a two-handed clock (Section 7 conjecture)",
		Note: "The paper conjectures its techniques transfer to VM page " +
			"replacement. Measured here: a smart manager beats the plain clock " +
			"on a loop; placeholders protect an innocent neighbour from a " +
			"foolish manager; but swapping — essential for an LRU list — is " +
			"nearly neutral on a clock, whose rotating hand already avoids " +
			"re-picking an overruled candidate. Faults, lower is better.",
		Header: []string{"experiment", "variant", "faults A", "faults B"},
	}

	// 1. Smart manager vs plain clock on a 48-page loop in 32 frames.
	loopRun := func(smart bool) int64 {
		c := vmclock.New(vmclock.Config{Frames: 32, HandGap: 8, Swapping: true, Placeholders: true})
		if smart {
			c.SetManager(1, &vmMRUManager{})
		}
		for pass := 0; pass < 6; pass++ {
			for v := int32(0); v < 48; v++ {
				c.Access(vmclock.PageID{Proc: 1, VPage: v})
			}
		}
		return c.Stats().Faults
	}
	t.Rows = append(t.Rows,
		[]string{"loop 48 in 32 frames", "plain clock", fmt.Sprint(loopRun(false)), ""},
		[]string{"loop 48 in 32 frames", "smart manager", fmt.Sprint(loopRun(true)), ""},
	)

	// 2. Foolish ReadN-style process next to an innocent neighbour, with
	// and without placeholders.
	foolRun := func(placeholders bool) (int64, int64) {
		c := vmclock.New(vmclock.Config{Frames: 24, HandGap: 6, Swapping: true, Placeholders: placeholders})
		c.SetManager(1, &vmMRUManager{})
		var fool, victim int64
		for group := 0; group < 8; group++ {
			for rep := 0; rep < 5; rep++ {
				for v := 0; v < 10; v++ {
					if c.Access(vmclock.PageID{Proc: 1, VPage: int32(group*10 + v)}) {
						fool++
					}
				}
				for v := 0; v < 10; v++ {
					if c.Access(vmclock.PageID{Proc: 2, VPage: int32(v)}) {
						victim++
					}
				}
			}
		}
		return fool, victim
	}
	fw, vw := foolRun(false)
	fp, vp := foolRun(true)
	t.Rows = append(t.Rows,
		[]string{"foolish + neighbour", "no placeholders", fmt.Sprint(fw), fmt.Sprint(vw)},
		[]string{"foolish + neighbour", "placeholders", fmt.Sprint(fp), fmt.Sprint(vp)},
	)

	// 3. Swapping on/off for a smart process under a streaming neighbour.
	swapRun := func(swapping bool) int64 {
		c := vmclock.New(vmclock.Config{Frames: 32, HandGap: 8, Swapping: swapping, Placeholders: true})
		c.SetManager(1, &vmMRUManager{})
		var faults int64
		stream := int32(0)
		for pass := 0; pass < 10; pass++ {
			for v := int32(0); v < 40; v++ {
				if c.Access(vmclock.PageID{Proc: 1, VPage: v}) {
					faults++
				}
				if v%3 == 0 {
					c.Access(vmclock.PageID{Proc: 2, VPage: stream})
					stream++
				}
			}
		}
		return faults
	}
	t.Rows = append(t.Rows,
		[]string{"smart + streamer", "no swapping", fmt.Sprint(swapRun(false)), ""},
		[]string{"smart + streamer", "swapping", fmt.Sprint(swapRun(true)), ""},
	)
	return []Table{t}
}
