package expt

import "repro/internal/core"

// ReplayEvent is one entry in a captured workload transcript: either a
// block access (IsCtl false) or a control-plane operation (IsCtl true).
// The two streams are interleaved in the order the workload issued them,
// which is everything a wire-level replay needs to reproduce the run.
type ReplayEvent struct {
	IsCtl  bool
	Access core.TraceEvent
	Ctl    core.CtlEvent
}

// Recording is a replayable transcript of one DES run: the spec that
// produced it, every access and control event in issue order, and the
// run's result — the ground truth the acfcd oracle test compares the
// wire replay against.
type Recording struct {
	Spec   RunSpec
	Events []ReplayEvent
	Result RunResult
}

// Record executes spec with both trace hooks installed and returns the
// transcript. The spec's own Trace/TraceCtl callbacks, if any, are
// chained after capture. Traced runs are uncacheable, so Record always
// executes (it calls Run directly, no Runner involved).
//
// For the transcript to be exactly replayable the spec should have
// ReadAheadOff set (read-ahead issues I/O the trace does not record)
// and a single app (so replay order is total, not an artifact of the
// simulated interleaving).
func Record(spec RunSpec) *Recording {
	rec := &Recording{Spec: spec}
	prevT, prevC := spec.Trace, spec.TraceCtl
	spec.Trace = func(ev core.TraceEvent) {
		rec.Events = append(rec.Events, ReplayEvent{Access: ev})
		if prevT != nil {
			prevT(ev)
		}
	}
	spec.TraceCtl = func(ev core.CtlEvent) {
		rec.Events = append(rec.Events, ReplayEvent{IsCtl: true, Ctl: ev})
		if prevC != nil {
			prevC(ev)
		}
	}
	rec.Result = Run(spec)
	return rec
}
