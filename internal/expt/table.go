package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id: "fig4", "table1", ...
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range wrap(t.Note, 76) {
			fmt.Fprintf(w, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(pad(c, widths[i], false))
			} else {
				b.WriteString(pad(c, widths[i], true))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

func wrap(s string, width int) []string {
	words := strings.Fields(s)
	var lines []string
	var cur string
	for _, w := range words {
		if cur == "" {
			cur = w
		} else if len(cur)+1+len(w) <= width {
			cur += " " + w
		} else {
			lines = append(lines, cur)
			cur = w
		}
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

// fmtRatio renders a normalized value like the paper's figures.
func fmtRatio(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtSecs renders a virtual time as whole seconds.
func fmtSecs(s float64) string { return fmt.Sprintf("%.0f", s) }
