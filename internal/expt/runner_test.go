package expt

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/workload"
)

// fig4Cell is one Figure 4 cell (din at 6.4 MB, original kernel) — small
// enough to run several times in a test.
func fig4Cell() RunSpec {
	return RunSpec{
		Apps:    mixSpec([]string{"din"}, workload.Oblivious),
		CacheMB: 6.4,
		Alloc:   cache.GlobalLRU,
	}
}

// TestRunnerParallelMatchesSerial is the scheduler's core determinism
// contract: a spec run through a parallel Runner returns exactly the
// RunResult of the legacy serial path.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	spec := fig4Cell()
	serial := Run(spec)
	par := NewRunner(8).RunVia(spec)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel result differs from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestRunnerCacheHitDeepEqual verifies memoized results are
// indistinguishable from cold runs and that the hit/miss counters track
// submissions.
func TestRunnerCacheHitDeepEqual(t *testing.T) {
	r := NewRunner(2)
	cold := r.Submit(fig4Cell()).Wait()
	hit := r.Submit(fig4Cell()).Wait()
	if !reflect.DeepEqual(cold, hit) {
		t.Errorf("cache hit differs from cold run:\ncold: %+v\nhit: %+v", cold, hit)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Executed != 1 || st.Bypasses != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 executed / 0 bypasses", st)
	}
}

// TestRunnerTableBytesIdentical renders a full driver table through the
// serial path and a wide parallel Runner and compares the bytes — the
// property `acbench -run all` relies on for reproducible output.
func TestRunnerTableBytesIdentical(t *testing.T) {
	render := func(r *Runner) []byte {
		var buf bytes.Buffer
		for _, tbl := range Table1(r) {
			tbl.Render(&buf)
		}
		return buf.Bytes()
	}
	serial := render(NewRunner(1))
	parallel := render(NewRunner(8))
	if !bytes.Equal(serial, parallel) {
		t.Errorf("table bytes differ between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

func TestFingerprint(t *testing.T) {
	base := fig4Cell()
	key, ok := fingerprint(base)
	if !ok || key == "" {
		t.Fatalf("base spec not cacheable: %q, %v", key, ok)
	}
	// Seed 0 and the default seed memoize to the same run.
	seeded := base
	seeded.Seed = core.DefaultConfig().Seed
	if k2, ok := fingerprint(seeded); !ok || k2 != key {
		t.Errorf("seed 0 and default seed diverge: %q vs %q", key, k2)
	}
	// Every behavior-relevant field must change the key.
	variants := []func(*RunSpec){
		func(s *RunSpec) { s.CacheMB = 16 },
		func(s *RunSpec) { s.Alloc = cache.LRUSP },
		func(s *RunSpec) { s.Seed = 7 },
		func(s *RunSpec) { s.Revoke = cache.RevokeConfig{Enabled: true, MinDecisions: 1, MistakeRatio: 0.5} },
		func(s *RunSpec) { s.Opts.ReadAheadOff = true },
		func(s *RunSpec) { s.Opts.ReadAheadDepth = 4 },
		func(s *RunSpec) { s.Opts.NoFastPath = true },
		func(s *RunSpec) { s.SpreadSync = true },
		func(s *RunSpec) { s.UpcallCPU = 1000 },
		func(s *RunSpec) { s.FIFODisk = true },
		func(s *RunSpec) { s.Apps = mixSpec([]string{"din"}, workload.Smart) },
		func(s *RunSpec) { s.Apps = mixSpec([]string{"sort"}, workload.Oblivious) },
	}
	for i, mutate := range variants {
		s := fig4Cell()
		mutate(&s)
		k, ok := fingerprint(s)
		if !ok {
			t.Errorf("variant %d not cacheable", i)
			continue
		}
		if k == key {
			t.Errorf("variant %d collides with base key %q", i, key)
		}
	}
	// Traced specs and unnamed apps bypass the cache.
	traced := fig4Cell()
	traced.Trace = func(core.TraceEvent) {}
	if _, ok := fingerprint(traced); ok {
		t.Error("traced spec reported cacheable")
	}
	unnamed := fig4Cell()
	unnamed.Apps = []AppSpec{{Make: workload.Dinero, Mode: workload.Oblivious}}
	if _, ok := fingerprint(unnamed); ok {
		t.Error("unnamed app reported cacheable")
	}
}

// TestRunnerBypassExecutes confirms uncacheable (traced) specs run every
// time and are counted as bypasses — the Trace callback must fire on each
// submission.
func TestRunnerBypassExecutes(t *testing.T) {
	r := NewRunner(2)
	count := func() int {
		n := 0
		spec := fig4Cell()
		spec.Trace = func(core.TraceEvent) { n++ }
		r.Submit(spec).Wait()
		return n
	}
	a, b := count(), count()
	if a == 0 || a != b {
		t.Errorf("trace events: %d then %d, want equal and nonzero", a, b)
	}
	st := r.Stats()
	if st.Bypasses != 2 || st.Executed != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 bypasses / 2 executed / 0 hits", st)
	}
}

// noopApp performs no work at all, so its runs elapse zero virtual time.
type noopApp struct{}

func (noopApp) Name() string                  { return "noop" }
func (noopApp) DefaultDisk() int              { return 0 }
func (noopApp) Prepare(*core.System)          {}
func (noopApp) Run(*core.Proc, workload.Mode) {}

// TestRunRepeatedZeroElapsedNoNaN guards the VarianceFrac division: a
// degenerate run whose elapsed time is zero must report 0 deviation, not
// NaN.
func TestRunRepeatedZeroElapsedNoNaN(t *testing.T) {
	st := RunRepeated(nil, RunSpec{
		Apps: []AppSpec{namedApp("noop", func() workload.App { return noopApp{} }, workload.Oblivious)},
	}, 3)
	if st.MeanElapsed != 0 {
		t.Fatalf("noop run elapsed %v, want 0", st.MeanElapsed)
	}
	if st.VarianceFrac != 0 {
		t.Errorf("zero-length runs: VarianceFrac = %v, want 0", st.VarianceFrac)
	}
}
