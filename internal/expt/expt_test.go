package expt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/workload"
)

func TestRunDeterministic(t *testing.T) {
	spec := RunSpec{
		Apps:    mixSpec([]string{"din"}, workload.Smart),
		CacheMB: 6.4,
		Alloc:   cache.LRUSP,
	}
	a, b := Run(spec), Run(spec)
	if a.TotalIOs != b.TotalIOs || a.TotalElapsed != b.TotalElapsed {
		t.Errorf("runs differ: %d/%v vs %d/%v", a.TotalIOs, a.TotalElapsed, b.TotalIOs, b.TotalElapsed)
	}
}

func TestRunSeedChangesOnlyTiming(t *testing.T) {
	mk := func(seed uint64) RunResult {
		return Run(RunSpec{
			Apps:    mixSpec([]string{"cs1"}, workload.Smart),
			CacheMB: 6.4, Alloc: cache.LRUSP, Seed: seed,
		})
	}
	a, b := mk(1), mk(99)
	if a.TotalIOs != b.TotalIOs {
		t.Errorf("seed changed I/O count: %d vs %d", a.TotalIOs, b.TotalIOs)
	}
	if a.TotalElapsed == b.TotalElapsed {
		t.Error("different seeds gave identical elapsed times (rotational model inert?)")
	}
}

func TestRunPerAppAccounting(t *testing.T) {
	res := Run(RunSpec{
		Apps:    mixSpec([]string{"din", "ldk"}, workload.Oblivious),
		CacheMB: 6.4, Alloc: cache.GlobalLRU,
	})
	if len(res.PerApp) != 2 {
		t.Fatalf("PerApp has %d entries", len(res.PerApp))
	}
	if res.PerApp[0].Name != "din" || res.PerApp[1].Name != "ldk" {
		t.Errorf("names = %s, %s", res.PerApp[0].Name, res.PerApp[1].Name)
	}
	var sum int64
	for _, a := range res.PerApp {
		if a.BlockIOs <= 0 || a.Elapsed <= 0 {
			t.Errorf("%s: empty result", a.Name)
		}
		sum += a.BlockIOs
	}
	if sum != res.TotalIOs {
		t.Errorf("TotalIOs %d != sum %d", res.TotalIOs, sum)
	}
	for _, a := range res.PerApp {
		if a.Elapsed > res.TotalElapsed {
			t.Errorf("%s elapsed %v exceeds total %v", a.Name, a.Elapsed, res.TotalElapsed)
		}
	}
}

func TestMixSpecUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown workload did not panic")
		}
	}()
	mixSpec([]string{"nope"}, workload.Smart)
}

func TestFig4SingleSize(t *testing.T) {
	tables := Fig4(nil, []float64{6.4})
	if len(tables) != 2 {
		t.Fatalf("Fig4 returned %d tables", len(tables))
	}
	elapsed, ios := tables[0], tables[1]
	if len(elapsed.Rows) != len(singleApps) || len(ios.Rows) != len(singleApps) {
		t.Fatalf("row counts %d, %d; want %d", len(elapsed.Rows), len(ios.Rows), len(singleApps))
	}
	// Every app must improve (or at worst tie) on block I/Os at 6.4 MB,
	// as in the paper.
	for _, row := range ios.Rows {
		ratio := parseF(t, row[4])
		if ratio > 1.01 {
			t.Errorf("%s: smart I/O ratio %v > 1", row[0], ratio)
		}
		if ratio < 0.1 {
			t.Errorf("%s: ratio %v implausibly low", row[0], ratio)
		}
	}
}

func TestFig5SingleMixShape(t *testing.T) {
	tables := Fig5(nil, []float64{16})
	rows := tables[0].Rows
	if len(rows) != len(Fig5Mixes) {
		t.Fatalf("fig5 rows = %d, want %d", len(rows), len(Fig5Mixes))
	}
	// At 16 MB, every mix must cut total I/Os meaningfully.
	for _, row := range rows {
		if r := parseF(t, row[7]); r > 0.95 {
			t.Errorf("mix %s: 16MB I/O ratio %v, want < 0.95", row[0], r)
		}
	}
}

func TestFig6SwappingMatters(t *testing.T) {
	tables := Fig6(nil, []float64{6.4})
	rows := tables[0].Rows
	if len(rows) != len(Fig6Mixes) {
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	// At the paper's default cache size ALLOC-LRU must do more I/O than
	// LRU-SP on every mix.
	for _, row := range rows {
		if r := parseF(t, row[7]); r < 1.0 {
			t.Errorf("mix %s: alloc-lru I/O ratio %v < 1 at 6.4MB", row[0], r)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(nil)[0].Rows
	if len(rows) != 12 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	byKey := map[string]int64{}
	for _, row := range rows {
		byKey[row[0]+"/"+row[1]] = parseI(t, row[4])
	}
	for _, n := range []string{"490", "500"} {
		obl, unprot, prot := byKey["Oblivious/"+n], byKey["Unprotected/"+n], byKey["Protected/"+n]
		if unprot <= obl {
			t.Errorf("Read%s: unprotected (%d) not worse than oblivious (%d)", n, unprot, obl)
		}
		if prot >= unprot {
			t.Errorf("Read%s: protected (%d) not better than unprotected (%d)", n, prot, unprot)
		}
		// The paper's headline: placeholders pull the probe back to
		// (or below) the oblivious level.
		if float64(prot) > float64(obl)*1.1 {
			t.Errorf("Read%s: protected (%d) far above oblivious (%d)", n, prot, obl)
		}
	}
}

func TestTable2FoolishHurts(t *testing.T) {
	rows := Table2(nil)[0].Rows
	if len(rows) != 8 {
		t.Fatalf("table2 rows = %d", len(rows))
	}
	// Rows 0-3 oblivious, 4-7 foolish, same partner order: the foolish
	// Read300 must slow every partner.
	for i := 0; i < 4; i++ {
		obl := parseF(t, rows[i][2])
		foolish := parseF(t, rows[i+4][2])
		if foolish <= obl {
			t.Errorf("%s: foolish partner elapsed %v not worse than oblivious %v",
				rows[i][0], foolish, obl)
		}
	}
}

func TestTable3SmartDoesNotHurt(t *testing.T) {
	rows := Table3(nil)[0].Rows
	for _, row := range rows {
		obl, smart := parseF(t, row[1]), parseF(t, row[3])
		// Smart partners must not slow Read300 by more than a sliver
		// (the paper's criterion; on one disk they generally help).
		if smart > obl*1.1 {
			t.Errorf("%s: Read300 %vs with smart partner vs %vs oblivious", row[0], smart, obl)
		}
	}
}

func TestTable4TwoDisksCalm(t *testing.T) {
	rows := Table4(nil)[0].Rows
	for _, row := range rows {
		obl, smart := parseF(t, row[1]), parseF(t, row[3])
		if smart > obl*1.1 {
			t.Errorf("%s: two-disk Read300 %vs with smart partner vs %vs", row[0], smart, obl)
		}
		// With its own disk, Read300 must be much faster than the
		// one-disk runs of Table 3 (paper: ~20s vs 60-88s).
		if obl > 60 {
			t.Errorf("%s: two-disk Read300 took %vs, contention not removed", row[0], obl)
		}
	}
}

var ablationOnce []Table

func ablationTables(t *testing.T) []Table {
	t.Helper()
	if ablationOnce == nil {
		ablationOnce = Ablation(nil)
	}
	return ablationOnce
}

func TestAblationRevocation(t *testing.T) {
	tables := ablationTables(t)
	if len(tables) != 5 {
		t.Fatalf("ablation returned %d tables", len(tables))
	}
	rev := tables[0]
	last := rev.Rows[len(rev.Rows)-1]
	if last[4] != "1" {
		t.Errorf("revocation row reports %s revocations, want 1", last[4])
	}
	// With revocation, the foolish process's self-damage shrinks vs
	// plain LRU-SP (row before it).
	plain := parseI(t, rev.Rows[3][3])
	revoked := parseI(t, last[3])
	if revoked >= plain {
		t.Errorf("revocation did not reduce foolish I/Os: %d vs %d", revoked, plain)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:     "t",
		Title:  "Test table",
		Note:   strings.Repeat("word ", 40),
		Header: []string{"name", "value"},
		Rows:   [][]string{{"alpha", "1"}, {"b", "22"}},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== t: Test table ==", "alpha", "22", "name", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The note must be wrapped, not one huge line.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 100 {
			t.Errorf("overlong line: %q", line)
		}
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	for _, id := range Order {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("Order lists %q but Experiments lacks it", id)
		}
	}
	// Experiments may carry entries deliberately kept out of the `-run
	// all` sweep (the policy tournament); each must still be reachable
	// by name.
	offOrder := map[string]bool{"tournament": true}
	inOrder := make(map[string]bool, len(Order))
	for _, id := range Order {
		inOrder[id] = true
	}
	for id := range Experiments {
		if !inOrder[id] && !offOrder[id] {
			t.Errorf("Experiments has %q, absent from both Order and the off-Order list", id)
		}
	}
}

func TestSizeIdx(t *testing.T) {
	if sizeIdx(6.4) != 0 || sizeIdx(16) != 3 || sizeIdx(7) != -1 {
		t.Error("sizeIdx wrong")
	}
}

func TestPaperDataSane(t *testing.T) {
	for app, p := range PaperSingles {
		for i := range Sizes {
			if p.IOsSP[i] > p.IOsOrig[i]+p.IOsOrig[i]/100 {
				t.Errorf("%s: paper says smart did more I/O at %v MB?", app, Sizes[i])
			}
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func parseI(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("bad int %q: %v", s, err)
	}
	return v
}

func TestRunRepeatedVariance(t *testing.T) {
	st := RunRepeated(nil, RunSpec{
		Apps:    mixSpec([]string{"cs1"}, workload.Smart),
		CacheMB: 6.4, Alloc: cache.LRUSP,
	}, 5)
	if st.Repeats != 5 || st.MeanElapsed <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The paper reports variances under 2% with few exceptions under 5%;
	// our only stochastic input is rotational latency, so we must be at
	// least as tight.
	if st.VarianceFrac > 0.05 {
		t.Errorf("variance %.1f%% exceeds the paper's bound", 100*st.VarianceFrac)
	}
	if st.TotalIOs <= 0 {
		t.Error("no I/Os")
	}
}

func TestPoliciesTable(t *testing.T) {
	tables := Policies(nil, []float64{6.4})
	rows := tables[0].Rows
	if len(rows) != len(singleApps) {
		t.Fatalf("policies rows = %d", len(rows))
	}
	for _, row := range rows {
		lru, mru := parseI(t, row[4]), parseI(t, row[5])
		lru2, opt := parseI(t, row[6]), parseI(t, row[7])
		unique := parseI(t, row[3])
		if opt > lru || opt > mru || opt > lru2 {
			t.Errorf("%s: OPT (%d) not optimal vs LRU %d / MRU %d / LRU-2 %d",
				row[0], opt, lru, mru, lru2)
		}
		if opt < unique {
			t.Errorf("%s: OPT misses %d below compulsory %d", row[0], opt, unique)
		}
	}
	// The cyclic apps must show MRU at (or essentially at) the optimum.
	for _, row := range rows {
		if row[0] == "din" || row[0] == "cs1" {
			mru, opt := parseI(t, row[5]), parseI(t, row[7])
			if mru != opt {
				t.Errorf("%s: MRU misses %d != OPT %d on a pure cycle", row[0], mru, opt)
			}
		}
		// LRU-2's scan resistance: never catastrophically worse than LRU
		// on these streams, and better on the hot/cold join.
		if row[0] == "pjn" {
			lru, lru2 := parseI(t, row[4]), parseI(t, row[6])
			if lru2 >= lru {
				t.Errorf("pjn: LRU-2 (%d) not better than LRU (%d) on hot/cold", lru2, lru)
			}
		}
	}
}

func TestVMTable(t *testing.T) {
	tables := VM(nil)
	rows := tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("vm rows = %d", len(rows))
	}
	// Smart manager beats the plain clock.
	if plain, smart := parseI(t, rows[0][2]), parseI(t, rows[1][2]); smart >= plain {
		t.Errorf("smart VM manager (%d faults) not better than clock (%d)", smart, plain)
	}
	// Placeholders protect the neighbour (faults B column).
	if without, with := parseI(t, rows[2][3]), parseI(t, rows[3][3]); with*2 > without {
		t.Errorf("VM placeholders ineffective: %d vs %d", with, without)
	}
}

func TestUpcallOverheadBand(t *testing.T) {
	tables := ablationTables(t)
	uc := tables[4]
	for i := 1; i < len(uc.Rows); i += 2 {
		var pct float64
		if _, err := fmt.Sscanf(uc.Rows[i][4], "+%f%%", &pct); err != nil {
			t.Fatalf("bad overhead cell %q", uc.Rows[i][4])
		}
		// The paper's related work reports up to 10%; our 1 ms-per-
		// consultation model must land in a positive single-digit band.
		if pct <= 0 || pct > 12 {
			t.Errorf("%s: upcall overhead %.1f%% outside (0, 12]", uc.Rows[i][0], pct)
		}
	}
}

func TestVarianceTableBounds(t *testing.T) {
	tables := ablationTables(t)
	vr := tables[2]
	up := tables[3]
	// Spread sync must cut the peak queue under either scheduler.
	if b, s := parseI(t, up.Rows[0][4]), parseI(t, up.Rows[1][4]); s >= b {
		t.Errorf("fifo: spread sync max queue %d not below burst's %d", s, b)
	}
	if b, s := parseI(t, up.Rows[2][4]), parseI(t, up.Rows[3][4]); s >= b {
		t.Errorf("c-look: spread sync max queue %d not below burst's %d", s, b)
	}
	// The elevator must beat FIFO for the latency probe.
	if fifo, clook := parseF(t, up.Rows[0][2]), parseF(t, up.Rows[2][2]); clook >= fifo {
		t.Errorf("c-look probe %vs not below fifo's %vs", clook, fifo)
	}
	for _, row := range vr.Rows {
		var pct float64
		if _, err := fmt.Sscanf(row[3], "%f%%", &pct); err != nil {
			t.Fatalf("bad deviation cell %q", row[3])
		}
		if pct > 2.0 {
			t.Errorf("%s/%s: deviation %.2f%% exceeds the paper's 2%% bound", row[0], row[1], pct)
		}
	}
}

func TestChartRendering(t *testing.T) {
	c := Chart{
		ID:    "t",
		Title: "test",
		Rows: []ChartRow{
			{Label: "a", Value: 0.5},
			{Label: "bb", Value: 1.0},
			{Label: "ccc", Value: 1.5},
		},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"-- t: test --", "0.50", "1.50", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("chart has %d lines, want 4", len(lines))
	}
	// The longer bar must have more fill.
	if strings.Count(lines[1], "#") >= strings.Count(lines[3], "#") {
		t.Error("bars not proportional")
	}
}

func TestChartFromTable(t *testing.T) {
	tbl := Table{
		Rows: [][]string{
			{"app", "6.4", "x", "y", "0.50"},
			{"app", "8", "x", "y", "not-a-number"},
		},
	}
	c := ChartFromTable(tbl, "id", "title", []int{0, 1}, 4)
	if len(c.Rows) != 1 {
		t.Fatalf("chart rows = %d, want 1 (bad value skipped)", len(c.Rows))
	}
	if c.Rows[0].Label != "app @6.4" || c.Rows[0].Value != 0.5 {
		t.Errorf("row = %+v", c.Rows[0])
	}
}

func TestChartsShape(t *testing.T) {
	charts := Charts(nil, []float64{6.4})
	if len(charts) != 5 {
		t.Fatalf("Charts returned %d charts", len(charts))
	}
	for _, c := range charts {
		if len(c.Rows) == 0 {
			t.Errorf("%s: empty chart", c.ID)
		}
		for _, r := range c.Rows {
			if r.Value <= 0 || r.Value > 2 {
				t.Errorf("%s %s: ratio %v out of plausible range", c.ID, r.Label, r.Value)
			}
		}
	}
}
