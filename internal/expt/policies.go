package expt

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// captureSpec is the one-app traced run CaptureTrace performs. The Trace
// callback makes it uncacheable by design: the per-access events escape
// through the callback, which would never fire again on a memo hit.
func captureSpec(app string, tr *trace.Trace) RunSpec {
	return RunSpec{
		Apps:    mixSpec([]string{app}, workload.Oblivious),
		CacheMB: 6.4,
		Alloc:   cache.GlobalLRU,
		Trace: func(ev core.TraceEvent) {
			tr.Append(ev.File, ev.Block)
		},
	}
}

// CaptureTrace runs one application alone (oblivious, original kernel) and
// returns its block reference stream.
func CaptureTrace(app string) *trace.Trace {
	tr := &trace.Trace{}
	Run(captureSpec(app, tr))
	return tr
}

// Policies replays every workload's own reference stream through
// standalone LRU, MRU and Belady-optimal caches at the paper's cache
// sizes. The capture runs are independent, so they go through the Runner
// (the trace replays themselves are cheap and stay inline). The companion
// paper argues application policies should approximate optimal
// replacement; this table shows how much headroom OPT leaves over LRU for
// each access pattern, and how close the simple MRU policy already comes
// for the cyclic ones.
func Policies(r *Runner, sizes []float64) []Table {
	if sizes == nil {
		sizes = []float64{6.4, 16}
	}
	t := Table{
		ID:    "policies",
		Title: "Single-process replacement policies on each workload's reference stream",
		Note: "Misses from replaying the captured stream through standalone " +
			"caches (no two-level protocol, no read-ahead): the headroom " +
			"between LRU and OPT is what application control is after; MRU " +
			"vs OPT shows how close the paper's simple policy gets on cyclic " +
			"patterns; LRU-2 (O'Neil, cited by the paper for database " +
			"buffering) is the scan-resistant automatic alternative.",
		Header: []string{"app", "MB", "refs", "unique", "LRU miss", "MRU miss", "LRU-2 miss", "OPT miss", "LRU/OPT"},
	}
	traces := make([]*trace.Trace, len(singleApps))
	futs := make([]*Future, len(singleApps))
	for i, app := range singleApps {
		traces[i] = &trace.Trace{}
		futs[i] = r.Submit(captureSpec(app, traces[i]))
	}
	for i, app := range singleApps {
		futs[i].Wait() // the capture run fully populates traces[i]
		tr := traces[i]
		for _, mb := range sizes {
			capacity := core.Config{CacheBytes: core.MB(mb)}.CacheBlocks()
			res := trace.Compare(tr.Refs, capacity)
			lru, mru, lru2, opt := res[0], res[1], res[2], res[3]
			ratio := "inf"
			if opt.Misses > 0 {
				ratio = fmtRatio(float64(lru.Misses) / float64(opt.Misses))
			}
			t.Rows = append(t.Rows, []string{
				app, fmt.Sprint(mb),
				fmt.Sprint(tr.Len()), fmt.Sprint(tr.Unique()),
				fmt.Sprint(lru.Misses), fmt.Sprint(mru.Misses),
				fmt.Sprint(lru2.Misses), fmt.Sprint(opt.Misses),
				ratio,
			})
		}
	}
	return []Table{t}
}
