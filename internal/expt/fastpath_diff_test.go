package expt

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/workload"
)

// diffSpecs are the replayed runs of the fast-path differential test: a
// Figure 4 single-application sweep point (one process owns the clock,
// the fast path's best case) and a Table 2 multi-application mix (two
// processes contending for CPU and disk, its worst case).
func diffSpecs() map[string]RunSpec {
	return map[string]RunSpec{
		"fig4-cs2-smart": {
			Apps:    mixSpec([]string{"cs2"}, workload.Smart),
			CacheMB: 6.4,
			Alloc:   cache.LRUSP,
		},
		"table2-gli+foolish-read300": {
			Apps: []AppSpec{
				{Name: "gli", Make: Registry["gli"], Mode: workload.Smart},
				namedApp("read300@d0", func() workload.App { return workload.Read300(0) }, workload.Foolish),
			},
			CacheMB: 6.4,
			Alloc:   cache.LRUSP,
		},
	}
}

// TestFastPathDifferential replays the same runs with the engine's
// lookahead fast path on and off and asserts the simulations are
// observationally identical: per-process block I/O counts, per-process
// end times, full per-process stats, totals, cache counters and disk
// queue depths. Only the engine's own counters may differ.
func TestFastPathDifferential(t *testing.T) {
	for name, spec := range diffSpecs() {
		t.Run(name, func(t *testing.T) {
			fastSpec := spec
			fast := Run(fastSpec)
			slowSpec := spec
			slowSpec.Opts.NoFastPath = true
			slow := Run(slowSpec)

			if fast.Sim.FastAdvances == 0 {
				t.Error("fast engine took zero fast advances (fast path never fired)")
			}
			if slow.Sim.FastAdvances != 0 {
				t.Errorf("parked engine took %d fast advances, want 0", slow.Sim.FastAdvances)
			}
			if fast.Sim.Handoffs >= slow.Sim.Handoffs {
				t.Errorf("fast engine handoffs = %d, want fewer than parked %d",
					fast.Sim.Handoffs, slow.Sim.Handoffs)
			}

			// Everything observable must match exactly; the Sim counter
			// block is the only field allowed to differ.
			fast.Sim, slow.Sim = sim.Stats{}, sim.Stats{}
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("results diverge\nfast:   %+v\nparked: %+v", fast, slow)
			}
			for i := range fast.PerApp {
				f, s := fast.PerApp[i], slow.PerApp[i]
				if f.BlockIOs != s.BlockIOs {
					t.Errorf("%s: BlockIOs %d vs %d", f.Name, f.BlockIOs, s.BlockIOs)
				}
				if f.Elapsed != s.Elapsed {
					t.Errorf("%s: end time %v vs %v", f.Name, f.Elapsed, s.Elapsed)
				}
			}
		})
	}
}

// TestFastPathFingerprintDistinct keeps the memo cache honest: a spec
// with the fast path disabled must never be served a fast-path result
// (the runs are equivalent, but conflating them would let the cache
// quietly bypass the differential check above).
func TestFastPathFingerprintDistinct(t *testing.T) {
	spec := RunSpec{Apps: mixSpec([]string{"cs1"}, workload.Smart), CacheMB: 6.4}
	kOn, ok1 := fingerprint(spec)
	spec.Opts.NoFastPath = true
	kOff, ok2 := fingerprint(spec)
	if !ok1 || !ok2 {
		t.Fatal("specs unexpectedly uncacheable")
	}
	if kOn == kOff {
		t.Error("fast-path-on and -off specs share a fingerprint")
	}
}
