package expt

// The paper's published measurements (appendix Tables 5 and 6, and
// Tables 1-4 of Section 6), used to print side-by-side comparisons.
// Indexing for per-size arrays follows Sizes: 6.4, 8, 12, 16 MB.

// paperSingle holds one application's appendix rows.
type paperSingle struct {
	ElapsedOrig [4]float64
	ElapsedSP   [4]float64
	IOsOrig     [4]int64
	IOsSP       [4]int64
}

// PaperSingles is the appendix data (Tables 5 and 6).
var PaperSingles = map[string]paperSingle{
	"din": {
		ElapsedOrig: [4]float64{117, 99, 99, 99},
		ElapsedSP:   [4]float64{106, 99, 100, 100},
		IOsOrig:     [4]int64{8888, 998, 997, 998},
		IOsSP:       [4]int64{2573, 1003, 997, 997},
	},
	"cs1": {
		ElapsedOrig: [4]float64{62, 61, 28, 28},
		ElapsedSP:   [4]float64{38, 33, 27, 28},
		IOsOrig:     [4]int64{8634, 8630, 1141, 1141},
		IOsSP:       [4]int64{3066, 1628, 1141, 1141},
	},
	"cs3": {
		ElapsedOrig: [4]float64{96, 96, 57, 47},
		ElapsedSP:   [4]float64{79, 71, 50, 48},
		IOsOrig:     [4]int64{6575, 6571, 2815, 1728},
		IOsSP:       [4]int64{4394, 3548, 1903, 1733},
	},
	"cs2": {
		ElapsedOrig: [4]float64{191, 190, 188, 184},
		ElapsedSP:   [4]float64{172, 168, 152, 128},
		IOsOrig:     [4]int64{11785, 11762, 11717, 11647},
		IOsSP:       [4]int64{9680, 9091, 7650, 5597},
	},
	"gli": {
		ElapsedOrig: [4]float64{126, 123, 113, 97},
		ElapsedSP:   [4]float64{114, 108, 92, 84},
		IOsOrig:     [4]int64{10435, 10321, 9720, 7508},
		IOsSP:       [4]int64{8870, 8308, 7120, 6275},
	},
	"ldk": {
		ElapsedOrig: [4]float64{66, 65, 65, 65},
		ElapsedSP:   [4]float64{66, 64, 60, 56},
		IOsOrig:     [4]int64{5395, 5389, 5397, 5390},
		IOsSP:       [4]int64{5011, 4760, 4385, 3898},
	},
	"pjn": {
		ElapsedOrig: [4]float64{225, 220, 202, 187},
		ElapsedSP:   [4]float64{199, 192, 185, 174},
		IOsOrig:     [4]int64{7166, 6738, 5897, 5257},
		IOsSP:       [4]int64{5800, 5635, 5334, 4993},
	},
	"sort": {
		ElapsedOrig: [4]float64{339, 338, 339, 336},
		ElapsedSP:   [4]float64{294, 281, 256, 243},
		IOsOrig:     [4]int64{14670, 14671, 14639, 14520},
		IOsSP:       [4]int64{12462, 11884, 10400, 9460},
	},
}

// PaperTable1 is Section 6.1's placeholder experiment: elapsed seconds and
// block I/Os for Read390/400/490/500 under the three settings.
var PaperTable1 = struct {
	Ns       []int32
	Elapsed  map[string][4]float64
	BlockIOs map[string][4]int64
	Settings []string
}{
	Ns:       []int32{390, 400, 490, 500},
	Settings: []string{"Oblivious", "Unprotected", "Protected"},
	Elapsed: map[string][4]float64{
		"Oblivious":   {53, 58, 59, 72},
		"Unprotected": {73, 89, 76, 122},
		"Protected":   {75, 75, 72, 91},
	},
	BlockIOs: map[string][4]int64{
		"Oblivious":   {1172, 1181, 1176, 1481},
		"Unprotected": {1300, 1538, 1465, 2294},
		"Protected":   {1170, 1170, 1199, 1580},
	},
}

// PaperTable2 is the effect of a foolish Read300 on smart applications.
var PaperTable2 = struct {
	Partners []string
	Elapsed  map[string][4]float64 // by policy "Oblivious"/"Foolish"; index by partner order
	BlockIOs map[string][4]int64
}{
	Partners: []string{"din", "cs2", "gli", "ldk"},
	Elapsed: map[string][4]float64{
		"Oblivious": {155, 225, 156, 112},
		"Foolish":   {202, 339, 261, 208},
	},
	BlockIOs: map[string][4]int64{
		"Oblivious": {3067, 9760, 9086, 5201},
		"Foolish":   {3495, 10542, 9759, 5374},
	},
}

// PaperTable3 is Read300's elapsed time next to oblivious vs smart
// partners on one disk.
var PaperTable3 = struct {
	Partners []string
	Elapsed  map[string][4]float64
}{
	Partners: []string{"din", "cs2", "gli", "ldk"},
	Elapsed: map[string][4]float64{
		"Oblivious": {87, 88, 60, 78},
		"Smart":     {67, 83, 64, 76},
	},
}

// PaperTable4 is the two-disk variant of Table 3.
var PaperTable4 = struct {
	Partners []string
	Elapsed  map[string][4]float64
}{
	Partners: []string{"din", "cs2", "gli", "ldk"},
	Elapsed: map[string][4]float64{
		"Oblivious": {20, 18, 19, 17},
		"Smart":     {20, 17.5, 18, 17},
	},
}

// Fig5Mixes are the paper's nine concurrent-application combinations.
var Fig5Mixes = [][]string{
	{"cs2", "gli"},
	{"cs3", "ldk"},
	{"gli", "sort"},
	{"din", "sort"},
	{"sort", "ldk"},
	{"pjn", "ldk"},
	{"din", "cs2", "ldk"},
	{"cs1", "gli", "ldk"},
	{"din", "cs3", "gli", "ldk"},
}

// Fig6Mixes are the combinations re-run under ALLOC-LRU in Section 6.1.
var Fig6Mixes = [][]string{
	{"cs2", "gli"},
	{"cs3", "ldk"},
	{"din", "cs2", "ldk"},
	{"cs1", "gli", "ldk"},
	{"din", "cs3", "gli", "ldk"},
}
