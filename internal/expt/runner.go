package expt

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Runner schedules RunSpec executions across a pool of workers and
// memoizes results. Every simulated machine is a deterministic pure
// function of its RunSpec and runs on goroutines of its own, so
// independent specs are embarrassingly parallel; the Runner exploits that
// while drivers keep consuming results in their original, deterministic
// order, which keeps rendered tables byte-identical to the serial path.
//
// Specs shared between experiments (the oblivious baselines reused for
// normalization, the LRU-SP runs common to Figure 5 and Figure 6, ...)
// execute exactly once per Runner: results are cached under a canonical
// fingerprint of the spec. Specs that cannot be fingerprinted — a non-nil
// Trace callback, whose results escape through a side channel, or an
// AppSpec without a Name, whose constructor closure is opaque — bypass
// the cache and always execute.
//
// A nil *Runner is valid everywhere a Runner is accepted: it runs every
// spec inline, serially, with no cache — the legacy behavior.
type Runner struct {
	parallelism int
	base        Options // merged into every submitted spec
	sem         chan struct{}

	mu     sync.Mutex
	cache  map[string]*Future
	stats  RunnerStats
	kernel stats.Snapshot // aggregated over every executed simulation
}

// RunnerStats counts scheduler activity. Executed is the number of
// simulations actually run; Hits is the number of submissions served from
// the memo cache; Misses counts cacheable submissions that had to run;
// Bypasses counts uncacheable submissions (traced runs, unnamed apps).
// Executed == Misses + Bypasses.
type RunnerStats struct {
	Executed int64 `json:"executed"`
	Hits     int64 `json:"cache_hits"`
	Misses   int64 `json:"cache_misses"`
	Bypasses int64 `json:"cache_bypasses"`
}

// NewRunner returns a scheduler running up to parallelism simulations
// concurrently. Parallelism <= 0 selects GOMAXPROCS; 1 selects the legacy
// serial path (specs run inline on the consuming goroutine, still
// memoized). An optional Options value applies to every spec submitted
// to this Runner (merged per Options.merge, spec fields taking
// precedence): the suite-wide knobs that used to be a package global.
func NewRunner(parallelism int, opts ...Options) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		parallelism: parallelism,
		cache:       make(map[string]*Future),
	}
	for _, o := range opts {
		r.base = r.base.merge(o)
	}
	if parallelism > 1 {
		r.sem = make(chan struct{}, parallelism)
	}
	return r
}

// Options reports the base Options this Runner merges into every
// submitted spec.
func (r *Runner) Options() Options {
	if r == nil {
		return Options{}
	}
	return r.base
}

// Parallelism reports the worker-pool width (1 for the serial path and
// for a nil Runner).
func (r *Runner) Parallelism() int {
	if r == nil {
		return 1
	}
	return r.parallelism
}

// Stats returns a snapshot of the scheduler counters.
func (r *Runner) Stats() RunnerStats {
	if r == nil {
		return RunnerStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// SimStats returns the DES engine counters aggregated over every
// simulation this Runner executed (cache hits contribute once, when they
// actually ran). Counter fields sum; HeapHighWater is the max over runs.
func (r *Runner) SimStats() sim.Stats {
	return r.KernelSnapshot().Sim
}

// KernelSnapshot returns the full kernel counters — buffer cache plus
// DES engine — aggregated over every simulation this Runner executed.
// It is the same stats.Snapshot schema the acfcd daemon's /metrics
// endpoint exposes, so acbench -json and the server report identically
// named counters.
func (r *Runner) KernelSnapshot() stats.Snapshot {
	if r == nil {
		return stats.Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kernel
}

// Future is a pending (or completed) RunResult.
type Future struct {
	spec RunSpec
	once sync.Once
	done chan struct{}
	res  RunResult
}

func (f *Future) run(r *Runner) {
	f.once.Do(func() {
		f.res = Run(f.spec)
		if r != nil {
			r.mu.Lock()
			r.stats.Executed++
			r.kernel.Accumulate(stats.Snapshot{Cache: f.res.CacheStats, Sim: f.res.Sim})
			r.mu.Unlock()
		}
		close(f.done)
	})
}

// Wait blocks until the result is available and returns it. On a serial
// Runner the simulation executes inline on the calling goroutine, which
// reproduces the legacy one-at-a-time execution order exactly.
func (f *Future) Wait() RunResult {
	<-f.done
	return f.res
}

// Submit schedules spec for execution and returns its Future. The
// Runner's base Options merge into the spec first, so the memo key and
// the execution both see the effective option set. Cacheable specs
// already submitted to this Runner return the existing Future, so the
// simulation runs at most once. On a nil Runner the spec executes
// immediately, inline, with no base Options.
func (r *Runner) Submit(spec RunSpec) *Future {
	if r == nil {
		f := &Future{spec: spec, done: make(chan struct{})}
		f.res = Run(spec)
		close(f.done)
		return f
	}
	spec.Opts = spec.Opts.merge(r.base)
	key, cacheable := fingerprint(spec)
	r.mu.Lock()
	if cacheable {
		if f, ok := r.cache[key]; ok {
			r.stats.Hits++
			r.mu.Unlock()
			return f
		}
		r.stats.Misses++
	} else {
		r.stats.Bypasses++
	}
	f := &Future{spec: spec, done: make(chan struct{})}
	if cacheable {
		r.cache[key] = f
	}
	r.mu.Unlock()
	if r.sem != nil {
		go func() {
			r.sem <- struct{}{}
			f.run(r)
			<-r.sem
		}()
	} else {
		// Serial path: execute now, on the submitting goroutine, so
		// scheduling stays exactly the legacy depth-first order.
		f.run(r)
	}
	return f
}

// RunVia is Submit followed by Wait: the drop-in replacement for Run at
// call sites that need the result immediately.
func (r *Runner) RunVia(spec RunSpec) RunResult {
	return r.Submit(spec).Wait()
}

// defaultSeed is what core substitutes when RunSpec.Seed is zero; the
// fingerprint normalizes Seed through it so "unset" and "explicitly the
// default" memoize to the same run.
var defaultSeed = core.DefaultConfig().Seed

// fingerprint derives the canonical cache key for a spec. The boolean
// reports cacheability: a spec with a Trace callback leaks per-access
// events to the caller (the callback would not fire again on a cache
// hit), and an AppSpec with an empty Name gives no way to identify what
// its Make closure builds, so both bypass the cache. Every other RunSpec
// field participates in the key — two specs that could ever produce
// different results must never collide.
func fingerprint(spec RunSpec) (string, bool) {
	if spec.Trace != nil || spec.TraceCtl != nil {
		return "", false
	}
	var b strings.Builder
	for _, a := range spec.Apps {
		if a.Name == "" {
			return "", false
		}
		fmt.Fprintf(&b, "%s/%d;", a.Name, a.Mode)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	fmt.Fprintf(&b, "|mb=%g|alloc=%s|seed=%d|rev=%t/%d/%g|raoff=%t|rad=%d|ss=%t|up=%d|fifo=%t|nofast=%t",
		spec.CacheMB, spec.Alloc.String(), seed,
		spec.Revoke.Enabled, spec.Revoke.MinDecisions, spec.Revoke.MistakeRatio,
		spec.Opts.ReadAheadOff, spec.Opts.ReadAheadDepth, spec.SpreadSync, spec.UpcallCPU, spec.FIFODisk,
		spec.Opts.NoFastPath)
	return b.String(), true
}
