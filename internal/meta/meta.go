// Package meta implements the separate metadata (inode) cache that Ultrix
// kept apart from the data buffer cache. The paper deliberately excludes
// metadata blocks from its block-I/O counts ("our current implementation
// ignores metadata blocks like inodes, partly because there is a separate
// caching scheme for them inside the file system") and lists metadata
// caching as future work; this reproduction models that separate scheme so
// applications that open many small files pay realistic inode traffic,
// accounted apart from the paper's metric.
//
// The cache is a fixed-size LRU of in-core inodes keyed by file id, like
// the BSD ninode table.
package meta

import "repro/internal/fs"

// entry is one in-core inode.
type entry struct {
	id         fs.FileID
	prev, next *entry
}

// Stats counts inode-cache traffic.
type Stats struct {
	Lookups int64
	Hits    int64
	Misses  int64
}

// HitRatio reports hits per lookup.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is the in-core inode table.
type Cache struct {
	capacity   int
	table      map[fs.FileID]*entry
	head, tail *entry // head side = LRU
	stats      Stats
}

// New builds an inode cache holding capacity entries.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("meta: non-positive capacity")
	}
	c := &Cache{
		capacity: capacity,
		table:    make(map[fs.FileID]*entry, capacity),
		head:     &entry{},
		tail:     &entry{},
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

// Len returns the number of cached inodes.
func (c *Cache) Len() int { return len(c.table) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache) pushMRU(e *entry) {
	e.prev = c.tail.prev
	e.next = c.tail
	e.prev.next = e
	c.tail.prev = e
}

// Lookup checks for file's inode, inserting it on a miss (evicting the
// least recently used inode when full) and reports whether it was a hit.
// The caller performs the inode disk read on a miss.
func (c *Cache) Lookup(id fs.FileID) bool {
	c.stats.Lookups++
	if e, ok := c.table[id]; ok {
		c.stats.Hits++
		c.unlink(e)
		c.pushMRU(e)
		return true
	}
	c.stats.Misses++
	c.insert(id)
	return false
}

// Prime inserts file's inode without counting a lookup (a freshly created
// file's inode is in core by construction).
func (c *Cache) Prime(id fs.FileID) {
	if _, ok := c.table[id]; ok {
		return
	}
	c.insert(id)
}

func (c *Cache) insert(id fs.FileID) {
	if len(c.table) >= c.capacity {
		victim := c.head.next
		c.unlink(victim)
		delete(c.table, victim.id)
	}
	e := &entry{id: id}
	c.table[id] = e
	c.pushMRU(e)
}

// Invalidate drops file's inode (file removal).
func (c *Cache) Invalidate(id fs.FileID) {
	if e, ok := c.table[id]; ok {
		c.unlink(e)
		delete(c.table, id)
	}
}
