package meta

import (
	"testing"
	"testing/quick"

	"repro/internal/fs"
	"repro/internal/sim"
)

func TestLookupMissThenHit(t *testing.T) {
	c := New(4)
	if c.Lookup(1) {
		t.Error("first lookup hit")
	}
	if !c.Lookup(1) {
		t.Error("second lookup missed")
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Errorf("HitRatio = %v", st.HitRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for id := fs.FileID(1); id <= 3; id++ {
		c.Lookup(id)
	}
	c.Lookup(1) // refresh 1
	c.Lookup(4) // evicts 2
	if !c.Lookup(1) || !c.Lookup(3) || !c.Lookup(4) {
		t.Error("survivors missing")
	}
	if c.Lookup(2) {
		t.Error("LRU entry 2 survived")
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestPrimeAndInvalidate(t *testing.T) {
	c := New(4)
	c.Prime(7)
	c.Prime(7) // idempotent
	if !c.Lookup(7) {
		t.Error("primed inode missed")
	}
	if c.Stats().Lookups != 1 {
		t.Errorf("Prime counted as lookup: %+v", c.Stats())
	}
	c.Invalidate(7)
	c.Invalidate(7) // idempotent
	if c.Lookup(7) {
		t.Error("invalidated inode hit")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(0)
}

func TestEmptyHitRatio(t *testing.T) {
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio not 0")
	}
}

// Property: the cache never exceeds capacity and hits+misses = lookups.
func TestQuickBounds(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := 1 + int(capRaw)%16
		c := New(capacity)
		rng := sim.NewRand(seed)
		for i := 0; i < 2000; i++ {
			switch rng.Intn(10) {
			case 0:
				c.Prime(fs.FileID(rng.Intn(40)))
			case 1:
				c.Invalidate(fs.FileID(rng.Intn(40)))
			default:
				c.Lookup(fs.FileID(rng.Intn(40)))
			}
			if c.Len() > capacity {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: meta cache behaves exactly like an LRU set — verified against
// a slow reference model.
func TestQuickMatchesReferenceLRU(t *testing.T) {
	f := func(seed uint64) bool {
		const capacity = 5
		c := New(capacity)
		var ref []fs.FileID // slice-based LRU, head = LRU
		refLookup := func(id fs.FileID) bool {
			for i, v := range ref {
				if v == id {
					ref = append(append(append([]fs.FileID{}, ref[:i]...), ref[i+1:]...), id)
					return true
				}
			}
			if len(ref) >= capacity {
				ref = ref[1:]
			}
			ref = append(ref, id)
			return false
		}
		rng := sim.NewRand(seed)
		for i := 0; i < 1500; i++ {
			id := fs.FileID(rng.Intn(12))
			if c.Lookup(id) != refLookup(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
