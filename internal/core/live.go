// live.go — the real-clock kernel behind the acfcd daemon.
//
// The DES System in this package models a machine: disk arms, a CPU, and
// virtual time. A cache *server* needs the same kernel — the same buffer
// cache, the same ACM, the same fbehavior surface and the same per-owner
// accounting — but driven by real requests against a real block store
// (disk.Store), with no simulated costs. Live is that kernel.
//
// Concurrency contract: Live is single-threaded by design. Exactly one
// goroutine (the server's kernel loop) may call its methods; block fills
// are the only concurrent work, and they re-enter through CompleteFill on
// that same goroutine. This mirrors the paper's kernel, where the buffer
// cache is protected by the monolithic-kernel lock, and it is why the
// cache and ACM structures — written for the one-runnable-process DES —
// can be reused unchanged.
//
// Accounting parity: Read and Write mirror Proc.Access / Proc.WriteAccess
// counter for counter (ReadCalls, Hits, Misses, DemandReads, WriteBacks,
// ...), with read-ahead off and metadata modelling off. A workload
// replayed through Live therefore produces byte-identical ProcStats and
// cache.Stats to a DES run of the same access sequence — the server
// oracle test holds the two implementations to that.

package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Errors returned by Live for client mistakes. The DES kernel panics on
// these (a simulated workload that reads past EOF is a bug in the
// experiment); a server must survive them.
var (
	ErrUnknownOwner = errors.New("core: unknown or released owner")
	ErrNoControl    = errors.New("core: owner has not enabled control")
	ErrControlled   = errors.New("core: owner already controls its cache")
	ErrNotFound     = errors.New("core: no such file")
	ErrOutOfRange   = errors.New("core: block out of range")
	// ErrWriteBack wraps a store write failure during victim write-back.
	// The kernel never panics on one: the failure is counted, the block
	// leaves the cache, and the request (or release) that forced the
	// eviction carries the error back to its session.
	ErrWriteBack = errors.New("core: write-back failed")
)

// Fill is one in-flight block read — the kernel's miss-status-holding
// register. The kernel allocates it, the I/O executor
// (LiveConfig.StartFill) fills Data or Err, and hands it back to the
// kernel loop, which applies it via CompleteFill. Concurrent misses on
// the same block coalesce into one Fill through the waiter list: one
// store read regardless of fan-in.
type Fill struct {
	ID cache.BlockID
	// Data is the destination the executor reads the block into:
	// BlockSize bytes, backed by the buffer's cache slot — the store
	// read lands directly in the arena, no intermediate slice. A buffer
	// evicted mid-fill keeps its (leaked) slot, so Data stays valid for
	// the waiters either way.
	Data []byte
	Err  error // set by the executor on I/O failure

	buf      *cache.Buf
	done     bool
	prefetch bool // issued by read-ahead, no demand waiter yet
	waiters  []func(data []byte, err error)
}

// WriteBack is one dirty victim handed to the asynchronous write-behind
// queue. The kernel allocates it (Data is the victim's bytes, immutable
// from then on), the executor (LiveConfig.StartWriteBack) arranges for
// the store write and for CompleteWriteBack(wb) to re-enter the kernel
// goroutine with Err set on failure.
type WriteBack struct {
	ID    cache.BlockID
	Data  []byte
	Owner int   // owner to charge the WriteBacks counter to
	Err   error // set by the executor on store write failure

	// Conflict reports that an older write-back for the same block was
	// still pending when this one was enqueued. The executor must not
	// let this write reach the store before the older one (a reordering
	// would persist stale bytes); the kernel's pending table always
	// forwards the newest data, so queue-order execution is sufficient.
	Conflict bool
	// Stalled marks a write-back the executor degraded to a synchronous
	// inline write because its queue was full (the backpressure rule).
	Stalled bool

	// slot is the victim's detached cache slot backing Data, released to
	// the slot pool by CompleteWriteBack. nil for a write-back whose
	// bytes ride a leaked mid-fill slot instead (applyWrite's detached
	// path).
	slot *cache.Slot
}

// LiveConfig configures a Live kernel.
type LiveConfig struct {
	// CacheBytes sizes the buffer cache (default 6.4 MB, as in the DES).
	CacheBytes int64
	// Alloc is the global allocation policy.
	Alloc cache.Alloc
	// Revoke configures foolish-manager revocation.
	Revoke cache.RevokeConfig
	// SharedFiles makes cached-block ownership follow use across owners.
	SharedFiles bool
	// ACMLimits caps per-manager kernel resources.
	ACMLimits acm.Limits

	// DiskBlocks lists logical disk capacities for file placement
	// (default: the paper's RZ56 + RZ26 pair).
	DiskBlocks []int

	// Store holds block contents (default: an in-memory MemStore).
	Store disk.Store

	// StartFill, when non-nil, executes demand reads asynchronously: it
	// must arrange for fl.Data (or fl.Err) to be produced and for
	// CompleteFill(fl) to then be called on the kernel goroutine. Nil
	// means fills run synchronously inline — the mode the oracle test
	// and any single-threaded embedding use.
	StartFill func(fl *Fill)

	// StartFillBatch, when non-nil alongside StartFill, receives a whole
	// read-ahead run (same file, ascending blocks) in one call, letting
	// the executor retire it as a single vectored store read. Each fill
	// in the batch carries the usual contract: produce Data or Err, then
	// CompleteFill on the kernel goroutine. Nil means runs degrade to
	// per-fill StartFill calls — semantically identical, just one store
	// op per block.
	StartFillBatch func(fls []*Fill)

	// StartWriteBack, when non-nil, executes dirty-victim write-backs
	// asynchronously: it must arrange for the store write and for
	// CompleteWriteBack(wb) to then be called on the kernel goroutine.
	// Nil means write-backs run synchronously inline at eviction — with
	// a nil hook the kernel's request/IO ordering is byte-identical to
	// the pre-write-behind kernel, which is what the oracle test pins.
	StartWriteBack func(wb *WriteBack)

	// ReadAhead enables server-side sequential read-ahead: a demand read
	// that extends a per-owner sequential run prefetches the next
	// ReadAheadDepth blocks through the same fill path, so later demand
	// misses land on in-flight or completed prefetches. Off by default —
	// prefetch I/O is untraced, so deterministic replays must not see it.
	ReadAhead      bool
	ReadAheadDepth int // blocks kept in flight ahead of a run (default 2)

	// EvictOnRelease makes ReleaseOwner evict the owner's blocks
	// (writing back dirty ones) instead of disowning them in place.
	EvictOnRelease bool

	// WallClock stamps cache recency with real time instead of the
	// deterministic per-operation logical tick. The tick default keeps
	// replacement order a pure function of request order, which the
	// oracle test needs; a production daemon may prefer wall time so
	// that update-style flushing ages in seconds.
	WallClock bool

	// HitWindow sizes the windowed hit-ratio gauge: the hit ratio of the
	// last HitWindow cache accesses (reads and writes), refreshed each
	// time a window completes. The gauge feeds the per-shard
	// alloc_hit_ratio metric and the online policy adapter. Default 1024
	// accesses; the counter always runs (it is two integer adds per
	// access).
	HitWindow int
}

// DefaultHitWindow is the HitWindow applied when the config leaves it 0.
const DefaultHitWindow = 1024

func (c LiveConfig) cacheBlocks() int {
	bytes := c.CacheBytes
	if bytes <= 0 {
		bytes = MB(6.4)
	}
	n := int(bytes / BlockSize)
	if n <= 0 {
		n = 1
	}
	return n
}

// ShardConfig returns the configuration for shard i of an n-way sharded
// kernel: the total block budget is partitioned evenly across the shards
// (the remainder going to the low-numbered ones, so any two shards differ
// by at most one block) and everything else is copied unchanged. Each
// shard is a complete, independent Live — its own cache arena, ACM, and
// fill accounting — which is what makes sharding safe: LRU-SP runs
// whole within each shard's replacement domain. ShardConfig(0, 1) is the
// identity, so a 1-shard kernel is bit-for-bit the unsharded one.
func (c LiveConfig) ShardConfig(i, n int) LiveConfig {
	if n <= 1 {
		return c
	}
	total := c.cacheBlocks()
	mine := total / n
	if i < total%n {
		mine++
	}
	if mine <= 0 {
		mine = 1 // cacheBlocks clamps the same way for a tiny budget
	}
	c.CacheBytes = int64(mine) * BlockSize
	return c
}

// CacheBlocks reports the kernel's block capacity.
func (l *Live) CacheBlocks() int { return l.cfg.cacheBlocks() }

// CheckShardInvariants audits a sharded kernel set built from total via
// ShardConfig: every shard's own cross-structure invariants hold, and the
// shard capacities tile the total block budget — an even partition (±1
// block) whose sum is the unsharded capacity, except when the budget is
// smaller than the shard count and every shard is clamped to one block.
func CheckShardInvariants(kerns []*Live, total LiveConfig) {
	want := total.cacheBlocks()
	sum, min, max := 0, math.MaxInt, 0
	for _, k := range kerns {
		k.CheckInvariants()
		n := k.CacheBlocks()
		sum += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		panic(fmt.Sprintf("core: unbalanced shard capacities: min %d max %d", min, max))
	}
	if want >= len(kerns) && sum != want {
		panic(fmt.Sprintf("core: shard capacities sum to %d, want %d", sum, want))
	}
}

// liveOwner is one registered owner (a client session, in the daemon).
type liveOwner struct {
	name  string
	live  bool
	mgr   *acm.Manager
	stats ProcStats
	// lastRead is the per-file sequential-run detector for read-ahead,
	// per owner exactly as the DES keeps it per process.
	lastRead map[fs.FileID]int32
	// raUntil is the highest block already scheduled for read-ahead on
	// each sequential run: the leading edge of the prefetch window. The
	// window refills half-a-depth at a time so prefetches arrive as
	// multi-block runs the batch executor can vector, instead of the
	// one-block top-ups a per-read scheme degenerates to.
	raUntil map[fs.FileID]int32
}

// Live is the real-clock kernel: one buffer cache plus ACM, a file
// system namespace, and a block store, driven by explicit requests. Not
// safe for concurrent use — see the package comment's concurrency
// contract.
type Live struct {
	cfg   LiveConfig
	store disk.Store
	fsys  *fs.FileSystem
	bc    *cache.Cache
	ctl   *acm.ACM

	tick  sim.Time // logical clock: one tick per kernel operation
	epoch time.Time

	owners []*liveOwner
	// Block contents live in the cache's refcounted data slots
	// (cache.Config.SlotBytes = BlockSize): every cached buffer owns a
	// slot, dirty victims detach theirs for the write-back, and the
	// server pins slots to serve responses zero-copy. See cache/slot.go.
	//
	// mshr is the miss-status-holding-register table: the in-flight fill
	// per block. Concurrent requests for a mid-fill block join its
	// waiter list instead of issuing another store read. A buffer
	// evicted mid-fill detaches its entry (the fill stays in the
	// executor's hands — ValidAt remains IOPending, the same leak-to-GC
	// rule the DES uses — and completes into waiters only); a fresh miss
	// on that block starts a fresh fill, so a fill never outlives the
	// write-back ordering of its bytes.
	mshr map[cache.BlockID]*Fill
	// pendingWB is the newest queued-but-unwritten write-back per block.
	// A fill for a block found here copies the bytes instead of reading
	// the store — the queue holds fresher data than the store until the
	// flusher lands it.
	pendingWB map[cache.BlockID]*WriteBack
	// prefetched marks blocks brought in by read-ahead and not yet
	// touched by a demand access, for the PrefetchHits counter.
	prefetched map[cache.BlockID]bool

	fill          stats.FillStats
	wbOutstanding int64 // write-backs enqueued, not yet completed

	// Windowed hit-ratio gauge (see LiveConfig.HitWindow): winHits and
	// winAccesses accumulate the current window; when winAccesses reaches
	// the window size, the completed window's ratio is latched into
	// lastWindowBP (basis points) and the counters reset. windowsDone
	// lets the policy adapter detect window boundaries without its own
	// counting.
	winHits      int64
	winAccesses  int64
	lastWindowBP int64
	windowsDone  int64
}

// NewLive builds a Live kernel.
func NewLive(cfg LiveConfig) *Live {
	if cfg.Store == nil {
		cfg.Store = disk.NewMemStore()
	}
	if len(cfg.DiskBlocks) == 0 {
		cfg.DiskBlocks = []int{disk.RZ56.Blocks(), disk.RZ26.Blocks()}
	}
	l := &Live{
		cfg:        cfg,
		store:      cfg.Store,
		fsys:       fs.New(fs.Config{DiskBlocks: cfg.DiskBlocks}),
		epoch:      time.Now(),
		mshr:       make(map[cache.BlockID]*Fill),
		pendingWB:  make(map[cache.BlockID]*WriteBack),
		prefetched: make(map[cache.BlockID]bool),
	}
	l.ctl = acm.New(l.Now, cfg.ACMLimits)
	l.bc = cache.New(cache.Config{
		Capacity:       cfg.cacheBlocks(),
		Alloc:          cfg.Alloc,
		Revoke:         cfg.Revoke,
		SharedTransfer: cfg.SharedFiles,
		SlotBytes:      BlockSize,
	}, l.ctl)
	return l
}

// Now returns the kernel clock: wall microseconds since start, or the
// logical tick.
func (l *Live) Now() sim.Time {
	if l.cfg.WallClock {
		return sim.Time(time.Since(l.epoch) / time.Microsecond)
	}
	return l.tick
}

func (l *Live) advance() sim.Time {
	if !l.cfg.WallClock {
		l.tick++
	}
	return l.Now()
}

// FS exposes the file system namespace.
func (l *Live) FS() *fs.FileSystem { return l.fsys }

// Cache exposes the buffer cache (read-only introspection).
func (l *Live) Cache() *cache.Cache { return l.bc }

// Store exposes the block store, for the fill executor.
func (l *Live) Store() disk.Store { return l.store }

// PendingFills reports the number of in-flight block reads (demand and
// prefetch).
func (l *Live) PendingFills() int { return len(l.mshr) }

// PendingWriteBacks reports the number of write-backs handed to the
// asynchronous executor and not yet completed.
func (l *Live) PendingWriteBacks() int { return int(l.wbOutstanding) }

// Snapshot captures the kernel counters. Live has no DES engine, so the
// Sim block stays zero; Fill carries the miss/write-back pipeline.
func (l *Live) Snapshot() stats.Snapshot {
	return stats.Snapshot{Cache: l.bc.Stats(), Fill: l.fill}
}

// --- owner lifecycle ---

// AddOwner registers a new owner (one per client session) and returns
// its id. Ids are never reused: per-owner revocation history must not
// leak from a dead session to a new one.
func (l *Live) AddOwner(name string) int {
	id := len(l.owners)
	l.owners = append(l.owners, &liveOwner{name: name, live: true})
	return id
}

func (l *Live) owner(id int) (*liveOwner, error) {
	if id < 0 || id >= len(l.owners) || !l.owners[id].live {
		return nil, ErrUnknownOwner
	}
	return l.owners[id], nil
}

// OwnerStats snapshots an owner's counters (also valid after release).
func (l *Live) OwnerStats(id int) (ProcStats, error) {
	if id < 0 || id >= len(l.owners) {
		return ProcStats{}, ErrUnknownOwner
	}
	return l.owners[id].stats, nil
}

// ReleaseOwner ends an owner's session: its manager (if any) is
// destroyed, and its blocks are either evicted (dirty ones written back)
// or disowned in place, per LiveConfig.EvictOnRelease. This is the
// revoked-owner path of the cache exercised as a production operation —
// every client disconnect runs it. Returns the owner's final counters.
func (l *Live) ReleaseOwner(id int) (ProcStats, error) {
	o, err := l.owner(id)
	if err != nil {
		return ProcStats{}, err
	}
	if o.mgr != nil {
		l.ctl.DestroyManager(id)
		o.mgr = nil
	}
	if l.cfg.EvictOnRelease {
		var firstErr error
		l.bc.EvictOwner(id, func(v cache.Victim) {
			if werr := l.flushVictim(&v); werr != nil && firstErr == nil {
				firstErr = werr
			}
		})
		err = firstErr
	} else {
		l.bc.DisownOwner(id)
	}
	o.live = false
	return o.stats, err
}

func (l *Live) charge(owner int, f func(*ProcStats)) {
	if owner >= 0 && owner < len(l.owners) {
		f(&l.owners[owner].stats)
	}
}

// --- file management ---

// Create creates a file on disk d, initially sizeBlocks long.
func (l *Live) Create(owner int, name string, d, sizeBlocks int) (*fs.File, error) {
	if _, err := l.owner(owner); err != nil {
		return nil, err
	}
	if d < 0 || d >= l.fsys.Disks() {
		return nil, fmt.Errorf("core: no disk %d", d)
	}
	return l.fsys.Create(name, d, sizeBlocks)
}

// Open resolves a file by name and counts the open.
func (l *Live) Open(owner int, name string) (*fs.File, error) {
	o, err := l.owner(owner)
	if err != nil {
		return nil, err
	}
	f, ok := l.fsys.Lookup(name)
	if !ok {
		return nil, ErrNotFound
	}
	o.stats.Opens++
	return f, nil
}

// Remove unlinks a file; its cached blocks (dirty or not) are discarded
// without I/O, as for an unlinked temporary file.
func (l *Live) Remove(owner int, name string) error {
	if _, err := l.owner(owner); err != nil {
		return err
	}
	f, ok := l.fsys.Lookup(name)
	if !ok {
		return ErrNotFound
	}
	l.bc.InvalidateFile(f.ID())
	for id := range l.prefetched {
		if id.File == f.ID() {
			delete(l.prefetched, id)
		}
	}
	return l.fsys.Remove(name)
}

// --- the read/write surface ---

// ReadReply receives a completed Read. The server's hot path implements
// it with pooled descriptors so that a cache hit allocates nothing (a
// func-typed callback parameter would escape — and so heap-allocate a
// closure — at every call site, because the miss path stores it in the
// fill's waiter list). Read is the func-based convenience wrapper.
type ReadReply interface {
	// ReadDone receives the whole block's bytes (the receiver slices
	// [off, off+size)), whether the access hit, and any I/O error. It
	// runs on the kernel goroutine — inline for hits and synchronous
	// fills, later for asynchronous ones.
	ReadDone(data []byte, hit bool, err error)
}

// funcReply adapts a plain callback to ReadReply. Func values are
// pointer-shaped, so the interface conversion does not allocate.
type funcReply func(data []byte, hit bool, err error)

func (f funcReply) ReadDone(data []byte, hit bool, err error) { f(data, hit, err) }

// Read is ReadTo with a func callback; see ReadTo.
func (l *Live) Read(owner int, fid fs.FileID, blk int32, off, size int, done func(data []byte, hit bool, err error)) bool {
	return l.ReadTo(owner, fid, blk, off, size, funcReply(done))
}

// ReadTo reads size bytes at offset off within block blk, delivering the
// result through reply. The returned bool reports whether ReadDone
// already ran (false: an asynchronous fill will run it later, on the
// kernel goroutine).
//
// The counter updates replicate Proc.Access exactly (with read-ahead
// off): ReadCalls, then Hits, or Misses + DemandReads with the insert
// protocol between them.
func (l *Live) ReadTo(owner int, fid fs.FileID, blk int32, off, size int, reply ReadReply) bool {
	o, err := l.owner(owner)
	if err != nil {
		reply.ReadDone(nil, false, err)
		return true
	}
	f, ok := l.fsys.ByID(fid)
	if !ok || f.Removed() {
		reply.ReadDone(nil, false, ErrNotFound)
		return true
	}
	if blk < 0 || int(blk) >= f.Size() || off < 0 || size < 0 || off+size > BlockSize {
		reply.ReadDone(nil, false, ErrOutOfRange)
		return true
	}
	o.stats.ReadCalls++
	now := l.advance()
	id := cache.BlockID{File: fid, Num: blk}
	if b := l.bc.LookupBy(id, owner, off, size); b != nil {
		o.stats.Hits++
		l.noteAccess(true)
		l.notePrefetchHit(id)
		if b.Busy(now) {
			// Fill still in flight: coalesce onto it, as waitValid would.
			if fl := l.mshr[id]; fl != nil && fl.buf == b {
				l.fill.CoalescedMisses++
				l.addWaiter(fl, func(data []byte, err error) { reply.ReadDone(data, true, err) })
				l.noteSequential(o, f, blk, now)
				return false
			}
		}
		reply.ReadDone(b.Slot.Data(), true, nil)
		l.noteSequential(o, f, blk, now)
		return true
	}
	o.stats.Misses++
	l.noteAccess(false)
	buf, victim := l.bc.Insert(id, owner, now)
	werr := l.flushVictim(victim)
	buf.Referenced = true
	o.stats.DemandReads++
	fl := l.newFill(buf)
	l.addWaiter(fl, func(data []byte, err error) {
		if err == nil {
			err = werr // the eviction this miss forced lost data
		}
		reply.ReadDone(data, false, err)
	})
	l.dispatchFill(fl)
	l.noteSequential(o, f, blk, now)
	return fl.done
}

// Write writes payload at offset off within block blk, growing the file
// as needed. Whole-block writes (off 0, full payload) never read; a
// partial write to an uncached, pre-existing block is a read-modify-
// write. done reports hit and error as for Read.
//
// Counter updates replicate Proc.WriteAccess / Proc.Write exactly.
func (l *Live) Write(owner int, fid fs.FileID, blk int32, off int, payload []byte, done func(hit bool, err error)) bool {
	o, err := l.owner(owner)
	if err != nil {
		done(false, err)
		return true
	}
	f, ok := l.fsys.ByID(fid)
	if !ok || f.Removed() {
		done(false, ErrNotFound)
		return true
	}
	if blk < 0 || off < 0 || off+len(payload) > BlockSize || len(payload) == 0 {
		done(false, ErrOutOfRange)
		return true
	}
	o.stats.WriteCalls++
	whole := off == 0 && len(payload) == BlockSize
	grew := false
	if int(blk) >= f.Size() {
		if err := l.fsys.Grow(f, int(blk)+1); err != nil {
			done(false, err)
			return true
		}
		grew = true
	}
	now := l.advance()
	id := cache.BlockID{File: fid, Num: blk}
	b := l.bc.LookupBy(id, owner, off, len(payload))
	if b != nil {
		o.stats.Hits++
		l.noteAccess(true)
		l.notePrefetchHit(id)
		if b.Busy(now) {
			if fl := l.mshr[id]; fl != nil && fl.buf == b {
				l.fill.CoalescedMisses++
				l.addWaiter(fl, func(data []byte, err error) {
					done(true, l.applyWrite(b, fl, off, payload, err))
				})
				return false
			}
		}
		copy(l.exclusiveData(b)[off:], payload)
		l.bc.MarkDirty(b, l.Now())
		done(true, nil)
		return true
	}
	o.stats.Misses++
	l.noteAccess(false)
	b, victim := l.bc.Insert(id, owner, now)
	werr := l.flushVictim(victim)
	b.Referenced = true
	if !whole && !grew {
		// Read-modify-write: fetch the rest of the block first.
		o.stats.DemandReads++
		fl := l.newFill(b)
		l.addWaiter(fl, func(data []byte, err error) {
			if err == nil {
				err = werr
			}
			done(false, l.applyWrite(b, fl, off, payload, err))
		})
		l.dispatchFill(fl)
		return fl.done
	}
	data := b.Slot.Data()
	if !whole {
		// A grown block's unwritten bytes read as zeros; the recycled
		// slot may hold stale ones.
		clear(data)
	}
	copy(data[off:], payload)
	l.bc.MarkDirty(b, l.Now())
	done(false, werr)
	return true
}

// exclusiveData returns b's bytes writable on the kernel goroutine: if
// the block's slot is pinned by in-flight response frames the block
// moves to a fresh copy first (the frames keep reading the bytes they
// were served), counted as the zero-copy path's fallback.
func (l *Live) exclusiveData(b *cache.Buf) []byte {
	data, cowed := l.bc.ExclusiveData(b)
	if cowed {
		l.fill.WireCopyFallbacks++
	}
	return data
}

// CountWireFallback records a serve-path copy the server had to take (a
// response whose buffer was evicted mid-fill is served from the detached
// bytes). Kernel goroutine only.
func (l *Live) CountWireFallback() { l.fill.WireCopyFallbacks++ }

// CountFillBatch records one multi-block store read issued by the fill
// executor: a run of blocks fills retired as one vectored call. Kernel
// goroutine only.
func (l *Live) CountFillBatch(blocks int) {
	l.fill.BatchedFills++
	l.fill.FillBatchBlocks += int64(blocks)
}

// CountWritebackBatches records n multi-block runs the write-behind
// flusher retired with vectored store writes. Kernel goroutine only.
func (l *Live) CountWritebackBatches(n int) {
	l.fill.WritebackBatches += int64(n)
}

// NoteFillQueueDepth tracks the fill queue's high-water mark: how far
// the bounded worker pool fell behind the miss stream. Kernel goroutine
// only.
func (l *Live) NoteFillQueueDepth(depth int) {
	if int64(depth) > l.fill.FillQueueHighWater {
		l.fill.FillQueueHighWater = int64(depth)
	}
}

// applyWrite lands a write that was waiting on a fill. When the buffer
// survived, the payload goes into the block's *current* slot (which
// exclusiveData may just have moved off a pinned one — never into
// fl.Data, whose slot could be the frozen pre-write copy); if the buffer
// was evicted mid-fill the bytes write through via the write-back path —
// never the store directly, so a queued write-behind of the same block
// cannot land after (and clobber) this fresher data.
func (l *Live) applyWrite(b *cache.Buf, fl *Fill, off int, payload []byte, err error) error {
	if err != nil {
		return err
	}
	if l.bc.Peek(fl.ID) == b {
		copy(l.exclusiveData(b)[off:], payload)
		l.bc.MarkDirty(b, l.Now())
		return nil
	}
	copy(fl.Data[off:], payload)
	return l.writeBack(fl.ID, nil, fl.Data, cache.NoOwner)
}

// --- the fill pipeline: MSHR, write-behind, read-ahead ---

func (l *Live) newFill(buf *cache.Buf) *Fill {
	buf.ValidAt = ioPending
	fl := &Fill{ID: buf.ID, Data: buf.Slot.Data(), buf: buf}
	l.mshr[buf.ID] = fl
	return fl
}

func (l *Live) addWaiter(fl *Fill, fn func(data []byte, err error)) {
	if fl.done {
		fn(l.fillData(fl), fl.Err)
		return
	}
	fl.waiters = append(fl.waiters, fn)
}

// fillData returns the bytes a fill's waiter should see: the block's
// current slot while the buffer is still cached — a coalesced write
// ahead in the waiter list may have copy-on-written the block off the
// slot the fill landed in — or the fill's own (detached) bytes.
func (l *Live) fillData(fl *Fill) []byte {
	if b := fl.buf; b != nil && b.Slot != nil && l.bc.Peek(fl.ID) == b {
		return b.Slot.Data()
	}
	return fl.Data
}

// stageFill resolves a fill that needs no store I/O. A block whose
// newest bytes are still sitting in the write-behind queue is served
// straight from that buffer — the store's copy is stale until the
// flusher lands it, and the copy costs no I/O at all. Returns false
// when the fill was completed in place, true when it still needs a
// store read.
func (l *Live) stageFill(fl *Fill) bool {
	if wb := l.pendingWB[fl.ID]; wb != nil {
		copy(fl.Data, wb.Data)
		l.fill.WritebackHits++
		l.CompleteFill(fl)
		return false
	}
	return true
}

// dispatchFill starts a fill's I/O.
func (l *Live) dispatchFill(fl *Fill) {
	if !l.stageFill(fl) {
		return
	}
	l.fill.StoreReads++
	if sf := l.cfg.StartFill; sf != nil {
		sf(fl)
		return
	}
	fl.Err = l.store.ReadBlock(int32(fl.ID.File), fl.ID.Num, fl.Data)
	l.CompleteFill(fl)
}

// dispatchFillRun starts a read-ahead run's I/O: stage each fill (the
// write-behind forward can satisfy some in place), then hand the rest
// to the batch executor in one call so a K-block run costs one vectored
// read instead of K. StoreReads counts blocks, not calls, so the
// counter stays comparable across executors; the call shape shows up in
// BatchedFills/FillBatchBlocks instead. Without a batch executor the
// run degrades to per-fill dispatch.
func (l *Live) dispatchFillRun(fls []*Fill) {
	sfb := l.cfg.StartFillBatch
	if sfb == nil || l.cfg.StartFill == nil {
		for _, fl := range fls {
			l.dispatchFill(fl)
		}
		return
	}
	run := fls[:0]
	for _, fl := range fls {
		if l.stageFill(fl) {
			run = append(run, fl)
		}
	}
	if len(run) == 0 {
		return
	}
	l.fill.StoreReads += int64(len(run))
	sfb(run)
}

// CompleteFill applies a finished block read: install the bytes (or
// drop the buffer, on error), then run every waiter. Must be called on
// the kernel goroutine. A buffer evicted while its fill was in flight is
// not re-installed — its waiters still get the bytes, and the buffer
// stays IOPending, exactly the leak-to-GC discipline of the DES. The
// MSHR entry is removed only if it is still this fill's: a fresh miss
// after a mid-fill eviction owns the slot now.
func (l *Live) CompleteFill(fl *Fill) {
	if l.mshr[fl.ID] == fl {
		delete(l.mshr, fl.ID)
	}
	if l.bc.Peek(fl.ID) == fl.buf {
		if fl.Err != nil {
			l.bc.Drop(fl.buf)
			delete(l.prefetched, fl.ID)
		} else {
			fl.buf.ValidAt = 0
		}
	}
	fl.done = true
	ws := fl.waiters
	fl.waiters = nil
	for _, w := range ws {
		w(l.fillData(fl), fl.Err)
	}
}

// flushVictim hands an evicted dirty block to the write-back path. The
// victim carries a detached slot exactly when it was dirty with valid
// bytes; writeBack releases the slot once the bytes are safe.
func (l *Live) flushVictim(v *cache.Victim) error {
	if v == nil {
		return nil
	}
	delete(l.prefetched, v.ID)
	if v.Slot == nil {
		return nil
	}
	return l.writeBack(v.ID, v.Slot, v.Slot.Data(), v.Owner)
}

// writeBack persists one evicted block's bytes. With a StartWriteBack
// executor the write is asynchronous: the kernel records the newest
// pending bytes per block (dispatchFill forwards from them) and the
// executor re-enters through CompleteWriteBack. Without one the write
// runs inline, and a failure is surfaced — counted, wrapped in
// ErrWriteBack, never a panic — to the request that forced the eviction.
func (l *Live) writeBack(id cache.BlockID, sl *cache.Slot, data []byte, owner int) error {
	if swb := l.cfg.StartWriteBack; swb != nil {
		wb := &WriteBack{ID: id, Data: data, Owner: owner, slot: sl}
		_, wb.Conflict = l.pendingWB[id]
		l.pendingWB[id] = wb
		l.wbOutstanding++
		l.fill.WritebacksQueued++
		if l.wbOutstanding > l.fill.WritebackQueueHighWater {
			l.fill.WritebackQueueHighWater = l.wbOutstanding
		}
		swb(wb)
		return nil
	}
	err := l.store.WriteBlock(int32(id.File), id.Num, data)
	if sl != nil {
		l.bc.ReleaseSlot(sl)
	}
	if err != nil {
		l.fill.WritebackErrors++
		return fmt.Errorf("%w: block %v: %v", ErrWriteBack, id, err)
	}
	l.charge(owner, func(st *ProcStats) { st.WriteBacks++ })
	return nil
}

// CompleteWriteBack applies a finished asynchronous write-back. Must be
// called on the kernel goroutine. The pending entry is removed only if
// it is still this write-back's: a newer eviction of the same block owns
// the forwarding slot (and the executor's queue order guarantees its
// bytes reach the store last).
func (l *Live) CompleteWriteBack(wb *WriteBack) {
	if l.pendingWB[wb.ID] == wb {
		delete(l.pendingWB, wb.ID)
	}
	if wb.slot != nil {
		l.bc.ReleaseSlot(wb.slot)
		wb.slot = nil
	}
	l.wbOutstanding--
	if wb.Stalled {
		l.fill.WritebackStalls++
	}
	if wb.Err != nil {
		l.fill.WritebackErrors++
		return
	}
	l.charge(wb.Owner, func(st *ProcStats) { st.WriteBacks++ })
}

// notePrefetchHit counts the first demand touch of a prefetched block.
func (l *Live) notePrefetchHit(id cache.BlockID) {
	if l.prefetched[id] {
		delete(l.prefetched, id)
		l.fill.PrefetchHits++
	}
}

// noteSequential updates the per-owner sequential detector and issues
// read-ahead once two consecutive blocks have been read, keeping up to
// ReadAheadDepth blocks in flight — the same detection rule as the DES
// kernel's noteSequential and internal/disk's track-buffer model (a
// request extending the previous address streams; anything else seeks).
// Prefetch fills go through the MSHR like any other, so a demand miss
// that catches up simply coalesces onto the in-flight prefetch.
//
// Scheduling is windowed: the window [blk+1, raUntil] refills only when
// the reader has consumed it to within half the depth, and a refill
// extends it back out to blk+depth in one go. At depth 2 that is
// exactly the old one-block top-up; at depth K the steady state issues
// a K/2-block run every K/2 reads, which dispatchFillRun hands to the
// batch executor as one vectored store read.
func (l *Live) noteSequential(o *liveOwner, f *fs.File, blk int32, now sim.Time) {
	if !l.cfg.ReadAhead {
		return
	}
	if o.lastRead == nil {
		o.lastRead = make(map[fs.FileID]int32)
		o.raUntil = make(map[fs.FileID]int32)
	}
	last, seen := o.lastRead[f.ID()]
	o.lastRead[f.ID()] = blk
	if !seen || blk != last+1 {
		// Run broken (or just starting): forget the old window so a
		// re-scan of evicted blocks prefetches again from scratch.
		delete(o.raUntil, f.ID())
		return
	}
	depth := l.cfg.ReadAheadDepth
	if depth <= 0 {
		depth = 2
	}
	until, ok := o.raUntil[f.ID()]
	if !ok || until < blk {
		until = blk
	}
	if int(until)-int(blk) > depth/2 {
		return // window still more than half full
	}
	target := blk + int32(depth)
	if max := int32(f.Size()) - 1; target > max {
		target = max
	}
	if target <= until {
		return
	}
	owner := -1
	for i := range l.owners {
		if l.owners[i] == o {
			owner = i
			break
		}
	}
	run := make([]*Fill, 0, target-until)
	for next := until + 1; next <= target; next++ {
		id := cache.BlockID{File: f.ID(), Num: next}
		if l.bc.Peek(id) != nil {
			continue
		}
		if l.mshr[id] != nil {
			// A detached fill (mid-fill eviction) is still in flight;
			// starting another read for the block would race it.
			continue
		}
		buf, victim := l.bc.Insert(id, owner, now)
		l.flushVictim(victim) // a prefetch has no requester to hand an error
		fl := l.newFill(buf)
		fl.prefetch = true
		l.prefetched[id] = true
		o.stats.Prefetches++
		l.fill.PrefetchIssued++
		run = append(run, fl)
	}
	o.raUntil[f.ID()] = target
	if len(run) > 0 {
		l.dispatchFillRun(run)
	}
}

// FlushDirty writes back every dirty block older than cutoff (pass
// MaxTime for all), the update-daemon analogue. Writes run synchronously
// — callers flush at quiesce points (shutdown, after the write-behind
// queue has drained). Returns blocks written and the first store error;
// later blocks are still attempted so one bad write cannot strand the
// rest dirty.
func (l *Live) FlushDirty(cutoff sim.Time) (int, error) {
	n := 0
	var firstErr error
	for _, b := range l.bc.DirtyOlderThan(cutoff) {
		if b.Slot == nil {
			l.bc.Clean(b)
			continue
		}
		// Reading the slot for the store write is safe against pinned
		// in-flight frames (reads both); the kernel goroutine is the only
		// writer.
		if err := l.store.WriteBlock(int32(b.ID.File), b.ID.Num, b.Slot.Data()); err != nil {
			l.fill.WritebackErrors++
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: block %v: %v", ErrWriteBack, b.ID, err)
			}
			continue
		}
		l.bc.Clean(b)
		l.charge(b.Owner, func(st *ProcStats) { st.WriteBacks++ })
		n++
	}
	return n, firstErr
}

// MaxTime is a cutoff that matches every dirty block.
const MaxTime = sim.Time(math.MaxInt64)

// Close flushes all dirty blocks and closes the store. Any asynchronous
// write-backs must have drained first (the server's shutdown barrier).
func (l *Live) Close() error {
	_, err := l.FlushDirty(MaxTime)
	if cerr := l.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- the fbehavior surface ---

// EnableControl registers owner as a cache manager.
func (l *Live) EnableControl(owner int) error {
	o, err := l.owner(owner)
	if err != nil {
		return err
	}
	if o.mgr != nil {
		return ErrControlled
	}
	m, err := l.ctl.CreateManager(owner)
	if err != nil {
		return err
	}
	o.mgr = m
	o.stats.FbehaviorCalls++
	return nil
}

// DisableControl withdraws cache control. No-op when not controlling.
func (l *Live) DisableControl(owner int) error {
	o, err := l.owner(owner)
	if err != nil {
		return err
	}
	if o.mgr == nil {
		return nil
	}
	l.ctl.DestroyManager(owner)
	o.mgr = nil
	o.stats.FbehaviorCalls++
	return nil
}

// Controlled reports whether owner manages its cache.
func (l *Live) Controlled(owner int) bool {
	o, err := l.owner(owner)
	return err == nil && o.mgr != nil
}

func (l *Live) mgr(owner int) (*liveOwner, *acm.Manager, error) {
	o, err := l.owner(owner)
	if err != nil {
		return nil, nil, err
	}
	if o.mgr == nil {
		return nil, nil, ErrNoControl
	}
	o.stats.FbehaviorCalls++
	return o, o.mgr, nil
}

// noteAccess feeds the windowed hit-ratio gauge; called once per cache
// read or write on the kernel goroutine.
func (l *Live) noteAccess(hit bool) {
	l.winAccesses++
	if hit {
		l.winHits++
	}
	window := int64(l.cfg.HitWindow)
	if window <= 0 {
		window = DefaultHitWindow
	}
	if l.winAccesses >= window {
		l.lastWindowBP = 10000 * l.winHits / l.winAccesses
		l.winHits, l.winAccesses = 0, 0
		l.windowsDone++
	}
}

// HitRatioWindowBP returns the hit ratio of the last completed access
// window in basis points (0..10000), or of the partial current window
// before the first completes.
func (l *Live) HitRatioWindowBP() int64 {
	if l.windowsDone == 0 && l.winAccesses > 0 {
		return 10000 * l.winHits / l.winAccesses
	}
	return l.lastWindowBP
}

// HitWindowsDone returns how many access windows have completed; the
// policy adapter uses it to pace its evaluations.
func (l *Live) HitWindowsDone() int64 { return l.windowsDone }

// SetAllocPolicy hot-swaps the kernel's allocation policy by name; see
// cache.SetAlloc for the migrate-in-place contract. Kernel goroutine
// only.
func (l *Live) SetAllocPolicy(name cache.Alloc) error {
	if err := l.bc.SetAlloc(name); err != nil {
		return err
	}
	// A fresh policy deserves a fresh evaluation window: a half-window
	// measured across the swap would charge the new policy for the old
	// one's misses.
	l.winHits, l.winAccesses = 0, 0
	return nil
}

// AllocPolicy returns the name of the allocation policy in force.
func (l *Live) AllocPolicy() cache.Alloc { return l.bc.Alloc() }

// SetPriority sets the long-term cache priority of a file.
func (l *Live) SetPriority(owner int, fid fs.FileID, prio int) error {
	_, m, err := l.mgr(owner)
	if err != nil {
		return err
	}
	return m.SetPriority(fid, prio)
}

// GetPriority reads the long-term cache priority of a file.
func (l *Live) GetPriority(owner int, fid fs.FileID) (int, error) {
	_, m, err := l.mgr(owner)
	if err != nil {
		return 0, err
	}
	return m.Priority(fid), nil
}

// SetPolicy sets the replacement policy of a priority level.
func (l *Live) SetPolicy(owner int, prio int, pol acm.Policy) error {
	_, m, err := l.mgr(owner)
	if err != nil {
		return err
	}
	return m.SetPolicy(prio, pol)
}

// GetPolicy reads the replacement policy of a priority level.
func (l *Live) GetPolicy(owner int, prio int) (acm.Policy, error) {
	_, m, err := l.mgr(owner)
	if err != nil {
		return 0, err
	}
	return m.PolicyOf(prio), nil
}

// SetTempPri assigns a temporary priority to cached blocks of a file.
func (l *Live) SetTempPri(owner int, fid fs.FileID, startBlk, endBlk int32, prio int) error {
	_, m, err := l.mgr(owner)
	if err != nil {
		return err
	}
	return m.SetTempPri(fid, startBlk, endBlk, prio)
}

// --- invariants ---

// CheckInvariants panics unless the kernel's cross-structure invariants
// hold: the cache and ACM are self-consistent, every valid cached block
// has bytes (and vice versa), every busy cached buffer has an in-flight
// fill, and no cached block belongs to a released owner.
func (l *Live) CheckInvariants() {
	l.bc.CheckInvariants()
	l.ctl.CheckInvariants()
	now := l.Now()
	for _, id := range l.bc.GlobalOrder() {
		b := l.bc.Peek(id)
		if b == nil {
			panic(fmt.Sprintf("core: GlobalOrder lists %v but Peek misses", id))
		}
		if b.Busy(now) {
			if fl := l.mshr[id]; fl == nil || fl.buf != b {
				panic(fmt.Sprintf("core: cached busy block %v has no MSHR entry", id))
			}
		} else if b.Slot == nil {
			panic(fmt.Sprintf("core: cached valid block %v has no data slot", id))
		}
		if b.Owner != cache.NoOwner {
			if b.Owner < 0 || b.Owner >= len(l.owners) || !l.owners[b.Owner].live {
				panic(fmt.Sprintf("core: cached block %v owned by released owner %d", id, b.Owner))
			}
		}
	}
	for id, fl := range l.mshr {
		if id != fl.ID {
			panic(fmt.Sprintf("core: MSHR entry for %v holds fill for %v", id, fl.ID))
		}
		if l.bc.Peek(fl.ID) == fl.buf {
			if !fl.buf.Busy(now) {
				panic(fmt.Sprintf("core: cached block %v has a fill but is not busy", fl.ID))
			}
			if fl.buf.Slot == nil || !fl.buf.Slot.Backs(fl.Data) {
				panic(fmt.Sprintf("core: in-flight fill for %v detached from its buffer's slot", fl.ID))
			}
		}
	}
	for id, wb := range l.pendingWB {
		if id != wb.ID {
			panic(fmt.Sprintf("core: pending write-back for %v holds block %v", id, wb.ID))
		}
		if wb.Data == nil {
			panic(fmt.Sprintf("core: pending write-back for %v has no data", id))
		}
	}
}
