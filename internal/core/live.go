// live.go — the real-clock kernel behind the acfcd daemon.
//
// The DES System in this package models a machine: disk arms, a CPU, and
// virtual time. A cache *server* needs the same kernel — the same buffer
// cache, the same ACM, the same fbehavior surface and the same per-owner
// accounting — but driven by real requests against a real block store
// (disk.Store), with no simulated costs. Live is that kernel.
//
// Concurrency contract: Live is single-threaded by design. Exactly one
// goroutine (the server's kernel loop) may call its methods; block fills
// are the only concurrent work, and they re-enter through CompleteFill on
// that same goroutine. This mirrors the paper's kernel, where the buffer
// cache is protected by the monolithic-kernel lock, and it is why the
// cache and ACM structures — written for the one-runnable-process DES —
// can be reused unchanged.
//
// Accounting parity: Read and Write mirror Proc.Access / Proc.WriteAccess
// counter for counter (ReadCalls, Hits, Misses, DemandReads, WriteBacks,
// ...), with read-ahead off and metadata modelling off. A workload
// replayed through Live therefore produces byte-identical ProcStats and
// cache.Stats to a DES run of the same access sequence — the server
// oracle test holds the two implementations to that.

package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Errors returned by Live for client mistakes. The DES kernel panics on
// these (a simulated workload that reads past EOF is a bug in the
// experiment); a server must survive them.
var (
	ErrUnknownOwner = errors.New("core: unknown or released owner")
	ErrNoControl    = errors.New("core: owner has not enabled control")
	ErrControlled   = errors.New("core: owner already controls its cache")
	ErrNotFound     = errors.New("core: no such file")
	ErrOutOfRange   = errors.New("core: block out of range")
)

// Fill is one in-flight demand read. The kernel allocates it, the I/O
// executor (LiveConfig.StartFill) fills Data or Err, and hands it back to
// the kernel loop, which applies it via CompleteFill.
type Fill struct {
	ID   cache.BlockID
	Data []byte // BlockSize bytes; the executor reads the block into it
	Err  error  // set by the executor on I/O failure

	buf     *cache.Buf
	done    bool
	waiters []func(data []byte, err error)
}

// LiveConfig configures a Live kernel.
type LiveConfig struct {
	// CacheBytes sizes the buffer cache (default 6.4 MB, as in the DES).
	CacheBytes int64
	// Alloc is the global allocation policy.
	Alloc cache.Alloc
	// Revoke configures foolish-manager revocation.
	Revoke cache.RevokeConfig
	// SharedFiles makes cached-block ownership follow use across owners.
	SharedFiles bool
	// ACMLimits caps per-manager kernel resources.
	ACMLimits acm.Limits

	// DiskBlocks lists logical disk capacities for file placement
	// (default: the paper's RZ56 + RZ26 pair).
	DiskBlocks []int

	// Store holds block contents (default: an in-memory MemStore).
	Store disk.Store

	// StartFill, when non-nil, executes demand reads asynchronously: it
	// must arrange for fl.Data (or fl.Err) to be produced and for
	// CompleteFill(fl) to then be called on the kernel goroutine. Nil
	// means fills run synchronously inline — the mode the oracle test
	// and any single-threaded embedding use.
	StartFill func(fl *Fill)

	// EvictOnRelease makes ReleaseOwner evict the owner's blocks
	// (writing back dirty ones) instead of disowning them in place.
	EvictOnRelease bool

	// WallClock stamps cache recency with real time instead of the
	// deterministic per-operation logical tick. The tick default keeps
	// replacement order a pure function of request order, which the
	// oracle test needs; a production daemon may prefer wall time so
	// that update-style flushing ages in seconds.
	WallClock bool
}

func (c LiveConfig) cacheBlocks() int {
	bytes := c.CacheBytes
	if bytes <= 0 {
		bytes = MB(6.4)
	}
	n := int(bytes / BlockSize)
	if n <= 0 {
		n = 1
	}
	return n
}

// ShardConfig returns the configuration for shard i of an n-way sharded
// kernel: the total block budget is partitioned evenly across the shards
// (the remainder going to the low-numbered ones, so any two shards differ
// by at most one block) and everything else is copied unchanged. Each
// shard is a complete, independent Live — its own cache arena, ACM, and
// fill accounting — which is what makes sharding safe: LRU-SP runs
// whole within each shard's replacement domain. ShardConfig(0, 1) is the
// identity, so a 1-shard kernel is bit-for-bit the unsharded one.
func (c LiveConfig) ShardConfig(i, n int) LiveConfig {
	if n <= 1 {
		return c
	}
	total := c.cacheBlocks()
	mine := total / n
	if i < total%n {
		mine++
	}
	if mine <= 0 {
		mine = 1 // cacheBlocks clamps the same way for a tiny budget
	}
	c.CacheBytes = int64(mine) * BlockSize
	return c
}

// CacheBlocks reports the kernel's block capacity.
func (l *Live) CacheBlocks() int { return l.cfg.cacheBlocks() }

// CheckShardInvariants audits a sharded kernel set built from total via
// ShardConfig: every shard's own cross-structure invariants hold, and the
// shard capacities tile the total block budget — an even partition (±1
// block) whose sum is the unsharded capacity, except when the budget is
// smaller than the shard count and every shard is clamped to one block.
func CheckShardInvariants(kerns []*Live, total LiveConfig) {
	want := total.cacheBlocks()
	sum, min, max := 0, math.MaxInt, 0
	for _, k := range kerns {
		k.CheckInvariants()
		n := k.CacheBlocks()
		sum += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		panic(fmt.Sprintf("core: unbalanced shard capacities: min %d max %d", min, max))
	}
	if want >= len(kerns) && sum != want {
		panic(fmt.Sprintf("core: shard capacities sum to %d, want %d", sum, want))
	}
}

// liveOwner is one registered owner (a client session, in the daemon).
type liveOwner struct {
	name  string
	live  bool
	mgr   *acm.Manager
	stats ProcStats
}

// Live is the real-clock kernel: one buffer cache plus ACM, a file
// system namespace, and a block store, driven by explicit requests. Not
// safe for concurrent use — see the package comment's concurrency
// contract.
type Live struct {
	cfg   LiveConfig
	store disk.Store
	fsys  *fs.FileSystem
	bc    *cache.Cache
	ctl   *acm.ACM

	tick  sim.Time // logical clock: one tick per kernel operation
	epoch time.Time

	owners []*liveOwner
	// data holds the contents of every valid cached block. A block is in
	// data iff it is cached and not mid-fill; the bytes move to the
	// store on write-back and are dropped on clean eviction.
	data map[cache.BlockID][]byte
	// fills tracks in-flight demand reads by their buffer. A buffer
	// evicted mid-fill stays in the executor's hands (ValidAt remains
	// IOPending — the same leak-to-GC rule the DES uses); its fill
	// completes into waiters only.
	fills map[*cache.Buf]*Fill
}

// NewLive builds a Live kernel.
func NewLive(cfg LiveConfig) *Live {
	if cfg.Store == nil {
		cfg.Store = disk.NewMemStore()
	}
	if len(cfg.DiskBlocks) == 0 {
		cfg.DiskBlocks = []int{disk.RZ56.Blocks(), disk.RZ26.Blocks()}
	}
	l := &Live{
		cfg:   cfg,
		store: cfg.Store,
		fsys:  fs.New(fs.Config{DiskBlocks: cfg.DiskBlocks}),
		epoch: time.Now(),
		data:  make(map[cache.BlockID][]byte),
		fills: make(map[*cache.Buf]*Fill),
	}
	l.ctl = acm.New(l.Now, cfg.ACMLimits)
	l.bc = cache.New(cache.Config{
		Capacity:       cfg.cacheBlocks(),
		Alloc:          cfg.Alloc,
		Revoke:         cfg.Revoke,
		SharedTransfer: cfg.SharedFiles,
	}, l.ctl)
	return l
}

// Now returns the kernel clock: wall microseconds since start, or the
// logical tick.
func (l *Live) Now() sim.Time {
	if l.cfg.WallClock {
		return sim.Time(time.Since(l.epoch) / time.Microsecond)
	}
	return l.tick
}

func (l *Live) advance() sim.Time {
	if !l.cfg.WallClock {
		l.tick++
	}
	return l.Now()
}

// FS exposes the file system namespace.
func (l *Live) FS() *fs.FileSystem { return l.fsys }

// Cache exposes the buffer cache (read-only introspection).
func (l *Live) Cache() *cache.Cache { return l.bc }

// Store exposes the block store, for the fill executor.
func (l *Live) Store() disk.Store { return l.store }

// PendingFills reports the number of in-flight demand reads.
func (l *Live) PendingFills() int { return len(l.fills) }

// Snapshot captures the kernel counters. Live has no DES engine, so the
// Sim block stays zero.
func (l *Live) Snapshot() stats.Snapshot {
	return stats.Snapshot{Cache: l.bc.Stats()}
}

// --- owner lifecycle ---

// AddOwner registers a new owner (one per client session) and returns
// its id. Ids are never reused: per-owner revocation history must not
// leak from a dead session to a new one.
func (l *Live) AddOwner(name string) int {
	id := len(l.owners)
	l.owners = append(l.owners, &liveOwner{name: name, live: true})
	return id
}

func (l *Live) owner(id int) (*liveOwner, error) {
	if id < 0 || id >= len(l.owners) || !l.owners[id].live {
		return nil, ErrUnknownOwner
	}
	return l.owners[id], nil
}

// OwnerStats snapshots an owner's counters (also valid after release).
func (l *Live) OwnerStats(id int) (ProcStats, error) {
	if id < 0 || id >= len(l.owners) {
		return ProcStats{}, ErrUnknownOwner
	}
	return l.owners[id].stats, nil
}

// ReleaseOwner ends an owner's session: its manager (if any) is
// destroyed, and its blocks are either evicted (dirty ones written back)
// or disowned in place, per LiveConfig.EvictOnRelease. This is the
// revoked-owner path of the cache exercised as a production operation —
// every client disconnect runs it. Returns the owner's final counters.
func (l *Live) ReleaseOwner(id int) (ProcStats, error) {
	o, err := l.owner(id)
	if err != nil {
		return ProcStats{}, err
	}
	if o.mgr != nil {
		l.ctl.DestroyManager(id)
		o.mgr = nil
	}
	if l.cfg.EvictOnRelease {
		l.bc.EvictOwner(id, func(v cache.Victim) { l.flushVictim(&v) })
	} else {
		l.bc.DisownOwner(id)
	}
	o.live = false
	return o.stats, nil
}

func (l *Live) charge(owner int, f func(*ProcStats)) {
	if owner >= 0 && owner < len(l.owners) {
		f(&l.owners[owner].stats)
	}
}

// --- file management ---

// Create creates a file on disk d, initially sizeBlocks long.
func (l *Live) Create(owner int, name string, d, sizeBlocks int) (*fs.File, error) {
	if _, err := l.owner(owner); err != nil {
		return nil, err
	}
	if d < 0 || d >= l.fsys.Disks() {
		return nil, fmt.Errorf("core: no disk %d", d)
	}
	return l.fsys.Create(name, d, sizeBlocks)
}

// Open resolves a file by name and counts the open.
func (l *Live) Open(owner int, name string) (*fs.File, error) {
	o, err := l.owner(owner)
	if err != nil {
		return nil, err
	}
	f, ok := l.fsys.Lookup(name)
	if !ok {
		return nil, ErrNotFound
	}
	o.stats.Opens++
	return f, nil
}

// Remove unlinks a file; its cached blocks (dirty or not) are discarded
// without I/O, as for an unlinked temporary file.
func (l *Live) Remove(owner int, name string) error {
	if _, err := l.owner(owner); err != nil {
		return err
	}
	f, ok := l.fsys.Lookup(name)
	if !ok {
		return ErrNotFound
	}
	l.bc.InvalidateFile(f.ID())
	for id := range l.data {
		if id.File == f.ID() {
			delete(l.data, id)
		}
	}
	return l.fsys.Remove(name)
}

// --- the read/write surface ---

// Read reads size bytes at offset off within block blk. done receives
// the whole block's bytes (the caller slices [off, off+size)), whether
// the access hit, and any I/O error. done runs inline for hits and
// synchronous fills, or later on the kernel goroutine when the fill is
// asynchronous; the returned bool reports whether it already ran.
//
// The counter updates replicate Proc.Access exactly (with read-ahead
// off): ReadCalls, then Hits, or Misses + DemandReads with the insert
// protocol between them.
func (l *Live) Read(owner int, fid fs.FileID, blk int32, off, size int, done func(data []byte, hit bool, err error)) bool {
	o, err := l.owner(owner)
	if err != nil {
		done(nil, false, err)
		return true
	}
	f, ok := l.fsys.ByID(fid)
	if !ok || f.Removed() {
		done(nil, false, ErrNotFound)
		return true
	}
	if blk < 0 || int(blk) >= f.Size() || off < 0 || size < 0 || off+size > BlockSize {
		done(nil, false, ErrOutOfRange)
		return true
	}
	o.stats.ReadCalls++
	now := l.advance()
	id := cache.BlockID{File: fid, Num: blk}
	if b := l.bc.LookupBy(id, owner, off, size); b != nil {
		o.stats.Hits++
		if b.Busy(now) {
			// Fill still in flight: join it, as waitValid would.
			if fl := l.fills[b]; fl != nil {
				l.addWaiter(fl, func(data []byte, err error) { done(data, true, err) })
				return false
			}
		}
		done(l.data[id], true, nil)
		return true
	}
	o.stats.Misses++
	buf, victim := l.bc.Insert(id, owner, now)
	l.flushVictim(victim)
	buf.Referenced = true
	o.stats.DemandReads++
	fl := l.newFill(buf)
	l.addWaiter(fl, func(data []byte, err error) { done(data, false, err) })
	l.dispatchFill(fl)
	return fl.done
}

// Write writes payload at offset off within block blk, growing the file
// as needed. Whole-block writes (off 0, full payload) never read; a
// partial write to an uncached, pre-existing block is a read-modify-
// write. done reports hit and error as for Read.
//
// Counter updates replicate Proc.WriteAccess / Proc.Write exactly.
func (l *Live) Write(owner int, fid fs.FileID, blk int32, off int, payload []byte, done func(hit bool, err error)) bool {
	o, err := l.owner(owner)
	if err != nil {
		done(false, err)
		return true
	}
	f, ok := l.fsys.ByID(fid)
	if !ok || f.Removed() {
		done(false, ErrNotFound)
		return true
	}
	if blk < 0 || off < 0 || off+len(payload) > BlockSize || len(payload) == 0 {
		done(false, ErrOutOfRange)
		return true
	}
	o.stats.WriteCalls++
	whole := off == 0 && len(payload) == BlockSize
	grew := false
	if int(blk) >= f.Size() {
		if err := l.fsys.Grow(f, int(blk)+1); err != nil {
			done(false, err)
			return true
		}
		grew = true
	}
	now := l.advance()
	id := cache.BlockID{File: fid, Num: blk}
	b := l.bc.LookupBy(id, owner, off, len(payload))
	if b != nil {
		o.stats.Hits++
		if b.Busy(now) {
			if fl := l.fills[b]; fl != nil {
				l.addWaiter(fl, func(data []byte, err error) {
					done(true, l.applyWrite(b, fl, off, payload, err))
				})
				return false
			}
		}
		copy(l.data[id][off:], payload)
		l.bc.MarkDirty(b, l.Now())
		done(true, nil)
		return true
	}
	o.stats.Misses++
	b, victim := l.bc.Insert(id, owner, now)
	l.flushVictim(victim)
	b.Referenced = true
	if !whole && !grew {
		// Read-modify-write: fetch the rest of the block first.
		o.stats.DemandReads++
		fl := l.newFill(b)
		l.addWaiter(fl, func(data []byte, err error) {
			done(false, l.applyWrite(b, fl, off, payload, err))
		})
		l.dispatchFill(fl)
		return fl.done
	}
	block := make([]byte, BlockSize)
	copy(block[off:], payload)
	l.data[id] = block
	l.bc.MarkDirty(b, l.Now())
	done(false, nil)
	return true
}

// applyWrite lands a write that was waiting on a fill. The payload is
// copied into the fill's block (the same backing array CompleteFill
// installed, when the buffer survived); if the buffer was evicted
// mid-fill the bytes write through to the store so they are not lost.
func (l *Live) applyWrite(b *cache.Buf, fl *Fill, off int, payload []byte, err error) error {
	if err != nil {
		return err
	}
	copy(fl.Data[off:], payload)
	if l.bc.Peek(fl.ID) == b {
		l.bc.MarkDirty(b, l.Now())
		return nil
	}
	return l.store.WriteBlock(int32(fl.ID.File), fl.ID.Num, fl.Data)
}

// --- fills and write-back ---

func (l *Live) newFill(buf *cache.Buf) *Fill {
	buf.ValidAt = ioPending
	fl := &Fill{ID: buf.ID, Data: make([]byte, BlockSize), buf: buf}
	l.fills[buf] = fl
	return fl
}

func (l *Live) addWaiter(fl *Fill, fn func(data []byte, err error)) {
	if fl.done {
		fn(fl.Data, fl.Err)
		return
	}
	fl.waiters = append(fl.waiters, fn)
}

func (l *Live) dispatchFill(fl *Fill) {
	if sf := l.cfg.StartFill; sf != nil {
		sf(fl)
		return
	}
	fl.Err = l.store.ReadBlock(int32(fl.ID.File), fl.ID.Num, fl.Data)
	l.CompleteFill(fl)
}

// CompleteFill applies a finished demand read: install the bytes (or
// drop the buffer, on error), then run every waiter. Must be called on
// the kernel goroutine. A buffer evicted while its fill was in flight is
// not re-installed — its waiters still get the bytes, and the buffer
// stays IOPending, exactly the leak-to-GC discipline of the DES.
func (l *Live) CompleteFill(fl *Fill) {
	delete(l.fills, fl.buf)
	if l.bc.Peek(fl.ID) == fl.buf {
		if fl.Err != nil {
			l.bc.Drop(fl.buf)
		} else {
			l.data[fl.ID] = fl.Data
			fl.buf.ValidAt = 0
		}
	}
	fl.done = true
	ws := fl.waiters
	fl.waiters = nil
	for _, w := range ws {
		w(fl.Data, fl.Err)
	}
}

// flushVictim writes back an evicted dirty block, synchronously: the
// kernel loop owns both the cache and the victim's bytes, and a
// synchronous write is what keeps fills (which are concurrent) and
// write-backs (which would race them) trivially ordered.
func (l *Live) flushVictim(v *cache.Victim) {
	if v == nil {
		return
	}
	data := l.data[v.ID]
	delete(l.data, v.ID)
	if !v.Dirty || data == nil {
		return
	}
	if err := l.store.WriteBlock(int32(v.ID.File), v.ID.Num, data); err != nil {
		// The victim is already out of the cache; dropping the write
		// would lose data silently, so this is fatal. A store that can
		// fail transiently belongs behind a retrying wrapper.
		panic(fmt.Sprintf("core: write-back of %v failed: %v", v.ID, err))
	}
	l.charge(v.Owner, func(st *ProcStats) { st.WriteBacks++ })
}

// FlushDirty writes back every dirty block older than cutoff (pass
// MaxTime for all), the update-daemon analogue. Returns blocks written.
func (l *Live) FlushDirty(cutoff sim.Time) int {
	n := 0
	for _, b := range l.bc.DirtyOlderThan(cutoff) {
		data := l.data[b.ID]
		if data == nil {
			l.bc.Clean(b)
			continue
		}
		if err := l.store.WriteBlock(int32(b.ID.File), b.ID.Num, data); err != nil {
			panic(fmt.Sprintf("core: write-back of %v failed: %v", b.ID, err))
		}
		l.bc.Clean(b)
		l.charge(b.Owner, func(st *ProcStats) { st.WriteBacks++ })
		n++
	}
	return n
}

// MaxTime is a cutoff that matches every dirty block.
const MaxTime = sim.Time(math.MaxInt64)

// Close flushes all dirty blocks and closes the store.
func (l *Live) Close() error {
	l.FlushDirty(MaxTime)
	return l.store.Close()
}

// --- the fbehavior surface ---

// EnableControl registers owner as a cache manager.
func (l *Live) EnableControl(owner int) error {
	o, err := l.owner(owner)
	if err != nil {
		return err
	}
	if o.mgr != nil {
		return ErrControlled
	}
	m, err := l.ctl.CreateManager(owner)
	if err != nil {
		return err
	}
	o.mgr = m
	o.stats.FbehaviorCalls++
	return nil
}

// DisableControl withdraws cache control. No-op when not controlling.
func (l *Live) DisableControl(owner int) error {
	o, err := l.owner(owner)
	if err != nil {
		return err
	}
	if o.mgr == nil {
		return nil
	}
	l.ctl.DestroyManager(owner)
	o.mgr = nil
	o.stats.FbehaviorCalls++
	return nil
}

// Controlled reports whether owner manages its cache.
func (l *Live) Controlled(owner int) bool {
	o, err := l.owner(owner)
	return err == nil && o.mgr != nil
}

func (l *Live) mgr(owner int) (*liveOwner, *acm.Manager, error) {
	o, err := l.owner(owner)
	if err != nil {
		return nil, nil, err
	}
	if o.mgr == nil {
		return nil, nil, ErrNoControl
	}
	o.stats.FbehaviorCalls++
	return o, o.mgr, nil
}

// SetPriority sets the long-term cache priority of a file.
func (l *Live) SetPriority(owner int, fid fs.FileID, prio int) error {
	_, m, err := l.mgr(owner)
	if err != nil {
		return err
	}
	return m.SetPriority(fid, prio)
}

// GetPriority reads the long-term cache priority of a file.
func (l *Live) GetPriority(owner int, fid fs.FileID) (int, error) {
	_, m, err := l.mgr(owner)
	if err != nil {
		return 0, err
	}
	return m.Priority(fid), nil
}

// SetPolicy sets the replacement policy of a priority level.
func (l *Live) SetPolicy(owner int, prio int, pol acm.Policy) error {
	_, m, err := l.mgr(owner)
	if err != nil {
		return err
	}
	return m.SetPolicy(prio, pol)
}

// GetPolicy reads the replacement policy of a priority level.
func (l *Live) GetPolicy(owner int, prio int) (acm.Policy, error) {
	_, m, err := l.mgr(owner)
	if err != nil {
		return 0, err
	}
	return m.PolicyOf(prio), nil
}

// SetTempPri assigns a temporary priority to cached blocks of a file.
func (l *Live) SetTempPri(owner int, fid fs.FileID, startBlk, endBlk int32, prio int) error {
	_, m, err := l.mgr(owner)
	if err != nil {
		return err
	}
	return m.SetTempPri(fid, startBlk, endBlk, prio)
}

// --- invariants ---

// CheckInvariants panics unless the kernel's cross-structure invariants
// hold: the cache and ACM are self-consistent, every valid cached block
// has bytes (and vice versa), every busy cached buffer has an in-flight
// fill, and no cached block belongs to a released owner.
func (l *Live) CheckInvariants() {
	l.bc.CheckInvariants()
	l.ctl.CheckInvariants()
	now := l.Now()
	cached := make(map[cache.BlockID]bool)
	for _, id := range l.bc.GlobalOrder() {
		cached[id] = true
		b := l.bc.Peek(id)
		if b == nil {
			panic(fmt.Sprintf("core: GlobalOrder lists %v but Peek misses", id))
		}
		if b.Busy(now) {
			if l.fills[b] == nil {
				panic(fmt.Sprintf("core: cached busy block %v has no fill", id))
			}
		} else if l.data[id] == nil {
			panic(fmt.Sprintf("core: cached valid block %v has no data", id))
		}
		if b.Owner != cache.NoOwner {
			if b.Owner < 0 || b.Owner >= len(l.owners) || !l.owners[b.Owner].live {
				panic(fmt.Sprintf("core: cached block %v owned by released owner %d", id, b.Owner))
			}
		}
	}
	for id := range l.data {
		if !cached[id] {
			panic(fmt.Sprintf("core: data held for uncached block %v", id))
		}
	}
	for buf, fl := range l.fills {
		if l.bc.Peek(fl.ID) == buf && !buf.Busy(now) {
			panic(fmt.Sprintf("core: cached block %v has a fill but is not busy", fl.ID))
		}
	}
}
