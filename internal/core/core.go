// Package core assembles the full simulated system: the discrete-event
// engine, the CPU, the disks and SCSI bus, the file system, the buffer
// cache (BUF) and the application control module (ACM). It exposes the
// kernel's system-call surface to simulated processes — reads, writes,
// file management and the five fbehavior cache-control operations — and
// collects the per-process statistics the paper reports (block I/Os and
// elapsed time).
package core

import (
	"fmt"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/meta"
	"repro/internal/sim"
)

// ioPending marks a buffer whose fill I/O has not completed; the elevator
// decides the real completion time, so until then the buffer is busy
// forever as far as Busy() is concerned. The sentinel is defined by the
// cache so it knows not to recycle such a buffer on eviction.
const ioPending = cache.IOPending

// BlockSize is the file-system block size (8 KB, as in Ultrix).
const BlockSize = disk.BlockSize

// Config describes one simulated machine.
type Config struct {
	// CacheBytes sizes the buffer cache; the paper's default is 6.4 MB
	// (10% of the workstation's 64 MB).
	CacheBytes int64
	// Alloc is the kernel's global allocation policy.
	Alloc cache.Alloc
	// Disks lists the drive geometries; disk 0 holds files unless a
	// workload says otherwise. Default: one RZ56 and one RZ26 on a
	// shared SCSI bus, as in the paper.
	Disks []disk.Geometry
	// Seed drives all stochastic components (rotational latencies).
	Seed uint64
	// DiskSched selects the drivers' request scheduling (default: the
	// C-LOOK elevator of BSD disksort; FIFO exists for ablations).
	DiskSched disk.Sched

	// CPU cost model. SyscallCPU is the fixed kernel entry/exit cost of
	// a file operation; CopyCPU is the cost of copying one full block to
	// user space (scaled by access size); MissCPU is the added kernel
	// cost of handling a miss; FbehaviorCPU prices a cache-control call.
	SyscallCPU   sim.Time
	CopyCPU      sim.Time
	MissCPU      sim.Time
	FbehaviorCPU sim.Time
	// CPUQuantum chunks CPU service for round-robin-like sharing: a
	// process never waits for more than roughly one quantum of another
	// process's computation. The small default (2 ms) approximates the
	// Unix scheduler's priority boost for I/O-bound processes, which
	// lets them preempt CPU-bound neighbours almost immediately.
	CPUQuantum sim.Time

	// ReadAhead enables sequential read-ahead. ReadAheadDepth is how
	// many blocks ahead the kernel keeps in flight; 0 means 1, the
	// single-block breada read-ahead of Ultrix 4.3. Deeper read-ahead
	// (a modern clustered kernel) also keeps the disk queue primed so
	// the elevator defers asynchronous writes to real pauses — the
	// ablation bench quantifies the difference.
	ReadAhead      bool
	ReadAheadDepth int

	// FileGapBlocks separates files on disk (inode/fragmentation gap),
	// so crossing a file boundary costs a rotation instead of streaming.
	FileGapBlocks int

	// SyncInterval and DirtyAge configure the update daemon: every
	// SyncInterval it writes back blocks dirty for at least DirtyAge.
	// SyncInterval 0 disables the daemon.
	SyncInterval sim.Time
	DirtyAge     sim.Time
	// SpreadSync smooths the update daemon in the style of Mogul's "A
	// better update policy" (cited by the paper): instead of one burst
	// every SyncInterval, the daemon wakes SyncSlices times per interval
	// and flushes only the aged dirty blocks, spreading write-back load
	// so bursts do not queue behind demand reads. SyncSlices 0 means 30.
	SpreadSync bool
	SyncSlices int

	// SharedFiles makes cached-block ownership follow use, so whichever
	// process is actively using a shared file's block applies its policy
	// to it (the paper's Section 8 future work).
	SharedFiles bool

	// MetaCacheEntries sizes the separate in-core inode cache (the
	// BSD/Ultrix ninode table). Metadata I/O is accounted apart from the
	// paper's block-I/O metric, matching the paper's methodology. 0
	// disables metadata modelling entirely (Open costs CPU only).
	MetaCacheEntries int
	// NameiCPU is the path-lookup cost of an Open.
	NameiCPU sim.Time

	// UpcallCPU models an upcall/RPC-based control implementation: this
	// much CPU is charged for every replace_block consultation of a
	// manager, standing in for the two context switches of a user-level
	// handler. The paper's in-kernel primitive interface corresponds to
	// 0 (the consultation is a procedure call); the related work it
	// cites paid up to 10% of execution time for upcall-based control.
	UpcallCPU sim.Time

	// Revoke configures the foolish-manager revocation extension.
	Revoke cache.RevokeConfig
	// ACMLimits caps per-manager kernel resources.
	ACMLimits acm.Limits

	// Trace, when non-nil, receives every block access (reads and
	// writes, not read-ahead) as it happens. Useful for dumping or
	// characterizing reference streams.
	Trace func(TraceEvent)

	// TraceCtl, when non-nil, receives every successful control-plane
	// operation — fbehavior calls, file creation and removal — as it
	// happens, interleaved in call order with Config.Trace. The two
	// streams together are a complete, replayable record of the run
	// (expt.Record assembles it; acfcd's load generator and the server
	// oracle test replay it over the wire).
	TraceCtl func(CtlEvent)

	// NoSimFastPath forces every virtual-time sleep through the DES
	// event heap and scheduler, disabling the engine's lookahead fast
	// path. Results are identical either way (differential tests prove
	// it); the flag exists for those tests and for isolating the fast
	// path's contribution in benchmarks.
	NoSimFastPath bool
}

// TraceEvent describes one block access for Config.Trace.
type TraceEvent struct {
	Time  sim.Time
	Proc  int
	Name  string // process name
	File  fs.FileID
	Block int32
	Off   int
	Size  int
	Write bool
	Hit   bool
}

// DefaultConfig returns the paper's machine: 6.4 MB cache, LRU-SP, one
// RZ56 and one RZ26, DEC 5000/240-class CPU costs, 30-second update
// daemon, read-ahead on.
func DefaultConfig() Config {
	return Config{
		CacheBytes:       MB(6.4), // 819 blocks, as the paper states
		Alloc:            cache.LRUSP,
		Disks:            []disk.Geometry{disk.RZ56, disk.RZ26},
		Seed:             1,
		SyscallCPU:       150 * sim.Microsecond,
		CopyCPU:          300 * sim.Microsecond,
		MissCPU:          1 * sim.Millisecond,
		FbehaviorCPU:     60 * sim.Microsecond,
		ReadAhead:        true,
		FileGapBlocks:    2,
		MetaCacheEntries: 300, // the ninode default of the era
		NameiCPU:         500 * sim.Microsecond,
		SyncInterval:     30 * sim.Second,
		DirtyAge:         30 * sim.Second,
	}
}

// MB converts binary megabytes to bytes (the paper's 6.4 MB cache is 819
// 8 KB blocks, which is 6.4 * 2^20 / 8192).
func MB(mb float64) int64 { return int64(mb * (1 << 20)) }

// CacheBlocks returns the cache capacity in blocks.
func (c Config) CacheBlocks() int {
	n := int(c.CacheBytes / BlockSize)
	if n <= 0 {
		n = 1
	}
	return n
}

// System is one simulated machine.
type System struct {
	cfg   Config
	eng   *sim.Engine
	cpu   *sim.Resource
	bus   *disk.Bus
	disks []*disk.Disk
	fsys  *fs.FileSystem
	bc    *cache.Cache
	ctl   *acm.ACM
	inode *meta.Cache // nil when metadata modelling is off
	procs []*Proc

	// pendingIO maps buffers being filled to the condition their
	// waiters sleep on.
	pendingIO map[*cache.Buf]*sim.Cond
}

// NewSystem builds a machine from the config.
func NewSystem(cfg Config) *System {
	if len(cfg.Disks) == 0 {
		cfg.Disks = []disk.Geometry{disk.RZ56, disk.RZ26}
	}
	s := &System{cfg: cfg, pendingIO: make(map[*cache.Buf]*sim.Cond)}
	if cfg.NoSimFastPath {
		s.eng = sim.New(sim.DisableFastPath)
	} else {
		s.eng = sim.New()
	}
	s.cpu = s.eng.NewResource("cpu")
	s.bus = disk.NewBus(s.eng)
	var caps []int
	for i, g := range cfg.Disks {
		d := disk.New(s.eng, g, s.bus, cfg.Seed+uint64(i)*7919)
		d.SetScheduler(cfg.DiskSched)
		s.disks = append(s.disks, d)
		caps = append(caps, g.Blocks())
	}
	s.fsys = fs.New(fs.Config{DiskBlocks: caps, FileGapBlocks: cfg.FileGapBlocks})
	s.ctl = acm.New(s.eng.Now, cfg.ACMLimits)
	s.bc = cache.New(cache.Config{
		Capacity:       cfg.CacheBlocks(),
		Alloc:          cfg.Alloc,
		Revoke:         cfg.Revoke,
		SharedTransfer: cfg.SharedFiles,
	}, s.ctl)
	if cfg.MetaCacheEntries > 0 {
		s.inode = meta.New(cfg.MetaCacheEntries)
	}
	if cfg.SyncInterval > 0 {
		s.eng.SpawnDaemon("update", s.updateDaemon)
	}
	return s
}

// InodeCache exposes the metadata cache (nil when disabled).
func (s *System) InodeCache() *meta.Cache { return s.inode }

// Engine exposes the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// SimStats returns the engine's event/handoff counters (meaningful after
// Run).
func (s *System) SimStats() sim.Stats { return s.eng.Stats() }

// FS exposes the file system (for test setup).
func (s *System) FS() *fs.FileSystem { return s.fsys }

// Cache exposes the buffer cache.
func (s *System) Cache() *cache.Cache { return s.bc }

// ACM exposes the application control module.
func (s *System) ACM() *acm.ACM { return s.ctl }

// Disk returns drive i.
func (s *System) Disk(i int) *disk.Disk { return s.disks[i] }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// CreateFile pre-populates a file before the run (no simulated I/O), as
// when a benchmark's input data already exists on disk.
func (s *System) CreateFile(name string, diskIdx, sizeBlocks int) *fs.File {
	f, err := s.fsys.Create(name, diskIdx, sizeBlocks)
	if err != nil {
		panic(err)
	}
	s.ctlTraceSys(CtlEvent{Op: CtlCreateFile, File: f.ID(), FileName: name, Disk: diskIdx, Size: sizeBlocks})
	return f
}

// updateDaemon is the Ultrix update(8) analogue: it periodically writes
// back aged dirty blocks. With SpreadSync it wakes many times per interval
// and flushes only what has aged, trading Ultrix's write bursts for a
// steady trickle (Mogul's better update policy).
func (s *System) updateDaemon(dp *sim.Proc) {
	interval := s.cfg.SyncInterval
	if s.cfg.SpreadSync {
		slices := s.cfg.SyncSlices
		if slices <= 0 {
			slices = 30
		}
		interval = s.cfg.SyncInterval / sim.Time(slices)
		if interval < sim.Millisecond {
			interval = sim.Millisecond
		}
	}
	for {
		dp.Sleep(interval)
		cutoff := dp.Now() - s.cfg.DirtyAge
		for _, b := range s.bc.DirtyOlderThan(cutoff) {
			s.writeBack(b)
		}
	}
}

// writeBack issues the asynchronous disk write for a dirty block and
// attributes the I/O to the block's owner.
func (s *System) writeBack(b *cache.Buf) {
	f, ok := s.fsys.ByID(b.ID.File)
	if !ok {
		// File removed; its cache blocks should have been invalidated.
		s.bc.Clean(b)
		return
	}
	d := s.disks[f.Disk()]
	d.Start(disk.Write, f.BlockAddr(int(b.ID.Num)), nil)
	s.bc.Clean(b)
	s.charge(b.Owner, func(st *ProcStats) { st.WriteBacks++ })
}

// flushVictim writes back an evicted dirty block (asynchronously; the
// demand read that triggered the eviction queues behind it when they share
// a disk, which is the latency a real kernel would see).
func (s *System) flushVictim(v *cache.Victim) {
	if v == nil || !v.Dirty {
		return
	}
	f, ok := s.fsys.ByID(v.ID.File)
	if !ok {
		return
	}
	d := s.disks[f.Disk()]
	d.Start(disk.Write, f.BlockAddr(int(v.ID.Num)), nil)
	s.charge(v.Owner, func(st *ProcStats) { st.WriteBacks++ })
}

// startFill issues the disk read that fills buf with block blk of f and
// returns the condition completion will broadcast. The buffer stays busy
// until the elevator finishes the read.
func (s *System) startFill(f *fs.File, buf *cache.Buf, blk int32) *sim.Cond {
	buf.ValidAt = ioPending
	cond := s.eng.NewCond()
	s.pendingIO[buf] = cond
	d := s.disks[f.Disk()]
	d.Start(disk.Read, f.BlockAddr(int(blk)), func(t sim.Time) {
		buf.ValidAt = t
		delete(s.pendingIO, buf)
		cond.Broadcast()
	})
	return cond
}

// insertBlock runs the replacement protocol for block id on p's behalf:
// eviction (with write-back of a dirty victim) plus the simulated cost of
// any manager consultation under an upcall-based implementation.
func (s *System) insertBlock(p *Proc, id cache.BlockID) *cache.Buf {
	before := s.bc.Consults()
	buf, victim := s.bc.Insert(id, p.id, p.sp.Now())
	s.flushVictim(victim)
	if s.cfg.UpcallCPU > 0 {
		if consults := s.bc.Consults() - before; consults > 0 {
			s.useCPU(p.sp, sim.Time(consults)*s.cfg.UpcallCPU)
		}
	}
	return buf
}

// waitValid parks p until b's fill I/O has completed.
func (s *System) waitValid(p *Proc, b *cache.Buf) {
	for b.Busy(p.sp.Now()) {
		cond := s.pendingIO[b]
		if cond == nil {
			p.sp.SleepUntil(b.ValidAt)
			return
		}
		cond.Wait(p.sp)
	}
}

// charge applies a stat mutation to a process by owner id, ignoring
// unknown owners.
func (s *System) charge(owner int, f func(*ProcStats)) {
	if owner >= 0 && owner < len(s.procs) {
		f(&s.procs[owner].stats)
	}
}

// Run executes the simulation to completion, then accounts a final sync of
// whatever dirty blocks remain (as the measured runs would flush at exit).
func (s *System) Run() {
	s.eng.Run()
	for _, b := range s.bc.DirtyOlderThan(s.eng.Now()) {
		if _, ok := s.fsys.ByID(b.ID.File); !ok {
			s.bc.Clean(b)
			continue
		}
		s.bc.Clean(b)
		s.charge(b.Owner, func(st *ProcStats) { st.WriteBacks++ })
	}
}

// ProcStats are the per-process counters the experiments report.
type ProcStats struct {
	ReadCalls  int64
	WriteCalls int64
	Hits       int64
	Misses     int64

	DemandReads int64 // disk reads to satisfy this process's misses
	Prefetches  int64 // disk reads issued by read-ahead for this process
	WriteBacks  int64 // disk writes of blocks this process dirtied

	// Metadata traffic, accounted apart from BlockIOs as in the paper.
	Opens         int64
	MetadataReads int64

	FbehaviorCalls int64
	ComputeTime    sim.Time
}

// BlockIOs is the paper's metric: every disk I/O attributable to the
// process.
func (st ProcStats) BlockIOs() int64 {
	return st.DemandReads + st.Prefetches + st.WriteBacks
}

// Add folds o into st, counter for counter. The sharded server uses it to
// present one per-session view over the per-shard owner records.
func (st *ProcStats) Add(o ProcStats) {
	st.ReadCalls += o.ReadCalls
	st.WriteCalls += o.WriteCalls
	st.Hits += o.Hits
	st.Misses += o.Misses
	st.DemandReads += o.DemandReads
	st.Prefetches += o.Prefetches
	st.WriteBacks += o.WriteBacks
	st.Opens += o.Opens
	st.MetadataReads += o.MetadataReads
	st.FbehaviorCalls += o.FbehaviorCalls
	st.ComputeTime += o.ComputeTime
}

// Proc is one simulated application process.
type Proc struct {
	sys      *System
	sp       *sim.Proc
	id       int
	name     string
	mgr      *acm.Manager
	lastRead map[fs.FileID]int32
	stats    ProcStats
}

// Spawn registers a process whose body starts at time zero (or at the
// current virtual time when spawned mid-run).
func (s *System) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		sys:      s,
		id:       len(s.procs),
		name:     name,
		lastRead: make(map[fs.FileID]int32),
	}
	s.procs = append(s.procs, p)
	p.sp = s.eng.Spawn(name, func(*sim.Proc) { body(p) })
	return p
}

// Procs returns all spawned processes in spawn order.
func (s *System) Procs() []*Proc { return s.procs }

// ID returns the process id (also its cache owner id).
func (p *Proc) ID() int { return p.id }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Stats returns a snapshot of the process counters.
func (p *Proc) Stats() ProcStats { return p.stats }

// Elapsed returns the process's virtual running time (valid after Run).
func (p *Proc) Elapsed() sim.Time { return p.sp.Elapsed() }

// Now returns the current virtual time.
func (p *Proc) Now() sim.Time { return p.sp.Now() }

// trace reports one access to the configured trace hook.
func (p *Proc) trace(f *fs.File, blk int32, off, size int, write, hit bool) {
	if t := p.sys.cfg.Trace; t != nil {
		t(TraceEvent{
			Time: p.sp.Now(), Proc: p.id, Name: p.name,
			File: f.ID(), Block: blk, Off: off, Size: size,
			Write: write, Hit: hit,
		})
	}
}

// Compute charges d of application CPU time (contending with other
// processes for the single CPU).
func (p *Proc) Compute(d sim.Time) {
	p.stats.ComputeTime += d
	p.sys.useCPU(p.sp, d)
}

// useCPU charges CPU time in quantum-sized chunks so that concurrent
// processes share the processor round-robin style instead of FCFS on
// whole compute bursts.
func (s *System) useCPU(sp *sim.Proc, d sim.Time) {
	q := s.cfg.CPUQuantum
	if q <= 0 {
		q = 2 * sim.Millisecond
	}
	for d > q {
		s.cpu.Use(sp, q)
		d -= q
	}
	if d > 0 {
		s.cpu.Use(sp, d)
	}
}

// --- file management ---

// CreateFile creates a file on disk d, initially empty unless sizeBlocks
// is positive. The fresh inode is in core by construction.
func (p *Proc) CreateFile(name string, d, sizeBlocks int) *fs.File {
	f, err := p.sys.fsys.Create(name, d, sizeBlocks)
	if err != nil {
		panic(err)
	}
	if p.sys.inode != nil {
		p.sys.inode.Prime(f.ID())
	}
	p.ctlTrace(CtlEvent{Op: CtlCreateFile, File: f.ID(), FileName: name, Disk: d, Size: sizeBlocks})
	p.sys.useCPU(p.sp, p.sys.cfg.SyscallCPU)
	return f
}

// Open models opening a file: the namei path lookup plus an inode fetch.
// An in-core inode is free; a miss reads the inode block from disk (the
// gap ahead of the file's first data block, where FFS keeps it). Metadata
// reads are counted apart from the paper's block-I/O metric, matching its
// methodology.
func (p *Proc) Open(f *fs.File) {
	p.stats.Opens++
	p.sys.useCPU(p.sp, p.sys.cfg.NameiCPU)
	if p.sys.inode == nil || p.sys.inode.Lookup(f.ID()) {
		return
	}
	p.stats.MetadataReads++
	if f.Size() == 0 {
		return
	}
	addr := f.BlockAddr(0)
	if p.sys.cfg.FileGapBlocks > 0 && addr > 0 {
		addr-- // the inode lives in the gap ahead of the file
	}
	d := p.sys.disks[f.Disk()]
	d.Access(p.sp, disk.Read, addr)
}

// RemoveFile unlinks a file; its cached blocks (dirty or not) are
// discarded without I/O, as for an unlinked temporary file.
func (p *Proc) RemoveFile(f *fs.File) {
	if p.sys.inode != nil {
		p.sys.inode.Invalidate(f.ID())
	}
	p.sys.bc.InvalidateFile(f.ID())
	if err := p.sys.fsys.Remove(f.Name()); err != nil {
		panic(err)
	}
	p.ctlTrace(CtlEvent{Op: CtlRemoveFile, File: f.ID(), FileName: f.Name()})
	delete(p.lastRead, f.ID())
	p.sys.useCPU(p.sp, p.sys.cfg.SyscallCPU)
}

// --- the read/write syscall surface ---

// Access reads size bytes at offset off within block blk of f: the
// fundamental cache operation. Partial accesses cost proportionally less
// copy time; lots of small accesses to one block hit the cache after the
// first touch.
func (p *Proc) Access(f *fs.File, blk int32, off, size int) {
	if int(blk) >= f.Size() {
		panic(fmt.Sprintf("core: %s reads block %d beyond %q (size %d)", p.name, blk, f.Name(), f.Size()))
	}
	cfg := &p.sys.cfg
	p.stats.ReadCalls++
	id := cache.BlockID{File: f.ID(), Num: blk}
	cpuCost := cfg.SyscallCPU + sim.Time(int64(cfg.CopyCPU)*int64(size)/BlockSize)
	if b := p.sys.bc.LookupBy(id, p.id, off, size); b != nil {
		p.stats.Hits++
		p.trace(f, blk, off, size, false, true)
		p.sys.waitValid(p, b) // a read-ahead may still be in flight
		p.sys.useCPU(p.sp, cpuCost)
		p.noteSequential(f, blk)
		return
	}
	p.stats.Misses++
	p.trace(f, blk, off, size, false, false)
	buf := p.sys.insertBlock(p, id)
	buf.Referenced = true
	p.sys.startFill(f, buf, blk)
	p.stats.DemandReads++
	p.sys.useCPU(p.sp, cpuCost+cfg.MissCPU)
	p.noteSequential(f, blk)
	p.sys.waitValid(p, buf)
}

// Read reads one whole block.
func (p *Proc) Read(f *fs.File, blk int32) { p.Access(f, blk, 0, BlockSize) }

// ReadSeq reads blocks [from, to) in order.
func (p *Proc) ReadSeq(f *fs.File, from, to int32) {
	for b := from; b < to; b++ {
		p.Read(f, b)
	}
}

// noteSequential updates the per-file sequential detector and issues
// read-ahead once two consecutive blocks have been read, keeping up to
// ReadAheadDepth blocks in flight.
func (p *Proc) noteSequential(f *fs.File, blk int32) {
	last, seen := p.lastRead[f.ID()]
	p.lastRead[f.ID()] = blk
	if !p.sys.cfg.ReadAhead || !seen || blk != last+1 {
		return
	}
	depth := p.sys.cfg.ReadAheadDepth
	if depth <= 0 {
		depth = 1
	}
	for i := int32(1); i <= int32(depth); i++ {
		next := blk + i
		if int(next) >= f.Size() {
			return
		}
		id := cache.BlockID{File: f.ID(), Num: next}
		if p.sys.bc.Peek(id) != nil {
			continue
		}
		buf := p.sys.insertBlock(p, id)
		p.sys.startFill(f, buf, next)
		p.stats.Prefetches++
		// Issuing the read-ahead costs the same kernel work as any miss.
		p.sys.useCPU(p.sp, p.sys.cfg.MissCPU)
	}
}

// WriteAccess writes size bytes at offset off within block blk of f,
// growing the file as needed. A partial write to an uncached block is a
// read-modify-write: the block must come in from disk before the bytes
// land. Whole-block writes (Write) skip the read.
func (p *Proc) WriteAccess(f *fs.File, blk int32, off, size int) {
	if off == 0 && size >= BlockSize {
		p.Write(f, blk)
		return
	}
	cfg := &p.sys.cfg
	p.stats.WriteCalls++
	grew := false
	if int(blk) >= f.Size() {
		if err := p.sys.fsys.Grow(f, int(blk)+1); err != nil {
			panic(err)
		}
		grew = true
	}
	id := cache.BlockID{File: f.ID(), Num: blk}
	b := p.sys.bc.LookupBy(id, p.id, off, size)
	if b != nil {
		p.stats.Hits++
		p.trace(f, blk, off, size, true, true)
		p.sys.waitValid(p, b)
	} else {
		p.stats.Misses++
		p.trace(f, blk, off, size, true, false)
		b = p.sys.insertBlock(p, id)
		b.Referenced = true
		if !grew {
			// Read-modify-write: fetch the rest of the block first.
			p.sys.startFill(f, b, blk)
			p.stats.DemandReads++
		}
	}
	cpuCost := cfg.SyscallCPU + sim.Time(int64(cfg.CopyCPU)*int64(size)/BlockSize)
	p.sys.useCPU(p.sp, cpuCost+cfg.MissCPU)
	p.sys.waitValid(p, b)
	p.sys.bc.MarkDirty(b, p.sp.Now())
}

// Write writes one whole block of f, growing the file as needed. Whole-
// block writes allocate a buffer without reading (write-behind: the disk
// write happens at eviction or via the update daemon).
func (p *Proc) Write(f *fs.File, blk int32) {
	cfg := &p.sys.cfg
	p.stats.WriteCalls++
	if int(blk) >= f.Size() {
		if err := p.sys.fsys.Grow(f, int(blk)+1); err != nil {
			panic(err)
		}
	}
	id := cache.BlockID{File: f.ID(), Num: blk}
	b := p.sys.bc.LookupBy(id, p.id, 0, BlockSize)
	if b != nil {
		p.stats.Hits++
		p.trace(f, blk, 0, BlockSize, true, true)
		p.sys.waitValid(p, b)
	} else {
		p.stats.Misses++
		p.trace(f, blk, 0, BlockSize, true, false)
		b = p.sys.insertBlock(p, id)
		b.Referenced = true
	}
	p.sys.bc.MarkDirty(b, p.sp.Now())
	p.sys.useCPU(p.sp, cfg.SyscallCPU+cfg.CopyCPU)
}

// WriteSeq writes blocks [from, to) in order.
func (p *Proc) WriteSeq(f *fs.File, from, to int32) {
	for b := from; b < to; b++ {
		p.Write(f, b)
	}
}

// --- the fbehavior cache-control surface ---

// EnableControl registers this process as a cache manager.
func (p *Proc) EnableControl() error {
	if p.mgr != nil {
		return fmt.Errorf("core: %s already controls its cache", p.name)
	}
	m, err := p.sys.ctl.CreateManager(p.id)
	if err != nil {
		return err
	}
	p.mgr = m
	p.ctlTrace(CtlEvent{Op: CtlControl, Enable: true})
	p.fbCharge()
	return nil
}

// DisableControl withdraws cache control.
func (p *Proc) DisableControl() {
	if p.mgr == nil {
		return
	}
	p.sys.ctl.DestroyManager(p.id)
	p.mgr = nil
	p.ctlTrace(CtlEvent{Op: CtlControl, Enable: false})
	p.fbCharge()
}

// Controlled reports whether the process manages its own cache.
func (p *Proc) Controlled() bool { return p.mgr != nil }

// Manager exposes the ACM manager (nil when not controlling).
func (p *Proc) Manager() *acm.Manager { return p.mgr }

func (p *Proc) fbCharge() {
	p.stats.FbehaviorCalls++
	p.sys.useCPU(p.sp, p.sys.cfg.FbehaviorCPU)
}

func (p *Proc) requireMgr(call string) *acm.Manager {
	if p.mgr == nil {
		panic(fmt.Sprintf("core: %s called %s without EnableControl", p.name, call))
	}
	return p.mgr
}

// SetPriority sets the long-term cache priority of a file.
func (p *Proc) SetPriority(f *fs.File, prio int) error {
	m := p.requireMgr("set_priority")
	p.fbCharge()
	err := m.SetPriority(f.ID(), prio)
	if err == nil {
		p.ctlTrace(CtlEvent{Op: CtlSetPriority, File: f.ID(), FileName: f.Name(), Prio: prio})
	}
	return err
}

// GetPriority reads the long-term cache priority of a file.
func (p *Proc) GetPriority(f *fs.File) int {
	m := p.requireMgr("get_priority")
	p.fbCharge()
	return m.Priority(f.ID())
}

// SetPolicy sets the replacement policy of a priority level.
func (p *Proc) SetPolicy(prio int, pol acm.Policy) error {
	m := p.requireMgr("set_policy")
	p.fbCharge()
	err := m.SetPolicy(prio, pol)
	if err == nil {
		p.ctlTrace(CtlEvent{Op: CtlSetPolicy, Prio: prio, Policy: pol})
	}
	return err
}

// GetPolicy reads the replacement policy of a priority level.
func (p *Proc) GetPolicy(prio int) acm.Policy {
	m := p.requireMgr("get_policy")
	p.fbCharge()
	return m.PolicyOf(prio)
}

// SetTempPri assigns a temporary priority to the cached blocks of f in
// [startBlk, endBlk].
func (p *Proc) SetTempPri(f *fs.File, startBlk, endBlk int32, prio int) error {
	m := p.requireMgr("set_temppri")
	p.fbCharge()
	err := m.SetTempPri(f.ID(), startBlk, endBlk, prio)
	if err == nil {
		p.ctlTrace(CtlEvent{Op: CtlSetTempPri, File: f.ID(), FileName: f.Name(), Start: startBlk, End: endBlk, Prio: prio})
	}
	return err
}
