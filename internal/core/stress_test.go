package core_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sim"
)

// script is a deterministic random mini-workload for stress runs.
type script struct {
	seed  uint64
	procs int
}

// runScript executes the script on a fresh machine and returns the system
// plus per-proc processes.
func runScript(t *testing.T, sc script, alloc cache.Alloc, managed bool) (*core.System, []*core.Proc) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 64 * core.BlockSize
	cfg.Alloc = alloc
	sys := core.NewSystem(cfg)
	var shared []*fs.File
	for i := 0; i < 3; i++ {
		shared = append(shared, sys.CreateFile(fmt.Sprintf("shared%d", i), i%2, 40))
	}
	var procs []*core.Proc
	for pi := 0; pi < sc.procs; pi++ {
		pi := pi
		procs = append(procs, sys.Spawn(fmt.Sprintf("p%d", pi), func(p *core.Proc) {
			rng := sim.NewRand(sc.seed*1000 + uint64(pi))
			if managed && rng.Intn(2) == 0 {
				if err := p.EnableControl(); err != nil {
					t.Error(err)
					return
				}
			}
			var tmp *fs.File
			tmpBlocks := int32(0)
			for op := 0; op < 400; op++ {
				f := shared[rng.Intn(len(shared))]
				switch rng.Intn(12) {
				case 0: // sequential run
					start := int32(rng.Intn(f.Size()))
					n := int32(1 + rng.Intn(8))
					if int(start+n) > f.Size() {
						n = int32(f.Size()) - start
					}
					p.ReadSeq(f, start, start+n)
				case 1: // write to a temp file
					if tmp == nil {
						tmp = p.CreateFile(fmt.Sprintf("tmp%d-%d", pi, op), rng.Intn(2), 0)
						tmpBlocks = 0
					}
					p.Write(tmp, tmpBlocks)
					tmpBlocks++
				case 2: // read back from the temp file
					if tmp != nil && tmpBlocks > 0 {
						p.Read(tmp, int32(rng.Intn(int(tmpBlocks))))
					}
				case 3: // remove the temp file
					if tmp != nil {
						p.RemoveFile(tmp)
						tmp = nil
					}
				case 4: // fbehavior traffic
					if p.Controlled() {
						switch rng.Intn(3) {
						case 0:
							p.SetPriority(f, rng.Intn(3)-1)
						case 1:
							p.SetPolicy(rng.Intn(3)-1, 1) // MRU
						case 2:
							lo := int32(rng.Intn(f.Size()))
							p.SetTempPri(f, lo, lo+int32(rng.Intn(4)), -1)
						}
					}
				case 5:
					p.Compute(sim.Time(rng.Intn(5000)))
				case 6:
					p.Open(f)
				default: // random single-block read
					p.Read(f, int32(rng.Intn(f.Size())))
				}
			}
		}))
	}
	sys.Run()
	return sys, procs
}

// TestStressInvariants runs random managed workload mixes under every
// kernel and checks structural and accounting invariants.
func TestStressInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		for _, alloc := range []cache.Alloc{cache.GlobalLRU, cache.LRUSP, cache.LRUS, cache.AllocLRU} {
			managed := alloc != cache.GlobalLRU
			sys, procs := runScript(t, script{seed: seed, procs: 3}, alloc, managed)
			sys.Cache().CheckInvariants()
			sys.ACM().CheckInvariants()
			var demand, prefetch, metaReads, writeBacks int64
			for _, p := range procs {
				st := p.Stats()
				if st.Hits+st.Misses != st.ReadCalls+st.WriteCalls {
					t.Errorf("seed %d %v: hits %d + misses %d != calls %d",
						seed, alloc, st.Hits, st.Misses, st.ReadCalls+st.WriteCalls)
					return false
				}
				demand += st.DemandReads
				prefetch += st.Prefetches
				metaReads += st.MetadataReads
				writeBacks += st.WriteBacks
			}
			var diskReads, diskWrites int64
			for i := 0; i < 2; i++ {
				ds := sys.Disk(i).Stats()
				diskReads += ds.Reads
				diskWrites += ds.Writes
			}
			// Demand and metadata reads always complete (the process
			// waits on them); read-ahead issued just before the end of
			// the run can be abandoned in the disk queue, so the disk
			// may have served slightly fewer reads than were issued.
			accounted := demand + prefetch + metaReads
			if diskReads > accounted || accounted-diskReads > 16 {
				t.Errorf("seed %d %v: disk reads %d vs issued %d (demand %d + prefetch %d + meta %d)",
					seed, alloc, diskReads, accounted, demand, prefetch, metaReads)
				return false
			}
			// Write-backs counted at issue; the final sync counts
			// write-backs that never reach a disk, so disk writes can
			// only be lower.
			if diskWrites > writeBacks {
				t.Errorf("seed %d %v: disk writes %d > write-backs %d",
					seed, alloc, diskWrites, writeBacks)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestStressObliviousCriterion: with every process oblivious, all four
// kernels produce identical per-process I/O counts — the paper's first
// allocation criterion, end to end, on random workloads.
func TestStressObliviousCriterion(t *testing.T) {
	f := func(seed uint64) bool {
		var base []int64
		for ai, alloc := range []cache.Alloc{cache.GlobalLRU, cache.LRUSP, cache.LRUS, cache.AllocLRU} {
			_, procs := runScript(t, script{seed: seed, procs: 3}, alloc, false)
			var ios []int64
			for _, p := range procs {
				ios = append(ios, p.Stats().BlockIOs())
			}
			if ai == 0 {
				base = ios
				continue
			}
			for i := range ios {
				if ios[i] != base[i] {
					t.Errorf("seed %d: oblivious proc %d: %d I/Os under %v vs %d under global-lru",
						seed, i, ios[i], alloc, base[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestStressDeterminism: the same script twice gives bit-identical stats.
func TestStressDeterminism(t *testing.T) {
	collect := func() []core.ProcStats {
		_, procs := runScript(t, script{seed: 42, procs: 3}, cache.LRUSP, true)
		var out []core.ProcStats
		for _, p := range procs {
			out = append(out, p.Stats())
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("proc %d stats differ: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestStressSharedTransfer runs the random scripts with ownership
// following use and checks nothing breaks structurally.
func TestStressSharedTransfer(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 48 * core.BlockSize
	cfg.SharedFiles = true
	sys := core.NewSystem(cfg)
	f := sys.CreateFile("shared", 0, 60)
	for pi := 0; pi < 3; pi++ {
		pi := pi
		sys.Spawn(fmt.Sprintf("p%d", pi), func(p *core.Proc) {
			rng := sim.NewRand(uint64(100 + pi))
			if pi != 0 {
				p.EnableControl()
				p.SetPolicy(0, 1) // MRU
			}
			for i := 0; i < 600; i++ {
				p.Read(f, int32(rng.Intn(60)))
			}
		})
	}
	sys.Run()
	sys.Cache().CheckInvariants()
	sys.ACM().CheckInvariants()
	if sys.Cache().Stats().Transfers == 0 {
		t.Error("no ownership transfers on a contended shared file")
	}
}
