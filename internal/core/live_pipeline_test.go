package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
)

// failStore fails writes on demand, for the error-surfacing tests.
type failStore struct {
	disk.Store
	failWrites bool
}

var errBoom = errors.New("store on fire")

func (s *failStore) WriteBlock(file, blk int32, src []byte) error {
	if s.failWrites {
		return errBoom
	}
	return s.Store.WriteBlock(file, blk, src)
}

// TestLiveMissCoalescing pins the MSHR protocol at the kernel level: two
// requests for the same cold block share one fill — one store read, one
// executor hand-off — and completion fans the bytes out to both, the
// first as a miss and the joiner as a hit.
func TestLiveMissCoalescing(t *testing.T) {
	var fills []*core.Fill
	l := core.NewLive(core.LiveConfig{
		CacheBytes: 8 * core.BlockSize,
		Alloc:      cache.LRUSP,
		StartFill:  func(fl *core.Fill) { fills = append(fills, fl) },
	})
	ow := l.AddOwner("t")
	f, err := l.Create(ow, "f", 0, 4)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		data []byte
		hit  bool
		err  error
		done bool
	}
	var r1, r2 result
	if done := l.Read(ow, f.ID(), 0, 0, 8, func(data []byte, hit bool, err error) {
		r1 = result{data, hit, err, true}
	}); done {
		t.Fatal("first read completed synchronously with a manual executor")
	}
	if len(fills) != 1 {
		t.Fatalf("first miss dispatched %d fills, want 1", len(fills))
	}
	if done := l.Read(ow, f.ID(), 0, 0, 8, func(data []byte, hit bool, err error) {
		r2 = result{data, hit, err, true}
	}); done {
		t.Fatal("coalesced read completed before the fill")
	}
	if len(fills) != 1 {
		t.Fatalf("coalescing dispatched a second fill (%d total)", len(fills))
	}
	if got := l.Snapshot().Fill; got.StoreReads != 1 || got.CoalescedMisses != 1 {
		t.Errorf("fill stats = %+v, want 1 store read / 1 coalesced", got)
	}
	if l.PendingFills() != 1 {
		t.Errorf("PendingFills = %d, want 1", l.PendingFills())
	}

	want := bytes.Repeat([]byte{0x5a}, core.BlockSize)
	copy(fills[0].Data, want)
	l.CompleteFill(fills[0])

	if !r1.done || !r2.done {
		t.Fatalf("waiters not run: r1 %v r2 %v", r1.done, r2.done)
	}
	if r1.err != nil || r2.err != nil {
		t.Fatalf("waiter errors: %v / %v", r1.err, r2.err)
	}
	if r1.hit || !r2.hit {
		t.Errorf("hit flags: first %v (want miss), joiner %v (want hit)", r1.hit, r2.hit)
	}
	if !bytes.Equal(r1.data, want) || !bytes.Equal(r2.data, want) {
		t.Error("waiters saw different or wrong bytes")
	}
	l.CheckInvariants()
}

// TestLiveWritebackForwarding drives the write-behind protocol with a
// manual executor: a dirty victim's bytes sit in the pending table, a
// fill for that block copies them instead of reading the (stale) store,
// a re-dirtied re-evicted block is flagged Conflict, and completions
// settle the accounting.
func TestLiveWritebackForwarding(t *testing.T) {
	var wbs []*core.WriteBack
	store := disk.NewMemStore()
	l := core.NewLive(core.LiveConfig{
		CacheBytes:     2 * core.BlockSize,
		Alloc:          cache.LRUSP,
		Store:          store,
		StartWriteBack: func(wb *core.WriteBack) { wbs = append(wbs, wb) },
	})
	ow := l.AddOwner("t")
	f, err := l.Create(ow, "f", 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	blockOf := func(fill byte) []byte { return bytes.Repeat([]byte{fill}, core.BlockSize) }
	write := func(blk int32, fill byte) {
		t.Helper()
		var werr error
		l.Write(ow, f.ID(), blk, 0, blockOf(fill), func(hit bool, err error) { werr = err })
		if werr != nil {
			t.Fatalf("write blk %d: %v", blk, werr)
		}
	}
	read := func(blk int32) []byte {
		t.Helper()
		var got []byte
		var rerr error
		l.Read(ow, f.ID(), blk, 0, core.BlockSize, func(data []byte, hit bool, err error) {
			got, rerr = data, err
		})
		if rerr != nil {
			t.Fatalf("read blk %d: %v", blk, rerr)
		}
		return got
	}

	write(0, 0xa0)
	write(1, 0xa1)
	read(2) // evicts dirty blk0 -> first write-back
	if len(wbs) != 1 || wbs[0].ID.Num != 0 || wbs[0].Conflict {
		t.Fatalf("after first eviction: wbs %+v, want one non-conflict for blk 0", wbs)
	}
	if l.PendingWriteBacks() != 1 {
		t.Fatalf("PendingWriteBacks = %d, want 1", l.PendingWriteBacks())
	}

	// The store still holds nothing for blk0 (the executor hasn't run),
	// so this fill must forward from the pending write-back.
	if got := read(0); !bytes.Equal(got, blockOf(0xa0)) {
		t.Fatalf("fill of blk 0 did not forward the pending write-back bytes")
	}
	fill := l.Snapshot().Fill
	if fill.WritebackHits != 1 {
		t.Errorf("WritebackHits = %d, want 1", fill.WritebackHits)
	}

	// Reading blk0 evicted dirty blk1: second write-back, no conflict.
	if len(wbs) != 2 || wbs[1].ID.Num != 1 || wbs[1].Conflict {
		t.Fatalf("after second eviction: wbs %+v, want non-conflict for blk 1", wbs)
	}

	// Re-dirty blk0 and evict it again while its first write-back is
	// still pending: the new one must carry the Conflict flag.
	write(0, 0xb0)
	read(1) // evicts clean blk2 or dirty blk0 depending on recency; force blk0 out:
	read(2) // whichever order, blk0 (dirty, older than the fresh fills) goes
	var conflict *core.WriteBack
	for _, wb := range wbs[2:] {
		if wb.ID.Num == 0 {
			conflict = wb
		}
	}
	if conflict == nil || !conflict.Conflict {
		t.Fatalf("re-eviction of blk 0 with a pending write-back: wbs %+v, want Conflict", wbs)
	}
	if !bytes.Equal(conflict.Data, blockOf(0xb0)) {
		t.Error("conflict write-back carries stale bytes")
	}

	// Complete in FIFO order, as the real flusher does.
	for _, wb := range wbs {
		l.CompleteWriteBack(wb)
	}
	if l.PendingWriteBacks() != 0 {
		t.Errorf("PendingWriteBacks = %d after completing all, want 0", l.PendingWriteBacks())
	}
	st, _ := l.OwnerStats(ow)
	if st.WriteBacks != int64(len(wbs)) {
		t.Errorf("owner WriteBacks = %d, want %d", st.WriteBacks, len(wbs))
	}
	fill = l.Snapshot().Fill
	if fill.WritebacksQueued != int64(len(wbs)) {
		t.Errorf("WritebacksQueued = %d, want %d", fill.WritebacksQueued, len(wbs))
	}
	if fill.WritebackQueueHighWater < 2 {
		t.Errorf("WritebackQueueHighWater = %d, want >= 2", fill.WritebackQueueHighWater)
	}
	l.CheckInvariants()
}

// TestLiveWritebackErrorSurfaced pins the no-panic rule: a failing store
// write during eviction comes back through the request's callback as
// ErrWriteBack, is counted, and leaves the kernel serviceable.
func TestLiveWritebackErrorSurfaced(t *testing.T) {
	fs := &failStore{Store: disk.NewMemStore()}
	l := core.NewLive(core.LiveConfig{
		CacheBytes: 2 * core.BlockSize,
		Alloc:      cache.LRUSP,
		Store:      fs,
	})
	ow := l.AddOwner("t")
	f, err := l.Create(ow, "f", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{1}, core.BlockSize)
	for blk := int32(0); blk < 2; blk++ {
		l.Write(ow, f.ID(), blk, 0, block, func(hit bool, err error) {
			if err != nil {
				t.Fatalf("seed write %d: %v", blk, err)
			}
		})
	}

	fs.failWrites = true
	var got error
	l.Read(ow, f.ID(), 2, 0, 8, func(data []byte, hit bool, err error) { got = err })
	if !errors.Is(got, core.ErrWriteBack) {
		t.Fatalf("read that forced a failing write-back: err = %v, want ErrWriteBack", got)
	}
	if n := l.Snapshot().Fill.WritebackErrors; n != 1 {
		t.Errorf("WritebackErrors = %d, want 1", n)
	}

	// The kernel survives: the same read now succeeds (block already
	// cached from the fill) and a flush reports rather than panics.
	l.Read(ow, f.ID(), 2, 0, 8, func(data []byte, hit bool, err error) { got = err })
	if got != nil {
		t.Fatalf("kernel not serviceable after write-back error: %v", got)
	}
	if _, err := l.FlushDirty(core.MaxTime); !errors.Is(err, core.ErrWriteBack) {
		t.Errorf("FlushDirty over a failing store: err = %v, want ErrWriteBack", err)
	}
	fs.failWrites = false
	if n, err := l.FlushDirty(core.MaxTime); err != nil || n == 0 {
		t.Errorf("FlushDirty after store recovery: n=%d err=%v, want writes and nil", n, err)
	}
	l.CheckInvariants()
}

// TestLiveReadAhead pins the sequential detector's accounting: the
// second consecutive read triggers prefetch of the next depth blocks,
// prefetched blocks are not Referenced until demand touches them, and
// the prefetch counters tell the same story as ProcStats.
func TestLiveReadAhead(t *testing.T) {
	l := core.NewLive(core.LiveConfig{
		CacheBytes:     8 * core.BlockSize,
		Alloc:          cache.LRUSP,
		ReadAhead:      true,
		ReadAheadDepth: 2,
	})
	ow := l.AddOwner("t")
	f, err := l.Create(ow, "f", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	read := func(blk int32) bool {
		t.Helper()
		var hit bool
		l.Read(ow, f.ID(), blk, 0, 8, func(data []byte, h bool, err error) {
			if err != nil {
				t.Fatalf("read %d: %v", blk, err)
			}
			hit = h
		})
		return hit
	}

	read(0) // cold, no run yet
	read(1) // extends the run: prefetch blocks 2 and 3
	id2 := cache.BlockID{File: f.ID(), Num: 2}
	b2 := l.Cache().Peek(id2)
	if b2 == nil {
		t.Fatal("block 2 not prefetched")
	}
	if b2.Referenced {
		t.Error("prefetched block marked Referenced before any demand touch")
	}
	for blk := int32(2); blk < 6; blk++ {
		if !read(blk) {
			t.Errorf("read %d missed; want prefetch hit", blk)
		}
	}
	if !b2.Referenced {
		t.Error("demand touch did not set Referenced on the prefetched block")
	}

	st, _ := l.OwnerStats(ow)
	if st.Misses != 2 || st.Hits != 4 || st.DemandReads != 2 {
		t.Errorf("proc stats = %d misses / %d hits / %d demand reads, want 2/4/2", st.Misses, st.Hits, st.DemandReads)
	}
	if st.Prefetches != 4 {
		t.Errorf("Prefetches = %d, want 4 (blocks 2..5)", st.Prefetches)
	}
	fill := l.Snapshot().Fill
	if fill.PrefetchIssued != 4 || fill.PrefetchHits != 4 {
		t.Errorf("fill prefetch counters = %d issued / %d hits, want 4/4", fill.PrefetchIssued, fill.PrefetchHits)
	}
	if fill.StoreReads != 6 {
		t.Errorf("StoreReads = %d, want 6 (2 demand + 4 prefetch)", fill.StoreReads)
	}
	l.CheckInvariants()

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveReleaseOwnerSurfacesEvictError: the disconnect path (evict on
// release) reports a failing write-back instead of panicking.
func TestLiveReleaseOwnerSurfacesEvictError(t *testing.T) {
	fs := &failStore{Store: disk.NewMemStore()}
	l := core.NewLive(core.LiveConfig{
		CacheBytes:     4 * core.BlockSize,
		Alloc:          cache.LRUSP,
		Store:          fs,
		EvictOnRelease: true,
	})
	ow := l.AddOwner("t")
	f, err := l.Create(ow, "f", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	l.Write(ow, f.ID(), 0, 0, bytes.Repeat([]byte{7}, core.BlockSize), func(hit bool, err error) {})
	fs.failWrites = true
	if _, err := l.ReleaseOwner(ow); !errors.Is(err, core.ErrWriteBack) {
		t.Errorf("ReleaseOwner with failing store: err = %v, want ErrWriteBack", err)
	}
	l.CheckInvariants()
}

// TestLiveSnapshotIsolated guards against aliasing: mutating the kernel
// after Snapshot must not retroactively change the snapshot.
func TestLiveSnapshotIsolated(t *testing.T) {
	l := core.NewLive(core.LiveConfig{CacheBytes: 4 * core.BlockSize, Alloc: cache.LRUSP})
	ow := l.AddOwner("t")
	f, err := l.Create(ow, "f", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := l.Snapshot()
	l.Read(ow, f.ID(), 0, 0, 8, func(data []byte, hit bool, err error) {})
	if after := l.Snapshot(); before.Fill.StoreReads == after.Fill.StoreReads {
		t.Fatal(fmt.Sprintf("read did not move StoreReads (still %d)", after.Fill.StoreReads))
	}
	if before.Fill.StoreReads != 0 {
		t.Error("earlier snapshot mutated by later kernel activity")
	}
}
