package core_test

import (
	"fmt"
	"testing"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
)

func smallConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 50 * core.BlockSize
	return cfg
}

func TestCacheBlocksMatchesPaper(t *testing.T) {
	cases := map[float64]int{6.4: 819, 8: 1024, 12: 1536, 16: 2048}
	for mb, want := range cases {
		cfg := core.DefaultConfig()
		cfg.CacheBytes = core.MB(mb)
		if got := cfg.CacheBlocks(); got != want {
			t.Errorf("%.1f MB = %d blocks, want %d", mb, got, want)
		}
	}
}

func TestReadMissThenHit(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("data", 0, 100)
	var missTime, hitTime sim.Time
	p := sys.Spawn("app", func(p *core.Proc) {
		start := p.Now()
		p.Read(f, 10)
		missTime = p.Now() - start
		start = p.Now()
		p.Read(f, 10)
		hitTime = p.Now() - start
	})
	sys.Run()
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.ReadCalls != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.DemandReads != 1 {
		t.Errorf("DemandReads = %d, want 1", st.DemandReads)
	}
	if hitTime >= missTime {
		t.Errorf("hit (%v) not faster than miss (%v)", hitTime, missTime)
	}
	if hitTime > 2*sim.Millisecond {
		t.Errorf("hit cost %v unreasonably high", hitTime)
	}
	if missTime < 5*sim.Millisecond {
		t.Errorf("miss cost %v implausibly low for a disk access", missTime)
	}
}

func TestReadAheadOverlapsComputation(t *testing.T) {
	run := func(readAhead bool) (sim.Time, core.ProcStats) {
		cfg := smallConfig()
		cfg.ReadAhead = readAhead
		sys := core.NewSystem(cfg)
		f := sys.CreateFile("data", 0, 40)
		p := sys.Spawn("app", func(p *core.Proc) {
			for b := int32(0); b < 40; b++ {
				p.Read(f, b)
				p.Compute(8 * sim.Millisecond) // compute > transfer time
			}
		})
		sys.Run()
		return p.Elapsed(), p.Stats()
	}
	tOff, stOff := run(false)
	tOn, stOn := run(true)
	// Same total I/O: every block is read exactly once either way.
	if got, want := stOn.BlockIOs(), stOff.BlockIOs(); got != want {
		t.Errorf("read-ahead changed I/O count: %d vs %d", got, want)
	}
	if stOn.Prefetches == 0 {
		t.Error("no prefetches issued")
	}
	// Read-ahead hides transfer behind compute: clearly faster.
	if float64(tOn) > float64(tOff)*0.9 {
		t.Errorf("read-ahead elapsed %v, not much better than %v", tOn, tOff)
	}
}

func TestReadAheadStopsAtEOF(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("data", 0, 5)
	p := sys.Spawn("app", func(p *core.Proc) {
		for b := int32(0); b < 5; b++ {
			p.Read(f, b)
		}
	})
	sys.Run()
	if got := p.Stats().BlockIOs(); got != 5 {
		t.Errorf("BlockIOs = %d, want 5 (no phantom read past EOF)", got)
	}
}

func TestReadBeyondEOFPanics(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("data", 0, 5)
	sys.Spawn("app", func(p *core.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("read beyond EOF did not panic")
			}
		}()
		p.Read(f, 5)
	})
	sys.Run()
}

func TestWriteBehindAndUpdateDaemon(t *testing.T) {
	cfg := smallConfig()
	sys := core.NewSystem(cfg)
	p := sys.Spawn("writer", func(p *core.Proc) {
		f := p.CreateFile("out", 0, 0)
		p.WriteSeq(f, 0, 10)
		if p.Now() > 100*sim.Millisecond {
			t.Error("writes did not complete quickly (write-behind broken)")
		}
		p.Compute(70 * sim.Second) // let the update daemon run twice
	})
	sys.Run()
	st := p.Stats()
	if st.WriteCalls != 10 || st.Misses != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.WriteBacks != 10 {
		t.Errorf("WriteBacks = %d, want 10 (daemon flush)", st.WriteBacks)
	}
	if w := sys.Disk(0).Stats().Writes; w != 10 {
		t.Errorf("disk writes = %d, want 10", w)
	}
}

func TestFinalSyncCountsLeftoverDirty(t *testing.T) {
	cfg := smallConfig()
	sys := core.NewSystem(cfg)
	p := sys.Spawn("writer", func(p *core.Proc) {
		f := p.CreateFile("out", 0, 0)
		p.WriteSeq(f, 0, 7) // exit immediately: daemon never fires
	})
	sys.Run()
	if got := p.Stats().WriteBacks; got != 7 {
		t.Errorf("WriteBacks = %d, want 7 from final sync", got)
	}
}

func TestRemoveFileDiscardsDirty(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	p := sys.Spawn("tmp", func(p *core.Proc) {
		f := p.CreateFile("tmpfile", 0, 0)
		p.WriteSeq(f, 0, 8)
		p.RemoveFile(f)
	})
	sys.Run()
	if got := p.Stats().WriteBacks; got != 0 {
		t.Errorf("WriteBacks = %d, want 0 (unlinked before flush)", got)
	}
	if w := sys.Disk(0).Stats().Writes; w != 0 {
		t.Errorf("disk writes = %d, want 0", w)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := smallConfig()
	cfg.SyncInterval = 0 // no daemon; eviction must flush
	sys := core.NewSystem(cfg)
	p := sys.Spawn("app", func(p *core.Proc) {
		out := p.CreateFile("out", 0, 0)
		p.WriteSeq(out, 0, 10)
		big := p.CreateFile("big", 0, 200)
		p.ReadSeq(big, 0, 200) // evicts the dirty blocks
	})
	sys.Run()
	if got := p.Stats().WriteBacks; got != 10 {
		t.Errorf("WriteBacks = %d, want 10 via eviction", got)
	}
}

func TestPartialAccessesShareOneMiss(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("data", 0, 10)
	p := sys.Spawn("app", func(p *core.Proc) {
		for off := 0; off < core.BlockSize; off += 1024 {
			p.Access(f, 3, off, 1024) // many small reads of one block
		}
	})
	sys.Run()
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 7 {
		t.Errorf("stats = %+v, want 1 miss 7 hits", st)
	}
}

func TestMRUPolicyEndToEnd(t *testing.T) {
	// The din pattern: a file slightly larger than the cache scanned
	// repeatedly. Smart (MRU) must beat oblivious (LRU) on block I/Os.
	run := func(smart bool) int64 {
		cfg := smallConfig() // 50-block cache
		sys := core.NewSystem(cfg)
		f := sys.CreateFile("trace", 0, 60)
		p := sys.Spawn("din", func(p *core.Proc) {
			if smart {
				if err := p.EnableControl(); err != nil {
					t.Fatal(err)
				}
				p.SetPriority(f, 0)
				p.SetPolicy(0, acm.MRU)
			}
			for scan := 0; scan < 5; scan++ {
				p.ReadSeq(f, 0, 60)
			}
		})
		sys.Run()
		return p.Stats().BlockIOs()
	}
	oblivious, smart := run(false), run(true)
	if oblivious != 5*60 {
		t.Errorf("oblivious I/Os = %d, want 300 (pure thrash)", oblivious)
	}
	if smart*2 >= oblivious {
		t.Errorf("smart I/Os = %d, want less than half of %d", smart, oblivious)
	}
}

func TestFbehaviorRequiresControl(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("data", 0, 5)
	sys.Spawn("app", func(p *core.Proc) {
		if p.Controlled() {
			t.Error("Controlled true before EnableControl")
		}
		defer func() {
			if recover() == nil {
				t.Error("SetPriority without control did not panic")
			}
		}()
		p.SetPriority(f, 1)
	})
	sys.Run()
}

func TestControlLifecycle(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("data", 0, 5)
	sys.Spawn("app", func(p *core.Proc) {
		if err := p.EnableControl(); err != nil {
			t.Fatal(err)
		}
		if err := p.EnableControl(); err == nil {
			t.Error("double EnableControl succeeded")
		}
		if !p.Controlled() || p.Manager() == nil {
			t.Error("not controlled after EnableControl")
		}
		p.SetPriority(f, 2)
		if p.GetPriority(f) != 2 {
			t.Error("GetPriority wrong")
		}
		p.SetPolicy(2, acm.MRU)
		if p.GetPolicy(2) != acm.MRU {
			t.Error("GetPolicy wrong")
		}
		p.Read(f, 0)
		p.SetTempPri(f, 0, 0, -1)
		p.DisableControl()
		if p.Controlled() {
			t.Error("still controlled after DisableControl")
		}
		p.DisableControl() // idempotent
	})
	sys.Run()
}

func TestConcurrentProcessesContend(t *testing.T) {
	solo := func() sim.Time {
		sys := core.NewSystem(smallConfig())
		f := sys.CreateFile("a", 0, 100)
		p := sys.Spawn("a", func(p *core.Proc) { p.ReadSeq(f, 0, 100) })
		sys.Run()
		return p.Elapsed()
	}()
	shared := func() sim.Time {
		sys := core.NewSystem(smallConfig())
		fa := sys.CreateFile("a", 0, 100)
		fb := sys.CreateFile("b", 0, 100)
		pa := sys.Spawn("a", func(p *core.Proc) { p.ReadSeq(fa, 0, 100) })
		sys.Spawn("b", func(p *core.Proc) { p.ReadSeq(fb, 0, 100) })
		sys.Run()
		return pa.Elapsed()
	}()
	if shared <= solo {
		t.Errorf("contended run (%v) not slower than solo (%v)", shared, solo)
	}
}

func TestSeparateDisksOverlap(t *testing.T) {
	run := func(sameDisk bool) sim.Time {
		sys := core.NewSystem(smallConfig())
		bDisk := 1
		if sameDisk {
			bDisk = 0
		}
		fa := sys.CreateFile("a", 0, 150)
		fb := sys.CreateFile("b", bDisk, 150)
		sys.Spawn("a", func(p *core.Proc) { p.ReadSeq(fa, 0, 150) })
		sys.Spawn("b", func(p *core.Proc) { p.ReadSeq(fb, 0, 150) })
		sys.Run()
		return sys.Engine().Now()
	}
	same, split := run(true), run(false)
	if split >= same {
		t.Errorf("two-disk run (%v) not faster than one-disk (%v)", split, same)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (sim.Time, int64) {
		sys := core.NewSystem(core.DefaultConfig())
		f := sys.CreateFile("data", 0, 500)
		p := sys.Spawn("app", func(p *core.Proc) {
			if err := p.EnableControl(); err != nil {
				t.Fatal(err)
			}
			p.SetPolicy(0, acm.MRU)
			rng := sim.NewRand(42)
			for i := 0; i < 2000; i++ {
				p.Read(f, int32(rng.Intn(500)))
				p.Compute(sim.Millisecond)
			}
		})
		sys.Run()
		return p.Elapsed(), p.Stats().BlockIOs()
	}
	e1, io1 := run()
	e2, io2 := run()
	if e1 != e2 || io1 != io2 {
		t.Errorf("runs differ: (%v, %d) vs (%v, %d)", e1, io1, e2, io2)
	}
}

func TestObliviousUnchangedAcrossKernels(t *testing.T) {
	// Criterion 1 end-to-end: an oblivious process has identical block
	// I/Os under the original kernel and under LRU-SP.
	run := func(alloc cache.Alloc) int64 {
		cfg := smallConfig()
		cfg.Alloc = alloc
		sys := core.NewSystem(cfg)
		f := sys.CreateFile("data", 0, 120)
		p := sys.Spawn("app", func(p *core.Proc) {
			rng := sim.NewRand(9)
			for i := 0; i < 3000; i++ {
				p.Read(f, int32(rng.Intn(120)))
			}
		})
		sys.Run()
		return p.Stats().BlockIOs()
	}
	if a, b := run(cache.GlobalLRU), run(cache.LRUSP); a != b {
		t.Errorf("oblivious I/Os differ: global-lru %d, lru-sp %d", a, b)
	}
}

func TestStatsComputeTime(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	p := sys.Spawn("app", func(p *core.Proc) {
		p.Compute(3 * sim.Second)
	})
	sys.Run()
	if p.Stats().ComputeTime != 3*sim.Second {
		t.Errorf("ComputeTime = %v", p.Stats().ComputeTime)
	}
	if p.Elapsed() != 3*sim.Second {
		t.Errorf("Elapsed = %v", p.Elapsed())
	}
	if len(sys.Procs()) != 1 || sys.Procs()[0] != p {
		t.Error("Procs() wrong")
	}
	if p.Name() != "app" || p.ID() != 0 {
		t.Error("identity wrong")
	}
}

func TestSharedFileOwnershipFollowsUse(t *testing.T) {
	// Two processes take turns scanning one shared file cyclically. With
	// SharedFiles on, whoever is active owns the blocks and its MRU
	// policy protects the shared prefix; the handoff must not lose the
	// cached contents.
	cfg := smallConfig() // 50-block cache
	cfg.SharedFiles = true
	sys := core.NewSystem(cfg)
	f := sys.CreateFile("shared", 0, 40)
	a := sys.Spawn("a", func(p *core.Proc) {
		if err := p.EnableControl(); err != nil {
			t.Error(err)
			return
		}
		p.SetPolicy(0, acm.MRU)
		p.ReadSeq(f, 0, 40)
	})
	b := sys.Spawn("b", func(p *core.Proc) {
		p.Compute(20 * sim.Second) // run strictly after a
		if err := p.EnableControl(); err != nil {
			t.Error(err)
			return
		}
		p.SetPolicy(0, acm.MRU)
		p.ReadSeq(f, 0, 40)
	})
	sys.Run()
	if got := a.Stats().BlockIOs(); got != 40 {
		t.Errorf("a did %d I/Os, want 40 compulsory", got)
	}
	// b arrives after a finished: every block is still cached, and each
	// hit transfers ownership.
	if got := b.Stats().BlockIOs(); got != 0 {
		t.Errorf("b did %d I/Os, want 0 (shared cache contents)", got)
	}
	if tr := sys.Cache().Stats().Transfers; tr != 40 {
		t.Errorf("Transfers = %d, want 40", tr)
	}
}

func TestSharedFilesOffNoTransfer(t *testing.T) {
	cfg := smallConfig()
	sys := core.NewSystem(cfg)
	f := sys.CreateFile("shared", 0, 10)
	sys.Spawn("a", func(p *core.Proc) { p.ReadSeq(f, 0, 10) })
	sys.Spawn("b", func(p *core.Proc) {
		p.Compute(5 * sim.Second)
		p.ReadSeq(f, 0, 10)
	})
	sys.Run()
	if tr := sys.Cache().Stats().Transfers; tr != 0 {
		t.Errorf("Transfers = %d with SharedFiles off", tr)
	}
}

func TestWriteAccessReadModifyWrite(t *testing.T) {
	cfg := smallConfig()
	sys := core.NewSystem(cfg)
	f := sys.CreateFile("data", 0, 10)
	p := sys.Spawn("app", func(p *core.Proc) {
		// Partial write to an uncached existing block: must read first.
		p.WriteAccess(f, 3, 100, 512)
		st := p.Stats()
		if st.DemandReads != 1 {
			t.Errorf("partial write did %d reads, want 1 (RMW)", st.DemandReads)
		}
		// Partial write to the now-cached block: no further read.
		p.WriteAccess(f, 3, 700, 512)
		if got := p.Stats().DemandReads; got != 1 {
			t.Errorf("cached partial write read again: %d", got)
		}
		// Full-block write path via WriteAccess delegates to Write.
		p.WriteAccess(f, 4, 0, core.BlockSize)
		if got := p.Stats().DemandReads; got != 1 {
			t.Errorf("full-block write read the block: %d", got)
		}
	})
	sys.Run()
	if p.Stats().WriteCalls != 3 {
		t.Errorf("WriteCalls = %d, want 3", p.Stats().WriteCalls)
	}
}

func TestWriteAccessGrowSkipsRead(t *testing.T) {
	// A partial write that extends the file writes into a fresh block:
	// nothing to read back.
	sys := core.NewSystem(smallConfig())
	p := sys.Spawn("app", func(p *core.Proc) {
		f := p.CreateFile("new", 0, 0)
		p.WriteAccess(f, 0, 0, 1000)
		if got := p.Stats().DemandReads; got != 0 {
			t.Errorf("grow-write read %d blocks, want 0", got)
		}
		if f.Size() != 1 {
			t.Errorf("file size = %d, want 1", f.Size())
		}
	})
	sys.Run()
	if p.Stats().WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want 1", p.Stats().WriteBacks)
	}
}

func TestSpreadSyncSmoothsWrites(t *testing.T) {
	// A writer dirties blocks steadily while a reader does latency-
	// sensitive reads on the same disk. Burst sync dumps all aged blocks
	// at once; spread sync trickles them.
	run := func(spread bool) (maxQueue int) {
		cfg := core.DefaultConfig()
		cfg.CacheBytes = core.MB(6.4)
		cfg.SpreadSync = spread
		sys := core.NewSystem(cfg)
		p := sys.Spawn("writer", func(p *core.Proc) {
			f := p.CreateFile("log", 0, 0)
			for b := int32(0); b < 600; b++ {
				p.Write(f, b)
				p.Compute(100 * sim.Millisecond)
			}
		})
		sys.Run()
		_ = p
		return sys.Disk(0).Stats().MaxQueue
	}
	burst, spread := run(false), run(true)
	if spread >= burst {
		t.Errorf("spread sync max queue %d not below burst sync's %d", spread, burst)
	}
}

func TestSpreadSyncSameWriteCount(t *testing.T) {
	run := func(spread bool) int64 {
		cfg := core.DefaultConfig()
		cfg.SpreadSync = spread
		sys := core.NewSystem(cfg)
		p := sys.Spawn("writer", func(p *core.Proc) {
			f := p.CreateFile("log", 0, 0)
			p.WriteSeq(f, 0, 50)
			p.Compute(70 * sim.Second)
		})
		sys.Run()
		return p.Stats().WriteBacks
	}
	if b, s := run(false), run(true); b != s {
		t.Errorf("write counts differ: burst %d vs spread %d", b, s)
	}
}

func TestSystemAccessors(t *testing.T) {
	cfg := smallConfig()
	sys := core.NewSystem(cfg)
	if sys.FS() == nil || sys.Engine() == nil || sys.ACM() == nil || sys.InodeCache() == nil {
		t.Error("accessor returned nil")
	}
	if sys.Config().CacheBytes != cfg.CacheBytes {
		t.Error("Config accessor wrong")
	}
	if sys.Cache().Alloc() != cfg.Alloc {
		t.Error("Alloc accessor wrong")
	}
	// Metadata modelling off -> nil inode cache.
	cfg.MetaCacheEntries = 0
	if core.NewSystem(cfg).InodeCache() != nil {
		t.Error("inode cache built despite MetaCacheEntries=0")
	}
}

func TestCacheBlocksFloor(t *testing.T) {
	cfg := core.Config{CacheBytes: 1} // less than a block
	if cfg.CacheBlocks() != 1 {
		t.Errorf("CacheBlocks = %d, want floor of 1", cfg.CacheBlocks())
	}
}

func TestCreateFilePanicsOnDuplicate(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	sys.CreateFile("dup", 0, 1)
	sys.Spawn("app", func(p *core.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("duplicate CreateFile did not panic")
			}
		}()
		p.CreateFile("dup", 0, 1)
	})
	sys.Run()
}

func TestRemoveFilePanicsOnMissing(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	f := sys.CreateFile("once", 0, 1)
	sys.Spawn("app", func(p *core.Proc) {
		p.RemoveFile(f)
		defer func() {
			if recover() == nil {
				t.Error("double RemoveFile did not panic")
			}
		}()
		p.RemoveFile(f)
	})
	sys.Run()
}

func TestDaemonFlushOfRemovedFile(t *testing.T) {
	// A file removed between dirtying and a daemon tick: the dirty blocks
	// vanish with InvalidateFile, so the daemon has nothing to flush and
	// no I/O is charged.
	cfg := smallConfig()
	sys := core.NewSystem(cfg)
	p := sys.Spawn("app", func(p *core.Proc) {
		f := p.CreateFile("tmp", 0, 0)
		p.WriteSeq(f, 0, 5)
		p.RemoveFile(f)
		p.Compute(40 * sim.Second) // daemon ticks after removal
	})
	sys.Run()
	if p.Stats().WriteBacks != 0 {
		t.Errorf("WriteBacks = %d, want 0", p.Stats().WriteBacks)
	}
}

func TestOpenEmptyFileNoDiskRead(t *testing.T) {
	sys := core.NewSystem(smallConfig())
	p := sys.Spawn("app", func(p *core.Proc) {
		f := p.CreateFile("empty2", 1, 0)
		// Fill the inode cache so a later Open misses.
		for i := 0; i < 400; i++ {
			g := p.CreateFile(fmt.Sprintf("filler%d", i), 0, 0)
			p.Open(g)
		}
		p.Open(f) // inode miss on an empty file: CPU only
	})
	sys.Run()
	if r := sys.Disk(1).Stats().Reads; r != 0 {
		t.Errorf("empty-file open read %d blocks", r)
	}
	if p.Stats().MetadataReads == 0 {
		t.Error("expected at least one metadata miss")
	}
}

func TestWaitValidMultipleWaiters(t *testing.T) {
	// Two processes hit the same in-flight block: both must sleep until
	// the fill completes, and only one disk read happens.
	cfg := smallConfig()
	cfg.ReadAhead = false
	sys := core.NewSystem(cfg)
	f := sys.CreateFile("data", 0, 5)
	var tA, tB sim.Time
	sys.Spawn("a", func(p *core.Proc) {
		p.Read(f, 0)
		tA = p.Now()
	})
	sys.Spawn("b", func(p *core.Proc) {
		p.Read(f, 0) // same block, same instant
		tB = p.Now()
	})
	sys.Run()
	if r := sys.Disk(0).Stats().Reads; r != 1 {
		t.Errorf("disk reads = %d, want 1 (second access waits, not re-reads)", r)
	}
	if tB < tA {
		t.Errorf("b (%v) finished before a (%v)?", tB, tA)
	}
}
