package core

import (
	"repro/internal/acm"
	"repro/internal/fs"
	"repro/internal/sim"
)

// CtlOp enumerates the control-plane operations Config.TraceCtl reports:
// the five fbehavior calls plus file creation and removal. Together with
// Config.Trace (the block accesses) the two streams record everything a
// workload did to the cache, which is what a wire-level replay needs to
// reproduce a run exactly.
type CtlOp uint8

// Control-plane operations.
const (
	// CtlControl is EnableControl (Enable true) or DisableControl.
	CtlControl CtlOp = iota
	// CtlSetPriority carries File, FileName and Prio.
	CtlSetPriority
	// CtlSetPolicy carries Prio and Policy.
	CtlSetPolicy
	// CtlSetTempPri carries File, FileName, the [Start, End] block range
	// and Prio.
	CtlSetTempPri
	// CtlCreateFile carries File, FileName, Disk and SizeBlocks. Events
	// with Proc -1 come from System.CreateFile (pre-run file population);
	// non-negative Proc means a process created the file mid-run.
	CtlCreateFile
	// CtlRemoveFile carries File and FileName.
	CtlRemoveFile
)

// CtlEvent describes one successful control-plane operation for
// Config.TraceCtl. Failed calls (limit exceeded, bad arguments) are not
// reported: they changed nothing, so a replay has nothing to redo.
type CtlEvent struct {
	Time sim.Time
	Proc int // process id, or -1 for pre-run System calls
	Op   CtlOp

	File     fs.FileID // target file, when the op has one
	FileName string
	Disk     int // CtlCreateFile: placement disk
	Size     int // CtlCreateFile: initial size in blocks

	Prio       int        // priority argument
	Policy     acm.Policy // CtlSetPolicy
	Start, End int32      // CtlSetTempPri block range
	Enable     bool       // CtlControl
}

// ctlTrace reports a process-issued control event.
func (p *Proc) ctlTrace(ev CtlEvent) {
	if t := p.sys.cfg.TraceCtl; t != nil {
		ev.Time = p.sp.Now()
		ev.Proc = p.id
		t(ev)
	}
}

// ctlTraceSys reports a pre-run (System-level) control event.
func (s *System) ctlTraceSys(ev CtlEvent) {
	if t := s.cfg.TraceCtl; t != nil {
		ev.Time = s.eng.Now()
		ev.Proc = -1
		t(ev)
	}
}
