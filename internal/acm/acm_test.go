package acm_test

import (
	"testing"
	"testing/quick"

	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/fs"
	"repro/internal/sim"
)

// levelSizes converts LevelSizes' sorted slice to a map for the
// absent-means-zero indexing the assertions below use.
func levelSizes(m *acm.Manager) map[int]int {
	out := make(map[int]int)
	for _, ls := range m.LevelSizes(nil) {
		out[ls.Prio] = ls.N
	}
	return out
}

// harness wires a real cache to the ACM, standing in for the core kernel.
type harness struct {
	c   *cache.Cache
	a   *acm.ACM
	now sim.Time
}

func newHarness(t *testing.T, capacity int, alloc cache.Alloc) *harness {
	t.Helper()
	h := &harness{}
	h.a = acm.New(func() sim.Time { return h.now }, acm.Limits{})
	h.c = cache.New(cache.Config{Capacity: capacity, Alloc: alloc}, h.a)
	return h
}

// read touches block (file, num) on behalf of owner and reports a hit.
func (h *harness) read(owner int, file fs.FileID, num int32) bool {
	id := cache.BlockID{File: file, Num: num}
	if b := h.c.Lookup(id, 0, 8192); b != nil {
		return true
	}
	h.c.Insert(id, owner, h.now)
	return false
}

func TestManagerLifecycle(t *testing.T) {
	h := newHarness(t, 8, cache.LRUSP)
	m, err := h.a.CreateManager(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.a.CreateManager(1); err == nil {
		t.Error("duplicate CreateManager succeeded")
	}
	if !h.a.Managed(1) || h.a.Managed(2) {
		t.Error("Managed wrong")
	}
	got, ok := h.a.ManagerOf(1)
	if !ok || got != m {
		t.Error("ManagerOf wrong")
	}
	h.read(1, 10, 0)
	h.read(1, 10, 1)
	if m.NewBlocks != 2 {
		t.Errorf("NewBlocks = %d, want 2", m.NewBlocks)
	}
	h.a.DestroyManager(1)
	if h.a.Managed(1) {
		t.Error("still managed after destroy")
	}
	h.a.DestroyManager(1) // idempotent
	// Blocks became unmanaged: further traffic must not consult the ACM.
	for i := int32(0); i < 20; i++ {
		h.read(1, 10, i)
	}
	if m.Decisions != 0 {
		t.Errorf("destroyed manager consulted %d times", m.Decisions)
	}
	h.a.CheckInvariants()
}

func TestManagerLimit(t *testing.T) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{MaxManagers: 2, MaxLevels: 4, MaxFileRecords: 4})
	if _, err := a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateManager(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateManager(3); err == nil {
		t.Error("manager limit not enforced")
	}
}

func TestLevelAndFileLimits(t *testing.T) {
	a := acm.New(func() sim.Time { return 0 }, acm.Limits{MaxManagers: 4, MaxLevels: 2, MaxFileRecords: 2})
	m, _ := a.CreateManager(1)
	if err := m.SetPolicy(0, acm.MRU); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPolicy(1, acm.LRU); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPolicy(2, acm.MRU); err == nil {
		t.Error("level limit not enforced")
	}
	if err := m.SetPriority(100, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPriority(101, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPriority(102, 1); err == nil {
		t.Error("file record limit not enforced")
	}
	// Resetting to the default priority frees a record.
	if err := m.SetPriority(100, acm.DefaultPriority); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPriority(102, 1); err != nil {
		t.Errorf("record not freed: %v", err)
	}
}

func TestPolicyValidation(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	if err := m.SetPolicy(0, acm.Policy(9)); err == nil {
		t.Error("bad policy accepted")
	}
	if m.PolicyOf(0) != acm.LRU {
		t.Error("default policy not LRU")
	}
	m.SetPolicy(0, acm.MRU)
	if m.PolicyOf(0) != acm.MRU {
		t.Error("SetPolicy did not stick")
	}
	if acm.LRU.String() != "LRU" || acm.MRU.String() != "MRU" {
		t.Error("Policy.String wrong")
	}
}

func TestPriorityGetSet(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	if m.Priority(5) != acm.DefaultPriority {
		t.Error("default priority wrong")
	}
	m.SetPriority(5, -1)
	if m.Priority(5) != -1 {
		t.Error("SetPriority did not stick")
	}
}

// TestMRUBeatsLRUOnCyclicScan is the paper's central single-application
// claim in miniature: repeated sequential scans of a file larger than the
// cache thrash under LRU but mostly hit under MRU.
func TestMRUBeatsLRUOnCyclicScan(t *testing.T) {
	const capacity, fileBlocks, scans = 50, 60, 5
	run := func(smart bool) int64 {
		h := newHarness(t, capacity, cache.LRUSP)
		m, _ := h.a.CreateManager(1)
		if smart {
			m.SetPolicy(0, acm.MRU)
		}
		for s := 0; s < scans; s++ {
			for b := int32(0); b < fileBlocks; b++ {
				h.read(1, 7, b)
			}
		}
		h.a.CheckInvariants()
		h.c.CheckInvariants()
		return h.c.Stats().Misses
	}
	lru, mru := run(false), run(true)
	if lru != fileBlocks*scans {
		t.Errorf("LRU misses = %d, want %d (pure thrash)", lru, fileBlocks*scans)
	}
	// MRU keeps a prefix resident: compulsory (60) plus roughly
	// (fileBlocks - capacity + small erosion) per later scan.
	maxWant := int64(fileBlocks + scans*(fileBlocks-capacity+3))
	if mru >= lru/2 || mru > maxWant {
		t.Errorf("MRU misses = %d, want far fewer than LRU's %d (<= %d)", mru, lru, maxWant)
	}
}

// TestPriorityPoolsProtectHotFile: a high-priority file must survive
// pressure from a low-priority scan, as with glimpse's index files.
func TestPriorityPoolsProtectHotFile(t *testing.T) {
	const capacity = 40
	h := newHarness(t, capacity, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	hot, cold := fs.FileID(1), fs.FileID(2)
	m.SetPriority(hot, 1)
	// Load the hot file (20 blocks).
	for b := int32(0); b < 20; b++ {
		h.read(1, hot, b)
	}
	// Blast through 200 cold blocks.
	for b := int32(0); b < 200; b++ {
		h.read(1, cold, b)
	}
	// Every hot block must still be cached.
	for b := int32(0); b < 20; b++ {
		if !h.read(1, hot, b) {
			t.Fatalf("hot block %d evicted by cold traffic", b)
		}
	}
	sizes := levelSizes(m)
	if sizes[1] != 20 {
		t.Errorf("priority-1 pool holds %d, want 20", sizes[1])
	}
	h.a.CheckInvariants()
}

// TestNegativePriorityReplacedFirst: priority -1 blocks go before priority
// 0 blocks regardless of recency (sort's input file).
func TestNegativePriorityReplacedFirst(t *testing.T) {
	h := newHarness(t, 10, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	junk, keep := fs.FileID(1), fs.FileID(2)
	m.SetPriority(junk, -1)
	for b := int32(0); b < 5; b++ {
		h.read(1, keep, b)
	}
	for b := int32(0); b < 5; b++ {
		h.read(1, junk, b)
	}
	// New traffic must evict junk blocks first even though they are the
	// most recently used.
	for b := int32(10); b < 15; b++ {
		h.read(1, keep, b)
	}
	for b := int32(0); b < 5; b++ {
		if !h.read(1, keep, b) {
			t.Fatalf("keep block %d evicted while junk remained", b)
		}
	}
	h.a.CheckInvariants()
}

// TestSetTempPriFlushes: the done-with pattern — a temporary priority of
// -1 flushes a block ahead of everything else.
func TestSetTempPriFlushes(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	f := fs.FileID(3)
	for b := int32(0); b < 4; b++ {
		h.read(1, f, b)
	}
	// Mark block 3 (the most recently used!) done-with.
	if err := m.SetTempPri(f, 3, 3, -1); err != nil {
		t.Fatal(err)
	}
	h.read(1, f, 10) // miss: must evict block 3, not block 0
	if h.read(1, f, 3) {
		t.Error("done-with block survived; wrong victim chosen")
	}
	// Block 0, the LRU block, must still be cached (one miss for blk 10,
	// one for blk 3 re-read evicting someone else — 0 had highest prio).
	h.a.CheckInvariants()
}

// TestTempPriRevertsOnAccess: a temporary priority lasts only until the
// next reference.
func TestTempPriRevertsOnAccess(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	f := fs.FileID(3)
	for b := int32(0); b < 3; b++ {
		h.read(1, f, b)
	}
	m.SetTempPri(f, 1, 1, -1)
	sizes := levelSizes(m)
	if sizes[-1] != 1 || sizes[0] != 2 {
		t.Fatalf("LevelSizes = %v, want {-1:1, 0:2}", sizes)
	}
	// Touch block 1: it reverts to priority 0.
	h.read(1, f, 1)
	sizes = levelSizes(m)
	if sizes[-1] != 0 || sizes[0] != 3 {
		t.Fatalf("after access LevelSizes = %v, want {0:3}", sizes)
	}
	h.a.CheckInvariants()
}

func TestTempPriRangeValidation(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	if err := m.SetTempPri(1, 5, 2, -1); err == nil {
		t.Error("inverted range accepted")
	}
}

// TestSetPriorityMovesCachedBlocks: raising a file's priority moves its
// blocks into the new pool immediately (cscope keeping cscope.out).
func TestSetPriorityMovesCachedBlocks(t *testing.T) {
	h := newHarness(t, 8, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	f := fs.FileID(4)
	for b := int32(0); b < 4; b++ {
		h.read(1, f, b)
	}
	m.SetPriority(f, 2)
	sizes := levelSizes(m)
	if sizes[2] != 4 {
		t.Fatalf("LevelSizes = %v, want 4 blocks at priority 2", sizes)
	}
	// And back down.
	m.SetPriority(f, 0)
	sizes = levelSizes(m)
	if sizes[0] != 4 {
		t.Fatalf("LevelSizes = %v, want 4 blocks at priority 0", sizes)
	}
	h.a.CheckInvariants()
}

// TestTempPriSurvivesSetPriority: a block parked at a temporary priority
// stays there when the file's long-term priority changes; it reverts to
// the *new* long-term priority on its next access.
func TestTempPriSurvivesSetPriority(t *testing.T) {
	h := newHarness(t, 8, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	f := fs.FileID(4)
	for b := int32(0); b < 3; b++ {
		h.read(1, f, b)
	}
	m.SetTempPri(f, 0, 0, 5)
	m.SetPriority(f, 1)
	sizes := levelSizes(m)
	if sizes[5] != 1 || sizes[1] != 2 {
		t.Fatalf("LevelSizes = %v, want {5:1, 1:2}", sizes)
	}
	h.read(1, f, 0) // revert: goes to the new long-term level 1
	sizes = levelSizes(m)
	if sizes[5] != 0 || sizes[1] != 3 {
		t.Fatalf("after access LevelSizes = %v, want {1:3}", sizes)
	}
	h.a.CheckInvariants()
}

// TestMovedBlocksLandAtLaterReplacedEnd checks the paper's movement rule:
// into an LRU pool at the MRU end, into an MRU pool at the LRU end.
func TestMovedBlocksLandAtLaterReplacedEnd(t *testing.T) {
	h := newHarness(t, 8, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	a, b := fs.FileID(1), fs.FileID(2)
	h.read(1, a, 0) // pool 0 order: a0 ...
	h.read(1, b, 0)
	h.read(1, b, 1) // pool 0 order: a0, b0, b1 (LRU -> MRU)
	// Move file a to the (LRU-policy) pool 1: lands at the MRU end.
	m.SetPriority(a, 1)
	h.read(1, b, 2)
	m.SetPriority(b, 1) // b0, b1, b2 move; order must be b0, b1, b2 after a0
	order := m.PoolOrder(1)
	want := []cache.BlockID{{File: a, Num: 0}, {File: b, Num: 0}, {File: b, Num: 1}, {File: b, Num: 2}}
	if len(order) != len(want) {
		t.Fatalf("pool order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pool order %v, want %v", order, want)
		}
	}
	// Now an MRU pool: movers land at the LRU end (replaced later under
	// MRU means least-recently-used end).
	m.SetPolicy(2, acm.MRU)
	m.SetPriority(a, 2) // a0 first mover
	m.SetPriority(b, 2) // b blocks must land *before* a0
	order = m.PoolOrder(2)
	if order[len(order)-1] != (cache.BlockID{File: a, Num: 0}) {
		t.Fatalf("MRU pool order %v: movers should push earlier arrivals toward the MRU end", order)
	}
	h.a.CheckInvariants()
}

// TestVictimSkipsBusyBlocks: the manager must not give up a block whose
// read I/O is still in flight.
func TestVictimSkipsBusyBlocks(t *testing.T) {
	h := newHarness(t, 3, cache.LRUSP)
	h.a.CreateManager(1)
	h.read(1, 1, 0)
	h.read(1, 1, 1)
	h.read(1, 1, 2)
	// Make the LRU block busy.
	h.c.Peek(cache.BlockID{File: 1, Num: 0}).ValidAt = 100
	h.now = 0
	h.read(1, 1, 3) // must evict block 1, not busy block 0
	if h.c.Peek(cache.BlockID{File: 1, Num: 0}) == nil {
		t.Error("busy block was evicted")
	}
	if h.c.Peek(cache.BlockID{File: 1, Num: 1}) != nil {
		t.Error("expected block 1 to be the victim")
	}
}

// TestObliviousManagerStillLRU: a manager that sets no policies behaves
// exactly like LRU (criterion 1 at the ACM level): same misses as an
// unmanaged run.
func TestObliviousManagerStillLRU(t *testing.T) {
	trace := make([][2]int32, 0, 4000)
	rng := sim.NewRand(12)
	for i := 0; i < 4000; i++ {
		trace = append(trace, [2]int32{int32(1 + rng.Intn(2)), int32(rng.Intn(50))})
	}
	run := func(managed bool) int64 {
		h := newHarness(t, 30, cache.LRUSP)
		if managed {
			h.a.CreateManager(1)
		}
		for _, tr := range trace {
			h.read(1, fs.FileID(tr[0]), tr[1])
		}
		return h.c.Stats().Misses
	}
	if m0, m1 := run(false), run(true); m0 != m1 {
		t.Errorf("managed-but-oblivious misses %d != unmanaged %d", m1, m0)
	}
}

// TestQuickACMInvariants hits the ACM with random fbehavior traffic —
// two managed owners over shared files with ownership transfer, plus
// random revocation flips — and checks structural invariants.
func TestQuickACMInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		h := &harness{}
		h.a = acm.New(func() sim.Time { return h.now }, acm.Limits{})
		h.c = cache.New(cache.Config{Capacity: 20, Alloc: cache.LRUSP, SharedTransfer: true}, h.a)
		m, _ := h.a.CreateManager(1)
		if _, err := h.a.CreateManager(2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			switch rng.Intn(12) {
			case 0:
				m.SetPriority(fs.FileID(1+rng.Intn(3)), rng.Intn(3)-1)
			case 1:
				m.SetPolicy(rng.Intn(3)-1, acm.Policy(rng.Intn(2)))
			case 2:
				lo := int32(rng.Intn(30))
				m.SetTempPri(fs.FileID(1+rng.Intn(3)), lo, lo+int32(rng.Intn(5)), rng.Intn(3)-1)
			case 3:
				// Revocation must leave evictions and transfers of the
				// owner's still-linked blocks structurally clean.
				h.c.Owner(1+rng.Intn(2)).Revoked = rng.Intn(2) == 0
			default:
				owner := 1 + rng.Intn(2)
				id := cache.BlockID{File: fs.FileID(1 + rng.Intn(3)), Num: int32(rng.Intn(30))}
				if h.c.LookupBy(id, owner, 0, 8192) == nil {
					h.c.Insert(id, owner, h.now)
				}
			}
			if i%250 == 0 {
				h.a.CheckInvariants()
				h.c.CheckInvariants()
			}
		}
		h.a.CheckInvariants()
		h.c.CheckInvariants()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestReplaceBlockNoManagerReturnsCandidate(t *testing.T) {
	// The cache never consults an unmanaged owner, but the ACM must
	// still answer defensively (the paper: "if the manager process does
	// not exist or is uncooperative, the kernel simply replaces the
	// candidate").
	h := newHarness(t, 4, cache.LRUSP)
	h.a.CreateManager(1)
	h.read(1, 1, 0)
	b := h.c.Peek(cache.BlockID{File: 1, Num: 0})
	b.Owner = 9 // simulate a process whose manager vanished
	if got := h.a.ReplaceBlock(b, cache.BlockID{File: 1, Num: 5}); got != b {
		t.Error("ACM did not fall back to the candidate for an unmanaged owner")
	}
}

func TestBlockAccessedUnmanagedNoop(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	h.a.CreateManager(1)
	h.read(1, 1, 0)
	b := h.c.Peek(cache.BlockID{File: 1, Num: 0})
	h.a.DestroyManager(1)
	// Aux was cleared; these must all be harmless no-ops.
	h.a.BlockAccessed(b, 0, 8192)
	h.a.BlockGone(b)
	h.a.PlaceholderUsed(cache.BlockID{File: 1, Num: 7}, b)
	h.a.CheckInvariants()
}

func TestPoolOrderMissingLevel(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	if m.PoolOrder(42) != nil {
		t.Error("PoolOrder of a missing level not nil")
	}
}

func TestVictimAllBusy(t *testing.T) {
	// Every block of the only pool is mid-I/O: the manager can offer
	// nothing and must fall back to the candidate.
	h := newHarness(t, 3, cache.LRUSP)
	h.a.CreateManager(1)
	h.read(1, 1, 0)
	h.read(1, 1, 1)
	for _, n := range []int32{0, 1} {
		h.c.Peek(cache.BlockID{File: 1, Num: n}).ValidAt = 1 << 40
	}
	cand := h.c.Peek(cache.BlockID{File: 1, Num: 0})
	if got := h.a.ReplaceBlock(cand, cache.BlockID{File: 1, Num: 9}); got != cand {
		t.Errorf("expected candidate fallback, got %v", got.ID)
	}
}

func TestSetTempPriSamePriorityClearsTemp(t *testing.T) {
	// set_temppri to the file's own long-term priority is a positional
	// move without the temp flag: the block must not "revert" later.
	h := newHarness(t, 4, cache.LRUSP)
	m, _ := h.a.CreateManager(1)
	h.read(1, 3, 0)
	h.read(1, 3, 1)
	if err := m.SetTempPri(3, 0, 0, acm.DefaultPriority); err != nil {
		t.Fatal(err)
	}
	sizes := levelSizes(m)
	if sizes[0] != 2 {
		t.Fatalf("LevelSizes = %v", sizes)
	}
	h.a.CheckInvariants()
}

// TestRevokedOwnerEvictionUnlinks: revocation flips managed() off but
// does not unlink the owner's blocks from its ACM levels, so block_gone
// must still fire when those blocks are evicted. Before the fix the
// eviction skipped block_gone, freeBuf zeroed the still-linked embedded
// node, and the recycled buffer was relinked into another owner's level
// — corrupting both intrusive lists.
func TestRevokedOwnerEvictionUnlinks(t *testing.T) {
	h := newHarness(t, 4, cache.LRUSP)
	if _, err := h.a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.a.CreateManager(2); err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < 4; b++ {
		h.read(1, 1, b)
	}
	h.c.Owner(1).Revoked = true
	// Evict all of owner 1's blocks; the recycled buffers are reused for
	// owner 2's blocks and linked into owner 2's level.
	for b := int32(0); b < 8; b++ {
		h.read(2, 2, b)
	}
	h.a.CheckInvariants()
	h.c.CheckInvariants()
	if m, _ := h.a.ManagerOf(1); m.GoneBlocks != 4 {
		t.Errorf("GoneBlocks = %d, want 4: revoked owner's evictions must still unlink", m.GoneBlocks)
	}
}

// TestSharedTransferFromRevokedOwner: same root cause on the ownership
// transfer path — a hit by another process on a revoked owner's block
// must unlink the embedded node from the old level before new_block
// links it into the accessor's, or the two level lists get spliced.
func TestSharedTransferFromRevokedOwner(t *testing.T) {
	h := &harness{}
	h.a = acm.New(func() sim.Time { return h.now }, acm.Limits{})
	h.c = cache.New(cache.Config{Capacity: 8, Alloc: cache.LRUSP, SharedTransfer: true}, h.a)
	if _, err := h.a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.a.CreateManager(2); err != nil {
		t.Fatal(err)
	}
	h.read(1, 1, 0)
	h.read(1, 1, 1)
	h.read(2, 2, 0)
	h.c.Owner(1).Revoked = true
	// Owner 2 hits owner 1's block: ownership transfers.
	if b := h.c.LookupBy(cache.BlockID{File: 1, Num: 0}, 2, 0, 8192); b == nil {
		t.Fatal("expected hit")
	}
	h.a.CheckInvariants()
	h.c.CheckInvariants()
	if got := h.c.Stats().Transfers; got != 1 {
		t.Errorf("Transfers = %d, want 1", got)
	}
}

// TestBlockAccessedZeroAllocs pins the intrusive-node design: the
// block_accessed upcall — node reached through the buffer header, no
// interface boxing or type assertion, recency relink in place — must
// not allocate in steady state, since it runs once per simulated cache
// hit.
func TestBlockAccessedZeroAllocs(t *testing.T) {
	h := newHarness(t, 64, cache.LRUSP)
	if _, err := h.a.CreateManager(1); err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < 64; b++ {
		h.read(1, 2, b)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for b := int32(0); b < 64; b++ {
			if !h.read(1, 2, b) {
				t.Fatal("warm block missed")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("block_accessed allocated %.1f times per run, want 0", allocs)
	}
}
