// Package acm implements the paper's Application Control Module: the
// kernel-side proxy for user-level cache managers. A process that wants to
// control its own caching gets a Manager; the manager groups the process's
// cached blocks into priority levels (all files with the same priority form
// one pool), applies an LRU or MRU replacement policy within each pool, and
// answers the buffer cache's replace_block upcalls by giving up a block
// from its lowest-priority non-empty pool.
//
// The user-visible interface is the paper's five fbehavior operations:
//
//	SetPriority / Priority    — long-term priority of a file
//	SetPolicy / Policy        — replacement policy of a priority level
//	SetTempPri                — temporary priority for a range of blocks
//
// A temporary priority affects only blocks currently in the cache and
// lasts until the block is next referenced or replaced, after which the
// block reverts to its file's long-term priority.
//
// Per-block state is the cache.ACMNode embedded in every buffer header
// (the paper's kernel lays its buf struct out the same way), so the five
// BUF→ACM upcalls are allocation-free: no boxing, no type assertions, no
// per-block heap nodes. Managers are indexed by a dense owner-id slice
// because Managed and the upcalls run once per simulated block access.
package acm

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/fs"
	"repro/internal/sim"
)

// Policy is a per-priority-level replacement policy.
type Policy int

// Replacement policies offered by the interface (the paper offers exactly
// these two).
const (
	LRU Policy = iota
	MRU
)

func (p Policy) String() string {
	if p == MRU {
		return "MRU"
	}
	return "LRU"
}

// DefaultPriority is the long-term priority files have unless changed.
const DefaultPriority = 0

// Limits caps the kernel resources one manager may consume, as the paper's
// implementation does ("fails the calls if the limit would be exceeded").
type Limits struct {
	MaxManagers    int // total managers
	MaxLevels      int // priority levels per manager
	MaxFileRecords int // files with non-default priority per manager
}

// DefaultLimits are generous enough for every workload in the paper.
var DefaultLimits = Limits{MaxManagers: 64, MaxLevels: 32, MaxFileRecords: 512}

// A priority pool is a cache.ACMLevel: the intrusive node list lives in
// the cache package (embedded in Buf), the policy semantics live here.
// ACMLevel.Policy stores a Policy as its opaque int code.

// linkLater inserts nd at the end that causes the block to be replaced
// later under this level's policy: the MRU end for LRU, the LRU end for
// MRU. This is the paper's rule for blocks moving between lists.
func linkLater(l *cache.ACMLevel, nd *cache.ACMNode) {
	if Policy(l.Policy) == LRU {
		l.LinkMRU(nd)
	} else {
		l.LinkLRU(nd)
	}
}

// victim returns the block this level's policy would replace, along with
// a fallback choice. Blocks that are busy (I/O in flight at time now) are
// never returned. In an MRU pool, blocks that have never been referenced
// (read-ahead still waiting for its first use) are reported only as the
// fallback: MRU orders blocks by *use* recency, which an unused prefetch
// does not have, and evicting one throws away an I/O already paid for.
// LRU pools do not make this distinction, so a manager with default
// settings remains exactly LRU. The caller prefers a referenced victim
// from any level over an unreferenced fallback.
func victim(l *cache.ACMLevel, now sim.Time) (v, fallback *cache.ACMNode) {
	if Policy(l.Policy) == LRU {
		for nd := l.Head.Next; nd != &l.Tail; nd = nd.Next {
			if !nd.Buf.Busy(now) {
				return nd, nil
			}
		}
		return nil, nil
	}
	for nd := l.Tail.Prev; nd != &l.Head; nd = nd.Prev {
		if nd.Buf.Busy(now) {
			continue
		}
		if !nd.Buf.Referenced {
			if fallback == nil {
				fallback = nd
			}
			continue
		}
		return nd, fallback
	}
	return nil, fallback
}

// Manager is one process's cache-control state.
type Manager struct {
	acm      *ACM
	owner    int
	levels   []*cache.ACMLevel // sorted by Prio ascending
	filePrio map[fs.FileID]int
	policies map[int]Policy

	// Counters visible to the application and the experiments.
	NewBlocks  int64
	GoneBlocks int64
	Accesses   int64
	Decisions  int64 // replace_block upcalls answered
	Overrules  int64 // answers that differed from the candidate
	Mistakes   int64 // placeholder_used notifications
}

// ACM is the application control module shared by all managers.
type ACM struct {
	now    func() sim.Time
	limits Limits
	// managers is indexed by owner id (process ids are small and dense);
	// nil entries are unmanaged. Hot-path lookups must not pay for a map.
	managers []*Manager
	nmgr     int
}

// New builds an ACM. The now function supplies virtual time for busy-block
// checks (pass engine.Now).
func New(now func() sim.Time, limits Limits) *ACM {
	if limits.MaxManagers <= 0 {
		limits = DefaultLimits
	}
	return &ACM{now: now, limits: limits}
}

// managerOf returns the manager for owner, or nil.
func (a *ACM) managerOf(owner int) *Manager {
	if owner < 0 || owner >= len(a.managers) {
		return nil
	}
	return a.managers[owner]
}

// CreateManager registers cache control for a process. It fails if the
// process already has a manager or the manager limit is reached.
func (a *ACM) CreateManager(owner int) (*Manager, error) {
	if owner < 0 {
		return nil, fmt.Errorf("acm: invalid owner id %d", owner)
	}
	if a.managerOf(owner) != nil {
		return nil, fmt.Errorf("acm: process %d already has a manager", owner)
	}
	if a.nmgr >= a.limits.MaxManagers {
		return nil, fmt.Errorf("acm: manager limit (%d) exceeded", a.limits.MaxManagers)
	}
	m := &Manager{
		acm:      a,
		owner:    owner,
		filePrio: make(map[fs.FileID]int),
		policies: make(map[int]Policy),
	}
	for len(a.managers) <= owner {
		a.managers = append(a.managers, nil)
	}
	a.managers[owner] = m
	a.nmgr++
	return m, nil
}

// DestroyManager withdraws a process's cache control. Its blocks become
// unmanaged; the cache falls back to treating them by global policy alone.
func (a *ACM) DestroyManager(owner int) {
	m := a.managerOf(owner)
	if m == nil {
		return
	}
	for _, l := range m.levels {
		for nd := l.Head.Next; nd != &l.Tail; {
			next := nd.Next
			nd.Prev, nd.Next, nd.Level = nil, nil, nil
			nd.Temp = false
			nd = next
		}
	}
	a.managers[owner] = nil
	a.nmgr--
}

// ManagerOf returns the manager for owner, if any.
func (a *ACM) ManagerOf(owner int) (*Manager, bool) {
	m := a.managerOf(owner)
	return m, m != nil
}

// Managed implements cache.Replacer.
func (a *ACM) Managed(owner int) bool {
	return a.managerOf(owner) != nil
}

// getLevel finds or creates the pool for prio, honouring MaxLevels.
func (m *Manager) getLevel(prio int) (*cache.ACMLevel, error) {
	i := sort.Search(len(m.levels), func(i int) bool { return m.levels[i].Prio >= prio })
	if i < len(m.levels) && m.levels[i].Prio == prio {
		return m.levels[i], nil
	}
	if len(m.levels) >= m.acm.limits.MaxLevels {
		return nil, fmt.Errorf("acm: level limit (%d) exceeded", m.acm.limits.MaxLevels)
	}
	pol, ok := m.policies[prio]
	if !ok {
		pol = LRU
	}
	l := cache.NewACMLevel(prio, int(pol))
	m.levels = append(m.levels, nil)
	copy(m.levels[i+1:], m.levels[i:])
	m.levels[i] = l
	return l, nil
}

// longTermLevel returns the pool a block of this file belongs to by its
// long-term priority.
func (m *Manager) longTermLevel(file fs.FileID) (*cache.ACMLevel, error) {
	prio, ok := m.filePrio[file]
	if !ok {
		prio = DefaultPriority
	}
	return m.getLevel(prio)
}

// --- the five BUF -> ACM calls (cache.Replacer) ---

// NewBlock links a freshly cached block into its long-term pool at the
// most-recently-used position.
func (a *ACM) NewBlock(b *cache.Buf) {
	m := a.managerOf(b.Owner)
	if m == nil {
		return
	}
	l, err := m.longTermLevel(b.ID.File)
	if err != nil {
		// Out of level records: leave the block unmanaged rather than
		// failing the I/O path.
		return
	}
	nd := b.ACM()
	if nd.Level != nil {
		// Defensive: a node the kernel failed to block_gone (it should
		// never happen) must leave its old list before relinking, or the
		// two level lists would splice together.
		nd.Level.Unlink(nd)
	}
	nd.Buf = b
	l.LinkMRU(nd)
	m.NewBlocks++
}

// BlockGone unlinks a block that left the cache.
func (a *ACM) BlockGone(b *cache.Buf) {
	nd := b.ACM()
	if nd.Level == nil {
		return
	}
	nd.Level.Unlink(nd)
	nd.Temp = false
	if m := a.managerOf(b.Owner); m != nil {
		m.GoneBlocks++
	}
}

// BlockAccessed refreshes recency and reverts any temporary priority: a
// temporary priority lasts only until the next reference.
func (a *ACM) BlockAccessed(b *cache.Buf, off, size int) {
	nd := b.ACM()
	l := nd.Level
	if l == nil {
		return
	}
	m := a.managerOf(b.Owner)
	if m == nil {
		return
	}
	m.Accesses++
	if nd.Temp {
		nd.Temp = false
		l.Unlink(nd)
		lt, err := m.longTermLevel(b.ID.File)
		if err != nil {
			return // out of level records: block drops out of management
		}
		lt.LinkMRU(nd)
		return
	}
	// Move to the most-recently-used position of its current pool.
	l.Unlink(nd)
	l.LinkMRU(nd)
}

// ReplaceBlock answers the kernel's request on behalf of the candidate's
// manager: give up a block from the lowest-priority non-empty pool,
// selected by that pool's policy. Returning the candidate accepts the
// kernel's suggestion.
func (a *ACM) ReplaceBlock(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
	m := a.managerOf(candidate.Owner)
	if m == nil {
		return candidate
	}
	m.Decisions++
	now := a.now()
	var fallback *cache.ACMNode
	for _, l := range m.levels {
		if l.N == 0 {
			continue
		}
		nd, fb := victim(l, now)
		if fallback == nil {
			fallback = fb
		}
		if nd != nil {
			if nd.Buf != candidate {
				m.Overrules++
			}
			return nd.Buf
		}
	}
	if fallback != nil {
		if fallback.Buf != candidate {
			m.Overrules++
		}
		return fallback.Buf
	}
	return candidate
}

// PlaceholderUsed records that an earlier overrule was a mistake. The
// count feeds application-level diagnostics; the kernel-side revocation
// bookkeeping lives in the cache.
func (a *ACM) PlaceholderUsed(missing cache.BlockID, pointed *cache.Buf) {
	if m := a.managerOf(pointed.Owner); m != nil {
		m.Mistakes++
	}
}

// --- the fbehavior user interface ---

// SetPriority assigns the long-term cache priority of a file and moves its
// cached, non-temporary blocks into the new pool (at the later-replaced
// end, per the paper's movement rule).
func (m *Manager) SetPriority(file fs.FileID, prio int) error {
	if prio == DefaultPriority {
		delete(m.filePrio, file)
	} else {
		if _, ok := m.filePrio[file]; !ok && len(m.filePrio) >= m.acm.limits.MaxFileRecords {
			return fmt.Errorf("acm: file record limit (%d) exceeded", m.acm.limits.MaxFileRecords)
		}
		m.filePrio[file] = prio
	}
	dst, err := m.getLevel(prio)
	if err != nil {
		return err
	}
	for _, nd := range m.blocksOf(file) {
		if nd.Temp {
			continue // temp priority wins until next reference
		}
		if nd.Level == dst {
			continue
		}
		nd.Level.Unlink(nd)
		linkLater(dst, nd)
	}
	return nil
}

// Priority returns the long-term priority of a file.
func (m *Manager) Priority(file fs.FileID) int {
	if p, ok := m.filePrio[file]; ok {
		return p
	}
	return DefaultPriority
}

// SetPolicy sets the replacement policy of a priority level.
func (m *Manager) SetPolicy(prio int, pol Policy) error {
	if pol != LRU && pol != MRU {
		return fmt.Errorf("acm: unknown policy %d", int(pol))
	}
	m.policies[prio] = pol
	l, err := m.getLevel(prio)
	if err != nil {
		return err
	}
	l.Policy = int(pol)
	return nil
}

// PolicyOf returns the replacement policy of a priority level.
func (m *Manager) PolicyOf(prio int) Policy {
	if p, ok := m.policies[prio]; ok {
		return p
	}
	return LRU
}

// SetTempPri gives the cached blocks of file in [startBlk, endBlk] a
// temporary priority. Only blocks presently in the cache are affected; the
// change lasts until each block is next referenced or replaced.
func (m *Manager) SetTempPri(file fs.FileID, startBlk, endBlk int32, prio int) error {
	if startBlk > endBlk {
		return fmt.Errorf("acm: bad block range [%d, %d]", startBlk, endBlk)
	}
	dst, err := m.getLevel(prio)
	if err != nil {
		return err
	}
	for _, nd := range m.blocksOf(file) {
		if nd.Buf.ID.Num < startBlk || nd.Buf.ID.Num > endBlk {
			continue
		}
		if nd.Level != dst {
			nd.Level.Unlink(nd)
			linkLater(dst, nd)
		}
		nd.Temp = prio != m.Priority(file)
	}
	return nil
}

// blocksOf collects the manager's cached nodes for a file.
func (m *Manager) blocksOf(file fs.FileID) []*cache.ACMNode {
	var out []*cache.ACMNode
	for _, l := range m.levels {
		for nd := l.Head.Next; nd != &l.Tail; nd = nd.Next {
			if nd.Buf.ID.File == file {
				out = append(out, nd)
			}
		}
	}
	return out
}

// LevelSize is one entry of LevelSizes: occupancy of the pool at Prio.
type LevelSize struct {
	Prio, N int
}

// LevelSizes reports non-empty pool occupancy ordered by ascending
// priority, appending to buf (pass nil for a fresh slice, or a recycled
// one to avoid allocating). For tests and diagnostics; the former
// map-returning version allocated a map per call, which invited
// accidental hot-path use.
func (m *Manager) LevelSizes(buf []LevelSize) []LevelSize {
	out := buf[:0]
	for _, l := range m.levels {
		if l.N > 0 {
			out = append(out, LevelSize{Prio: l.Prio, N: l.N})
		}
	}
	return out
}

// PoolOrder returns the block numbers of file's blocks in pool prio, from
// the LRU end to the MRU end. Intended for tests.
func (m *Manager) PoolOrder(prio int) []cache.BlockID {
	i := sort.Search(len(m.levels), func(i int) bool { return m.levels[i].Prio >= prio })
	if i >= len(m.levels) || m.levels[i].Prio != prio {
		return nil
	}
	l := m.levels[i]
	var out []cache.BlockID
	for nd := l.Head.Next; nd != &l.Tail; nd = nd.Next {
		out = append(out, nd.Buf.ID)
	}
	return out
}

// CheckInvariants panics on structural inconsistency; tests call it.
func (a *ACM) CheckInvariants() {
	for owner, m := range a.managers {
		if m == nil {
			continue
		}
		for _, l := range m.levels {
			n := 0
			for nd := l.Head.Next; nd != &l.Tail; nd = nd.Next {
				n++
				if nd.Level != l {
					panic(fmt.Sprintf("acm: node %v in level %d claims another level", nd.Buf.ID, l.Prio))
				}
				if nd.Buf == nil || nd.Buf.ACM() != nd {
					panic(fmt.Sprintf("acm: node in level %d does not point back at its buf", l.Prio))
				}
				if nd.Buf.Owner != owner {
					panic(fmt.Sprintf("acm: buf %v owned by %d in manager %d", nd.Buf.ID, nd.Buf.Owner, owner))
				}
			}
			if n != l.N {
				panic(fmt.Sprintf("acm: level %d count %d, walked %d", l.Prio, l.N, n))
			}
		}
	}
}

var _ cache.Replacer = (*ACM)(nil)
