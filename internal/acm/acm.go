// Package acm implements the paper's Application Control Module: the
// kernel-side proxy for user-level cache managers. A process that wants to
// control its own caching gets a Manager; the manager groups the process's
// cached blocks into priority levels (all files with the same priority form
// one pool), applies an LRU or MRU replacement policy within each pool, and
// answers the buffer cache's replace_block upcalls by giving up a block
// from its lowest-priority non-empty pool.
//
// The user-visible interface is the paper's five fbehavior operations:
//
//	SetPriority / Priority    — long-term priority of a file
//	SetPolicy / Policy        — replacement policy of a priority level
//	SetTempPri                — temporary priority for a range of blocks
//
// A temporary priority affects only blocks currently in the cache and
// lasts until the block is next referenced or replaced, after which the
// block reverts to its file's long-term priority.
package acm

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/fs"
	"repro/internal/sim"
)

// Policy is a per-priority-level replacement policy.
type Policy int

// Replacement policies offered by the interface (the paper offers exactly
// these two).
const (
	LRU Policy = iota
	MRU
)

func (p Policy) String() string {
	if p == MRU {
		return "MRU"
	}
	return "LRU"
}

// DefaultPriority is the long-term priority files have unless changed.
const DefaultPriority = 0

// Limits caps the kernel resources one manager may consume, as the paper's
// implementation does ("fails the calls if the limit would be exceeded").
type Limits struct {
	MaxManagers    int // total managers
	MaxLevels      int // priority levels per manager
	MaxFileRecords int // files with non-default priority per manager
}

// DefaultLimits are generous enough for every workload in the paper.
var DefaultLimits = Limits{MaxManagers: 64, MaxLevels: 32, MaxFileRecords: 512}

// node is the ACM's per-block state, stored in Buf.Aux.
type node struct {
	buf        *cache.Buf
	lvl        *level
	prev, next *node
	temp       bool // parked at a temporary priority
}

// level is one priority pool. Its list is kept in LRU order: head.next is
// the least recently used block, tail.prev the most recently used.
type level struct {
	prio       int
	policy     Policy
	head, tail *node // sentinels
	n          int
}

func newLevel(prio int, policy Policy) *level {
	l := &level{prio: prio, policy: policy, head: &node{}, tail: &node{}}
	l.head.next = l.tail
	l.tail.prev = l.head
	return l
}

func (l *level) unlink(nd *node) {
	nd.prev.next = nd.next
	nd.next.prev = nd.prev
	nd.prev, nd.next = nil, nil
	l.n--
	nd.lvl = nil
}

// linkMRU appends at the most-recently-used end.
func (l *level) linkMRU(nd *node) {
	nd.prev = l.tail.prev
	nd.next = l.tail
	nd.prev.next = nd
	l.tail.prev = nd
	nd.lvl = l
	l.n++
}

// linkLRU prepends at the least-recently-used end.
func (l *level) linkLRU(nd *node) {
	nd.next = l.head.next
	nd.prev = l.head
	nd.next.prev = nd
	l.head.next = nd
	nd.lvl = l
	l.n++
}

// linkLater inserts at the end that causes the block to be replaced
// later under this level's policy: the MRU end for LRU, the LRU end for
// MRU. This is the paper's rule for blocks moving between lists.
func (l *level) linkLater(nd *node) {
	if l.policy == LRU {
		l.linkMRU(nd)
	} else {
		l.linkLRU(nd)
	}
}

// victim returns the block this level's policy would replace, along with
// a fallback choice. Blocks that are busy (I/O in flight at time now) are
// never returned. In an MRU pool, blocks that have never been referenced
// (read-ahead still waiting for its first use) are reported only as the
// fallback: MRU orders blocks by *use* recency, which an unused prefetch
// does not have, and evicting one throws away an I/O already paid for.
// LRU pools do not make this distinction, so a manager with default
// settings remains exactly LRU. The caller prefers a referenced victim
// from any level over an unreferenced fallback.
func (l *level) victim(now sim.Time) (v, fallback *node) {
	if l.policy == LRU {
		for nd := l.head.next; nd != l.tail; nd = nd.next {
			if !nd.buf.Busy(now) {
				return nd, nil
			}
		}
		return nil, nil
	}
	for nd := l.tail.prev; nd != l.head; nd = nd.prev {
		if nd.buf.Busy(now) {
			continue
		}
		if !nd.buf.Referenced {
			if fallback == nil {
				fallback = nd
			}
			continue
		}
		return nd, fallback
	}
	return nil, fallback
}

// Manager is one process's cache-control state.
type Manager struct {
	acm      *ACM
	owner    int
	levels   []*level // sorted by prio ascending
	filePrio map[fs.FileID]int
	policies map[int]Policy

	// Counters visible to the application and the experiments.
	NewBlocks  int64
	GoneBlocks int64
	Accesses   int64
	Decisions  int64 // replace_block upcalls answered
	Overrules  int64 // answers that differed from the candidate
	Mistakes   int64 // placeholder_used notifications
}

// ACM is the application control module shared by all managers.
type ACM struct {
	now      func() sim.Time
	limits   Limits
	managers map[int]*Manager
}

// New builds an ACM. The now function supplies virtual time for busy-block
// checks (pass engine.Now).
func New(now func() sim.Time, limits Limits) *ACM {
	if limits.MaxManagers <= 0 {
		limits = DefaultLimits
	}
	return &ACM{now: now, limits: limits, managers: make(map[int]*Manager)}
}

// CreateManager registers cache control for a process. It fails if the
// process already has a manager or the manager limit is reached.
func (a *ACM) CreateManager(owner int) (*Manager, error) {
	if _, ok := a.managers[owner]; ok {
		return nil, fmt.Errorf("acm: process %d already has a manager", owner)
	}
	if len(a.managers) >= a.limits.MaxManagers {
		return nil, fmt.Errorf("acm: manager limit (%d) exceeded", a.limits.MaxManagers)
	}
	m := &Manager{
		acm:      a,
		owner:    owner,
		filePrio: make(map[fs.FileID]int),
		policies: make(map[int]Policy),
	}
	a.managers[owner] = m
	return m, nil
}

// DestroyManager withdraws a process's cache control. Its blocks become
// unmanaged; the cache falls back to treating them by global policy alone.
func (a *ACM) DestroyManager(owner int) {
	m := a.managers[owner]
	if m == nil {
		return
	}
	for _, l := range m.levels {
		for nd := l.head.next; nd != l.tail; {
			next := nd.next
			nd.buf.Aux = nil
			nd = next
		}
	}
	delete(a.managers, owner)
}

// Manager returns the manager for owner, if any.
func (a *ACM) ManagerOf(owner int) (*Manager, bool) {
	m, ok := a.managers[owner]
	return m, ok
}

// Managed implements cache.Replacer.
func (a *ACM) Managed(owner int) bool {
	_, ok := a.managers[owner]
	return ok
}

// getLevel finds or creates the pool for prio, honouring MaxLevels.
func (m *Manager) getLevel(prio int) (*level, error) {
	i := sort.Search(len(m.levels), func(i int) bool { return m.levels[i].prio >= prio })
	if i < len(m.levels) && m.levels[i].prio == prio {
		return m.levels[i], nil
	}
	if len(m.levels) >= m.acm.limits.MaxLevels {
		return nil, fmt.Errorf("acm: level limit (%d) exceeded", m.acm.limits.MaxLevels)
	}
	pol, ok := m.policies[prio]
	if !ok {
		pol = LRU
	}
	l := newLevel(prio, pol)
	m.levels = append(m.levels, nil)
	copy(m.levels[i+1:], m.levels[i:])
	m.levels[i] = l
	return l, nil
}

// longTermLevel returns the pool a block of this file belongs to by its
// long-term priority.
func (m *Manager) longTermLevel(file fs.FileID) (*level, error) {
	prio, ok := m.filePrio[file]
	if !ok {
		prio = DefaultPriority
	}
	return m.getLevel(prio)
}

// --- the five BUF -> ACM calls (cache.Replacer) ---

// NewBlock links a freshly cached block into its long-term pool at the
// most-recently-used position.
func (a *ACM) NewBlock(b *cache.Buf) {
	m := a.managers[b.Owner]
	if m == nil {
		return
	}
	l, err := m.longTermLevel(b.ID.File)
	if err != nil {
		// Out of level records: leave the block unmanaged rather than
		// failing the I/O path.
		return
	}
	nd := &node{buf: b}
	b.Aux = nd
	l.linkMRU(nd)
	m.NewBlocks++
}

// BlockGone unlinks a block that left the cache.
func (a *ACM) BlockGone(b *cache.Buf) {
	nd, _ := b.Aux.(*node)
	if nd == nil || nd.lvl == nil {
		return
	}
	m := a.managers[b.Owner]
	nd.lvl.unlink(nd)
	b.Aux = nil
	if m != nil {
		m.GoneBlocks++
	}
}

// BlockAccessed refreshes recency and reverts any temporary priority: a
// temporary priority lasts only until the next reference.
func (a *ACM) BlockAccessed(b *cache.Buf, off, size int) {
	nd, _ := b.Aux.(*node)
	if nd == nil || nd.lvl == nil {
		return
	}
	m := a.managers[b.Owner]
	if m == nil {
		return
	}
	m.Accesses++
	if nd.temp {
		nd.temp = false
		nd.lvl.unlink(nd)
		l, err := m.longTermLevel(b.ID.File)
		if err != nil {
			b.Aux = nil
			return
		}
		l.linkMRU(nd)
		return
	}
	// Move to the most-recently-used position of its current pool.
	l := nd.lvl
	l.unlink(nd)
	l.linkMRU(nd)
}

// ReplaceBlock answers the kernel's request on behalf of the candidate's
// manager: give up a block from the lowest-priority non-empty pool,
// selected by that pool's policy. Returning the candidate accepts the
// kernel's suggestion.
func (a *ACM) ReplaceBlock(candidate *cache.Buf, missing cache.BlockID) *cache.Buf {
	m := a.managers[candidate.Owner]
	if m == nil {
		return candidate
	}
	m.Decisions++
	now := a.now()
	var fallback *node
	for _, l := range m.levels {
		if l.n == 0 {
			continue
		}
		nd, fb := l.victim(now)
		if fallback == nil {
			fallback = fb
		}
		if nd != nil {
			if nd.buf != candidate {
				m.Overrules++
			}
			return nd.buf
		}
	}
	if fallback != nil {
		if fallback.buf != candidate {
			m.Overrules++
		}
		return fallback.buf
	}
	return candidate
}

// PlaceholderUsed records that an earlier overrule was a mistake. The
// count feeds application-level diagnostics; the kernel-side revocation
// bookkeeping lives in the cache.
func (a *ACM) PlaceholderUsed(missing cache.BlockID, pointed *cache.Buf) {
	if m := a.managers[pointed.Owner]; m != nil {
		m.Mistakes++
	}
}

// --- the fbehavior user interface ---

// SetPriority assigns the long-term cache priority of a file and moves its
// cached, non-temporary blocks into the new pool (at the later-replaced
// end, per the paper's movement rule).
func (m *Manager) SetPriority(file fs.FileID, prio int) error {
	if prio == DefaultPriority {
		delete(m.filePrio, file)
	} else {
		if _, ok := m.filePrio[file]; !ok && len(m.filePrio) >= m.acm.limits.MaxFileRecords {
			return fmt.Errorf("acm: file record limit (%d) exceeded", m.acm.limits.MaxFileRecords)
		}
		m.filePrio[file] = prio
	}
	dst, err := m.getLevel(prio)
	if err != nil {
		return err
	}
	for _, nd := range m.blocksOf(file) {
		if nd.temp {
			continue // temp priority wins until next reference
		}
		if nd.lvl == dst {
			continue
		}
		nd.lvl.unlink(nd)
		dst.linkLater(nd)
	}
	return nil
}

// Priority returns the long-term priority of a file.
func (m *Manager) Priority(file fs.FileID) int {
	if p, ok := m.filePrio[file]; ok {
		return p
	}
	return DefaultPriority
}

// SetPolicy sets the replacement policy of a priority level.
func (m *Manager) SetPolicy(prio int, pol Policy) error {
	if pol != LRU && pol != MRU {
		return fmt.Errorf("acm: unknown policy %d", int(pol))
	}
	m.policies[prio] = pol
	l, err := m.getLevel(prio)
	if err != nil {
		return err
	}
	l.policy = pol
	return nil
}

// PolicyOf returns the replacement policy of a priority level.
func (m *Manager) PolicyOf(prio int) Policy {
	if p, ok := m.policies[prio]; ok {
		return p
	}
	return LRU
}

// SetTempPri gives the cached blocks of file in [startBlk, endBlk] a
// temporary priority. Only blocks presently in the cache are affected; the
// change lasts until each block is next referenced or replaced.
func (m *Manager) SetTempPri(file fs.FileID, startBlk, endBlk int32, prio int) error {
	if startBlk > endBlk {
		return fmt.Errorf("acm: bad block range [%d, %d]", startBlk, endBlk)
	}
	dst, err := m.getLevel(prio)
	if err != nil {
		return err
	}
	for _, nd := range m.blocksOf(file) {
		if nd.buf.ID.Num < startBlk || nd.buf.ID.Num > endBlk {
			continue
		}
		if nd.lvl != dst {
			nd.lvl.unlink(nd)
			dst.linkLater(nd)
		}
		nd.temp = prio != m.Priority(file)
	}
	return nil
}

// blocksOf collects the manager's cached nodes for a file.
func (m *Manager) blocksOf(file fs.FileID) []*node {
	var out []*node
	for _, l := range m.levels {
		for nd := l.head.next; nd != l.tail; nd = nd.next {
			if nd.buf.ID.File == file {
				out = append(out, nd)
			}
		}
	}
	return out
}

// LevelSizes reports pool occupancy by priority, for tests and diagnostics.
func (m *Manager) LevelSizes() map[int]int {
	out := make(map[int]int)
	for _, l := range m.levels {
		if l.n > 0 {
			out[l.prio] = l.n
		}
	}
	return out
}

// PoolOrder returns the block numbers of file's blocks in pool prio, from
// the LRU end to the MRU end. Intended for tests.
func (m *Manager) PoolOrder(prio int) []cache.BlockID {
	i := sort.Search(len(m.levels), func(i int) bool { return m.levels[i].prio >= prio })
	if i >= len(m.levels) || m.levels[i].prio != prio {
		return nil
	}
	var out []cache.BlockID
	for nd := m.levels[i].head.next; nd != m.levels[i].tail; nd = nd.next {
		out = append(out, nd.buf.ID)
	}
	return out
}

// CheckInvariants panics on structural inconsistency; tests call it.
func (a *ACM) CheckInvariants() {
	for owner, m := range a.managers {
		for _, l := range m.levels {
			n := 0
			for nd := l.head.next; nd != l.tail; nd = nd.next {
				n++
				if nd.lvl != l {
					panic(fmt.Sprintf("acm: node %v in level %d claims another level", nd.buf.ID, l.prio))
				}
				if nd.buf.Aux != nd {
					panic(fmt.Sprintf("acm: buf %v Aux does not point back", nd.buf.ID))
				}
				if nd.buf.Owner != owner {
					panic(fmt.Sprintf("acm: buf %v owned by %d in manager %d", nd.buf.ID, nd.buf.Owner, owner))
				}
			}
			if n != l.n {
				panic(fmt.Sprintf("acm: level %d count %d, walked %d", l.prio, l.n, n))
			}
		}
	}
}

var _ cache.Replacer = (*ACM)(nil)
