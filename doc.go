// Package acfc is a faithful, fully-simulated reproduction of
// "Implementation and Performance of Application-Controlled File Caching"
// (Pei Cao, Edward W. Felten, Kai Li; OSDI 1994).
//
// The paper lets applications control which of their own file-cache blocks
// get replaced, while the kernel keeps control of how many blocks each
// process holds. Its pieces, all implemented here from scratch:
//
//   - Two-level replacement: on a miss the kernel picks a candidate victim
//     and asks the candidate owner's manager which block to actually give
//     up.
//   - LRU-SP: the kernel's allocation policy — a global LRU list plus
//     swapping (overruled candidates trade places with the chosen victim)
//     and placeholders (records that catch a manager's mistakes and
//     redirect future candidates at them).
//   - The fbehavior interface: set_priority / get_priority / set_policy /
//     get_policy / set_temppri, with files of equal priority forming one
//     replacement pool governed by LRU or MRU.
//
// Because the original ran inside an Ultrix 4.3 kernel on DEC 5000/240
// hardware, this library recreates the whole machine as a deterministic
// discrete-event simulation: CPU, RZ56/RZ26 disks with a C-LOOK elevator
// on a shared SCSI bus, an extent-based file system, the buffer cache
// (BUF), the application control module (ACM), an update daemon, and the
// paper's eight applications (cscope x3, dinero, glimpse, the link
// editor, a Postgres join, external sort, and the synthetic ReadN).
//
// Quick start:
//
//	sys := acfc.NewSystem(acfc.DefaultConfig())
//	f := sys.CreateFile("trace", 0, 1024)
//	p := sys.Spawn("app", func(p *acfc.Proc) {
//		p.EnableControl()
//		p.SetPriority(f, 0)
//		p.SetPolicy(0, acfc.MRU) // cyclic scans want MRU
//		for pass := 0; pass < 9; pass++ {
//			p.ReadSeq(f, 0, int32(f.Size()))
//		}
//	})
//	sys.Run()
//	fmt.Println(p.Stats().BlockIOs(), p.Elapsed())
//
// Every table and figure of the paper's evaluation regenerates through
// the experiment drivers (see repro/internal/expt and cmd/acbench) and
// the benchmarks in bench_test.go; EXPERIMENTS.md records measured vs
// published values.
package acfc
