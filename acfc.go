package acfc

import (
	"repro/internal/acm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/meta"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The core simulation surface. These aliases are the library's public API;
// the internal packages hold the implementations.
type (
	// System is one simulated machine: CPU, disks, file system, buffer
	// cache, ACM, and the processes running on it.
	System = core.System
	// Config describes a machine; see DefaultConfig.
	Config = core.Config
	// Proc is a simulated process with the read/write and fbehavior
	// system-call surface.
	Proc = core.Proc
	// ProcStats are the per-process counters (block I/Os, hits, misses).
	ProcStats = core.ProcStats
	// File is a simulated file.
	File = fs.File
	// FileID names a file for the cache.
	FileID = fs.FileID
	// Time is virtual time in microseconds.
	Time = sim.Time
	// Policy is a per-priority-level replacement policy (LRU or MRU).
	Policy = acm.Policy
	// Alloc selects the kernel's global allocation policy.
	Alloc = cache.Alloc
	// RevokeConfig tunes the foolish-manager revocation extension.
	RevokeConfig = cache.RevokeConfig
	// Geometry describes a disk model.
	Geometry = disk.Geometry
	// BlockID names one cached block.
	BlockID = cache.BlockID
	// CacheStats are the buffer cache's aggregate counters.
	CacheStats = cache.Stats
	// TraceEvent is one block access delivered to Config.Trace.
	TraceEvent = core.TraceEvent
	// Manager is a process's ACM manager (Proc.Manager).
	Manager = acm.Manager
	// Limits caps per-manager kernel resources (Config.ACMLimits).
	Limits = acm.Limits
	// Sched selects the disk drivers' scheduling (Config.DiskSched).
	Sched = disk.Sched
	// Disk is one simulated drive (System.Disk).
	Disk = disk.Disk
	// DiskStats are one drive's counters.
	DiskStats = disk.Stats
	// InodeCache is the separate metadata cache (System.InodeCache).
	InodeCache = meta.Cache
	// MetaStats are the inode cache's counters.
	MetaStats = meta.Stats
)

// Disk scheduling disciplines for Config.DiskSched.
const (
	// CLOOK is the BSD disksort elevator (the default).
	CLOOK = disk.CLOOK
	// FIFO serves requests in arrival order (for ablations).
	FIFO = disk.FIFO
)

// Replacement policies for SetPolicy.
const (
	LRU = acm.LRU
	MRU = acm.MRU
)

// Kernel allocation policies for Config.Alloc.
const (
	// GlobalLRU is the original kernel: plain global LRU, no
	// application control.
	GlobalLRU = cache.GlobalLRU
	// LRUSP is the paper's policy: LRU with swapping and placeholders.
	LRUSP = cache.LRUSP
	// LRUS is LRU-SP without placeholders (Table 1's "unprotected").
	LRUS = cache.LRUS
	// AllocLRU is two-level replacement without swapping or
	// placeholders (Figure 6's baseline).
	AllocLRU = cache.AllocLRU
)

// BlockSize is the file-system block size (8 KB).
const BlockSize = core.BlockSize

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Disk models from the paper's testbed.
var (
	RZ56 = disk.RZ56
	RZ26 = disk.RZ26
)

// Workload is one of the paper's benchmark applications; Launch runs one
// on a system.
type Workload = workload.App

// Mode selects how a workload treats the cache-control interface:
// Oblivious issues no fbehavior calls, Smart applies the paper's policy
// for that application, Foolish (ReadN only) applies a deliberately bad
// one.
type Mode = workload.Mode

// Workload modes.
const (
	Oblivious = workload.Oblivious
	Smart     = workload.Smart
	Foolish   = workload.Foolish
)

// The paper's Section 5 applications.
var (
	Cscope1      = workload.Cscope1      // cs1: symbol queries, 9 MB database
	Cscope2      = workload.Cscope2      // cs2: text queries, 18 MB package
	Cscope3      = workload.Cscope3      // cs3: text queries, 10 MB package
	Dinero       = workload.Dinero       // din: cache simulator over an 8 MB trace
	Glimpse      = workload.Glimpse      // gli: text retrieval, 2 MB index + 40 MB articles
	LinkEditor   = workload.LinkEditor   // ldk: linking the kernel from 25 MB of objects
	PostgresJoin = workload.PostgresJoin // pjn: indexed join on the Wisconsin benchmark
	SortBench    = workload.Sort         // sort: 17 MB external sort
)

// ReadN builds the synthetic probe of Section 6: it reads groups of n
// blocks five times each across a file of fileBlocks blocks on the given
// disk.
func ReadN(n, fileBlocks int32, disk int) Workload { return workload.ReadN(n, fileBlocks, disk) }

// Read300 is the paper's background process (N=300 over 1310 blocks).
func Read300(disk int) Workload { return workload.Read300(disk) }

// Launch prepares a workload's files and spawns a process running it.
func Launch(sys *System, w Workload, mode Mode) *Proc { return workload.Launch(sys, w, mode) }

// NewSystem builds a simulated machine.
func NewSystem(cfg Config) *System { return core.NewSystem(cfg) }

// DefaultConfig is the paper's machine: 6.4 MB cache, LRU-SP allocation,
// one RZ56 and one RZ26 on a shared SCSI bus, DEC 5000/240-class CPU
// costs, single-block read-ahead, and a 30-second update daemon.
func DefaultConfig() Config { return core.DefaultConfig() }

// MB converts binary megabytes to bytes for Config.CacheBytes.
func MB(mb float64) int64 { return core.MB(mb) }
