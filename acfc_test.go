package acfc_test

import (
	"testing"

	acfc "repro"
)

// TestQuickstart runs the doc.go example end to end through the public
// API.
func TestQuickstart(t *testing.T) {
	sys := acfc.NewSystem(acfc.DefaultConfig())
	f := sys.CreateFile("trace", 0, 1024)
	p := sys.Spawn("app", func(p *acfc.Proc) {
		if err := p.EnableControl(); err != nil {
			t.Error(err)
			return
		}
		if err := p.SetPriority(f, 0); err != nil {
			t.Error(err)
		}
		if err := p.SetPolicy(0, acfc.MRU); err != nil {
			t.Error(err)
		}
		for pass := 0; pass < 9; pass++ {
			p.ReadSeq(f, 0, int32(f.Size()))
		}
	})
	sys.Run()
	ios := p.Stats().BlockIOs()
	if ios < 1024 {
		t.Errorf("BlockIOs = %d, below compulsory", ios)
	}
	if ios > 4000 {
		t.Errorf("BlockIOs = %d; MRU policy not effective", ios)
	}
	if p.Elapsed() <= 0 {
		t.Error("no elapsed time")
	}
}

// TestPublicWorkloads exercises the exported workload constructors.
func TestPublicWorkloads(t *testing.T) {
	cfg := acfc.DefaultConfig()
	cfg.CacheBytes = acfc.MB(6.4)
	sys := acfc.NewSystem(cfg)
	p := acfc.Launch(sys, acfc.Dinero(), acfc.Smart)
	q := acfc.Launch(sys, acfc.Read300(0), acfc.Oblivious)
	sys.Run()
	if p.Stats().BlockIOs() == 0 || q.Stats().BlockIOs() == 0 {
		t.Error("workloads did no I/O")
	}
}

// TestPublicConstants spot-checks the re-exported names.
func TestPublicConstants(t *testing.T) {
	if acfc.BlockSize != 8192 {
		t.Errorf("BlockSize = %d", acfc.BlockSize)
	}
	if acfc.Second != 1000*acfc.Millisecond || acfc.Millisecond != 1000*acfc.Microsecond {
		t.Error("time units inconsistent")
	}
	if acfc.RZ56.Name != "RZ56" || acfc.RZ26.Name != "RZ26" {
		t.Error("disk models wrong")
	}
	if acfc.GlobalLRU.String() != "global-lru" || acfc.LRUSP.String() != "lru-sp" {
		t.Error("alloc names wrong")
	}
	if acfc.LRU.String() != "LRU" || acfc.MRU.String() != "MRU" {
		t.Error("policy names wrong")
	}
}

// TestRevokeConfigThroughPublicAPI exercises the revocation extension via
// the facade.
func TestRevokeConfigThroughPublicAPI(t *testing.T) {
	cfg := acfc.DefaultConfig()
	cfg.Revoke = acfc.RevokeConfig{Enabled: true, MinDecisions: 200, MistakeRatio: 0.3}
	sys := acfc.NewSystem(cfg)
	acfc.Launch(sys, acfc.Read300(0), acfc.Foolish)
	acfc.Launch(sys, acfc.ReadN(400, 1170, 0), acfc.Oblivious)
	sys.Run()
	if sys.Cache().Stats().Revocations != 1 {
		t.Errorf("Revocations = %d, want 1", sys.Cache().Stats().Revocations)
	}
}

// TestTraceHook exercises Config.Trace through the public API.
func TestTraceHook(t *testing.T) {
	cfg := acfc.DefaultConfig()
	var events int
	var sawWrite, sawHit bool
	cfg.Trace = func(ev acfc.TraceEvent) {
		events++
		if ev.Write {
			sawWrite = true
		}
		if ev.Hit {
			sawHit = true
		}
	}
	sys := acfc.NewSystem(cfg)
	f := sys.CreateFile("data", 0, 10)
	sys.Spawn("app", func(p *acfc.Proc) {
		out := p.CreateFile("out", 0, 0)
		p.ReadSeq(f, 0, 10)
		p.ReadSeq(f, 0, 10)
		p.WriteSeq(out, 0, 3)
	})
	sys.Run()
	if events != 23 {
		t.Errorf("trace saw %d events, want 23", events)
	}
	if !sawWrite || !sawHit {
		t.Error("trace missing writes or hits")
	}
}
