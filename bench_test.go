// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one benchmark family per experiment. Each iteration runs the
// full simulated experiment; ns/op therefore measures simulator
// throughput, and the custom metrics report the science:
//
//	io_ratio       block I/Os under LRU-SP divided by the original kernel
//	elapsed_ratio  elapsed time under LRU-SP divided by the original kernel
//	paper_io_ratio the ratio published in the paper, for comparison
//
// Run with: go test -bench=. -benchmem
package acfc_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/expt"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchSingle runs one Figure 4 cell: a single application at one cache
// size under both kernels.
func benchSingle(b *testing.B, app string, mb float64, sizeIdx int) {
	var orig, sp expt.RunResult
	for i := 0; i < b.N; i++ {
		orig = expt.Run(expt.RunSpec{
			Apps:    []expt.AppSpec{{Make: expt.Registry[app], Mode: workload.Oblivious}},
			CacheMB: mb, Alloc: cache.GlobalLRU,
		})
		sp = expt.Run(expt.RunSpec{
			Apps:    []expt.AppSpec{{Make: expt.Registry[app], Mode: workload.Smart}},
			CacheMB: mb, Alloc: cache.LRUSP,
		})
	}
	b.ReportMetric(float64(sp.TotalIOs)/float64(orig.TotalIOs), "io_ratio")
	b.ReportMetric(sp.TotalElapsed.Seconds()/orig.TotalElapsed.Seconds(), "elapsed_ratio")
	p := expt.PaperSingles[app]
	b.ReportMetric(float64(p.IOsSP[sizeIdx])/float64(p.IOsOrig[sizeIdx]), "paper_io_ratio")
}

// BenchmarkFig4 regenerates Figure 4 (and appendix Tables 5 and 6): every
// application at every cache size.
func BenchmarkFig4(b *testing.B) {
	for _, app := range []string{"din", "cs1", "cs2", "cs3", "gli", "ldk", "pjn", "sort"} {
		for i, mb := range expt.Sizes {
			app, mb, i := app, mb, i
			b.Run(fmt.Sprintf("%s/%gMB", app, mb), func(b *testing.B) {
				benchSingle(b, app, mb, i)
			})
		}
	}
}

// benchMix runs one Figure 5 cell: a workload mix under both kernels.
func benchMix(b *testing.B, mix []string, mb float64) {
	var orig, sp expt.RunResult
	mkSpecs := func(mode workload.Mode) []expt.AppSpec {
		var out []expt.AppSpec
		for _, n := range mix {
			out = append(out, expt.AppSpec{Make: expt.Registry[n], Mode: mode})
		}
		return out
	}
	for i := 0; i < b.N; i++ {
		orig = expt.Run(expt.RunSpec{Apps: mkSpecs(workload.Oblivious), CacheMB: mb, Alloc: cache.GlobalLRU})
		sp = expt.Run(expt.RunSpec{Apps: mkSpecs(workload.Smart), CacheMB: mb, Alloc: cache.LRUSP})
	}
	b.ReportMetric(float64(sp.TotalIOs)/float64(orig.TotalIOs), "io_ratio")
	b.ReportMetric(sp.TotalElapsed.Seconds()/orig.TotalElapsed.Seconds(), "elapsed_ratio")
}

// BenchmarkFig5 regenerates Figure 5: the nine concurrent mixes, LRU-SP vs
// the original kernel.
func BenchmarkFig5(b *testing.B) {
	for _, mix := range expt.Fig5Mixes {
		for _, mb := range []float64{6.4, 16} {
			mix, mb := mix, mb
			b.Run(fmt.Sprintf("%s/%gMB", strings.Join(mix, "+"), mb), func(b *testing.B) {
				benchMix(b, mix, mb)
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: ALLOC-LRU vs LRU-SP on the five
// mixes.
func BenchmarkFig6(b *testing.B) {
	for _, mix := range expt.Fig6Mixes {
		mix := mix
		b.Run(strings.Join(mix, "+"), func(b *testing.B) {
			mkSpecs := func() []expt.AppSpec {
				var out []expt.AppSpec
				for _, n := range mix {
					out = append(out, expt.AppSpec{Make: expt.Registry[n], Mode: workload.Smart})
				}
				return out
			}
			var sp, al expt.RunResult
			for i := 0; i < b.N; i++ {
				sp = expt.Run(expt.RunSpec{Apps: mkSpecs(), CacheMB: 6.4, Alloc: cache.LRUSP})
				al = expt.Run(expt.RunSpec{Apps: mkSpecs(), CacheMB: 6.4, Alloc: cache.AllocLRU})
			}
			// Above 1.0: ALLOC-LRU does more I/O than LRU-SP, the
			// paper's point that swapping matters.
			b.ReportMetric(float64(al.TotalIOs)/float64(sp.TotalIOs), "alloclru_io_ratio")
		})
	}
}

// BenchmarkTable1 regenerates the placeholder experiment: probe ReadN I/Os
// under Oblivious / Unprotected / Protected settings.
func BenchmarkTable1(b *testing.B) {
	for si, setting := range expt.PaperTable1.Settings {
		for ni, n := range expt.PaperTable1.Ns {
			setting, n, si, ni := setting, n, si, ni
			b.Run(fmt.Sprintf("%s/Read%d", setting, n), func(b *testing.B) {
				bgMode, alloc := workload.Oblivious, cache.LRUSP
				if si > 0 {
					bgMode = workload.Foolish
				}
				if setting == "Unprotected" {
					alloc = cache.LRUS
				}
				var res expt.RunResult
				for i := 0; i < b.N; i++ {
					res = expt.Run(expt.RunSpec{
						Apps: []expt.AppSpec{
							{Make: func() workload.App { return workload.Read300(0) }, Mode: bgMode},
							{Make: func() workload.App { return workload.Probe(n, 0) }, Mode: workload.Oblivious},
						},
						CacheMB: 6.4, Alloc: alloc,
					})
				}
				b.ReportMetric(float64(res.PerApp[1].BlockIOs), "probe_ios")
				b.ReportMetric(float64(expt.PaperTable1.BlockIOs[setting][ni]), "paper_probe_ios")
			})
		}
	}
}

// BenchmarkTable2 regenerates the foolish-process experiment: each smart
// application next to an oblivious or foolish Read300.
func BenchmarkTable2(b *testing.B) {
	for _, partner := range expt.PaperTable2.Partners {
		for _, policy := range []string{"oblivious", "foolish"} {
			partner, policy := partner, policy
			b.Run(partner+"/"+policy, func(b *testing.B) {
				bgMode := workload.Oblivious
				if policy == "foolish" {
					bgMode = workload.Foolish
				}
				var res expt.RunResult
				for i := 0; i < b.N; i++ {
					res = expt.Run(expt.RunSpec{
						Apps: []expt.AppSpec{
							{Make: expt.Registry[partner], Mode: workload.Smart},
							{Make: func() workload.App { return workload.Read300(0) }, Mode: bgMode},
						},
						CacheMB: 6.4, Alloc: cache.LRUSP,
					})
				}
				b.ReportMetric(float64(res.PerApp[0].BlockIOs), "app_ios")
				b.ReportMetric(res.PerApp[0].Elapsed.Seconds(), "app_seconds")
			})
		}
	}
}

// benchTable34 runs Table 3 (one disk) or Table 4 (two disks): the
// oblivious Read300's elapsed time next to oblivious vs smart partners.
func benchTable34(b *testing.B, readDisk int) {
	for _, partner := range expt.PaperTable3.Partners {
		for _, mode := range []workload.Mode{workload.Oblivious, workload.Smart} {
			partner, mode := partner, mode
			b.Run(fmt.Sprintf("%s/%v", partner, mode), func(b *testing.B) {
				var res expt.RunResult
				for i := 0; i < b.N; i++ {
					res = expt.Run(expt.RunSpec{
						Apps: []expt.AppSpec{
							{Make: expt.Registry[partner], Mode: mode},
							{Make: func() workload.App { return workload.Read300(readDisk) }, Mode: workload.Oblivious},
						},
						CacheMB: 6.4, Alloc: cache.LRUSP,
					})
				}
				b.ReportMetric(res.PerApp[1].Elapsed.Seconds(), "read300_seconds")
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (smart partners vs oblivious
// Read300, one disk).
func BenchmarkTable3(b *testing.B) { benchTable34(b, 0) }

// BenchmarkTable4 regenerates Table 4 (Read300 on its own disk).
func BenchmarkTable4(b *testing.B) { benchTable34(b, 1) }

// BenchmarkAblation exercises the revocation extension and the read-ahead
// model ablation.
func BenchmarkAblation(b *testing.B) {
	b.Run("revocation", func(b *testing.B) {
		var res expt.RunResult
		for i := 0; i < b.N; i++ {
			res = expt.Run(expt.RunSpec{
				Apps: []expt.AppSpec{
					{Make: func() workload.App { return workload.Read300(0) }, Mode: workload.Foolish},
					{Make: func() workload.App { return workload.Probe(400, 0) }, Mode: workload.Oblivious},
				},
				CacheMB: 6.4, Alloc: cache.LRUSP,
				Revoke: cache.RevokeConfig{Enabled: true, MinDecisions: 200, MistakeRatio: 0.3},
			})
		}
		b.ReportMetric(float64(res.CacheStats.Revocations), "revocations")
		b.ReportMetric(float64(res.PerApp[0].BlockIOs), "foolish_ios")
	})
	b.Run("readahead-off", func(b *testing.B) {
		var res expt.RunResult
		for i := 0; i < b.N; i++ {
			res = expt.Run(expt.RunSpec{
				Apps:    []expt.AppSpec{{Make: expt.Registry["din"], Mode: workload.Smart}},
				CacheMB: 6.4, Alloc: cache.LRUSP,
				Opts: expt.Options{ReadAheadOff: true},
			})
		}
		b.ReportMetric(res.TotalElapsed.Seconds(), "din_seconds")
	})
}

// BenchmarkPolicies replays each workload's reference stream through
// standalone LRU, MRU and Belady-OPT caches at the paper's default size,
// reporting how close LRU gets to the optimum (the headroom application
// control is after).
func BenchmarkPolicies(b *testing.B) {
	for _, app := range []string{"din", "cs2", "pjn", "sort"} {
		app := app
		b.Run(app, func(b *testing.B) {
			var lruOverOpt float64
			for i := 0; i < b.N; i++ {
				tr := expt.CaptureTrace(app)
				res := trace.Compare(tr.Refs, 819)
				lruOverOpt = float64(res[0].Misses) / float64(res[2].Misses)
			}
			b.ReportMetric(lruOverOpt, "lru_over_opt")
		})
	}
}

// BenchmarkVM runs the Section 7 virtual-memory transfer experiment.
func BenchmarkVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := expt.VM(nil)
		if len(tables) != 1 {
			b.Fatal("vm experiment shape changed")
		}
	}
}
