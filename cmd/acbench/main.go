// Command acbench regenerates every table and figure of "Implementation
// and Performance of Application-Controlled File Caching" (Cao, Felten,
// Li; OSDI 1994) on the simulated reproduction, printing each measurement
// next to the paper's published value.
//
// Usage:
//
//	acbench [-run all|fig4|fig5|fig6|table1|table2|table3|table4|ablation]
//	        [-sizes 6.4,8,12,16]
//
// Block I/O counts should land close to the paper's; elapsed times are
// produced by a calibrated CPU/disk model and should match in shape
// (who wins, by roughly what factor, where the crossovers fall).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/expt"
)

func main() {
	runFlag := flag.String("run", "all", "experiment to run: all, or one of "+strings.Join(expt.Order, ", "))
	sizesFlag := flag.String("sizes", "", "comma-separated cache sizes in MB for fig4/fig5/fig6 (default: the paper's 6.4,8,12,16)")
	chartsFlag := flag.Bool("charts", false, "render Figures 4-6 as ASCII bar charts instead of tables")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acbench:", err)
		os.Exit(2)
	}

	if *chartsFlag {
		for _, c := range expt.Charts(sizes) {
			c.Render(os.Stdout)
		}
		return
	}

	ids := expt.Order
	if *runFlag != "all" {
		if _, ok := expt.Experiments[*runFlag]; !ok {
			fmt.Fprintf(os.Stderr, "acbench: unknown experiment %q (want all, %s)\n",
				*runFlag, strings.Join(expt.Order, ", "))
			os.Exit(2)
		}
		ids = []string{*runFlag}
	}

	for _, id := range ids {
		var tables []expt.Table
		switch {
		case sizes != nil && id == "fig4":
			tables = expt.Fig4(sizes)
		case sizes != nil && id == "fig5":
			tables = expt.Fig5(sizes)
		case sizes != nil && id == "fig6":
			tables = expt.Fig6(sizes)
		default:
			tables = expt.Experiments[id]()
		}
		for i := range tables {
			tables[i].Render(os.Stdout)
		}
	}
}

func parseSizes(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad cache size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
