// Command acbench regenerates every table and figure of "Implementation
// and Performance of Application-Controlled File Caching" (Cao, Felten,
// Li; OSDI 1994) on the simulated reproduction, printing each measurement
// next to the paper's published value.
//
// Usage:
//
//	acbench [-run all|fig4|fig5|fig6|table1|table2|table3|table4|ablation]
//	        [-sizes 6.4,8,12,16] [-parallel N] [-json] [-charts]
//	        [-tournament] [-cpuprofile file] [-memprofile file]
//	        [-nofastpath]
//
// -parallel N runs up to N independent simulations concurrently (default
// GOMAXPROCS; 1 selects the legacy serial path). Every simulation is a
// deterministic function of its spec and results are always assembled in
// presentation order, so the rendered output is byte-identical at any
// parallelism; values below 1 are rejected. Specs shared between
// experiments (the normalization baselines of fig5/fig6, the
// table2/table3 partner runs) are memoized and execute once per
// invocation.
//
// -json replaces the tables on stdout with a machine-readable report:
// per-experiment wall-clock timings, totals, run-cache hit/miss/bypass
// counters, and the aggregated DES engine counters (events scheduled,
// goroutine handoffs, lookahead fast advances, heap high-water), grouped
// per parallelism level under "runs". Without an explicit -parallel, the
// suite is timed twice — serial and at GOMAXPROCS — so the report
// captures the scheduler speedup (on a single-CPU machine only the
// serial entry is emitted, since GOMAXPROCS coincides with it); with
// -parallel N it records that single level.
//
// -nofastpath forces every virtual-time sleep through the event heap and
// scheduler, disabling the engine's lookahead fast path. Tables and
// figures are byte-identical either way — the flag exists to verify
// exactly that, and to A/B the fast path's wall-clock contribution.
//
// -tournament appends the allocation-policy tournament — every
// registered kernel policy over the scan-heavy Figure 5 mixes, apps
// oblivious so the policy is the only variable — after the requested
// experiments: rendered tables normally, a "policy_tournament" section
// (one structured cell per policy × mix) under -json. It is also
// reachable as -run tournament, which runs only the tournament tables.
//
// -charts renders Figures 4-6 as ASCII bar charts instead of tables. It
// honors -parallel and -sizes (the chart runs go through the same
// scheduler and run cache), ignores -run (charts always cover exactly
// Figures 4-6), and rejects -json, which applies to the table pipeline
// only.
//
// -cpuprofile and -memprofile write pprof profiles (a CPU profile of the
// whole run; a post-GC heap profile at exit) for feeding `go tool pprof`.
//
// Block I/O counts should land close to the paper's; elapsed times are
// produced by a calibrated CPU/disk model and should match in shape
// (who wins, by roughly what factor, where the crossovers fall).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/stats"
)

// expTiming is one experiment's wall-clock cost in the -json report.
type expTiming struct {
	ID     string  `json:"id"`
	Millis float64 `json:"wall_ms"`
}

// jsonRun is one full sweep of the requested experiments at a fixed
// parallelism level.
type jsonRun struct {
	Parallelism int              `json:"parallelism"`
	Experiments []expTiming      `json:"experiments"`
	TotalMillis float64          `json:"total_wall_ms"`
	RunCache    expt.RunnerStats `json:"run_cache"`
	// Kernel aggregates the kernel counters — buffer cache and DES
	// engine — over every simulation the sweep executed, in the same
	// stats.Snapshot schema the acfcd daemon's /metrics endpoint
	// exposes. In the sim block, fast_advances vs handoffs shows how
	// much of the virtual-time advancement skipped the goroutine
	// scheduler.
	Kernel stats.Snapshot `json:"kernel"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Run  string    `json:"run"`
	Runs []jsonRun `json:"runs"`
	// PolicyTournament is the -tournament matrix: one cell per
	// (allocation policy, scan-heavy mix), policy-major.
	PolicyTournament []expt.TournamentResult `json:"policy_tournament,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	runFlag := flag.String("run", "all", "experiment to run: all, or one of "+strings.Join(expt.Order, ", "))
	sizesFlag := flag.String("sizes", "", "comma-separated cache sizes in MB for fig4/fig5/fig6 (default: the paper's 6.4,8,12,16)")
	chartsFlag := flag.Bool("charts", false, "render Figures 4-6 as ASCII bar charts instead of tables")
	parallelFlag := flag.Int("parallel", 0, "max concurrent simulations (default GOMAXPROCS; 1 = serial)")
	jsonFlag := flag.Bool("json", false, "emit machine-readable timings and run-cache stats instead of tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to `file`")
	memProfile := flag.String("memprofile", "", "write a post-GC heap profile at exit to `file`")
	noFastPath := flag.Bool("nofastpath", false, "disable the DES engine's lookahead fast path (output must be byte-identical; for verification and A/B timing)")
	tournamentFlag := flag.Bool("tournament", false, "append the allocation-policy tournament (every policy over the scan-heavy mixes)")
	flag.Parse()

	baseOpts := expt.Options{NoFastPath: *noFastPath}

	if isSet("parallel") && *parallelFlag < 1 {
		fmt.Fprintf(os.Stderr, "acbench: -parallel must be >= 1 (got %d)\n", *parallelFlag)
		return 2
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acbench:", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "acbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live retention, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "acbench:", err)
			}
		}()
	}

	if *chartsFlag {
		if *jsonFlag {
			fmt.Fprintln(os.Stderr, "acbench: -charts cannot be combined with -json")
			return 2
		}
		runner := expt.NewRunner(*parallelFlag, baseOpts)
		for _, c := range expt.Charts(runner, sizes) {
			c.Render(os.Stdout)
		}
		return 0
	}

	ids := expt.Order
	if *runFlag != "all" {
		if _, ok := expt.Experiments[*runFlag]; !ok {
			fmt.Fprintf(os.Stderr, "acbench: unknown experiment %q (want all, %s)\n",
				*runFlag, strings.Join(expt.Order, ", "))
			return 2
		}
		ids = []string{*runFlag}
	}

	if !*jsonFlag {
		runner := expt.NewRunner(*parallelFlag, baseOpts)
		runSuite(runner, ids, sizes, os.Stdout)
		if *tournamentFlag && *runFlag != "tournament" {
			for _, tb := range expt.Tournament(runner) {
				tb.Render(os.Stdout)
			}
		}
		return 0
	}

	// -json: time the suite per parallelism level. Without an explicit
	// -parallel, record both the serial baseline and the GOMAXPROCS
	// sweep so the report captures the scheduler speedup — except on a
	// single-CPU machine, where GOMAXPROCS is also 1 and a second entry
	// would just repeat the serial measurement.
	levels := []int{*parallelFlag}
	if !isSet("parallel") {
		levels = []int{1}
		if runtime.GOMAXPROCS(0) > 1 {
			levels = append(levels, 0)
		}
	}
	report := jsonReport{Run: *runFlag}
	for _, lvl := range levels {
		report.Runs = append(report.Runs, runSuite(expt.NewRunner(lvl, baseOpts), ids, sizes, io.Discard))
	}
	if *tournamentFlag {
		report.PolicyTournament = expt.RunTournament(expt.NewRunner(*parallelFlag, baseOpts), 6.4)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "acbench:", err)
		return 1
	}
	return 0
}

// runSuite renders the requested experiments through one runner and
// returns the per-experiment and total wall-clock timings.
func runSuite(runner *expt.Runner, ids []string, sizes []float64, out io.Writer) jsonRun {
	res := jsonRun{Parallelism: runner.Parallelism()}
	start := time.Now()
	for _, id := range ids {
		expStart := time.Now()
		var tables []expt.Table
		switch {
		case sizes != nil && id == "fig4":
			tables = expt.Fig4(runner, sizes)
		case sizes != nil && id == "fig5":
			tables = expt.Fig5(runner, sizes)
		case sizes != nil && id == "fig6":
			tables = expt.Fig6(runner, sizes)
		default:
			tables = expt.Experiments[id](runner)
		}
		for i := range tables {
			tables[i].Render(out)
		}
		res.Experiments = append(res.Experiments,
			expTiming{ID: id, Millis: float64(time.Since(expStart)) / float64(time.Millisecond)})
	}
	res.TotalMillis = float64(time.Since(start)) / float64(time.Millisecond)
	res.RunCache = runner.Stats()
	res.Kernel = runner.KernelSnapshot()
	return res
}

// isSet reports whether the named flag appeared on the command line (so
// "-parallel 0" is rejected rather than silently meaning GOMAXPROCS).
func isSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseSizes(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad cache size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
