package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("6.4, 8,12")
	if err != nil || len(got) != 3 || got[0] != 6.4 || got[2] != 12 {
		t.Errorf("parseSizes = %v, %v", got, err)
	}
	if got, err := parseSizes(""); got != nil || err != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-3", "6.4,,8"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}
