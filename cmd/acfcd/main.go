// Command acfcd is the application-controlled file cache daemon: the
// Live kernel — buffer cache, ACM, file namespace, block store — served
// to client processes over a unix or TCP socket, split into -shards
// independent replacement domains (files hash to shards at open time).
// Each connection is one owner/manager session; disconnecting releases
// the owner's blocks.
//
// Usage:
//
//	acfcd -listen unix:/tmp/acfcd.sock [-metrics 127.0.0.1:9090]
//	      [-pprof 127.0.0.1:6060]
//	      [-cache-mb 6.4] [-alloc lru-sp] [-adapt-alloc global-lru,arc]
//	      [-store mem|/path/to/file]
//	      [-shards 1] [-idle 2m] [-inflight 32] [-evict-on-close]
//	      [-check-invariants] [-writeback-depth 0] [-readahead 0]
//	      [-fill-workers 4] [-store-latency 0] [-store-jitter 0]
//	      [-cluster tcp:h1:p1,tcp:h2:p2,...] [-origin mem|dir:/path]
//	      [-ring-replicas 128]
//
// -alloc names any policy in the kernel's registry (cache.AllocNames:
// global-lru, lru-sp, lru-s, alloc-lru, arc, awrp); clients can re-point
// a live daemon with the set_alloc wire op. -adapt-alloc instead hands
// each shard's policy to the online adapter, which samples the listed
// candidates by windowed hit ratio and settles on the best.
//
// With -cluster, the daemon joins a static multi-node tier: the member
// list (which must include this node's -listen spec) is hashed into a
// consistent-hash ring, files route to their owning node, and local
// misses pull through a warm peer or the shared -origin. SIGINT/SIGTERM
// then run the planned-leave protocol: drain, flush dirty blocks to the
// origin, stream hot blocks to the new hash owners, exit.
//
// Without -cluster, SIGINT/SIGTERM drain gracefully: in-flight requests
// finish, new ones are refused, and the kernel flushes dirty blocks
// before exit. The single-node path is untouched by cluster mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: registers the /debug/pprof handlers
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	listenFlag := flag.String("listen", "unix:/tmp/acfcd.sock", "listen address: unix:/path or tcp:host:port")
	metricsFlag := flag.String("metrics", "", "HTTP /metrics listen address (empty: disabled)")
	pprofFlag := flag.String("pprof", "", "HTTP net/http/pprof listen address (empty: disabled)")
	cacheFlag := flag.Float64("cache-mb", 6.4, "cache size in MB")
	allocFlag := flag.String("alloc", "lru-sp", fmt.Sprintf("allocation policy: %v", cache.AllocNames()))
	adaptFlag := flag.String("adapt-alloc", "", "comma-separated candidate policies for the per-shard online adapter (empty: off)")
	adaptEveryFlag := flag.Int64("adapt-every", 0, "adapter epoch length in completed hit windows (0: default 4)")
	adaptHystFlag := flag.Int64("adapt-hysteresis-bp", 0, "adapter switch threshold in basis points of hit ratio (0: default 200)")
	storeFlag := flag.String("store", "mem", "block store: mem, or a backing file path")
	idleFlag := flag.Duration("idle", 2*time.Minute, "session idle timeout")
	inflightFlag := flag.Int("inflight", 32, "max pipelined requests per session")
	evictFlag := flag.Bool("evict-on-close", false, "evict (write back) a closing session's blocks instead of disowning them")
	invFlag := flag.Bool("check-invariants", false, "run kernel invariant checks after every session close")
	shardsFlag := flag.Int("shards", 1, "independent kernel shards (files hash to shards at open)")
	graceFlag := flag.Duration("grace", 10*time.Second, "shutdown drain grace before forcing disconnects")
	wbDepthFlag := flag.Int("writeback-depth", 0, "async write-behind queue depth per shard (0: synchronous write-backs)")
	raFlag := flag.Int("readahead", 0, "server-side sequential read-ahead depth (0: disabled)")
	fillWorkersFlag := flag.Int("fill-workers", 0, "fill worker pool size per shard (0: default 4; negative: goroutine per fill)")
	storeLatFlag := flag.Duration("store-latency", 0, "per-op latency injected into the mem store (benchmarking)")
	storeJitFlag := flag.Duration("store-jitter", 0, "max extra random latency per mem-store op")
	clusterFlag := flag.String("cluster", "", "comma-separated member list (incl. this node's -listen spec); empty: single-node mode")
	originFlag := flag.String("origin", "mem", "cluster origin: mem (per-process; testing only) or dir:/shared/path")
	replicasFlag := flag.Int("ring-replicas", 0, "virtual nodes per member on the hash ring (0: default 128)")
	flag.Parse()

	alloc, err := cache.ParseAlloc(*allocFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acfcd: %v\n", err)
		return 2
	}
	var adaptAlloc []string
	if *adaptFlag != "" {
		adaptAlloc = strings.Split(*adaptFlag, ",")
		for _, name := range adaptAlloc {
			if _, err := cache.ParseAlloc(name); err != nil {
				fmt.Fprintf(os.Stderr, "acfcd: -adapt-alloc: %v\n", err)
				return 2
			}
		}
	}
	var store disk.Store
	if *storeFlag != "mem" {
		if *storeLatFlag > 0 || *storeJitFlag > 0 {
			fmt.Fprintln(os.Stderr, "acfcd: -store-latency/-store-jitter only apply to -store mem")
			return 2
		}
		fst, err := disk.NewFileStore(*storeFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acfcd: store: %v\n", err)
			return 1
		}
		store = fst
	} else if *storeLatFlag > 0 || *storeJitFlag > 0 {
		ms := disk.NewMemStore()
		ms.SetLatency(*storeLatFlag, *storeJitFlag)
		store = ms
	}

	scfg := server.Config{
		Kernel: core.LiveConfig{
			CacheBytes:     core.MB(*cacheFlag),
			Alloc:          alloc,
			Store:          store,
			EvictOnRelease: *evictFlag,
			ReadAhead:      *raFlag > 0,
			ReadAheadDepth: *raFlag,
			WallClock:      true,
		},
		Shards:            *shardsFlag,
		WritebackDepth:    *wbDepthFlag,
		FillWorkers:       *fillWorkersFlag,
		MaxInflight:       *inflightFlag,
		IdleTimeout:       *idleFlag,
		CheckInvariants:   *invFlag,
		AdaptAlloc:        adaptAlloc,
		AdaptEvery:        *adaptEveryFlag,
		AdaptHysteresisBP: *adaptHystFlag,
	}

	// Cluster mode swaps the base store for the cluster tier's NodeStore;
	// the single-node path below is byte-for-byte the non-cluster daemon.
	var node *cluster.Node
	srv := (*server.Server)(nil)
	if *clusterFlag != "" {
		if store != nil {
			fmt.Fprintln(os.Stderr, "acfcd: -store/-store-latency do not combine with -cluster (the shared -origin is the backing tier)")
			return 2
		}
		var origin cluster.Origin
		switch {
		case *originFlag == "mem":
			origin = cluster.NewMemOrigin()
		case strings.HasPrefix(*originFlag, "dir:"):
			var err error
			origin, err = cluster.NewDirOrigin(strings.TrimPrefix(*originFlag, "dir:"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "acfcd: %v\n", err)
				return 1
			}
		default:
			fmt.Fprintf(os.Stderr, "acfcd: bad -origin %q (want mem or dir:/path)\n", *originFlag)
			return 2
		}
		members := strings.Split(*clusterFlag, ",")
		n, err := cluster.NewNode(cluster.NodeConfig{
			Self:     *listenFlag,
			Members:  members,
			Origin:   origin,
			Replicas: *replicasFlag,
			Server:   scfg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "acfcd: %v\n", err)
			return 1
		}
		node = n
		srv = n.Srv
	} else {
		srv = server.New(scfg)
	}

	ln, err := listen(*listenFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acfcd: %v\n", err)
		return 1
	}
	if node != nil {
		fmt.Fprintf(os.Stderr, "acfcd: serving on %s (%s, %.1f MB cache, %d shard(s), cluster of %d, origin %s)\n",
			ln.Addr(), *allocFlag, *cacheFlag, srv.Shards(), node.Ring().Len(), *originFlag)
	} else {
		fmt.Fprintf(os.Stderr, "acfcd: serving on %s (%s, %.1f MB cache, %d shard(s), store %s)\n",
			ln.Addr(), *allocFlag, *cacheFlag, srv.Shards(), *storeFlag)
	}

	if *metricsFlag != "" {
		mln, err := net.Listen("tcp", *metricsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acfcd: metrics: %v\n", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		go http.Serve(mln, mux)
		fmt.Fprintf(os.Stderr, "acfcd: metrics on http://%s/metrics\n", mln.Addr())
	}

	if *pprofFlag != "" {
		pln, err := net.Listen("tcp", *pprofFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acfcd: pprof: %v\n", err)
			return 1
		}
		// nil handler = http.DefaultServeMux, where the pprof import
		// registered /debug/pprof; kept off the -metrics mux so the
		// profiling port can stay loopback-only.
		go http.Serve(pln, nil)
		fmt.Fprintf(os.Stderr, "acfcd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "acfcd: %v: draining (%v grace)\n", sig, *graceFlag)
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "acfcd: serve: %v\n", err)
			return 1
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *graceFlag)
	defer cancel()
	if node != nil {
		// Planned leave: drain, flush dirty to the origin, stream hot
		// blocks to their new hash owners, release the peer connections.
		if err := node.Leave(ctx, true); err != nil {
			fmt.Fprintf(os.Stderr, "acfcd: leave: %v\n", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "acfcd: left the cluster, bye")
		return 0
	}
	srv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "acfcd: close: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "acfcd: drained, bye")
	return 0
}

// listen parses "unix:/path" or "tcp:addr" and listens. A stale unix
// socket from an unclean previous exit is removed first.
func listen(spec string) (net.Listener, error) {
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || (network != "unix" && network != "tcp") {
		return nil, fmt.Errorf("bad -listen %q (want unix:/path or tcp:host:port)", spec)
	}
	if network == "unix" {
		if _, err := os.Stat(addr); err == nil {
			if c, err := net.Dial("unix", addr); err == nil {
				c.Close()
				return nil, fmt.Errorf("%s: already in use", addr)
			}
			os.Remove(addr)
		}
	}
	return net.Listen(network, addr)
}
