// Command actrace runs one of the paper's workloads and either dumps its
// block reference stream or prints a summary of the run: per-process
// statistics, buffer-cache counters, manager decision quality, and
// per-disk behaviour.
//
// Usage:
//
//	actrace -app din [-mode smart] [-cache 6.4] [-alloc lru-sp] [-dump]
//
// With -dump, every access is written to stdout as
//
//	time proc file:block [R|W] [hit|miss]
//
// which is handy for eyeballing an application's access pattern or
// feeding another cache simulator.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	appFlag := flag.String("app", "", "workload: "+strings.Join(appNames(), ", "))
	modeFlag := flag.String("mode", "smart", "oblivious, smart or foolish")
	cacheFlag := flag.Float64("cache", 6.4, "cache size in MB")
	allocFlag := flag.String("alloc", "lru-sp", fmt.Sprintf("allocation policy: %v", cache.AllocNames()))
	dumpFlag := flag.Bool("dump", false, "dump the block reference stream")
	compareFlag := flag.Bool("compare", false, "replay the reference stream through standalone LRU, MRU and Belady-OPT caches")
	flag.Parse()

	mk, ok := expt.Registry[*appFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "actrace: unknown app %q (want %s)\n", *appFlag, strings.Join(appNames(), ", "))
		os.Exit(2)
	}
	mode, err := workload.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actrace: %v\n", err)
		os.Exit(2)
	}
	alloc, err := cache.ParseAlloc(*allocFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actrace: %v\n", err)
		os.Exit(2)
	}
	if mode != workload.Oblivious && alloc == cache.GlobalLRU {
		fmt.Fprintln(os.Stderr, "actrace: the original kernel (global-lru) supports only oblivious mode")
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.CacheBytes = core.MB(*cacheFlag)
	cfg.Alloc = alloc
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	var captured trace.Trace
	if *compareFlag {
		cfg.Trace = func(ev core.TraceEvent) { captured.Append(ev.File, ev.Block) }
	} else if *dumpFlag {
		cfg.Trace = func(ev core.TraceEvent) {
			op, res := "R", "miss"
			if ev.Write {
				op = "W"
			}
			if ev.Hit {
				res = "hit"
			}
			fmt.Fprintf(out, "%12d %s f%d:%d %s %s\n", int64(ev.Time), ev.Name, ev.File, ev.Block, op, res)
		}
	}

	sys := core.NewSystem(cfg)
	app := mk()
	p := workload.Launch(sys, app, mode)
	sys.Run()

	if *compareFlag {
		capacity := cfg.CacheBlocks()
		fmt.Fprintf(out, "%s reference stream: %d refs, %d unique blocks; standalone caches of %d blocks (%.1f MB)\n",
			app.Name(), captured.Len(), captured.Unique(), capacity, *cacheFlag)
		for _, r := range trace.Compare(captured.Refs, capacity) {
			fmt.Fprintf(out, "  %-4s %7d misses  %5.1f%% hit ratio\n", r.Policy, r.Misses, 100*r.HitRatio())
		}
		return
	}
	if *dumpFlag {
		return
	}
	st := p.Stats()
	fmt.Fprintf(out, "%s (%s) on %s, %.1f MB cache\n", app.Name(), mode, alloc, *cacheFlag)
	fmt.Fprintf(out, "  elapsed        %v\n", p.Elapsed())
	fmt.Fprintf(out, "  block I/Os     %d (demand %d, read-ahead %d, write-back %d)\n",
		st.BlockIOs(), st.DemandReads, st.Prefetches, st.WriteBacks)
	fmt.Fprintf(out, "  accesses       %d reads, %d writes (%d hits, %d misses, %.1f%% hit ratio)\n",
		st.ReadCalls, st.WriteCalls, st.Hits, st.Misses,
		100*float64(st.Hits)/float64(st.Hits+st.Misses))
	fmt.Fprintf(out, "  fbehavior      %d calls\n", st.FbehaviorCalls)
	if ic := sys.InodeCache(); ic != nil && st.Opens > 0 {
		ms := ic.Stats()
		fmt.Fprintf(out, "  metadata       %d opens, %d inode reads (inode cache %.0f%% hit)\n",
			st.Opens, st.MetadataReads, 100*ms.HitRatio())
	}
	cs := sys.Cache().Stats()
	fmt.Fprintf(out, "cache: %d evictions, %d overrules, %d placeholder hits, %d revocations\n",
		cs.Evictions, cs.Overrules, cs.PlaceholderHits, cs.Revocations)
	if m, ok := sys.ACM().ManagerOf(p.ID()); ok {
		fmt.Fprintf(out, "manager: %d decisions, %d overrules, %d mistakes\n",
			m.Decisions, m.Overrules, m.Mistakes)
		for _, ls := range m.LevelSizes(nil) { // already sorted by priority
			fmt.Fprintf(out, "  pool %+d: %d blocks (%s)\n", ls.Prio, ls.N, m.PolicyOf(ls.Prio))
		}
	}
	for i := 0; i < 2; i++ {
		d := sys.Disk(i)
		ds := d.Stats()
		if ds.IOs() == 0 {
			continue
		}
		fmt.Fprintf(out, "disk %s: %d reads, %d writes, %d sequential, %d positioned, max queue %d\n",
			d.Geometry().Name, ds.Reads, ds.Writes, ds.Sequential, ds.RandomAcc, ds.MaxQueue)
	}
}

func appNames() []string {
	var names []string
	for n := range expt.Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
