package main

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// stubSrv is the shared server state behind every stubConn a replayer
// dials: the file namespace survives reconnects (exactly like acfcd's),
// and refuseReads scripts how many read/write accesses to refuse with
// StatusRefused before recovering.
type stubSrv struct {
	dials       int
	nextID      fs.FileID
	files       map[string]fs.FileID
	refuseReads int
	log         []string // per-connection ops, for asserting the reconnect dance
}

func newStubSrv() *stubSrv {
	return &stubSrv{files: make(map[string]fs.FileID)}
}

type stubConn struct{ s *stubSrv }

func (s *stubSrv) dial() (replayConn, error) {
	s.dials++
	s.log = append(s.log, "dial")
	return &stubConn{s: s}, nil
}

func refusedErr() error {
	return &client.StatusError{Status: server.StatusRefused, Msg: "server shutting down"}
}

func (c *stubConn) Open(name string) (client.File, error) {
	c.s.log = append(c.s.log, "open "+name)
	id, ok := c.s.files[name]
	if !ok {
		return client.File{}, &client.StatusError{Status: server.StatusNotFound, Msg: name}
	}
	return client.File{ID: id, Size: 4}, nil
}

func (c *stubConn) Create(name string, d, sizeBlocks int) (client.File, error) {
	c.s.log = append(c.s.log, "create "+name)
	c.s.nextID++
	c.s.files[name] = c.s.nextID
	return client.File{ID: c.s.nextID, Size: sizeBlocks}, nil
}

func (c *stubConn) Remove(name string) error {
	delete(c.s.files, name)
	return nil
}

func (c *stubConn) Control(enable bool) error {
	c.s.log = append(c.s.log, fmt.Sprintf("control %v", enable))
	return nil
}

func (c *stubConn) Fbehavior(op client.FbOp, a client.FbArgs) (client.FbResult, error) {
	c.s.log = append(c.s.log, fmt.Sprintf("fbehavior %d", op))
	return client.FbResult{}, nil
}

func (c *stubConn) access() error {
	if c.s.refuseReads > 0 {
		c.s.refuseReads--
		c.s.log = append(c.s.log, "refuse")
		return refusedErr()
	}
	c.s.log = append(c.s.log, "access")
	return nil
}

func (c *stubConn) ReadInto(f fs.FileID, blk int32, off, size int, dst []byte) (bool, error) {
	if err := c.access(); err != nil {
		return false, err
	}
	clear(dst[:size])
	return true, nil
}

func (c *stubConn) ReadNoData(f fs.FileID, blk int32, off, size int) (bool, error) {
	if err := c.access(); err != nil {
		return false, err
	}
	return true, nil
}

func (c *stubConn) Write(f fs.FileID, blk int32, off int, payload []byte) (bool, error) {
	if err := c.access(); err != nil {
		return false, err
	}
	return false, nil
}

func (c *stubConn) Close() error { return nil }

// transcript builds a minimal replayable event list: create a file,
// enable control, then n reads of it.
func transcript(reads int) []expt.ReplayEvent {
	evs := []expt.ReplayEvent{
		{IsCtl: true, Ctl: core.CtlEvent{Op: core.CtlCreateFile, File: 7, FileName: "f", Disk: 0, Size: 4}},
		{IsCtl: true, Ctl: core.CtlEvent{Op: core.CtlControl, Enable: true}},
	}
	for i := 0; i < reads; i++ {
		evs = append(evs, expt.ReplayEvent{Access: core.TraceEvent{File: 7, Block: int32(i % 4), Off: 0, Size: 8}})
	}
	return evs
}

// TestReplayRefusedRetriesOnce: a single mid-pipeline refusal counts one
// refused event, the replayer reconnects (re-enabling control and
// re-opening its files), retries that event once, and finishes the
// transcript with no double count anywhere.
func TestReplayRefusedRetriesOnce(t *testing.T) {
	s := newStubSrv()
	s.refuseReads = 1
	evs := transcript(3)
	st, err := replayOne(s.dial, "p/", evs, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.requests != int64(len(evs)) {
		t.Errorf("requests = %d, want %d (one per event, retries excluded)", st.requests, len(evs))
	}
	if st.refused != 1 {
		t.Errorf("refused = %d, want 1", st.refused)
	}
	if st.errors != 0 {
		t.Errorf("errors = %d, want 0", st.errors)
	}
	if st.hits+st.misses != 3 {
		t.Errorf("hits+misses = %d, want 3 (the refused access succeeded on retry)", st.hits+st.misses)
	}
	if s.dials != 2 {
		t.Errorf("dials = %d, want 2 (initial + reconnect)", s.dials)
	}
	// The reconnect must rebuild session state before the retry: a fresh
	// dial, control re-enabled, the created file re-opened.
	want := []string{"dial", "control true", "open p/f"}
	idx := indexOf(s.log, "refuse")
	if idx < 0 || len(s.log) < idx+1+len(want) {
		t.Fatalf("log too short after refusal: %v", s.log)
	}
	for i, w := range want {
		if got := s.log[idx+1+i]; got != w {
			t.Errorf("reconnect step %d: got %q, want %q (log %v)", i, got, w, s.log)
		}
	}
}

// TestReplayRefusedNeverRecounts: when the server keeps refusing (a real
// drain), the event is still counted refused exactly once — the retry
// stops the replay instead of inflating the counter, and the replayer
// exits cleanly with what it measured.
func TestReplayRefusedNeverRecounts(t *testing.T) {
	s := newStubSrv()
	s.refuseReads = 1000 // refuse every access, before and after reconnect
	evs := transcript(5)
	st, err := replayOne(s.dial, "p/", evs, false)
	if err != nil {
		t.Fatalf("a drained server must end the replay cleanly, got %v", err)
	}
	if st.refused != 1 {
		t.Errorf("refused = %d, want exactly 1 (no recount on retry)", st.refused)
	}
	// create + control + the one refused access; the drained replayer
	// must not keep issuing (and counting) the rest of the transcript.
	if st.requests != 3 {
		t.Errorf("requests = %d, want 3", st.requests)
	}
	if st.errors != 0 {
		t.Errorf("errors = %d, want 0", st.errors)
	}
	if s.dials != 2 {
		t.Errorf("dials = %d, want 2 (one reconnect attempt, then stop)", s.dials)
	}
}

// TestReplayHardErrorAborts: a non-refusal failure is a real error — it
// counts once and kills the replay with the error propagated.
func TestReplayHardErrorAborts(t *testing.T) {
	s := newStubSrv()
	evs := []expt.ReplayEvent{
		{IsCtl: true, Ctl: core.CtlEvent{Op: core.CtlCreateFile, File: 7, FileName: "f", Disk: 0, Size: 4}},
		// Access to a file id the transcript never created.
		{Access: core.TraceEvent{File: 9, Block: 0, Size: 8}},
	}
	st, err := replayOne(s.dial, "p/", evs, false)
	if err == nil {
		t.Fatal("want an error for an access before its create event")
	}
	if errors.Is(err, errReplayDrained) {
		t.Fatalf("hard error misclassified as drain: %v", err)
	}
	if st.errors != 1 || st.refused != 0 {
		t.Errorf("errors = %d, refused = %d; want 1, 0", st.errors, st.refused)
	}
	if s.dials != 1 {
		t.Errorf("dials = %d, want 1 (no reconnect on hard errors)", s.dials)
	}
}

func indexOf(log []string, s string) int {
	for i, l := range log {
		if l == s {
			return i
		}
	}
	return -1
}
