// Command acload replays the paper's workloads against a running acfcd
// server and reports what the wire saw: throughput, latency percentiles,
// hit ratios, and how many requests the server refused (drain) versus
// failed.
//
// The replay transcript comes from the DES: acload records the workload
// once in simulation (expt.Record) — every block access and every
// fbehavior call, in issue order — then N concurrent clients each replay
// that transcript through their own session and their own copy of the
// files (names are prefixed per client).
//
// A refusal mid-pipeline does not kill a replayer: the event is counted
// refused exactly once, the session reconnects (re-opening its files and
// re-enabling control) and retries the event once. A retry that is
// refused again means the server is draining for real; the replayer
// stops without recounting, so refusal totals count refused events, not
// refused wire frames.
//
// Usage:
//
//	acload -addr unix:/tmp/acfcd.sock -app cs1 -mode smart -clients 4
//	acload -selfserve -app cs1 -clients 16          # in-process server
//	acload -selfserve -json > BENCH_server.json     # shards x clients sweep
//
// With -selfserve, -shards gives the kernel shard counts to measure; in
// -json mode it is a comma-separated sweep (default 1,4) and each shard
// count gets a fresh in-process server swept over 1/4/16 clients.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/expt"
	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// sweepResult is one (clients, replay) measurement, also the -json row.
type sweepResult struct {
	Clients    int     `json:"clients"`
	Requests   int64   `json:"requests"`
	Refused    int64   `json:"refused"`
	Errors     int64   `json:"errors"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"requests_per_sec"`
	// BytesPerSec is payload bandwidth: block bytes actually moved over
	// the wire (read responses unless -nodata, write request payloads),
	// headers excluded.
	BytesPerSec float64 `json:"bytes_per_sec"`
	// AllocsPerOp is process-wide heap allocations per request over the
	// sweep (runtime Mallocs delta / requests). With -selfserve it
	// covers both sides of the wire, which is the number the zero-copy
	// serve path is meant to hold down; against an external server it
	// measures only this client process.
	AllocsPerOp float64 `json:"allocs_per_op"`
	HitRatio    float64 `json:"hit_ratio"`
	P50us       float64 `json:"p50_us"`
	P90us       float64 `json:"p90_us"`
	P99us       float64 `json:"p99_us"`
}

// shardSweep is the client sweep at one kernel shard count, with that
// server's end-of-sweep kernel counters (aggregated, plus the per-shard
// breakdown when shards > 1).
type shardSweep struct {
	Shards   int              `json:"shards"`
	Sweeps   []sweepResult    `json:"sweeps"`
	Kernel   stats.Snapshot   `json:"kernel"`
	PerShard []stats.Snapshot `json:"per_shard,omitempty"`
}

// jsonReport is the -json output document (BENCH_server.json).
type jsonReport struct {
	App         string       `json:"app"`
	Mode        string       `json:"mode"`
	Alloc       string       `json:"alloc"`
	CacheMB     float64      `json:"cache_mb"`
	Events      int          `json:"events_per_client"`
	ShardSweeps []shardSweep `json:"shard_sweeps"`
	HotBlock    *hotReport   `json:"hot_block,omitempty"`
	ColdFill    *coldReport  `json:"cold_fill,omitempty"`
	// ClusterSweeps is the -cluster section: the multi-node tier at
	// 1/2/4 nodes, cold and hot scans through the routing client.
	ClusterSweeps []clusterSweep `json:"cluster_sweeps,omitempty"`
}

// hotReport is the -hot section: the shared-hot-file contention scenario
// run under the synchronous (PR 5 baseline) kernel configuration and
// again with the fill pipeline (write-behind + read-ahead) on, against
// the same latency-injected store. The FillStats in each run's kernel
// snapshot are the evidence the pipeline works: coalesced_misses > 0 and
// store_reads < cache misses.
type hotReport struct {
	Clients        int      `json:"clients"`
	FileBlocks     int      `json:"file_blocks"`
	Rounds         int      `json:"rounds"`
	WritePct       int      `json:"write_pct"`
	StoreLatencyUs float64  `json:"store_latency_us"`
	StoreJitterUs  float64  `json:"store_jitter_us"`
	Runs           []hotRun `json:"runs"`
}

// hotRun is one kernel configuration's measurement in the hot scenario.
type hotRun struct {
	Config         string         `json:"config"`
	WritebackDepth int            `json:"writeback_depth"`
	ReadAheadDepth int            `json:"readahead_depth"`
	Result         sweepResult    `json:"result"`
	Kernel         stats.Snapshot `json:"kernel"`
}

// coldReport is the -cold section: the cold-fill scenario. Every run gets
// a brand-new store, pre-populated out of band so the cache starts empty
// and every block of the scan is a demand or read-ahead fill — the pure
// fill-path workload batching is meant to speed up. Each backend is
// measured unbatched (goroutine-per-fill, FillWorkers < 0) and batched
// (the worker pool + run coalescing); the req/s ratio and the batched
// run's batched_fills counter are the evidence.
type coldReport struct {
	Clients    int `json:"clients"`
	Files      int `json:"files"`
	FileBlocks int `json:"file_blocks"`
	// StoreLatencyUs is the per-batch latency injected into the mem-store
	// runs (the file-store runs pay real I/O instead).
	StoreLatencyUs float64   `json:"store_latency_us"`
	ReadAheadDepth int       `json:"readahead_depth"`
	Runs           []coldRun `json:"runs"`
}

// coldRun is one (store backend, fill configuration) cold measurement.
type coldRun struct {
	Store       string         `json:"store"` // "mem+lat" or "file"
	Config      string         `json:"config"`
	FillWorkers int            `json:"fill_workers"`
	Result      sweepResult    `json:"result"`
	Kernel      stats.Snapshot `json:"kernel"`
	// ScalarReads/VectorReads are the FileStore's read call counters over
	// the sweep (file backend only): the syscall-count view of batching.
	ScalarReads int64 `json:"scalar_reads,omitempty"`
	VectorReads int64 `json:"vector_reads,omitempty"`
}

func run() int {
	addrFlag := flag.String("addr", "unix:/tmp/acfcd.sock", "server address: unix:/path or tcp:host:port")
	appFlag := flag.String("app", "cs1", "workload to replay (an expt.Registry name)")
	modeFlag := flag.String("mode", "smart", "oblivious, smart or foolish")
	clientsFlag := flag.Int("clients", 4, "concurrent client sessions")
	cacheFlag := flag.Float64("cache-mb", 6.4, "cache size (capture spec; and the self-served server)")
	allocFlag := flag.String("alloc", "lru-sp", "allocation policy (capture spec; and the self-served server)")
	shardsFlag := flag.String("shards", "", "kernel shard counts for -selfserve (comma-separated; default 1, or 1,4 with -json)")
	nodataFlag := flag.Bool("nodata", false, "suppress block bytes in read responses")
	selfFlag := flag.Bool("selfserve", false, "start an in-process server instead of dialing -addr")
	jsonFlag := flag.Bool("json", false, "sweep 1/4/16 clients per shard count and emit JSON (implies quiet tables)")
	hotFlag := flag.Bool("hot", false, "also run the shared-hot-file contention scenario (requires -selfserve): synchronous vs pipelined kernel over a slow store")
	coldFlag := flag.Bool("cold", false, "also run the cold-fill scenario (requires -selfserve): batched vs unbatched fill path against a fresh store per run")
	clusterFlag := flag.Bool("cluster", false, "also run the multi-node cluster sweep (requires -selfserve): 1/2/4 in-process nodes over a shared origin, cold + hot scans through the routing client")
	flag.Parse()

	mk, ok := expt.Registry[*appFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "acload: unknown app %q\n", *appFlag)
		return 2
	}
	mode, err := workload.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acload: %v\n", err)
		return 2
	}
	alloc, err := cache.ParseAlloc(*allocFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acload: %v\n", err)
		return 2
	}
	if *shardsFlag != "" && !*selfFlag {
		fmt.Fprintln(os.Stderr, "acload: -shards requires -selfserve (an external server owns its shard count)")
		return 2
	}
	if *hotFlag && !*selfFlag {
		fmt.Fprintln(os.Stderr, "acload: -hot requires -selfserve (the scenario controls the kernel configuration)")
		return 2
	}
	if *coldFlag && !*selfFlag {
		fmt.Fprintln(os.Stderr, "acload: -cold requires -selfserve (every run needs a fresh store)")
		return 2
	}
	if *clusterFlag && !*selfFlag {
		fmt.Fprintln(os.Stderr, "acload: -cluster requires -selfserve (the sweep owns the node processes)")
		return 2
	}
	shardCounts := []int{1}
	if *jsonFlag && *selfFlag {
		shardCounts = []int{1, 4}
	}
	if *shardsFlag != "" {
		shardCounts, err = parseShards(*shardsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acload: %v\n", err)
			return 2
		}
	}

	fmt.Fprintf(os.Stderr, "acload: recording %s (%s) in simulation...\n", *appFlag, mode)
	rec := expt.Record(expt.RunSpec{
		Apps:    []expt.AppSpec{{Name: *appFlag, Make: mk, Mode: mode}},
		CacheMB: *cacheFlag,
		Alloc:   alloc,
		// Read-ahead I/O is untraced, so the transcript must not depend on it.
		Opts: expt.Options{ReadAheadOff: true},
	})
	fmt.Fprintf(os.Stderr, "acload: %d events per client\n", len(rec.Events))

	clientSweeps := []int{*clientsFlag}
	if *jsonFlag {
		clientSweeps = []int{1, 4, 16}
	}
	report := jsonReport{App: *appFlag, Mode: mode.String(), Alloc: alloc.String(), CacheMB: *cacheFlag, Events: len(rec.Events)}

	for hi, nsh := range shardCounts {
		network, addr := "", ""
		var srv *server.Server
		if *selfFlag {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "acload: %v\n", err)
				return 1
			}
			srv = server.New(server.Config{
				Kernel: core.LiveConfig{
					CacheBytes: core.MB(*cacheFlag),
					Alloc:      rec.Spec.Alloc,
					WallClock:  true,
				},
				Shards: nsh,
			})
			go srv.Serve(ln)
			network, addr = "tcp", ln.Addr().String()
			fmt.Fprintf(os.Stderr, "acload: self-serving on %s (%d shard(s))\n", addr, nsh)
		} else {
			var ok bool
			network, addr, ok = strings.Cut(*addrFlag, ":")
			if !ok || (network != "unix" && network != "tcp") {
				fmt.Fprintf(os.Stderr, "acload: bad -addr %q\n", *addrFlag)
				return 2
			}
		}

		label := fmt.Sprintf("%d shard(s)", nsh)
		if srv == nil {
			label = "server" // an external daemon owns its shard count
		}
		ss := shardSweep{Shards: nsh}
		for si, n := range clientSweeps {
			res, err := runSweep(network, addr, fmt.Sprintf("h%ds%d", hi, si), n, rec.Events, *nodataFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acload: %v\n", err)
				return 1
			}
			ss.Sweeps = append(ss.Sweeps, res)
			fmt.Fprintf(os.Stderr,
				"acload: %s %2d clients: %7d reqs in %6.2fs = %8.0f req/s, %6.1f MB/s, %5.1f allocs/op, hit %5.1f%%, p50 %5.0fµs p90 %5.0fµs p99 %6.0fµs, refused %d, errors %d\n",
				label, n, res.Requests, res.Seconds, res.Throughput, res.BytesPerSec/1e6, res.AllocsPerOp, 100*res.HitRatio, res.P50us, res.P90us, res.P99us, res.Refused, res.Errors)
		}

		if srv != nil {
			if m, ok := srv.Metrics(); ok {
				ss.Kernel = m.Kernel
				if len(m.Shards) > 1 {
					for _, sm := range m.Shards {
						ss.PerShard = append(ss.PerShard, sm.Kernel)
					}
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx)
			cancel()
			srv.Close()
		} else if c, err := client.Dial(network, addr); err == nil {
			if sr, err := c.Stats(); err == nil {
				ss.Kernel = sr.Kernel
				ss.PerShard = sr.PerShard
				if len(sr.PerShard) > 0 {
					ss.Shards = len(sr.PerShard)
				}
			}
			c.Close()
		}
		report.ShardSweeps = append(report.ShardSweeps, ss)
	}

	if *hotFlag {
		hr, err := runHot(hotParams{
			clients:  16,
			blocks:   2048,
			rounds:   2,
			writePct: 10,
			latency:  300 * time.Microsecond,
			jitter:   100 * time.Microsecond,
			cacheMB:  *cacheFlag,
			alloc:    alloc,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "acload: hot: %v\n", err)
			return 1
		}
		report.HotBlock = hr
	}

	if *coldFlag {
		cr, err := runCold(coldParams{
			clients: 16,
			files:   16,
			blocks:  256,
			raDepth: 8,
			latency: 300 * time.Microsecond,
			cacheMB: *cacheFlag,
			alloc:   alloc,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "acload: cold: %v\n", err)
			return 1
		}
		report.ColdFill = cr
	}

	if *clusterFlag {
		sweeps, err := runClusterBench(clusterParams{
			clients: 16,
			files:   12,
			blocks:  64,
			nodes:   []int{1, 2, 4},
			cacheMB: *cacheFlag,
			alloc:   alloc,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "acload: cluster: %v\n", err)
			return 1
		}
		report.ClusterSweeps = sweeps
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "acload: %v\n", err)
			return 1
		}
	}
	return 0
}

// hotParams parameterizes the shared-hot-file contention scenario.
type hotParams struct {
	clients  int
	blocks   int // shared file size; larger than the cache, so scans evict
	rounds   int
	writePct int // partial writes mixed into the scan (dirty victims)
	latency  time.Duration
	jitter   time.Duration
	cacheMB  float64
	alloc    cache.Alloc
}

// runHot measures the hot-block contention scenario: every client scans
// the same file (all of which lives in one shard, by file-affinity
// routing), so concurrent demand misses pile onto the same blocks and
// the mixed-in writes evict dirty victims under load. The store sleeps
// per operation, so the configurations differ where it matters: the
// synchronous baseline pays every write-back inside the kernel loop and
// every miss at full store latency; the pipelined kernel queues
// write-backs to the flusher and hides read latency behind read-ahead.
func runHot(p hotParams) (*hotReport, error) {
	hr := &hotReport{
		Clients:        p.clients,
		FileBlocks:     p.blocks,
		Rounds:         p.rounds,
		WritePct:       p.writePct,
		StoreLatencyUs: float64(p.latency) / float64(time.Microsecond),
		StoreJitterUs:  float64(p.jitter) / float64(time.Microsecond),
	}
	configs := []struct {
		name    string
		wbDepth int
		raDepth int
	}{
		{"synchronous", 0, 0}, // the PR 5 kernel: inline write-backs, no read-ahead
		{"pipelined", 64, 4},
	}
	for _, cfg := range configs {
		ms := disk.NewMemStore()
		ms.SetLatency(p.latency, p.jitter)
		srv := server.New(server.Config{
			Kernel: core.LiveConfig{
				CacheBytes:     core.MB(p.cacheMB),
				Alloc:          p.alloc,
				Store:          ms,
				ReadAhead:      cfg.raDepth > 0,
				ReadAheadDepth: cfg.raDepth,
				WallClock:      true,
			},
			Shards:         1,
			WritebackDepth: cfg.wbDepth,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln)
		res, err := hotSweep(ln.Addr().String(), p)
		run := hotRun{Config: cfg.name, WritebackDepth: cfg.wbDepth, ReadAheadDepth: cfg.raDepth, Result: res}
		if m, ok := srv.Metrics(); ok {
			run.Kernel = m.Kernel
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		srv.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		fmt.Fprintf(os.Stderr,
			"acload: hot %-11s %2d clients: %7d reqs in %6.2fs = %8.0f req/s, %6.1f MB/s, %5.1f allocs/op, hit %5.1f%%, p50 %5.0fµs p90 %5.0fµs p99 %6.0fµs (coalesced %d, store reads %d, wb queued %d, prefetch hits %d)\n",
			cfg.name, p.clients, res.Requests, res.Seconds, res.Throughput, res.BytesPerSec/1e6, res.AllocsPerOp, 100*res.HitRatio,
			res.P50us, res.P90us, res.P99us,
			run.Kernel.Fill.CoalescedMisses, run.Kernel.Fill.StoreReads,
			run.Kernel.Fill.WritebacksQueued, run.Kernel.Fill.PrefetchHits)
		hr.Runs = append(hr.Runs, run)
	}
	return hr, nil
}

// hotSweep drives p.clients concurrent sessions through the shared scan
// and aggregates the wire measurements, sweepResult-shaped.
func hotSweep(addr string, p hotParams) (sweepResult, error) {
	setup, err := client.Dial("tcp", addr)
	if err != nil {
		return sweepResult{}, err
	}
	f, err := setup.Create("hot/shared", 0, p.blocks)
	if err != nil {
		setup.Close()
		return sweepResult{}, err
	}
	setup.Close()
	_ = f

	type out struct {
		st  replayStats
		err error
	}
	outs := make([]out, p.clients)
	var wg sync.WaitGroup
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < p.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i].st, outs[i].err = hotClient(addr, i, p)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	res := sweepResult{Clients: p.clients, Seconds: elapsed.Seconds()}
	var hits, accesses, bytes int64
	var all []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, fmt.Errorf("client %d: %w", i, outs[i].err)
		}
		st := &outs[i].st
		res.Requests += st.requests
		hits += st.hits
		accesses += st.hits + st.misses
		bytes += st.bytes
		all = append(all, st.latencies...)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
		res.BytesPerSec = float64(bytes) / res.Seconds
	}
	if res.Requests > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Requests)
	}
	if accesses > 0 {
		res.HitRatio = float64(hits) / float64(accesses)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50us = percentileUs(all, 0.50)
	res.P90us = percentileUs(all, 0.90)
	res.P99us = percentileUs(all, 0.99)
	return res, nil
}

// hotClient is one session's share of the hot scan: sequential rounds
// over the shared file with partial writes mixed in by a deterministic
// per-client stream, so every run issues the same request mix.
func hotClient(addr string, idx int, p hotParams) (replayStats, error) {
	var st replayStats
	c, err := client.Dial("tcp", addr)
	if err != nil {
		return st, err
	}
	defer c.Close()
	f, err := c.Open("hot/shared")
	if err != nil {
		return st, err
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(idx + i)
	}
	readBuf := make([]byte, core.BlockSize)
	rng := uint64(idx)*0x9e3779b97f4a7c15 + 1
	st.latencies = make([]time.Duration, 0, p.rounds*p.blocks)
	for r := 0; r < p.rounds; r++ {
		for blk := int32(0); int(blk) < p.blocks; blk++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			st.requests++
			t0 := time.Now()
			var hit bool
			if int(rng%100) < p.writePct {
				hit, err = c.Write(f.ID, blk, 0, payload)
				st.bytes += int64(len(payload))
			} else {
				hit, err = c.ReadInto(f.ID, blk, 0, core.BlockSize, readBuf)
				st.bytes += core.BlockSize
			}
			st.latencies = append(st.latencies, time.Since(t0))
			if err != nil {
				return st, err
			}
			if hit {
				st.hits++
			} else {
				st.misses++
			}
		}
	}
	return st, nil
}

// coldParams parameterizes the cold-fill scenario.
type coldParams struct {
	clients int // one private file per client
	files   int
	blocks  int // blocks per file
	raDepth int
	latency time.Duration // mem-store per-batch latency
	cacheMB float64
	alloc   cache.Alloc
}

// runCold measures the fill path with nothing cached: every (backend,
// config) pair gets a fresh server over a fresh store whose blocks were
// written out of band, so the clients' sequential scans miss on every
// block and the whole request stream funnels through the fill pipeline.
// The unbatched config is the goroutine-per-fill baseline (one store
// call per block); the batched config is the worker pool, which retires
// each read-ahead run as one vectored store read. The mem backend makes
// the win visible as latency (one sleep per batch instead of per block),
// the file backend as syscalls (ScalarReads/VectorReads).
func runCold(p coldParams) (*coldReport, error) {
	cr := &coldReport{
		Clients:        p.clients,
		Files:          p.files,
		FileBlocks:     p.blocks,
		StoreLatencyUs: float64(p.latency) / float64(time.Microsecond),
		ReadAheadDepth: p.raDepth,
	}
	tmp, err := os.MkdirTemp("", "acload-cold")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	backends := []string{"mem+lat", "file"}
	configs := []struct {
		name        string
		fillWorkers int
	}{
		{"unbatched", -1}, // goroutine per fill: one store call per block
		{"batched", 0},    // default worker pool: one call per run
	}
	for _, backend := range backends {
		for _, cfg := range configs {
			run, err := coldRunOne(tmp, backend, cfg.name, cfg.fillWorkers, p)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", backend, cfg.name, err)
			}
			fmt.Fprintf(os.Stderr,
				"acload: cold %-7s %-9s %2d clients: %7d reqs in %6.2fs = %8.0f req/s, hit %5.1f%%, p50 %5.0fµs p99 %6.0fµs (store reads %d, batched fills %d, batch blocks %d, scalar/vector reads %d/%d)\n",
				backend, cfg.name, p.clients, run.Result.Requests, run.Result.Seconds, run.Result.Throughput, 100*run.Result.HitRatio,
				run.Result.P50us, run.Result.P99us,
				run.Kernel.Fill.StoreReads, run.Kernel.Fill.BatchedFills, run.Kernel.Fill.FillBatchBlocks,
				run.ScalarReads, run.VectorReads)
			cr.Runs = append(cr.Runs, run)
		}
	}
	return cr, nil
}

// coldRunOne builds one fresh store + server, creates the per-client
// files, writes their blocks straight to the store (bypassing the cache,
// which therefore stays empty), scans, and tears everything down.
func coldRunOne(tmpdir, backend, config string, fillWorkers int, p coldParams) (coldRun, error) {
	run := coldRun{Store: backend, Config: config, FillWorkers: fillWorkers}

	var store disk.Store
	var ms *disk.MemStore
	var fst *disk.FileStore
	switch backend {
	case "mem+lat":
		ms = disk.NewMemStore()
		store = ms
	case "file":
		var err error
		fst, err = disk.NewFileStore(fmt.Sprintf("%s/%s-%s.dat", tmpdir, backend, config))
		if err != nil {
			return run, err
		}
		store = fst
	}
	srv := server.New(server.Config{
		Kernel: core.LiveConfig{
			CacheBytes:     core.MB(p.cacheMB),
			Alloc:          p.alloc,
			Store:          store,
			ReadAhead:      p.raDepth > 0,
			ReadAheadDepth: p.raDepth,
			WallClock:      true,
		},
		Shards:         1, // wire file ids == store file ids, for the out-of-band populate
		WritebackDepth: 64,
		FillWorkers:    fillWorkers,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return run, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		srv.Close()
	}()
	addr := ln.Addr().String()

	// Create the files over the wire, then write every block directly to
	// the store: the cache never sees the bytes, so the scan is cold.
	setup, err := client.Dial("tcp", addr)
	if err != nil {
		return run, err
	}
	fids := make([]fs.FileID, p.files)
	for i := range fids {
		f, err := setup.Create(fmt.Sprintf("cold/f%d", i), 0, p.blocks)
		if err != nil {
			setup.Close()
			return run, err
		}
		fids[i] = f.ID
	}
	setup.Close()
	specs := make([]disk.BlockSpan, p.blocks)
	srcs := make([][]byte, p.blocks)
	blockBytes := make([]byte, p.blocks*core.BlockSize)
	for i, fid := range fids {
		for b := 0; b < p.blocks; b++ {
			buf := blockBytes[b*core.BlockSize : (b+1)*core.BlockSize]
			for j := range buf {
				buf[j] = byte(i + b + j)
			}
			specs[b] = disk.BlockSpan{File: int32(fid), Blk: int32(b)}
			srcs[b] = buf
		}
		for b, err := range disk.WriteBatch(store, specs, srcs) {
			if err != nil {
				return run, fmt.Errorf("populate file %d block %d: %w", i, b, err)
			}
		}
	}
	if ms != nil {
		ms.SetLatency(p.latency, 0) // after populate: setup writes are free
	}
	var r0, v0 int64
	if fst != nil {
		r0, v0, _, _ = fst.IOCounts()
	}

	type out struct {
		st  replayStats
		err error
	}
	outs := make([]out, p.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < p.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i].st, outs[i].err = coldClient(addr, i%p.files, p)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := sweepResult{Clients: p.clients, Seconds: elapsed.Seconds()}
	var hits, accesses, bytes int64
	var all []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return run, fmt.Errorf("client %d: %w", i, outs[i].err)
		}
		st := &outs[i].st
		res.Requests += st.requests
		hits += st.hits
		accesses += st.hits + st.misses
		bytes += st.bytes
		all = append(all, st.latencies...)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
		res.BytesPerSec = float64(bytes) / res.Seconds
	}
	if accesses > 0 {
		res.HitRatio = float64(hits) / float64(accesses)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50us = percentileUs(all, 0.50)
	res.P90us = percentileUs(all, 0.90)
	res.P99us = percentileUs(all, 0.99)
	run.Result = res

	if m, ok := srv.Metrics(); ok {
		run.Kernel = m.Kernel
	}
	if fst != nil {
		sr, vr, _, _ := fst.IOCounts()
		run.ScalarReads, run.VectorReads = sr-r0, vr-v0
	}
	return run, nil
}

// coldClient is one session's cold scan: a single sequential pass over
// its file, full-block reads, every one a miss.
func coldClient(addr string, fileIdx int, p coldParams) (replayStats, error) {
	var st replayStats
	c, err := client.Dial("tcp", addr)
	if err != nil {
		return st, err
	}
	defer c.Close()
	f, err := c.Open(fmt.Sprintf("cold/f%d", fileIdx))
	if err != nil {
		return st, err
	}
	buf := make([]byte, core.BlockSize)
	st.latencies = make([]time.Duration, 0, p.blocks)
	for blk := int32(0); int(blk) < p.blocks; blk++ {
		st.requests++
		t0 := time.Now()
		hit, err := c.ReadInto(f.ID, blk, 0, core.BlockSize, buf)
		st.latencies = append(st.latencies, time.Since(t0))
		st.bytes += core.BlockSize
		if err != nil {
			return st, err
		}
		if hit {
			st.hits++
		} else {
			st.misses++
		}
	}
	return st, nil
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// runSweep replays the transcript through n concurrent sessions, each
// against its own file namespace (tag distinguishes sweeps sharing one
// server), and aggregates the measurements.
func runSweep(network, addr, tag string, n int, events []expt.ReplayEvent, nodata bool) (sweepResult, error) {
	type clientOut struct {
		st  replayStats
		err error
	}
	dial := func() (replayConn, error) {
		c, err := client.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	outs := make([]clientOut, n)
	var wg sync.WaitGroup
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prefix := fmt.Sprintf("%sc%d/", tag, i)
			outs[i].st, outs[i].err = replayOne(dial, prefix, events, nodata)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	res := sweepResult{Clients: n, Seconds: elapsed.Seconds()}
	var hits, accesses, bytes int64
	var all []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, fmt.Errorf("client %d: %w", i, outs[i].err)
		}
		st := &outs[i].st
		res.Requests += st.requests
		res.Refused += st.refused
		res.Errors += st.errors
		hits += st.hits
		accesses += st.hits + st.misses
		bytes += st.bytes
		all = append(all, st.latencies...)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
		res.BytesPerSec = float64(bytes) / res.Seconds
	}
	if res.Requests > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Requests)
	}
	if accesses > 0 {
		res.HitRatio = float64(hits) / float64(accesses)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50us = percentileUs(all, 0.50)
	res.P90us = percentileUs(all, 0.90)
	res.P99us = percentileUs(all, 0.99)
	return res, nil
}

func percentileUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

type replayStats struct {
	requests  int64
	hits      int64
	misses    int64
	refused   int64
	errors    int64
	bytes     int64 // payload bytes moved (read responses, write payloads)
	latencies []time.Duration
}

// replayConn is the slice of the client API a replayer drives; a stub
// implementation backs the refused-accounting tests.
type replayConn interface {
	Open(name string) (client.File, error)
	Create(name string, d, sizeBlocks int) (client.File, error)
	Remove(name string) error
	Control(enable bool) error
	Fbehavior(op client.FbOp, a client.FbArgs) (client.FbResult, error)
	ReadInto(f fs.FileID, blk int32, off, size int, dst []byte) (bool, error)
	ReadNoData(f fs.FileID, blk int32, off, size int) (bool, error)
	Write(f fs.FileID, blk int32, off int, payload []byte) (bool, error)
	Close() error
}

// replayer replays one transcript through one session, reconnecting and
// retrying once when the server refuses an event mid-pipeline. The
// reconnect policy (backoff, session-state restore) is the shared
// client.Redialer; restore is its OnConnect hook.
type replayer struct {
	rd     *client.Redialer[replayConn]
	prefix string
	nodata bool

	c          replayConn
	files      map[fs.FileID]fs.FileID // recorded id -> server id
	names      map[fs.FileID]string    // recorded id -> server name, for re-open
	controlled bool
	buf        []byte // reused read destination (client-side zero-alloc)
	st         replayStats
}

// errReplayDrained marks a replayer that stopped cleanly because the
// server kept refusing (shutdown drain): what it measured stands, the
// remaining events are simply not issued.
var errReplayDrained = errors.New("acload: server draining; replay stopped")

// replayOne replays the whole transcript through one fresh session.
// Recorded file ids map to server files created under prefix; fbehavior
// and access events reproduce the workload call for call.
func replayOne(dial func() (replayConn, error), prefix string, events []expt.ReplayEvent, nodata bool) (replayStats, error) {
	r := &replayer{
		prefix: prefix,
		nodata: nodata,
		files:  make(map[fs.FileID]fs.FileID),
		names:  make(map[fs.FileID]string),
		buf:    make([]byte, core.BlockSize),
	}
	r.rd = &client.Redialer[replayConn]{Dial: dial, OnConnect: r.restore}
	c, err := r.rd.Get()
	if err != nil {
		return r.st, err
	}
	r.c = c
	defer func() { r.rd.Close() }()

	payload := make([]byte, core.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.st.latencies = make([]time.Duration, 0, len(events))

	for _, ev := range events {
		if err := r.step(ev, payload); err != nil {
			if errors.Is(err, errReplayDrained) {
				return r.st, nil
			}
			return r.st, err
		}
	}
	return r.st, nil
}

// step issues one event, counting it as exactly one request. A refusal
// counts refused once, reconnects and retries the same event once; the
// retry never recounts the event, whatever its outcome.
func (r *replayer) step(ev expt.ReplayEvent, payload []byte) error {
	r.st.requests++
	hit, isAccess, err := r.apply(ev, payload)
	if err == nil {
		if isAccess {
			if hit {
				r.st.hits++
			} else {
				r.st.misses++
			}
		}
		return nil
	}
	if !errors.Is(err, client.ErrRefused) && !errors.Is(err, client.ErrRevoked) {
		r.st.errors++
		return err
	}
	r.st.refused++
	if rerr := r.reconnect(); rerr != nil {
		// Nothing to reconnect to: the server is gone. The refusal stays
		// counted once and the replay ends cleanly.
		return errReplayDrained
	}
	hit, isAccess, err = r.apply(ev, payload)
	if err != nil {
		if errors.Is(err, client.ErrRefused) || errors.Is(err, client.ErrRevoked) {
			return errReplayDrained
		}
		r.st.errors++
		return err
	}
	if isAccess {
		if hit {
			r.st.hits++
		} else {
			r.st.misses++
		}
	}
	return nil
}

// reconnect discards the dead session and dials a fresh one through the
// redialer, whose OnConnect hook (restore) rebuilds the replayer's
// server state before the connection is handed back.
func (r *replayer) reconnect() error {
	r.rd.Invalidate(r.c)
	c, err := r.rd.Get()
	if err != nil {
		return err
	}
	r.c = c
	return nil
}

// restore rebuilds session state on a fresh connection: control
// re-enabled if it was on, every live file re-opened so the recorded
// ids resolve again. (Priorities are per-owner manager state; the
// replay reissues them only as the transcript reaches them, like the
// restarted real application would.)
func (r *replayer) restore(c replayConn) error {
	if r.controlled {
		if err := c.Control(true); err != nil {
			return err
		}
	}
	for rid, name := range r.names {
		f, err := c.Open(name)
		if err != nil {
			return err
		}
		r.files[rid] = f.ID
	}
	return nil
}

// apply issues one event on the current session and updates the file
// maps on success. For access events it also records the wire latency.
func (r *replayer) apply(ev expt.ReplayEvent, payload []byte) (hit, isAccess bool, err error) {
	if ev.IsCtl {
		ct := ev.Ctl
		switch ct.Op {
		case core.CtlCreateFile:
			name := r.prefix + ct.FileName
			var f client.File
			f, err = r.c.Create(name, ct.Disk, ct.Size)
			if err == nil {
				r.files[ct.File] = f.ID
				r.names[ct.File] = name
			}
		case core.CtlRemoveFile:
			err = r.c.Remove(r.prefix + ct.FileName)
			if err == nil {
				delete(r.files, ct.File)
				delete(r.names, ct.File)
			}
		case core.CtlControl:
			err = r.c.Control(ct.Enable)
			if err == nil {
				r.controlled = ct.Enable
			}
		case core.CtlSetPriority:
			_, err = r.c.Fbehavior(client.FbSetPriority, client.FbArgs{File: r.files[ct.File], Prio: ct.Prio})
		case core.CtlSetPolicy:
			_, err = r.c.Fbehavior(client.FbSetPolicy, client.FbArgs{Prio: ct.Prio, Policy: ct.Policy})
		case core.CtlSetTempPri:
			_, err = r.c.Fbehavior(client.FbSetTempPri, client.FbArgs{File: r.files[ct.File], Start: ct.Start, End: ct.End, Prio: ct.Prio})
		}
		return false, false, err
	}

	a := ev.Access
	fid, ok := r.files[a.File]
	if !ok {
		return false, false, fmt.Errorf("access to file %d before its create event", a.File)
	}
	t0 := time.Now()
	if a.Write {
		hit, err = r.c.Write(fid, a.Block, a.Off, payload[:a.Size])
		r.st.bytes += int64(a.Size)
	} else if r.nodata {
		hit, err = r.c.ReadNoData(fid, a.Block, a.Off, a.Size)
	} else {
		hit, err = r.c.ReadInto(fid, a.Block, a.Off, a.Size, r.buf)
		r.st.bytes += int64(a.Size)
	}
	r.st.latencies = append(r.st.latencies, time.Since(t0))
	return hit, true, err
}
