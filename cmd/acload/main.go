// Command acload replays the paper's workloads against a running acfcd
// server and reports what the wire saw: throughput, latency percentiles,
// hit ratios, and how many requests the server refused (drain) versus
// failed.
//
// The replay transcript comes from the DES: acload records the workload
// once in simulation (expt.Record) — every block access and every
// fbehavior call, in issue order — then N concurrent clients each replay
// that transcript through their own session and their own copy of the
// files (names are prefixed per client).
//
// Usage:
//
//	acload -addr unix:/tmp/acfcd.sock -app cs1 -mode smart -clients 4
//	acload -selfserve -app cs1 -clients 16          # in-process server
//	acload -selfserve -json > BENCH_server.json     # 1/4/16-client sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/stats"
	"repro/internal/workload"
)

var allocNames = map[string]cache.Alloc{
	"global-lru": cache.GlobalLRU,
	"lru-sp":     cache.LRUSP,
	"lru-s":      cache.LRUS,
	"alloc-lru":  cache.AllocLRU,
}

func main() {
	os.Exit(run())
}

// sweepResult is one (clients, replay) measurement, also the -json row.
type sweepResult struct {
	Clients    int     `json:"clients"`
	Requests   int64   `json:"requests"`
	Refused    int64   `json:"refused"`
	Errors     int64   `json:"errors"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"requests_per_sec"`
	HitRatio   float64 `json:"hit_ratio"`
	P50us      float64 `json:"p50_us"`
	P90us      float64 `json:"p90_us"`
	P99us      float64 `json:"p99_us"`
}

// jsonReport is the -json output document (BENCH_server.json).
type jsonReport struct {
	App     string         `json:"app"`
	Mode    string         `json:"mode"`
	Alloc   string         `json:"alloc"`
	CacheMB float64        `json:"cache_mb"`
	Events  int            `json:"events_per_client"`
	Sweeps  []sweepResult  `json:"sweeps"`
	Kernel  stats.Snapshot `json:"kernel"`
}

func run() int {
	addrFlag := flag.String("addr", "unix:/tmp/acfcd.sock", "server address: unix:/path or tcp:host:port")
	appFlag := flag.String("app", "cs1", "workload to replay (an expt.Registry name)")
	modeFlag := flag.String("mode", "smart", "oblivious, smart or foolish")
	clientsFlag := flag.Int("clients", 4, "concurrent client sessions")
	cacheFlag := flag.Float64("cache-mb", 6.4, "cache size (capture spec; and the self-served server)")
	allocFlag := flag.String("alloc", "lru-sp", "allocation policy (capture spec; and the self-served server)")
	nodataFlag := flag.Bool("nodata", false, "suppress block bytes in read responses")
	selfFlag := flag.Bool("selfserve", false, "start an in-process server instead of dialing -addr")
	jsonFlag := flag.Bool("json", false, "sweep 1/4/16 clients and emit JSON (implies quiet tables)")
	flag.Parse()

	mk, ok := expt.Registry[*appFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "acload: unknown app %q\n", *appFlag)
		return 2
	}
	mode, err := workload.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acload: %v\n", err)
		return 2
	}
	alloc, ok := allocNames[*allocFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "acload: unknown alloc %q\n", *allocFlag)
		return 2
	}

	fmt.Fprintf(os.Stderr, "acload: recording %s (%s) in simulation...\n", *appFlag, mode)
	rec := expt.Record(expt.RunSpec{
		Apps:         []expt.AppSpec{{Name: *appFlag, Make: mk, Mode: mode}},
		CacheMB:      *cacheFlag,
		Alloc:        alloc,
		ReadAheadOff: true, // read-ahead I/O is untraced, so the transcript must not depend on it
	})
	fmt.Fprintf(os.Stderr, "acload: %d events per client\n", len(rec.Events))

	network, addr := "", ""
	var srv *server.Server
	if *selfFlag {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "acload: %v\n", err)
			return 1
		}
		srv = server.New(server.Config{Kernel: core.LiveConfig{
			CacheBytes: core.MB(*cacheFlag),
			Alloc:      rec.Spec.Alloc,
			WallClock:  true,
		}})
		go srv.Serve(ln)
		network, addr = "tcp", ln.Addr().String()
		fmt.Fprintf(os.Stderr, "acload: self-serving on %s\n", addr)
	} else {
		var ok bool
		network, addr, ok = strings.Cut(*addrFlag, ":")
		if !ok || (network != "unix" && network != "tcp") {
			fmt.Fprintf(os.Stderr, "acload: bad -addr %q\n", *addrFlag)
			return 2
		}
	}

	sweeps := []int{*clientsFlag}
	if *jsonFlag {
		sweeps = []int{1, 4, 16}
	}
	report := jsonReport{App: *appFlag, Mode: mode.String(), Alloc: alloc.String(), CacheMB: *cacheFlag, Events: len(rec.Events)}
	for si, n := range sweeps {
		res, err := runSweep(network, addr, fmt.Sprintf("s%d", si), n, rec.Events, *nodataFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acload: %v\n", err)
			return 1
		}
		report.Sweeps = append(report.Sweeps, res)
		fmt.Fprintf(os.Stderr,
			"acload: %2d clients: %7d reqs in %6.2fs = %8.0f req/s, hit %5.1f%%, p50 %5.0fµs p90 %5.0fµs p99 %6.0fµs, refused %d, errors %d\n",
			n, res.Requests, res.Seconds, res.Throughput, 100*res.HitRatio, res.P50us, res.P90us, res.P99us, res.Refused, res.Errors)
	}

	if srv != nil {
		if m, ok := srv.Metrics(); ok {
			report.Kernel = m.Kernel
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	} else if c, err := client.Dial(network, addr); err == nil {
		if sr, err := c.Stats(); err == nil {
			report.Kernel = sr.Kernel
		}
		c.Close()
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "acload: %v\n", err)
			return 1
		}
	}
	return 0
}

// runSweep replays the transcript through n concurrent sessions, each
// against its own file namespace (tag distinguishes sweeps sharing one
// server), and aggregates the measurements.
func runSweep(network, addr, tag string, n int, events []expt.ReplayEvent, nodata bool) (sweepResult, error) {
	type clientOut struct {
		st  replayStats
		err error
	}
	outs := make([]clientOut, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prefix := fmt.Sprintf("%sc%d/", tag, i)
			outs[i].st, outs[i].err = replayOne(network, addr, prefix, events, nodata)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := sweepResult{Clients: n, Seconds: elapsed.Seconds()}
	var hits, accesses int64
	var all []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, fmt.Errorf("client %d: %w", i, outs[i].err)
		}
		st := &outs[i].st
		res.Requests += st.requests
		res.Refused += st.refused
		res.Errors += st.errors
		hits += st.hits
		accesses += st.hits + st.misses
		all = append(all, st.latencies...)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
	}
	if accesses > 0 {
		res.HitRatio = float64(hits) / float64(accesses)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50us = percentileUs(all, 0.50)
	res.P90us = percentileUs(all, 0.90)
	res.P99us = percentileUs(all, 0.99)
	return res, nil
}

func percentileUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

type replayStats struct {
	requests  int64
	hits      int64
	misses    int64
	refused   int64
	errors    int64
	latencies []time.Duration
}

// replayOne replays the whole transcript through one fresh session.
// Recorded file ids map to server files created under prefix; fbehavior
// and access events reproduce the workload call for call.
func replayOne(network, addr, prefix string, events []expt.ReplayEvent, nodata bool) (replayStats, error) {
	var st replayStats
	c, err := client.Dial(network, addr)
	if err != nil {
		return st, err
	}
	defer c.Close()

	files := make(map[fs.FileID]fs.FileID) // recorded id -> server id
	payload := make([]byte, core.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	st.latencies = make([]time.Duration, 0, len(events))

	fail := func(err error) error {
		if client.IsRefused(err) {
			st.refused++
			return nil
		}
		st.errors++
		return err
	}
	for _, ev := range events {
		if ev.IsCtl {
			st.requests++
			ct := ev.Ctl
			switch ct.Op {
			case core.CtlCreateFile:
				f, err := c.Create(prefix+ct.FileName, ct.Disk, ct.Size)
				if err != nil {
					if e := fail(err); e != nil {
						return st, e
					}
					continue
				}
				files[ct.File] = f.ID
			case core.CtlRemoveFile:
				err = c.Remove(prefix + ct.FileName)
				delete(files, ct.File)
			case core.CtlControl:
				err = c.Control(ct.Enable)
			case core.CtlSetPriority:
				err = c.SetPriority(files[ct.File], ct.Prio)
			case core.CtlSetPolicy:
				err = c.SetPolicy(ct.Prio, ct.Policy)
			case core.CtlSetTempPri:
				err = c.SetTempPri(files[ct.File], ct.Start, ct.End, ct.Prio)
			}
			if err != nil {
				if e := fail(err); e != nil {
					return st, e
				}
			}
			continue
		}

		a := ev.Access
		fid, ok := files[a.File]
		if !ok {
			return st, fmt.Errorf("access to file %d before its create event", a.File)
		}
		st.requests++
		t0 := time.Now()
		var hit bool
		if a.Write {
			hit, err = c.Write(fid, a.Block, a.Off, payload[:a.Size])
		} else if nodata {
			hit, err = c.ReadNoData(fid, a.Block, a.Off, a.Size)
		} else {
			_, hit, err = c.Read(fid, a.Block, a.Off, a.Size)
		}
		st.latencies = append(st.latencies, time.Since(t0))
		if err != nil {
			if e := fail(err); e != nil {
				return st, e
			}
			continue
		}
		if hit {
			st.hits++
		} else {
			st.misses++
		}
	}
	return st, nil
}
